package trace

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	if Read.String() != "R" || Write.String() != "W" || Erase.String() != "E" || Kind(9).String() != "?" {
		t.Fatal("kind names wrong")
	}
}

func TestDataVsTotalBytes(t *testing.T) {
	ops := []BlockOp{
		{Kind: Read, Size: 100},
		{Kind: Read, Size: 50, Meta: true},
		{Kind: Write, Size: 25},
	}
	if DataBytes(ops) != 125 {
		t.Fatalf("DataBytes = %d, want 125", DataBytes(ops))
	}
	if TotalBytes(ops) != 175 {
		t.Fatalf("TotalBytes = %d, want 175", TotalBytes(ops))
	}
}

func TestCharacterize(t *testing.T) {
	ops := []BlockOp{
		{Kind: Read, Offset: 0, Size: 100},
		{Kind: Read, Offset: 100, Size: 100},                       // sequential
		{Kind: Read, Offset: 500, Size: 100},                       // jump
		{Kind: Read, Offset: 600, Size: 4, Sync: true, Meta: true}, // sequential
	}
	st := Characterize(ops)
	if st.Ops != 4 || st.MetaOps != 1 || st.SyncOps != 1 {
		t.Fatalf("counts wrong: %+v", st)
	}
	if st.SequentialPct != 0.5 {
		t.Fatalf("sequential = %v, want 0.5", st.SequentialPct)
	}
	if st.Bytes != 304 || st.DataBytes != 300 {
		t.Fatalf("bytes wrong: %+v", st)
	}
}

func TestCharacterizeEmpty(t *testing.T) {
	st := Characterize(nil)
	if st.Ops != 0 || st.MeanSize != 0 || st.SequentialPct != 0 {
		t.Fatalf("empty trace stats: %+v", st)
	}
}

func TestSizeHistogram(t *testing.T) {
	ops := []BlockOp{{Size: 1}, {Size: 1024}, {Size: 1025}, {Size: 2048}}
	h := SizeHistogram(ops)
	got := map[int64]int{}
	for _, b := range h {
		got[b.UpTo] = b.Count
	}
	if got[1] != 1 || got[1024] != 1 || got[2048] != 2 {
		t.Fatalf("histogram %v", got)
	}
	// Buckets must be sorted.
	for i := 1; i < len(h); i++ {
		if h[i].UpTo <= h[i-1].UpTo {
			t.Fatal("histogram not sorted")
		}
	}
}

func TestBlockTraceRoundTrip(t *testing.T) {
	ops := []BlockOp{
		{Kind: Read, Offset: 0, Size: 8192},
		{Kind: Write, Offset: 1 << 40, Size: 4096, Sync: true},
		{Kind: Erase, Offset: 123456, Size: 0, Meta: true},
	}
	var buf bytes.Buffer
	if err := WriteBlockTrace(&buf, ops); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBlockTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ops, back) {
		t.Fatalf("round trip mismatch:\n%v\n%v", ops, back)
	}
}

func TestPosixTraceRoundTrip(t *testing.T) {
	ops := []PosixOp{
		{Kind: Read, Offset: 0, Size: 8 << 20},
		{Kind: Write, Offset: 512 << 20, Size: 2 << 20},
	}
	var buf bytes.Buffer
	if err := WritePosixTrace(&buf, ops); err != nil {
		t.Fatal(err)
	}
	back, err := ReadPosixTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ops, back) {
		t.Fatalf("round trip mismatch:\n%v\n%v", ops, back)
	}
}

func TestEmptyTraceRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteBlockTrace(&buf, nil); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBlockTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 0 {
		t.Fatalf("got %d ops from empty trace", len(back))
	}
}

func TestReadBlockTraceRejectsWrongMagic(t *testing.T) {
	if _, err := ReadBlockTrace(strings.NewReader("NOTATRACE-AT-ALL")); err == nil {
		t.Fatal("wrong magic accepted")
	}
	// A POSIX trace is not a block trace.
	var buf bytes.Buffer
	if err := WritePosixTrace(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadBlockTrace(&buf); err == nil {
		t.Fatal("posix trace accepted as block trace")
	}
}

func TestReadTraceRejectsTruncation(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteBlockTrace(&buf, []BlockOp{{Kind: Read, Size: 10}}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if _, err := ReadBlockTrace(bytes.NewReader(raw[:len(raw)-3])); err == nil {
		t.Fatal("truncated trace accepted")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	ops := []BlockOp{{Kind: Write, Offset: 7, Size: 42, Sync: true, Meta: true}}
	var buf bytes.Buffer
	if err := EncodeJSON(&buf, ops); err != nil {
		t.Fatal(err)
	}
	back, err := DecodeBlockJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ops, back) {
		t.Fatalf("JSON round trip mismatch: %v vs %v", ops, back)
	}
}

func TestPosixJSONRoundTrip(t *testing.T) {
	ops := []PosixOp{{Kind: Read, Offset: 7, Size: 42}}
	var buf bytes.Buffer
	if err := EncodeJSON(&buf, ops); err != nil {
		t.Fatal(err)
	}
	back, err := DecodePosixJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ops, back) {
		t.Fatalf("JSON round trip mismatch")
	}
}

// Property: arbitrary block traces survive the binary codec bit-exactly.
func TestBlockTraceRoundTripProperty(t *testing.T) {
	f := func(raw []uint32) bool {
		ops := make([]BlockOp, len(raw))
		for i, r := range raw {
			ops[i] = BlockOp{
				Kind:   Kind(r % 3),
				Offset: int64(r) * 513,
				Size:   int64(r%100000) + 1,
				Sync:   r%5 == 0,
				Meta:   r%7 == 0,
			}
		}
		var buf bytes.Buffer
		if err := WriteBlockTrace(&buf, ops); err != nil {
			return false
		}
		back, err := ReadBlockTrace(&buf)
		if err != nil {
			return false
		}
		if len(ops) == 0 {
			return len(back) == 0
		}
		return reflect.DeepEqual(ops, back)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestReadPosixTraceRejectsWrongMagic(t *testing.T) {
	if _, err := ReadPosixTrace(strings.NewReader("NOTATRACE-AT-ALL")); err == nil {
		t.Fatal("wrong magic accepted")
	}
	var buf bytes.Buffer
	if err := WriteBlockTrace(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadPosixTrace(&buf); err == nil {
		t.Fatal("block trace accepted as posix trace")
	}
}

func TestReadPosixTraceRejectsTruncation(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePosixTrace(&buf, []PosixOp{{Kind: Read, Size: 10}}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if _, err := ReadPosixTrace(bytes.NewReader(raw[:len(raw)-2])); err == nil {
		t.Fatal("truncated posix trace accepted")
	}
}

func TestDecodeJSONErrors(t *testing.T) {
	if _, err := DecodeBlockJSON(strings.NewReader("{not json")); err == nil {
		t.Fatal("bad block JSON accepted")
	}
	if _, err := DecodePosixJSON(strings.NewReader("[{]")); err == nil {
		t.Fatal("bad posix JSON accepted")
	}
}

// Package trace defines the two trace levels the paper captures (§4.2):
// POSIX-level operations as issued by the OoC application, and device-level
// block operations as they leave a file system for the SSD. It also provides
// codecs for storing traces and helpers for characterizing access patterns
// (sequentiality, request-size distribution) used to regenerate Figure 6.
package trace

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Kind distinguishes reads from writes.
type Kind uint8

// Operation kinds. Erase appears only in block traces, from hosts (UFS) that
// manage the medium directly.
const (
	Read Kind = iota
	Write
	Erase
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case Read:
		return "R"
	case Write:
		return "W"
	case Erase:
		return "E"
	default:
		return "?"
	}
}

// PosixOp is one POSIX-level request against the application's file address
// space, as captured "directly under the application but prior to reaching
// GPFS".
type PosixOp struct {
	Kind   Kind  `json:"kind"`
	Offset int64 `json:"offset"`
	Size   int64 `json:"size"`
}

// BlockOp is one device-level request as emitted by a file system.
type BlockOp struct {
	Kind   Kind  `json:"kind"`
	Offset int64 `json:"offset"` // byte address in the device's space
	Size   int64 `json:"size"`
	Sync   bool  `json:"sync,omitempty"` // barrier: drains the queue before and after
	Meta   bool  `json:"meta,omitempty"` // metadata/journal, not application data
}

// DataBytes sums the application-data payload of a block trace (metadata and
// journal traffic excluded); application-level bandwidth is DataBytes over
// elapsed time.
func DataBytes(ops []BlockOp) int64 {
	var n int64
	for _, op := range ops {
		if !op.Meta {
			n += op.Size
		}
	}
	return n
}

// TotalBytes sums all bytes in a block trace.
func TotalBytes(ops []BlockOp) int64 {
	var n int64
	for _, op := range ops {
		n += op.Size
	}
	return n
}

// Stats summarizes a block trace's request population.
type Stats struct {
	Ops           int
	Bytes         int64
	DataBytes     int64
	MetaOps       int
	SyncOps       int
	MeanSize      float64
	SequentialPct float64 // fraction of ops starting exactly where the previous ended
}

// Characterize computes summary statistics for a block trace.
func Characterize(ops []BlockOp) Stats {
	s := Stats{Ops: len(ops)}
	var nextOff int64 = -1
	seq := 0
	for _, op := range ops {
		s.Bytes += op.Size
		if op.Meta {
			s.MetaOps++
		} else {
			s.DataBytes += op.Size
		}
		if op.Sync {
			s.SyncOps++
		}
		if op.Offset == nextOff {
			seq++
		}
		nextOff = op.Offset + op.Size
	}
	if len(ops) > 0 {
		s.MeanSize = float64(s.Bytes) / float64(len(ops))
		s.SequentialPct = float64(seq) / float64(len(ops))
	}
	return s
}

// SizeHistogram buckets request sizes by power of two and returns sorted
// (sizeUpperBound, count) pairs, for trace inspection tools.
func SizeHistogram(ops []BlockOp) []struct {
	UpTo  int64
	Count int
} {
	buckets := make(map[int64]int)
	for _, op := range ops {
		b := int64(1)
		for b < op.Size {
			b <<= 1
		}
		buckets[b]++
	}
	keys := make([]int64, 0, len(buckets))
	for k := range buckets {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	out := make([]struct {
		UpTo  int64
		Count int
	}, len(keys))
	for i, k := range keys {
		out[i].UpTo = k
		out[i].Count = buckets[k]
	}
	return out
}

// --- binary codec -----------------------------------------------------------
//
// The binary format is a magic header followed by fixed-width little-endian
// records; it exists so multi-gigabyte traces round-trip without JSON cost.

var blockMagic = [8]byte{'O', 'O', 'C', 'B', 'L', 'K', '0', '1'}
var posixMagic = [8]byte{'O', 'O', 'C', 'P', 'S', 'X', '0', '1'}

// WriteBlockTrace streams ops to w in the binary block-trace format.
func WriteBlockTrace(w io.Writer, ops []BlockOp) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(blockMagic[:]); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, int64(len(ops))); err != nil {
		return err
	}
	for _, op := range ops {
		var flags uint8
		if op.Sync {
			flags |= 1
		}
		if op.Meta {
			flags |= 2
		}
		rec := struct {
			Kind   uint8
			Flags  uint8
			_      [6]byte
			Offset int64
			Size   int64
		}{Kind: uint8(op.Kind), Flags: flags, Offset: op.Offset, Size: op.Size}
		if err := binary.Write(bw, binary.LittleEndian, rec); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBlockTrace parses a binary block trace written by WriteBlockTrace.
func ReadBlockTrace(r io.Reader) ([]BlockOp, error) {
	br := bufio.NewReader(r)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if magic != blockMagic {
		return nil, fmt.Errorf("trace: not a block trace (magic %q)", magic)
	}
	var n int64
	if err := binary.Read(br, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	if n < 0 {
		return nil, fmt.Errorf("trace: negative record count %d", n)
	}
	ops := make([]BlockOp, 0, n)
	for i := int64(0); i < n; i++ {
		var rec struct {
			Kind   uint8
			Flags  uint8
			_      [6]byte
			Offset int64
			Size   int64
		}
		if err := binary.Read(br, binary.LittleEndian, &rec); err != nil {
			return nil, fmt.Errorf("trace: record %d: %w", i, err)
		}
		ops = append(ops, BlockOp{
			Kind:   Kind(rec.Kind),
			Offset: rec.Offset,
			Size:   rec.Size,
			Sync:   rec.Flags&1 != 0,
			Meta:   rec.Flags&2 != 0,
		})
	}
	return ops, nil
}

// WritePosixTrace streams POSIX ops to w in the binary format.
func WritePosixTrace(w io.Writer, ops []PosixOp) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(posixMagic[:]); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, int64(len(ops))); err != nil {
		return err
	}
	for _, op := range ops {
		rec := struct {
			Kind   uint8
			_      [7]byte
			Offset int64
			Size   int64
		}{Kind: uint8(op.Kind), Offset: op.Offset, Size: op.Size}
		if err := binary.Write(bw, binary.LittleEndian, rec); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadPosixTrace parses a binary POSIX trace.
func ReadPosixTrace(r io.Reader) ([]PosixOp, error) {
	br := bufio.NewReader(r)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if magic != posixMagic {
		return nil, fmt.Errorf("trace: not a POSIX trace (magic %q)", magic)
	}
	var n int64
	if err := binary.Read(br, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	if n < 0 {
		return nil, fmt.Errorf("trace: negative record count %d", n)
	}
	ops := make([]PosixOp, 0, n)
	for i := int64(0); i < n; i++ {
		var rec struct {
			Kind   uint8
			_      [7]byte
			Offset int64
			Size   int64
		}
		if err := binary.Read(br, binary.LittleEndian, &rec); err != nil {
			return nil, fmt.Errorf("trace: record %d: %w", i, err)
		}
		ops = append(ops, PosixOp{Kind: Kind(rec.Kind), Offset: rec.Offset, Size: rec.Size})
	}
	return ops, nil
}

// MarshalJSON helpers: traces also round-trip as JSON arrays for tooling.

// EncodeJSON writes ops as a JSON array.
func EncodeJSON(w io.Writer, v interface{}) error {
	enc := json.NewEncoder(w)
	return enc.Encode(v)
}

// DecodeBlockJSON reads a JSON array of block ops.
func DecodeBlockJSON(r io.Reader) ([]BlockOp, error) {
	var ops []BlockOp
	if err := json.NewDecoder(r).Decode(&ops); err != nil {
		return nil, err
	}
	return ops, nil
}

// DecodePosixJSON reads a JSON array of POSIX ops.
func DecodePosixJSON(r io.Reader) ([]PosixOp, error) {
	var ops []PosixOp
	if err := json.NewDecoder(r).Decode(&ops); err != nil {
		return nil, err
	}
	return ops, nil
}

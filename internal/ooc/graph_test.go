package ooc

import (
	"math"
	"testing"

	"oocnvm/internal/linalg"
	"oocnvm/internal/trace"
)

func testGraph(t *testing.T, n int) *linalg.CSR {
	t.Helper()
	g, err := RandomGraph(GraphConfig{Nodes: n, AvgDegree: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestRandomGraphValidation(t *testing.T) {
	if _, err := RandomGraph(GraphConfig{Nodes: 0}); err == nil {
		t.Fatal("empty graph accepted")
	}
	if _, err := RandomGraph(GraphConfig{Nodes: 5, AvgDegree: -1}); err == nil {
		t.Fatal("negative degree accepted")
	}
}

func TestRandomGraphStructure(t *testing.T) {
	g := testGraph(t, 100)
	// 0/1 entries only.
	for _, v := range g.Val {
		if v != 1 {
			t.Fatalf("non-binary adjacency value %v", v)
		}
	}
	// The ring guarantees every node has at least one out-edge.
	for u := 0; u < g.N; u++ {
		if g.RowPtr[u+1] == g.RowPtr[u] {
			t.Fatalf("node %d has no out-edges; ring missing", u)
		}
	}
}

func TestPageRankSumsToOne(t *testing.T) {
	g := testGraph(t, 200)
	res, err := PageRank(g, &Recorder{}, 50, 0.85, 1e-12, 200)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("no convergence in %d iterations", res.Iterations)
	}
	var sum float64
	for _, r := range res.Ranks {
		if r <= 0 {
			t.Fatal("non-positive rank")
		}
		sum += r
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("ranks sum to %v", sum)
	}
}

func TestPageRankMatchesDenseReference(t *testing.T) {
	g := testGraph(t, 120)
	res, err := PageRank(g, &Recorder{}, 30, 0.85, 1e-13, 500)
	if err != nil {
		t.Fatal(err)
	}
	// Dense reference: iterate the full Google matrix in memory.
	n := g.N
	m, dangling, err := transition(g)
	if err != nil {
		t.Fatal(err)
	}
	r := make([]float64, n)
	for i := range r {
		r[i] = 1 / float64(n)
	}
	dm := m.Dense()
	for it := 0; it < 500; it++ {
		var dang float64
		for i, d := range dangling {
			if d {
				dang += r[i]
			}
		}
		next := make([]float64, n)
		for i := 0; i < n; i++ {
			var s float64
			for j := 0; j < n; j++ {
				s += dm.At(i, j) * r[j]
			}
			next[i] = (1-0.85)/float64(n) + 0.85*(s+dang/float64(n))
		}
		r = next
	}
	for i := range r {
		if math.Abs(r[i]-res.Ranks[i]) > 1e-8 {
			t.Fatalf("rank[%d] = %v, dense ref %v", i, res.Ranks[i], r[i])
		}
	}
}

func TestPageRankUniformOnRing(t *testing.T) {
	// A pure ring is perfectly symmetric: every rank must equal 1/n.
	g, err := RandomGraph(GraphConfig{Nodes: 64, AvgDegree: 0, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	res, err := PageRank(g, &Recorder{}, 16, 0.85, 1e-13, 300)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Ranks {
		if math.Abs(r-1.0/64) > 1e-10 {
			t.Fatalf("ring rank %v, want uniform %v", r, 1.0/64)
		}
	}
}

func TestPageRankIOPattern(t *testing.T) {
	g := testGraph(t, 150)
	rec := &Recorder{}
	res, err := PageRank(g, rec, 50, 0.85, 1e-10, 100)
	if err != nil {
		t.Fatal(err)
	}
	// One full sequential panel sweep per iteration.
	m, _, _ := transition(g)
	store, _ := NewMatrixStore(m, 50, &Recorder{})
	if len(rec.Ops) != res.Iterations*store.Panels() {
		t.Fatalf("%d reads for %d iterations x %d panels", len(rec.Ops), res.Iterations, store.Panels())
	}
	for _, op := range rec.Ops {
		if op.Kind != trace.Read {
			t.Fatal("PageRank issued writes")
		}
	}
}

func TestPageRankValidation(t *testing.T) {
	g := testGraph(t, 20)
	if _, err := PageRank(g, &Recorder{}, 10, 0, 1e-9, 10); err == nil {
		t.Fatal("damping 0 accepted")
	}
	if _, err := PageRank(g, &Recorder{}, 10, 1, 1e-9, 10); err == nil {
		t.Fatal("damping 1 accepted")
	}
}

func inMemoryBFS(g *linalg.CSR, src int) []int {
	levels := make([]int, g.N)
	for i := range levels {
		levels[i] = -1
	}
	levels[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for p := g.RowPtr[u]; p < g.RowPtr[u+1]; p++ {
			v := int(g.Col[p])
			if levels[v] == -1 {
				levels[v] = levels[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return levels
}

func TestBFSMatchesInMemory(t *testing.T) {
	g := testGraph(t, 300)
	res, err := BFS(g, &Recorder{}, 64, 7)
	if err != nil {
		t.Fatal(err)
	}
	want := inMemoryBFS(g, 7)
	for i := range want {
		if res.Levels[i] != want[i] {
			t.Fatalf("level[%d] = %d, want %d", i, res.Levels[i], want[i])
		}
	}
	if res.Visited != g.N { // ring makes everything reachable
		t.Fatalf("visited %d of %d", res.Visited, g.N)
	}
}

func TestBFSSweepPerLevel(t *testing.T) {
	g := testGraph(t, 200)
	rec := &Recorder{}
	res, err := BFS(g, rec, 50, 0)
	if err != nil {
		t.Fatal(err)
	}
	store, _ := NewMatrixStore(g, 50, &Recorder{})
	// One full adjacency scan per completed level (incl. the final empty
	// frontier check happens within the last sweep).
	if len(rec.Ops) != res.Sweeps*store.Panels() {
		t.Fatalf("%d reads for %d sweeps x %d panels", len(rec.Ops), res.Sweeps, store.Panels())
	}
	if res.Depth <= 0 || res.Sweeps < res.Depth {
		t.Fatalf("depth %d, sweeps %d", res.Depth, res.Sweeps)
	}
}

func TestBFSSourceValidation(t *testing.T) {
	g := testGraph(t, 10)
	if _, err := BFS(g, &Recorder{}, 5, -1); err == nil {
		t.Fatal("negative source accepted")
	}
	if _, err := BFS(g, &Recorder{}, 5, 10); err == nil {
		t.Fatal("out-of-range source accepted")
	}
}

func TestBFSUnreachable(t *testing.T) {
	// Two disjoint... the ring connects everything, so build a tiny custom
	// graph: 0->1, 2 isolated (self edges only via assembly? none).
	adj, err := linalg.NewCSR(3, []linalg.Triplet{{Row: 0, Col: 1, Val: 1}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := BFS(adj, &Recorder{}, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Levels[0] != 0 || res.Levels[1] != 1 || res.Levels[2] != -1 {
		t.Fatalf("levels = %v", res.Levels)
	}
	if res.Visited != 2 {
		t.Fatalf("visited = %d", res.Visited)
	}
}

package ooc

import (
	"fmt"

	"oocnvm/internal/trace"
)

// Workload describes the I/O shape of the out-of-core eigensolver at
// evaluation scale, without carrying the numerics along: per operator
// application, every row panel of H is read sequentially; LOBPCG applies the
// operator to both the iterate block and the trial subspace each iteration.
// A small test (TestSolverTraceMatchesWorkload) pins this generator to the
// trace the real solver in this package emits.
type Workload struct {
	// MatrixBytes is H's on-storage footprint.
	MatrixBytes int64
	// PanelBytes is the read granularity (one row panel).
	PanelBytes int64
	// Applications is the number of operator applications (2 per LOBPCG
	// iteration: A·X and A·S).
	Applications int
	// PsiBytes, when positive, writes a Ψ checkpoint of this size after each
	// application pair, beyond the matrix region. Most OoC runs are purely
	// read-intensive (§3.1), so the default workload leaves this zero.
	PsiBytes int64
}

// DefaultWorkload is the evaluation-scale workload driving every figure:
// a 512 MiB Hamiltonian read in 8 MiB panels, four operator applications
// (two LOBPCG iterations).
func DefaultWorkload() Workload {
	return Workload{
		MatrixBytes:  512 << 20,
		PanelBytes:   8 << 20,
		Applications: 4,
	}
}

// Validate reports impossible workloads.
func (w Workload) Validate() error {
	if w.MatrixBytes <= 0 || w.PanelBytes <= 0 || w.Applications <= 0 {
		return fmt.Errorf("ooc: workload fields must be positive: %+v", w)
	}
	if w.PanelBytes > w.MatrixBytes {
		return fmt.Errorf("ooc: panel %d larger than matrix %d", w.PanelBytes, w.MatrixBytes)
	}
	return nil
}

// TotalBytes returns the data volume the workload moves.
func (w Workload) TotalBytes() int64 {
	n := w.MatrixBytes * int64(w.Applications)
	if w.PsiBytes > 0 {
		n += w.PsiBytes * int64(w.Applications/2)
	}
	return n
}

// PosixTrace generates the application-level trace.
func (w Workload) PosixTrace() ([]trace.PosixOp, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	var ops []trace.PosixOp
	for app := 0; app < w.Applications; app++ {
		for off := int64(0); off < w.MatrixBytes; off += w.PanelBytes {
			size := w.PanelBytes
			if off+size > w.MatrixBytes {
				size = w.MatrixBytes - off
			}
			ops = append(ops, trace.PosixOp{Kind: trace.Read, Offset: off, Size: size})
		}
		if w.PsiBytes > 0 && app%2 == 1 {
			ops = append(ops, trace.PosixOp{Kind: trace.Write, Offset: w.MatrixBytes, Size: w.PsiBytes})
		}
	}
	return ops, nil
}

package ooc

import (
	"fmt"
	"math"

	"oocnvm/internal/linalg"
	"oocnvm/internal/sim"
)

// The paper motivates out-of-core computing with more than eigensolvers:
// its introduction cites local PageRank methods and external-memory
// breadth-first search as OoC algorithms with the same disease — datasets
// too large for memory, streamed from storage every pass. This file
// implements both on top of the same panel store the eigensolver uses, so
// they exercise the identical I/O path.

// GraphConfig parameterizes the synthetic directed graph generator.
type GraphConfig struct {
	Nodes     int
	AvgDegree int
	Seed      uint64
}

// RandomGraph generates a directed graph as a 0/1 CSR adjacency matrix
// (entry [u][v] = 1 for an edge u->v). A deterministic ring is added so the
// graph is connected regardless of the random draws.
func RandomGraph(cfg GraphConfig) (*linalg.CSR, error) {
	if cfg.Nodes <= 0 || cfg.AvgDegree < 0 {
		return nil, fmt.Errorf("ooc: graph needs positive nodes and non-negative degree: %+v", cfg)
	}
	rng := sim.NewRNG(cfg.Seed)
	var tri []linalg.Triplet
	for u := 0; u < cfg.Nodes; u++ {
		tri = append(tri, linalg.Triplet{Row: u, Col: (u + 1) % cfg.Nodes, Val: 1})
		for d := 0; d < cfg.AvgDegree; d++ {
			v := rng.Intn(cfg.Nodes)
			if v == u {
				continue
			}
			tri = append(tri, linalg.Triplet{Row: u, Col: v, Val: 1})
		}
	}
	adj, err := linalg.NewCSR(cfg.Nodes, tri)
	if err != nil {
		return nil, err
	}
	// Duplicate edges summed to >1 by assembly: clamp back to 0/1.
	for i := range adj.Val {
		adj.Val[i] = 1
	}
	return adj, nil
}

// transition builds the column-stochastic PageRank transition matrix
// M[v][u] = 1/outdeg(u) for each edge u->v. Dangling mass is handled in the
// iteration.
func transition(adj *linalg.CSR) (*linalg.CSR, []bool, error) {
	outdeg := make([]int64, adj.N)
	for u := 0; u < adj.N; u++ {
		outdeg[u] = adj.RowPtr[u+1] - adj.RowPtr[u]
	}
	dangling := make([]bool, adj.N)
	var tri []linalg.Triplet
	for u := 0; u < adj.N; u++ {
		if outdeg[u] == 0 {
			dangling[u] = true
			continue
		}
		w := 1 / float64(outdeg[u])
		for p := adj.RowPtr[u]; p < adj.RowPtr[u+1]; p++ {
			tri = append(tri, linalg.Triplet{Row: int(adj.Col[p]), Col: u, Val: w})
		}
	}
	m, err := linalg.NewCSR(adj.N, tri)
	return m, dangling, err
}

// PageRankResult reports the converged ranks.
type PageRankResult struct {
	Ranks      []float64
	Iterations int
	Converged  bool
}

// PageRank computes PageRank with the transition matrix streamed through
// the storage client in row panels — one full sequential sweep per
// iteration, the OoC access pattern of the paper's Figure 6.
func PageRank(adj *linalg.CSR, storage Storage, panelRows int, damping, tol float64, maxIter int) (PageRankResult, error) {
	if damping <= 0 || damping >= 1 {
		return PageRankResult{}, fmt.Errorf("ooc: damping %v outside (0,1)", damping)
	}
	if maxIter <= 0 {
		maxIter = 100
	}
	if tol <= 0 {
		tol = 1e-10
	}
	m, dangling, err := transition(adj)
	if err != nil {
		return PageRankResult{}, err
	}
	store, err := NewMatrixStore(m, panelRows, storage)
	if err != nil {
		return PageRankResult{}, err
	}
	n := adj.N
	r := linalg.NewMatrix(n, 1)
	for i := 0; i < n; i++ {
		r.Set(i, 0, 1/float64(n))
	}
	res := PageRankResult{}
	for it := 0; it < maxIter; it++ {
		res.Iterations = it + 1
		// Dangling mass redistributes uniformly.
		var dangMass float64
		for i := 0; i < n; i++ {
			if dangling[i] {
				dangMass += r.At(i, 0)
			}
		}
		next := store.Apply(r) // streams every panel
		base := (1-damping)/float64(n) + damping*dangMass/float64(n)
		var delta float64
		for i := 0; i < n; i++ {
			v := base + damping*next.At(i, 0)
			delta += math.Abs(v - r.At(i, 0))
			next.Set(i, 0, v)
		}
		r = next
		if delta < tol {
			res.Converged = true
			break
		}
	}
	res.Ranks = r.Col(0)
	return res, nil
}

// BFSResult reports level-synchronous BFS distances.
type BFSResult struct {
	Levels  []int // -1 = unreachable
	Depth   int   // maximum level reached
	Sweeps  int   // full adjacency scans performed (one per level)
	Visited int
}

// BFS runs level-synchronous external-memory breadth-first search: every
// level streams the full adjacency through the storage client (the
// sublinear-I/O refinements of the literature trade this for sorting
// passes; the scan is the canonical baseline).
func BFS(adj *linalg.CSR, storage Storage, panelRows int, source int) (BFSResult, error) {
	if source < 0 || source >= adj.N {
		return BFSResult{}, fmt.Errorf("ooc: BFS source %d outside graph of %d nodes", source, adj.N)
	}
	store, err := NewMatrixStore(adj, panelRows, storage)
	if err != nil {
		return BFSResult{}, err
	}
	levels := make([]int, adj.N)
	for i := range levels {
		levels[i] = -1
	}
	levels[source] = 0
	frontier := []int{source}
	res := BFSResult{Visited: 1}
	for depth := 0; len(frontier) > 0; depth++ {
		inFrontier := make(map[int]bool, len(frontier))
		for _, u := range frontier {
			inFrontier[u] = true
		}
		var next []int
		// Stream every panel; expand rows whose vertex is in the frontier.
		for i := 0; i < store.Panels(); i++ {
			off, size := store.PanelSpan(i)
			storage.ReadAt(off, size)
			lo := i * panelRows
			hi := lo + panelRows
			if hi > adj.N {
				hi = adj.N
			}
			for u := lo; u < hi; u++ {
				if !inFrontier[u] {
					continue
				}
				for p := adj.RowPtr[u]; p < adj.RowPtr[u+1]; p++ {
					v := int(adj.Col[p])
					if levels[v] == -1 {
						levels[v] = depth + 1
						next = append(next, v)
					}
				}
			}
		}
		res.Sweeps++
		frontier = next
		res.Visited += len(next)
		if len(next) > 0 {
			res.Depth = depth + 1
		}
	}
	res.Levels = levels
	return res, nil
}

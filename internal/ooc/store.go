package ooc

import (
	"fmt"

	"oocnvm/internal/linalg"
	"oocnvm/internal/trace"
)

// Storage is the client interface the out-of-core store issues its I/O
// through: a POSIX-style byte range in the dataset's file address space.
// Implementations record traces, drive the simulated stack, or both.
type Storage interface {
	ReadAt(offset, size int64)
	WriteAt(offset, size int64)
}

// Recorder captures the POSIX-level trace of everything issued through it,
// exactly like the paper's tracing "directly under the application but prior
// to reaching GPFS" (§4.2).
type Recorder struct {
	Ops []trace.PosixOp
}

// ReadAt records a read.
func (r *Recorder) ReadAt(offset, size int64) {
	r.Ops = append(r.Ops, trace.PosixOp{Kind: trace.Read, Offset: offset, Size: size})
}

// WriteAt records a write.
func (r *Recorder) WriteAt(offset, size int64) {
	r.Ops = append(r.Ops, trace.PosixOp{Kind: trace.Write, Offset: offset, Size: size})
}

// Tee fans one storage client out to several (e.g. record and simulate).
type Tee []Storage

// ReadAt forwards to every sink.
func (t Tee) ReadAt(offset, size int64) {
	for _, s := range t {
		s.ReadAt(offset, size)
	}
}

// WriteAt forwards to every sink.
func (t Tee) WriteAt(offset, size int64) {
	for _, s := range t {
		s.WriteAt(offset, size)
	}
}

// MatrixStore holds a Hamiltonian partitioned into row panels laid out
// back-to-back in a file address space. Every Apply streams all panels
// through the Storage client — the access pattern of the paper's workload.
type MatrixStore struct {
	n       int
	panels  []linalg.RowPanel
	offsets []int64 // file offset of each panel
	total   int64   // file footprint
	storage Storage
}

// NewMatrixStore partitions h into panels of panelRows rows.
func NewMatrixStore(h *linalg.CSR, panelRows int, storage Storage) (*MatrixStore, error) {
	if panelRows <= 0 {
		return nil, fmt.Errorf("ooc: panelRows must be positive, got %d", panelRows)
	}
	if storage == nil {
		return nil, fmt.Errorf("ooc: storage client required")
	}
	s := &MatrixStore{n: h.N, storage: storage}
	var off int64
	for lo := 0; lo < h.N; lo += panelRows {
		hi := lo + panelRows
		if hi > h.N {
			hi = h.N
		}
		p := h.Panel(lo, hi)
		s.panels = append(s.panels, p)
		s.offsets = append(s.offsets, off)
		off += p.BytesOnDisk()
	}
	s.total = off
	return s, nil
}

// Dim returns the operator order.
func (s *MatrixStore) Dim() int { return s.n }

// Bytes returns the on-storage footprint of the matrix.
func (s *MatrixStore) Bytes() int64 { return s.total }

// Panels returns the panel count.
func (s *MatrixStore) Panels() int { return len(s.panels) }

// PanelSpan reports panel i's file offset and serialized size, for preload
// planning and tests.
func (s *MatrixStore) PanelSpan(i int) (offset, size int64) {
	return s.offsets[i], s.panels[i].BytesOnDisk()
}

// Apply computes H·X, reading every panel through the storage client before
// multiplying it — one large sequential read per panel, in panel order.
func (s *MatrixStore) Apply(x *linalg.Matrix) *linalg.Matrix {
	y := linalg.NewMatrix(s.n, x.Cols)
	for i, p := range s.panels {
		s.storage.ReadAt(s.offsets[i], p.BytesOnDisk())
		p.MulInto(x, y)
	}
	return y
}

var _ linalg.Operator = (*MatrixStore)(nil)

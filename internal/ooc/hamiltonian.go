// Package ooc implements the paper's out-of-core application (§2.1):
// configuration-interaction-style nuclear structure calculation — a large
// sparse symmetric Hamiltonian H, preprocessed and stored on capacity-rich
// media, whose smallest eigenpairs are computed by LOBPCG with the repeated
// H×Ψ multiplication streaming H from storage in row panels.
//
// The package provides a synthetic Hamiltonian generator, the out-of-core
// panel store with a pluggable storage client (so I/O can be recorded as a
// POSIX trace or routed into the simulated stack), and the workload/trace
// generator used by the evaluation harness.
package ooc

import (
	"fmt"
	"math"

	"oocnvm/internal/linalg"
	"oocnvm/internal/sim"
)

// HamiltonianConfig parameterizes the synthetic many-body Hamiltonian.
// CI Hamiltonians are sparse, symmetric, and band-dominated with scattered
// long-range couplings between configuration blocks; the generator
// reproduces that structure.
type HamiltonianConfig struct {
	N          int     // matrix order
	Band       int     // half bandwidth of the dominant band
	LongRange  int     // random long-range couplings per row
	Seed       uint64  // value stream
	DiagShift  float64 // added to the diagonal (sets the spectrum's floor)
	DiagSpread float64 // random spread of diagonal entries
}

// DefaultHamiltonian returns a small, well-conditioned instance for tests
// and examples.
func DefaultHamiltonian(n int) HamiltonianConfig {
	return HamiltonianConfig{N: n, Band: 4, LongRange: 2, Seed: 1, DiagShift: 8, DiagSpread: 4}
}

// Hamiltonian generates the sparse symmetric matrix.
func Hamiltonian(cfg HamiltonianConfig) (*linalg.CSR, error) {
	if cfg.N <= 0 {
		return nil, fmt.Errorf("ooc: Hamiltonian order must be positive, got %d", cfg.N)
	}
	if cfg.Band < 0 || cfg.LongRange < 0 {
		return nil, fmt.Errorf("ooc: Band and LongRange must be non-negative")
	}
	rng := sim.NewRNG(cfg.Seed)
	var tri []linalg.Triplet
	for i := 0; i < cfg.N; i++ {
		tri = append(tri, linalg.Triplet{
			Row: i, Col: i,
			Val: cfg.DiagShift + cfg.DiagSpread*rng.Float64() + 0.05*math.Sin(float64(i)),
		})
		for d := 1; d <= cfg.Band; d++ {
			j := i + d
			if j >= cfg.N {
				break
			}
			v := (rng.Float64() - 0.5) / float64(d)
			tri = append(tri, linalg.Triplet{Row: i, Col: j, Val: v})
			tri = append(tri, linalg.Triplet{Row: j, Col: i, Val: v})
		}
		for l := 0; l < cfg.LongRange; l++ {
			j := rng.Intn(cfg.N)
			if j <= i+cfg.Band && j >= i-cfg.Band {
				continue
			}
			v := 0.1 * (rng.Float64() - 0.5)
			tri = append(tri, linalg.Triplet{Row: i, Col: j, Val: v})
			tri = append(tri, linalg.Triplet{Row: j, Col: i, Val: v})
		}
	}
	return linalg.NewCSR(cfg.N, tri)
}

package ooc

import (
	"math"
	"testing"

	"oocnvm/internal/linalg"
	"oocnvm/internal/sim"
	"oocnvm/internal/trace"
)

func TestHamiltonianValidation(t *testing.T) {
	if _, err := Hamiltonian(HamiltonianConfig{N: 0}); err == nil {
		t.Fatal("zero order accepted")
	}
	if _, err := Hamiltonian(HamiltonianConfig{N: 10, Band: -1}); err == nil {
		t.Fatal("negative band accepted")
	}
}

func TestHamiltonianSymmetric(t *testing.T) {
	h, err := Hamiltonian(DefaultHamiltonian(200))
	if err != nil {
		t.Fatal(err)
	}
	if !h.IsSymmetric(1e-12) {
		t.Fatal("Hamiltonian not symmetric")
	}
}

func TestHamiltonianSparse(t *testing.T) {
	n := 500
	h, err := Hamiltonian(DefaultHamiltonian(n))
	if err != nil {
		t.Fatal(err)
	}
	density := float64(h.NNZ()) / float64(n*n)
	if density > 0.1 {
		t.Fatalf("density %.3f; CI Hamiltonians are sparse", density)
	}
	if h.NNZ() < int64(n) {
		t.Fatal("missing diagonal")
	}
}

func TestHamiltonianDeterministic(t *testing.T) {
	a, _ := Hamiltonian(DefaultHamiltonian(100))
	b, _ := Hamiltonian(DefaultHamiltonian(100))
	if a.NNZ() != b.NNZ() {
		t.Fatal("structure differs")
	}
	for i := range a.Val {
		if a.Val[i] != b.Val[i] {
			t.Fatal("values differ")
		}
	}
}

func TestRecorderCaptures(t *testing.T) {
	var r Recorder
	r.ReadAt(0, 100)
	r.WriteAt(50, 25)
	if len(r.Ops) != 2 {
		t.Fatal("ops missing")
	}
	if r.Ops[0] != (trace.PosixOp{Kind: trace.Read, Offset: 0, Size: 100}) {
		t.Fatalf("read op = %+v", r.Ops[0])
	}
	if r.Ops[1] != (trace.PosixOp{Kind: trace.Write, Offset: 50, Size: 25}) {
		t.Fatalf("write op = %+v", r.Ops[1])
	}
}

func TestTeeFansOut(t *testing.T) {
	var a, b Recorder
	tee := Tee{&a, &b}
	tee.ReadAt(1, 2)
	tee.WriteAt(3, 4)
	if len(a.Ops) != 2 || len(b.Ops) != 2 {
		t.Fatal("tee did not fan out")
	}
}

func TestMatrixStoreValidation(t *testing.T) {
	h, _ := Hamiltonian(DefaultHamiltonian(50))
	if _, err := NewMatrixStore(h, 0, &Recorder{}); err == nil {
		t.Fatal("zero panelRows accepted")
	}
	if _, err := NewMatrixStore(h, 10, nil); err == nil {
		t.Fatal("nil storage accepted")
	}
}

func TestMatrixStoreLayout(t *testing.T) {
	h, _ := Hamiltonian(DefaultHamiltonian(100))
	s, err := NewMatrixStore(h, 30, &Recorder{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Panels() != 4 { // 30+30+30+10
		t.Fatalf("panels = %d, want 4", s.Panels())
	}
	if s.Dim() != 100 {
		t.Fatal("dim wrong")
	}
	// Panels are laid out back to back.
	var expect int64
	for i := 0; i < s.Panels(); i++ {
		off, size := s.PanelSpan(i)
		if off != expect {
			t.Fatalf("panel %d at %d, want %d", i, off, expect)
		}
		expect += size
	}
	if s.Bytes() != expect {
		t.Fatalf("total bytes %d != %d", s.Bytes(), expect)
	}
}

func TestMatrixStoreApplyMatchesDirect(t *testing.T) {
	h, _ := Hamiltonian(DefaultHamiltonian(120))
	s, err := NewMatrixStore(h, 25, &Recorder{})
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(1)
	x := linalg.NewMatrix(120, 3)
	for i := range x.Data {
		x.Data[i] = rng.Float64() - 0.5
	}
	got := s.Apply(x)
	want := h.Mul(x)
	for i := range want.Data {
		if math.Abs(got.Data[i]-want.Data[i]) > 1e-12 {
			t.Fatal("out-of-core Apply diverges from in-memory multiply")
		}
	}
}

func TestMatrixStoreEmitsSequentialPanelReads(t *testing.T) {
	h, _ := Hamiltonian(DefaultHamiltonian(100))
	rec := &Recorder{}
	s, _ := NewMatrixStore(h, 20, rec)
	x := linalg.NewMatrix(100, 2)
	s.Apply(x)
	if len(rec.Ops) != s.Panels() {
		t.Fatalf("%d reads for %d panels", len(rec.Ops), s.Panels())
	}
	var cursor int64
	for i, op := range rec.Ops {
		if op.Kind != trace.Read {
			t.Fatal("non-read op in Apply")
		}
		if op.Offset != cursor {
			t.Fatalf("panel %d read at %d, want sequential %d", i, op.Offset, cursor)
		}
		cursor += op.Size
	}
}

// TestSolverTraceMatchesWorkload pins the synthetic workload generator to
// the real solver's I/O: same request count, sizes, and per-application
// sequential pattern.
func TestSolverTraceMatchesWorkload(t *testing.T) {
	n := 90
	h, _ := Hamiltonian(DefaultHamiltonian(n))
	rec := &Recorder{}
	store, _ := NewMatrixStore(h, 30, rec)
	res, err := linalg.LOBPCG(store, linalg.LOBPCGOptions{K: 3, MaxIter: 40, Tol: 1e-6, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	// LOBPCG applies the operator twice per iteration after the first
	// (A·X and A·S); the first iteration also applies twice.
	apps := len(rec.Ops) / store.Panels()
	if apps < 2 {
		t.Fatalf("only %d applications recorded", apps)
	}
	if len(rec.Ops)%store.Panels() != 0 {
		t.Fatalf("%d ops is not a whole number of panel sweeps", len(rec.Ops))
	}
	_ = res
	// Check the generator emits the identical pattern for one application.
	first, err := (Workload{
		MatrixBytes:  store.Bytes(),
		PanelBytes:   maxPanelBytes(store),
		Applications: 1,
	}).PosixTrace()
	if err != nil {
		t.Fatal(err)
	}
	// Same number of reads per sweep and same start/total.
	if len(first) != store.Panels() {
		t.Fatalf("generator emits %d ops per sweep, solver %d", len(first), store.Panels())
	}
	var genBytes, realBytes int64
	for _, op := range first {
		genBytes += op.Size
	}
	for _, op := range rec.Ops[:store.Panels()] {
		realBytes += op.Size
	}
	if genBytes != realBytes {
		t.Fatalf("generator sweep %d bytes, solver sweep %d bytes", genBytes, realBytes)
	}
}

func maxPanelBytes(s *MatrixStore) int64 {
	var m int64
	for i := 0; i < s.Panels(); i++ {
		if _, size := s.PanelSpan(i); size > m {
			m = size
		}
	}
	return m
}

func TestWorkloadValidation(t *testing.T) {
	if err := (Workload{}).Validate(); err == nil {
		t.Fatal("zero workload accepted")
	}
	w := DefaultWorkload()
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	w.PanelBytes = w.MatrixBytes * 2
	if err := w.Validate(); err == nil {
		t.Fatal("panel > matrix accepted")
	}
}

func TestWorkloadTraceShape(t *testing.T) {
	w := Workload{MatrixBytes: 20 << 20, PanelBytes: 8 << 20, Applications: 2}
	ops, err := w.PosixTrace()
	if err != nil {
		t.Fatal(err)
	}
	// Per application: 8 + 8 + 4 MiB panels.
	if len(ops) != 6 {
		t.Fatalf("ops = %d, want 6", len(ops))
	}
	var total int64
	for _, op := range ops {
		if op.Kind != trace.Read {
			t.Fatal("pure read workload expected")
		}
		total += op.Size
	}
	if total != w.TotalBytes() {
		t.Fatalf("trace bytes %d != TotalBytes %d", total, w.TotalBytes())
	}
}

func TestWorkloadPsiWrites(t *testing.T) {
	w := Workload{MatrixBytes: 16 << 20, PanelBytes: 8 << 20, Applications: 4, PsiBytes: 1 << 20}
	ops, _ := w.PosixTrace()
	writes := 0
	for _, op := range ops {
		if op.Kind == trace.Write {
			writes++
			if op.Offset < w.MatrixBytes {
				t.Fatal("Psi checkpoint overlaps the matrix region")
			}
		}
	}
	if writes != 2 { // one per application pair
		t.Fatalf("writes = %d, want 2", writes)
	}
	if w.TotalBytes() != 4*(16<<20)+2*(1<<20) {
		t.Fatalf("TotalBytes = %d", w.TotalBytes())
	}
}

package obs

import (
	"fmt"
	"io"
	"os"
	"strings"

	"oocnvm/internal/sim"
)

// Layer names used as Chrome trace "processes" and metric name prefixes.
// One name per major package of the stack, in descent order.
const (
	LayerFS           = "fs"
	LayerUFS          = "ufs"
	LayerFTL          = "ftl"
	LayerSSD          = "ssd"
	LayerInterconnect = "interconnect"
	LayerNVM          = "nvm"
	LayerDOoC         = "dooc"
)

// Probe is the hook instrumented code calls. Implementations must tolerate
// concurrent use. The Nop implementation makes every method free; hot paths
// should guard allocation-bearing calls (attr construction, fmt) behind
// Enabled.
type Probe interface {
	// Enabled reports whether spans/metrics are actually collected; use it
	// to skip attribute or track-name construction on hot paths.
	Enabled() bool
	// Span records one interval of simulated time on (layer, track).
	Span(layer, track, name string, start, end sim.Time, attrs ...Attr)
	// Count accumulates delta into the named counter.
	Count(name string, delta int64)
	// Observe records v into the named latency histogram.
	Observe(name string, v sim.Time)
	// SetGauge records the named gauge's current value.
	SetGauge(name string, v float64)
}

// Nop is the default probe: every call is a no-op and allocates nothing.
type Nop struct{}

// Enabled reports false.
func (Nop) Enabled() bool { return false }

// Span does nothing.
func (Nop) Span(layer, track, name string, start, end sim.Time, attrs ...Attr) {}

// Count does nothing.
func (Nop) Count(name string, delta int64) {}

// Observe does nothing.
func (Nop) Observe(name string, v sim.Time) {}

// SetGauge does nothing.
func (Nop) SetGauge(name string, v float64) {}

// OrNop returns p, or a Nop probe when p is nil, so layers can hold a Probe
// field that is always safe to call.
func OrNop(p Probe) Probe {
	if p == nil {
		return Nop{}
	}
	return p
}

// Collector is a working Probe: spans land in Tr, metrics in Reg. Either
// may be nil to collect only the other.
type Collector struct {
	Reg *Registry
	Tr  *Tracer
}

// NewCollector returns a Collector with a fresh registry and tracer.
func NewCollector() *Collector {
	return &Collector{Reg: NewRegistry(), Tr: NewTracer()}
}

// Enabled reports true.
func (c *Collector) Enabled() bool { return true }

// Span records the interval into the tracer.
func (c *Collector) Span(layer, track, name string, start, end sim.Time, attrs ...Attr) {
	if c.Tr != nil {
		c.Tr.Span(layer, track, name, start, end, attrs...)
	}
}

// Count accumulates into the registry counter.
func (c *Collector) Count(name string, delta int64) {
	if c.Reg != nil {
		c.Reg.Counter(name).Add(delta)
	}
}

// Observe records into the registry histogram.
func (c *Collector) Observe(name string, v sim.Time) {
	if c.Reg != nil {
		c.Reg.Histogram(name).Observe(v)
	}
}

// SetGauge records into the registry gauge.
func (c *Collector) SetGauge(name string, v float64) {
	if c.Reg != nil {
		c.Reg.Gauge(name).Set(v)
	}
}

// WriteTraceFile writes the tracer's Chrome trace JSON to path.
func (c *Collector) WriteTraceFile(path string) error {
	if c.Tr == nil {
		return fmt.Errorf("obs: collector has no tracer")
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := c.Tr.WriteChromeJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// SyncTracerMetrics mirrors the tracer's span totals into the registry as
// obs.trace.spans / obs.trace.dropped_spans, so a truncated trace is
// detectable from the metrics export alone. Overwrite semantics: calling it
// before every export is safe and never double-counts.
func (c *Collector) SyncTracerMetrics() {
	if c.Reg == nil || c.Tr == nil {
		return
	}
	c.Reg.Counter("obs.trace.spans").set(int64(c.Tr.Len()))
	c.Reg.Counter("obs.trace.dropped_spans").set(c.Tr.Dropped())
}

// WriteMetricsFile writes the registry snapshot to path: CSV when the path
// ends in ".csv", indented JSON otherwise. The tracer's span totals are
// synced into the registry first (SyncTracerMetrics).
func (c *Collector) WriteMetricsFile(path string) error {
	if c.Reg == nil {
		return fmt.Errorf("obs: collector has no registry")
	}
	c.SyncTracerMetrics()
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	var werr error
	if strings.HasSuffix(path, ".csv") {
		werr = c.Reg.WriteCSV(f)
	} else {
		werr = c.Reg.WriteJSON(f)
	}
	if werr != nil {
		f.Close()
		return werr
	}
	return f.Close()
}

// Instrument attaches p to x when x supports probing (exposes
// SetProbe(Probe)), reporting whether it did. It lets call sites wire
// probes through interface values (fs.FileSystem, nvm.Link,
// ssd.Translator) without import cycles or type switches.
func Instrument(x any, p Probe) bool {
	s, ok := x.(interface{ SetProbe(Probe) })
	if !ok {
		return false
	}
	s.SetProbe(p)
	return true
}

// FormatStageTable renders the snapshot's latency histograms as the
// end-of-run per-stage breakdown table: where simulated time goes, stage by
// stage, as a request descends the stack.
func FormatStageTable(s Snapshot) string {
	if len(s.Histograms) == 0 {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-28s %10s %10s %10s %10s %12s\n", "stage", "count", "p50", "p95", "p99", "total")
	for _, h := range s.Histograms {
		fmt.Fprintf(&b, "%-28s %10d %10v %10v %10v %12v\n",
			h.Name, h.Count, sim.Time(h.P50Ps), sim.Time(h.P95Ps), sim.Time(h.P99Ps), sim.Time(h.SumPs))
	}
	return b.String()
}

// WriteStageTable writes FormatStageTable to w with a heading, omitting
// everything when there are no histograms.
func WriteStageTable(w io.Writer, s Snapshot) {
	t := FormatStageTable(s)
	if t == "" {
		return
	}
	fmt.Fprintln(w, "per-stage latency breakdown:")
	fmt.Fprint(w, t)
}

package obs

import (
	"testing"

	"oocnvm/internal/sim"
)

func TestHistogramEmpty(t *testing.T) {
	h := NewRegistry().Histogram("x")
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatalf("fresh histogram not empty: count=%d sum=%v", h.Count(), h.Sum())
	}
	for _, q := range []float64{0.5, 0.95, 0.99, 1} {
		if got := h.Quantile(q); got != 0 {
			t.Fatalf("empty quantile(%v) = %v, want 0", q, got)
		}
	}
	s := h.Snapshot()
	if s.P50Ps != 0 || s.P95Ps != 0 || s.P99Ps != 0 || s.MeanPs != 0 {
		t.Fatalf("empty snapshot has nonzero percentiles: %+v", s)
	}
}

func TestHistogramSingleSample(t *testing.T) {
	h := NewRegistry().Histogram("x")
	v := 300 * sim.Nanosecond
	h.Observe(v)
	// With one sample, min == max == v, so every percentile collapses to
	// the exact observed value despite the coarse buckets.
	for _, q := range []float64{0.01, 0.5, 0.95, 0.99, 1} {
		if got := h.Quantile(q); got != v {
			t.Fatalf("quantile(%v) = %v, want %v", q, got, v)
		}
	}
	if h.Sum() != v || h.Count() != 1 {
		t.Fatalf("sum=%v count=%d", h.Sum(), h.Count())
	}
	s := h.Snapshot()
	if s.MinPs != int64(v) || s.MaxPs != int64(v) || s.MeanPs != float64(v) {
		t.Fatalf("snapshot: %+v", s)
	}
}

func TestHistogramBucketBoundaries(t *testing.T) {
	// Exact powers of two land in the bucket whose lower bound they are;
	// the quantile upper bound 2^(b+1) then clamps to the observed max, so
	// a single-valued population at a boundary is still reported exactly.
	for _, v := range []sim.Time{1, 2, 1024, 1 << 20, 1 << 40} {
		h := NewRegistry().Histogram("x")
		for i := 0; i < 10; i++ {
			h.Observe(v)
		}
		if got := h.Quantile(0.5); got != v {
			t.Fatalf("boundary value %d: p50 = %d", int64(v), int64(got))
		}
		if got := h.Quantile(0.99); got != v {
			t.Fatalf("boundary value %d: p99 = %d", int64(v), int64(got))
		}
	}
}

func TestHistogramBucketOf(t *testing.T) {
	cases := []struct {
		v sim.Time
		b int
	}{
		{-5, 0}, {0, 0}, {1, 0}, {2, 1}, {3, 1}, {4, 2}, {7, 2}, {8, 3},
		{1023, 9}, {1024, 10}, {1025, 10},
	}
	for _, c := range cases {
		if got := bucketOf(c.v); got != c.b {
			t.Fatalf("bucketOf(%d) = %d, want %d", int64(c.v), got, c.b)
		}
	}
}

func TestHistogramPercentilesOrderedAndConservative(t *testing.T) {
	h := NewRegistry().Histogram("x")
	// 90 short, 9 medium, 1 long: p50 in the short band, p95 medium, p99+
	// long.
	for i := 0; i < 90; i++ {
		h.Observe(1 * sim.Microsecond)
	}
	for i := 0; i < 9; i++ {
		h.Observe(100 * sim.Microsecond)
	}
	h.Observe(10 * sim.Millisecond)
	p50, p95, p99 := h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99)
	if !(p50 <= p95 && p95 <= p99) {
		t.Fatalf("percentiles out of order: %v %v %v", p50, p95, p99)
	}
	if p50 < 1*sim.Microsecond || p50 >= 100*sim.Microsecond {
		t.Fatalf("p50 = %v, want in the short band", p50)
	}
	if p95 < 100*sim.Microsecond || p95 >= 10*sim.Millisecond {
		t.Fatalf("p95 = %v, want in the medium band", p95)
	}
	if p99 != 10*sim.Millisecond {
		// rank ceil(0.99*100) = 99... the 99th sample is the last medium
		// one; allow either band boundary depending on rank math, but the
		// absolute max must be reachable.
		if h.Quantile(1) != 10*sim.Millisecond {
			t.Fatalf("q100 = %v, want max", h.Quantile(1))
		}
	}
}

func TestHistogramNegativeClampsToZero(t *testing.T) {
	h := NewRegistry().Histogram("x")
	h.Observe(-1 * sim.Second)
	if h.Sum() != 0 || h.Count() != 1 || h.Quantile(0.5) != 0 {
		t.Fatalf("negative observation not clamped: sum=%v", h.Sum())
	}
}

func TestHistogramAbsorb(t *testing.T) {
	r1, r2 := NewRegistry(), NewRegistry()
	a, b := r1.Histogram("lat"), r2.Histogram("lat")
	a.Observe(1 * sim.Microsecond)
	a.Observe(2 * sim.Microsecond)
	b.Observe(4 * sim.Microsecond)
	r1.Absorb(r2)
	if a.Count() != 3 || a.Sum() != 7*sim.Microsecond {
		t.Fatalf("absorb: count=%d sum=%v", a.Count(), a.Sum())
	}
	s := a.Snapshot()
	if s.MinPs != int64(1*sim.Microsecond) || s.MaxPs != int64(4*sim.Microsecond) {
		t.Fatalf("absorb min/max: %+v", s)
	}
	// Absorbing an empty registry changes nothing.
	r1.Absorb(NewRegistry())
	if a.Count() != 3 {
		t.Fatal("empty absorb mutated histogram")
	}
}

func TestHistogramQuantileOutOfRangeClamps(t *testing.T) {
	h := NewRegistry().Histogram("x")
	lo, hi := 100*sim.Nanosecond, 9*sim.Microsecond
	h.Observe(lo)
	h.Observe(3 * sim.Microsecond)
	h.Observe(hi)
	if got := h.Quantile(0); got != lo {
		t.Fatalf("quantile(0) = %v, want observed min %v", got, lo)
	}
	if got := h.Quantile(-0.5); got != lo {
		t.Fatalf("quantile(-0.5) = %v, want observed min %v", got, lo)
	}
	if got := h.Quantile(2); got != h.Quantile(1) {
		t.Fatalf("quantile(2) = %v, want quantile(1) = %v", got, h.Quantile(1))
	}
	if got := h.Quantile(1); got != hi {
		t.Fatalf("quantile(1) = %v, want observed max %v", got, hi)
	}
	// Out-of-range q on an empty histogram stays zero.
	e := NewRegistry().Histogram("e")
	if e.Quantile(-1) != 0 || e.Quantile(2) != 0 {
		t.Fatalf("empty out-of-range quantiles nonzero: %v %v", e.Quantile(-1), e.Quantile(2))
	}
}

package attrib

import (
	"strings"
	"testing"

	"oocnvm/internal/obs"
	"oocnvm/internal/sim"
)

func TestComponentNames(t *testing.T) {
	for c := Component(0); c < NumComponents; c++ {
		if s := c.String(); s == "" || strings.HasPrefix(s, "Component(") {
			t.Fatalf("component %d has no name", c)
		}
		if m := c.MetricName(); !strings.HasPrefix(m, "attrib.") {
			t.Fatalf("metric name %q missing attrib. prefix", m)
		}
		if n := c.csvName(); !strings.HasSuffix(n, "_ps") || strings.Contains(n, "-") {
			t.Fatalf("csv column %q malformed", n)
		}
	}
	if Component(-1).String() != "Component(-1)" {
		t.Fatal("out-of-range String not guarded")
	}
	if KindName(0) != "read" || KindName(1) != "write" || KindName(2) != "erase" {
		t.Fatal("kind names wrong")
	}
	if KindName(9) != "kind(9)" {
		t.Fatal("unknown kind not guarded")
	}
}

func TestRecordArithmetic(t *testing.T) {
	r := Record{Arrive: 100, End: 400}
	r.Comp[Queue] = 50
	r.Comp[DieService] = 200
	r.Comp[BusWait] = 50
	if r.Latency() != 300 {
		t.Fatalf("latency = %v", r.Latency())
	}
	if r.Sum() != 300 || r.Residual() != 0 {
		t.Fatalf("sum = %v residual = %v", r.Sum(), r.Residual())
	}
	c, d := r.Dominant()
	if c != DieService || d != 200 {
		t.Fatalf("dominant = %v/%v", c, d)
	}
	r.Comp[DieService] = 100
	if r.Residual() != 100 {
		t.Fatalf("residual after breaking conservation = %v", r.Residual())
	}
}

// drive commits one request built from drive notes plus activation chains,
// returning the recorder for inspection.
func drive(rec *Recorder, arrive, end sim.Time, chains ...func(*Recorder)) {
	rec.Begin(0, 0, 4096, arrive)
	rec.Note(Queue, 10)
	for _, ch := range chains {
		ch(rec)
	}
	rec.Commit(end)
}

func TestCriticalPathKeepsLatestFinishingChain(t *testing.T) {
	rec := NewRecorder(4)
	rec.Begin(0, 0, 4096, 0)
	rec.Note(Queue, 10)
	// Two activations: the second finishes later, so its chain must win.
	rec.StartActivation(false)
	rec.Seg(DieWait, 5)
	rec.Seg(DieService, 20)
	rec.EndActivation(35)
	rec.StartActivation(false)
	rec.Seg(DieWait, 30)
	rec.Seg(DieService, 50)
	rec.EndActivation(90)
	rec.Commit(90)

	s := rec.Summary()
	if s.Requests != 1 || s.Violations != 0 {
		t.Fatalf("requests=%d violations=%d", s.Requests, s.Violations)
	}
	ex := s.Exemplars[0]
	if ex.Comp[DieWait] != 30 || ex.Comp[DieService] != 50 || ex.Comp[Queue] != 10 {
		t.Fatalf("winning chain wrong: %+v", ex.Comp)
	}
	if ex.Residual() != 0 {
		t.Fatalf("residual = %v", ex.Residual())
	}
}

func TestTieKeepsFirstChain(t *testing.T) {
	// Equal finish instants: the first chain wins (strict >), matching
	// sim.MaxTime keeping the first maximum.
	rec := NewRecorder(1)
	rec.Begin(0, 0, 0, 0)
	rec.StartActivation(false)
	rec.Seg(DieService, 40)
	rec.EndActivation(40)
	rec.StartActivation(false)
	rec.Seg(BusXfer, 40)
	rec.EndActivation(40)
	rec.Commit(40)
	ex := rec.Summary().Exemplars[0]
	if ex.Comp[DieService] != 40 || ex.Comp[BusXfer] != 0 {
		t.Fatalf("tie broke toward the later chain: %+v", ex.Comp)
	}
}

func TestGCChainFoldsIntoGCComponent(t *testing.T) {
	rec := NewRecorder(1)
	rec.Begin(1, 0, 4096, 0)
	rec.StartActivation(true)
	rec.Seg(DieWait, 15)
	rec.Seg(DieService, 25)
	rec.EndActivation(40)
	rec.Commit(40)
	ex := rec.Summary().Exemplars[0]
	if ex.Comp[GC] != 40 {
		t.Fatalf("GC fold = %v, want 40", ex.Comp[GC])
	}
	if ex.Comp[DieWait] != 0 || ex.Comp[DieService] != 0 {
		t.Fatalf("GC chain leaked into per-segment components: %+v", ex.Comp)
	}
	if ex.Residual() != 0 {
		t.Fatalf("residual = %v", ex.Residual())
	}
}

func TestPauseSuppressesRecording(t *testing.T) {
	rec := NewRecorder(1)
	rec.Begin(0, 0, 0, 0)
	rec.Pause()
	if rec.DeviceActive() {
		t.Fatal("DeviceActive while paused")
	}
	rec.Note(DieWait, 100)
	rec.NotePages(3, 1)
	rec.StartActivation(false)
	rec.Seg(DieService, 100)
	rec.EndActivation(100)
	rec.Resume()
	rec.Note(Recovery, 50)
	rec.Commit(50)
	ex := rec.Summary().Exemplars[0]
	if ex.Comp[DieWait] != 0 || ex.Comp[DieService] != 0 || ex.Pages != 0 {
		t.Fatalf("paused segments recorded: %+v pages=%d", ex.Comp, ex.Pages)
	}
	if ex.Comp[Recovery] != 50 || ex.Residual() != 0 {
		t.Fatalf("recovery note lost: %+v", ex.Comp)
	}
}

func TestAbortAndViolationAccounting(t *testing.T) {
	rec := NewRecorder(2)
	rec.Begin(0, 0, 0, 0)
	rec.Abort()
	rec.Abort() // no open request: must not double-count
	// A request whose notes under-cover the latency is a violation.
	rec.Begin(0, 0, 0, 0)
	rec.Note(Queue, 30)
	rec.Commit(100)
	s := rec.Summary()
	if s.Aborted != 1 {
		t.Fatalf("aborted = %d", s.Aborted)
	}
	if s.Violations != 1 || s.MaxResidual != 70 {
		t.Fatalf("violations = %d maxResidual = %v", s.Violations, s.MaxResidual)
	}
	if rec.Violations() != 1 || rec.Requests() != 1 {
		t.Fatalf("accessors: violations=%d requests=%d", rec.Violations(), rec.Requests())
	}
}

func TestTopKHeapKeepsSlowest(t *testing.T) {
	rec := NewRecorder(3)
	lat := []sim.Time{50, 200, 10, 150, 90, 300, 70}
	for _, l := range lat {
		rec.Begin(0, 0, 0, 0)
		rec.Note(DieService, l)
		rec.Commit(l)
	}
	s := rec.Summary()
	if len(s.Exemplars) != 3 {
		t.Fatalf("exemplars = %d", len(s.Exemplars))
	}
	want := []sim.Time{300, 200, 150}
	for i, ex := range s.Exemplars {
		if ex.Latency() != want[i] {
			t.Fatalf("exemplar %d latency = %v, want %v", i, ex.Latency(), want[i])
		}
	}
	// Equal latencies keep the earlier request (strict > replacement) and
	// sort ID-ascending.
	rec2 := NewRecorder(2)
	for i := 0; i < 4; i++ {
		rec2.Begin(0, int64(i), 0, 0)
		rec2.Note(Queue, 100)
		rec2.Commit(100)
	}
	s2 := rec2.Summary()
	if s2.Exemplars[0].ID != 0 || s2.Exemplars[1].ID != 1 {
		t.Fatalf("tie eviction kept IDs %d,%d, want 0,1",
			s2.Exemplars[0].ID, s2.Exemplars[1].ID)
	}
}

func TestNilRecorderIsSafe(t *testing.T) {
	var rec *Recorder
	rec.Begin(0, 0, 0, 0)
	rec.Abort()
	rec.Note(Queue, 1)
	rec.NotePages(1, 0)
	rec.Pause()
	rec.Resume()
	rec.StartActivation(false)
	rec.Seg(DieWait, 1)
	rec.EndActivation(1)
	rec.Commit(1)
	rec.BindRegistry(obs.NewRegistry())
	if rec.DeviceActive() {
		t.Fatal("nil recorder active")
	}
	if rec.Requests() != 0 || rec.Violations() != 0 {
		t.Fatal("nil recorder counted")
	}
	if s := rec.Summary(); s.Requests != 0 || len(s.Exemplars) != 0 {
		t.Fatal("nil recorder summary non-zero")
	}
}

func TestBindRegistryObservesComponents(t *testing.T) {
	reg := obs.NewRegistry()
	rec := NewRecorder(1)
	rec.BindRegistry(reg)
	rec.Begin(0, 0, 0, 0)
	rec.Note(Queue, sim.Microsecond)
	rec.Note(DieService, 2*sim.Microsecond)
	rec.Commit(3 * sim.Microsecond)
	snap := reg.Snapshot()
	got := map[string]int64{}
	for _, h := range snap.Histograms {
		got[h.Name] = h.Count
	}
	if got["attrib.queue"] != 1 || got["attrib.die-service"] != 1 || got["attrib.e2e"] != 1 {
		t.Fatalf("histogram counts = %v", got)
	}
	// Empty components exist (bound eagerly) but hold no samples.
	if got["attrib.gc"] != 0 {
		t.Fatalf("empty component observed: %v", got)
	}
}

func TestSummaryTableAndCSV(t *testing.T) {
	rec := NewRecorder(2)
	drive(rec, 0, 100, func(r *Recorder) {
		r.StartActivation(false)
		r.Seg(DieService, 90)
		r.EndActivation(90)
	})
	s := rec.Summary()
	tbl := s.FormatTable()
	for _, want := range []string{"latency attribution: 1 requests", "die-service", "queue"} {
		if !strings.Contains(tbl, want) {
			t.Fatalf("table missing %q:\n%s", want, tbl)
		}
	}
	if strings.Contains(tbl, "CONSERVATION") {
		t.Fatalf("clean run flagged:\n%s", tbl)
	}

	var b strings.Builder
	if err := s.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("csv lines = %d", len(lines))
	}
	if cols := strings.Count(lines[0], ","); cols != 7+int(NumComponents) {
		t.Fatalf("csv columns = %d, want %d", cols+1, 8+int(NumComponents))
	}
	if !strings.HasSuffix(lines[1], ",0") {
		t.Fatalf("residual column non-zero: %s", lines[1])
	}

	// Ranked orders by mass, heaviest first.
	r := s.Ranked()
	if len(r) != 2 || r[0] != DieService || r[1] != Queue {
		t.Fatalf("ranked = %v", r)
	}
}

func TestViolationBannerInTable(t *testing.T) {
	rec := NewRecorder(1)
	rec.Begin(0, 0, 0, 0)
	rec.Commit(100) // nothing attributed
	tbl := rec.Summary().FormatTable()
	if !strings.Contains(tbl, "CONSERVATION VIOLATED") {
		t.Fatalf("violation banner missing:\n%s", tbl)
	}
}

// TestSteadyStateAllocations pins the zero-alloc guarantee: once the
// exemplar heap is at capacity, a full Begin/Note/activation/Commit cycle —
// including bound histograms — performs no heap allocations.
func TestSteadyStateAllocations(t *testing.T) {
	rec := NewRecorder(4)
	rec.BindRegistry(obs.NewRegistry())
	lat := sim.Time(0)
	cycle := func() {
		lat += 7
		rec.Begin(0, int64(lat), 4096, lat)
		rec.Note(Queue, 3)
		rec.NotePages(2, 1)
		rec.StartActivation(false)
		rec.Seg(DieWait, 2)
		rec.Seg(DieService, lat%97+1)
		rec.EndActivation(lat + lat%97 + 6)
		rec.Commit(lat + lat%97 + 6)
	}
	for i := 0; i < 8; i++ {
		cycle() // fill the heap past capacity
	}
	if got := testing.AllocsPerRun(200, cycle); got != 0 {
		t.Fatalf("steady-state allocations per request = %v, want 0", got)
	}
}

// Package attrib decomposes every request's simulated latency into named
// wait/service components that provably sum to the end-to-end latency —
// the "latency anatomy" lens: queue admission, host-link overhead and DMA,
// channel-bus waits and transfers, die waits and service, read-retry
// ladder steps, garbage-collection stalls and grown-bad-block recovery.
//
// The decomposition is exact by construction. The drive stamps the queue,
// overhead and recovery segments as differences of its own timestamps; the
// device records, for each cell activation it schedules, the chain of
// timestamp differences from dispatch to that activation's completion, and
// keeps the chain of the activation that finished last (the critical path
// of sim.MaxTime). Every segment is a difference of two adjacent simulated
// instants, so the components telescope to exactly end minus arrival; the
// residual of a committed record is always zero, and internal/check
// enforces that invariant as a conformance envelope.
//
// A Recorder is strictly request-scoped and allocation-free in steady
// state: records are fixed-size value types, the exemplar collector is a
// preallocated bounded min-heap, and histogram observation reuses the
// obs.Histogram fixed bucket array. All Recorder methods are nil-safe so
// instrumented layers can call through an absent recorder for free.
package attrib

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"text/tabwriter"

	"oocnvm/internal/obs"
	"oocnvm/internal/obs/hostperf"
	"oocnvm/internal/sim"
)

// Component names one slice of a request's latency anatomy.
type Component int

// The component taxonomy. Order is the waterfall rendering order: host-side
// first, then interconnect, then device-internal, then exceptional work.
const (
	// Queue is time spent waiting for a native-command-queue slot or
	// readahead-window bytes (including sync barrier drains).
	Queue Component = iota
	// HostOverhead is the host link's fixed per-request cost (protocol
	// re-encoding in bridges, network round-trip setup).
	HostOverhead
	// LinkWait is host-link queueing: time serialized behind other
	// transfers on the shared host link beyond the pure wire time.
	LinkWait
	// LinkXfer is pure host-link wire time for the critical page's data.
	LinkXfer
	// BusWait is channel-bus contention: waiting for the shared channel
	// bus behind other dies' transfers.
	BusWait
	// BusXfer is channel-bus occupancy moving the critical data.
	BusXfer
	// DieWait is cell contention: waiting for the target die to become
	// idle (earlier activations, register staging drains).
	DieWait
	// DieService is die work on the critical path: sensing, programming,
	// erasing, and register staging of the critical page.
	DieService
	// Retry is the read-retry ladder: extra stepped re-senses the ECC
	// budget demanded on the critical activation.
	Retry
	// GC is garbage-collection stall time: the whole critical-path chain
	// of an activation carrying only relocation/erase traffic, plus the
	// portion of a host chain's entry die-wait spent behind this request's
	// own foreground collection on the same die.
	GC
	// Meta is durable-metadata overhead: the whole critical-path chain of
	// an activation carrying only FTL journal/checkpoint pages, plus the
	// erase-barrier delay durable mode imposes so victim erases never
	// reorder ahead of the metadata that made them safe.
	Meta
	// Recovery is exceptional repair work: grown-bad-block relocation
	// traffic serviced inline after the request's own media work, and
	// mount-time crash recovery (journal replay + open-superblock scan).
	Recovery

	// NumComponents is the taxonomy size; component arrays index by it.
	NumComponents
)

var componentNames = [NumComponents]string{
	"queue", "host-overhead", "link-wait", "link-xfer",
	"bus-wait", "bus-xfer", "die-wait", "die-service",
	"read-retry", "gc", "meta-journal", "recovery",
}

// String names the component ("queue", "die-service", ...).
func (c Component) String() string {
	if c < 0 || c >= NumComponents {
		return fmt.Sprintf("Component(%d)", int(c))
	}
	return componentNames[c]
}

// MetricName is the component's latency-histogram name in the metrics
// registry ("attrib.queue", ...).
func (c Component) MetricName() string { return "attrib." + componentNames[c] }

// csvName is the component's CSV column ("queue_ps", "die_service_ps", ...).
func (c Component) csvName() string {
	return strings.ReplaceAll(componentNames[c], "-", "_") + "_ps"
}

// kindNames maps trace.Kind values (uint8: read=0, write=1, erase=2)
// without importing the trace package; kind 3 is the synthetic mount
// record the drive commits for crash recovery (no block op carries it).
var kindNames = [...]string{"read", "write", "erase", "mount"}

// KindName names a block-operation kind byte.
func KindName(k uint8) string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", k)
}

// Record is one request's complete latency anatomy. It is a fixed-size
// value type (no pointers) so exemplar collection never allocates.
type Record struct {
	ID      int64 // submission sequence number, 0-based
	Kind    uint8 // trace.Kind byte: read=0, write=1, erase=2
	Offset  int64
	Size    int64
	Arrive  sim.Time
	End     sim.Time
	Pages   int32 // page ops the translator emitted
	GCPages int32 // of which garbage-collection traffic
	Comp    [NumComponents]sim.Time
}

// Latency is the request's end-to-end simulated latency.
func (r Record) Latency() sim.Time { return r.End - r.Arrive }

// Sum totals the attributed components.
func (r Record) Sum() sim.Time {
	var t sim.Time
	for _, d := range r.Comp {
		t += d
	}
	return t
}

// Residual is latency minus the component sum — zero for every committed
// record when the conservation invariant holds.
func (r Record) Residual() sim.Time { return r.Latency() - r.Sum() }

// Dominant returns the component holding the largest share (ties to the
// earlier component in waterfall order) and its duration.
func (r Record) Dominant() (Component, sim.Time) {
	dc, dv := Component(0), sim.Time(0)
	for c, d := range r.Comp {
		if d > dv {
			dc, dv = Component(c), d
		}
	}
	return dc, dv
}

// DefaultTopK is the default slow-request exemplar capacity.
const DefaultTopK = 16

// Recorder is the request-scoped attribution context one drive threads
// through its stack. It is single-goroutine like the simulator itself, and
// all methods are nil-safe (a nil *Recorder records nothing).
type Recorder struct {
	active bool
	paused int
	nextID int64
	cur    Record

	// Critical-path scratch: the per-activation chain being recorded, and
	// the best (latest-finishing) chain seen for the current request.
	// actFold/bestFold name the component a winning chain collapses into
	// wholesale (GC for relocation-only activations, Meta for
	// journal-only ones), or noFold for an ordinary per-component chain.
	inAct     bool
	actFold   Component
	scratch   [NumComponents]sim.Time
	bestSet   bool
	bestFold  Component
	bestEnd   sim.Time
	bestChain [NumComponents]sim.Time

	// Aggregates over committed requests.
	requests     int64
	aborted      int64
	violations   int64
	maxResidual  sim.Time
	totalLatency sim.Time
	totals       [NumComponents]sim.Time
	dominant     [NumComponents]int64

	// Optional registry-backed histograms (BindRegistry).
	hComp [NumComponents]*obs.Histogram
	// reg backs the lazy Meta histogram (see BindRegistry).
	reg  *obs.Registry
	hE2E *obs.Histogram

	// Bounded min-heap of the slowest requests, keyed by latency.
	topK []Record
	k    int
}

// NewRecorder builds a recorder keeping the k slowest requests as
// exemplars (k <= 0 selects DefaultTopK). The exemplar heap is
// preallocated; steady-state recording performs no allocations.
func NewRecorder(k int) *Recorder {
	if k <= 0 {
		k = DefaultTopK
	}
	hostperf.Enter(hostperf.SiteAttrib)
	defer hostperf.Exit()
	return &Recorder{k: k, topK: make([]Record, 0, k)}
}

// BindRegistry creates the per-component latency histograms
// ("attrib.<component>") and the end-to-end histogram ("attrib.e2e") in r
// and routes every commit's observations into them.
func (rec *Recorder) BindRegistry(r *obs.Registry) {
	if rec == nil || r == nil {
		return
	}
	for c := Component(0); c < NumComponents; c++ {
		if c == Meta {
			// Registered lazily on the first observation: a run that
			// never books durable-metadata time keeps its exported
			// artifacts byte-identical to builds predating the component.
			continue
		}
		rec.hComp[c] = r.Histogram(c.MetricName())
	}
	rec.reg = r
	rec.hE2E = r.Histogram("attrib.e2e")
}

// Begin opens attribution for one request arriving at the given instant.
// An unfinished previous request (neither Commit nor Abort) is discarded.
func (rec *Recorder) Begin(kind uint8, offset, size int64, arrive sim.Time) {
	if rec == nil {
		return
	}
	rec.cur = Record{ID: rec.nextID, Kind: kind, Offset: offset, Size: size, Arrive: arrive}
	rec.nextID++
	rec.active = true
	rec.paused = 0
	rec.inAct = false
	rec.bestSet = false
	rec.bestFold = noFold
	rec.bestEnd = 0
}

// Abort discards the open request (rejected before reaching the media:
// out-of-range, read-only degradation).
func (rec *Recorder) Abort() {
	if rec == nil || !rec.active {
		return
	}
	rec.active = false
	rec.aborted++
}

// Note attributes a drive-level segment (queue wait, recovery time) to the
// open request.
func (rec *Recorder) Note(c Component, d sim.Time) {
	if rec == nil || !rec.active || rec.paused > 0 || d <= 0 {
		return
	}
	rec.cur.Comp[c] += d
}

// NotePages records the translated page-op population of the request.
func (rec *Recorder) NotePages(total, gc int) {
	if rec == nil || !rec.active || rec.paused > 0 {
		return
	}
	rec.cur.Pages += int32(total)
	rec.cur.GCPages += int32(gc)
}

// DeviceActive reports whether the device should record activation chains:
// a request is open and recovery traffic is not being replayed.
func (rec *Recorder) DeviceActive() bool {
	return rec != nil && rec.active && rec.paused == 0
}

// Pause suppresses recording (the drive replays recovery relocation
// through the device; its activations are charged wholesale to Recovery,
// not traced as the request's own chain). Pairs with Resume.
func (rec *Recorder) Pause() {
	if rec == nil {
		return
	}
	rec.paused++
}

// Resume re-enables recording after a Pause.
func (rec *Recorder) Resume() {
	if rec == nil || rec.paused == 0 {
		return
	}
	rec.paused--
}

// noFold marks an ordinary activation chain that commits per-component.
const noFold Component = -1

// StartActivation opens one cell activation's chain. gc marks a chain
// carrying only garbage-collection traffic; if it wins the critical path
// its whole chain is folded into the GC component.
func (rec *Recorder) StartActivation(gc bool) {
	fold := noFold
	if gc {
		fold = GC
	}
	rec.StartActivationFold(fold)
}

// StartActivationFold opens one cell activation's chain that, should it
// win the critical path, collapses wholesale into the given component
// (GC for relocation-only, Meta for journal-only activations). Pass a
// negative component for an ordinary per-component chain.
func (rec *Recorder) StartActivationFold(fold Component) {
	if !rec.DeviceActive() {
		return
	}
	rec.inAct = true
	rec.actFold = fold
	rec.scratch = [NumComponents]sim.Time{}
}

// Seg attributes one segment of the open activation's chain.
func (rec *Recorder) Seg(c Component, d sim.Time) {
	if rec == nil || !rec.inAct || d <= 0 {
		return
	}
	rec.scratch[c] += d
}

// EndActivation closes the open activation's chain, finishing at done.
// The latest-finishing activation is the request's critical path (strict
// ordering matches sim.MaxTime keeping the first maximum).
func (rec *Recorder) EndActivation(done sim.Time) {
	if rec == nil || !rec.inAct {
		return
	}
	rec.inAct = false
	if !rec.bestSet || done > rec.bestEnd {
		rec.bestSet = true
		rec.bestEnd = done
		rec.bestFold = rec.actFold
		rec.bestChain = rec.scratch
	}
}

// Commit closes the open request at its completion time: folds the winning
// activation chain into the record, verifies conservation, feeds the
// aggregates and histograms, and offers the record to the exemplar heap.
func (rec *Recorder) Commit(end sim.Time) {
	if rec == nil || !rec.active {
		return
	}
	// The recorder is allocation-free in steady state; the hostperf region
	// exists to prove it — the obs-attrib subsystem row reading ~0 is the
	// zero-alloc contract, and any future regression lands on this site.
	hostperf.Enter(hostperf.SiteAttrib)
	defer hostperf.Exit()
	rec.active = false
	r := &rec.cur
	r.End = end
	if rec.bestSet {
		if rec.bestFold >= 0 {
			var t sim.Time
			for _, d := range rec.bestChain {
				t += d
			}
			r.Comp[rec.bestFold] += t
		} else {
			for c, d := range rec.bestChain {
				r.Comp[c] += d
			}
		}
	}
	lat := r.Latency()
	if res := lat - r.Sum(); res != 0 {
		rec.violations++
		if res < 0 {
			res = -res
		}
		if res > rec.maxResidual {
			rec.maxResidual = res
		}
	}
	rec.requests++
	rec.totalLatency += lat
	domC, domV := Component(0), sim.Time(0)
	for c := range r.Comp {
		d := r.Comp[c]
		rec.totals[c] += d
		if d > domV {
			domC, domV = Component(c), d
		}
		if d > 0 {
			if rec.hComp[c] == nil && rec.reg != nil && Component(c) == Meta {
				rec.hComp[c] = rec.reg.Histogram(Component(c).MetricName())
			}
			if rec.hComp[c] != nil {
				rec.hComp[c].Observe(d)
			}
		}
	}
	if domV > 0 {
		rec.dominant[domC]++
	}
	if rec.hE2E != nil {
		rec.hE2E.Observe(lat)
	}
	rec.offer(*r)
}

// offer inserts the record into the bounded min-heap of slowest requests.
func (rec *Recorder) offer(r Record) {
	if rec.k <= 0 {
		return
	}
	h := rec.topK
	if len(h) < rec.k {
		h = append(h, r)
		i := len(h) - 1
		for i > 0 {
			p := (i - 1) / 2
			if h[p].Latency() <= h[i].Latency() {
				break
			}
			h[p], h[i] = h[i], h[p]
			i = p
		}
		rec.topK = h
		return
	}
	if r.Latency() <= h[0].Latency() {
		return
	}
	h[0] = r
	n := len(h)
	for i := 0; ; {
		small := i
		if l := 2*i + 1; l < n && h[l].Latency() < h[small].Latency() {
			small = l
		}
		if rr := 2*i + 2; rr < n && h[rr].Latency() < h[small].Latency() {
			small = rr
		}
		if small == i {
			break
		}
		h[i], h[small] = h[small], h[i]
		i = small
	}
}

// Reset clears the recorder's aggregates, exemplar heap and any open
// request while keeping the exemplar backing storage and the registry
// histogram bindings, so a recorder reused across runs records into
// recycled memory. The request ID sequence restarts at zero.
func (rec *Recorder) Reset() {
	if rec == nil {
		return
	}
	rec.active = false
	rec.paused = 0
	rec.nextID = 0
	rec.inAct = false
	rec.bestSet = false
	rec.bestFold = noFold
	rec.bestEnd = 0
	rec.requests = 0
	rec.aborted = 0
	rec.violations = 0
	rec.maxResidual = 0
	rec.totalLatency = 0
	rec.totals = [NumComponents]sim.Time{}
	rec.dominant = [NumComponents]int64{}
	rec.topK = rec.topK[:0]
}

// Requests reports how many requests have been committed.
func (rec *Recorder) Requests() int64 {
	if rec == nil {
		return 0
	}
	return rec.requests
}

// Violations reports how many committed requests broke conservation
// (components failed to sum to the end-to-end latency) — always zero when
// the instrumentation is correct.
func (rec *Recorder) Violations() int64 {
	if rec == nil {
		return 0
	}
	return rec.violations
}

// Summary is the analysis-ready aggregate of one recorder's lifetime.
type Summary struct {
	// Requests committed; Aborted were rejected before the media.
	Requests int64
	Aborted  int64
	// Violations counts committed requests whose components did not sum
	// to the end-to-end latency; MaxResidual is the worst absolute gap.
	Violations  int64
	MaxResidual sim.Time
	// TotalLatency sums end-to-end latency over all committed requests.
	TotalLatency sim.Time
	// Totals is the per-component latency mass; Dominant counts requests
	// whose anatomy each component dominated.
	Totals   [NumComponents]sim.Time
	Dominant [NumComponents]int64
	// Exemplars are the slowest requests, latency-descending (ID ascending
	// on ties), complete with their per-component anatomy.
	Exemplars []Record
}

// Summary snapshots the recorder (allocates; call at export time).
// A nil recorder yields a zero summary.
func (rec *Recorder) Summary() Summary {
	if rec == nil {
		return Summary{}
	}
	s := Summary{
		Requests:     rec.requests,
		Aborted:      rec.aborted,
		Violations:   rec.violations,
		MaxResidual:  rec.maxResidual,
		TotalLatency: rec.totalLatency,
		Totals:       rec.totals,
		Dominant:     rec.dominant,
		Exemplars:    append([]Record(nil), rec.topK...),
	}
	sort.Slice(s.Exemplars, func(i, j int) bool {
		a, b := s.Exemplars[i], s.Exemplars[j]
		if a.Latency() != b.Latency() {
			return a.Latency() > b.Latency()
		}
		return a.ID < b.ID
	})
	return s
}

// Ranked returns the components ordered by total latency mass, heaviest
// first (ties in waterfall order), dropping empty components.
func (s Summary) Ranked() []Component {
	out := make([]Component, 0, NumComponents)
	for c := Component(0); c < NumComponents; c++ {
		if s.Totals[c] > 0 {
			out = append(out, c)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return s.Totals[out[i]] > s.Totals[out[j]] })
	return out
}

// FormatTable renders the critical-path ranking as an aligned table:
// each component's total latency mass, its share of all request latency,
// and how many requests it dominated.
func (s Summary) FormatTable() string {
	var b strings.Builder
	fmt.Fprintf(&b, "latency attribution: %d requests", s.Requests)
	if s.Aborted > 0 {
		fmt.Fprintf(&b, " (%d rejected)", s.Aborted)
	}
	if s.Violations > 0 {
		fmt.Fprintf(&b, " — CONSERVATION VIOLATED on %d (max residual %v)", s.Violations, s.MaxResidual)
	}
	b.WriteString("\n")
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "  component\ttotal\tshare\tdominates\n")
	for _, c := range s.Ranked() {
		share := 0.0
		if s.TotalLatency > 0 {
			share = 100 * float64(s.Totals[c]) / float64(s.TotalLatency)
		}
		fmt.Fprintf(w, "  %s\t%v\t%.1f%%\t%d\n", c, s.Totals[c], share, s.Dominant[c])
	}
	w.Flush()
	return b.String()
}

// WriteCSV emits the exemplar records as deterministic CSV: one row per
// slow request, latency-descending, with one picosecond column per
// component plus the conservation residual.
func (s Summary) WriteCSV(w io.Writer) error {
	var b strings.Builder
	b.WriteString("id,kind,offset,size,arrive_ps,end_ps,latency_ps")
	for c := Component(0); c < NumComponents; c++ {
		b.WriteByte(',')
		b.WriteString(c.csvName())
	}
	b.WriteString(",residual_ps\n")
	if _, err := io.WriteString(w, b.String()); err != nil {
		return err
	}
	for _, r := range s.Exemplars {
		b.Reset()
		fmt.Fprintf(&b, "%d,%s,%d,%d,%d,%d,%d",
			r.ID, KindName(r.Kind), r.Offset, r.Size,
			int64(r.Arrive), int64(r.End), int64(r.Latency()))
		for _, d := range r.Comp {
			fmt.Fprintf(&b, ",%d", int64(d))
		}
		fmt.Fprintf(&b, ",%d\n", int64(r.Residual()))
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}

// Package obs is the repository's unified observability layer: a
// zero-dependency metrics registry and a span-based event tracer shared by
// every simulated subsystem (fs → ftl → ssd → interconnect → nvm → dooc).
//
// The paper's entire argument rests on measurement visibility — its probes
// decompose device time into channel-bus, die and contention components
// (Figures 8–10) to show where simulated time goes as a request descends the
// stack. This package makes that decomposition a first-class, cross-layer
// facility instead of ad-hoc per-package counters.
//
// # Metrics registry
//
// A Registry holds named Counters (monotonic int64), Gauges (float64) and
// Histograms (fixed power-of-two picosecond buckets over sim.Time values,
// with exact Sum/Min/Max and conservative p50/p95/p99). Snapshots are
// deterministic — entries are sorted by name — and export as JSON or CSV,
// so two runs with the same inputs emit byte-identical metrics files.
//
// # Event tracer
//
// A Tracer records spans of simulated time: (layer, track, name, start, end,
// attrs). Layers map to Chrome trace_event "processes" and tracks to
// "threads" (one per channel, die, queue, link...), so WriteChromeJSON
// produces a file loadable in chrome://tracing or https://ui.perfetto.dev
// that shows per-channel bus transfers, per-die cell activations, SSD queue
// residency and host-link DMA on one timeline. The tracer is bounded
// (SetLimit); events beyond the limit are counted in Dropped rather than
// silently discarded.
//
// Layers whose work is not scheduled in simulated time (the file-system
// translation layers, which run ahead of the replay) lay their translate
// spans on a synthetic one-request-per-microsecond timeline; those tracks
// visualize request fan-out, not timing, and are documented as such at the
// emitting sites.
//
// # Probes
//
// Probe is the interface instrumented code calls. The Nop implementation
// makes every call free of allocations and observable work, so hot paths
// (nvm.Device.Submit, ssd.SSD.Submit) stay unperturbed when observability
// is disabled; internal/ssd guards this with a testing.AllocsPerRun test.
// Collector bundles a Registry and a Tracer into a working Probe; wire it
// with SetProbe/Instrument on each layer, or let ssd.Config.Probe fan it
// out to the device.
//
// # Naming conventions
//
// Metric names are dot-separated and layer-prefixed: "nvm.bytes_read",
// "ssd.request.latency", "ftl.gc.runs", "interconnect.bytes",
// "dooc.sched.tasks_completed". Histograms of simulated durations use "_ps"
// suffixed fields in exports; gauges that mirror derived statistics
// (utilizations, bandwidth) carry their unit in the name.
package obs

package obs

import (
	"math/bits"
	"sync"

	"oocnvm/internal/sim"
)

// histBuckets is the fixed bucket population: bucket i counts values in
// [2^i, 2^(i+1)) picoseconds (bucket 0 additionally absorbs zero). 64
// buckets cover the whole non-negative range of sim.Time.
const histBuckets = 64

// Histogram is a fixed-bucket latency histogram over sim.Time values.
// Buckets are powers of two of picoseconds; Sum, Min and Max are exact, so
// means reconcile exactly and percentiles of a single-sample or
// single-bucket population collapse to the observed value.
type Histogram struct {
	name string

	mu      sync.Mutex
	buckets [histBuckets]int64
	count   int64
	sum     sim.Time
	min     sim.Time
	max     sim.Time
}

// Name reports the histogram's registry name.
func (h *Histogram) Name() string { return h.name }

// bucketOf maps a non-negative value to its bucket index.
func bucketOf(v sim.Time) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v)) - 1
}

// Observe records one value. Negative values are clamped to zero (they can
// only arise from caller bugs; clamping keeps the histogram total-ordered).
func (h *Histogram) Observe(v sim.Time) {
	if v < 0 {
		v = 0
	}
	h.mu.Lock()
	h.buckets[bucketOf(v)]++
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	h.mu.Unlock()
}

// Count reports how many values were observed.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum reports the exact sum of observed values.
func (h *Histogram) Sum() sim.Time {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Quantile returns the q-quantile as a conservative bucket upper bound,
// clamped to the exact observed [min, max]. Every input yields a defined
// value: an empty histogram returns zero for any q; q <= 0 returns the
// observed minimum, q > 1 the observed maximum; and a single-sample
// histogram collapses every quantile to that sample (the [min, max] clamp
// leaves the bucket bound nowhere else to go).
func (h *Histogram) Quantile(q float64) sim.Time {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.quantileLocked(q)
}

func (h *Histogram) quantileLocked(q float64) sim.Time {
	if h.count == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q > 1 {
		q = 1
	}
	// Rank of the target sample, 1-based: ceil(q * count).
	rank := int64(q * float64(h.count))
	if float64(rank) < q*float64(h.count) {
		rank++
	}
	if rank < 1 {
		rank = 1
	}
	if rank > h.count {
		rank = h.count
	}
	var seen int64
	for b, n := range h.buckets {
		seen += n
		if seen >= rank {
			// Conservative upper bound of bucket b: 2^(b+1) ps.
			var upper sim.Time
			if b+1 >= 63 {
				upper = h.max
			} else {
				upper = sim.Time(int64(1) << uint(b+1))
			}
			if upper > h.max {
				upper = h.max
			}
			if upper < h.min {
				upper = h.min
			}
			return upper
		}
	}
	return h.max
}

// HistogramSnapshot is one histogram's exported summary. All duration
// fields are picoseconds (the sim.Time base unit).
type HistogramSnapshot struct {
	Name   string  `json:"name"`
	Count  int64   `json:"count"`
	SumPs  int64   `json:"sum_ps"`
	MinPs  int64   `json:"min_ps"`
	MaxPs  int64   `json:"max_ps"`
	MeanPs float64 `json:"mean_ps"`
	P50Ps  int64   `json:"p50_ps"`
	P95Ps  int64   `json:"p95_ps"`
	P99Ps  int64   `json:"p99_ps"`
}

// Snapshot summarizes the histogram.
func (h *Histogram) Snapshot() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HistogramSnapshot{
		Name:  h.name,
		Count: h.count,
		SumPs: int64(h.sum),
		MinPs: int64(h.min),
		MaxPs: int64(h.max),
		P50Ps: int64(h.quantileLocked(0.50)),
		P95Ps: int64(h.quantileLocked(0.95)),
		P99Ps: int64(h.quantileLocked(0.99)),
	}
	if h.count > 0 {
		s.MeanPs = float64(h.sum) / float64(h.count)
	}
	return s
}

// absorb adds o's population into h (registry merge).
func (h *Histogram) absorb(o *Histogram) {
	o.mu.Lock()
	buckets, count, sum, min, max := o.buckets, o.count, o.sum, o.min, o.max
	o.mu.Unlock()
	if count == 0 {
		return
	}
	h.mu.Lock()
	for i, n := range buckets {
		h.buckets[i] += n
	}
	if h.count == 0 || min < h.min {
		h.min = min
	}
	if max > h.max {
		h.max = max
	}
	h.count += count
	h.sum += sum
	h.mu.Unlock()
}

package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"oocnvm/internal/sim"
)

// Counter is a named monotonic (or at least additive) int64. Safe for
// concurrent use; handles obtained from a Registry may be cached and hit
// directly on hot paths.
type Counter struct {
	name string
	v    atomic.Int64
}

// Name reports the counter's registry name.
func (c *Counter) Name() string { return c.name }

// Add accumulates delta.
func (c *Counter) Add(delta int64) { c.v.Add(delta) }

// Inc accumulates one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value reads the current total.
func (c *Counter) Value() int64 { return c.v.Load() }

// set overwrites the total. Unexported: counters are additive to callers;
// only the export path may mirror an externally-owned total (the tracer's
// span counts) without double-counting across repeated exports.
func (c *Counter) set(v int64) { c.v.Store(v) }

// Gauge is a named float64 whose last written value wins.
type Gauge struct {
	name string
	bits atomic.Uint64
}

// Name reports the gauge's registry name.
func (g *Gauge) Name() string { return g.name }

// Set records the value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value reads the last recorded value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Registry is a named collection of counters, gauges and histograms.
// Lookup is get-or-create; all methods are safe for concurrent use.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it at zero if absent.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{name: name}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it at zero if absent.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{name: name}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it empty if absent.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{name: name}
		r.hists[name] = h
	}
	return h
}

// Observe records v into the named histogram.
func (r *Registry) Observe(name string, v sim.Time) { r.Histogram(name).Observe(v) }

// Absorb adds every metric of other into r: counter values add, gauges
// overwrite (other wins), histogram populations merge. Used to fold a
// subsystem's private registry (e.g. one nvm.Device's) into a run-level
// export registry.
func (r *Registry) Absorb(other *Registry) {
	if other == nil || other == r {
		return
	}
	other.mu.Lock()
	counters := make([]*Counter, 0, len(other.counters))
	for _, c := range other.counters {
		counters = append(counters, c)
	}
	gauges := make([]*Gauge, 0, len(other.gauges))
	for _, g := range other.gauges {
		gauges = append(gauges, g)
	}
	hists := make([]*Histogram, 0, len(other.hists))
	for _, h := range other.hists {
		hists = append(hists, h)
	}
	other.mu.Unlock()
	for _, c := range counters {
		r.Counter(c.name).Add(c.Value())
	}
	for _, g := range gauges {
		r.Gauge(g.name).Set(g.Value())
	}
	for _, h := range hists {
		r.Histogram(h.name).absorb(h)
	}
}

// CounterSnapshot is one counter's exported value.
type CounterSnapshot struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// GaugeSnapshot is one gauge's exported value.
type GaugeSnapshot struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// Snapshot is a deterministic point-in-time export of a registry: every
// section is sorted by name, so identical runs produce identical bytes.
type Snapshot struct {
	Counters   []CounterSnapshot   `json:"counters"`
	Gauges     []GaugeSnapshot     `json:"gauges"`
	Histograms []HistogramSnapshot `json:"histograms"`
}

// Snapshot captures the registry's current state.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	counters := make([]*Counter, 0, len(r.counters))
	for _, c := range r.counters {
		counters = append(counters, c)
	}
	gauges := make([]*Gauge, 0, len(r.gauges))
	for _, g := range r.gauges {
		gauges = append(gauges, g)
	}
	hists := make([]*Histogram, 0, len(r.hists))
	for _, h := range r.hists {
		hists = append(hists, h)
	}
	r.mu.Unlock()

	s := Snapshot{
		Counters:   make([]CounterSnapshot, 0, len(counters)),
		Gauges:     make([]GaugeSnapshot, 0, len(gauges)),
		Histograms: make([]HistogramSnapshot, 0, len(hists)),
	}
	for _, c := range counters {
		s.Counters = append(s.Counters, CounterSnapshot{Name: c.name, Value: c.Value()})
	}
	for _, g := range gauges {
		s.Gauges = append(s.Gauges, GaugeSnapshot{Name: g.name, Value: g.Value()})
	}
	for _, h := range hists {
		s.Histograms = append(s.Histograms, h.Snapshot())
	}
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
	return s
}

// WriteJSON writes the snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	b, err := json.MarshalIndent(r.Snapshot(), "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// WriteCSV writes the snapshot as flat CSV: one row per metric with the
// columns kind,name,value,count,sum_ps,min_ps,max_ps,p50_ps,p95_ps,p99_ps.
// Counter and gauge rows leave the histogram columns empty and vice versa.
func (r *Registry) WriteCSV(w io.Writer) error {
	s := r.Snapshot()
	if _, err := fmt.Fprintln(w, "kind,name,value,count,sum_ps,min_ps,max_ps,p50_ps,p95_ps,p99_ps"); err != nil {
		return err
	}
	for _, c := range s.Counters {
		if _, err := fmt.Fprintf(w, "counter,%s,%d,,,,,,,\n", c.Name, c.Value); err != nil {
			return err
		}
	}
	for _, g := range s.Gauges {
		if _, err := fmt.Fprintf(w, "gauge,%s,%g,,,,,,,\n", g.Name, g.Value); err != nil {
			return err
		}
	}
	for _, h := range s.Histograms {
		if _, err := fmt.Fprintf(w, "histogram,%s,,%d,%d,%d,%d,%d,%d,%d\n",
			h.Name, h.Count, h.SumPs, h.MinPs, h.MaxPs, h.P50Ps, h.P95Ps, h.P99Ps); err != nil {
			return err
		}
	}
	return nil
}

// Package report renders one experiment run as a single self-contained HTML
// file: inline SVG timelines for every sampled series, the per-stage latency
// table from the run's histograms, the run configuration, and the fault
// summary. No external assets, no scripts, no wall-clock timestamps — the
// bytes are a pure function of the run, so same-seed runs produce identical
// reports.
package report

import (
	"fmt"
	"html"
	"io"
	"strings"
	"time"

	"oocnvm/internal/obs"
	"oocnvm/internal/obs/attrib"
	"oocnvm/internal/obs/hostperf"
	"oocnvm/internal/obs/timeseries"
	"oocnvm/internal/sim"
)

// RunInfo carries the non-metric context of a run into the report.
type RunInfo struct {
	// Title heads the report ("replay trace.bin · CNL-EXT4 · TLC").
	Title string
	// Params lists the run configuration as ordered name/value pairs.
	Params [][2]string
	// FaultSummary is the preformatted reliability summary, empty when the
	// run injected no faults.
	FaultSummary string
	// Attrib, when set, adds the latency-anatomy section: the per-component
	// breakdown table and the slow-request waterfall.
	Attrib *attrib.Summary
	// Host, when set, adds the host-performance section: the per-phase
	// host-cost table and the allocs-by-subsystem breakdown of the simulator
	// process itself. Reports of runs without -hostperf carry a nil Host and
	// stay byte-identical to pre-hostperf reports.
	Host *hostperf.Summary
	// HostTrend, when set, adds benchmark-trajectory sparklines (one series
	// per benchmark recorded in a bench history file) to the
	// host-performance section.
	HostTrend []TrendSeries
}

// TrendPoint is one historical benchmark observation.
type TrendPoint struct {
	Label string  // run identity (short git SHA or date)
	Value float64 // the tracked metric, ns/op unless Unit says otherwise
}

// TrendSeries is one benchmark's trajectory across recorded runs, oldest
// first.
type TrendSeries struct {
	Name   string
	Unit   string
	Points []TrendPoint
}

// chart geometry (SVG user units).
const (
	chartW  = 720
	chartH  = 150
	plotX0  = 10
	plotX1  = 650
	plotY0  = 14
	plotY1  = 118
	labelX  = 658 // direct last-value label anchor
	xLabelY = 140
)

// WriteHTML renders the report. snap supplies the latency tables and
// counter/gauge sections; dump supplies the timelines. Either may be empty.
func WriteHTML(w io.Writer, info RunInfo, snap obs.Snapshot, dump timeseries.Dump) error {
	var b strings.Builder
	b.Grow(1 << 16)
	writeHead(&b, info.Title)
	writeHeader(&b, info, dump)
	writeTimelines(&b, dump)
	writeSeriesSummary(&b, dump)
	writeAttrib(&b, info.Attrib)
	writeLatencyTable(&b, snap)
	writeCounters(&b, snap)
	writeHostPerf(&b, info.Host, info.HostTrend)
	if info.FaultSummary != "" {
		fmt.Fprintf(&b, "<section><h2>Fault summary</h2><pre>%s</pre></section>\n",
			html.EscapeString(info.FaultSummary))
	}
	b.WriteString("</main></body></html>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// writeHead emits the document head with the palette as CSS custom
// properties, declared for light mode with dark values under both the
// prefers-color-scheme media query and an explicit data-theme override.
func writeHead(b *strings.Builder, title string) {
	fmt.Fprintf(b, `<!doctype html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>%s</title>
<style>
.viz-root {
  color-scheme: light;
  --page:           #f9f9f7;
  --surface-1:      #fcfcfb;
  --text-primary:   #0b0b0b;
  --text-secondary: #52514e;
  --text-muted:     #898781;
  --grid:           #e1e0d9;
  --baseline:       #c3c2b7;
  --border:         rgba(11,11,11,0.10);
  --series-1:       #2a78d6;
  --series-2:       #eb6834;
  --series-3:       #1baf7a;
  --series-4:       #eda100;
  --series-5:       #e87ba4;
  --series-6:       #008300;
  --series-7:       #4a3aa7;
  --series-8:       #e34948;
  --series-other:   #a8a69e;
}
@media (prefers-color-scheme: dark) {
  :root:where(:not([data-theme="light"])) .viz-root {
    color-scheme: dark;
    --page:           #0d0d0d;
    --surface-1:      #1a1a19;
    --text-primary:   #ffffff;
    --text-secondary: #c3c2b7;
    --text-muted:     #898781;
    --grid:           #2c2c2a;
    --baseline:       #383835;
    --border:         rgba(255,255,255,0.10);
    --series-1:       #3987e5;
    --series-2:       #d95926;
    --series-3:       #199e70;
    --series-4:       #c98500;
    --series-5:       #d55181;
    --series-6:       #008300;
    --series-7:       #9085e9;
    --series-8:       #e66767;
    --series-other:   #6f6e69;
  }
}
:root[data-theme="dark"] .viz-root {
  color-scheme: dark;
  --page:           #0d0d0d;
  --surface-1:      #1a1a19;
  --text-primary:   #ffffff;
  --text-secondary: #c3c2b7;
  --text-muted:     #898781;
  --grid:           #2c2c2a;
  --baseline:       #383835;
  --border:         rgba(255,255,255,0.10);
  --series-1:       #3987e5;
  --series-2:       #d95926;
  --series-3:       #199e70;
  --series-4:       #c98500;
  --series-5:       #d55181;
  --series-6:       #008300;
  --series-7:       #9085e9;
  --series-8:       #e66767;
  --series-other:   #6f6e69;
}
body.viz-root {
  margin: 0;
  background: var(--page);
  color: var(--text-primary);
  font: 14px/1.5 system-ui, -apple-system, "Segoe UI", sans-serif;
}
main { max-width: 780px; margin: 0 auto; padding: 24px 16px 48px; }
h1 { font-size: 20px; margin: 0 0 4px; }
h2 { font-size: 15px; margin: 28px 0 8px; }
.sub { color: var(--text-secondary); margin: 0 0 16px; }
section.card {
  background: var(--surface-1);
  border: 1px solid var(--border);
  border-radius: 8px;
  padding: 12px 14px;
  margin: 12px 0;
}
.chart-title { font-weight: 600; margin: 0 0 2px; }
.chart-sub { color: var(--text-secondary); font-size: 12px; margin: 0 0 6px; }
svg { display: block; width: 100%%; height: auto; }
table { border-collapse: collapse; width: 100%%; font-size: 13px; }
th {
  text-align: left; color: var(--text-secondary); font-weight: 600;
  border-bottom: 1px solid var(--baseline); padding: 4px 8px 4px 0;
}
td { border-bottom: 1px solid var(--grid); padding: 4px 8px 4px 0; }
td.num, th.num { text-align: right; font-variant-numeric: tabular-nums; }
pre {
  background: var(--surface-1); border: 1px solid var(--border);
  border-radius: 8px; padding: 12px; overflow-x: auto; font-size: 12px;
}
.legend { color: var(--text-secondary); font-size: 12px; margin: 0 0 8px; }
.legend .sw {
  display: inline-block; width: 10px; height: 10px; border-radius: 2px;
  margin: 0 5px 0 12px; vertical-align: -1px;
}
.legend .sw:first-child { margin-left: 0; }
</style>
</head>
<body class="viz-root">
<main>
`, html.EscapeString(title))
}

func writeHeader(b *strings.Builder, info RunInfo, dump timeseries.Dump) {
	fmt.Fprintf(b, "<h1>%s</h1>\n", html.EscapeString(info.Title))
	span := runSpan(dump)
	if span > 0 {
		fmt.Fprintf(b, "<p class=\"sub\">simulated span %s · sampling interval %s · %d samples per series</p>\n",
			html.EscapeString(span.String()),
			html.EscapeString(sim.Time(dump.IntervalPs).String()),
			sampleCount(dump))
	}
	if len(info.Params) == 0 {
		return
	}
	b.WriteString("<section class=\"card\"><h2 style=\"margin-top:0\">Run configuration</h2><table>\n")
	for _, p := range info.Params {
		fmt.Fprintf(b, "<tr><td>%s</td><td class=\"num\">%s</td></tr>\n",
			html.EscapeString(p[0]), html.EscapeString(p[1]))
	}
	b.WriteString("</table></section>\n")
}

// runSpan is the last boundary instant across all series.
func runSpan(dump timeseries.Dump) sim.Time {
	var last int64
	for _, s := range dump.Series {
		if n := len(s.Points); n > 0 && s.Points[n-1].TPs > last {
			last = s.Points[n-1].TPs
		}
	}
	return sim.Time(last)
}

func sampleCount(dump timeseries.Dump) int {
	n := 0
	for _, s := range dump.Series {
		if len(s.Points) > n {
			n = len(s.Points)
		}
	}
	return n
}

// writeTimelines emits one single-series chart card per sampled series. A
// single series needs no legend: the card title names it, and the line wears
// categorical slot 1.
func writeTimelines(b *strings.Builder, dump timeseries.Dump) {
	if len(dump.Series) == 0 {
		return
	}
	b.WriteString("<h2>Timelines</h2>\n")
	for _, s := range dump.Series {
		writeChart(b, s)
	}
}

func writeChart(b *strings.Builder, s timeseries.Series) {
	fmt.Fprintf(b, "<section class=\"card\">\n<p class=\"chart-title\">%s</p>\n<p class=\"chart-sub\">%s · %s</p>\n",
		html.EscapeString(s.Name), html.EscapeString(s.Kind), html.EscapeString(kindUnit(s.Kind)))
	if len(s.Points) == 0 {
		b.WriteString("<p class=\"chart-sub\">no samples</p>\n</section>\n")
		return
	}
	lo, hi := yDomain(s)
	tmax := float64(s.Points[len(s.Points)-1].TPs)

	fmt.Fprintf(b, "<svg viewBox=\"0 0 %d %d\" role=\"img\" aria-label=\"%s over simulated time\">\n",
		chartW, chartH, html.EscapeString(s.Name))
	// Recessive grid: three hairlines across the plot, baseline at the
	// bottom.
	for i := 1; i <= 3; i++ {
		y := yPos(lo+(hi-lo)*float64(i)/3, lo, hi)
		fmt.Fprintf(b, "<line x1=\"%d\" y1=\"%s\" x2=\"%d\" y2=\"%s\" stroke=\"var(--grid)\" stroke-width=\"1\"/>\n",
			plotX0, f2(y), plotX1, f2(y))
	}
	fmt.Fprintf(b, "<line x1=\"%d\" y1=\"%d\" x2=\"%d\" y2=\"%d\" stroke=\"var(--baseline)\" stroke-width=\"1\"/>\n",
		plotX0, plotY1, plotX1, plotY1)

	// The series line: thin 2px stroke in slot-1 blue.
	if len(s.Points) == 1 {
		p := s.Points[0]
		fmt.Fprintf(b, "<circle cx=\"%s\" cy=\"%s\" r=\"3\" fill=\"var(--series-1)\"/>\n",
			f2(xPos(float64(p.TPs), tmax)), f2(yPos(p.Value, lo, hi)))
	} else {
		b.WriteString("<polyline fill=\"none\" stroke=\"var(--series-1)\" stroke-width=\"2\" stroke-linejoin=\"round\" points=\"")
		for i, p := range s.Points {
			if i > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(b, "%s,%s", f2(xPos(float64(p.TPs), tmax)), f2(yPos(p.Value, lo, hi)))
		}
		b.WriteString("\"/>\n")
	}

	// Axis labels in muted ink; the direct last-value label in secondary
	// ink — text never wears the series color.
	fmt.Fprintf(b, "<text x=\"%d\" y=\"%d\" fill=\"var(--text-muted)\" font-size=\"11\">%s</text>\n",
		plotX0, plotY0-3, html.EscapeString(fmtVal(s.Kind, hi)))
	fmt.Fprintf(b, "<text x=\"%d\" y=\"%d\" fill=\"var(--text-muted)\" font-size=\"11\">%s</text>\n",
		plotX0, xLabelY, html.EscapeString("0"))
	fmt.Fprintf(b, "<text x=\"%d\" y=\"%d\" fill=\"var(--text-muted)\" font-size=\"11\" text-anchor=\"end\">%s</text>\n",
		plotX1, xLabelY, html.EscapeString(sim.Time(int64(tmax)).String()))
	last := s.Points[len(s.Points)-1]
	fmt.Fprintf(b, "<text x=\"%d\" y=\"%s\" fill=\"var(--text-secondary)\" font-size=\"11\" dominant-baseline=\"middle\">%s</text>\n",
		labelX, f2(yPos(last.Value, lo, hi)), html.EscapeString(fmtVal(s.Kind, last.Value)))

	// Hover layer: one transparent full-height rect per sample (hit target
	// wider than the 2px mark) carrying a native tooltip.
	n := len(s.Points)
	bw := float64(plotX1-plotX0) / float64(n)
	for i, p := range s.Points {
		fmt.Fprintf(b, "<rect x=\"%s\" y=\"%d\" width=\"%s\" height=\"%d\" fill=\"transparent\"><title>t=%s  %s</title></rect>\n",
			f2(float64(plotX0)+float64(i)*bw), plotY0, f2(bw), plotY1-plotY0,
			html.EscapeString(sim.Time(p.TPs).String()), html.EscapeString(fmtVal(s.Kind, p.Value)))
	}
	b.WriteString("</svg>\n</section>\n")
}

// yDomain picks the chart's value domain: fractions and ratios are anchored
// to [0,1]; everything else spans [0, max] so magnitude reads from the
// baseline.
func yDomain(s timeseries.Series) (lo, hi float64) {
	if s.Kind == "fraction" || s.Kind == "ratio" {
		return 0, 1
	}
	for _, p := range s.Points {
		if p.Value > hi {
			hi = p.Value
		}
	}
	if hi == 0 {
		hi = 1
	}
	return 0, hi
}

func xPos(t, tmax float64) float64 {
	if tmax <= 0 {
		return plotX0
	}
	return plotX0 + t/tmax*float64(plotX1-plotX0)
}

func yPos(v, lo, hi float64) float64 {
	if hi <= lo {
		return plotY1
	}
	frac := (v - lo) / (hi - lo)
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	return float64(plotY1) - frac*float64(plotY1-plotY0)
}

// f2 formats an SVG coordinate with fixed precision (deterministic bytes).
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }

func kindUnit(kind string) string {
	switch kind {
	case "fraction":
		return "busy fraction, 0–1"
	case "ratio":
		return "ratio, 0–1"
	case "rate":
		return "per second"
	case "delta":
		return "per interval"
	}
	return "value"
}

// fmtVal renders one sample value for labels and tooltips.
func fmtVal(kind string, v float64) string {
	switch kind {
	case "fraction", "ratio":
		return fmt.Sprintf("%.1f%%", v*100)
	}
	return fmt.Sprintf("%.4g", v)
}

// writeSeriesSummary is the table view of the timelines: identity and shape
// without relying on the charts.
func writeSeriesSummary(b *strings.Builder, dump timeseries.Dump) {
	if len(dump.Series) == 0 {
		return
	}
	b.WriteString("<h2>Series summary</h2>\n<section class=\"card\"><table>\n")
	b.WriteString("<tr><th>series</th><th>kind</th><th class=\"num\">min</th><th class=\"num\">mean</th><th class=\"num\">max</th><th class=\"num\">last</th></tr>\n")
	for _, s := range dump.Series {
		if len(s.Points) == 0 {
			fmt.Fprintf(b, "<tr><td>%s</td><td>%s</td><td class=\"num\">–</td><td class=\"num\">–</td><td class=\"num\">–</td><td class=\"num\">–</td></tr>\n",
				html.EscapeString(s.Name), html.EscapeString(s.Kind))
			continue
		}
		min, max, sum := s.Points[0].Value, s.Points[0].Value, 0.0
		for _, p := range s.Points {
			if p.Value < min {
				min = p.Value
			}
			if p.Value > max {
				max = p.Value
			}
			sum += p.Value
		}
		mean := sum / float64(len(s.Points))
		fmt.Fprintf(b, "<tr><td>%s</td><td>%s</td><td class=\"num\">%s</td><td class=\"num\">%s</td><td class=\"num\">%s</td><td class=\"num\">%s</td></tr>\n",
			html.EscapeString(s.Name), html.EscapeString(s.Kind),
			html.EscapeString(fmtVal(s.Kind, min)), html.EscapeString(fmtVal(s.Kind, mean)),
			html.EscapeString(fmtVal(s.Kind, max)), html.EscapeString(fmtVal(s.Kind, s.Points[len(s.Points)-1].Value)))
	}
	b.WriteString("</table></section>\n")
}

func writeLatencyTable(b *strings.Builder, snap obs.Snapshot) {
	if len(snap.Histograms) == 0 {
		return
	}
	b.WriteString("<h2>Per-stage latency</h2>\n<section class=\"card\"><table>\n")
	b.WriteString("<tr><th>stage</th><th class=\"num\">count</th><th class=\"num\">p50</th><th class=\"num\">p95</th><th class=\"num\">p99</th><th class=\"num\">total</th></tr>\n")
	for _, h := range snap.Histograms {
		fmt.Fprintf(b, "<tr><td>%s</td><td class=\"num\">%d</td><td class=\"num\">%s</td><td class=\"num\">%s</td><td class=\"num\">%s</td><td class=\"num\">%s</td></tr>\n",
			html.EscapeString(h.Name), h.Count,
			html.EscapeString(sim.Time(h.P50Ps).String()), html.EscapeString(sim.Time(h.P95Ps).String()),
			html.EscapeString(sim.Time(h.P99Ps).String()), html.EscapeString(sim.Time(h.SumPs).String()))
	}
	b.WriteString("</table></section>\n")
}

// waterfall geometry (SVG user units).
const (
	wfLabelX = 4   // request label anchor
	wfX0     = 150 // bar origin
	wfX1     = 642 // bar extent at the slowest exemplar
	wfValueX = 650 // direct latency label anchor
	wfRowH   = 24
	wfBarH   = 14
	wfTopPad = 6
	wfGap    = 2 // surface gap between stacked segments
)

// attribSlots maps each component with latency mass onto a fixed palette
// slot in taxonomy order, so a component wears the same hue in every chart
// of the run (color follows the entity, never its rank). Slots run 1..8;
// components beyond the 8 hues fold into the muted "other" fill (-1); 0
// marks a component absent from this run.
func attribSlots(sum *attrib.Summary) (slot [attrib.NumComponents]int) {
	n := 0
	for c := range sum.Totals {
		if sum.Totals[c] > 0 {
			n++
			if n <= 8 {
				slot[c] = n
			} else {
				slot[c] = -1
			}
		}
	}
	return slot
}

func slotFill(slot int) string {
	if slot < 0 {
		return "var(--series-other)"
	}
	return fmt.Sprintf("var(--series-%d)", slot)
}

// writeAttrib renders the latency-anatomy section: the per-component
// breakdown table (the accessible table view of the waterfall) and one
// stacked horizontal bar per slow-request exemplar.
func writeAttrib(b *strings.Builder, sum *attrib.Summary) {
	if sum == nil || sum.Requests == 0 {
		return
	}
	b.WriteString("<h2>Latency anatomy</h2>\n")
	writeAttribTable(b, sum)
	writeWaterfall(b, sum)
}

func writeAttribTable(b *strings.Builder, sum *attrib.Summary) {
	slot := attribSlots(sum)
	fmt.Fprintf(b, "<section class=\"card\">\n<p class=\"chart-title\">Component breakdown</p>\n<p class=\"chart-sub\">%d requests · total latency %s · conservation residual %s</p>\n",
		sum.Requests, html.EscapeString(sum.TotalLatency.String()),
		html.EscapeString(sum.MaxResidual.String()))
	if sum.Violations > 0 {
		fmt.Fprintf(b, "<p class=\"chart-sub\">CONSERVATION VIOLATED on %d requests</p>\n", sum.Violations)
	}
	b.WriteString("<table>\n<tr><th>component</th><th class=\"num\">total</th><th class=\"num\">share</th><th class=\"num\">dominates</th></tr>\n")
	for _, c := range sum.Ranked() {
		share := 0.0
		if sum.TotalLatency > 0 {
			share = float64(sum.Totals[c]) / float64(sum.TotalLatency) * 100
		}
		fmt.Fprintf(b, "<tr><td><span class=\"sw\" style=\"background:%s;display:inline-block;width:10px;height:10px;border-radius:2px;margin-right:6px;vertical-align:-1px\"></span>%s</td><td class=\"num\">%s</td><td class=\"num\">%.1f%%</td><td class=\"num\">%d</td></tr>\n",
			slotFill(slot[c]), html.EscapeString(c.String()),
			html.EscapeString(sum.Totals[c].String()), share, sum.Dominant[c])
	}
	b.WriteString("</table></section>\n")
}

func writeWaterfall(b *strings.Builder, sum *attrib.Summary) {
	if len(sum.Exemplars) == 0 {
		return
	}
	slot := attribSlots(sum)
	maxLat := sum.Exemplars[0].Latency()
	for _, ex := range sum.Exemplars {
		if ex.Latency() > maxLat {
			maxLat = ex.Latency()
		}
	}
	if maxLat <= 0 {
		return
	}

	fmt.Fprintf(b, "<section class=\"card\">\n<p class=\"chart-title\">Slowest requests</p>\n<p class=\"chart-sub\">top %d by end-to-end latency · bar length scaled to the slowest</p>\n",
		len(sum.Exemplars))
	// Legend: identity never rides on color alone — names beside swatches,
	// and each segment also carries a tooltip.
	b.WriteString("<p class=\"legend\">")
	folded := false
	for c := range sum.Totals {
		switch {
		case slot[c] > 0:
			fmt.Fprintf(b, "<span class=\"sw\" style=\"background:%s\"></span>%s",
				slotFill(slot[c]), html.EscapeString(attrib.Component(c).String()))
		case slot[c] < 0:
			folded = true
		}
	}
	if folded {
		fmt.Fprintf(b, "<span class=\"sw\" style=\"background:var(--series-other)\"></span>other")
	}
	b.WriteString("</p>\n")

	h := wfTopPad + len(sum.Exemplars)*wfRowH
	fmt.Fprintf(b, "<svg viewBox=\"0 0 %d %d\" role=\"img\" aria-label=\"latency waterfall of the slowest requests\">\n",
		chartW, h)
	scale := float64(wfX1-wfX0) / float64(maxLat)
	for i, ex := range sum.Exemplars {
		rowY := float64(wfTopPad + i*wfRowH)
		barY := rowY + float64(wfRowH-wfBarH)/2
		midY := barY + float64(wfBarH)/2
		fmt.Fprintf(b, "<text x=\"%d\" y=\"%s\" fill=\"var(--text-secondary)\" font-size=\"11\" dominant-baseline=\"middle\">#%d %s %s</text>\n",
			wfLabelX, f2(midY), ex.ID, html.EscapeString(attrib.KindName(ex.Kind)),
			html.EscapeString(fmtBytes(ex.Size)))
		x := float64(wfX0)
		var otherDur sim.Time
		for c, d := range ex.Comp {
			if d <= 0 || slot[c] == 0 {
				continue
			}
			if slot[c] < 0 {
				otherDur += d
				continue
			}
			w := float64(d) * scale
			x = wfSegment(b, x, barY, w, slotFill(slot[c]),
				fmt.Sprintf("#%d %s · %v %s (%.1f%%)", ex.ID, attrib.KindName(ex.Kind),
					attrib.Component(c), d, float64(d)/float64(ex.Latency())*100))
		}
		if otherDur > 0 {
			x = wfSegment(b, x, barY, float64(otherDur)*scale, "var(--series-other)",
				fmt.Sprintf("#%d %s · other %s", ex.ID, attrib.KindName(ex.Kind), otherDur))
		}
		fmt.Fprintf(b, "<text x=\"%d\" y=\"%s\" fill=\"var(--text-secondary)\" font-size=\"11\" dominant-baseline=\"middle\">%s</text>\n",
			wfValueX, f2(midY), html.EscapeString(ex.Latency().String()))
	}
	b.WriteString("</svg>\n</section>\n")
}

// wfSegment draws one waterfall segment at x, trimming the 2px surface gap
// from its right edge so adjacent fills never touch, and returns the next
// segment's origin. Sub-gap segments keep a hairline, capped at their true
// width so they can never bleed into the neighbor.
func wfSegment(b *strings.Builder, x, y, w float64, fill, tip string) float64 {
	draw := w - wfGap
	if draw < 0.5 {
		draw = 0.5
		if draw > w {
			draw = w
		}
	}
	fmt.Fprintf(b, "<rect x=\"%s\" y=\"%s\" width=\"%s\" height=\"%d\" rx=\"1\" fill=\"%s\"><title>%s</title></rect>\n",
		f2(x), f2(y), f2(draw), wfBarH, fill, html.EscapeString(tip))
	return x + w
}

// fmtBytes renders a request size compactly (sizes are power-of-two block
// multiples, so integer KiB/MiB cover every case).
func fmtBytes(n int64) string {
	switch {
	case n >= 1<<20 && n%(1<<20) == 0:
		return fmt.Sprintf("%dMiB", n>>20)
	case n >= 1<<10 && n%(1<<10) == 0:
		return fmt.Sprintf("%dKiB", n>>10)
	}
	return fmt.Sprintf("%dB", n)
}

// host-performance bar geometry (SVG user units).
const (
	hpLabelX = 4   // subsystem label anchor
	hpX0     = 150 // bar origin
	hpX1     = 560 // bar extent at the largest subsystem
	hpValueX = 568 // direct count label anchor
	hpRowH   = 24
	hpBarH   = 14
	hpTopPad = 6
)

// writeHostPerf renders the host-performance section: what the simulator
// process itself cost to produce this run — per-phase resource table,
// allocs-by-subsystem bars, and (when a bench history is supplied) the
// benchmark-trajectory sparklines. Entirely absent when the run was not
// driven with -hostperf.
func writeHostPerf(b *strings.Builder, host *hostperf.Summary, trend []TrendSeries) {
	if host == nil && len(trend) == 0 {
		return
	}
	b.WriteString("<h2>Host performance</h2>\n")
	if host != nil {
		writeHostPhases(b, host)
		writeHostSites(b, host)
	}
	writeHostTrend(b, trend)
}

func writeHostPhases(b *strings.Builder, host *hostperf.Summary) {
	b.WriteString("<section class=\"card\">\n<p class=\"chart-title\">Per-phase host cost</p>\n<p class=\"chart-sub\">wall-clock resources of the simulator process, per run phase</p>\n<table>\n")
	b.WriteString("<tr><th>phase</th><th class=\"num\">wall</th><th class=\"num\">cpu</th><th class=\"num\">allocs</th><th class=\"num\">alloc bytes</th><th class=\"num\">gc</th><th class=\"num\">pause</th></tr>\n")
	row := func(p hostperf.PhaseCost) {
		fmt.Fprintf(b, "<tr><td>%s</td><td class=\"num\">%s</td><td class=\"num\">%s</td><td class=\"num\">%d</td><td class=\"num\">%s</td><td class=\"num\">%d</td><td class=\"num\">%s</td></tr>\n",
			html.EscapeString(p.Name),
			html.EscapeString(p.Wall.Round(time.Microsecond).String()),
			html.EscapeString(p.CPU.Round(time.Microsecond).String()),
			p.AllocObjs, html.EscapeString(fmtByteCount(p.AllocBytes)),
			p.GCCycles, html.EscapeString(p.GCPause.Round(time.Microsecond).String()))
	}
	for _, p := range host.Phases {
		row(p)
	}
	row(host.Total)
	b.WriteString("</table></section>\n")
}

// writeHostSites draws one horizontal bar per instrumented subsystem, scaled
// to the largest. Each site keeps a fixed palette slot (color follows the
// subsystem, never its rank); the unattributed remainder wears the muted
// "other" fill.
func writeHostSites(b *strings.Builder, host *hostperf.Summary) {
	if len(host.Sites) == 0 {
		return
	}
	var max int64
	for _, sc := range host.Sites {
		if sc.Objs > max {
			max = sc.Objs
		}
	}
	fmt.Fprintf(b, "<section class=\"card\">\n<p class=\"chart-title\">Allocations by subsystem</p>\n<p class=\"chart-sub\">%d heap objects total · %.1f%% attributed to instrumented sites</p>\n",
		host.Total.AllocObjs, host.AttributedFraction()*100)
	h := hpTopPad + len(host.Sites)*hpRowH
	fmt.Fprintf(b, "<svg viewBox=\"0 0 %d %d\" role=\"img\" aria-label=\"allocation count per subsystem\">\n", chartW, h)
	for i, sc := range host.Sites {
		rowY := float64(hpTopPad + i*hpRowH)
		barY := rowY + float64(hpRowH-hpBarH)/2
		midY := barY + float64(hpBarH)/2
		fill := "var(--series-other)"
		if sc.Site < hostperf.NumSites {
			fill = fmt.Sprintf("var(--series-%d)", int(sc.Site)+1)
		}
		fmt.Fprintf(b, "<text x=\"%d\" y=\"%s\" fill=\"var(--text-secondary)\" font-size=\"11\" dominant-baseline=\"middle\">%s</text>\n",
			hpLabelX, f2(midY), html.EscapeString(sc.Name))
		if max > 0 && sc.Objs > 0 {
			w := float64(sc.Objs) / float64(max) * float64(hpX1-hpX0)
			if w < 1 {
				w = 1 // sub-pixel counts keep a visible hairline
			}
			fmt.Fprintf(b, "<rect x=\"%d\" y=\"%s\" width=\"%s\" height=\"%d\" rx=\"1\" fill=\"%s\"><title>%s</title></rect>\n",
				hpX0, f2(barY), f2(w), hpBarH, fill,
				html.EscapeString(fmt.Sprintf("%s · %d objects (%.1f%%)", sc.Name, sc.Objs, sc.Share*100)))
		}
		fmt.Fprintf(b, "<text x=\"%d\" y=\"%s\" fill=\"var(--text-secondary)\" font-size=\"11\" dominant-baseline=\"middle\">%d (%.1f%%)</text>\n",
			hpValueX, f2(midY), sc.Objs, sc.Share*100)
	}
	b.WriteString("</svg>\n</section>\n")
}

// sparkline geometry (SVG user units).
const (
	sparkW = 160
	sparkH = 28
	sparkP = 3 // inner padding
)

// writeHostTrend renders one sparkline row per benchmark from the recorded
// history, oldest run at the left.
func writeHostTrend(b *strings.Builder, trend []TrendSeries) {
	if len(trend) == 0 {
		return
	}
	b.WriteString("<section class=\"card\">\n<p class=\"chart-title\">Benchmark trajectory</p>\n<p class=\"chart-sub\">per recorded run, oldest to newest</p>\n<table>\n")
	b.WriteString("<tr><th>benchmark</th><th>trend</th><th class=\"num\">first</th><th class=\"num\">last</th></tr>\n")
	for _, s := range trend {
		if len(s.Points) == 0 {
			continue
		}
		first, last := s.Points[0], s.Points[len(s.Points)-1]
		fmt.Fprintf(b, "<tr><td>%s</td><td>", html.EscapeString(s.Name))
		writeSparkline(b, s)
		unit := s.Unit
		if unit == "" {
			unit = "ns/op"
		}
		fmt.Fprintf(b, "</td><td class=\"num\">%s</td><td class=\"num\">%s</td></tr>\n",
			html.EscapeString(fmt.Sprintf("%.4g %s", first.Value, unit)),
			html.EscapeString(fmt.Sprintf("%.4g %s", last.Value, unit)))
	}
	b.WriteString("</table></section>\n")
}

func writeSparkline(b *strings.Builder, s TrendSeries) {
	fmt.Fprintf(b, "<svg viewBox=\"0 0 %d %d\" style=\"width:%dpx;height:%dpx;display:inline-block;vertical-align:middle\" role=\"img\" aria-label=\"%s trend\">\n",
		sparkW, sparkH, sparkW, sparkH, html.EscapeString(s.Name))
	var hi float64
	for _, p := range s.Points {
		if p.Value > hi {
			hi = p.Value
		}
	}
	if hi == 0 {
		hi = 1
	}
	x := func(i int) float64 {
		if len(s.Points) == 1 {
			return sparkW / 2
		}
		return sparkP + float64(i)/float64(len(s.Points)-1)*float64(sparkW-2*sparkP)
	}
	y := func(v float64) float64 {
		return float64(sparkH-sparkP) - v/hi*float64(sparkH-2*sparkP)
	}
	if len(s.Points) == 1 {
		p := s.Points[0]
		fmt.Fprintf(b, "<circle cx=\"%s\" cy=\"%s\" r=\"2.5\" fill=\"var(--series-1)\"><title>%s  %.4g</title></circle>\n",
			f2(x(0)), f2(y(p.Value)), html.EscapeString(p.Label), p.Value)
	} else {
		b.WriteString("<polyline fill=\"none\" stroke=\"var(--series-1)\" stroke-width=\"1.5\" stroke-linejoin=\"round\" points=\"")
		for i, p := range s.Points {
			if i > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(b, "%s,%s", f2(x(i)), f2(y(p.Value)))
		}
		b.WriteString("\"/>\n")
		// Hover targets: one slice per recorded run.
		bw := float64(sparkW) / float64(len(s.Points))
		for i, p := range s.Points {
			fmt.Fprintf(b, "<rect x=\"%s\" y=\"0\" width=\"%s\" height=\"%d\" fill=\"transparent\"><title>%s  %.4g</title></rect>\n",
				f2(float64(i)*bw), f2(bw), sparkH, html.EscapeString(p.Label), p.Value)
		}
	}
	b.WriteString("</svg>")
}

// fmtByteCount renders a byte total with a binary unit, one decimal.
func fmtByteCount(n uint64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1fGiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%dB", n)
}

func writeCounters(b *strings.Builder, snap obs.Snapshot) {
	if len(snap.Counters) == 0 && len(snap.Gauges) == 0 {
		return
	}
	b.WriteString("<h2>Counters and gauges</h2>\n<section class=\"card\"><table>\n")
	b.WriteString("<tr><th>metric</th><th class=\"num\">value</th></tr>\n")
	for _, c := range snap.Counters {
		fmt.Fprintf(b, "<tr><td>%s</td><td class=\"num\">%d</td></tr>\n", html.EscapeString(c.Name), c.Value)
	}
	for _, g := range snap.Gauges {
		fmt.Fprintf(b, "<tr><td>%s</td><td class=\"num\">%s</td></tr>\n",
			html.EscapeString(g.Name), html.EscapeString(fmt.Sprintf("%.6g", g.Value)))
	}
	b.WriteString("</table></section>\n")
}

package report

import (
	"bytes"
	"strings"
	"testing"

	"oocnvm/internal/obs"
	"oocnvm/internal/obs/timeseries"
	"oocnvm/internal/sim"
)

func sampleRun(t *testing.T) (obs.Snapshot, timeseries.Dump) {
	t.Helper()
	c := obs.NewCollector()
	c.Observe("ssd.op", 2*sim.Microsecond)
	c.Observe("ssd.op", 5*sim.Microsecond)
	c.Count("ssd.ops", 2)
	c.SetGauge("nvm.bandwidth_bps", 1.5e9)

	s := timeseries.NewSampler(sim.Microsecond, 16)
	busy, ops := 0.0, 0.0
	s.AddFraction("nvm.channel_util", 2, func(sim.Time) float64 { return busy })
	s.AddDelta("ssd.ops", func(sim.Time) float64 { return ops })
	for i := 1; i <= 6; i++ {
		busy = float64(i) * 0.4 * float64(sim.Microsecond)
		ops = float64(i * 3)
		s.Advance(sim.Time(i) * sim.Microsecond)
	}
	return c.Reg.Snapshot(), s.Dump()
}

func TestWriteHTMLSelfContainedAndComplete(t *testing.T) {
	snap, dump := sampleRun(t)
	info := RunInfo{
		Title:        "replay test.bin · CNL-EXT4 · TLC",
		Params:       [][2]string{{"config", "CNL-EXT4"}, {"cell", "TLC"}},
		FaultSummary: "grown bad blocks: 0 <spares>",
	}
	var buf bytes.Buffer
	if err := WriteHTML(&buf, info, snap, dump); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"<!doctype html>",
		"replay test.bin",
		"nvm.channel_util",
		"ssd.ops",
		"<polyline",
		"<svg",
		"Per-stage latency",
		"Run configuration",
		"Fault summary",
		"prefers-color-scheme: dark",
		"--series-1",
		"&lt;spares&gt;", // HTML in inputs is escaped
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
	// Self-contained: no external fetches or scripts.
	for _, banned := range []string{"<script", "http://", "https://", "<link", "<img"} {
		if strings.Contains(out, banned) {
			t.Errorf("report contains %q; must be self-contained and static", banned)
		}
	}
}

func TestWriteHTMLDeterministic(t *testing.T) {
	render := func() string {
		snap, dump := sampleRun(t)
		var buf bytes.Buffer
		if err := WriteHTML(&buf, RunInfo{Title: "t"}, snap, dump); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	if render() != render() {
		t.Fatal("report bytes differ across identical runs")
	}
}

func TestWriteHTMLEmptyRun(t *testing.T) {
	var buf bytes.Buffer
	err := WriteHTML(&buf, RunInfo{Title: "empty"}, obs.Snapshot{}, timeseries.Dump{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "empty") {
		t.Fatal("empty report lost its title")
	}
}

func TestSingleSampleRendersMarker(t *testing.T) {
	s := timeseries.NewSampler(10, 8)
	s.AddGauge("g", func(sim.Time) float64 { return 2 })
	s.Advance(10)
	var buf bytes.Buffer
	if err := WriteHTML(&buf, RunInfo{Title: "t"}, obs.Snapshot{}, s.Dump()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "<circle") {
		t.Fatal("single-sample series should render a visible marker")
	}
}

package obs

import (
	"testing"

	"oocnvm/internal/sim"
)

func TestNopProbeIsFree(t *testing.T) {
	var p Probe = Nop{}
	if p.Enabled() {
		t.Fatal("Nop reports enabled")
	}
	allocs := testing.AllocsPerRun(1000, func() {
		p.Span(LayerNVM, "ch0/die0", "sense", 0, sim.Microsecond)
		p.Count("nvm.reads", 1)
		p.Observe("nvm.device.latency", sim.Microsecond)
		p.SetGauge("nvm.bw", 1.0)
	})
	if allocs != 0 {
		t.Fatalf("Nop probe allocates %.1f per run", allocs)
	}
}

func TestOrNop(t *testing.T) {
	if _, ok := OrNop(nil).(Nop); !ok {
		t.Fatal("OrNop(nil) is not Nop")
	}
	c := NewCollector()
	if OrNop(c) != Probe(c) {
		t.Fatal("OrNop rewrote a live probe")
	}
}

func TestCollectorRoutes(t *testing.T) {
	c := NewCollector()
	if !c.Enabled() {
		t.Fatal("collector disabled")
	}
	c.Count("x.ops", 3)
	c.Observe("x.lat", 2*sim.Microsecond)
	c.SetGauge("x.bw", 7.5)
	c.Span(LayerSSD, "queue", "R", 0, sim.Microsecond, Attr{Key: "size", Value: int64(4096)})
	if c.Reg.Counter("x.ops").Value() != 3 {
		t.Fatal("count not routed")
	}
	if c.Reg.Histogram("x.lat").Count() != 1 {
		t.Fatal("observe not routed")
	}
	if c.Reg.Gauge("x.bw").Value() != 7.5 {
		t.Fatal("gauge not routed")
	}
	if c.Tr.Len() != 1 {
		t.Fatal("span not routed")
	}
}

func TestCollectorNilPartsTolerated(t *testing.T) {
	c := &Collector{}
	c.Count("x", 1)
	c.Observe("x", 1)
	c.SetGauge("x", 1)
	c.Span(LayerSSD, "q", "R", 0, 1)
	if err := c.WriteTraceFile("/dev/null"); err == nil {
		t.Fatal("nil tracer write did not error")
	}
	if err := c.WriteMetricsFile("/dev/null"); err == nil {
		t.Fatal("nil registry write did not error")
	}
}

type probed struct{ p Probe }

func (x *probed) SetProbe(p Probe) { x.p = p }

func TestInstrument(t *testing.T) {
	x := &probed{}
	c := NewCollector()
	if !Instrument(x, c) {
		t.Fatal("Instrument refused a SetProbe implementor")
	}
	if x.p != Probe(c) {
		t.Fatal("probe not attached")
	}
	if Instrument(struct{}{}, c) {
		t.Fatal("Instrument accepted a non-implementor")
	}
}

func TestSyncTracerMetrics(t *testing.T) {
	c := NewCollector()
	c.Tr.SetLimit(2)
	for i := 0; i < 5; i++ {
		c.Span(LayerSSD, "t", "op", sim.Time(i), sim.Time(i+1))
	}
	// Syncing twice must not double-count: the counters mirror totals.
	c.SyncTracerMetrics()
	c.SyncTracerMetrics()
	if got := c.Reg.Counter("obs.trace.spans").Value(); got != 2 {
		t.Fatalf("obs.trace.spans = %d, want 2", got)
	}
	if got := c.Reg.Counter("obs.trace.dropped_spans").Value(); got != 3 {
		t.Fatalf("obs.trace.dropped_spans = %d, want 3", got)
	}
	// Later drops keep flowing through on the next sync: the counters track
	// the tracer's live totals, they are not a one-shot snapshot.
	c.Span(LayerSSD, "t", "op", 5, 6)
	c.SyncTracerMetrics()
	if got := c.Reg.Counter("obs.trace.dropped_spans").Value(); got != 4 {
		t.Fatalf("obs.trace.dropped_spans after more drops = %d, want 4", got)
	}
	// Nil parts tolerated.
	(&Collector{Reg: NewRegistry()}).SyncTracerMetrics()
	(&Collector{Tr: NewTracer()}).SyncTracerMetrics()
}

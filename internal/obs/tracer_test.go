package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"oocnvm/internal/sim"
)

var update = flag.Bool("update", false, "rewrite golden files")

func buildGoldenTracer() *Tracer {
	tr := NewTracer()
	tr.Span(LayerSSD, "queue", "R", 0, 10*sim.Microsecond,
		Attr{Key: "offset", Value: int64(0)}, Attr{Key: "size", Value: int64(65536)})
	tr.Span(LayerNVM, "ch00/die00", "sense", 1*sim.Microsecond, 6*sim.Microsecond)
	tr.Span(LayerNVM, "ch00/bus", "xfer", 6*sim.Microsecond, 7*sim.Microsecond)
	tr.Span(LayerNVM, "ch00/die00", "stage", 6*sim.Microsecond, 6500*sim.Nanosecond)
	tr.Span(LayerInterconnect, "PCIe2.0 x8 (bridged)", "xfer", 7*sim.Microsecond, 9*sim.Microsecond)
	tr.Span(LayerSSD, "queue", "W", 10*sim.Microsecond, 25*sim.Microsecond)
	return tr
}

// TestChromeTraceGolden pins the exact Chrome trace_event bytes the tracer
// emits for a fixed span population. Regenerate with `go test
// ./internal/obs -run Golden -update` after an intentional format change.
func TestChromeTraceGolden(t *testing.T) {
	var b bytes.Buffer
	if err := buildGoldenTracer().WriteChromeJSON(&b); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "chrome_trace.golden.json")
	if *update {
		if err := os.WriteFile(golden, b.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b.Bytes(), want) {
		t.Fatalf("chrome trace diverged from golden file (run with -update if intentional)\ngot:\n%s", b.String())
	}
}

// TestChromeTraceStructure validates the trace_event fields Chrome/Perfetto
// actually parse: every span is a complete event (ph "X") with microsecond
// ts/dur, and every pid/tid used is named by a metadata event.
func TestChromeTraceStructure(t *testing.T) {
	var b bytes.Buffer
	if err := buildGoldenTracer().WriteChromeJSON(&b); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Ts   float64        `json:"ts"`
			Dur  *float64       `json:"dur"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(b.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	named := make(map[[2]int]bool)
	var spans int
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			if ev.Name == "process_name" || ev.Name == "thread_name" {
				if ev.Args["name"] == "" {
					t.Fatalf("metadata event without a name: %+v", ev)
				}
				named[[2]int{ev.Pid, ev.Tid}] = true
			}
		case "X":
			spans++
			if ev.Dur == nil || *ev.Dur < 0 || ev.Ts < 0 {
				t.Fatalf("span with bad ts/dur: %+v", ev)
			}
			if !named[[2]int{ev.Pid, 0}] {
				t.Fatalf("span on unnamed process %d", ev.Pid)
			}
			if !named[[2]int{ev.Pid, ev.Tid}] {
				t.Fatalf("span on unnamed thread %d/%d", ev.Pid, ev.Tid)
			}
		default:
			t.Fatalf("unexpected phase %q", ev.Ph)
		}
	}
	if spans != 6 {
		t.Fatalf("spans = %d, want 6", spans)
	}
	// 10 µs span → ts 10 dur 15 on the second queue event; spot-check the
	// unit conversion ps → µs.
	found := false
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" && ev.Name == "W" {
			if ev.Ts != 10 || *ev.Dur != 15 {
				t.Fatalf("W span ts/dur = %v/%v, want 10/15 µs", ev.Ts, *ev.Dur)
			}
			found = true
		}
	}
	if !found {
		t.Fatal("W span missing")
	}
}

func TestTracerLimitCountsDrops(t *testing.T) {
	tr := NewTracer()
	tr.SetLimit(2)
	for i := 0; i < 5; i++ {
		tr.Span(LayerSSD, "q", "R", sim.Time(i), sim.Time(i+1))
	}
	if tr.Len() != 2 || tr.Dropped() != 3 {
		t.Fatalf("len=%d dropped=%d", tr.Len(), tr.Dropped())
	}
	var b bytes.Buffer
	if err := tr.WriteChromeJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(b.Bytes(), []byte("tracer_dropped_events")) {
		t.Fatal("dropped-events marker missing from export")
	}
}

func TestTracerNegativeDurationClamped(t *testing.T) {
	tr := NewTracer()
	tr.Span(LayerSSD, "q", "R", 10, 5)
	var b bytes.Buffer
	if err := tr.WriteChromeJSON(&b); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Ph  string   `json:"ph"`
			Dur *float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(b.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" && *ev.Dur != 0 {
			t.Fatalf("negative span not clamped: dur=%v", *ev.Dur)
		}
	}
}

func TestEmptyTracerExportsValidJSON(t *testing.T) {
	var b bytes.Buffer
	if err := NewTracer().WriteChromeJSON(&b); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(b.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if _, ok := doc["traceEvents"].([]any); !ok {
		t.Fatalf("traceEvents not an array: %v", doc["traceEvents"])
	}
}

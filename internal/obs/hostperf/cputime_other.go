//go:build !unix

package hostperf

import "time"

// cpuTime is unavailable on this platform; phase CPU columns read zero.
func cpuTime() time.Duration { return 0 }

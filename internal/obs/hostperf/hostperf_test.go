package hostperf

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// alloc burns n small heap allocations.
//
//go:noinline
func alloc(n int) {
	for i := 0; i < n; i++ {
		s := make([]byte, 64)
		sink = s
	}
}

var sink []byte

func TestRegionAttributionCharges(t *testing.T) {
	EnableAttrib()
	defer DisableAttrib()
	before := SiteAllocs(SiteNVMSched)
	Enter(SiteNVMSched)
	alloc(1000)
	Exit()
	got := SiteAllocs(SiteNVMSched) - before
	// The boundary reads lag the allocator by an unflushed span tail (a
	// hundred-odd objects), so the bounds are loose around the true 1000.
	if got < 850 || got > 1200 {
		t.Errorf("region charged %d allocations, want ~1000", got)
	}
}

func TestNestedRegionsDoNotDoubleCount(t *testing.T) {
	EnableAttrib()
	defer DisableAttrib()
	outerBefore := SiteAllocs(SiteExperiment)
	innerBefore := SiteAllocs(SiteSSDRequest)
	Enter(SiteExperiment)
	alloc(500) // charged to experiment
	Enter(SiteSSDRequest)
	alloc(2000) // charged to ssd-request, NOT also to experiment
	Exit()
	alloc(500) // back to experiment
	Exit()
	outer := SiteAllocs(SiteExperiment) - outerBefore
	inner := SiteAllocs(SiteSSDRequest) - innerBefore
	if inner < 1800 || inner > 2200 {
		t.Errorf("inner region charged %d, want ~2000", inner)
	}
	if outer < 850 || outer > 1300 {
		t.Errorf("outer region charged %d, want ~1000 (inner must not leak out)", outer)
	}
}

func TestDisabledProbesChargeNothing(t *testing.T) {
	DisableAttrib()
	before := SiteAllocs(SiteSimWindow)
	Enter(SiteSimWindow)
	alloc(100)
	Exit()
	if got := SiteAllocs(SiteSimWindow) - before; got != 0 {
		t.Errorf("disabled probe charged %d allocations", got)
	}
}

func TestCollectorPhasesAndSummary(t *testing.T) {
	c := NewCollector()
	defer DisableAttrib()
	end := c.Phase("work")
	Enter(SiteNVMSched)
	alloc(3000)
	Exit()
	end()
	s := c.Summary()
	if s.Total.AllocObjs < 3000 {
		t.Errorf("total allocs %d, want >= 3000", s.Total.AllocObjs)
	}
	if len(s.Phases) != 1 || s.Phases[0].Name != "work" {
		t.Fatalf("phases = %+v, want one named 'work'", s.Phases)
	}
	if s.Phases[0].AllocObjs < 3000 {
		t.Errorf("phase allocs %d, want >= 3000", s.Phases[0].AllocObjs)
	}
	if s.Phases[0].Wall <= 0 {
		t.Errorf("phase wall time %v, want > 0", s.Phases[0].Wall)
	}
	// Sites: sum of all entries (including unattributed) must equal the
	// total — the exactness contract of region attribution.
	var sum int64
	for _, sc := range s.Sites {
		if sc.Objs < 0 {
			t.Errorf("site %s has negative count %d", sc.Name, sc.Objs)
		}
		sum += sc.Objs
	}
	if uint64(sum) != s.Total.AllocObjs {
		t.Errorf("site sum %d != total %d", sum, s.Total.AllocObjs)
	}
	if last := s.Sites[len(s.Sites)-1]; last.Name != "unattributed" {
		t.Errorf("last site %q, want the unattributed remainder", last.Name)
	}
	if f := s.AttributedFraction(); f < 0 || f > 1 {
		t.Errorf("attributed fraction %v out of [0,1]", f)
	}
}

func TestNilCollectorIsSafe(t *testing.T) {
	var c *Collector
	end := c.Phase("anything")
	end() // must not panic
	if s := c.Summary(); s != nil {
		t.Errorf("nil collector summary = %v, want nil", s)
	}
}

func TestSummaryOutputs(t *testing.T) {
	c := NewCollector()
	defer DisableAttrib()
	end := c.Phase("p1")
	alloc(10)
	end()
	s := c.Summary()

	table := s.FormatTable()
	for _, want := range []string{"phase", "allocs", "subsystem", "unattributed", "p1", "total"} {
		if !strings.Contains(table, want) {
			t.Errorf("table missing %q:\n%s", want, table)
		}
	}

	var jbuf bytes.Buffer
	if err := s.WriteJSON(&jbuf); err != nil {
		t.Fatal(err)
	}
	var round Summary
	if err := json.Unmarshal(jbuf.Bytes(), &round); err != nil {
		t.Fatalf("JSON does not round-trip: %v", err)
	}
	if round.Total.AllocObjs != s.Total.AllocObjs {
		t.Errorf("round-tripped total %d != %d", round.Total.AllocObjs, s.Total.AllocObjs)
	}

	var cbuf bytes.Buffer
	if err := s.WriteCSV(&cbuf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(cbuf.String()), "\n")
	// Header + one phase + total + NumSites sites + unattributed.
	want := 1 + len(s.Phases) + 1 + len(s.Sites)
	if len(lines) != want {
		t.Errorf("CSV has %d lines, want %d:\n%s", len(lines), want, cbuf.String())
	}
	if !strings.HasPrefix(lines[0], "section,name,wall_ns") {
		t.Errorf("CSV header wrong: %q", lines[0])
	}
}

func TestEnableIsIdempotentAndResetsDepth(t *testing.T) {
	EnableAttrib()
	Enter(SiteObsSpan) // leave a region open, simulating a crashed bracket
	DisableAttrib()
	EnableAttrib() // must reset the stack
	defer DisableAttrib()
	before := SiteAllocs(SiteObsSpan)
	alloc(100) // root-level: charged to SiteOther, not the stale region
	Enter(SiteOther)
	Exit()
	if got := SiteAllocs(SiteObsSpan) - before; got != 0 {
		t.Errorf("stale region charged %d allocations after re-enable", got)
	}
}

func TestSiteStrings(t *testing.T) {
	seen := make(map[string]bool)
	for s := Site(0); s < NumSites; s++ {
		name := s.String()
		if name == "" || name == "unattributed" {
			t.Errorf("site %d has bad name %q", s, name)
		}
		if seen[name] {
			t.Errorf("duplicate site name %q", name)
		}
		seen[name] = true
	}
	if got := Site(NumSites).String(); got != "unattributed" {
		t.Errorf("out-of-range site name %q, want unattributed", got)
	}
}

package hostperf

import (
	"runtime/metrics"
	"sync/atomic"
)

// Site names one instrumented allocation subsystem. The set mirrors the
// ROADMAP's zero-alloc hit list: the structures a future free-list/arena
// overhaul has to recycle.
type Site uint8

const (
	// SiteNVMSched is nvm transaction scheduling: the per-submit die
	// buckets, plane-merge queues and activation groups built by
	// nvm.Device.Submit — the dominant allocation source of a replay.
	SiteNVMSched Site = iota
	// SiteSSDRequest is the ssd request lifecycle: translating one block
	// request into page operations (FTL mapping, GC relocation planning,
	// Direct striping).
	SiteSSDRequest
	// SiteObsSpan is trace span records (obs.Tracer's bounded span buffer).
	SiteObsSpan
	// SiteAttrib is per-request latency-attribution records (segment chains
	// and exemplar bookkeeping in obs/attrib).
	SiteAttrib
	// SiteSimWindow is in-flight window heap growth (sim.Window's min-heap
	// backing array).
	SiteSimWindow
	// SiteExperiment is the experiment harness around the drive: workload
	// trace generation, filesystem transforms, stack assembly, result
	// slices — everything inside experiment.Run that is not an inner site.
	SiteExperiment
	// SiteOther is work between instrumented regions at the root of the
	// region stack (CLI setup, export writers).
	SiteOther

	NumSites = 7
)

// String names the site for tables and JSON.
func (s Site) String() string {
	switch s {
	case SiteNVMSched:
		return "nvm-sched"
	case SiteSSDRequest:
		return "ssd-request"
	case SiteObsSpan:
		return "obs-span"
	case SiteAttrib:
		return "obs-attrib"
	case SiteSimWindow:
		return "sim-window"
	case SiteExperiment:
		return "experiment"
	case SiteOther:
		return "other"
	}
	return "unattributed"
}

// Region attribution: Enter/Exit bracket a subsystem's code. At every
// boundary the heap-object counter delta since the previous boundary is
// charged to the region that was open across it, so nested regions compose
// exactly — an inner region's allocations never double-count into the outer
// one, and the per-site sums plus the unattributed remainder reconstruct the
// process total.
//
// The stack is process-global and unlocked: attribution is a serial
// measurement mode (one goroutine drives the simulation). The disabled path
// is a single atomic load and branch, pinned ~zero-cost by
// TestProbesFreeWhenDisabled.
var (
	attribOn   atomic.Bool
	siteCounts [NumSites]atomic.Int64

	regionStack [64]Site
	regionDepth int
	lastObjs    uint64

	allocSample = []metrics.Sample{{Name: allocObjsMetric}}
)

// allocObjsMetric is the one counter everything in this package reads:
// cumulative heap objects allocated. Using a single counter for region
// charges AND phase totals is what makes the attribution exact — two
// different counters (say MemStats.Mallocs) disagree by unflushed
// malloc-cache tails.
const allocObjsMetric = "/gc/heap/allocs:objects"

// heapObjects reads the cumulative allocated-objects counter. Unlike
// runtime.ReadMemStats this does not stop the world, so it is cheap enough
// for per-request region boundaries.
func heapObjects() uint64 {
	metrics.Read(allocSample)
	return allocSample[0].Value.Uint64()
}

// EnableAttrib turns the attribution probes on. NewCollector calls it; tests
// may call it directly (paired with DisableAttrib).
func EnableAttrib() {
	if attribOn.Load() {
		return
	}
	regionDepth = 0
	lastObjs = heapObjects()
	attribOn.Store(true)
}

// DisableAttrib turns the probes back off (the counters keep their values).
func DisableAttrib() { attribOn.Store(false) }

// AttribActive reports whether the attribution measurement mode is on.
// experiment.Matrix consults it to serialize its workers: concurrent cells
// would interleave their regions on the global stack.
func AttribActive() bool { return attribOn.Load() }

// Enter opens a region attributed to site. Every Enter must be paired with
// exactly one Exit on the same goroutine; prefer bracketing straight-line
// code over deferring past early returns.
func Enter(site Site) {
	if !attribOn.Load() {
		return
	}
	now := heapObjects()
	charge(now)
	if regionDepth < len(regionStack) {
		regionStack[regionDepth] = site
	}
	regionDepth++
}

// Exit closes the innermost region, charging the allocations since the last
// boundary to it.
func Exit() {
	if !attribOn.Load() {
		return
	}
	now := heapObjects()
	charge(now)
	if regionDepth > 0 {
		regionDepth--
	}
}

// charge books the counter delta to the currently open region (or SiteOther
// at the root) and advances the boundary mark.
func charge(now uint64) {
	site := SiteOther
	if regionDepth > 0 && regionDepth <= len(regionStack) {
		site = regionStack[regionDepth-1]
	}
	if d := now - lastObjs; d > 0 {
		// The boundary reads themselves allocate nothing after the first
		// call (the sample slice is package state), so the delta is the
		// region's own work.
		siteCounts[site].Add(int64(d))
	}
	lastObjs = now
}

// siteSnapshot copies the cumulative per-site counters.
func siteSnapshot() (out [NumSites]int64) {
	for i := range siteCounts {
		out[i] = siteCounts[i].Load()
	}
	return out
}

// SiteAllocs reports the cumulative allocation objects charged to one site
// (process lifetime, across collectors) — the handle guard tests pin.
func SiteAllocs(site Site) int64 { return siteCounts[site].Load() }

//go:build unix

package hostperf

import (
	"syscall"
	"time"
)

// cpuTime returns the process's cumulative user+system CPU time.
func cpuTime() time.Duration {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	return time.Duration(ru.Utime.Nano() + ru.Stime.Nano())
}

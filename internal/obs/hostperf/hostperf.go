// Package hostperf is the simulator watching its own cost. Where internal/obs
// measures *simulated* time (device latencies, channel occupancy), hostperf
// measures the *host* resources a run burns to produce those numbers: wall
// time, CPU time, heap allocations, GC work — broken down per run phase
// (trace build, each matrix cell, export) and attributed to the subsystems
// that own the hot allocation sites (nvm transaction scheduling, ssd request
// translation, observability records, window growth).
//
// The package has two coupled mechanisms:
//
//   - A phase Collector: snapshots runtime.MemStats (plus getrusage CPU time
//     where available) at phase boundaries, so a run emits a per-phase
//     host-cost table next to its simulated-time results.
//
//   - Allocation-site attribution (sites.go): bracketed regions at the known
//     hot allocation sites measure the heap-object delta inside each region
//     and charge it to that subsystem. The deltas are exact — the sum over
//     subsystems plus the unattributed remainder equals the run's total
//     allocation count — which is what lets guard tests pin today's numbers.
//
// Everything is off by default and costs one atomic load per probe when
// disabled. Enabling attribution is a *measurement mode*: it serializes the
// experiment matrix (the region stack is process-global) and adds a
// runtime/metrics read per region boundary.
package hostperf

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"runtime/metrics"
	"sort"
	"strings"
	"sync"
	"text/tabwriter"
	"time"
)

// Snap is one instantaneous host-resource snapshot.
type Snap struct {
	Wall       time.Time
	CPU        time.Duration // process user+system time; 0 where unsupported
	HeapBytes  uint64        // live heap at the instant
	AllocObjs  uint64        // cumulative heap objects allocated
	AllocBytes uint64        // cumulative heap bytes allocated
	GCCycles   uint32        // completed GC cycles
	GCPause    time.Duration // cumulative stop-the-world pause
	Goroutines int
}

// TakeSnap reads the current host-resource state. It calls
// runtime.ReadMemStats (a brief stop-the-world), so it belongs at phase
// boundaries, not on per-request paths.
//
// AllocObjs deliberately comes from the same runtime/metrics counter the
// attribution regions read (not MemStats.Mallocs — the two counters flush
// malloc caches differently and disagree by an unflushed span tail), so the
// per-site sums and the phase totals are deltas of one monotonic counter
// and the unattributed remainder is non-negative by construction.
func TakeSnap() Snap {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	// A local sample keeps TakeSnap goroutine-safe; the package-global
	// sample is reserved for the serial Enter/Exit hot path.
	sample := []metrics.Sample{{Name: allocObjsMetric}}
	metrics.Read(sample)
	return Snap{
		Wall:       time.Now(),
		CPU:        cpuTime(),
		HeapBytes:  ms.HeapAlloc,
		AllocObjs:  sample[0].Value.Uint64(),
		AllocBytes: ms.TotalAlloc,
		GCCycles:   ms.NumGC,
		GCPause:    time.Duration(ms.PauseTotalNs),
		Goroutines: runtime.NumGoroutine(),
	}
}

// PhaseCost is the host cost of one run phase (or of the whole run, for
// Summary.Total): the resource deltas between its begin and end snapshots.
type PhaseCost struct {
	Name       string        `json:"name"`
	Wall       time.Duration `json:"wall_ns"`
	CPU        time.Duration `json:"cpu_ns"`
	AllocObjs  uint64        `json:"alloc_objects"`
	AllocBytes uint64        `json:"alloc_bytes"`
	GCCycles   uint32        `json:"gc_cycles"`
	GCPause    time.Duration `json:"gc_pause_ns"`
	HeapBytes  uint64        `json:"heap_bytes"` // live heap at phase end
	Goroutines int           `json:"goroutines"` // at phase end
}

func delta(name string, begin, end Snap) PhaseCost {
	return PhaseCost{
		Name:       name,
		Wall:       end.Wall.Sub(begin.Wall),
		CPU:        end.CPU - begin.CPU,
		AllocObjs:  end.AllocObjs - begin.AllocObjs,
		AllocBytes: end.AllocBytes - begin.AllocBytes,
		GCCycles:   end.GCCycles - begin.GCCycles,
		GCPause:    end.GCPause - begin.GCPause,
		HeapBytes:  end.HeapBytes,
		Goroutines: end.Goroutines,
	}
}

// Collector accumulates the per-phase host costs of one run. Creating a
// collector enables allocation-site attribution process-wide; Summary
// snapshots the run's totals and the per-subsystem breakdown. Phases may be
// recorded from any goroutine (the collector locks), but attribution regions
// are serial — drivers that attach a collector must run their matrix cells
// one at a time (experiment.Matrix does this automatically).
type Collector struct {
	mu        sync.Mutex
	start     Snap
	baseSites [NumSites]int64
	phases    []PhaseCost
}

// NewCollector snapshots the baseline and turns allocation-site attribution
// on. Call Summary when the run is done; the attribution mode stays enabled
// for the life of the process (it is a run-the-CLI-in-measurement-mode
// switch, not a toggle to flip around hot loops).
func NewCollector() *Collector {
	c := &Collector{}
	c.baseSites = siteSnapshot()
	// The start snapshot is taken BEFORE attribution seeds its counter
	// mark, so everything the regions charge happened after the snapshot
	// and attributed <= total always holds.
	c.start = TakeSnap()
	EnableAttrib()
	return c
}

// Phase begins a named phase and returns the function that ends it:
//
//	done := host.Phase("cell CNL-UFS/TLC")
//	... work ...
//	done()
//
// Nil collectors are safe: (*Collector)(nil).Phase returns a no-op.
func (c *Collector) Phase(name string) (end func()) {
	if c == nil {
		return func() {}
	}
	begin := TakeSnap()
	return func() {
		cost := delta(name, begin, TakeSnap())
		c.mu.Lock()
		c.phases = append(c.phases, cost)
		c.mu.Unlock()
	}
}

// SiteCost is the allocation count attributed to one subsystem.
type SiteCost struct {
	Site  Site   `json:"-"`
	Name  string `json:"name"`
	Objs  int64  `json:"alloc_objects"`
	Share float64
}

// Summary is the run's host-performance report: the whole-run totals, the
// per-phase table, and the allocs-by-subsystem attribution.
type Summary struct {
	Total  PhaseCost   `json:"total"`
	Phases []PhaseCost `json:"phases,omitempty"`
	// Sites lists the instrumented subsystems in descending allocation
	// order, followed by one "unattributed" entry holding everything the
	// regions did not cover. Shares are of Total.AllocObjs.
	Sites []SiteCost `json:"sites"`
}

// Summary computes the report for everything since NewCollector.
func (c *Collector) Summary() *Summary {
	if c == nil {
		return nil
	}
	end := TakeSnap()
	now := siteSnapshot()
	c.mu.Lock()
	phases := make([]PhaseCost, len(c.phases))
	copy(phases, c.phases)
	start, base := c.start, c.baseSites
	c.mu.Unlock()

	s := &Summary{Total: delta("total", start, end), Phases: phases}
	var attributed int64
	for site := Site(0); site < NumSites; site++ {
		objs := now[site] - base[site]
		attributed += objs
		s.Sites = append(s.Sites, SiteCost{Site: site, Name: site.String(), Objs: objs})
	}
	sort.SliceStable(s.Sites, func(i, j int) bool { return s.Sites[i].Objs > s.Sites[j].Objs })
	rest := int64(s.Total.AllocObjs) - attributed
	if rest < 0 {
		rest = 0
	}
	s.Sites = append(s.Sites, SiteCost{Site: NumSites, Name: "unattributed", Objs: rest})
	if s.Total.AllocObjs > 0 {
		for i := range s.Sites {
			s.Sites[i].Share = float64(s.Sites[i].Objs) / float64(s.Total.AllocObjs)
		}
	}
	return s
}

// AttributedFraction is the share of the run's allocations the instrumented
// sites explain — the number the ≥95%-coverage guard tests pin.
func (s *Summary) AttributedFraction() float64 {
	if s.Total.AllocObjs == 0 {
		return 1
	}
	var attributed int64
	for _, sc := range s.Sites {
		if sc.Name != "unattributed" {
			attributed += sc.Objs
		}
	}
	return float64(attributed) / float64(s.Total.AllocObjs)
}

// FormatTable renders the per-phase host-cost table and the
// allocs-by-subsystem breakdown as aligned text.
func (s *Summary) FormatTable() string {
	var b strings.Builder
	b.WriteString("host performance (wall-clock resources of this process)\n")
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "phase\twall\tcpu\tallocs\talloc-bytes\tgc\tpause\theap-end\n")
	for _, p := range s.Phases {
		writePhaseRow(w, p)
	}
	writePhaseRow(w, s.Total)
	w.Flush()

	b.WriteString("\nallocations by subsystem\n")
	w = tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "subsystem\talloc-objects\tshare\n")
	for _, sc := range s.Sites {
		fmt.Fprintf(w, "%s\t%d\t%.1f%%\n", sc.Name, sc.Objs, 100*sc.Share)
	}
	w.Flush()
	return b.String()
}

func writePhaseRow(w io.Writer, p PhaseCost) {
	fmt.Fprintf(w, "%s\t%v\t%v\t%d\t%s\t%d\t%v\t%s\n",
		p.Name, p.Wall.Round(time.Microsecond), p.CPU.Round(time.Microsecond),
		p.AllocObjs, fmtBytes(p.AllocBytes), p.GCCycles,
		p.GCPause.Round(time.Microsecond), fmtBytes(p.HeapBytes))
}

// fmtBytes renders a byte count with a binary unit, one decimal.
func fmtBytes(n uint64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1fGiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%dB", n)
}

// WriteJSON emits the summary as indented JSON.
func (s *Summary) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WriteCSV emits the phase table (one row per phase plus the total) followed
// by the subsystem breakdown, in one CSV stream with a `section` column.
func (s *Summary) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "section,name,wall_ns,cpu_ns,alloc_objects,alloc_bytes,gc_cycles,gc_pause_ns,heap_bytes,share"); err != nil {
		return err
	}
	row := func(section string, p PhaseCost) error {
		_, err := fmt.Fprintf(w, "%s,%s,%d,%d,%d,%d,%d,%d,%d,\n",
			section, csvEscape(p.Name), p.Wall.Nanoseconds(), p.CPU.Nanoseconds(),
			p.AllocObjs, p.AllocBytes, p.GCCycles, p.GCPause.Nanoseconds(), p.HeapBytes)
		return err
	}
	for _, p := range s.Phases {
		if err := row("phase", p); err != nil {
			return err
		}
	}
	if err := row("total", s.Total); err != nil {
		return err
	}
	for _, sc := range s.Sites {
		if _, err := fmt.Fprintf(w, "site,%s,,,%d,,,,,%.6f\n", csvEscape(sc.Name), sc.Objs, sc.Share); err != nil {
			return err
		}
	}
	return nil
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

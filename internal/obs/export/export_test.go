package export

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"oocnvm/internal/obs"
	"oocnvm/internal/obs/attrib"
	"oocnvm/internal/obs/hostperf"
	"oocnvm/internal/obs/report"
	"oocnvm/internal/sim"
)

func TestRegisterParsesSharedFlags(t *testing.T) {
	var f Flags
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	f.Register(fs)
	if err := fs.Parse([]string{
		"-trace-out", "t.json", "-metrics-out", "m.csv",
		"-report-out", "r.html", "-sample-us", "250",
	}); err != nil {
		t.Fatal(err)
	}
	if f.TraceOut != "t.json" || f.MetricsOut != "m.csv" || f.ReportOut != "r.html" || f.SampleUS != 250 {
		t.Fatalf("parsed flags = %+v", f)
	}
	if !f.Enabled() {
		t.Fatal("Enabled() = false with all exports set")
	}
	if f.Collector() == nil || f.Sampler() == nil {
		t.Fatal("collector/sampler missing when requested")
	}
	if iv := f.Sampler().Interval(); iv != 250*sim.Microsecond {
		t.Fatalf("sampler interval = %v, want 250us", iv)
	}
}

func TestDisabledFlagsBuildNothing(t *testing.T) {
	var f Flags
	if f.Enabled() {
		t.Fatal("zero Flags enabled")
	}
	if f.Collector() != nil {
		t.Fatal("collector built with no exports")
	}
	if f.Sampler() != nil {
		t.Fatal("sampler built without -report-out")
	}
	// Metrics-only runs need a collector but no sampler.
	f.MetricsOut = "m.json"
	if f.Collector() == nil {
		t.Fatal("collector missing for metrics-only run")
	}
	if f.Sampler() != nil {
		t.Fatal("sampler built for metrics-only run")
	}
}

func TestReportCSVPath(t *testing.T) {
	if got := ReportCSVPath("out/report.html"); got != "out/report.csv" {
		t.Fatalf("ReportCSVPath(html) = %q", got)
	}
	if got := ReportCSVPath("report"); got != "report.csv" {
		t.Fatalf("ReportCSVPath(bare) = %q", got)
	}
}

func TestWriteEmitsEveryArtifact(t *testing.T) {
	dir := t.TempDir()
	f := Flags{
		TraceOut:   filepath.Join(dir, "trace.json"),
		MetricsOut: filepath.Join(dir, "metrics.json"),
		ReportOut:  filepath.Join(dir, "report.html"),
		SampleUS:   100,
	}
	col := f.Collector()
	samp := f.Sampler()
	col.Span(obs.LayerSSD, "drive", "req", 0, sim.Millisecond)
	col.Count("ssd.data_bytes", 4096)
	busy := 0.0
	samp.AddGauge("ssd.queue_depth", func(sim.Time) float64 { busy++; return busy })
	samp.Advance(sim.Millisecond)

	var out bytes.Buffer
	if err := f.Write(&out, col, samp, nil, nil, report.RunInfo{
		Title:  "export test",
		Params: [][2]string{{"seed", "42"}},
	}); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"trace written to", "metrics written to", "report written to",
	} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("confirmation %q missing:\n%s", want, out.String())
		}
	}
	for _, p := range []string{
		f.TraceOut, f.MetricsOut, f.ReportOut, filepath.Join(dir, "report.csv"),
	} {
		b, err := os.ReadFile(p)
		if err != nil {
			t.Fatalf("artifact missing: %v", err)
		}
		if len(b) == 0 {
			t.Fatalf("artifact %s empty", p)
		}
	}
	html, _ := os.ReadFile(f.ReportOut)
	if !strings.Contains(string(html), "ssd.queue_depth") {
		t.Fatal("report HTML missing sampled series")
	}
	csv, _ := os.ReadFile(filepath.Join(dir, "report.csv"))
	if !strings.HasPrefix(string(csv), "series,kind,t_ps,value") {
		t.Fatalf("report CSV header wrong: %q", string(csv)[:40])
	}
}

func TestWriteWithNilCollectorAndSampler(t *testing.T) {
	dir := t.TempDir()
	f := Flags{ReportOut: filepath.Join(dir, "r.html")}
	var out bytes.Buffer
	if err := f.Write(&out, nil, nil, nil, nil, report.RunInfo{Title: "empty"}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(f.ReportOut); err != nil {
		t.Fatal(err)
	}
	csv, err := os.ReadFile(filepath.Join(dir, "r.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(string(csv)) != "series,kind,t_ps,value" {
		t.Fatalf("nil-sampler CSV = %q", string(csv))
	}
}

func TestRecorderGating(t *testing.T) {
	var f Flags
	if f.Recorder(nil) != nil {
		t.Fatal("recorder built with no attribution output requested")
	}
	for _, set := range []func(*Flags){
		func(f *Flags) { f.Attrib = true },
		func(f *Flags) { f.AttribOut = "a.csv" },
		func(f *Flags) { f.ReportOut = "r.html" },
	} {
		g := Flags{AttribTop: 4}
		set(&g)
		if g.Recorder(nil) == nil {
			t.Fatalf("recorder missing for %+v", g)
		}
	}
	// Binding against a collector lands the attribution histograms in its
	// registry.
	g := Flags{Attrib: true, AttribTop: 4}
	col := obs.NewCollector()
	rec := g.Recorder(col)
	rec.Begin(0, 0, 4096, 0)
	rec.Note(attrib.Queue, sim.Microsecond)
	rec.Commit(sim.Microsecond)
	found := false
	for _, h := range col.Reg.Snapshot().Histograms {
		if h.Name == "attrib.e2e" {
			found = true
		}
	}
	if !found {
		t.Fatal("attrib.e2e histogram not bound into the collector registry")
	}
}

func TestWriteAttributionArtifacts(t *testing.T) {
	dir := t.TempDir()
	f := Flags{Attrib: true, AttribOut: filepath.Join(dir, "anatomy.csv"), AttribTop: 4}
	rec := f.Recorder(nil)
	rec.Begin(0, 0, 4096, 0)
	rec.Note(attrib.Queue, 2*sim.Microsecond)
	rec.Note(attrib.LinkXfer, sim.Microsecond)
	rec.Commit(3 * sim.Microsecond)

	var out bytes.Buffer
	if err := f.Write(&out, nil, nil, rec, nil, report.RunInfo{Title: "attrib"}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "latency attribution") {
		t.Fatalf("breakdown table missing from -attrib output:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "attribution written to") {
		t.Fatalf("CSV confirmation missing:\n%s", out.String())
	}
	csv, err := os.ReadFile(f.AttribOut)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(csv), "id,kind,offset,size,arrive_ps,end_ps,latency_ps,queue_ps") {
		t.Fatalf("attribution CSV header wrong: %q", strings.SplitN(string(csv), "\n", 2)[0])
	}
	if lines := strings.Count(strings.TrimSpace(string(csv)), "\n"); lines != 1 {
		t.Fatalf("attribution CSV rows = %d, want 1", lines)
	}
}

func TestStartProfilesWritesArtifacts(t *testing.T) {
	dir := t.TempDir()
	f := Flags{
		CPUProfile: filepath.Join(dir, "cpu.pprof"),
		MemProfile: filepath.Join(dir, "mem.pprof"),
	}
	stop, err := f.StartProfiles()
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{f.CPUProfile, f.MemProfile} {
		b, err := os.ReadFile(p)
		if err != nil {
			t.Fatalf("profile missing: %v", err)
		}
		if len(b) == 0 {
			t.Fatalf("profile %s empty", p)
		}
	}
	// No profiles requested: stop is a no-op that must not error.
	var g Flags
	stop, err = g.StartProfiles()
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
}

// TestRegisterOnSeparateFlagSets pins that two commands can each register
// the full flag surface (including the hostperf flags shared by name with
// HostFlags) on their own FlagSet without a duplicate-definition panic.
func TestRegisterOnSeparateFlagSets(t *testing.T) {
	var a, b Flags
	fsA := flag.NewFlagSet("a", flag.ContinueOnError)
	fsB := flag.NewFlagSet("b", flag.ContinueOnError)
	a.Register(fsA)
	b.Register(fsB)
	var h HostFlags
	fsC := flag.NewFlagSet("c", flag.ContinueOnError)
	h.Register(fsC)
	if err := fsA.Parse([]string{"-hostperf", "-hostperf-out", "h.json"}); err != nil {
		t.Fatal(err)
	}
	if !a.HostPerf || a.HostPerfOut != "h.json" {
		t.Fatalf("hostperf flags not parsed: %+v", a)
	}
	if b.HostPerf || b.HostPerfOut != "" {
		t.Fatalf("flag sets leaked into each other: %+v", b)
	}
	if err := fsC.Parse([]string{"-hostperf"}); err != nil {
		t.Fatal(err)
	}
	if !h.HostPerf {
		t.Fatalf("HostFlags not parsed: %+v", h)
	}
}

func TestHostCollectorGating(t *testing.T) {
	var f Flags
	if f.Host() != nil {
		t.Fatal("host collector built with no hostperf flags")
	}
	defer hostperf.DisableAttrib()
	g := Flags{HostPerf: true}
	if g.Host() == nil {
		t.Fatal("host collector missing for -hostperf")
	}
	hostperf.DisableAttrib()
	h := Flags{HostPerfOut: "h.json"}
	if h.Host() == nil {
		t.Fatal("host collector missing for -hostperf-out")
	}
	var hf HostFlags
	hostperf.DisableAttrib()
	if hf.Host() != nil {
		t.Fatal("HostFlags collector built when disabled")
	}
}

func TestWriteHostPerfArtifacts(t *testing.T) {
	dir := t.TempDir()
	f := Flags{
		HostPerf:    true,
		HostPerfOut: filepath.Join(dir, "host.csv"),
		ReportOut:   filepath.Join(dir, "r.html"),
	}
	host := f.Host()
	defer hostperf.DisableAttrib()
	end := host.Phase("unit phase")
	end()

	var out bytes.Buffer
	if err := f.Write(&out, nil, nil, nil, host, report.RunInfo{Title: "host"}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "host performance") {
		t.Fatalf("-hostperf table missing:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "host performance written to") {
		t.Fatalf("file confirmation missing:\n%s", out.String())
	}
	csv, err := os.ReadFile(f.HostPerfOut)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(csv), "section,name,wall_ns") {
		t.Fatalf("host CSV header wrong: %q", strings.SplitN(string(csv), "\n", 2)[0])
	}
	html, err := os.ReadFile(f.ReportOut)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(html), "Host performance") {
		t.Fatal("report missing the Host performance section")
	}
	if !strings.Contains(string(html), "unit phase") {
		t.Fatal("report missing the recorded phase row")
	}

	// JSON output with a non-.csv suffix.
	g := Flags{HostPerfOut: filepath.Join(dir, "host.json")}
	ghost := g.Host()
	out.Reset()
	if err := g.Write(&out, nil, nil, nil, ghost, report.RunInfo{}); err != nil {
		t.Fatal(err)
	}
	j, err := os.ReadFile(g.HostPerfOut)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(j), "\"total\"") {
		t.Fatalf("host JSON missing totals: %s", j)
	}
}

func TestWriteHostPerfInvalidPathErrors(t *testing.T) {
	f := Flags{HostPerfOut: filepath.Join(t.TempDir(), "no-such-dir", "h.json")}
	host := f.Host()
	defer hostperf.DisableAttrib()
	var out bytes.Buffer
	if err := f.Write(&out, nil, nil, nil, host, report.RunInfo{}); err == nil {
		t.Fatal("unwritable -hostperf-out accepted")
	}
}

// TestReportBytesIdenticalWithoutHost pins the acceptance criterion that
// enabling the hostperf machinery in the binary changes nothing unless the
// flag is set: a nil host collector must leave report bytes exactly as
// before.
func TestReportBytesIdenticalWithoutHost(t *testing.T) {
	dir := t.TempDir()
	write := func(name string) []byte {
		f := Flags{ReportOut: filepath.Join(dir, name)}
		var out bytes.Buffer
		if err := f.Write(&out, nil, nil, nil, nil, report.RunInfo{Title: "same"}); err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(f.ReportOut)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a := write("a.html")
	b := write("b.html")
	if !bytes.Equal(a, b) {
		t.Fatal("same-run reports differ")
	}
	if bytes.Contains(a, []byte("Host performance")) {
		t.Fatal("Host performance section rendered without a host collector")
	}
}

// TestProbesFreeWhenDisabled is the zero-cost contract: with attribution
// off, a probe pair is one atomic load and must not allocate.
func TestProbesFreeWhenDisabled(t *testing.T) {
	hostperf.DisableAttrib()
	allocs := testing.AllocsPerRun(1000, func() {
		hostperf.Enter(hostperf.SiteNVMSched)
		hostperf.Exit()
	})
	if allocs != 0 {
		t.Errorf("disabled probe pair allocates %v objects per run, want 0", allocs)
	}
}

func TestLoadBenchTrend(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "hist.jsonl")
	lines := []string{
		`{"date":"2026-08-01T00:00:00Z","git_sha":"aaaaaaaabbbb","results":[{"name":"BenchmarkA","ns_per_op":100},{"name":"BenchmarkB","ns_per_op":50}]}`,
		`{"date":"2026-08-02T00:00:00Z","git_sha":"ccccccccdddd","results":[{"name":"BenchmarkA","ns_per_op":120}]}`,
	}
	if err := os.WriteFile(path, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	trend, err := LoadBenchTrend(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(trend) != 2 {
		t.Fatalf("got %d series, want 2", len(trend))
	}
	a := trend[0]
	if a.Name != "BenchmarkA" || len(a.Points) != 2 {
		t.Fatalf("series A wrong: %+v", a)
	}
	if a.Points[0].Value != 100 || a.Points[1].Value != 120 {
		t.Errorf("series A values %+v, want [100 120]", a.Points)
	}
	if a.Points[0].Label != "aaaaaaa" {
		t.Errorf("label %q, want 7-char SHA", a.Points[0].Label)
	}
	if b := trend[1]; b.Name != "BenchmarkB" || len(b.Points) != 1 {
		t.Fatalf("series B wrong: %+v", b)
	}

	if _, err := LoadBenchTrend(filepath.Join(dir, "missing.jsonl")); err == nil {
		t.Fatal("missing history accepted")
	}
	bad := filepath.Join(dir, "bad.jsonl")
	os.WriteFile(bad, []byte("not json\n"), 0o644)
	if _, err := LoadBenchTrend(bad); err == nil {
		t.Fatal("malformed history accepted")
	}
}

func TestHostFlagsWrite(t *testing.T) {
	var hf HostFlags
	var out bytes.Buffer
	// Nil collector: no-op.
	if err := hf.Write(&out, nil); err != nil {
		t.Fatal(err)
	}
	if out.Len() != 0 {
		t.Fatalf("nil host wrote %q", out.String())
	}
	hf = HostFlags{HostPerf: true}
	host := hf.Host()
	defer hostperf.DisableAttrib()
	if err := hf.Write(&out, host); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "allocations by subsystem") {
		t.Fatalf("host table missing:\n%s", out.String())
	}
}

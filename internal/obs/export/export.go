// Package export is the shared observability flag plumbing of the CLIs.
// Every command takes the same observability flags (-trace-out,
// -metrics-out, -report-out, -sample-us, -attrib, -attrib-out, -attrib-top,
// -hostperf, -hostperf-out, -hostperf-history, -cpuprofile, -memprofile);
// this package registers them once, builds the collector/sampler/recorder
// set they imply, and writes every requested artifact the same way —
// instead of each main duplicating the logic.
package export

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"

	"oocnvm/internal/obs"
	"oocnvm/internal/obs/attrib"
	"oocnvm/internal/obs/hostperf"
	"oocnvm/internal/obs/report"
	"oocnvm/internal/obs/timeseries"
	"oocnvm/internal/sim"
)

// Flags holds the observability export options of one command invocation.
type Flags struct {
	// TraceOut writes a Chrome trace_event JSON file.
	TraceOut string
	// MetricsOut writes the metrics registry (JSON, or CSV with .csv suffix).
	MetricsOut string
	// ReportOut writes the self-contained HTML experiment report plus a CSV
	// of every sampled series next to it.
	ReportOut string
	// SampleUS is the telemetry sampling interval in simulated microseconds.
	SampleUS int64
	// Attrib prints the per-request latency-attribution breakdown table
	// (critical-path component ranking) on the command's output.
	Attrib bool
	// AttribOut writes the top-K slow-request exemplar anatomy as CSV.
	AttribOut string
	// AttribTop is the slow-request exemplar capacity (top-K).
	AttribTop int
	// HostPerf prints the per-phase host-cost table and the
	// allocs-by-subsystem breakdown on the command's output, and feeds the
	// HTML report's "Host performance" section. Turning it on is a
	// measurement mode: allocation-site attribution serializes the
	// experiment matrix.
	HostPerf bool
	// HostPerfOut writes the host-performance summary to a file (JSON, or
	// CSV with a .csv suffix). Implies host collection like HostPerf.
	HostPerfOut string
	// HostPerfHistory names a benchjson -history JSONL file; its per-run
	// ns/op trajectories become the report's benchmark sparklines.
	HostPerfHistory string
	// CPUProfile/MemProfile write runtime/pprof profiles of the process
	// (real compute, not simulated time) for the zero-alloc work.
	CPUProfile string
	MemProfile string
}

// DefaultSampleUS is the default sampling interval: fine enough to resolve
// individual large requests, and the sampler coarsens itself on long runs.
const DefaultSampleUS = 50

// Register installs the shared export flags on fs.
func (f *Flags) Register(fs *flag.FlagSet) {
	fs.StringVar(&f.TraceOut, "trace-out", "",
		"write a Chrome trace_event JSON file (open in chrome://tracing or Perfetto)")
	fs.StringVar(&f.MetricsOut, "metrics-out", "",
		"write the metrics registry (JSON, or CSV with a .csv suffix)")
	fs.StringVar(&f.ReportOut, "report-out", "",
		"write a self-contained HTML experiment report (plus a .csv of every sampled series)")
	fs.Int64Var(&f.SampleUS, "sample-us", DefaultSampleUS,
		"telemetry sampling interval in simulated microseconds (report timelines)")
	fs.BoolVar(&f.Attrib, "attrib", false,
		"print the per-request latency attribution breakdown (critical-path components)")
	fs.StringVar(&f.AttribOut, "attrib-out", "",
		"write the top-K slow-request latency anatomy as CSV")
	fs.IntVar(&f.AttribTop, "attrib-top", attrib.DefaultTopK,
		"slow-request exemplar count kept for -attrib-out and report waterfalls")
	fs.BoolVar(&f.HostPerf, "hostperf", false,
		"print the per-phase host cost (wall, cpu, allocs, GC) and allocs-by-subsystem breakdown (serializes the matrix)")
	fs.StringVar(&f.HostPerfOut, "hostperf-out", "",
		"write the host-performance summary (JSON, or CSV with a .csv suffix)")
	fs.StringVar(&f.HostPerfHistory, "hostperf-history", "",
		"benchjson -history JSONL file feeding the report's benchmark-trajectory sparklines")
	fs.StringVar(&f.CPUProfile, "cpuprofile", "",
		"write a runtime/pprof CPU profile of the process to this file")
	fs.StringVar(&f.MemProfile, "memprofile", "",
		"write a runtime/pprof heap profile of the process to this file")
}

// RegisterNetProfile installs the shared -net-profile flag: the named
// netfault degradation profile applied to cluster-network transfers
// (preload staging, checkpoint drains) of the commands that model them.
// Registered separately from Flags so commands with no network path don't
// grow a dead flag.
func RegisterNetProfile(fs *flag.FlagSet, target *string) {
	fs.StringVar(target, "net-profile", "none",
		"network degradation profile for staging transfers (none, wan, lossy, congested, flaky, outage, blackout)")
}

// Enabled reports whether any export needing a metrics collector was
// requested.
func (f *Flags) Enabled() bool {
	return f.TraceOut != "" || f.MetricsOut != "" || f.ReportOut != "" ||
		f.Attrib || f.AttribOut != ""
}

// Collector returns a fresh collector when any export needs one, nil
// otherwise — so the stack runs with free no-op probes unless asked.
func (f *Flags) Collector() *obs.Collector {
	if !f.Enabled() {
		return nil
	}
	return obs.NewCollector()
}

// Sampler returns a fresh time-series sampler when a report was requested,
// nil otherwise (sampling off means zero overhead).
func (f *Flags) Sampler() *timeseries.Sampler {
	if f.ReportOut == "" {
		return nil
	}
	us := f.SampleUS
	if us <= 0 {
		us = DefaultSampleUS
	}
	return timeseries.NewSampler(sim.Time(us)*sim.Microsecond, 0)
}

// Host returns a fresh host-performance collector when host profiling was
// requested (-hostperf or -hostperf-out), nil otherwise. A nil collector's
// Phase is a no-op and the attribution probes stay on their disabled
// one-atomic-load path, so runs without the flags pay nothing.
func (f *Flags) Host() *hostperf.Collector {
	if !f.HostPerf && f.HostPerfOut == "" {
		return nil
	}
	return hostperf.NewCollector()
}

// Recorder returns a fresh latency-attribution recorder when attribution
// output was requested (-attrib, -attrib-out, or an HTML report, whose
// waterfall section it feeds), nil otherwise. When col is non-nil the
// recorder's per-component histograms are created in its registry.
func (f *Flags) Recorder(col *obs.Collector) *attrib.Recorder {
	if !f.Attrib && f.AttribOut == "" && f.ReportOut == "" {
		return nil
	}
	rec := attrib.NewRecorder(f.AttribTop)
	if col != nil {
		rec.BindRegistry(col.Reg)
	}
	return rec
}

// StartProfiles begins the requested runtime/pprof captures and returns a
// stop function that finishes them (ends the CPU profile, snapshots the
// heap). The stop function is safe to call when no profile was requested.
func (f *Flags) StartProfiles() (stop func() error, err error) {
	var cpuFile *os.File
	if f.CPUProfile != "" {
		cpuFile, err = os.Create(f.CPUProfile)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, err
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return err
			}
		}
		if f.MemProfile != "" {
			mf, err := os.Create(f.MemProfile)
			if err != nil {
				return err
			}
			runtime.GC() // settle allocations so the heap profile is stable
			if err := pprof.Lookup("allocs").WriteTo(mf, 0); err != nil {
				mf.Close()
				return err
			}
			if err := mf.Close(); err != nil {
				return err
			}
		}
		return nil
	}, nil
}

// ReportCSVPath derives the series-CSV path from the report path:
// report.html -> report.csv, anything else gets .csv appended.
func ReportCSVPath(reportOut string) string {
	if strings.HasSuffix(reportOut, ".html") {
		return strings.TrimSuffix(reportOut, ".html") + ".csv"
	}
	return reportOut + ".csv"
}

// Write emits every requested artifact: the per-stage latency table, the
// attribution breakdown and the host-cost tables on w, then the trace,
// metrics, attribution CSV, host-performance file, report HTML and report
// CSV files, each confirmed with one line on w. col, samp, rec and host may
// each be nil (that export is skipped); info feeds the report's header
// sections, the recorder's summary its waterfall, and the host collector's
// summary its "Host performance" section.
func (f *Flags) Write(w io.Writer, col *obs.Collector, samp *timeseries.Sampler, rec *attrib.Recorder, host *hostperf.Collector, info report.RunInfo) error {
	snap := obs.Snapshot{}
	if col != nil {
		col.SyncTracerMetrics()
		snap = col.Reg.Snapshot()
		obs.WriteStageTable(w, snap)
		if f.TraceOut != "" {
			if err := col.WriteTraceFile(f.TraceOut); err != nil {
				return err
			}
			fmt.Fprintf(w, "trace written to %s (%d spans, %d dropped)\n",
				f.TraceOut, col.Tr.Len(), col.Tr.Dropped())
		}
		if f.MetricsOut != "" {
			if err := col.WriteMetricsFile(f.MetricsOut); err != nil {
				return err
			}
			fmt.Fprintf(w, "metrics written to %s\n", f.MetricsOut)
		}
	}
	var sum attrib.Summary
	if rec != nil {
		sum = rec.Summary()
		if info.Attrib == nil {
			info.Attrib = &sum
		}
		if f.Attrib {
			fmt.Fprint(w, sum.FormatTable())
		}
		if f.AttribOut != "" {
			af, err := os.Create(f.AttribOut)
			if err != nil {
				return err
			}
			if err := sum.WriteCSV(af); err != nil {
				af.Close()
				return err
			}
			if err := af.Close(); err != nil {
				return err
			}
			fmt.Fprintf(w, "attribution written to %s (%d exemplars)\n", f.AttribOut, len(sum.Exemplars))
		}
	}
	if host != nil {
		hsum := host.Summary()
		if info.Host == nil {
			info.Host = hsum
		}
		if err := writeHostSummary(w, hsum, f.HostPerf, f.HostPerfOut); err != nil {
			return err
		}
	}
	if f.HostPerfHistory != "" && f.ReportOut != "" {
		trend, err := LoadBenchTrend(f.HostPerfHistory)
		if err != nil {
			return err
		}
		info.HostTrend = trend
	}
	if f.ReportOut != "" {
		dump := timeseries.Dump{}
		if samp != nil {
			dump = samp.Dump()
		}
		hf, err := os.Create(f.ReportOut)
		if err != nil {
			return err
		}
		if err := report.WriteHTML(hf, info, snap, dump); err != nil {
			hf.Close()
			return err
		}
		if err := hf.Close(); err != nil {
			return err
		}
		csvPath := ReportCSVPath(f.ReportOut)
		cf, err := os.Create(csvPath)
		if err != nil {
			return err
		}
		if samp != nil {
			if err := samp.WriteCSV(cf); err != nil {
				cf.Close()
				return err
			}
		} else if _, err := fmt.Fprintln(cf, "series,kind,t_ps,value"); err != nil {
			cf.Close()
			return err
		}
		if err := cf.Close(); err != nil {
			return err
		}
		n := 0
		if samp != nil {
			n = len(samp.SeriesNames())
		}
		fmt.Fprintf(w, "report written to %s (%d series, csv %s)\n", f.ReportOut, n, csvPath)
	}
	return nil
}

// writeHostSummary prints the host-cost tables when asked and writes the
// summary file (CSV with a .csv suffix, JSON otherwise), confirming with one
// line on w.
func writeHostSummary(w io.Writer, sum *hostperf.Summary, print bool, out string) error {
	if print {
		fmt.Fprint(w, sum.FormatTable())
	}
	if out != "" {
		hf, err := os.Create(out)
		if err != nil {
			return err
		}
		if strings.HasSuffix(out, ".csv") {
			err = sum.WriteCSV(hf)
		} else {
			err = sum.WriteJSON(hf)
		}
		if err != nil {
			hf.Close()
			return err
		}
		if err := hf.Close(); err != nil {
			return err
		}
		fmt.Fprintf(w, "host performance written to %s\n", out)
	}
	return nil
}

// HostFlags is the standalone -hostperf/-hostperf-out pair for commands
// (like simcheck) that take no other observability exports, so they don't
// grow a dozen dead flags.
type HostFlags struct {
	HostPerf    bool
	HostPerfOut string
}

// Register installs the host-performance flags on fs.
func (f *HostFlags) Register(fs *flag.FlagSet) {
	fs.BoolVar(&f.HostPerf, "hostperf", false,
		"print the per-phase host cost (wall, cpu, allocs, GC) and allocs-by-subsystem breakdown")
	fs.StringVar(&f.HostPerfOut, "hostperf-out", "",
		"write the host-performance summary (JSON, or CSV with a .csv suffix)")
}

// Host returns a fresh host-performance collector when requested, nil
// otherwise.
func (f *HostFlags) Host() *hostperf.Collector {
	if !f.HostPerf && f.HostPerfOut == "" {
		return nil
	}
	return hostperf.NewCollector()
}

// Write emits the requested host-performance outputs. host may be nil (a
// no-op).
func (f *HostFlags) Write(w io.Writer, host *hostperf.Collector) error {
	if host == nil {
		return nil
	}
	return writeHostSummary(w, host.Summary(), f.HostPerf, f.HostPerfOut)
}

// LoadBenchTrend parses a benchjson -history JSONL file (one recorded run
// per line, oldest first) into report trend series: one ns/op trajectory per
// benchmark, benchmarks in sorted-name order. Runs missing a benchmark
// simply contribute no point to its series.
func LoadBenchTrend(path string) ([]report.TrendSeries, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	type histResult struct {
		Name    string  `json:"name"`
		NsPerOp float64 `json:"ns_per_op"`
	}
	type histEntry struct {
		Date    string       `json:"date"`
		GitSHA  string       `json:"git_sha"`
		Results []histResult `json:"results"`
	}
	var entries []histEntry
	for i, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		var e histEntry
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			return nil, fmt.Errorf("export: %s line %d: %w", path, i+1, err)
		}
		entries = append(entries, e)
	}
	var names []string
	seen := make(map[string]bool)
	for _, e := range entries {
		for _, r := range e.Results {
			if !seen[r.Name] {
				seen[r.Name] = true
				names = append(names, r.Name)
			}
		}
	}
	sort.Strings(names)
	out := make([]report.TrendSeries, 0, len(names))
	for _, name := range names {
		s := report.TrendSeries{Name: name, Unit: "ns/op"}
		for _, e := range entries {
			for _, r := range e.Results {
				if r.Name != name {
					continue
				}
				label := e.GitSHA
				if len(label) > 7 {
					label = label[:7]
				}
				if label == "" {
					label = e.Date
				}
				s.Points = append(s.Points, report.TrendPoint{Label: label, Value: r.NsPerOp})
				break
			}
		}
		out = append(out, s)
	}
	return out, nil
}

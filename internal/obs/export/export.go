// Package export is the shared observability flag plumbing of the CLIs.
// Every command takes the same four flags (-trace-out, -metrics-out,
// -report-out, -sample-us); this package registers them once, builds the
// collector/sampler pair they imply, and writes every requested artifact the
// same way — instead of each main duplicating the logic.
package export

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"oocnvm/internal/obs"
	"oocnvm/internal/obs/report"
	"oocnvm/internal/obs/timeseries"
	"oocnvm/internal/sim"
)

// Flags holds the observability export options of one command invocation.
type Flags struct {
	// TraceOut writes a Chrome trace_event JSON file.
	TraceOut string
	// MetricsOut writes the metrics registry (JSON, or CSV with .csv suffix).
	MetricsOut string
	// ReportOut writes the self-contained HTML experiment report plus a CSV
	// of every sampled series next to it.
	ReportOut string
	// SampleUS is the telemetry sampling interval in simulated microseconds.
	SampleUS int64
}

// DefaultSampleUS is the default sampling interval: fine enough to resolve
// individual large requests, and the sampler coarsens itself on long runs.
const DefaultSampleUS = 50

// Register installs the shared export flags on fs.
func (f *Flags) Register(fs *flag.FlagSet) {
	fs.StringVar(&f.TraceOut, "trace-out", "",
		"write a Chrome trace_event JSON file (open in chrome://tracing or Perfetto)")
	fs.StringVar(&f.MetricsOut, "metrics-out", "",
		"write the metrics registry (JSON, or CSV with a .csv suffix)")
	fs.StringVar(&f.ReportOut, "report-out", "",
		"write a self-contained HTML experiment report (plus a .csv of every sampled series)")
	fs.Int64Var(&f.SampleUS, "sample-us", DefaultSampleUS,
		"telemetry sampling interval in simulated microseconds (report timelines)")
}

// Enabled reports whether any export was requested.
func (f *Flags) Enabled() bool {
	return f.TraceOut != "" || f.MetricsOut != "" || f.ReportOut != ""
}

// Collector returns a fresh collector when any export needs one, nil
// otherwise — so the stack runs with free no-op probes unless asked.
func (f *Flags) Collector() *obs.Collector {
	if !f.Enabled() {
		return nil
	}
	return obs.NewCollector()
}

// Sampler returns a fresh time-series sampler when a report was requested,
// nil otherwise (sampling off means zero overhead).
func (f *Flags) Sampler() *timeseries.Sampler {
	if f.ReportOut == "" {
		return nil
	}
	us := f.SampleUS
	if us <= 0 {
		us = DefaultSampleUS
	}
	return timeseries.NewSampler(sim.Time(us)*sim.Microsecond, 0)
}

// ReportCSVPath derives the series-CSV path from the report path:
// report.html -> report.csv, anything else gets .csv appended.
func ReportCSVPath(reportOut string) string {
	if strings.HasSuffix(reportOut, ".html") {
		return strings.TrimSuffix(reportOut, ".html") + ".csv"
	}
	return reportOut + ".csv"
}

// Write emits every requested artifact: the per-stage latency table on w,
// then the trace, metrics, report HTML and report CSV files, each confirmed
// with one line on w. col and samp may each be nil (that export is skipped);
// info feeds the report's header sections.
func (f *Flags) Write(w io.Writer, col *obs.Collector, samp *timeseries.Sampler, info report.RunInfo) error {
	snap := obs.Snapshot{}
	if col != nil {
		col.SyncTracerMetrics()
		snap = col.Reg.Snapshot()
		obs.WriteStageTable(w, snap)
		if f.TraceOut != "" {
			if err := col.WriteTraceFile(f.TraceOut); err != nil {
				return err
			}
			fmt.Fprintf(w, "trace written to %s (%d spans, %d dropped)\n",
				f.TraceOut, col.Tr.Len(), col.Tr.Dropped())
		}
		if f.MetricsOut != "" {
			if err := col.WriteMetricsFile(f.MetricsOut); err != nil {
				return err
			}
			fmt.Fprintf(w, "metrics written to %s\n", f.MetricsOut)
		}
	}
	if f.ReportOut != "" {
		dump := timeseries.Dump{}
		if samp != nil {
			dump = samp.Dump()
		}
		hf, err := os.Create(f.ReportOut)
		if err != nil {
			return err
		}
		if err := report.WriteHTML(hf, info, snap, dump); err != nil {
			hf.Close()
			return err
		}
		if err := hf.Close(); err != nil {
			return err
		}
		csvPath := ReportCSVPath(f.ReportOut)
		cf, err := os.Create(csvPath)
		if err != nil {
			return err
		}
		if samp != nil {
			if err := samp.WriteCSV(cf); err != nil {
				cf.Close()
				return err
			}
		} else if _, err := fmt.Fprintln(cf, "series,kind,t_ps,value"); err != nil {
			cf.Close()
			return err
		}
		if err := cf.Close(); err != nil {
			return err
		}
		n := 0
		if samp != nil {
			n = len(samp.SeriesNames())
		}
		fmt.Fprintf(w, "report written to %s (%d series, csv %s)\n", f.ReportOut, n, csvPath)
	}
	return nil
}

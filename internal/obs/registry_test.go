package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"oocnvm/internal/sim"
)

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a")
	c.Add(2)
	c.Inc()
	if r.Counter("a") != c || c.Value() != 3 {
		t.Fatalf("counter identity/value broken: %d", c.Value())
	}
	g := r.Gauge("b")
	g.Set(1.5)
	if r.Gauge("b").Value() != 1.5 {
		t.Fatal("gauge identity broken")
	}
	h := r.Histogram("c")
	h.Observe(sim.Microsecond)
	if r.Histogram("c").Count() != 1 {
		t.Fatal("histogram identity broken")
	}
}

func TestSnapshotSortedAndDeterministic(t *testing.T) {
	mk := func() *Registry {
		r := NewRegistry()
		r.Counter("z.ops").Add(9)
		r.Counter("a.ops").Add(1)
		r.Gauge("m.bw").Set(3.25)
		r.Observe("k.lat", 5*sim.Microsecond)
		r.Observe("b.lat", 2*sim.Microsecond)
		return r
	}
	s := mk().Snapshot()
	if s.Counters[0].Name != "a.ops" || s.Counters[1].Name != "z.ops" {
		t.Fatalf("counters unsorted: %+v", s.Counters)
	}
	if s.Histograms[0].Name != "b.lat" || s.Histograms[1].Name != "k.lat" {
		t.Fatalf("histograms unsorted: %+v", s.Histograms)
	}

	var j1, j2 bytes.Buffer
	if err := mk().WriteJSON(&j1); err != nil {
		t.Fatal(err)
	}
	if err := mk().WriteJSON(&j2); err != nil {
		t.Fatal(err)
	}
	if j1.String() != j2.String() {
		t.Fatal("JSON export not deterministic")
	}
	var back Snapshot
	if err := json.Unmarshal(j1.Bytes(), &back); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if len(back.Counters) != 2 || len(back.Gauges) != 1 || len(back.Histograms) != 2 {
		t.Fatalf("round trip lost metrics: %+v", back)
	}
}

func TestWriteCSV(t *testing.T) {
	r := NewRegistry()
	r.Counter("n.reads").Add(7)
	r.Gauge("n.bw").Set(2.5)
	r.Observe("n.lat", 3*sim.Microsecond)
	var b bytes.Buffer
	if err := r.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("csv lines = %d: %q", len(lines), b.String())
	}
	if !strings.HasPrefix(lines[0], "kind,name,") {
		t.Fatalf("missing header: %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "counter,n.reads,7,") {
		t.Fatalf("counter row: %q", lines[1])
	}
	if !strings.HasPrefix(lines[3], "histogram,n.lat,,1,") {
		t.Fatalf("histogram row: %q", lines[3])
	}
}

func TestAbsorbCountersAndGauges(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	a.Counter("x").Add(1)
	b.Counter("x").Add(2)
	b.Counter("y").Add(5)
	b.Gauge("g").Set(4)
	a.Absorb(b)
	if a.Counter("x").Value() != 3 || a.Counter("y").Value() != 5 {
		t.Fatalf("counters not merged: x=%d y=%d", a.Counter("x").Value(), a.Counter("y").Value())
	}
	if a.Gauge("g").Value() != 4 {
		t.Fatal("gauge not copied")
	}
	// Self/nil absorbs are no-ops.
	a.Absorb(a)
	a.Absorb(nil)
	if a.Counter("x").Value() != 3 {
		t.Fatal("self-absorb doubled counters")
	}
}

func TestFormatStageTable(t *testing.T) {
	r := NewRegistry()
	if got := FormatStageTable(r.Snapshot()); got != "" {
		t.Fatalf("empty registry table = %q", got)
	}
	r.Observe("ssd.request.latency", 8*sim.Microsecond)
	out := FormatStageTable(r.Snapshot())
	if !strings.Contains(out, "ssd.request.latency") || !strings.Contains(out, "p95") {
		t.Fatalf("table missing fields:\n%s", out)
	}
}

// Package timeseries records time-resolved telemetry from the simulator.
//
// A Sampler owns a set of named series and a sim.Periodic hook. The component
// that owns the simulated clock (the SSD in the replay path) advances the
// sampler as its clock moves; at every interval boundary the sampler reads
// each series' source function and appends one sample. Everything is keyed to
// simulated time — no wall clock anywhere — so two runs with the same seed
// produce byte-identical series.
//
// Buffers are bounded: when a run outlives capacity×interval, the sampler
// halves every buffer by merging adjacent pairs (mean for gauges, sum for
// everything else) and doubles its interval. A series therefore always covers
// the whole run at the finest resolution the buffer affords, and memory stays
// fixed regardless of run length.
//
// Because this simulator books work into the future at dispatch time (there
// is no global event loop replaying completions), cumulative busy counters
// read at a boundary can include work scheduled past it. Fractions are
// clamped to [0,1] at export; DESIGN.md calls this dispatch-horizon sampling.
package timeseries

import (
	"fmt"
	"io"
	"sort"
	"strconv"

	"oocnvm/internal/sim"
)

// Kind classifies how a series' raw source readings become exported values.
type Kind int

// Series kinds.
const (
	// KindGauge samples an instantaneous value (queue depth, write
	// amplification). Downsampling merges by mean.
	KindGauge Kind = iota
	// KindDelta samples the per-interval increase of a cumulative counter
	// (GC runs, fault events). Downsampling merges by sum.
	KindDelta
	// KindRate is a delta exported per simulated second (bytes -> B/s).
	KindRate
	// KindFraction is a delta of cumulative busy picoseconds normalized by
	// resource-count × interval: the busy fraction of a resource pool.
	// Clamped to [0,1] at export.
	KindFraction
	// KindRatio pairs two cumulative counters and exports the ratio of
	// their per-interval deltas (hits / accesses -> hit rate).
	KindRatio
)

// String names the kind for exports.
func (k Kind) String() string {
	switch k {
	case KindGauge:
		return "gauge"
	case KindDelta:
		return "delta"
	case KindRate:
		return "rate"
	case KindFraction:
		return "fraction"
	case KindRatio:
		return "ratio"
	}
	return "unknown"
}

// Source reads a series' raw value at a boundary instant. For delta-family
// kinds it must return a cumulative (non-decreasing between samples) total.
type Source func(at sim.Time) float64

type series struct {
	name    string
	kind    Kind
	f       Source
	den     Source  // KindRatio only: the denominator cumulative
	norm    float64 // KindFraction only: resource count
	last    float64 // previous cumulative reading (delta-family kinds)
	lastDen float64
	buf     []float64
	bufDen  []float64 // KindRatio only
}

// Sampler drives a set of series from the simulated clock. It is not safe
// for concurrent use: like the simulator core it belongs to one drive's
// single-threaded replay.
type Sampler struct {
	per      *sim.Periodic
	interval sim.Time
	capacity int
	count    int
	series   []*series
	byName   map[string]bool
}

// DefaultCapacity bounds each series buffer when NewSampler is given no
// explicit capacity. Power of two so halving stays exact.
const DefaultCapacity = 256

// NewSampler returns a sampler taking one sample per interval of simulated
// time, holding at most capacity samples per series before downsampling.
// capacity <= 0 selects DefaultCapacity; odd capacities round up to even so
// pairwise merging never strands a sample.
func NewSampler(interval sim.Time, capacity int) *Sampler {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	if capacity < 2 {
		capacity = 2
	}
	if capacity%2 != 0 {
		capacity++
	}
	s := &Sampler{interval: interval, capacity: capacity, byName: make(map[string]bool)}
	s.per = sim.NewPeriodic(interval, s.sample)
	if s.interval < 1 {
		s.interval = 1
	}
	return s
}

// Interval reports the current sampling interval (it grows as the ring
// downsamples).
func (s *Sampler) Interval() sim.Time { return s.interval }

// Len reports the number of samples currently held per series.
func (s *Sampler) Len() int { return s.count }

// Advance moves the sampler's notion of simulated time forward, taking one
// sample per crossed interval boundary. Safe to call on every clock movement;
// a now before the next boundary returns immediately.
func (s *Sampler) Advance(now sim.Time) { s.per.Advance(now) }

// add registers a series. Duplicate names keep the first registration so a
// component wired twice (e.g. a cache reused across study runs) cannot
// corrupt the export with colliding rows.
func (s *Sampler) add(sr *series) {
	if s.byName[sr.name] {
		return
	}
	s.byName[sr.name] = true
	sr.buf = make([]float64, 0, s.capacity)
	if sr.kind == KindRatio {
		sr.bufDen = make([]float64, 0, s.capacity)
	}
	// A series registered after sampling started backfills zeros so every
	// buffer stays aligned to the same boundaries.
	for i := 0; i < s.count; i++ {
		sr.buf = append(sr.buf, 0)
		if sr.kind == KindRatio {
			sr.bufDen = append(sr.bufDen, 0)
		}
	}
	// Delta-family series baseline against the source's current total so a
	// component attached mid-run does not report its whole history as the
	// first interval's delta.
	switch sr.kind {
	case KindDelta, KindRate, KindFraction:
		sr.last = sr.f(s.per.Last())
	case KindRatio:
		sr.last = sr.f(s.per.Last())
		sr.lastDen = sr.den(s.per.Last())
	}
	s.series = append(s.series, sr)
}

// AddGauge registers an instantaneous-value series.
func (s *Sampler) AddGauge(name string, f Source) {
	s.add(&series{name: name, kind: KindGauge, f: f})
}

// AddDelta registers a per-interval-delta series over a cumulative counter.
func (s *Sampler) AddDelta(name string, f Source) {
	s.add(&series{name: name, kind: KindDelta, f: f})
}

// AddRate registers a per-second rate series over a cumulative counter.
func (s *Sampler) AddRate(name string, f Source) {
	s.add(&series{name: name, kind: KindRate, f: f})
}

// AddFraction registers a busy-fraction series over a cumulative
// busy-picoseconds counter spread across n parallel resources.
func (s *Sampler) AddFraction(name string, n float64, f Source) {
	if n < 1 {
		n = 1
	}
	s.add(&series{name: name, kind: KindFraction, f: f, norm: n})
}

// AddRatio registers a ratio-of-deltas series over two cumulative counters.
func (s *Sampler) AddRatio(name string, num, den Source) {
	s.add(&series{name: name, kind: KindRatio, f: num, den: den})
}

// sample is the Periodic callback: one reading per registered series.
func (s *Sampler) sample(at sim.Time) {
	for _, sr := range s.series {
		switch sr.kind {
		case KindGauge:
			sr.buf = append(sr.buf, sr.f(at))
		case KindRatio:
			cur, curDen := sr.f(at), sr.den(at)
			sr.buf = append(sr.buf, cur-sr.last)
			sr.bufDen = append(sr.bufDen, curDen-sr.lastDen)
			sr.last, sr.lastDen = cur, curDen
		default:
			cur := sr.f(at)
			sr.buf = append(sr.buf, cur-sr.last)
			sr.last = cur
		}
	}
	s.count++
	if s.count >= s.capacity {
		s.downsample()
	}
}

// downsample merges adjacent sample pairs and doubles the interval, keeping
// buffers at half capacity while still covering the whole run.
func (s *Sampler) downsample() {
	half := s.count / 2
	for _, sr := range s.series {
		merge(sr.buf, sr.kind == KindGauge)
		sr.buf = sr.buf[:half]
		if sr.kind == KindRatio {
			merge(sr.bufDen, false)
			sr.bufDen = sr.bufDen[:half]
		}
	}
	s.count = half
	s.interval *= 2
	s.per.SetInterval(s.interval)
}

// merge folds adjacent pairs of buf in place (mean or sum).
func merge(buf []float64, mean bool) {
	for i := 0; i+1 < len(buf); i += 2 {
		v := buf[i] + buf[i+1]
		if mean {
			v /= 2
		}
		buf[i/2] = v
	}
}

// Point is one exported sample: the boundary instant and the series value.
type Point struct {
	TPs   int64   `json:"t_ps"`
	Value float64 `json:"value"`
}

// Series is one exported series.
type Series struct {
	Name   string  `json:"name"`
	Kind   string  `json:"kind"`
	Points []Point `json:"points"`
}

// Dump is the full deterministic export: series sorted by name, one point
// per sample at the final (post-downsampling) resolution.
type Dump struct {
	IntervalPs int64    `json:"interval_ps"`
	Series     []Series `json:"series"`
}

// value converts a raw buffered sample into its exported value.
func (s *Sampler) value(sr *series, i int) float64 {
	v := sr.buf[i]
	switch sr.kind {
	case KindRate:
		return v / sim.Time(s.interval).Seconds()
	case KindFraction:
		f := v / (sr.norm * float64(s.interval))
		if f < 0 {
			f = 0
		}
		if f > 1 {
			f = 1
		}
		return f
	case KindRatio:
		if sr.bufDen[i] == 0 {
			return 0
		}
		return v / sr.bufDen[i]
	}
	return v
}

// Dump exports every series, sorted by name.
func (s *Sampler) Dump() Dump {
	d := Dump{IntervalPs: int64(s.interval), Series: make([]Series, 0, len(s.series))}
	for _, sr := range s.series {
		out := Series{Name: sr.name, Kind: sr.kind.String(), Points: make([]Point, s.count)}
		for i := 0; i < s.count; i++ {
			out.Points[i] = Point{
				TPs:   int64(s.interval) * int64(i+1),
				Value: s.value(sr, i),
			}
		}
		d.Series = append(d.Series, out)
	}
	sort.Slice(d.Series, func(i, j int) bool { return d.Series[i].Name < d.Series[j].Name })
	return d
}

// SeriesNames lists the registered series, sorted.
func (s *Sampler) SeriesNames() []string {
	names := make([]string, 0, len(s.series))
	for _, sr := range s.series {
		names = append(names, sr.name)
	}
	sort.Strings(names)
	return names
}

// WriteCSV writes every series as flat CSV (series,kind,t_ps,value), rows
// sorted by series name then time. Values use Go's shortest round-trip
// float formatting, so identical runs write identical bytes.
func (s *Sampler) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "series,kind,t_ps,value"); err != nil {
		return err
	}
	for _, sr := range s.Dump().Series {
		for _, p := range sr.Points {
			if _, err := fmt.Fprintf(w, "%s,%s,%d,%s\n",
				sr.Name, sr.Kind, p.TPs, strconv.FormatFloat(p.Value, 'g', -1, 64)); err != nil {
				return err
			}
		}
	}
	return nil
}

// Instrument attaches the sampler to any component exposing
// RegisterSeries(*Sampler), reporting whether it did. Mirrors obs.Instrument:
// components advertise series without this package importing them.
func Instrument(x any, s *Sampler) bool {
	if s == nil || x == nil {
		return false
	}
	r, ok := x.(interface{ RegisterSeries(*Sampler) })
	if !ok {
		return false
	}
	r.RegisterSeries(s)
	return true
}

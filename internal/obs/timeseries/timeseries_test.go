package timeseries

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"oocnvm/internal/sim"
)

func TestGaugeSamplesAtBoundaries(t *testing.T) {
	s := NewSampler(10, 8)
	depth := 0.0
	s.AddGauge("q", func(sim.Time) float64 { return depth })
	depth = 3
	s.Advance(10)
	depth = 5
	s.Advance(25) // boundary 20 only
	d := s.Dump()
	if len(d.Series) != 1 || len(d.Series[0].Points) != 2 {
		t.Fatalf("dump = %+v", d)
	}
	if d.Series[0].Points[0] != (Point{10, 3}) || d.Series[0].Points[1] != (Point{20, 5}) {
		t.Fatalf("points = %+v", d.Series[0].Points)
	}
}

func TestDeltaAndRate(t *testing.T) {
	s := NewSampler(sim.Microsecond, 8)
	total := 0.0
	s.AddDelta("ops", func(sim.Time) float64 { return total })
	s.AddRate("bps", func(sim.Time) float64 { return total })
	total = 4
	s.Advance(sim.Microsecond)
	total = 10
	s.Advance(2 * sim.Microsecond)
	d := s.Dump()
	var ops, bps Series
	for _, sr := range d.Series {
		switch sr.Name {
		case "ops":
			ops = sr
		case "bps":
			bps = sr
		}
	}
	if ops.Points[0].Value != 4 || ops.Points[1].Value != 6 {
		t.Fatalf("delta points = %+v", ops.Points)
	}
	// 4 units in 1 us = 4e6 per second.
	if math.Abs(bps.Points[0].Value-4e6) > 1 {
		t.Fatalf("rate = %v, want 4e6", bps.Points[0].Value)
	}
}

func TestFractionClampsAndNormalizes(t *testing.T) {
	s := NewSampler(100, 8)
	busy := 0.0
	s.AddFraction("util", 2, func(sim.Time) float64 { return busy })
	busy = 100 // 100 ps busy over 2 resources x 100 ps = 0.5
	s.Advance(100)
	busy = 1000 // ahead-of-time booking: delta 900 > 2x100, clamps to 1
	s.Advance(200)
	p := s.Dump().Series[0].Points
	if p[0].Value != 0.5 {
		t.Fatalf("fraction = %v, want 0.5", p[0].Value)
	}
	if p[1].Value != 1 {
		t.Fatalf("fraction = %v, want clamp to 1", p[1].Value)
	}
}

func TestRatioHandlesZeroDenominator(t *testing.T) {
	s := NewSampler(10, 8)
	hits, total := 0.0, 0.0
	s.AddRatio("hit_rate", func(sim.Time) float64 { return hits },
		func(sim.Time) float64 { return total })
	s.Advance(10) // no accesses yet
	hits, total = 3, 4
	s.Advance(20)
	p := s.Dump().Series[0].Points
	if p[0].Value != 0 {
		t.Fatalf("zero-denominator ratio = %v, want 0", p[0].Value)
	}
	if p[1].Value != 0.75 {
		t.Fatalf("ratio = %v, want 0.75", p[1].Value)
	}
}

func TestDownsampleHalvesAndDoublesInterval(t *testing.T) {
	s := NewSampler(10, 4)
	total := 0.0
	s.AddDelta("d", func(sim.Time) float64 { return total })
	s.AddGauge("g", func(sim.Time) float64 { return total })
	for i := 1; i <= 4; i++ {
		total = float64(i * 10) // +10 per boundary; gauge reads 10,20,30,40
		s.Advance(sim.Time(i * 10))
	}
	// Hitting capacity=4 downsamples to 2 samples at interval 20.
	if s.Len() != 2 || s.Interval() != 20 {
		t.Fatalf("len=%d interval=%d, want 2 and 20", s.Len(), s.Interval())
	}
	d := s.Dump()
	if d.IntervalPs != 20 {
		t.Fatalf("IntervalPs = %d", d.IntervalPs)
	}
	for _, sr := range d.Series {
		switch sr.Name {
		case "d": // deltas sum: (10+10), (10+10)
			if sr.Points[0].Value != 20 || sr.Points[1].Value != 20 {
				t.Fatalf("delta merge = %+v", sr.Points)
			}
		case "g": // gauges average: (10+20)/2, (30+40)/2
			if sr.Points[0].Value != 15 || sr.Points[1].Value != 35 {
				t.Fatalf("gauge merge = %+v", sr.Points)
			}
		}
		if sr.Points[0].TPs != 20 || sr.Points[1].TPs != 40 {
			t.Fatalf("timestamps = %+v", sr.Points)
		}
	}
	// Further sampling continues on the doubled interval without refiring
	// old boundaries.
	total = 100
	s.Advance(60)
	if s.Len() != 3 {
		t.Fatalf("len = %d after one more boundary, want 3", s.Len())
	}
}

func TestLateRegistrationBackfillsAndBaselines(t *testing.T) {
	s := NewSampler(10, 8)
	s.AddGauge("early", func(sim.Time) float64 { return 1 })
	s.Advance(20) // two samples before the late series exists
	total := 50.0
	s.AddDelta("late", func(sim.Time) float64 { return total })
	total = 57
	s.Advance(30)
	for _, sr := range s.Dump().Series {
		if sr.Name != "late" {
			continue
		}
		if len(sr.Points) != 3 {
			t.Fatalf("late series points = %+v", sr.Points)
		}
		if sr.Points[0].Value != 0 || sr.Points[1].Value != 0 {
			t.Fatalf("backfill not zero: %+v", sr.Points)
		}
		// Baseline at registration (50), not zero: first live delta is 7.
		if sr.Points[2].Value != 7 {
			t.Fatalf("late first delta = %v, want 7", sr.Points[2].Value)
		}
	}
}

func TestDuplicateRegistrationKeepsFirst(t *testing.T) {
	s := NewSampler(10, 8)
	s.AddGauge("x", func(sim.Time) float64 { return 1 })
	s.AddGauge("x", func(sim.Time) float64 { return 2 })
	s.Advance(10)
	d := s.Dump()
	if len(d.Series) != 1 {
		t.Fatalf("duplicate name produced %d series", len(d.Series))
	}
	if d.Series[0].Points[0].Value != 1 {
		t.Fatalf("second registration won: %+v", d.Series[0].Points)
	}
}

func TestWriteCSVDeterministic(t *testing.T) {
	run := func() string {
		s := NewSampler(10, 8)
		total := 0.0
		s.AddDelta("b.ops", func(sim.Time) float64 { return total })
		s.AddGauge("a.depth", func(sim.Time) float64 { return total / 3 })
		for i := 1; i <= 5; i++ {
			total = float64(i * i)
			s.Advance(sim.Time(i * 10))
		}
		var buf bytes.Buffer
		if err := s.WriteCSV(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("CSV not byte-identical:\n%s\n---\n%s", a, b)
	}
	if !strings.HasPrefix(a, "series,kind,t_ps,value\n") {
		t.Fatalf("missing header: %q", a)
	}
	// Sorted by series name: every a.depth row before any b.ops row.
	if strings.Index(a, "a.depth") > strings.Index(a, "b.ops") {
		t.Fatalf("rows not sorted by series:\n%s", a)
	}
}

func TestInstrument(t *testing.T) {
	s := NewSampler(10, 8)
	c := &fakeComponent{}
	if !Instrument(c, s) {
		t.Fatal("Instrument returned false for a RegisterSeries component")
	}
	if !c.registered {
		t.Fatal("RegisterSeries not called")
	}
	if Instrument(struct{}{}, s) {
		t.Fatal("Instrument matched a component without RegisterSeries")
	}
	if Instrument(c, nil) {
		t.Fatal("Instrument matched with a nil sampler")
	}
}

type fakeComponent struct{ registered bool }

func (f *fakeComponent) RegisterSeries(s *Sampler) {
	f.registered = true
	s.AddGauge("fake", func(sim.Time) float64 { return 0 })
}

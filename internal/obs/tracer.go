package obs

import (
	"encoding/json"
	"io"
	"sort"
	"sync"

	"oocnvm/internal/obs/hostperf"
	"oocnvm/internal/sim"
)

// Attr is one key/value annotation on a span; it lands in the Chrome trace
// event's "args" object.
type Attr struct {
	Key   string
	Value any
}

// A span is one recorded interval of simulated time on a (layer, track).
type span struct {
	layer, track, name string
	start, end         sim.Time
	attrs              []Attr
}

// DefaultTraceLimit bounds tracer memory: a full OoC replay emits one span
// per bus transfer and die activation, which for multi-GiB workloads runs
// into the millions. 2^18 events keeps the Chrome JSON loadable; the
// overflow is counted, never silently discarded.
const DefaultTraceLimit = 1 << 18

// Tracer records spans of simulated time and exports them in the Chrome
// trace_event format: one "process" per layer, one "thread" per track
// (channel, die, queue, link...). Safe for concurrent use.
type Tracer struct {
	mu      sync.Mutex
	limit   int
	spans   []span
	dropped int64
}

// NewTracer returns a tracer bounded at DefaultTraceLimit events.
func NewTracer() *Tracer { return &Tracer{limit: DefaultTraceLimit} }

// SetLimit rebounds the event cap. Zero or negative means unlimited.
func (t *Tracer) SetLimit(n int) {
	t.mu.Lock()
	t.limit = n
	t.mu.Unlock()
}

// Span records one interval. Spans with end < start are clamped to zero
// duration at start.
func (t *Tracer) Span(layer, track, name string, start, end sim.Time, attrs ...Attr) {
	if end < start {
		end = start
	}
	hostperf.Enter(hostperf.SiteObsSpan)
	t.mu.Lock()
	if t.limit > 0 && len(t.spans) >= t.limit {
		t.dropped++
		t.mu.Unlock()
		hostperf.Exit()
		return
	}
	t.spans = append(t.spans, span{layer: layer, track: track, name: name, start: start, end: end, attrs: attrs})
	t.mu.Unlock()
	hostperf.Exit()
}

// Len reports how many spans are recorded.
func (t *Tracer) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// Dropped reports how many spans were rejected by the event cap.
func (t *Tracer) Dropped() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Reset drops every recorded span and clears the overflow counter while
// keeping the backing array, so a tracer reused across runs records into
// recycled storage instead of re-growing a fresh span list.
func (t *Tracer) Reset() {
	t.mu.Lock()
	t.spans = t.spans[:0]
	t.dropped = 0
	t.mu.Unlock()
}

// SpanRecord is one recorded span, as returned by Spans.
type SpanRecord struct {
	Layer, Track, Name string
	Start, End         sim.Time
	Attrs              []Attr
}

// Spans returns a copy of all recorded spans in recording order, for tests
// and programmatic inspection.
func (t *Tracer) Spans() []SpanRecord {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanRecord, len(t.spans))
	for i, s := range t.spans {
		out[i] = SpanRecord{Layer: s.layer, Track: s.track, Name: s.name, Start: s.start, End: s.end, Attrs: s.attrs}
	}
	return out
}

// chromeTrace is the JSON object format of the Chrome trace_event spec.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// chromeEvent is one trace_event. Complete spans use ph "X" with ts/dur in
// microseconds; process/thread naming uses ph "M" metadata events.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Ts   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// psToUs converts picoseconds to the trace format's microsecond unit.
func psToUs(t sim.Time) float64 { return float64(t) / 1e6 }

// WriteChromeJSON exports all recorded spans as Chrome trace_event JSON,
// loadable in chrome://tracing or Perfetto. The export is deterministic:
// layers and tracks are id'd in sorted order and events are sorted by
// (layer, track, start, end, name).
func (t *Tracer) WriteChromeJSON(w io.Writer) error {
	t.mu.Lock()
	spans := make([]span, len(t.spans))
	copy(spans, t.spans)
	dropped := t.dropped
	t.mu.Unlock()

	sort.SliceStable(spans, func(i, j int) bool {
		a, b := spans[i], spans[j]
		if a.layer != b.layer {
			return a.layer < b.layer
		}
		if a.track != b.track {
			return a.track < b.track
		}
		if a.start != b.start {
			return a.start < b.start
		}
		if a.end != b.end {
			return a.end < b.end
		}
		return a.name < b.name
	})

	// Assign pids per layer and tids per (layer, track), both in sorted
	// order (the spans are already layer/track sorted).
	pids := make(map[string]int)
	type lt struct{ layer, track string }
	tids := make(map[lt]int)
	events := make([]chromeEvent, 0, len(spans)+8)
	for _, s := range spans {
		pid, ok := pids[s.layer]
		if !ok {
			pid = len(pids) + 1
			pids[s.layer] = pid
			events = append(events, chromeEvent{
				Name: "process_name", Ph: "M", Pid: pid,
				Args: map[string]any{"name": s.layer},
			})
		}
		key := lt{s.layer, s.track}
		tid, ok := tids[key]
		if !ok {
			tid = 1
			for k := range tids {
				if k.layer == s.layer {
					tid++
				}
			}
			tids[key] = tid
			events = append(events, chromeEvent{
				Name: "thread_name", Ph: "M", Pid: pid, Tid: tid,
				Args: map[string]any{"name": s.track},
			})
		}
		dur := psToUs(s.end - s.start)
		ev := chromeEvent{Name: s.name, Ph: "X", Pid: pid, Tid: tid, Ts: psToUs(s.start), Dur: &dur}
		if len(s.attrs) > 0 {
			ev.Args = make(map[string]any, len(s.attrs))
			for _, a := range s.attrs {
				ev.Args[a.Key] = a.Value
			}
		}
		events = append(events, ev)
	}
	if dropped > 0 {
		// Surface truncation inside the trace itself so a viewer sees it.
		events = append(events, chromeEvent{
			Name: "tracer_dropped_events", Ph: "M", Pid: 0,
			Args: map[string]any{"dropped": dropped},
		})
	}

	b, err := json.MarshalIndent(chromeTrace{TraceEvents: events, DisplayTimeUnit: "ns"}, "", " ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

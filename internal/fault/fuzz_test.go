package fault

import "testing"

// FuzzReadClassify asserts ECC.Classify's invariants over arbitrary budgets
// and error counts: the class ordering is consistent with the thresholds,
// retries stay within the ladder, and corrected-bit accounting never
// invents errors.
func FuzzReadClassify(f *testing.F) {
	f.Add(8, 4, 3, 0, int64(0))
	f.Add(8, 4, 3, 9, int64(20))
	f.Add(60, 8, 5, 200, int64(900))
	f.Add(2, 0, 1, 3, int64(3))
	f.Fuzz(func(t *testing.T, correctable, retryBits, maxRetries, worst int, total int64) {
		// Constrain to the representable domain: non-negative budgets, and a
		// worst codeword that cannot exceed the total across codewords.
		if correctable < 0 || retryBits < 0 || maxRetries < 0 || maxRetries > 1000 {
			t.Skip()
		}
		if worst < 0 || int64(worst) > total {
			t.Skip()
		}
		ecc := ECC{CodewordBytes: 1024, CorrectableBits: correctable,
			RetryBits: retryBits, MaxRetries: maxRetries}
		r := ecc.Classify(worst, total)
		switch {
		case worst == 0:
			if r.Class != ReadClean || r.Retries != 0 || r.CorrectedBits != 0 {
				t.Fatalf("zero errors classified %+v", r)
			}
		case worst <= correctable:
			if r.Class != ReadCorrected || r.Retries != 0 {
				t.Fatalf("in-budget worst=%d classified %+v", worst, r)
			}
			if r.CorrectedBits != total {
				t.Fatalf("corrected bits %d, want %d", r.CorrectedBits, total)
			}
		default:
			if r.Class != ReadRetried && r.Class != ReadUncorrectable {
				t.Fatalf("over-budget worst=%d classified %+v", worst, r)
			}
			if r.Retries < 0 || r.Retries > maxRetries {
				t.Fatalf("retries %d outside ladder [0,%d]", r.Retries, maxRetries)
			}
			if r.Class == ReadRetried {
				if r.Retries == 0 && maxRetries > 0 {
					t.Fatalf("retried with zero retries: %+v", r)
				}
				// The ladder must actually cover the overflow.
				gain := retryBits
				if gain <= 0 {
					gain = 1
				}
				if worst-correctable > r.Retries*gain {
					t.Fatalf("worst=%d not covered by %d retries of %d bits", worst, r.Retries, gain)
				}
			}
			if r.Class == ReadUncorrectable && r.CorrectedBits != 0 {
				t.Fatalf("uncorrectable read claims corrected bits: %+v", r)
			}
		}
	})
}

// Package fault models NVM reliability: a deterministic raw-bit-error-rate
// (RBER) model per page, an ECC budget that classifies every read as clean,
// corrected, retry-needed or uncorrectable, program/erase failure injection
// that grows bad blocks, and the graceful-degradation policy (spare blocks,
// then read-only) the SSD controller enforces.
//
// The package is deliberately dependency-light: it knows nothing about the
// nvm package's geometry types. Callers describe the device with plain
// numbers (pages per block, die-planes per row, total eraseblocks) and the
// nvm package provides a constructor that fills them in (nvm.FaultConfig).
//
// Everything is driven by the experiment-seeded sim.RNG, so fault behavior
// is bit-reproducible for a fixed seed, and a zeroed Profile draws nothing
// at all, leaving fault-free runs bit-identical to a build without the
// injector.
package fault

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// ErrReadOnly is returned (wrapped) by the SSD when a write or erase reaches
// a device that has exhausted its spare blocks and degraded to read-only.
var ErrReadOnly = errors.New("fault: device is read-only (spare blocks exhausted)")

// ErrUncorrectable is returned (wrapped) by the SSD when a read contained at
// least one page whose errors exceeded the ECC budget and the retry ladder.
var ErrUncorrectable = errors.New("fault: uncorrectable read error")

// Profile parameterizes the error model. The zero value injects nothing.
//
// The RBER of a page grows with the wear of its eraseblock and with
// retention age:
//
//	rber = BaseRBER × exp(WearGrowth × PE/endurance) × (1 + RetentionGrowth × days)
//
// Program and erase failures are Bernoulli per operation, with the base
// probability scaled by (1 + 9 × PE/endurance) so failures cluster at end of
// life the way grown bad blocks do on real parts.
type Profile struct {
	Name string
	// BaseRBER is the raw bit error rate of a fresh, just-written page.
	BaseRBER float64
	// WearGrowth is ln(RBER multiplier) at rated endurance: 4.6 ≈ 100× at
	// the last rated P/E cycle.
	WearGrowth float64
	// RetentionGrowth is the fractional RBER growth per day of retention.
	RetentionGrowth float64
	// ProgramFailProb and EraseFailProb are base per-operation failure
	// probabilities.
	ProgramFailProb float64
	EraseFailProb   float64
	// PrecycleFrac pre-ages every block by this fraction of rated endurance
	// before the run starts (the paper's drives-per-year story, replayed).
	PrecycleFrac float64
	// RetentionDays ages all data by this many days.
	RetentionDays float64
	// BlockVar is the half-width, in log space, of the deterministic
	// block-to-block RBER quality spread: each eraseblock's rate is scaled
	// by a seed-hashed factor in [exp(-BlockVar), exp(+BlockVar)]. Real
	// parts show an order of magnitude of block quality variation; this is
	// what makes clean, corrected, retried and uncorrectable reads coexist
	// in a single run instead of every page landing in one class.
	BlockVar float64
}

// Enabled reports whether the profile can inject anything at all.
func (p Profile) Enabled() bool {
	return p.BaseRBER > 0 || p.ProgramFailProb > 0 || p.EraseFailProb > 0
}

// Profiles returns the named profiles, mildest first.
func Profiles() []Profile {
	return []Profile{
		{Name: "none"},
		{
			Name:            "fresh",
			BaseRBER:        1e-5,
			WearGrowth:      4.6,
			RetentionGrowth: 0.002,
			ProgramFailProb: 1e-7,
			EraseFailProb:   1e-7,
			BlockVar:        1.0,
		},
		{
			Name:            "worn",
			BaseRBER:        1e-4,
			WearGrowth:      4.6,
			RetentionGrowth: 0.005,
			ProgramFailProb: 1e-6,
			EraseFailProb:   1e-6,
			PrecycleFrac:    0.5,
			BlockVar:        1.0,
		},
		{
			Name:            "eol",
			BaseRBER:        1e-4,
			WearGrowth:      4.6,
			RetentionGrowth: 0.01,
			ProgramFailProb: 1e-4,
			EraseFailProb:   5e-5,
			PrecycleFrac:    1.0,
			BlockVar:        1.2,
		},
	}
}

// ForName returns the named profile ("none", "fresh", "worn", "eol").
func ForName(name string) (Profile, error) {
	for _, p := range Profiles() {
		if p.Name == name {
			return p, nil
		}
	}
	var names []string
	for _, p := range Profiles() {
		names = append(names, p.Name)
	}
	return Profile{}, fmt.Errorf("fault: unknown profile %q (have %s)", name, strings.Join(names, ", "))
}

// ECC describes the error-correction budget of the controller for one
// medium: pages are split into codewords, each independently correctable up
// to CorrectableBits. When a codeword exceeds the budget, the controller
// walks a read-retry ladder: each stepped re-sense recovers RetryBits of
// margin, up to MaxRetries steps before the read is uncorrectable.
type ECC struct {
	CodewordBytes   int64
	CorrectableBits int
	RetryBits       int
	MaxRetries      int
}

// ReadClass classifies one page read.
type ReadClass int

// Read outcomes, best to worst.
const (
	ReadClean ReadClass = iota
	ReadCorrected
	ReadRetried
	ReadUncorrectable
)

// String names the class.
func (c ReadClass) String() string {
	switch c {
	case ReadClean:
		return "clean"
	case ReadCorrected:
		return "corrected"
	case ReadRetried:
		return "retried"
	case ReadUncorrectable:
		return "uncorrectable"
	default:
		return fmt.Sprintf("ReadClass(%d)", int(c))
	}
}

// ReadResult is the injector's verdict on one page read.
type ReadResult struct {
	Class ReadClass
	// Retries is the number of stepped re-senses the controller needed
	// (0 unless Class >= ReadRetried; MaxRetries when uncorrectable).
	Retries int
	// CorrectedBits is the total number of bit errors the ECC fixed.
	CorrectedBits int64
}

// Classify grades a page given the worst codeword's error count and the sum
// of errors across codewords. It is exposed for tests and for the fuzz
// harness; the Injector calls it after sampling.
func (e ECC) Classify(worst int, total int64) ReadResult {
	switch {
	case worst == 0:
		return ReadResult{Class: ReadClean}
	case worst <= e.CorrectableBits:
		return ReadResult{Class: ReadCorrected, CorrectedBits: total}
	}
	over := worst - e.CorrectableBits
	gain := e.RetryBits
	if gain <= 0 {
		gain = 1
	}
	retries := (over + gain - 1) / gain
	if retries > e.MaxRetries {
		return ReadResult{Class: ReadUncorrectable, Retries: e.MaxRetries}
	}
	return ReadResult{Class: ReadRetried, Retries: retries, CorrectedBits: total}
}

// Counts is a snapshot of everything the injector has seen.
type Counts struct {
	Reads         int64
	Clean         int64
	Corrected     int64
	Retried       int64
	Uncorrectable int64
	CorrectedBits int64
	Retries       int64

	ProgramFailures int64
	EraseFailures   int64
	GrownBadBlocks  int64
	SparesLeft      int64
	RejectedOps     int64
	ReadOnly        bool
}

// String renders the counts as the replay tools' fault summary block.
func (c Counts) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "faults: %d reads: %d clean, %d corrected (%d bits), %d retried (%d retries), %d uncorrectable\n",
		c.Reads, c.Clean, c.Corrected, c.CorrectedBits, c.Retried, c.Retries, c.Uncorrectable)
	fmt.Fprintf(&b, "        %d program failures, %d erase failures, %d grown-bad blocks, %d spares left, read-only %v\n",
		c.ProgramFailures, c.EraseFailures, c.GrownBadBlocks, c.SparesLeft, c.ReadOnly)
	return b.String()
}

// rber evaluates the error-rate model for one block's wear.
func (p Profile) rber(pe, endurance int64) float64 {
	if p.BaseRBER <= 0 {
		return 0
	}
	frac := 0.0
	if endurance > 0 {
		frac = float64(pe) / float64(endurance)
	}
	r := p.BaseRBER * math.Exp(p.WearGrowth*frac) * (1 + p.RetentionGrowth*p.RetentionDays)
	if r > 0.5 {
		r = 0.5
	}
	return r
}

// opFailProb evaluates the wear-scaled program/erase failure probability.
func (p Profile) opFailProb(base float64, pe, endurance int64) float64 {
	if base <= 0 {
		return 0
	}
	frac := 0.0
	if endurance > 0 {
		frac = float64(pe) / float64(endurance)
	}
	f := base * (1 + 9*frac)
	if f > 1 {
		f = 1
	}
	return f
}

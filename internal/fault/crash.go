package fault

import (
	"errors"

	"oocnvm/internal/sim"
)

// ErrPowerLoss reports that the simulated drive lost power: an armed crash
// plan fired, and every request after the cut point is rejected until the
// stack is rebuilt and remounted. Wrap it so callers can errors.Is it.
var ErrPowerLoss = errors.New("fault: power loss")

// CrashPlan names a deterministic power-cut point. A crash fires at the
// Nth NAND program/erase boundary (AfterOps > 0, counted from arming) or
// at a simulated-time instant (AtTime > 0), whichever is configured;
// when both are set the earlier event wins. The zero plan never fires but
// still counts boundaries, which is how a sweep measures a workload's
// total program/erase population before choosing cut points.
type CrashPlan struct {
	// AfterOps cuts power when the AfterOps-th program/erase boundary is
	// reached: the op that would have been the AfterOps-th completes as a
	// torn write (its page carries garbage, its OOB tags never land).
	AfterOps int64
	// AtTime cuts power at the first program/erase boundary whose
	// completion time is at or past this simulated instant.
	AtTime sim.Time
}

// armed reports whether the plan can ever fire.
func (p CrashPlan) armed() bool { return p.AfterOps > 0 || p.AtTime > 0 }

// ArmCrash installs a crash plan. Arming resets the boundary counter and
// the crashed latch; a nil-equivalent zero plan counts boundaries without
// ever firing. Call before submitting work.
func (i *Injector) ArmCrash(plan CrashPlan) {
	p := plan
	i.crash = &p
	i.peOps = 0
	i.crashed = false
}

// CrashOnOp is the device's per-program/per-erase hook: it counts the
// boundary and reports whether power is cut on exactly this op. at is the
// op's completion instant on the simulated clock. Once it returns true
// the injector stays Crashed until re-armed; further boundaries are
// neither counted nor reached (the device stops executing).
func (i *Injector) CrashOnOp(at sim.Time) bool {
	if i == nil || i.crash == nil || i.crashed {
		return false
	}
	i.peOps++
	if !i.crash.armed() {
		return false
	}
	if (i.crash.AfterOps > 0 && i.peOps >= i.crash.AfterOps) ||
		(i.crash.AtTime > 0 && at >= i.crash.AtTime) {
		i.crashed = true
		return true
	}
	return false
}

// Crashed reports whether an armed crash plan has fired.
func (i *Injector) Crashed() bool { return i != nil && i.crashed }

// PEOps reports the number of program/erase boundaries counted since the
// plan was armed (including the torn one).
func (i *Injector) PEOps() int64 {
	if i == nil {
		return 0
	}
	return i.peOps
}

package fault

import (
	"strings"
	"testing"
)

func TestZeroProfileDisabled(t *testing.T) {
	var p Profile
	if p.Enabled() {
		t.Fatal("zero profile enabled")
	}
	if p.rber(1000, 100) != 0 {
		t.Fatal("zero profile has nonzero RBER")
	}
	if p.opFailProb(0, 1000, 100) != 0 {
		t.Fatal("zero profile has nonzero failure probability")
	}
}

func TestForName(t *testing.T) {
	for _, name := range []string{"none", "fresh", "worn", "eol"} {
		p, err := ForName(name)
		if err != nil {
			t.Fatal(err)
		}
		if p.Name != name {
			t.Fatalf("ForName(%q).Name = %q", name, p.Name)
		}
	}
	if _, err := ForName("bogus"); err == nil {
		t.Fatal("unknown profile accepted")
	}
	if p, _ := ForName("none"); p.Enabled() {
		t.Fatal(`"none" profile must be disabled`)
	}
}

func TestRBERGrowsWithWearAndRetention(t *testing.T) {
	p, _ := ForName("fresh")
	const endurance = 100000
	fresh := p.rber(0, endurance)
	worn := p.rber(endurance, endurance)
	if worn <= fresh {
		t.Fatalf("RBER did not grow with wear: %v -> %v", fresh, worn)
	}
	// WearGrowth 4.6 means ~100x at rated endurance.
	if ratio := worn / fresh; ratio < 50 || ratio > 200 {
		t.Fatalf("wear growth ratio %v, want ~100x", ratio)
	}
	aged := p
	aged.RetentionDays = 365
	if aged.rber(0, endurance) <= fresh {
		t.Fatal("RBER did not grow with retention age")
	}
	// The model caps at 0.5 (a fair coin per bit) no matter the abuse.
	extreme := Profile{BaseRBER: 0.4, WearGrowth: 50, RetentionGrowth: 10, RetentionDays: 1000}
	if r := extreme.rber(1000, 10); r > 0.5 {
		t.Fatalf("RBER %v exceeds 0.5 cap", r)
	}
}

func TestOpFailProbScalesAndCaps(t *testing.T) {
	p := Profile{ProgramFailProb: 1e-4}
	base := p.opFailProb(p.ProgramFailProb, 0, 1000)
	eol := p.opFailProb(p.ProgramFailProb, 1000, 1000)
	if eol != 10*base {
		t.Fatalf("end-of-life failure probability %v, want 10x base %v", eol, base)
	}
	if got := p.opFailProb(0.5, 10000, 10); got != 1 {
		t.Fatalf("failure probability %v, want capped at 1", got)
	}
}

func TestClassifyBoundaries(t *testing.T) {
	ecc := ECC{CodewordBytes: 1024, CorrectableBits: 8, RetryBits: 4, MaxRetries: 3}
	cases := []struct {
		worst   int
		class   ReadClass
		retries int
	}{
		{0, ReadClean, 0},
		{1, ReadCorrected, 0},
		{8, ReadCorrected, 0},
		{9, ReadRetried, 1},
		{12, ReadRetried, 1},
		{13, ReadRetried, 2},
		{20, ReadRetried, 3},
		{21, ReadUncorrectable, 3},
		{1000, ReadUncorrectable, 3},
	}
	for _, c := range cases {
		got := ecc.Classify(c.worst, int64(c.worst))
		if got.Class != c.class || got.Retries != c.retries {
			t.Fatalf("Classify(worst=%d) = %+v, want class %v retries %d",
				c.worst, got, c.class, c.retries)
		}
	}
}

func TestClassifyZeroRetryBits(t *testing.T) {
	// A degenerate ladder (RetryBits 0) must not divide by zero.
	ecc := ECC{CodewordBytes: 512, CorrectableBits: 2, RetryBits: 0, MaxRetries: 1}
	if got := ecc.Classify(3, 3); got.Class != ReadRetried || got.Retries != 1 {
		t.Fatalf("Classify with zero RetryBits = %+v", got)
	}
}

func TestReadClassString(t *testing.T) {
	for c, want := range map[ReadClass]string{
		ReadClean: "clean", ReadCorrected: "corrected",
		ReadRetried: "retried", ReadUncorrectable: "uncorrectable",
	} {
		if c.String() != want {
			t.Fatalf("%d.String() = %q", int(c), c.String())
		}
	}
}

func testConfig(prof Profile) Config {
	return Config{
		Profile:       prof,
		ECC:           ECC{CodewordBytes: 1024, CorrectableBits: 8, RetryBits: 4, MaxRetries: 3},
		PageSize:      4096,
		PagesPerBlock: 64,
		RowSize:       8,
		TotalBlocks:   256,
		Endurance:     100000,
		Seed:          42,
	}
}

func TestInjectorRejectsBadGeometry(t *testing.T) {
	cfg := testConfig(Profile{})
	cfg.PageSize = 0
	if _, err := New(cfg); err == nil {
		t.Fatal("zero page size accepted")
	}
}

func TestDisabledInjectorDrawsNothing(t *testing.T) {
	inj, err := New(testConfig(Profile{}))
	if err != nil {
		t.Fatal(err)
	}
	if inj.Enabled() {
		t.Fatal("zero-profile injector claims enabled")
	}
	for ppn := int64(0); ppn < 1000; ppn++ {
		if rr := inj.ReadPage(ppn); rr != (ReadResult{}) {
			t.Fatalf("disabled injector returned %+v", rr)
		}
		if inj.OnProgram(ppn) || inj.OnErase(ppn) {
			t.Fatal("disabled injector injected a failure")
		}
	}
	// Proof the RNG was never touched: the stream starts at its first draw.
	before := *inj.rng
	inj.ReadPage(0)
	inj.OnProgram(0)
	if *inj.rng != before {
		t.Fatal("disabled injector consumed RNG state")
	}
}

func TestInjectorDeterministic(t *testing.T) {
	prof, _ := ForName("eol")
	run := func() Counts {
		inj, err := New(testConfig(prof))
		if err != nil {
			t.Fatal(err)
		}
		for ppn := int64(0); ppn < 5000; ppn++ {
			inj.ReadPage(ppn)
			inj.OnProgram(ppn)
			inj.OnErase(ppn)
		}
		return inj.Counts()
	}
	if run() != run() {
		t.Fatal("same seed, different fault behavior")
	}
}

func TestInjectorSeedChangesStream(t *testing.T) {
	prof, _ := ForName("eol")
	run := func(seed uint64) Counts {
		cfg := testConfig(prof)
		cfg.Seed = seed
		cfg.ECC = ECC{CodewordBytes: 1024, CorrectableBits: 60, RetryBits: 8, MaxRetries: 5}
		inj, _ := New(cfg)
		for ppn := int64(0); ppn < 5000; ppn++ {
			inj.ReadPage(ppn)
		}
		return inj.Counts()
	}
	if run(1) == run(2) {
		t.Fatal("different seeds produced identical fault counts")
	}
}

func TestEOLProducesAllReadClasses(t *testing.T) {
	prof, _ := ForName("eol")
	cfg := testConfig(prof)
	cfg.ECC = ECC{CodewordBytes: 1024, CorrectableBits: 60, RetryBits: 8, MaxRetries: 5} // TLC budget
	inj, _ := New(cfg)
	for ppn := int64(0); ppn < 20000; ppn++ {
		inj.ReadPage(ppn)
	}
	c := inj.Counts()
	if c.Corrected == 0 || c.Retried == 0 || c.Uncorrectable == 0 {
		t.Fatalf("EOL class mix missing a class: %+v", c)
	}
	if c.Reads != c.Clean+c.Corrected+c.Retried+c.Uncorrectable {
		t.Fatalf("class counts don't sum to reads: %+v", c)
	}
	if got := inj.TakeUncorrectable(); got != c.Uncorrectable {
		t.Fatalf("TakeUncorrectable %d, counted %d", got, c.Uncorrectable)
	}
	if inj.TakeUncorrectable() != 0 {
		t.Fatal("TakeUncorrectable did not drain")
	}
}

func TestWearFeedsBackIntoReads(t *testing.T) {
	prof, _ := ForName("worn")
	// Hammer one block with erases, then compare its read error burden
	// against an untouched block over many samples.
	errBits := func(hammer bool) int64 {
		inj, _ := New(testConfig(prof))
		if hammer {
			for k := 0; k < 200000; k++ {
				inj.erases[0]++
			}
		}
		var total int64
		for k := 0; k < 3000; k++ {
			total += inj.ReadPage(0).CorrectedBits
		}
		c := inj.Counts()
		return total + c.Uncorrectable*1000
	}
	if errBits(true) <= errBits(false) {
		t.Fatal("wear did not increase read error burden")
	}
}

func TestProgramEraseFailuresQueueAndDrain(t *testing.T) {
	prof := Profile{ProgramFailProb: 1, EraseFailProb: 1} // fail everything
	inj, _ := New(testConfig(prof))
	if !inj.OnProgram(0) {
		t.Fatal("certain program failure did not fire")
	}
	if !inj.OnErase(100) {
		t.Fatal("certain erase failure did not fire")
	}
	fails := inj.TakeFailures()
	if len(fails) != 2 || fails[0].Op != FailProgram || fails[1].Op != FailErase {
		t.Fatalf("failures = %+v", fails)
	}
	if inj.TakeFailures() != nil {
		t.Fatal("TakeFailures did not drain")
	}
	// Failures on a block already grown bad are suppressed.
	inj.OnRetire(0)
	if inj.OnProgram(0) {
		t.Fatal("failure injected on retired block")
	}
}

func TestSparesExhaustionDegradesToReadOnly(t *testing.T) {
	prof := Profile{ProgramFailProb: 1}
	cfg := testConfig(prof)
	cfg.SpareBlocks = 3
	inj, _ := New(cfg)
	for b := int64(0); b < 3; b++ {
		if inj.ReadOnly() {
			t.Fatalf("read-only after only %d retirements", b)
		}
		inj.OnRetire(b) // block ids 0..2 are distinct eraseblocks (RowSize 8)
	}
	if !inj.ReadOnly() {
		t.Fatal("not read-only after exhausting 3 spares")
	}
	c := inj.Counts()
	if c.GrownBadBlocks != 3 || c.SparesLeft != 0 || !c.ReadOnly {
		t.Fatalf("counts after exhaustion: %+v", c)
	}
	inj.RejectOp()
	if inj.Counts().RejectedOps != 1 {
		t.Fatal("rejected op not counted")
	}
}

func TestPrecycleFoldsFracAndFlag(t *testing.T) {
	prof := Profile{BaseRBER: 1e-5, PrecycleFrac: 0.5}
	cfg := testConfig(prof)
	cfg.PrecyclePE = 1000
	inj, _ := New(cfg)
	want := int64(0.5*float64(cfg.Endurance)) + 1000
	if inj.pe(0) != want {
		t.Fatalf("precycled PE = %d, want %d", inj.pe(0), want)
	}
}

func TestRetentionDaysFoldIntoProfile(t *testing.T) {
	prof := Profile{BaseRBER: 1e-5, RetentionDays: 10}
	cfg := testConfig(prof)
	cfg.RetentionDays = 20
	inj, _ := New(cfg)
	if inj.Profile().RetentionDays != 30 {
		t.Fatalf("retention days = %v, want 30", inj.Profile().RetentionDays)
	}
}

func TestBlockOfLayout(t *testing.T) {
	inj, _ := New(testConfig(Profile{}))
	// RowSize 8, PagesPerBlock 64: pages 0..7 are row 0 of blocks 0..7; page
	// 8 is row 1 of block 0; page 512 (= 8*64) starts the next block group.
	cases := map[int64]int64{0: 0, 1: 1, 7: 7, 8: 0, 15: 7, 511: 7, 512: 8, 513: 9}
	for ppn, want := range cases {
		if got := inj.blockOf(ppn); got != want {
			t.Fatalf("blockOf(%d) = %d, want %d", ppn, got, want)
		}
	}
}

func TestPoissonMean(t *testing.T) {
	inj, _ := New(testConfig(Profile{}))
	for _, lambda := range []float64{0.5, 5, 50} {
		var sum float64
		const n = 20000
		for k := 0; k < n; k++ {
			sum += float64(inj.poisson(lambda))
		}
		mean := sum / n
		if mean < lambda*0.9 || mean > lambda*1.1 {
			t.Fatalf("poisson(%v) mean %v over %d draws", lambda, mean, n)
		}
	}
	if inj.poisson(0) != 0 || inj.poisson(-1) != 0 {
		t.Fatal("poisson of non-positive lambda must be 0")
	}
}

func TestBlockVarIsDeterministicPerBlock(t *testing.T) {
	prof, _ := ForName("eol")
	inj, _ := New(testConfig(prof))
	a, b := inj.rberOf(3), inj.rberOf(3)
	if a != b {
		t.Fatal("block quality factor not stable across calls")
	}
	distinct := map[float64]bool{}
	for blk := int64(0); blk < 32; blk++ {
		distinct[inj.rberOf(blk)] = true
	}
	if len(distinct) < 16 {
		t.Fatalf("only %d distinct block RBERs over 32 blocks; spread too narrow", len(distinct))
	}
}

func TestCountsString(t *testing.T) {
	c := Counts{Reads: 10, Clean: 5, Corrected: 3, Retried: 1, Uncorrectable: 1,
		GrownBadBlocks: 2, SparesLeft: 14, ReadOnly: true}
	s := c.String()
	for _, frag := range []string{"10 reads", "2 grown-bad", "14 spares", "read-only true"} {
		if !strings.Contains(s, frag) {
			t.Fatalf("Counts.String() missing %q:\n%s", frag, s)
		}
	}
}

package fault

import (
	"fmt"
	"math"

	"oocnvm/internal/obs"
	"oocnvm/internal/obs/timeseries"
	"oocnvm/internal/sim"
)

// Config assembles an Injector for one device. The geometry numbers mirror
// the nvm package's page striping: pages stripe over RowSize die-planes,
// PagesPerBlock rows form one eraseblock per die-plane, and TotalBlocks is
// the device's whole eraseblock population. nvm.FaultConfig derives all of
// them from a Geometry/CellParams pair.
type Config struct {
	Profile Profile
	ECC     ECC
	// PageSize is the interface page size in bytes.
	PageSize int64
	// PagesPerBlock is the eraseblock depth in pages.
	PagesPerBlock int64
	// RowSize is the number of die-planes pages stripe over (channels ×
	// planes × dies per channel).
	RowSize int64
	// TotalBlocks is the device's eraseblock count (RowSize × blocks per plane).
	TotalBlocks int64
	// Endurance is the medium's rated P/E cycles.
	Endurance int64
	// SpareBlocks is the grown-bad budget: each block retirement consumes
	// one; at zero the device degrades to read-only.
	SpareBlocks int64
	// PrecyclePE adds absolute P/E cycles on top of the profile's
	// PrecycleFrac (the -precycle flag).
	PrecyclePE int64
	// RetentionDays adds retention age on top of the profile's (the
	// -retention-days flag).
	RetentionDays float64
	Seed          uint64
}

// FailureOp distinguishes the verb that grew a bad block.
type FailureOp int

// Failure verbs.
const (
	FailProgram FailureOp = iota
	FailErase
)

// Failure records one program/erase failure awaiting controller handling.
type Failure struct {
	PPN int64
	Op  FailureOp
}

// Injector is the per-device fault state machine. It is not safe for
// concurrent use; every SSD owns exactly one, matching the single-threaded
// discrete-event core.
type Injector struct {
	prof      Profile
	ecc       ECC
	pageSize  int64
	ppb       int64
	rowSize   int64
	blocks    int64
	endurance int64
	precycle  int64

	rng        *sim.RNG
	seed       uint64
	gaussSpare float64
	gaussOK    bool

	erases   map[int64]int64 // eraseblock -> erase count this run
	bad      map[int64]bool  // grown-bad eraseblocks (dedups failure reports)
	pending  []Failure
	pendUnc  int64 // uncorrectable pages since last TakeUncorrectable
	spares   int64
	readOnly bool

	// Power-loss crash injection (ArmCrash). peOps counts NAND
	// program/erase boundaries while a plan is armed; crashed latches once
	// the plan's cut point is reached.
	crash   *CrashPlan
	peOps   int64
	crashed bool

	counts Counts
	probe  obs.Probe
}

// New builds an injector. A disabled profile is fine: every hook returns the
// zero answer without drawing from the RNG.
func New(cfg Config) (*Injector, error) {
	if cfg.PageSize <= 0 || cfg.PagesPerBlock <= 0 || cfg.RowSize <= 0 || cfg.TotalBlocks <= 0 {
		return nil, fmt.Errorf("fault: config needs positive geometry, got %+v", cfg)
	}
	if cfg.ECC.CodewordBytes <= 0 {
		cfg.ECC.CodewordBytes = 1024
	}
	prof := cfg.Profile
	prof.RetentionDays += cfg.RetentionDays
	pre := cfg.PrecyclePE
	if cfg.Endurance > 0 && prof.PrecycleFrac > 0 {
		pre += int64(prof.PrecycleFrac * float64(cfg.Endurance))
	}
	spares := cfg.SpareBlocks
	if spares <= 0 {
		spares = 16
	}
	return &Injector{
		prof:      prof,
		ecc:       cfg.ECC,
		pageSize:  cfg.PageSize,
		ppb:       cfg.PagesPerBlock,
		rowSize:   cfg.RowSize,
		blocks:    cfg.TotalBlocks,
		endurance: cfg.Endurance,
		precycle:  pre,
		rng:       sim.NewRNG(cfg.Seed),
		seed:      cfg.Seed,
		erases:    make(map[int64]int64),
		bad:       make(map[int64]bool),
		spares:    spares,
		probe:     obs.Nop{},
	}, nil
}

// SetProbe attaches an observability probe mirroring every fault event into
// counters.
func (i *Injector) SetProbe(p obs.Probe) { i.probe = obs.OrNop(p) }

// Enabled reports whether the injector can do anything: a profile that
// injects errors, or an armed power-loss crash plan.
func (i *Injector) Enabled() bool { return i.prof.Enabled() || i.crash != nil }

// Profile returns the effective profile (flag adjustments folded in).
func (i *Injector) Profile() Profile { return i.prof }

// blockOf maps a physical page number to its eraseblock: pages stripe
// row-first over the die-planes, ppb consecutive rows form one block per
// die-plane.
func (i *Injector) blockOf(ppn int64) int64 {
	if ppn < 0 {
		ppn = -ppn
	}
	b := (ppn/(i.rowSize*i.ppb))*i.rowSize + ppn%i.rowSize
	return b % i.blocks
}

// pe returns the effective program/erase cycle count of a block.
func (i *Injector) pe(block int64) int64 {
	return i.precycle + i.erases[block]
}

// mix64 is the SplitMix64 finalizer, used as a stateless hash.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// rberOf evaluates the block's error rate: the wear/retention model scaled
// by the block's deterministic quality factor. The factor is a pure hash of
// (seed, block) — stable across reads, independent of the sampling stream.
func (i *Injector) rberOf(block int64) float64 {
	r := i.prof.rber(i.pe(block), i.endurance)
	if r <= 0 || i.prof.BlockVar <= 0 {
		return r
	}
	u := float64(mix64(uint64(block)^i.seed)>>11) / (1 << 53)
	r *= math.Exp(i.prof.BlockVar * (2*u - 1))
	if r > 0.5 {
		r = 0.5
	}
	return r
}

// ReadPage samples the error behavior of one page read and returns the
// retry/uncorrectable verdict. The device charges the retry latency; the SSD
// drains uncorrectable counts via TakeUncorrectable.
func (i *Injector) ReadPage(ppn int64) ReadResult {
	if i.prof.BaseRBER <= 0 {
		return ReadResult{}
	}
	block := i.blockOf(ppn)
	lambda := i.rberOf(block) * float64(i.ecc.CodewordBytes*8)
	codewords := i.pageSize / i.ecc.CodewordBytes
	if codewords < 1 {
		codewords = 1
	}
	worst, total := 0, int64(0)
	for c := int64(0); c < codewords; c++ {
		e := i.poisson(lambda)
		total += int64(e)
		if e > worst {
			worst = e
		}
	}
	res := i.ecc.Classify(worst, total)

	i.counts.Reads++
	i.probe.Count("fault.reads", 1)
	switch res.Class {
	case ReadClean:
		i.counts.Clean++
		i.probe.Count("fault.read.clean", 1)
	case ReadCorrected:
		i.counts.Corrected++
		i.probe.Count("fault.read.corrected", 1)
	case ReadRetried:
		i.counts.Retried++
		i.probe.Count("fault.read.retried", 1)
	case ReadUncorrectable:
		i.counts.Uncorrectable++
		i.pendUnc++
		i.probe.Count("fault.read.uncorrectable", 1)
	}
	if res.CorrectedBits > 0 {
		i.counts.CorrectedBits += res.CorrectedBits
		i.probe.Count("fault.corrected_bits", res.CorrectedBits)
	}
	if res.Retries > 0 {
		i.counts.Retries += int64(res.Retries)
		i.probe.Count("fault.read.retries", int64(res.Retries))
	}
	return res
}

// OnProgram injects a program failure with the wear-scaled probability,
// queueing the failing page for controller handling. Failures on blocks
// already grown bad are suppressed (the block is being retired).
func (i *Injector) OnProgram(ppn int64) bool {
	p := i.prof.opFailProb(i.prof.ProgramFailProb, i.pe(i.blockOf(ppn)), i.endurance)
	if p <= 0 || !i.rng.Bool(p) {
		return false
	}
	if i.bad[i.blockOf(ppn)] {
		return false
	}
	i.counts.ProgramFailures++
	i.probe.Count("fault.program_failures", 1)
	i.pending = append(i.pending, Failure{PPN: ppn, Op: FailProgram})
	return true
}

// OnErase counts one erase on the page's block (feeding the wear model) and
// injects an erase failure with the wear-scaled probability.
func (i *Injector) OnErase(ppn int64) bool {
	block := i.blockOf(ppn)
	i.erases[block]++
	p := i.prof.opFailProb(i.prof.EraseFailProb, i.pe(block), i.endurance)
	if p <= 0 || !i.rng.Bool(p) {
		return false
	}
	if i.bad[block] {
		return false
	}
	i.counts.EraseFailures++
	i.probe.Count("fault.erase_failures", 1)
	i.pending = append(i.pending, Failure{PPN: ppn, Op: FailErase})
	return true
}

// TakeFailures drains the queued program/erase failures.
func (i *Injector) TakeFailures() []Failure {
	if len(i.pending) == 0 {
		return nil
	}
	out := i.pending
	i.pending = nil
	return out
}

// TakeUncorrectable drains the count of uncorrectable pages seen since the
// last call.
func (i *Injector) TakeUncorrectable() int64 {
	n := i.pendUnc
	i.pendUnc = 0
	return n
}

// OnRetire records that the controller retired the block containing ppn,
// consuming one spare. Exhausting the pool transitions the device to
// read-only.
func (i *Injector) OnRetire(ppn int64) {
	i.bad[i.blockOf(ppn)] = true
	i.counts.GrownBadBlocks++
	i.probe.Count("fault.grown_bad_blocks", 1)
	if i.spares > 0 {
		i.spares--
	}
	if i.spares == 0 {
		i.Degrade()
	}
}

// Degrade forces the read-only transition (also used when a translator
// cannot relocate a failing block at all).
func (i *Injector) Degrade() {
	if i.readOnly {
		return
	}
	i.readOnly = true
	i.counts.ReadOnly = true
	i.probe.Count("fault.readonly_transitions", 1)
}

// ReadOnly reports whether the device has degraded to read-only.
func (i *Injector) ReadOnly() bool { return i.readOnly }

// RejectOp counts one write/erase refused because the device is read-only.
func (i *Injector) RejectOp() {
	i.counts.RejectedOps++
	i.probe.Count("fault.rejected_ops", 1)
}

// RegisterSeries registers the injector's time-resolved telemetry: fault
// events per sampling interval. Registered even for a disabled profile so
// the report's series set is stable across fault configurations (the series
// are simply flat at zero).
func (i *Injector) RegisterSeries(ts *timeseries.Sampler) {
	ts.AddDelta("fault.corrected", func(sim.Time) float64 { return float64(i.counts.Corrected) })
	ts.AddDelta("fault.retried", func(sim.Time) float64 { return float64(i.counts.Retried) })
	ts.AddDelta("fault.uncorrectable", func(sim.Time) float64 { return float64(i.counts.Uncorrectable) })
	ts.AddDelta("fault.grown_bad_blocks", func(sim.Time) float64 { return float64(i.counts.GrownBadBlocks) })
}

// Counts snapshots the injector's counters.
func (i *Injector) Counts() Counts {
	c := i.counts
	c.SparesLeft = i.spares
	return c
}

// poisson draws a Poisson(lambda) variate from the injector's stream: Knuth
// for small lambda, a rounded normal approximation beyond (the error counts
// there are far above any ECC budget anyway, so the tail shape is moot).
func (i *Injector) poisson(lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda < 30 {
		limit := math.Exp(-lambda)
		k, p := 0, 1.0
		for {
			p *= i.rng.Float64()
			if p <= limit {
				return k
			}
			k++
		}
	}
	n := lambda + math.Sqrt(lambda)*i.gauss()
	if n < 0 {
		return 0
	}
	return int(n + 0.5)
}

// gauss draws a standard normal via Box-Muller, caching the paired variate.
func (i *Injector) gauss() float64 {
	if i.gaussOK {
		i.gaussOK = false
		return i.gaussSpare
	}
	u := i.rng.Float64()
	if u < 1e-300 {
		u = 1e-300
	}
	v := i.rng.Float64()
	r := math.Sqrt(-2 * math.Log(u))
	i.gaussSpare = r * math.Sin(2*math.Pi*v)
	i.gaussOK = true
	return r * math.Cos(2*math.Pi*v)
}

package fs

// KiB and MiB are byte-size helpers for profile literals.
const (
	KiB int64 = 1024
	MiB int64 = 1024 * KiB
)

// The profiles below encode the behavioural differences the paper observes
// between the examined file systems (§4.3). The dominant lever is how much
// I/O the stack keeps in flight for a sequential reader — the product of the
// block-layer coalescing limit (MaxRequest) and the readahead window
// (ReadAheadBytes), exactly the knobs the paper's "ext4-L" turns up — with
// synchronous metadata lookups (MetaBytes) and journal commits
// (JournalBytes) interspersed in the data stream as the second-order drag.
// Relative structure follows each file system's known design:
//
//   - ext2: indirect-block layout, small requests, stock readahead, frequent
//     indirect-block lookups — the worst performer on NAND.
//   - ext3: ext2's layout plus an ordered-mode journal; slightly deeper
//     plugging than ext2.
//   - ReiserFS: tree-packed layout, moderate request sizes, tree-node reads.
//   - JFS: extent-based with a deeper issue pipeline but a busy journal.
//   - XFS: extents, delayed allocation, larger I/O, sparse metadata.
//   - ext4: extent trees and multiblock allocation; stock block-layer caps.
//   - ext4-L: ext4 with the request-size/readahead kernel knobs raised.
//   - BTRFS: copy-on-write with large sequential extents; best non-tuned.
//   - GPFS: see NewGPFS in gpfs.go.
//
// Absolute values were calibrated against the paper's reported deltas: the
// worst CNL file system lands at about +7%/+78%/+108% over ION-GPFS for
// TLC/MLC/SLC, BTRFS roughly doubles ext2 on TLC, ext4-L gains on the order
// of a GB/s over ext4, and PCM compresses the whole field (§4.3).

// Ext2 returns the ext2 profile.
func Ext2() Profile {
	return Profile{
		Name: "EXT2", BlockSize: 4 * KiB,
		MaxRequest: 128 * KiB, ReadAheadBytes: 256 * KiB,
		ScatterProb: 0.30, MetaBytes: 16 * MiB,
	}
}

// Ext3 returns the ext3 profile.
func Ext3() Profile {
	return Profile{
		Name: "EXT3", BlockSize: 4 * KiB,
		MaxRequest: 128 * KiB, ReadAheadBytes: 384 * KiB,
		ScatterProb: 0.25, MetaBytes: 16 * MiB,
		JournalBytes: 32 * MiB, JournalWriteSize: 16 * KiB,
	}
}

// ReiserFS returns the ReiserFS profile.
func ReiserFS() Profile {
	return Profile{
		Name: "REISERFS", BlockSize: 4 * KiB,
		MaxRequest: 128 * KiB, ReadAheadBytes: 384 * KiB,
		ScatterProb: 0.18, MetaBytes: 8 * MiB,
		JournalBytes: 48 * MiB, JournalWriteSize: 8 * KiB,
	}
}

// JFS returns the JFS profile.
func JFS() Profile {
	return Profile{
		Name: "JFS", BlockSize: 4 * KiB,
		MaxRequest: 128 * KiB, ReadAheadBytes: 512 * KiB,
		ScatterProb: 0.20, MetaBytes: 16 * MiB,
		JournalBytes: 32 * MiB, JournalWriteSize: 8 * KiB,
	}
}

// XFS returns the XFS profile.
func XFS() Profile {
	return Profile{
		Name: "XFS", BlockSize: 4 * KiB,
		MaxRequest: 256 * KiB, ReadAheadBytes: 512 * KiB,
		ScatterProb: 0.10, MetaBytes: 32 * MiB,
		JournalBytes: 64 * MiB, JournalWriteSize: 8 * KiB,
	}
}

// Ext4 returns the ext4 profile.
func Ext4() Profile {
	return Profile{
		Name: "EXT4", BlockSize: 4 * KiB,
		MaxRequest: 256 * KiB, ReadAheadBytes: 512 * KiB,
		ScatterProb: 0.08, MetaBytes: 16 * MiB,
		JournalBytes: 48 * MiB, JournalWriteSize: 16 * KiB,
	}
}

// Ext4Large returns ext4 with the block-layer request-size and readahead
// knobs raised ("ext4-L" in the paper).
func Ext4Large() Profile {
	p := Ext4()
	p.Name = "EXT4-L"
	p.MaxRequest = 2 * MiB
	p.ReadAheadBytes = 8 * MiB
	p.MetaBytes = 32 * MiB
	return p
}

// BTRFS returns the BTRFS profile.
func BTRFS() Profile {
	return Profile{
		Name: "BTRFS", BlockSize: 4 * KiB,
		MaxRequest: 512 * KiB, ReadAheadBytes: 1 * MiB,
		ScatterProb: 0.05, MetaBytes: 32 * MiB,
		JournalBytes: 64 * MiB, JournalWriteSize: 16 * KiB,
	}
}

// LocalProfiles lists the compute-node-local file systems in the paper's
// chart order (Figure 7a, left to right after ION-GPFS, before UFS).
func LocalProfiles() []Profile {
	return []Profile{JFS(), BTRFS(), XFS(), ReiserFS(), Ext2(), Ext3(), Ext4(), Ext4Large()}
}

// Package fs models how file systems mutate an application's POSIX request
// stream on its way to the block device. The paper (§3.2) attributes the
// performance spread between file systems to exactly two mechanisms, both
// modeled here:
//
//  1. requests are divided into small blocks and only coalesced back up to an
//     artificial limit before reaching the device, destroying the die-level
//     parallelism large sequential requests would unlock; and
//  2. metadata and journalling accesses land in the middle of the data
//     stream, serializing it and contending for the same NVM resources.
//
// GPFS additionally stripes — "divides up what was previously largely
// sequential" (§4.2, Figure 6) — and UFS removes the file system's
// transformations entirely, passing application requests through at raw
// device addresses.
package fs

import (
	"fmt"

	"oocnvm/internal/obs"
	"oocnvm/internal/sim"
	"oocnvm/internal/trace"
)

// FileSystem converts a POSIX-level trace into the block-level trace that
// reaches the SSD.
type FileSystem interface {
	Name() string
	Transform(ops []trace.PosixOp) []trace.BlockOp
	// ReadAhead is the in-flight byte window the kernel keeps for a
	// synchronous reader under this file system: the effective depth of the
	// device pipeline, and the knob ext4-L turns up.
	ReadAhead() int64
}

// Profile parameterizes a conventional file system's behaviour.
type Profile struct {
	Name string

	// BlockSize is the allocation granularity; requests are aligned to it.
	BlockSize int64
	// MaxRequest caps how large a coalesced request handed to the block
	// device may grow ("artificial limits ... on how large the size of the
	// coalesced request can be").
	MaxRequest int64
	// ScatterProb is the probability that a chunk is relocated to a random
	// aligned device address: allocator fragmentation and non-extent
	// (indirect-block) layouts break physical contiguity.
	ScatterProb float64
	// MetaBytes injects one synchronous 4 KiB metadata read per this many
	// bytes of data (indirect/extent-tree lookups, inode updates). Zero
	// disables metadata traffic.
	MetaBytes int64
	// JournalBytes injects one synchronous journal write per this many bytes
	// of data. Zero disables journalling.
	JournalBytes int64
	// JournalWriteSize is the size of each journal commit record.
	JournalWriteSize int64
	// ReadAheadBytes bounds in-flight data for a synchronous reader (the
	// kernel readahead window). Zero selects DefaultReadAhead.
	ReadAheadBytes int64
}

// DefaultReadAhead is the stock kernel readahead window.
const DefaultReadAhead = 256 * KiB

// Validate reports nonsensical profiles.
func (p Profile) Validate() error {
	if p.BlockSize <= 0 || p.MaxRequest <= 0 {
		return fmt.Errorf("fs: %s: BlockSize and MaxRequest must be positive", p.Name)
	}
	if p.MaxRequest < p.BlockSize {
		return fmt.Errorf("fs: %s: MaxRequest %d below BlockSize %d", p.Name, p.MaxRequest, p.BlockSize)
	}
	if p.ScatterProb < 0 || p.ScatterProb > 1 {
		return fmt.Errorf("fs: %s: ScatterProb %v out of [0,1]", p.Name, p.ScatterProb)
	}
	return nil
}

// profileFS is the engine executing a Profile against a device address space.
type profileFS struct {
	p        Profile
	capacity int64
	rng      *sim.RNG
	journal  int64 // next journal-region write position

	probe obs.Probe
	seq   int64 // synthetic translate-span timeline position
}

// SetProbe attaches an observability probe. Translation happens ahead of
// simulated time, so translate spans are placed on a synthetic timeline (one
// microsecond per POSIX request) that shows the fan-out, not timing.
func (f *profileFS) SetProbe(p obs.Probe) { f.probe = obs.OrNop(p) }

// New builds a file system from a behavioural profile. capacity is the size
// of the device's address space (used for scatter relocation targets); seed
// fixes the allocator's random stream.
func New(p Profile, capacity int64, seed uint64) (FileSystem, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if capacity <= 0 {
		return nil, fmt.Errorf("fs: %s: capacity must be positive", p.Name)
	}
	return &profileFS{p: p, capacity: capacity, rng: sim.NewRNG(seed), probe: obs.Nop{}}, nil
}

// MustNew is New for known-good profiles; it panics on error.
func MustNew(p Profile, capacity int64, seed uint64) FileSystem {
	f, err := New(p, capacity, seed)
	if err != nil {
		panic(err)
	}
	return f
}

func (f *profileFS) Name() string { return f.p.Name }

// ReadAhead reports the profile's in-flight byte window.
func (f *profileFS) ReadAhead() int64 {
	if f.p.ReadAheadBytes > 0 {
		return f.p.ReadAheadBytes
	}
	return DefaultReadAhead
}

// journalRegion reserves the tail 1/64th of the device for the journal.
func (f *profileFS) journalBase() int64 {
	return f.capacity - f.capacity/64
}

func (f *profileFS) Transform(ops []trace.PosixOp) []trace.BlockOp {
	var out []trace.BlockOp
	var sinceMeta, sinceJournal int64
	for _, op := range ops {
		outBefore := len(out)
		// Align the request to FS blocks, then cut it at the coalescing cap.
		start := op.Offset - op.Offset%f.p.BlockSize
		end := op.Offset + op.Size
		if rem := end % f.p.BlockSize; rem != 0 {
			end += f.p.BlockSize - rem
		}
		for cur := start; cur < end; {
			n := f.p.MaxRequest
			if cur+n > end {
				n = end - cur
			}
			off := cur % f.capacity
			if f.rng.Bool(f.p.ScatterProb) {
				// Relocate to a random block-aligned address outside the
				// journal region.
				blocks := f.journalBase() / f.p.BlockSize
				off = f.rng.Int63n(blocks) * f.p.BlockSize
			}
			if off+n > f.capacity {
				off = 0
			}
			out = append(out, trace.BlockOp{Kind: op.Kind, Offset: off, Size: n})
			cur += n

			sinceMeta += n
			sinceJournal += n
			if f.p.MetaBytes > 0 && sinceMeta >= f.p.MetaBytes {
				sinceMeta -= f.p.MetaBytes
				blocks := f.journalBase() / 4096
				out = append(out, trace.BlockOp{
					Kind: trace.Read, Offset: f.rng.Int63n(blocks) * 4096,
					Size: 4096, Sync: true, Meta: true,
				})
				f.probe.Count("fs.meta_ops", 1)
			}
			if f.p.JournalBytes > 0 && sinceJournal >= f.p.JournalBytes {
				sinceJournal -= f.p.JournalBytes
				size := f.p.JournalWriteSize
				if size <= 0 {
					size = 4096
				}
				pos := f.journalBase() + f.journal%(f.capacity/64-size)
				f.journal += size
				// Journal commits are asynchronous (the kernel's commit
				// thread); they contend for the NVM but do not barrier the
				// data stream the way metadata lookups do.
				out = append(out, trace.BlockOp{
					Kind: trace.Write, Offset: pos, Size: size, Meta: true,
				})
				f.probe.Count("fs.journal_ops", 1)
			}
		}
		f.probe.Count("fs.posix_ops", 1)
		f.probe.Count("fs.block_ops", int64(len(out)-outBefore))
		if f.probe.Enabled() {
			t := sim.Time(f.seq) * sim.Microsecond
			f.probe.Span(obs.LayerFS, f.p.Name, "translate", t, t+sim.Microsecond,
				obs.Attr{Key: "in_bytes", Value: op.Size},
				obs.Attr{Key: "out_ops", Value: int64(len(out) - outBefore)})
		}
		f.seq++
	}
	return out
}

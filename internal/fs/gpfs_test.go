package fs

import (
	"testing"

	"oocnvm/internal/trace"
)

func TestGPFSConfigValidation(t *testing.T) {
	if _, err := NewGPFS(GPFSConfig{}, testCapacity, 1); err == nil {
		t.Fatal("zero config accepted")
	}
	bad := DefaultGPFS()
	bad.FragmentSize = bad.StripeUnit * 2
	if _, err := NewGPFS(bad, testCapacity, 1); err == nil {
		t.Fatal("fragment larger than stripe accepted")
	}
	if _, err := NewGPFS(DefaultGPFS(), 0, 1); err == nil {
		t.Fatal("zero capacity accepted")
	}
}

func TestGPFSFragmentsRequests(t *testing.T) {
	g, err := NewGPFS(DefaultGPFS(), testCapacity, 1)
	if err != nil {
		t.Fatal(err)
	}
	out := g.Transform([]trace.PosixOp{posixRead(0, 8<<20)})
	for _, op := range out {
		if op.Meta {
			continue
		}
		if op.Size != DefaultGPFS().FragmentSize {
			t.Fatalf("fragment of %d bytes, want %d", op.Size, DefaultGPFS().FragmentSize)
		}
	}
	// Volume is preserved (other servers' stripes appear as statistically
	// equivalent interleaved traffic).
	if got := trace.DataBytes(out); got != 8<<20 {
		t.Fatalf("data volume %d, want %d", got, 8<<20)
	}
}

// TestGPFSDestroysSequentiality is the heart of Figure 6: the largely
// sequential POSIX stream becomes scattered at the device.
func TestGPFSDestroysSequentiality(t *testing.T) {
	g, err := NewGPFS(DefaultGPFS(), testCapacity, 1)
	if err != nil {
		t.Fatal(err)
	}
	out := g.Transform([]trace.PosixOp{posixRead(0, 64<<20)})
	seq := trace.Characterize(out).SequentialPct
	if seq > 0.25 {
		t.Fatalf("sub-GPFS trace %.0f%% sequential; striping should break the stream", 100*seq)
	}
}

func TestGPFSTokenTraffic(t *testing.T) {
	cfg := DefaultGPFS()
	g, err := NewGPFS(cfg, testCapacity, 1)
	if err != nil {
		t.Fatal(err)
	}
	out := g.Transform([]trace.PosixOp{posixRead(0, 16<<20)})
	st := trace.Characterize(out)
	want := int(16 << 20 / cfg.TokenBytes)
	if st.MetaOps != want {
		t.Fatalf("token ops = %d, want %d", st.MetaOps, want)
	}
}

func TestGPFSLargerStripesHelpOnlySoMuch(t *testing.T) {
	// §4.2: "larger stripes combat this randomizing trend, but only to
	// limited extents". Bigger stripe units must increase sequentiality,
	// but never restore it fully.
	small := DefaultGPFS()
	small.StripeUnit = 256 << 10
	big := DefaultGPFS()
	big.StripeUnit = 4 << 20
	in := []trace.PosixOp{posixRead(0, 64<<20)}
	gs, _ := NewGPFS(small, testCapacity, 1)
	gb, _ := NewGPFS(big, testCapacity, 1)
	seqSmall := trace.Characterize(gs.Transform(in)).SequentialPct
	seqBig := trace.Characterize(gb.Transform(in)).SequentialPct
	if seqBig <= seqSmall {
		t.Fatalf("bigger stripes did not help: %.2f vs %.2f", seqBig, seqSmall)
	}
	if seqBig > 0.5 {
		t.Fatalf("bigger stripes restored %.0f%% sequentiality; should be limited", 100*seqBig)
	}
}

func TestGPFSDeterministic(t *testing.T) {
	in := []trace.PosixOp{posixRead(0, 16<<20)}
	a, _ := NewGPFS(DefaultGPFS(), testCapacity, 9)
	b, _ := NewGPFS(DefaultGPFS(), testCapacity, 9)
	oa, ob := a.Transform(in), b.Transform(in)
	if len(oa) != len(ob) {
		t.Fatal("lengths differ")
	}
	for i := range oa {
		if oa[i] != ob[i] {
			t.Fatalf("op %d differs", i)
		}
	}
}

func TestGPFSInBounds(t *testing.T) {
	g, _ := NewGPFS(DefaultGPFS(), testCapacity, 1)
	out := g.Transform([]trace.PosixOp{posixRead(testCapacity/2, 32<<20)})
	for _, op := range out {
		if op.Offset < 0 || op.Offset+op.Size > testCapacity {
			t.Fatalf("fragment [%d, %d) outside device", op.Offset, op.Offset+op.Size)
		}
	}
}

func TestGPFSReadAhead(t *testing.T) {
	g, _ := NewGPFS(DefaultGPFS(), testCapacity, 1)
	if g.ReadAhead() != DefaultGPFS().ReadAheadBytes {
		t.Fatal("readahead not wired")
	}
	cfg := DefaultGPFS()
	cfg.ReadAheadBytes = 0
	g, _ = NewGPFS(cfg, testCapacity, 1)
	if g.ReadAhead() != DefaultReadAhead {
		t.Fatal("zero readahead did not default")
	}
}

func TestGPFSName(t *testing.T) {
	g, _ := NewGPFS(DefaultGPFS(), testCapacity, 1)
	if g.Name() != "GPFS" {
		t.Fatal("name wrong")
	}
}

package fs

import (
	"testing"
	"testing/quick"

	"oocnvm/internal/trace"
)

const testCapacity = 1 << 30

func posixRead(off, size int64) trace.PosixOp {
	return trace.PosixOp{Kind: trace.Read, Offset: off, Size: size}
}

func TestProfileValidate(t *testing.T) {
	for _, p := range LocalProfiles() {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
	bad := Profile{Name: "X", BlockSize: 0, MaxRequest: 4096}
	if bad.Validate() == nil {
		t.Error("zero block size passed validation")
	}
	bad = Profile{Name: "X", BlockSize: 4096, MaxRequest: 1024}
	if bad.Validate() == nil {
		t.Error("MaxRequest below BlockSize passed validation")
	}
	bad = Profile{Name: "X", BlockSize: 4096, MaxRequest: 4096, ScatterProb: 1.5}
	if bad.Validate() == nil {
		t.Error("ScatterProb > 1 passed validation")
	}
}

func TestNewRejectsBadCapacity(t *testing.T) {
	if _, err := New(Ext2(), 0, 1); err == nil {
		t.Fatal("zero capacity accepted")
	}
}

func TestMustNewPanicsOnError(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew did not panic")
		}
	}()
	MustNew(Profile{}, testCapacity, 1)
}

func TestTransformSplitsAtMaxRequest(t *testing.T) {
	p := Profile{Name: "T", BlockSize: 4096, MaxRequest: 64 << 10}
	f := MustNew(p, testCapacity, 1)
	out := f.Transform([]trace.PosixOp{posixRead(0, 1<<20)})
	if len(out) != 16 {
		t.Fatalf("1 MiB split into %d ops, want 16 x 64 KiB", len(out))
	}
	for _, op := range out {
		if op.Size > p.MaxRequest {
			t.Fatalf("request of %d exceeds coalescing cap %d", op.Size, p.MaxRequest)
		}
	}
}

func TestTransformPreservesDataVolume(t *testing.T) {
	p := Profile{Name: "T", BlockSize: 4096, MaxRequest: 128 << 10}
	f := MustNew(p, testCapacity, 1)
	out := f.Transform([]trace.PosixOp{posixRead(0, 3<<20)})
	if got := trace.DataBytes(out); got != 3<<20 {
		t.Fatalf("data bytes %d, want %d", got, 3<<20)
	}
}

func TestTransformAlignsToBlocks(t *testing.T) {
	p := Profile{Name: "T", BlockSize: 4096, MaxRequest: 64 << 10}
	f := MustNew(p, testCapacity, 1)
	// An unaligned request is rounded out to block boundaries.
	out := f.Transform([]trace.PosixOp{posixRead(100, 5000)})
	var bytes int64
	for _, op := range out {
		if op.Offset%4096 != 0 {
			t.Fatalf("unaligned block offset %d", op.Offset)
		}
		bytes += op.Size
	}
	if bytes != 8192 { // [0,4096) + [4096,8192)
		t.Fatalf("aligned volume %d, want 8192", bytes)
	}
}

func TestMetadataInjectionRate(t *testing.T) {
	p := Profile{Name: "T", BlockSize: 4096, MaxRequest: 128 << 10, MetaBytes: 1 << 20}
	f := MustNew(p, testCapacity, 1)
	out := f.Transform([]trace.PosixOp{posixRead(0, 64<<20)})
	st := trace.Characterize(out)
	if st.MetaOps != 64 {
		t.Fatalf("metadata ops = %d, want 64 (one per MiB)", st.MetaOps)
	}
	// Metadata lookups are synchronous barriers (§3.2 drawback 2).
	if st.SyncOps != st.MetaOps {
		t.Fatalf("sync ops = %d, want %d", st.SyncOps, st.MetaOps)
	}
}

func TestJournalInjection(t *testing.T) {
	p := Profile{Name: "T", BlockSize: 4096, MaxRequest: 128 << 10,
		JournalBytes: 4 << 20, JournalWriteSize: 16 << 10}
	f := MustNew(p, testCapacity, 1)
	out := f.Transform([]trace.PosixOp{posixRead(0, 16<<20)})
	writes := 0
	for _, op := range out {
		if op.Kind == trace.Write {
			writes++
			if !op.Meta {
				t.Fatal("journal write not flagged as metadata")
			}
			if op.Sync {
				t.Fatal("journal commits are asynchronous in this model")
			}
			if op.Size != 16<<10 {
				t.Fatalf("journal write size %d", op.Size)
			}
			if op.Offset < testCapacity-testCapacity/64 {
				t.Fatalf("journal write at %d outside the journal region", op.Offset)
			}
		}
	}
	if writes != 4 {
		t.Fatalf("journal writes = %d, want 4", writes)
	}
}

func TestScatterRelocates(t *testing.T) {
	seq := Profile{Name: "T", BlockSize: 4096, MaxRequest: 128 << 10}
	sct := seq
	sct.ScatterProb = 1
	fseq := MustNew(seq, testCapacity, 1)
	fsct := MustNew(sct, testCapacity, 1)
	in := []trace.PosixOp{posixRead(0, 8<<20)}
	seqPct := trace.Characterize(fseq.Transform(in)).SequentialPct
	sctPct := trace.Characterize(fsct.Transform(in)).SequentialPct
	if seqPct < 0.95 {
		t.Fatalf("unscattered stream only %.2f sequential", seqPct)
	}
	if sctPct > 0.1 {
		t.Fatalf("fully scattered stream still %.2f sequential", sctPct)
	}
}

func TestTransformDeterministic(t *testing.T) {
	in := []trace.PosixOp{posixRead(0, 32<<20)}
	a := MustNew(Ext3(), testCapacity, 7).Transform(in)
	b := MustNew(Ext3(), testCapacity, 7).Transform(in)
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("op %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestProfileOrderingLevers(t *testing.T) {
	// The knobs that make ext4-L faster than ext4 must actually be larger.
	e4, e4l := Ext4(), Ext4Large()
	if e4l.MaxRequest <= e4.MaxRequest {
		t.Error("ext4-L must raise the coalescing cap")
	}
	if e4l.ReadAheadBytes <= e4.ReadAheadBytes {
		t.Error("ext4-L must raise the readahead window")
	}
	// ext2 is the floor: smallest pipeline among the locals.
	for _, p := range LocalProfiles() {
		if p.Name == "EXT2" {
			continue
		}
		if p.ReadAheadBytes < Ext2().ReadAheadBytes {
			t.Errorf("%s readahead below ext2's", p.Name)
		}
	}
}

func TestReadAheadDefaults(t *testing.T) {
	p := Profile{Name: "T", BlockSize: 4096, MaxRequest: 64 << 10}
	f := MustNew(p, testCapacity, 1)
	if f.ReadAhead() != DefaultReadAhead {
		t.Fatalf("default readahead = %d", f.ReadAhead())
	}
	p.ReadAheadBytes = 1 << 20
	f = MustNew(p, testCapacity, 1)
	if f.ReadAhead() != 1<<20 {
		t.Fatalf("explicit readahead = %d", f.ReadAhead())
	}
}

// Property: every emitted operation stays inside the device address space
// and carries positive size.
func TestTransformInBoundsProperty(t *testing.T) {
	f := MustNew(Ext2(), testCapacity, 3)
	fn := func(off uint32, sz uint16) bool {
		size := int64(sz) + 1
		offset := int64(off) % (testCapacity / 2)
		out := f.Transform([]trace.PosixOp{posixRead(offset, size)})
		for _, op := range out {
			if op.Size <= 0 || op.Offset < 0 || op.Offset+op.Size > testCapacity {
				return false
			}
		}
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: data volume (metadata excluded) is preserved for block-aligned
// inputs across all local profiles.
func TestTransformVolumeProperty(t *testing.T) {
	fn := func(blocks uint8, which uint8) bool {
		profiles := LocalProfiles()
		p := profiles[int(which)%len(profiles)]
		f := MustNew(p, testCapacity, 5)
		size := (int64(blocks) + 1) * p.BlockSize
		out := f.Transform([]trace.PosixOp{posixRead(0, size)})
		return trace.DataBytes(out) == size
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

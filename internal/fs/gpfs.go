package fs

import (
	"fmt"

	"oocnvm/internal/obs"
	"oocnvm/internal/sim"
	"oocnvm/internal/trace"
)

// GPFSConfig describes the parallel file system's striping behaviour as seen
// by one of the SSDs behind it.
type GPFSConfig struct {
	// StripeUnit is the full GPFS block (stripe unit) size.
	StripeUnit int64
	// FragmentSize is the granularity at which a stripe unit actually reaches
	// one NSD device once client-side sub-blocking and interleaving with
	// other clients' traffic are accounted for. Figure 6's sub-GPFS trace
	// shows the compute node's sequential stream arriving at the ION as
	// scattered fragments of roughly this size.
	FragmentSize int64
	// Servers is the number of NSD servers (ION SSDs) stripes rotate over.
	Servers int
	// TokenBytes injects one synchronous token/metadata round per this many
	// bytes (GPFS distributed lock manager traffic).
	TokenBytes int64
	// ReadAheadBytes is the NSD server's aggregate in-flight window: many
	// clients' streams interleave at the ION, so it is much deeper than a
	// single client's readahead.
	ReadAheadBytes int64
}

// DefaultGPFS returns the Carver-like configuration: 1 MiB stripe units over
// 20 SSDs, fragments of 32 KiB at the device.
func DefaultGPFS() GPFSConfig {
	return GPFSConfig{
		StripeUnit: 1 * MiB, FragmentSize: 32 * KiB, Servers: 20,
		TokenBytes: 4 * MiB, ReadAheadBytes: 16 * MiB,
	}
}

type gpfs struct {
	cfg      GPFSConfig
	capacity int64
	rng      *sim.RNG

	probe obs.Probe
	seq   int64 // synthetic translate-span timeline position
}

// SetProbe attaches an observability probe; see profileFS.SetProbe for the
// synthetic-timeline semantics of translate spans.
func (g *gpfs) SetProbe(p obs.Probe) { g.probe = obs.OrNop(p) }

// NewGPFS builds the GPFS model for one backing SSD with the given device
// capacity.
func NewGPFS(cfg GPFSConfig, capacity int64, seed uint64) (FileSystem, error) {
	if cfg.StripeUnit <= 0 || cfg.FragmentSize <= 0 || cfg.Servers <= 0 {
		return nil, fmt.Errorf("fs: gpfs config fields must be positive: %+v", cfg)
	}
	if cfg.FragmentSize > cfg.StripeUnit {
		return nil, fmt.Errorf("fs: gpfs fragment %d larger than stripe unit %d", cfg.FragmentSize, cfg.StripeUnit)
	}
	if capacity <= 0 {
		return nil, fmt.Errorf("fs: gpfs capacity must be positive")
	}
	return &gpfs{cfg: cfg, capacity: capacity, rng: sim.NewRNG(seed), probe: obs.Nop{}}, nil
}

// stripeHash maps a stripe index to a stable pseudo-random value (SplitMix64
// finalizer), standing in for GPFS's block allocation map.
func stripeHash(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func (g *gpfs) Name() string { return "GPFS" }

// ReadAhead reports the server-side in-flight window.
func (g *gpfs) ReadAhead() int64 {
	if g.cfg.ReadAheadBytes > 0 {
		return g.cfg.ReadAheadBytes
	}
	return DefaultReadAhead
}

// Transform stripes the POSIX stream and emits this SSD's share of the
// fragments. Each stripe unit is relocated to an independent position (GPFS
// places blocks round-robin over NSDs with its own allocation map, so
// consecutive application stripes are not physically adjacent on any single
// device), and the stripe is delivered as FragmentSize pieces interleaved
// with other clients' traffic — i.e., with their device-local adjacency
// broken. This is the "randomizing trend" of §4.2.
func (g *gpfs) Transform(ops []trace.PosixOp) []trace.BlockOp {
	var out []trace.BlockOp
	var sinceToken int64
	frags := g.capacity / g.cfg.FragmentSize
	for _, op := range ops {
		outBefore := len(out)
		start := op.Offset - op.Offset%g.cfg.FragmentSize
		end := op.Offset + op.Size
		for cur := start; cur < end; cur += g.cfg.FragmentSize {
			stripe := cur / g.cfg.StripeUnit
			if int(stripe%int64(g.cfg.Servers)) != 0 {
				// This fragment's stripe lives on another server; on this
				// device we instead observe a statistically identical
				// fragment from some other client's interleaved stream.
				out = append(out, trace.BlockOp{
					Kind:   op.Kind,
					Offset: g.rng.Int63n(frags) * g.cfg.FragmentSize,
					Size:   g.cfg.FragmentSize,
				})
			} else {
				// Our stripe: fragments of one stripe unit are contiguous on
				// the device, but the stripe itself sits at an allocator-
				// chosen position (GPFS's block allocation map), so the
				// application's long sequential runs arrive as scattered
				// 1 MiB islands of 32 KiB fragments — the Figure 6 pattern.
				units := g.capacity / g.cfg.StripeUnit
				base := int64(stripeHash(uint64(stripe))%uint64(units)) * g.cfg.StripeUnit
				out = append(out, trace.BlockOp{
					Kind:   op.Kind,
					Offset: (base + cur%g.cfg.StripeUnit) % g.capacity,
					Size:   g.cfg.FragmentSize,
				})
			}
			sinceToken += g.cfg.FragmentSize
			if g.cfg.TokenBytes > 0 && sinceToken >= g.cfg.TokenBytes {
				sinceToken -= g.cfg.TokenBytes
				out = append(out, trace.BlockOp{
					Kind: trace.Read, Offset: g.rng.Int63n(frags) * g.cfg.FragmentSize,
					Size: 4096, Sync: true, Meta: true,
				})
				g.probe.Count("fs.token_ops", 1)
			}
		}
		g.probe.Count("fs.posix_ops", 1)
		g.probe.Count("fs.block_ops", int64(len(out)-outBefore))
		if g.probe.Enabled() {
			t := sim.Time(g.seq) * sim.Microsecond
			g.probe.Span(obs.LayerFS, "GPFS", "stripe", t, t+sim.Microsecond,
				obs.Attr{Key: "in_bytes", Value: op.Size},
				obs.Attr{Key: "out_ops", Value: int64(len(out) - outBefore)})
		}
		g.seq++
	}
	return out
}

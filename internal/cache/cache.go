// Package cache implements the architecture the paper argues against: the
// compute-local NVM used as an "algorithmically-managed cache" in front of
// remote storage (FlashTier/Mercury-style host-side flash caches, §1 and
// related work). The paper's objection is quantitative: "for use of NVM as a
// general-purpose caching layer to work properly, the fundamental
// expectation that data is accessed more than once in a constrained window
// of time must hold true, which is often not the case with many long-running
// scientific workloads" — and such caches "may take many hours or even days
// to heat up." This package makes both effects measurable.
package cache

import (
	"container/list"
	"fmt"

	"oocnvm/internal/obs/timeseries"
	"oocnvm/internal/sim"
	"oocnvm/internal/trace"
)

// BlockCache is a host-side flash cache: an LRU set of fixed-size cache
// blocks on the local NVM, fronting remote storage. Reads are cached on
// miss (allocate-on-read); the eviction policy is strict LRU.
type BlockCache struct {
	blockSize int64
	capacity  int64 // bytes of cache space
	entries   map[int64]*list.Element
	lru       *list.List

	hits, misses int64
	insertions   int64
}

// NewBlockCache builds a cache of the given capacity and block size.
func NewBlockCache(capacity, blockSize int64) (*BlockCache, error) {
	if capacity <= 0 || blockSize <= 0 {
		return nil, fmt.Errorf("cache: capacity and block size must be positive")
	}
	if capacity < blockSize {
		return nil, fmt.Errorf("cache: capacity %d below one block %d", capacity, blockSize)
	}
	return &BlockCache{
		blockSize: blockSize,
		capacity:  capacity,
		entries:   make(map[int64]*list.Element),
		lru:       list.New(),
	}, nil
}

// Access runs one read through the cache and reports how many of its blocks
// hit. Missed blocks are inserted (evicting LRU blocks as needed).
func (c *BlockCache) Access(offset, size int64) (hitBlocks, missBlocks int64) {
	first := offset / c.blockSize
	last := (offset + size - 1) / c.blockSize
	if size <= 0 {
		return 0, 0
	}
	for b := first; b <= last; b++ {
		if el, ok := c.entries[b]; ok {
			c.lru.MoveToFront(el)
			c.hits++
			hitBlocks++
			continue
		}
		c.misses++
		missBlocks++
		c.insert(b)
	}
	return hitBlocks, missBlocks
}

func (c *BlockCache) insert(b int64) {
	for int64(c.lru.Len()+1)*c.blockSize > c.capacity {
		tail := c.lru.Back()
		if tail == nil {
			return // cache smaller than one block is rejected at New
		}
		delete(c.entries, tail.Value.(int64))
		c.lru.Remove(tail)
	}
	c.entries[b] = c.lru.PushFront(b)
	c.insertions++
}

// HitRate reports the lifetime block hit rate.
func (c *BlockCache) HitRate() float64 {
	total := c.hits + c.misses
	if total == 0 {
		return 0
	}
	return float64(c.hits) / float64(total)
}

// Resident reports cached bytes.
func (c *BlockCache) Resident() int64 { return int64(c.lru.Len()) * c.blockSize }

// Stats reports raw counters.
func (c *BlockCache) Stats() (hits, misses, insertions int64) {
	return c.hits, c.misses, c.insertions
}

// Study drives a block trace through a cache and converts the hit rate into
// effective bandwidth given the fast (local NVM) and slow (remote) paths.
type Study struct {
	HitRate     float64
	EffectiveBW float64
	// HeatUp is the simulated time spent before the cache could possibly
	// serve steady-state hits: the time to pull one full working set through
	// the slow path.
	HeatUp sim.Time
}

// RunStudy evaluates a cache architecture on a trace. workingSet is the
// distinct byte footprint the workload cycles through; fastBW and slowBW are
// the local-NVM and remote-path bandwidths.
func RunStudy(ops []trace.BlockOp, capacity, blockSize, workingSet int64, fastBW, slowBW float64) (Study, error) {
	return RunStudySampled(ops, capacity, blockSize, workingSet, fastBW, slowBW, nil)
}

// RegisterSeries registers the cache's time-resolved hit rate: per-interval
// hits over per-interval accesses, the heat-up curve the paper's caching
// critique is about.
func (c *BlockCache) RegisterSeries(ts *timeseries.Sampler) {
	ts.AddRatio("cache.hit_rate",
		func(sim.Time) float64 { return float64(c.hits) },
		func(sim.Time) float64 { return float64(c.hits + c.misses) })
}

// RunStudySampled is RunStudy with optional time-resolved telemetry: each
// byte advances a synthetic clock at the speed of the path it took (the same
// harmonic model the end-of-run bandwidth uses), and the sampler records the
// per-interval hit rate against that clock — so the report shows the cache
// heating up over simulated time rather than one lifetime average. A nil
// sampler is the plain study.
func RunStudySampled(ops []trace.BlockOp, capacity, blockSize, workingSet int64, fastBW, slowBW float64, ts *timeseries.Sampler) (Study, error) {
	if fastBW <= 0 || slowBW <= 0 {
		return Study{}, fmt.Errorf("cache: bandwidths must be positive")
	}
	c, err := NewBlockCache(capacity, blockSize)
	if err != nil {
		return Study{}, err
	}
	if ts != nil {
		timeseries.Instrument(c, ts)
	}
	var hitBytes, missBytes int64
	var clock sim.Time
	for _, op := range ops {
		if op.Kind != trace.Read {
			continue
		}
		h, m := c.Access(op.Offset, op.Size)
		hitBytes += h * blockSize
		missBytes += m * blockSize
		if ts != nil {
			clock += sim.DurationForBytes(h*blockSize, fastBW)
			clock += sim.DurationForBytes(m*blockSize, slowBW)
			ts.Advance(clock)
		}
	}
	s := Study{HitRate: c.HitRate()}
	total := hitBytes + missBytes
	if total > 0 {
		// Harmonic blend: each byte moves at the speed of the path it took.
		t := float64(hitBytes)/fastBW + float64(missBytes)/slowBW
		s.EffectiveBW = float64(total) / t
	}
	s.HeatUp = sim.DurationForBytes(workingSet, slowBW)
	return s, nil
}

package cache

import (
	"testing"

	"oocnvm/internal/ooc"
	"oocnvm/internal/sim"
	"oocnvm/internal/trace"
)

func TestNewValidation(t *testing.T) {
	if _, err := NewBlockCache(0, 4096); err == nil {
		t.Fatal("zero capacity accepted")
	}
	if _, err := NewBlockCache(4096, 0); err == nil {
		t.Fatal("zero block accepted")
	}
	if _, err := NewBlockCache(1024, 4096); err == nil {
		t.Fatal("capacity below one block accepted")
	}
}

func TestAccessHitMiss(t *testing.T) {
	c, _ := NewBlockCache(16*4096, 4096)
	h, m := c.Access(0, 8192) // two cold blocks
	if h != 0 || m != 2 {
		t.Fatalf("cold access: hits=%d misses=%d", h, m)
	}
	h, m = c.Access(0, 8192) // both cached now
	if h != 2 || m != 0 {
		t.Fatalf("warm access: hits=%d misses=%d", h, m)
	}
	if c.HitRate() != 0.5 {
		t.Fatalf("hit rate = %v", c.HitRate())
	}
	if c.Resident() != 2*4096 {
		t.Fatalf("resident = %d", c.Resident())
	}
}

func TestLRUEviction(t *testing.T) {
	c, _ := NewBlockCache(2*4096, 4096) // two blocks
	c.Access(0, 4096)                   // block 0
	c.Access(4096, 4096)                // block 1
	c.Access(0, 4096)                   // touch 0: 1 becomes LRU
	c.Access(8192, 4096)                // block 2 evicts 1
	if h, _ := c.Access(0, 4096); h != 1 {
		t.Fatal("recently used block evicted")
	}
	if h, _ := c.Access(4096, 4096); h != 0 {
		t.Fatal("LRU block survived eviction")
	}
}

// TestOoCScanDefeatsCache is the paper's §1 argument: a scan-everything
// workload whose working set exceeds the cache never re-hits within the
// eviction window — "the act of caching and evicting the data itself" buys
// nothing.
func TestOoCScanDefeatsCache(t *testing.T) {
	wl := ooc.Workload{MatrixBytes: 64 << 20, PanelBytes: 4 << 20, Applications: 4}
	posix, err := wl.PosixTrace()
	if err != nil {
		t.Fatal(err)
	}
	var ops []trace.BlockOp
	for _, p := range posix {
		ops = append(ops, trace.BlockOp{Kind: p.Kind, Offset: p.Offset, Size: p.Size})
	}
	// Cache half the working set: with a cyclic scan and LRU, every access
	// misses even though half the data is always resident.
	s, err := RunStudy(ops, 32<<20, 64<<10, wl.MatrixBytes, 3.0e9, 1.0e9)
	if err != nil {
		t.Fatal(err)
	}
	if s.HitRate > 0.01 {
		t.Fatalf("cyclic OoC scan hit rate %.3f; LRU should thrash to zero", s.HitRate)
	}
	// Effective bandwidth degenerates to the slow path.
	if s.EffectiveBW > 1.05e9 {
		t.Fatalf("effective BW %.2e; a missing cache cannot beat the slow path", s.EffectiveBW)
	}
}

// TestHotSetRewardsCache: the contrast case — a workload with real reuse in
// a constrained window caches beautifully. The cache is not broken; the OoC
// access pattern is what defeats it.
func TestHotSetRewardsCache(t *testing.T) {
	var ops []trace.BlockOp
	for pass := 0; pass < 20; pass++ {
		for off := int64(0); off < 8<<20; off += 1 << 20 {
			ops = append(ops, trace.BlockOp{Kind: trace.Read, Offset: off, Size: 1 << 20})
		}
	}
	s, err := RunStudy(ops, 16<<20, 64<<10, 8<<20, 3.0e9, 1.0e9)
	if err != nil {
		t.Fatal(err)
	}
	if s.HitRate < 0.9 {
		t.Fatalf("hot-set hit rate %.3f; reuse within the window should cache", s.HitRate)
	}
	if s.EffectiveBW < 2.0e9 {
		t.Fatalf("effective BW %.2e; hits should pull it toward the fast path", s.EffectiveBW)
	}
}

// TestCacheLargerThanWorkingSetEventuallyWins: if the cache holds everything,
// only the first sweep misses — but the heat-up cost is the full dataset
// through the slow path, the "hours or even days" the paper cites.
func TestCacheLargerThanWorkingSetEventuallyWins(t *testing.T) {
	wl := ooc.Workload{MatrixBytes: 32 << 20, PanelBytes: 4 << 20, Applications: 8}
	posix, _ := wl.PosixTrace()
	var ops []trace.BlockOp
	for _, p := range posix {
		ops = append(ops, trace.BlockOp{Kind: p.Kind, Offset: p.Offset, Size: p.Size})
	}
	s, err := RunStudy(ops, 64<<20, 64<<10, wl.MatrixBytes, 3.0e9, 1.0e9)
	if err != nil {
		t.Fatal(err)
	}
	// 7 of 8 sweeps hit: 87.5%.
	if s.HitRate < 0.85 || s.HitRate > 0.90 {
		t.Fatalf("hit rate %.3f, want ~0.875", s.HitRate)
	}
	if s.HeatUp != sim.DurationForBytes(32<<20, 1.0e9) {
		t.Fatalf("heat-up %v", s.HeatUp)
	}
}

// TestHeatUpScalesWithDataset: at the paper's scales the heat-up is the
// dataset over the network — hours for multi-TB Hamiltonians.
func TestHeatUpScalesWithDataset(t *testing.T) {
	ops := []trace.BlockOp{{Kind: trace.Read, Offset: 0, Size: 1 << 20}}
	s, err := RunStudy(ops, 1<<30, 64<<10, 2<<40, 3.0e9, 1.0e9)
	if err != nil {
		t.Fatal(err)
	}
	if s.HeatUp < 30*60*sim.Second {
		t.Fatalf("heat-up of a 2 TiB working set = %v; should be on the order of hours", s.HeatUp)
	}
}

func TestRunStudyValidation(t *testing.T) {
	if _, err := RunStudy(nil, 1<<20, 4096, 1<<20, 0, 1); err == nil {
		t.Fatal("zero bandwidth accepted")
	}
	if _, err := RunStudy(nil, 0, 4096, 1<<20, 1, 1); err == nil {
		t.Fatal("bad cache accepted")
	}
	// Writes are ignored; empty study is well-formed.
	s, err := RunStudy([]trace.BlockOp{{Kind: trace.Write, Size: 4096}}, 1<<20, 4096, 1<<20, 1e9, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	if s.HitRate != 0 || s.EffectiveBW != 0 {
		t.Fatalf("empty study: %+v", s)
	}
}

package nvm

import (
	"testing"
	"testing/quick"
)

func TestPaperGeometry(t *testing.T) {
	g := PaperGeometry()
	if g.Channels != 8 {
		t.Errorf("channels = %d, want 8 (§4.1)", g.Channels)
	}
	if g.Packages() != 64 {
		t.Errorf("packages = %d, want 64 (§4.1)", g.Packages())
	}
	if g.Dies() != 128 {
		t.Errorf("dies = %d, want 128 (§4.1)", g.Dies())
	}
}

func TestGeometryValidate(t *testing.T) {
	if err := PaperGeometry().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := Geometry{Channels: 0, PackagesPerChannel: 8, DiesPerPackage: 2, BlocksPerPlane: 10}
	if err := bad.Validate(); err == nil {
		t.Fatal("zero channels passed validation")
	}
}

func TestGeometryCapacity(t *testing.T) {
	g := Geometry{Channels: 2, PackagesPerChannel: 2, DiesPerPackage: 1, BlocksPerPlane: 4}
	cell := Params(SLC) // 2 planes, 64 pages/block, 2 KiB pages
	want := int64(4*cell.Planes*4) * cell.BlockSize()
	if got := g.Capacity(cell); got != want {
		t.Fatalf("Capacity = %d, want %d", got, want)
	}
	if got := g.Pages(cell); got != want/cell.PageSize {
		t.Fatalf("Pages = %d, want %d", got, want/cell.PageSize)
	}
}

// TestMapLogicalStripeOrder verifies channel-first, plane-second, die-third
// striping.
func TestMapLogicalStripeOrder(t *testing.T) {
	g := PaperGeometry()
	const planes = 2
	// First C pages walk the channels on plane 0, die 0.
	for lpn := int64(0); lpn < int64(g.Channels); lpn++ {
		loc := g.MapLogical(lpn, planes)
		if loc.Channel != int(lpn) || loc.Plane != 0 || loc.Die != 0 {
			t.Fatalf("lpn %d -> %+v, want channel %d plane 0 die 0", lpn, loc, lpn)
		}
	}
	// The next C pages hit plane 1.
	loc := g.MapLogical(int64(g.Channels), planes)
	if loc.Plane != 1 || loc.Die != 0 {
		t.Fatalf("lpn C -> %+v, want plane 1 die 0", loc)
	}
	// After C*P pages the die advances.
	loc = g.MapLogical(int64(g.Channels*planes), planes)
	if loc.Die != 1 || loc.Plane != 0 {
		t.Fatalf("lpn C*P -> %+v, want die 1 plane 0", loc)
	}
}

// Property: mapping always lands inside the geometry.
func TestMapLogicalInRangeProperty(t *testing.T) {
	g := PaperGeometry()
	f := func(lpn uint32, planes8 uint8) bool {
		planes := int(planes8%3) + 1
		loc := g.MapLogical(int64(lpn), planes)
		return loc.Channel >= 0 && loc.Channel < g.Channels &&
			loc.Die >= 0 && loc.Die < g.DiesPerChannel() &&
			loc.Plane >= 0 && loc.Plane < planes
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: consecutive pages within one die row spread uniformly — exactly
// C*P distinct (channel, plane) pairs before any repeats.
func TestMapLogicalSpreadProperty(t *testing.T) {
	g := PaperGeometry()
	const planes = 2
	row := g.Channels * planes
	seen := make(map[[2]int]bool)
	for lpn := 0; lpn < row; lpn++ {
		loc := g.MapLogical(int64(lpn), planes)
		key := [2]int{loc.Channel, loc.Plane}
		if seen[key] {
			t.Fatalf("duplicate (channel,plane) %v before row exhausted", key)
		}
		seen[key] = true
	}
	if len(seen) != row {
		t.Fatalf("covered %d slots, want %d", len(seen), row)
	}
}

func TestPackageAssignment(t *testing.T) {
	g := PaperGeometry()
	// Dies distribute round-robin over packages.
	for die := 0; die < g.DiesPerChannel(); die++ {
		pkg := g.Package(die)
		if pkg < 0 || pkg >= g.PackagesPerChannel {
			t.Fatalf("die %d -> package %d out of range", die, pkg)
		}
	}
	// Consecutive dies land in distinct packages.
	if g.Package(0) == g.Package(1) {
		t.Fatal("consecutive dies share a package; interleaved wiring expected")
	}
}

package nvm

import (
	"testing"

	"oocnvm/internal/sim"
)

// TestTable1Latencies pins the model to the paper's Table 1.
func TestTable1Latencies(t *testing.T) {
	cases := []struct {
		cell     CellType
		pageSize int64
		read     sim.Time
		progMin  sim.Time
		progMax  sim.Time
		erase    sim.Time
	}{
		{SLC, 2048, 25 * sim.Microsecond, 250 * sim.Microsecond, 250 * sim.Microsecond, 1500 * sim.Microsecond},
		{MLC, 4096, 50 * sim.Microsecond, 250 * sim.Microsecond, 2200 * sim.Microsecond, 2500 * sim.Microsecond},
		{TLC, 8192, 150 * sim.Microsecond, 440 * sim.Microsecond, 6000 * sim.Microsecond, 3000 * sim.Microsecond},
	}
	for _, c := range cases {
		p := Params(c.cell)
		if p.PageSize != c.pageSize {
			t.Errorf("%v page size = %d, want %d", c.cell, p.PageSize, c.pageSize)
		}
		if p.ReadLatency != c.read {
			t.Errorf("%v read = %v, want %v", c.cell, p.ReadLatency, c.read)
		}
		if p.ProgramLatencyMin != c.progMin || p.ProgramLatencyMax != c.progMax {
			t.Errorf("%v program = [%v,%v], want [%v,%v]", c.cell,
				p.ProgramLatencyMin, p.ProgramLatencyMax, c.progMin, c.progMax)
		}
		if p.EraseLatency != c.erase {
			t.Errorf("%v erase = %v, want %v", c.cell, p.EraseLatency, c.erase)
		}
	}
}

// TestPCMEmulation checks the flash-compatible PCM wrapper: reads far faster
// than any NAND, writes slower than SLC program per byte, tiny pages.
func TestPCMEmulation(t *testing.T) {
	pcm := Params(PCM)
	slc := Params(SLC)
	if pcm.ReadLatency >= slc.ReadLatency/10 {
		t.Errorf("PCM read %v not drastically faster than SLC %v", pcm.ReadLatency, slc.ReadLatency)
	}
	if pcm.PageSize >= slc.PageSize {
		t.Errorf("PCM interface page %d should be smaller than SLC's %d", pcm.PageSize, slc.PageSize)
	}
	if pcm.Endurance <= 1000*slc.Endurance/2 {
		t.Errorf("PCM endurance %d should be orders of magnitude above NAND", pcm.Endurance)
	}
}

func TestBitsPerCellOrdering(t *testing.T) {
	if Params(SLC).BitsPerCell != 1 || Params(MLC).BitsPerCell != 2 || Params(TLC).BitsPerCell != 3 {
		t.Fatal("bits per cell wrong")
	}
}

// TestDensityLatencyTradeoff: the paper's §2.3 — denser NAND is slower and
// wears faster.
func TestDensityLatencyTradeoff(t *testing.T) {
	slc, mlc, tlc := Params(SLC), Params(MLC), Params(TLC)
	if !(slc.ReadLatency < mlc.ReadLatency && mlc.ReadLatency < tlc.ReadLatency) {
		t.Error("read latency must increase with density")
	}
	if !(slc.ProgramLatencyMax <= mlc.ProgramLatencyMax && mlc.ProgramLatencyMax < tlc.ProgramLatencyMax) {
		t.Error("program latency must increase with density")
	}
	if !(slc.Endurance > mlc.Endurance && mlc.Endurance > tlc.Endurance) {
		t.Error("endurance must decrease with density")
	}
}

func TestProgramLatencyVariation(t *testing.T) {
	rng := sim.NewRNG(1)
	p := Params(MLC)
	seen := make(map[sim.Time]bool)
	for i := 0; i < 200; i++ {
		lat := p.ProgramLatency(rng)
		if lat < p.ProgramLatencyMin || lat > p.ProgramLatencyMax {
			t.Fatalf("program latency %v outside [%v,%v]", lat, p.ProgramLatencyMin, p.ProgramLatencyMax)
		}
		seen[lat] = true
	}
	if len(seen) < 50 {
		t.Fatalf("MLC program latency shows no variation: %d distinct values", len(seen))
	}
}

func TestProgramLatencyFixedForSLC(t *testing.T) {
	rng := sim.NewRNG(1)
	p := Params(SLC)
	for i := 0; i < 10; i++ {
		if got := p.ProgramLatency(rng); got != 250*sim.Microsecond {
			t.Fatalf("SLC program latency = %v, want fixed 250us", got)
		}
	}
}

func TestBlockSize(t *testing.T) {
	p := Params(SLC)
	if got := p.BlockSize(); got != p.PageSize*int64(p.PagesPerBlock) {
		t.Fatalf("BlockSize = %d", got)
	}
	// Eraseblocks of the era were 64 KiB - 256 KiB (paper §2.3); ours should
	// sit in a plausible range.
	for _, c := range CellTypes {
		bs := Params(c).BlockSize()
		if bs < 64<<10 || bs > 2<<20 {
			t.Errorf("%v block size %d outside plausible range", c, bs)
		}
	}
}

func TestCellTypeStrings(t *testing.T) {
	if SLC.String() != "SLC" || MLC.String() != "MLC" || TLC.String() != "TLC" || PCM.String() != "PCM" {
		t.Fatal("cell type names wrong")
	}
	if CellType(42).String() != "CellType(42)" {
		t.Fatal("unknown cell type should render its number")
	}
}

func TestParamsPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Params(99) did not panic")
		}
	}()
	Params(CellType(99))
}

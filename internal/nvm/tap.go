package nvm

// MappingTap observes a translation layer's placement decisions. The
// conformance subsystem (internal/check) attaches one to the FTL or the
// Direct translator to maintain a shadow copy of the logical-to-physical
// mapping: every placement — host write, GC relocation, retirement
// relocation, bad-block remap — reports through MapWrite, every translation
// served to the host reports through MapRead, and every unmapping reports
// through MapTrim. The simulator moves no real data, so this logical view is
// what end-to-end data-integrity checking is built on.
//
// Taps must be cheap and must not mutate translator state; a nil tap is the
// (free) default everywhere.
type MappingTap interface {
	// MapWrite reports that lpn's current content now lives at ppn.
	MapWrite(lpn, ppn int64)
	// MapRead reports that a host read of lpn was served from ppn.
	MapRead(lpn, ppn int64)
	// MapTrim reports that lpn was unmapped (TRIM/erase); its content is gone.
	MapTrim(lpn int64)
}

// InstrumentMapping attaches a tap to any component exposing
// SetMappingTap(MappingTap), reporting whether it did. Mirrors
// obs.Instrument: translators advertise the hook without this package
// importing them.
func InstrumentMapping(x any, t MappingTap) bool {
	if x == nil || t == nil {
		return false
	}
	s, ok := x.(interface{ SetMappingTap(MappingTap) })
	if !ok {
		return false
	}
	s.SetMappingTap(t)
	return true
}

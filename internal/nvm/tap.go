package nvm

// MappingTap observes a translation layer's placement decisions. The
// conformance subsystem (internal/check) attaches one to the FTL or the
// Direct translator to maintain a shadow copy of the logical-to-physical
// mapping: every placement — host write, GC relocation, retirement
// relocation, bad-block remap — reports through MapWrite, every translation
// served to the host reports through MapRead, and every unmapping reports
// through MapTrim. The simulator moves no real data, so this logical view is
// what end-to-end data-integrity checking is built on.
//
// Taps must be cheap and must not mutate translator state; a nil tap is the
// (free) default everywhere.
type MappingTap interface {
	// MapWrite reports that lpn's current content now lives at ppn.
	MapWrite(lpn, ppn int64)
	// MapRead reports that a host read of lpn was served from ppn.
	MapRead(lpn, ppn int64)
	// MapTrim reports that lpn was unmapped (TRIM/erase); its content is gone.
	MapTrim(lpn int64)
}

// MediaTap observes physical media state at NAND program/erase
// granularity: every program commits the page's payload and OOB (LPN,
// version) tags, every erase clears an eraseblock. The durable-metadata
// FTL attaches its media model here so that a power cut — which stops the
// device mid-request — leaves exactly the committed pages behind, with
// the in-flight op torn (payload garbage, OOB tags never landed). A nil
// tap is the (free) volatile default.
type MediaTap interface {
	// MediaProgram reports that op's page programmed; torn marks the
	// power-cut op whose payload and OOB tags must not be trusted.
	MediaProgram(op PageOp, torn bool)
	// MediaErase reports that op's eraseblock erased; torn marks a
	// power-cut erase (the block's prior contents are already gone —
	// erase pulses destroy data before completing).
	MediaErase(op PageOp, torn bool)
}

// InstrumentMapping attaches a tap to any component exposing
// SetMappingTap(MappingTap), reporting whether it did. Mirrors
// obs.Instrument: translators advertise the hook without this package
// importing them.
func InstrumentMapping(x any, t MappingTap) bool {
	if x == nil || t == nil {
		return false
	}
	s, ok := x.(interface{ SetMappingTap(MappingTap) })
	if !ok {
		return false
	}
	s.SetMappingTap(t)
	return true
}

package nvm

import (
	"math"
	"testing"
)

func TestBreakdownAddTotal(t *testing.T) {
	var b Breakdown
	b.Add(Breakdown{NonOverlappedDMA: 1, FlashBus: 2, ChannelBus: 3, CellContention: 4, ChannelContention: 5, CellActivation: 6})
	b.Add(Breakdown{CellActivation: 4})
	if got := b.Total(); got != 25 {
		t.Fatalf("Total = %v, want 25", got)
	}
}

func TestBreakdownPercentagesSumToOne(t *testing.T) {
	b := Breakdown{NonOverlappedDMA: 10, FlashBus: 20, ChannelBus: 30, CellContention: 5, ChannelContention: 15, CellActivation: 20}
	p := b.Percentages()
	var sum float64
	for _, v := range p {
		sum += v
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("percentages sum to %v", sum)
	}
	if p[0] != 0.1 || p[5] != 0.2 {
		t.Fatalf("percentages wrong: %v", p)
	}
}

func TestBreakdownPercentagesZero(t *testing.T) {
	var b Breakdown
	if p := b.Percentages(); p != [6]float64{} {
		t.Fatalf("zero breakdown must yield zeros, got %v", p)
	}
}

func TestBreakdownLabelsCount(t *testing.T) {
	if len(BreakdownLabels) != 6 {
		t.Fatalf("six states expected, got %d labels", len(BreakdownLabels))
	}
}

func TestPALString(t *testing.T) {
	if PAL1.String() != "PAL1" || PAL4.String() != "PAL4" {
		t.Fatal("PAL names wrong")
	}
	if PAL(0).String() != "PAL?" || PAL(9).String() != "PAL?" {
		t.Fatal("out-of-range PAL must render PAL?")
	}
}

func TestPALHistogram(t *testing.T) {
	var h PALHistogram
	h.Record(PAL1)
	h.Record(PAL4)
	h.Record(PAL4)
	h.Record(PAL(0)) // ignored
	if h.Total() != 3 {
		t.Fatalf("Total = %d, want 3", h.Total())
	}
	f := h.Fractions()
	if f[0] != 1.0/3 || f[3] != 2.0/3 {
		t.Fatalf("Fractions = %v", f)
	}
}

func TestPALHistogramEmpty(t *testing.T) {
	var h PALHistogram
	if f := h.Fractions(); f != [4]float64{} {
		t.Fatalf("empty histogram fractions = %v", f)
	}
}

package nvm

import "oocnvm/internal/sim"

// latencyHistogram tracks per-request completion latency in logarithmic
// buckets (powers of two of microseconds), enough resolution for the
// p50/p95/p99 reporting real device evaluations use.
type latencyHistogram struct {
	buckets [48]int64 // bucket i: latency in [2^i, 2^(i+1)) microseconds... sub-us in bucket 0
	count   int64
	max     sim.Time
}

func (h *latencyHistogram) record(lat sim.Time) {
	if lat < 0 {
		lat = 0
	}
	us := int64(lat / sim.Microsecond)
	b := 0
	for us > 0 && b < len(h.buckets)-1 {
		us >>= 1
		b++
	}
	h.buckets[b]++
	h.count++
	if lat > h.max {
		h.max = lat
	}
}

// LatencyStats summarizes the request-latency distribution.
type LatencyStats struct {
	Count int64
	P50   sim.Time
	P95   sim.Time
	P99   sim.Time
	Max   sim.Time
}

// Latency reports the request-latency distribution observed so far.
// Percentiles are upper bucket bounds (conservative).
func (d *Device) Latency() LatencyStats {
	h := &d.latency
	st := LatencyStats{Count: h.count, Max: h.max}
	if h.count == 0 {
		return st
	}
	pct := func(p float64) sim.Time {
		target := int64(p * float64(h.count))
		if target < 1 {
			target = 1
		}
		var seen int64
		for b, n := range h.buckets {
			seen += n
			if seen >= target {
				// Upper bound of bucket b: 2^b microseconds.
				return sim.Time(int64(1)<<uint(b)) * sim.Microsecond
			}
		}
		return h.max
	}
	clamp := func(v sim.Time) sim.Time {
		if st.Max > 0 && v > st.Max {
			return st.Max
		}
		return v
	}
	st.P50 = clamp(pct(0.50))
	st.P95 = clamp(pct(0.95))
	st.P99 = clamp(pct(0.99))
	return st
}

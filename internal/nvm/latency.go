package nvm

import "oocnvm/internal/sim"

// LatencyStats summarizes the request-latency distribution.
type LatencyStats struct {
	Count int64
	P50   sim.Time
	P95   sim.Time
	P99   sim.Time
	Max   sim.Time
}

// Latency reports the request-latency distribution observed so far, read
// from the device's "nvm.device.latency" histogram in the metrics registry.
// Percentiles are conservative bucket upper bounds clamped to the observed
// maximum.
func (d *Device) Latency() LatencyStats {
	s := d.hLatency.Snapshot()
	return LatencyStats{
		Count: s.Count,
		P50:   sim.Time(s.P50Ps),
		P95:   sim.Time(s.P95Ps),
		P99:   sim.Time(s.P99Ps),
		Max:   sim.Time(s.MaxPs),
	}
}

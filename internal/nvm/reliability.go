package nvm

import "oocnvm/internal/fault"

// This file binds the dependency-light fault package to the nvm types:
// per-medium ECC budgets and the Config derivation from a geometry/cell
// pair. The controller-side orchestration (retry charging, bad-block
// retirement, read-only degradation) lives in the ssd package.

// ECCFor returns the controller's error-correction budget for a medium.
// Budgets scale with density the way shipping controllers do: SLC gets a
// light BCH-class code, MLC/TLC get LDPC-class budgets plus deeper
// read-retry ladders, and PCM — which needs almost no ECC — gets a thin
// code over half-size codewords.
func ECCFor(t CellType) fault.ECC {
	switch t {
	case SLC:
		return fault.ECC{CodewordBytes: 1024, CorrectableBits: 8, RetryBits: 4, MaxRetries: 3}
	case MLC:
		return fault.ECC{CodewordBytes: 1024, CorrectableBits: 40, RetryBits: 8, MaxRetries: 4}
	case TLC:
		return fault.ECC{CodewordBytes: 1024, CorrectableBits: 60, RetryBits: 8, MaxRetries: 5}
	case PCM:
		return fault.ECC{CodewordBytes: 512, CorrectableBits: 2, RetryBits: 1, MaxRetries: 1}
	default:
		return fault.ECC{CodewordBytes: 1024, CorrectableBits: 8, RetryBits: 4, MaxRetries: 3}
	}
}

// FaultConfig derives a fault.Config from the device organization: the
// page-striping numbers the injector needs to map physical page numbers to
// eraseblocks, the medium's ECC budget and rated endurance, and the seed.
// Callers may still adjust SpareBlocks, PrecyclePE and RetentionDays before
// building the injector.
func FaultConfig(geo Geometry, cell CellParams, prof fault.Profile, seed uint64) fault.Config {
	rowSize := int64(geo.Channels * cell.Planes * geo.DiesPerChannel())
	return fault.Config{
		Profile:       prof,
		ECC:           ECCFor(cell.Type),
		PageSize:      cell.PageSize,
		PagesPerBlock: int64(cell.PagesPerBlock),
		RowSize:       rowSize,
		TotalBlocks:   rowSize * int64(geo.BlocksPerPlane),
		Endurance:     cell.Endurance,
		Seed:          seed,
	}
}

// Retirement is a translator's answer to a grown-bad block report. Ops carry
// the relocation traffic (reads of still-valid pages plus their re-programs
// elsewhere); Retired reports whether a block was actually newly retired
// (false when the block was already bad); OK=false means the translator has
// nowhere left to relocate and the device must degrade to read-only.
type Retirement struct {
	Ops     []PageOp
	Retired bool
	OK      bool
}

package nvm

import "oocnvm/internal/sim"

// Stats is a snapshot of everything the paper's probes measure on a device.
type Stats struct {
	BytesRead    int64
	BytesWritten int64
	Reads        int64 // page reads
	Programs     int64 // page programs
	Erases       int64 // block erases
	Span         sim.Time
	Breakdown    Breakdown
	PAL          PALHistogram

	ChannelUtilization float64 // Figure 9a metric
	PackageUtilization float64 // Figure 9b metric
	BusOccupancy       float64 // raw channel-bus busy fraction
}

// Span reports the wall time between the first issued and the last completed
// operation.
func (d *Device) Span() sim.Time {
	if !d.started {
		return 0
	}
	return d.lastEnd - d.firstIssue
}

// Bandwidth reports achieved data bandwidth (read+write bytes over the span)
// in bytes per second.
func (d *Device) Bandwidth() float64 {
	return sim.Rate(d.cBytesRd.Value()+d.cBytesWr.Value(), d.Span())
}

// ChannelUtilization is the paper's Figure 9a metric: the average fraction
// of time each channel is "kept busy" — its bus occupied or any die behind
// it working — computed from the exact union of busy intervals.
func (d *Device) ChannelUtilization() float64 {
	span := d.Span()
	if span <= 0 {
		return 0
	}
	var sum float64
	for c := range d.chCover {
		sum += d.chCover[c].Utilization(span)
	}
	return sum / float64(len(d.chCover))
}

// PackageUtilization is the paper's Figure 9b metric: the average fraction
// of time each NVM package is busy serving requests (any of its dies
// active), computed from the exact union of busy intervals.
func (d *Device) PackageUtilization() float64 {
	span := d.Span()
	if span <= 0 {
		return 0
	}
	var sum float64
	for c := range d.pkgCover {
		for p := range d.pkgCover[c] {
			sum += d.pkgCover[c][p].Utilization(span)
		}
	}
	return sum / float64(d.Geo.Packages())
}

// BusOccupancy reports the mean raw busy fraction of the channel data buses.
func (d *Device) BusOccupancy() float64 {
	span := d.Span()
	if span <= 0 {
		return 0
	}
	var sum float64
	for c := range d.chanBus {
		sum += d.chanBus[c].Utilization(span)
	}
	return sum / float64(len(d.chanBus))
}

// Stats snapshots all measurements, assembling the work counters from the
// device's metrics registry (the registry is the single source of truth
// since the obs layer landed). It also refreshes the registry's derived
// gauges — breakdown components, utilizations, span and bandwidth — so a
// collector absorbing the registry exports the same numbers this snapshot
// reports.
func (d *Device) Stats() Stats {
	st := Stats{
		BytesRead:    d.cBytesRd.Value(),
		BytesWritten: d.cBytesWr.Value(),
		Reads:        d.cReads.Value(),
		Programs:     d.cProgs.Value(),
		Erases:       d.cErases.Value(),
		Span:         d.Span(),
		Breakdown:    d.breakdown,
		PAL:          d.pal,

		ChannelUtilization: d.ChannelUtilization(),
		PackageUtilization: d.PackageUtilization(),
		BusOccupancy:       d.BusOccupancy(),
	}
	d.reg.Gauge("nvm.span_ps").Set(float64(st.Span))
	d.reg.Gauge("nvm.bandwidth_bps").Set(d.Bandwidth())
	d.reg.Gauge("nvm.channel_utilization").Set(st.ChannelUtilization)
	d.reg.Gauge("nvm.package_utilization").Set(st.PackageUtilization)
	d.reg.Gauge("nvm.bus_occupancy").Set(st.BusOccupancy)
	d.reg.Gauge("nvm.breakdown.non_overlapped_dma_ps").Set(float64(st.Breakdown.NonOverlappedDMA))
	d.reg.Gauge("nvm.breakdown.flash_bus_ps").Set(float64(st.Breakdown.FlashBus))
	d.reg.Gauge("nvm.breakdown.channel_bus_ps").Set(float64(st.Breakdown.ChannelBus))
	d.reg.Gauge("nvm.breakdown.cell_contention_ps").Set(float64(st.Breakdown.CellContention))
	d.reg.Gauge("nvm.breakdown.channel_contention_ps").Set(float64(st.Breakdown.ChannelContention))
	d.reg.Gauge("nvm.breakdown.cell_activation_ps").Set(float64(st.Breakdown.CellActivation))
	return st
}

// EraseCount reports how many erases a given die/plane has absorbed, for the
// wear-leveling substrate and its tests.
func (d *Device) EraseCount(loc Location) int64 { return d.eraseCount[loc] }

// DieFreeAt reports when the given die's timeline next becomes idle — the
// physical-availability signal conflict-aware schedulers (PAQ) steer by.
func (d *Device) DieFreeAt(channel, die int) sim.Time {
	if channel < 0 || channel >= len(d.dies) || die < 0 || die >= len(d.dies[channel]) {
		return 0
	}
	return d.dies[channel][die].FreeAt()
}

// IdealReadBandwidth returns the analytic read capability of the media under
// perfect parallelism: per channel, the lesser of the bus rate and the
// aggregate die sensing rate with full multi-plane merging and pipelining.
func (d *Device) IdealReadBandwidth() float64 {
	planes := d.Cell.Planes
	perAct := float64(int64(planes) * d.Cell.PageSize)
	cycle := d.Cell.ReadLatency + sim.Time(planes)*(d.regTime()+d.Bus.TransferTime(d.Cell.PageSize))
	dieRate := perAct / cycle.Seconds()
	cellRate := dieRate * float64(d.Geo.DiesPerChannel())
	bus := d.Bus.BytesPerSec()
	per := cellRate
	if bus < per {
		per = bus
	}
	return per * float64(d.Geo.Channels)
}

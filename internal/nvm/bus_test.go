package nvm

import (
	"testing"

	"oocnvm/internal/sim"
)

func TestONFi3SDRRate(t *testing.T) {
	b := ONFi3SDR()
	if got := b.BytesPerSec(); got != 400e6 {
		t.Fatalf("ONFi3 SDR = %v B/s, want 400e6 (§3.3: 400MHz SDR)", got)
	}
}

func TestFutureDDRRate(t *testing.T) {
	b := FutureDDR()
	if got := b.BytesPerSec(); got != 3.2e9 {
		t.Fatalf("future DDR = %v B/s, want 3.2e9 (800MHz DDR x16)", got)
	}
}

func TestBusRatio(t *testing.T) {
	// The paper's motivation: ONFi3 SDR 400MHz equals only 200MHz DDR2; the
	// DDR3-1600-like migration must be a large multiple.
	ratio := FutureDDR().BytesPerSec() / ONFi3SDR().BytesPerSec()
	if ratio != 8 {
		t.Fatalf("DDR/SDR ratio = %v, want 8", ratio)
	}
}

func TestTransferTime(t *testing.T) {
	b := ONFi3SDR()
	got := b.TransferTime(2048)
	want := sim.Time(5.12 * float64(sim.Microsecond))
	if got < want-sim.Nanosecond || got > want+sim.Nanosecond {
		t.Fatalf("2 KiB over SDR = %v, want ~%v", got, want)
	}
}

func TestCommandTime(t *testing.T) {
	sdr := ONFi3SDR().CommandTime()
	ddr := FutureDDR().CommandTime()
	if sdr <= 0 || ddr <= 0 {
		t.Fatal("command time must be positive")
	}
	if ddr >= sdr {
		t.Fatal("faster bus must have faster command cycles")
	}
	// 12 cycles at 400 MHz = 30 ns.
	if sdr != 30*sim.Nanosecond {
		t.Fatalf("SDR command time = %v, want 30ns", sdr)
	}
}

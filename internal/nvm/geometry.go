package nvm

import "fmt"

// Geometry describes the physical organization of an SSD's NVM complex.
// The paper's evaluated devices (§4.1) use 8 channels, 64 packages and 128
// dies: 8 packages per channel, 2 dies per package.
type Geometry struct {
	Channels           int
	PackagesPerChannel int
	DiesPerPackage     int
	BlocksPerPlane     int
}

// PaperGeometry returns the SSD organization used throughout the paper's
// evaluation: 8 channels, 64 NVM packages, 128 NVM dies.
func PaperGeometry() Geometry {
	return Geometry{Channels: 8, PackagesPerChannel: 8, DiesPerPackage: 2, BlocksPerPlane: 2048}
}

// Validate reports a descriptive error for impossible organizations.
func (g Geometry) Validate() error {
	if g.Channels <= 0 || g.PackagesPerChannel <= 0 || g.DiesPerPackage <= 0 || g.BlocksPerPlane <= 0 {
		return fmt.Errorf("nvm: geometry fields must be positive: %+v", g)
	}
	return nil
}

// DiesPerChannel returns the number of dies sharing one channel bus.
func (g Geometry) DiesPerChannel() int { return g.PackagesPerChannel * g.DiesPerPackage }

// Packages returns the total package count.
func (g Geometry) Packages() int { return g.Channels * g.PackagesPerChannel }

// Dies returns the total die count.
func (g Geometry) Dies() int { return g.Channels * g.DiesPerChannel() }

// Capacity returns the device capacity in bytes for the given medium.
func (g Geometry) Capacity(cell CellParams) int64 {
	return int64(g.Dies()*cell.Planes*g.BlocksPerPlane) * cell.BlockSize()
}

// Pages returns the total number of interface pages the device exposes.
func (g Geometry) Pages(cell CellParams) int64 {
	return int64(g.Dies()*cell.Planes*g.BlocksPerPlane) * int64(cell.PagesPerBlock)
}

// Location identifies one physical page's resources: the channel bus it
// transfers over, the die it occupies (indexed within the channel) and the
// plane inside that die. Package is derived, not stored.
type Location struct {
	Channel int
	Die     int // index within the channel: [0, DiesPerChannel)
	Plane   int
}

// Package returns the package (within the channel) a die index belongs to.
// Dies are distributed round-robin over the channel's packages so that
// consecutive die indices land in distinct packages, mirroring interleaved
// chip-enable wiring.
func (g Geometry) Package(die int) int { return die % g.PackagesPerChannel }

// MapLogical translates a logical page number into a physical location using
// channel-first, plane-second, die-third striping:
//
//	channel = lpn mod C
//	plane   = (lpn / C) mod P
//	die     = (lpn / (C*P)) mod D
//
// With this order a request must span at least 2*C contiguous pages before
// multi-plane operation becomes possible (PAL3) and more than C*P pages per
// die row before die interleaving kicks in (PAL2/PAL4). Small or fragmented
// requests therefore degrade exactly the way the paper's Figure 10 shows.
func (g Geometry) MapLogical(lpn int64, planes int) Location {
	if planes <= 0 {
		planes = 1
	}
	c := int64(g.Channels)
	p := int64(planes)
	d := int64(g.DiesPerChannel())
	return Location{
		Channel: int(lpn % c),
		Plane:   int((lpn / c) % p),
		Die:     int((lpn / (c * p)) % d),
	}
}

package nvm

import "oocnvm/internal/sim"

// BusParams describes the NVM interface bus shared by the packages of one
// channel (ONFi for NAND; the same electrical model serves the PCM parts
// behind their flash-compatible interface).
type BusParams struct {
	Name      string
	ClockMHz  float64
	DDR       bool // double data rate: two transfers per clock
	WidthBits int  // data bus width
}

// ONFi3SDR is the paper's baseline bus: ONFi major-revision 3 providing a
// 400 MHz single-data-rate 8-bit interface, i.e. 400 MB/s per channel (§3.3).
func ONFi3SDR() BusParams {
	return BusParams{Name: "ONFi3-SDR-400", ClockMHz: 400, DDR: false, WidthBits: 8}
}

// FutureDDR is the paper's proposed "DDR3-1600-like" migration: an 800 MHz
// dual-data-rate 16-bit interface, 3.2 GB/s per channel (§3.3, third problem).
func FutureDDR() BusParams {
	return BusParams{Name: "Future-DDR-800", ClockMHz: 800, DDR: true, WidthBits: 16}
}

// BytesPerSec returns the raw data bandwidth of the bus.
func (b BusParams) BytesPerSec() float64 {
	rate := b.ClockMHz * 1e6
	if b.DDR {
		rate *= 2
	}
	return rate * float64(b.WidthBits) / 8
}

// TransferTime returns the bus occupancy for moving n bytes.
func (b BusParams) TransferTime(n int64) sim.Time {
	return sim.DurationForBytes(n, b.BytesPerSec())
}

// CommandTime returns the bus occupancy of one command/address sequence
// (command latch, five address cycles, confirm — ~12 bus clocks).
func (b BusParams) CommandTime() sim.Time {
	cycles := 12.0
	perCycle := 1e12 / (b.ClockMHz * 1e6) // picoseconds per clock
	if b.DDR {
		perCycle /= 2
	}
	return sim.Time(cycles * perCycle)
}

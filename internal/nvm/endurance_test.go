package nvm

import "testing"

func TestBusLadderMonotone(t *testing.T) {
	ladder := BusLadder()
	if len(ladder) < 4 {
		t.Fatalf("ladder has %d rungs", len(ladder))
	}
	for i := 1; i < len(ladder); i++ {
		if ladder[i].BytesPerSec() <= ladder[i-1].BytesPerSec() {
			t.Fatalf("rung %s (%v B/s) not faster than %s (%v B/s)",
				ladder[i].Name, ladder[i].BytesPerSec(),
				ladder[i-1].Name, ladder[i-1].BytesPerSec())
		}
	}
	// The paper's anchors sit on the ladder.
	names := map[string]bool{}
	for _, b := range ladder {
		names[b.Name] = true
	}
	if !names[ONFi3SDR().Name] || !names[FutureDDR().Name] {
		t.Fatal("ladder missing the paper's anchor buses")
	}
}

func TestLifetimeKnownValue(t *testing.T) {
	// 1 TiB of SLC (100k cycles) absorbing 1 TiB/day at WA 1:
	// 100000 device-fills / 365 per year ≈ 274 years.
	cell := Params(SLC)
	years, err := Lifetime(cell, 1<<40, 1<<40, 1)
	if err != nil {
		t.Fatal(err)
	}
	if years < 273 || years > 275 {
		t.Fatalf("lifetime = %v years, want ~274", years)
	}
}

func TestLifetimeOrderingAcrossMedia(t *testing.T) {
	// Same capacity and workload: PCM >> SLC > MLC > TLC.
	var last float64 = 1e300
	for _, c := range []CellType{PCM, SLC, MLC, TLC} {
		years, err := Lifetime(Params(c), 1<<40, 10<<40, 1.5)
		if err != nil {
			t.Fatal(err)
		}
		if years >= last {
			t.Fatalf("%v lifetime %v not below the previous medium's %v", c, years, last)
		}
		last = years
	}
}

func TestLifetimeWriteAmplificationHurts(t *testing.T) {
	cell := Params(MLC)
	clean, _ := Lifetime(cell, 1<<40, 1<<40, 1)
	amplified, _ := Lifetime(cell, 1<<40, 1<<40, 3)
	if amplified*2.9 > clean {
		t.Fatalf("WA 3 lifetime %v vs WA 1 %v; want ~3x shorter", amplified, clean)
	}
}

func TestLifetimeValidation(t *testing.T) {
	cell := Params(SLC)
	if _, err := Lifetime(cell, 0, 1, 1); err == nil {
		t.Fatal("zero capacity accepted")
	}
	if _, err := Lifetime(cell, 1, 0, 1); err == nil {
		t.Fatal("zero writes accepted")
	}
	if _, err := Lifetime(cell, 1, 1, 0.5); err == nil {
		t.Fatal("write amplification below 1 accepted")
	}
}

func TestDrivesPerYear(t *testing.T) {
	cell := Params(TLC)
	perYear, err := DrivesPerYearForWorkload(cell, 1<<40, 100<<40, 2)
	if err != nil {
		t.Fatal(err)
	}
	years, _ := Lifetime(cell, 1<<40, 100<<40, 2)
	if diff := perYear*years - 1; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("inversion broken: %v drives/yr x %v yr != 1", perYear, years)
	}
}

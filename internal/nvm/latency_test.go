package nvm

import (
	"testing"

	"oocnvm/internal/sim"
)

func TestLatencyEmptyDevice(t *testing.T) {
	d := newTestDevice(t, SLC, ONFi3SDR(), fastLink{})
	st := d.Latency()
	if st.Count != 0 || st.P50 != 0 || st.Max != 0 {
		t.Fatalf("idle latency stats: %+v", st)
	}
}

func TestLatencySingleRead(t *testing.T) {
	d := newTestDevice(t, SLC, ONFi3SDR(), fastLink{})
	end := d.Submit(0, []PageOp{readOp(0, d)})
	st := d.Latency()
	if st.Count != 1 {
		t.Fatalf("count = %d", st.Count)
	}
	if st.Max != end {
		t.Fatalf("max = %v, want %v", st.Max, end)
	}
	// P50 is a bucket upper bound: at least the true latency, within 2x.
	if st.P50 < end || st.P50 > 2*end {
		t.Fatalf("p50 = %v for true latency %v", st.P50, end)
	}
}

func TestLatencyPercentilesOrdered(t *testing.T) {
	d := newTestDevice(t, TLC, ONFi3SDR(), fastLink{})
	// A mix of short (1-page) and long (contended) requests.
	for i := 0; i < 50; i++ {
		d.Submit(0, []PageOp{{Op: OpRead, Loc: Location{}}})
	}
	for i := 0; i < 5; i++ {
		d.Submit(0, seqReadOps(d, 512))
	}
	st := d.Latency()
	if st.Count != 55 {
		t.Fatalf("count = %d", st.Count)
	}
	if !(st.P50 <= st.P95 && st.P95 <= st.P99 && st.P99 <= 2*st.Max) {
		t.Fatalf("percentiles out of order: %+v", st)
	}
}

func TestLatencyContentionInflatesDistribution(t *testing.T) {
	// 100 reads queued on one die build a latency ramp: the median is many
	// service times deep and the tail reaches the full queue length.
	d := newTestDevice(t, TLC, ONFi3SDR(), fastLink{})
	loc := Location{}
	for i := 0; i < 100; i++ {
		d.Submit(0, []PageOp{{Op: OpRead, Loc: loc}}) // all queue on one die
	}
	st := d.Latency()
	single := d.Cell.ReadLatency
	if st.P50 < 10*single {
		t.Fatalf("p50 %v vs single read %v: contention should inflate the median", st.P50, single)
	}
	if st.Max < 90*single {
		t.Fatalf("max %v vs single read %v: the last request waits the full queue", st.Max, single)
	}
	if st.P99 < st.P50 {
		t.Fatal("percentiles inverted")
	}
}

func TestCacheModeSpeedsUpCellLimitedReads(t *testing.T) {
	run := func(cache bool) sim.Time {
		d := newTestDevice(t, SLC, FutureDDR(), fastLink{})
		if cache {
			d.EnableCacheMode()
		}
		var end sim.Time
		for i := 0; i < 8; i++ {
			end = d.Submit(0, seqReadOps(d, 4096))
		}
		return end
	}
	plain := run(false)
	cached := run(true)
	if cached >= plain {
		t.Fatalf("cache mode (%v) not faster than plain (%v) on a cell-limited stream", cached, plain)
	}
}

func TestCacheModePreservesWorkAccounting(t *testing.T) {
	d := newTestDevice(t, SLC, FutureDDR(), fastLink{})
	d.EnableCacheMode()
	d.Submit(0, seqReadOps(d, 256))
	st := d.Stats()
	if st.Reads != 256 || st.BytesRead != 256*d.Cell.PageSize {
		t.Fatalf("cache mode lost work: %+v", st)
	}
	if st.Breakdown.FlashBus == 0 {
		t.Fatal("register staging no longer accounted")
	}
}

package nvm

import (
	"testing"

	"oocnvm/internal/fault"
)

func TestECCForScalesWithDensity(t *testing.T) {
	slc, mlc, tlc, pcm := ECCFor(SLC), ECCFor(MLC), ECCFor(TLC), ECCFor(PCM)
	if !(slc.CorrectableBits < mlc.CorrectableBits && mlc.CorrectableBits < tlc.CorrectableBits) {
		t.Fatalf("ECC budget must grow with density: SLC %d, MLC %d, TLC %d",
			slc.CorrectableBits, mlc.CorrectableBits, tlc.CorrectableBits)
	}
	if pcm.CorrectableBits >= slc.CorrectableBits {
		t.Fatalf("PCM budget %d should be thinner than SLC's %d",
			pcm.CorrectableBits, slc.CorrectableBits)
	}
	for _, e := range []fault.ECC{slc, mlc, tlc, pcm} {
		if e.CodewordBytes <= 0 || e.MaxRetries <= 0 {
			t.Fatalf("degenerate ECC %+v", e)
		}
	}
	// Unknown cell types get a safe default, not a zero budget.
	if d := ECCFor(CellType(99)); d.CorrectableBits <= 0 {
		t.Fatalf("default ECC %+v", d)
	}
}

func TestFaultConfigDerivation(t *testing.T) {
	geo := PaperGeometry()
	cell := Params(TLC)
	prof, _ := fault.ForName("worn")
	cfg := FaultConfig(geo, cell, prof, 7)
	wantRow := int64(geo.Channels * cell.Planes * geo.DiesPerChannel())
	if cfg.RowSize != wantRow {
		t.Fatalf("RowSize %d, want %d", cfg.RowSize, wantRow)
	}
	if cfg.TotalBlocks != wantRow*int64(geo.BlocksPerPlane) {
		t.Fatalf("TotalBlocks %d", cfg.TotalBlocks)
	}
	// Blocks × pages per block must tile the device's page population.
	if cfg.TotalBlocks*cfg.PagesPerBlock != geo.Pages(cell) {
		t.Fatalf("block layout does not tile device: %d blocks x %d pages != %d",
			cfg.TotalBlocks, cfg.PagesPerBlock, geo.Pages(cell))
	}
	if cfg.PageSize != cell.PageSize || cfg.Endurance != cell.Endurance || cfg.Seed != 7 {
		t.Fatalf("derived config %+v", cfg)
	}
	if cfg.ECC != ECCFor(TLC) {
		t.Fatal("ECC not taken from the cell type")
	}
	if _, err := fault.New(cfg); err != nil {
		t.Fatalf("derived config rejected by injector: %v", err)
	}
}

// Package nvm models non-volatile memory devices at the level the paper's
// NANDFlashSim framework does: individual dies with planes, packages sharing
// channel buses, per-operation cell timings (Table 1 of the paper), and the
// six-state execution accounting plus PAL1-PAL4 parallelism classification
// reported in the paper's Figures 9 and 10.
package nvm

import (
	"fmt"

	"oocnvm/internal/sim"
)

// CellType identifies the NVM storage medium of a die.
type CellType int

// The four media the paper evaluates (§2.3).
const (
	SLC CellType = iota // single-level cell NAND, 1 bit/cell
	MLC                 // multi-level cell NAND, 2 bits/cell
	TLC                 // triple-level cell NAND, 3 bits/cell
	PCM                 // phase-change memory behind a NOR-style page interface
)

// CellTypes lists all media in presentation order (as in the paper's charts).
var CellTypes = []CellType{TLC, MLC, SLC, PCM}

// String returns the conventional abbreviation for the cell type.
func (c CellType) String() string {
	switch c {
	case SLC:
		return "SLC"
	case MLC:
		return "MLC"
	case TLC:
		return "TLC"
	case PCM:
		return "PCM"
	default:
		return fmt.Sprintf("CellType(%d)", int(c))
	}
}

// CellParams carries the per-medium timing and organization parameters.
// Values for the NAND types follow Table 1 of the paper (Micron SLC/MLC/TLC
// datasheets); program latency is a range because MLC and TLC page programs
// vary with the page's position in the cell (LSB vs MSB pages).
type CellParams struct {
	Type     CellType
	PageSize int64 // interface page size in bytes

	ReadLatency       sim.Time // tR: cell array -> page register
	ProgramLatencyMin sim.Time // tPROG lower bound
	ProgramLatencyMax sim.Time // tPROG upper bound
	EraseLatency      sim.Time // tBERS for one block

	PagesPerBlock int   // pages per eraseblock
	Planes        int   // planes per die usable for multi-plane ops
	BitsPerCell   int   // storage density
	Endurance     int64 // program/erase cycles before wear-out
}

// Params returns the canonical parameters for a cell type.
//
// PCM is exposed through the flash-compatible page interface the paper
// describes in §2.3 ("industry applies NOR flash memory interface logic to
// PCM by emulating block-level erase operations and page-based I/O"): the
// 64 B GSTs are aggregated into a 1 KiB interface page whose latencies are
// the Table 1 GST latencies scaled by the emulation layer's internal bank
// parallelism (16 GST banks sensed concurrently per page).
func Params(t CellType) CellParams {
	switch t {
	case SLC:
		return CellParams{
			Type: SLC, PageSize: 2 * 1024,
			ReadLatency:       25 * sim.Microsecond,
			ProgramLatencyMin: 250 * sim.Microsecond,
			ProgramLatencyMax: 250 * sim.Microsecond,
			EraseLatency:      1500 * sim.Microsecond,
			PagesPerBlock:     64, Planes: 2, BitsPerCell: 1,
			Endurance: 100_000,
		}
	case MLC:
		return CellParams{
			Type: MLC, PageSize: 4 * 1024,
			ReadLatency:       50 * sim.Microsecond,
			ProgramLatencyMin: 250 * sim.Microsecond,
			ProgramLatencyMax: 2200 * sim.Microsecond,
			EraseLatency:      2500 * sim.Microsecond,
			PagesPerBlock:     128, Planes: 2, BitsPerCell: 2,
			Endurance: 3_000,
		}
	case TLC:
		// TLC parts of the era did not support multi-plane operation,
		// which is why TLC never reaches PAL4 in the paper's Figure 10b.
		return CellParams{
			Type: TLC, PageSize: 8 * 1024,
			ReadLatency:       150 * sim.Microsecond,
			ProgramLatencyMin: 440 * sim.Microsecond,
			ProgramLatencyMax: 6000 * sim.Microsecond,
			EraseLatency:      3000 * sim.Microsecond,
			PagesPerBlock:     192, Planes: 1, BitsPerCell: 3,
			Endurance: 500,
		}
	case PCM:
		// 1 KiB emulated page = 16 GSTs of 64 B, sensed in parallel banks:
		// read 0.115-0.135 us/GST -> 0.25 us/page including bank turnaround;
		// write 35 us/GST with 16-bank parallelism -> 40 us/page; the
		// emulated block erase is a no-op RESET sweep at 35 us. The bank
		// groups are exposed as two plane-like units, which together with
		// the small page size is why PCM requests spread across all dies
		// and sit almost entirely at PAL4 (Figure 10d).
		return CellParams{
			Type: PCM, PageSize: 1024,
			ReadLatency:       250 * sim.Nanosecond,
			ProgramLatencyMin: 40 * sim.Microsecond,
			ProgramLatencyMax: 40 * sim.Microsecond,
			EraseLatency:      35 * sim.Microsecond,
			PagesPerBlock:     256, Planes: 2, BitsPerCell: 1,
			Endurance: 100_000_000,
		}
	default:
		panic(fmt.Sprintf("nvm: unknown cell type %d", int(t)))
	}
}

// ProgramLatency returns a deterministic draw from the program-latency range
// using the supplied generator (NANDFlashSim's "intrinsic latency variation").
func (p CellParams) ProgramLatency(rng *sim.RNG) sim.Time {
	if p.ProgramLatencyMax <= p.ProgramLatencyMin {
		return p.ProgramLatencyMin
	}
	span := int64(p.ProgramLatencyMax - p.ProgramLatencyMin)
	return p.ProgramLatencyMin + sim.Time(rng.Int63n(span+1))
}

// BlockSize returns the eraseblock size in bytes.
func (p CellParams) BlockSize() int64 {
	return p.PageSize * int64(p.PagesPerBlock)
}

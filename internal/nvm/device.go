package nvm

import (
	"fmt"

	"oocnvm/internal/fault"
	"oocnvm/internal/obs"
	"oocnvm/internal/obs/attrib"
	"oocnvm/internal/obs/hostperf"
	"oocnvm/internal/obs/timeseries"
	"oocnvm/internal/sim"
)

// Op is a page-granular NVM transaction type.
type Op int

// NVM transaction kinds (the three verbs of the paper's Figure 4 "NVM
// transaction-level read, write, erase").
const (
	OpRead Op = iota
	OpProgram
	OpErase
)

// String names the transaction kind.
func (o Op) String() string {
	switch o {
	case OpRead:
		return "read"
	case OpProgram:
		return "program"
	case OpErase:
		return "erase"
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// PageOp is one page-granular transaction addressed to a physical location.
// PPN carries the physical page number the translator resolved; the device's
// scheduling ignores it, but the fault injector keys per-eraseblock wear and
// error state off it. GC marks garbage-collection traffic (relocation
// reads/programs and victim erases) so latency attribution can charge an
// activation of pure GC work to the GC component instead of the host's.
// Meta marks FTL metadata traffic (journal and checkpoint pages); LPN and
// Ver are the durable per-page OOB tags a MediaTap commits alongside the
// payload (LPN < 0 when the page carries no host data).
type PageOp struct {
	Op   Op
	Loc  Location
	PPN  int64
	GC   bool
	Meta bool
	LPN  int64
	Ver  uint64
}

// Link abstracts the host-side data path of the SSD (PCIe, possibly behind a
// SATA bridge, possibly behind a cluster network). It is a shared, exclusive
// resource: transfers serialize on it.
type Link interface {
	// Transfer books n bytes on the link no earlier than at and returns the
	// completion time.
	Transfer(at sim.Time, n int64) sim.Time
	// RequestOverhead is the fixed per-request cost of the path (protocol
	// re-encoding in bridges, network round-trip setup, ...).
	RequestOverhead() sim.Time
	// BytesPerSec reports the link's effective data bandwidth.
	BytesPerSec() float64
}

// Device is an event-driven model of one SSD's NVM complex: channel buses and
// dies as exclusive resources, Table 1 cell timings, multi-plane merging and
// die interleaving emerging from the physical layout of each request.
type Device struct {
	Geo  Geometry
	Cell CellParams
	Bus  BusParams

	link    Link
	rng     *sim.RNG
	chanBus []sim.Timeline   // one per channel
	dies    [][]sim.Timeline // [channel][dieInChannel]

	// Busy-union trackers for the paper's "kept busy" utilization probes:
	// a channel counts as busy while its bus or any die behind it works; a
	// package counts as busy while any of its dies works.
	chCover  []sim.IntervalSet   // per channel
	pkgCover [][]sim.IntervalSet // [channel][packageInChannel]

	// Contention watermarks deduplicate queueing time: when many
	// transactions wait on the same busy resource, the busy period is
	// charged to the breakdown once, not once per waiter (the paper's
	// breakdown is of device state time, not of per-waiter latency).
	chContMark  []sim.Time
	dieContMark [][]sim.Time

	breakdown  Breakdown
	pal        PALHistogram
	eraseCount map[Location]int64 // wear accounting per die/plane
	started    bool
	firstIssue sim.Time
	lastEnd    sim.Time

	// cacheMode enables dual-register ("cache read") operation: the die can
	// sense the next page while the previous page drains from the secondary
	// register, so register staging no longer occupies the die.
	cacheMode bool

	// faults, when non-nil, injects reliability behavior: read-retry
	// latency on the die timelines, program/erase failure reports, and
	// per-block wear feeding the RBER model. Nil means a failure-free
	// device with zero overhead.
	faults *fault.Injector

	// media, when non-nil, receives every program/erase as a durable
	// media-state commit (MediaTap). Durable mode also orders victim
	// erases after every program of the same request (the erase barrier):
	// a power cut mid-request must never have destroyed relocated data
	// whose journal pages were still queued behind the erase.
	media MediaTap

	// Scheduling scratch, reused across Submits. The die buckets, plane
	// merge queues, activation lists and the multi-plane group arena below
	// used to be rebuilt for every request and were the dominant allocation
	// source of a replay; as persistent per-device storage they grow to the
	// workload's high-water mark once and steady-state scheduling allocates
	// nothing. Activation op slices alias this storage, so they are valid
	// only until the next Submit — exactly the request lifetime.
	scBuckets [][]PageOp     // per (channel, die) op buckets, layout order
	scDieActs [][]activation // per non-empty die activation sequences
	scOut     []activation   // round-robin interleaved dispatch order
	scErase   []activation   // durable-mode erase-barrier holdbacks
	scPlane   [][]PageOp     // per-plane merge queues
	scPlaneHd []int          // consumed heads of the per-plane queues
	scGroups  []PageOp       // arena backing multi-plane activation groups

	// att, when non-nil, receives per-request critical-path attribution:
	// the chain of timestamp differences from dispatch to completion of
	// every cell activation (the latest-finishing chain is the request's
	// critical path). All Recorder methods are nil-safe, so the nil case
	// costs one predictable branch.
	att *attrib.Recorder
	// attGCSvc accumulates, per die and per request, the die occupancy of
	// this request's own garbage-collection activations. Foreground GC
	// precedes the host pages that triggered it, so a host chain's entry
	// die-wait silently absorbs the collection service; the split charges
	// that portion to the GC component instead. Reset on every Submit.
	attGCSvc []sim.Time
	// attActGC marks the activation currently executing as all-GC traffic.
	attActGC bool

	// The device's work counters and latency histogram live in a private
	// obs.Registry so Stats is assembled from the registry in one place and
	// a run-level collector can absorb them for export. The probe receives
	// only spans (bus transfers, die activations); counters never go
	// through it, so absorbing the registry cannot double-count.
	reg      *obs.Registry
	probe    obs.Probe
	cReads   *obs.Counter
	cProgs   *obs.Counter
	cErases  *obs.Counter
	cBytesRd *obs.Counter
	cBytesWr *obs.Counter
	cPAL     [4]*obs.Counter
	hLatency *obs.Histogram
	hRetry   *obs.Histogram
}

// SetFaults attaches a fault injector. Call before submitting work; a nil
// injector restores the failure-free device.
func (d *Device) SetFaults(inj *fault.Injector) { d.faults = inj }

// SetMediaTap attaches a durable media model. Call before submitting
// work; nil restores the volatile (and erase-barrier-free) device.
func (d *Device) SetMediaTap(m MediaTap) { d.media = m }

// EnableCacheMode turns on dual-register cache operation (see the cacheMode
// field). Call before submitting work.
func (d *Device) EnableCacheMode() { d.cacheMode = true }

// SetAttrib attaches a latency-attribution recorder. Nil detaches.
func (d *Device) SetAttrib(rec *attrib.Recorder) {
	d.att = rec
	if rec != nil && d.attGCSvc == nil {
		d.attGCSvc = make([]sim.Time, d.Geo.Channels*d.Geo.DiesPerChannel())
	}
}

// NewDevice assembles a device from its geometry, medium, channel bus and
// host link. The seed fixes the program-latency variation stream.
func NewDevice(geo Geometry, cell CellParams, bus BusParams, link Link, seed uint64) (*Device, error) {
	if err := geo.Validate(); err != nil {
		return nil, err
	}
	if link == nil {
		return nil, fmt.Errorf("nvm: device requires a host link")
	}
	d := &Device{
		Geo: geo, Cell: cell, Bus: bus,
		link:        link,
		rng:         sim.NewRNG(seed),
		chanBus:     make([]sim.Timeline, geo.Channels),
		dies:        make([][]sim.Timeline, geo.Channels),
		chCover:     make([]sim.IntervalSet, geo.Channels),
		pkgCover:    make([][]sim.IntervalSet, geo.Channels),
		chContMark:  make([]sim.Time, geo.Channels),
		dieContMark: make([][]sim.Time, geo.Channels),
		eraseCount:  make(map[Location]int64),
	}
	for c := range d.dies {
		d.dies[c] = make([]sim.Timeline, geo.DiesPerChannel())
		d.pkgCover[c] = make([]sim.IntervalSet, geo.PackagesPerChannel)
		d.dieContMark[c] = make([]sim.Time, geo.DiesPerChannel())
	}
	d.probe = obs.Nop{}
	d.bindMetrics(obs.NewRegistry())
	return d, nil
}

// bindMetrics points the device's counter handles into r.
func (d *Device) bindMetrics(r *obs.Registry) {
	d.reg = r
	d.cReads = r.Counter("nvm.reads")
	d.cProgs = r.Counter("nvm.programs")
	d.cErases = r.Counter("nvm.erases")
	d.cBytesRd = r.Counter("nvm.bytes_read")
	d.cBytesWr = r.Counter("nvm.bytes_written")
	d.cPAL[0] = r.Counter("nvm.pal1")
	d.cPAL[1] = r.Counter("nvm.pal2")
	d.cPAL[2] = r.Counter("nvm.pal3")
	d.cPAL[3] = r.Counter("nvm.pal4")
	d.hLatency = r.Histogram("nvm.device.latency")
	d.hRetry = r.Histogram("nvm.read.retry")
}

// Registry exposes the device's private metrics registry (work counters,
// PAL tallies, the request-latency histogram, and the derived gauges Stats
// refreshes). Absorb it into a run-level registry for export.
func (d *Device) Registry() *obs.Registry { return d.reg }

// SetProbe attaches an observability probe: the device emits spans for
// every die activation and channel-bus transfer through it. A nil probe
// resets to the free no-op probe.
func (d *Device) SetProbe(p obs.Probe) {
	d.probe = obs.OrNop(p)
	obs.Instrument(d.link, p)
}

// ChannelBusy sums the cumulative booked busy time of every channel bus.
func (d *Device) ChannelBusy() sim.Time {
	var t sim.Time
	for i := range d.chanBus {
		t += d.chanBus[i].Busy()
	}
	return t
}

// DieBusy sums the cumulative booked busy time of every die.
func (d *Device) DieBusy() sim.Time {
	var t sim.Time
	for c := range d.dies {
		for i := range d.dies[c] {
			t += d.dies[c][i].Busy()
		}
	}
	return t
}

// RegisterSeries registers the device's time-resolved telemetry: per-pool
// busy fractions for channel buses and dies, and — when the host link tracks
// its own occupancy — the interconnect's busy fraction. Busy time is booked
// at dispatch, so a sample can include work scheduled past its boundary; the
// sampler clamps fractions at export (dispatch-horizon sampling).
func (d *Device) RegisterSeries(ts *timeseries.Sampler) {
	ts.AddFraction("nvm.channel_util", float64(d.Geo.Channels),
		func(sim.Time) float64 { return float64(d.ChannelBusy()) })
	ts.AddFraction("nvm.die_util", float64(d.Geo.Channels*d.Geo.DiesPerChannel()),
		func(sim.Time) float64 { return float64(d.DieBusy()) })
	if l, ok := d.link.(interface{ Busy() sim.Time }); ok {
		ts.AddFraction("interconnect.link_occupancy", 1,
			func(sim.Time) float64 { return float64(l.Busy()) })
	}
}

// regTime is the register/SRAM staging cost between a die's page register and
// the channel ("flash bus activation"): the internal flash bus runs at twice
// the external channel rate.
func (d *Device) regTime() sim.Time {
	return sim.DurationForBytes(d.Cell.PageSize, 2*d.Bus.BytesPerSec())
}

// activation groups page ops that share one cell activation: up to one op per
// plane of a single die, merged by multi-plane command.
type activation struct {
	loc Location // channel+die; plane of the first op
	ops []PageOp
}

// Submit executes all page operations of one host request, issued at 'at',
// and returns the completion time of the request. Operations are scheduled
// against the device's persistent channel/die timelines, so back-to-back
// requests pipeline naturally.
func (d *Device) Submit(at sim.Time, ops []PageOp) sim.Time {
	if len(ops) == 0 {
		return at
	}
	// The die buckets, plane-merge queues and activation groups built below
	// are the dominant allocation source of a replay; the hostperf region
	// charges them to the nvm-sched subsystem.
	hostperf.Enter(hostperf.SiteNVMSched)
	defer hostperf.Exit()
	if !d.started || at < d.firstIssue {
		if !d.started {
			d.firstIssue = at
		}
		d.started = true
	}

	issue := at
	if oh := d.link.RequestOverhead(); oh > 0 {
		issue += oh
		d.breakdown.NonOverlappedDMA += oh
		d.att.Note(attrib.HostOverhead, oh)
	}
	attributing := d.att.DeviceActive()
	if attributing {
		for i := range d.attGCSvc {
			d.attGCSvc[i] = 0
		}
	}

	acts, interleave := d.schedule(ops)

	var (
		end        sim.Time
		multiplane bool
	)
	eraseActs := d.scErase[:0]
	for _, a := range acts {
		if len(a.ops) > 1 {
			multiplane = true
		}
		// Durable mode holds erases back behind every program of the
		// request: plane interleaving would otherwise let a victim erase
		// execute before the relocation programs and journal pages that
		// make destroying the victim safe, so a crash between the two
		// could lose acknowledged data.
		if d.media != nil && a.ops[0].Op == OpErase {
			eraseActs = append(eraseActs, a)
			continue
		}
		end = sim.MaxTime(end, d.runActivation(issue, 0, a, attributing))
	}
	d.scErase = eraseActs
	if len(eraseActs) > 0 {
		barrier := sim.MaxTime(end, issue)
		for _, a := range eraseActs {
			end = sim.MaxTime(end, d.runActivation(barrier, barrier-issue, a, attributing))
		}
	}

	pal := PAL1
	switch {
	case interleave && multiplane:
		pal = PAL4
	case multiplane:
		pal = PAL3
	case interleave:
		pal = PAL2
	}
	d.pal.Record(pal)
	d.cPAL[pal-1].Inc()
	d.hLatency.Observe(end - at)
	if d.probe.Enabled() {
		d.probe.Span(obs.LayerNVM, "device", "submit", at, end,
			obs.Attr{Key: "ops", Value: len(ops)},
			obs.Attr{Key: "pal", Value: pal.String()})
	}

	d.lastEnd = sim.MaxTime(d.lastEnd, end)
	return end
}

// runActivation executes one activation at issueAt with its attribution
// chain. pre is the already-elapsed time from the request's issue instant
// (the durable-mode erase barrier); it is charged to the Meta component so
// the chain still telescopes from issue to completion. After a power cut
// the remaining activations are void: the device returns issueAt without
// touching any timeline, so a crashed request's completion never regresses
// below work that actually executed.
func (d *Device) runActivation(issueAt, pre sim.Time, a activation, attributing bool) sim.Time {
	if d.faults.Crashed() {
		return issueAt
	}
	if attributing {
		gc, meta := true, true
		for _, op := range a.ops {
			if !op.GC {
				gc = false
			}
			if !op.Meta {
				meta = false
			}
		}
		d.attActGC = gc
		fold := attrib.Component(-1)
		switch {
		case meta:
			fold = attrib.Meta
		case gc:
			fold = attrib.GC
		}
		d.att.StartActivationFold(fold)
		d.att.Seg(attrib.Meta, pre)
	}
	done := d.execActivation(issueAt, a)
	if attributing {
		d.att.EndActivation(done)
	}
	return done
}

// schedule buckets ops per (channel, die) in deterministic layout order,
// merges each die bucket into a sequence of activations — pairing ops on
// distinct planes of the die into multi-plane activations when the medium
// supports it and the ops share the same verb — and interleaves the per-die
// sequences round-robin (activation 0 of every die, then activation 1, ...)
// so that shared resources — the channel buses and the host link — are booked
// in approximate time order, the way the controller actually dispatches work
// across dies. It also reports die interleaving (some channel drives more
// than one die) for the request's PAL classification.
//
// Everything is built in the device's persistent scratch: the returned
// activations and their op slices are valid only until the next Submit.
func (d *Device) schedule(ops []PageOp) (out []activation, interleave bool) {
	dpc := d.Geo.DiesPerChannel()
	planes := d.Cell.Planes
	if n := d.Geo.Channels * dpc; len(d.scBuckets) != n {
		d.scBuckets = make([][]PageOp, n)
	}
	if planes > 1 && len(d.scPlane) != planes {
		d.scPlane = make([][]PageOp, planes)
		d.scPlaneHd = make([]int, planes)
	}
	buckets := d.scBuckets
	for i := range buckets {
		buckets[i] = buckets[i][:0]
	}
	d.scGroups = d.scGroups[:0]
	for _, op := range ops {
		idx := op.Loc.Channel*dpc + op.Loc.Die
		buckets[idx] = append(buckets[idx], op)
	}

	nDie, maxLen := 0, 0
	curCh, chDies := -1, 0
	for idx, bucket := range buckets {
		if len(bucket) == 0 {
			continue
		}
		if ch := idx / dpc; ch != curCh {
			curCh, chDies = ch, 0
		}
		if chDies++; chDies > 1 {
			interleave = true
		}
		if nDie == len(d.scDieActs) {
			d.scDieActs = append(d.scDieActs, nil)
		}
		acts := d.scDieActs[nDie][:0]
		if planes <= 1 {
			for i := range bucket {
				acts = append(acts, activation{loc: bucket[i].Loc, ops: bucket[i : i+1 : i+1]})
			}
		} else {
			// Queue per plane, preserving arrival order; heads advance as
			// rounds consume them.
			for p := 0; p < planes; p++ {
				d.scPlane[p] = d.scPlane[p][:0]
				d.scPlaneHd[p] = 0
			}
			for _, op := range bucket {
				p := op.Loc.Plane % planes
				d.scPlane[p] = append(d.scPlane[p], op)
			}
			for {
				gstart := len(d.scGroups)
				var verb Op
				for p := 0; p < planes; p++ {
					if d.scPlaneHd[p] >= len(d.scPlane[p]) {
						continue
					}
					head := d.scPlane[p][d.scPlaneHd[p]]
					if len(d.scGroups) == gstart {
						verb = head.Op
					} else if head.Op != verb {
						continue // different verb cannot share an activation
					}
					d.scGroups = append(d.scGroups, head)
					d.scPlaneHd[p]++
				}
				if len(d.scGroups) == gstart {
					break
				}
				// The arena may regrow under later groups; earlier group
				// slices keep the copied-out old backing, which is fine —
				// groups are read-only for the rest of the request.
				group := d.scGroups[gstart:len(d.scGroups):len(d.scGroups)]
				acts = append(acts, activation{loc: group[0].Loc, ops: group})
			}
		}
		d.scDieActs[nDie] = acts
		nDie++
		if len(acts) > maxLen {
			maxLen = len(acts)
		}
	}

	out = d.scOut[:0]
	for i := 0; i < maxLen; i++ {
		for k := 0; k < nDie; k++ {
			if a := d.scDieActs[k]; i < len(a) {
				out = append(out, a[i])
			}
		}
	}
	d.scOut = out
	return out, interleave
}

// markChan records channel busy time for the utilization probes.
func (d *Device) markChan(c int, start, end sim.Time) {
	d.chCover[c].Add(start, end)
}

// markDie records die busy time: the die's package is busy, and so is the
// channel it hangs off (the "kept busy" union).
func (d *Device) markDie(c, die int, start, end sim.Time) {
	d.chCover[c].Add(start, end)
	d.pkgCover[c][d.Geo.Package(die)].Add(start, end)
}

// chargeDieWait charges the wait [from, start) on a die to cell contention,
// deduplicated against time already charged for that die.
func (d *Device) chargeDieWait(c, die int, from, start sim.Time) {
	mark := d.dieContMark[c][die]
	if from < mark {
		from = mark
	}
	if start > from {
		d.breakdown.CellContention += start - from
		d.dieContMark[c][die] = start
	}
}

// chargeChanWait charges the wait [from, start) on a channel bus to channel
// contention, deduplicated against time already charged for that channel.
func (d *Device) chargeChanWait(c int, from, start sim.Time) {
	mark := d.chContMark[c]
	if from < mark {
		from = mark
	}
	if start > from {
		d.breakdown.ChannelContention += start - from
		d.chContMark[c] = start
	}
}

// attEntryWait attributes a chain's entry die-wait, splitting out the
// portion induced by this request's own collection service on the die (an
// exact re-labeling: the two segments sum to the original wait). GC chains
// never split against themselves — their whole chain folds on commit.
func (d *Device) attEntryWait(dieIdx int, wait sim.Time) {
	if wait <= 0 {
		return
	}
	if gc := d.attGCSvc[dieIdx]; gc > 0 && !d.attActGC {
		if gc > wait {
			gc = wait
		}
		d.att.Seg(attrib.GC, gc)
		wait -= gc
	}
	d.att.Seg(attrib.DieWait, wait)
}

// execActivation schedules one cell activation (1..Planes page ops on a
// single die) and returns its completion time, accumulating the six-state
// breakdown along the way.
func (d *Device) execActivation(issue sim.Time, a activation) sim.Time {
	ch := &d.chanBus[a.loc.Channel]
	die := &d.dies[a.loc.Channel][a.loc.Die]
	cmd := d.Bus.CommandTime()
	reg := d.regTime()
	xfer := d.Bus.TransferTime(d.Cell.PageSize)
	dieIdx := a.loc.Channel*d.Geo.DiesPerChannel() + a.loc.Die

	// Trace tracks: one "thread" per die and per channel bus. Names are
	// built only when a live probe will consume the spans.
	probing := d.probe.Enabled()
	var dieTrack, busTrack string
	if probing {
		dieTrack = fmt.Sprintf("ch%02d/die%02d", a.loc.Channel, a.loc.Die)
		busTrack = fmt.Sprintf("ch%02d/bus", a.loc.Channel)
	}
	attributing := d.att.DeviceActive()
	// All-GC activations bank their die occupancy so that later host chains
	// in the same request can re-label the wait they induce (attEntryWait).
	gcAcc := attributing && d.attActGC

	switch a.ops[0].Op {
	case OpRead:
		// Command/address cycles reach the die through the channel; they are
		// a dozen bus clocks, so they are folded into the die's occupancy
		// (booking 30 ns slots on the shared-bus horizon out of time order
		// would spuriously serialize the dies).
		d.breakdown.ChannelBus += cmd
		// Sensing on the die (one tR regardless of merged plane count).
		as, ae := die.Acquire(issue, cmd+d.Cell.ReadLatency)
		d.chargeDieWait(a.loc.Channel, a.loc.Die, issue, as)
		d.breakdown.CellActivation += d.Cell.ReadLatency
		d.markDie(a.loc.Channel, a.loc.Die, as, ae)
		if attributing {
			d.attEntryWait(dieIdx, as-issue)
		}
		d.att.Seg(attrib.DieService, ae-as)
		if gcAcc {
			d.attGCSvc[dieIdx] += ae - as
		}
		if probing {
			d.probe.Span(obs.LayerNVM, dieTrack, "sense", as, ae)
		}
		// Read-retry: when the ECC budget of any merged page needs stepped
		// re-senses, the die re-runs the sense that many times before the
		// data can stage out. Each step costs a full command+tR.
		if d.faults != nil {
			retries := 0
			for _, op := range a.ops {
				if rr := d.faults.ReadPage(op.PPN); rr.Retries > retries {
					retries = rr.Retries
				}
			}
			if retries > 0 {
				step := sim.Time(retries) * (cmd + d.Cell.ReadLatency)
				rs, re := die.Acquire(ae, step)
				d.chargeDieWait(a.loc.Channel, a.loc.Die, ae, rs)
				d.breakdown.CellActivation += step
				d.markDie(a.loc.Channel, a.loc.Die, rs, re)
				d.hRetry.Observe(step)
				d.att.Seg(attrib.DieWait, rs-ae)
				d.att.Seg(attrib.Retry, re-rs)
				if gcAcc {
					d.attGCSvc[dieIdx] += re - rs
				}
				if probing {
					d.probe.Span(obs.LayerNVM, dieTrack, "read-retry", rs, re,
						obs.Attr{Key: "retries", Value: retries})
				}
				ae = re
			}
		}
		// Per merged page: register staging then data-out then DMA. In cache
		// mode the staging drains from the secondary register, leaving the
		// die free to sense the next page immediately.
		//
		// For attribution the critical page is the one completing the
		// activation (the first page reaching the maximum DMA end, matching
		// sim.MaxTime keeping the first maximum); its chain from the
		// post-sense instant — staging, bus wait, bus transfer, host-link
		// time — telescopes exactly to the activation's completion. Staging
		// is contiguous within an activation (the die horizon equals the
		// previous staging's end, trivially so in cache mode), so the
		// critical page's staging total is just its staging end minus ae.
		end := ae
		cursor := ae
		var critStage, critBusW, critBusX, critLink sim.Time
		critEnd := ae
		for range a.ops {
			var rs, re sim.Time
			if d.cacheMode {
				rs, re = cursor, cursor+reg
			} else {
				rs, re = die.Acquire(cursor, reg)
				if gcAcc {
					d.attGCSvc[dieIdx] += re - rs
				}
			}
			d.breakdown.FlashBus += reg
			d.markDie(a.loc.Channel, a.loc.Die, rs, re)
			xs, xe := ch.Acquire(re, xfer)
			d.chargeChanWait(a.loc.Channel, re, xs)
			d.breakdown.ChannelBus += xfer
			d.markChan(a.loc.Channel, xs, xe)
			if probing {
				d.probe.Span(obs.LayerNVM, dieTrack, "stage", rs, re)
				d.probe.Span(obs.LayerNVM, busTrack, "xfer", xs, xe)
			}
			de := d.link.Transfer(xe, d.Cell.PageSize)
			d.breakdown.NonOverlappedDMA += de - xe
			if attributing && de > critEnd {
				critEnd = de
				critStage = re - ae
				critBusW = xs - re
				critBusX = xe - xs
				critLink = de - xe
			}
			cursor = re
			end = sim.MaxTime(end, de)
			d.cBytesRd.Add(d.Cell.PageSize)
			d.cReads.Inc()
		}
		if attributing && critEnd > ae {
			d.att.Seg(attrib.DieService, critStage)
			d.att.Seg(attrib.BusWait, critBusW)
			d.att.Seg(attrib.BusXfer, critBusX)
			// The host-link time splits into pure wire time and queueing
			// behind other transfers; for multi-stage Chain links the wire
			// bound is the bottleneck stage's, so the split (only) is
			// approximate there — the sum stays exact.
			wire := sim.DurationForBytes(d.Cell.PageSize, d.link.BytesPerSec())
			if wire > critLink {
				wire = critLink
			}
			d.att.Seg(attrib.LinkXfer, wire)
			d.att.Seg(attrib.LinkWait, critLink-wire)
		}
		return end

	case OpProgram:
		// Host data lands in the controller first.
		dmaEnd := issue
		for range a.ops {
			dmaEnd = d.link.Transfer(dmaEnd, d.Cell.PageSize)
		}
		d.breakdown.NonOverlappedDMA += dmaEnd - issue
		if attributing {
			// Host DMA: pure wire time for the payload, the rest is
			// queueing behind other transfers on the shared link.
			total := dmaEnd - issue
			wire := sim.Time(len(a.ops)) * sim.DurationForBytes(d.Cell.PageSize, d.link.BytesPerSec())
			if wire > total {
				wire = total
			}
			d.att.Seg(attrib.LinkXfer, wire)
			d.att.Seg(attrib.LinkWait, total-wire)
			d.att.Seg(attrib.BusXfer, cmd)
		}
		// Command/address cycles are folded into the first data-in transfer
		// (see the read path for why they do not book the bus horizon).
		d.breakdown.ChannelBus += cmd
		cursor := dmaEnd + cmd
		for range a.ops {
			xs, xe := ch.Acquire(cursor, xfer)
			d.chargeChanWait(a.loc.Channel, cursor, xs)
			d.breakdown.ChannelBus += xfer
			d.markChan(a.loc.Channel, xs, xe)
			d.att.Seg(attrib.BusWait, xs-cursor)
			d.att.Seg(attrib.BusXfer, xe-xs)
			rs, re := die.Acquire(xe, reg)
			if gcAcc {
				d.attGCSvc[dieIdx] += re - rs
			}
			d.breakdown.FlashBus += reg
			d.markDie(a.loc.Channel, a.loc.Die, rs, re)
			if probing {
				d.probe.Span(obs.LayerNVM, busTrack, "xfer", xs, xe)
				d.probe.Span(obs.LayerNVM, dieTrack, "stage", rs, re)
			}
			cursor = xe
			d.cBytesWr.Add(d.Cell.PageSize)
			d.cProgs.Inc()
		}
		// One program covers all merged planes.
		lat := d.Cell.ProgramLatency(d.rng)
		ps, pe := die.Acquire(cursor, lat)
		d.chargeDieWait(a.loc.Channel, a.loc.Die, cursor, ps)
		d.breakdown.CellActivation += lat
		d.markDie(a.loc.Channel, a.loc.Die, ps, pe)
		// The wait covers the register-staging drain of this activation's
		// own data-in as well as earlier activations on the die.
		if attributing {
			d.attEntryWait(dieIdx, ps-cursor)
		}
		d.att.Seg(attrib.DieService, pe-ps)
		if gcAcc {
			d.attGCSvc[dieIdx] += pe - ps
		}
		if probing {
			d.probe.Span(obs.LayerNVM, dieTrack, "program", ps, pe)
		}
		if d.faults != nil || d.media != nil {
			for _, op := range a.ops {
				if d.faults.Crashed() {
					break
				}
				if d.faults != nil && d.faults.CrashOnOp(pe) {
					// Power cut mid-program: the in-flight page is torn
					// (payload garbage, OOB tags unlanded); later planes
					// of the activation never started.
					if d.media != nil {
						d.media.MediaProgram(op, true)
					}
					break
				}
				if d.media != nil {
					d.media.MediaProgram(op, false)
				}
				if d.faults != nil {
					d.faults.OnProgram(op.PPN)
				}
			}
		}
		return pe

	case OpErase:
		d.breakdown.ChannelBus += cmd
		es, ee := die.Acquire(issue, cmd+d.Cell.EraseLatency)
		d.chargeDieWait(a.loc.Channel, a.loc.Die, issue, es)
		d.breakdown.CellActivation += d.Cell.EraseLatency
		d.markDie(a.loc.Channel, a.loc.Die, es, ee)
		if attributing {
			d.attEntryWait(dieIdx, es-issue)
		}
		d.att.Seg(attrib.DieService, ee-es)
		if gcAcc {
			d.attGCSvc[dieIdx] += ee - es
		}
		if probing {
			d.probe.Span(obs.LayerNVM, dieTrack, "erase", es, ee)
		}
		for _, op := range a.ops {
			if d.faults.Crashed() {
				break
			}
			if d.faults != nil && d.faults.CrashOnOp(ee) {
				// Power cut mid-erase: the pulse already destroyed the
				// block's contents, so the media still clears it, but the
				// wear bump and fault report never happen.
				if d.media != nil {
					d.media.MediaErase(op, true)
				}
				break
			}
			d.cErases.Inc()
			key := Location{Channel: op.Loc.Channel, Die: op.Loc.Die, Plane: op.Loc.Plane}
			d.eraseCount[key]++
			if d.media != nil {
				d.media.MediaErase(op, false)
			}
			if d.faults != nil {
				d.faults.OnErase(op.PPN)
			}
		}
		return ee

	default:
		panic(fmt.Sprintf("nvm: unknown op %v", a.ops[0].Op))
	}
}

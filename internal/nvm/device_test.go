package nvm

import (
	"testing"

	"oocnvm/internal/sim"
)

// fastLink is an instantaneous host path for isolating media behaviour.
type fastLink struct{}

func (fastLink) Transfer(at sim.Time, n int64) sim.Time { return at }
func (fastLink) RequestOverhead() sim.Time              { return 0 }
func (fastLink) BytesPerSec() float64                   { return 1e18 }

// slowLink is a serializing link with a fixed rate.
type slowLink struct {
	tl  sim.Timeline
	bps float64
}

func (l *slowLink) Transfer(at sim.Time, n int64) sim.Time {
	_, end := l.tl.Acquire(at, sim.DurationForBytes(n, l.bps))
	return end
}
func (l *slowLink) RequestOverhead() sim.Time { return 0 }
func (l *slowLink) BytesPerSec() float64      { return l.bps }

func newTestDevice(t *testing.T, cell CellType, bus BusParams, link Link) *Device {
	t.Helper()
	d, err := NewDevice(PaperGeometry(), Params(cell), bus, link, 1)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func readOp(lpn int64, d *Device) PageOp {
	return PageOp{Op: OpRead, Loc: d.Geo.MapLogical(lpn, d.Cell.Planes)}
}

func seqReadOps(d *Device, pages int) []PageOp {
	ops := make([]PageOp, pages)
	for i := range ops {
		ops[i] = readOp(int64(i), d)
	}
	return ops
}

func TestNewDeviceRejectsNilLink(t *testing.T) {
	if _, err := NewDevice(PaperGeometry(), Params(SLC), ONFi3SDR(), nil, 0); err == nil {
		t.Fatal("nil link accepted")
	}
}

func TestNewDeviceRejectsBadGeometry(t *testing.T) {
	if _, err := NewDevice(Geometry{}, Params(SLC), ONFi3SDR(), fastLink{}, 0); err == nil {
		t.Fatal("zero geometry accepted")
	}
}

func TestSubmitEmpty(t *testing.T) {
	d := newTestDevice(t, SLC, ONFi3SDR(), fastLink{})
	if got := d.Submit(42, nil); got != 42 {
		t.Fatalf("empty submit = %v, want 42", got)
	}
}

func TestSingleReadLatency(t *testing.T) {
	d := newTestDevice(t, SLC, ONFi3SDR(), fastLink{})
	end := d.Submit(0, []PageOp{readOp(0, d)})
	// cmd (30ns) + tR (25us) + register staging + channel transfer (5.12us).
	min := 25 * sim.Microsecond
	max := 35 * sim.Microsecond
	if end < min || end > max {
		t.Fatalf("single page read completed at %v, want within [%v, %v]", end, min, max)
	}
	st := d.Stats()
	if st.Reads != 1 || st.BytesRead != d.Cell.PageSize {
		t.Fatalf("stats: %d reads, %d bytes", st.Reads, st.BytesRead)
	}
}

func TestReadsOnDistinctChannelsRunInParallel(t *testing.T) {
	d := newTestDevice(t, SLC, ONFi3SDR(), fastLink{})
	one := d.Submit(0, []PageOp{readOp(0, d)})
	d2 := newTestDevice(t, SLC, ONFi3SDR(), fastLink{})
	// Eight pages, one per channel, issued together.
	both := d2.Submit(0, seqReadOps(d2, 8))
	if both > one+one/2 {
		t.Fatalf("8 channel-parallel reads took %v vs %v for one page", both, one)
	}
}

func TestReadsOnSameDieSerialize(t *testing.T) {
	d := newTestDevice(t, TLC, ONFi3SDR(), fastLink{}) // TLC: 1 plane, no merging
	loc := d.Geo.MapLogical(0, 1)
	ops := []PageOp{{Op: OpRead, Loc: loc}, {Op: OpRead, Loc: loc}}
	end := d.Submit(0, ops)
	if end < 2*d.Cell.ReadLatency {
		t.Fatalf("two reads on one die finished in %v, below 2x tR = %v", end, 2*d.Cell.ReadLatency)
	}
}

func TestMultiplaneMergingSharesOneSensing(t *testing.T) {
	d := newTestDevice(t, SLC, ONFi3SDR(), fastLink{})
	// Both planes of channel 0, die 0: lpn 0 and lpn C (plane stride).
	ops := []PageOp{readOp(0, d), readOp(int64(d.Geo.Channels), d)}
	d.Submit(0, ops)
	st := d.Stats()
	if st.Breakdown.CellActivation != d.Cell.ReadLatency {
		t.Fatalf("merged multi-plane read sensed %v, want one tR = %v",
			st.Breakdown.CellActivation, d.Cell.ReadLatency)
	}
	if st.Reads != 2 {
		t.Fatalf("reads = %d, want 2", st.Reads)
	}
}

func TestNoMultiplaneForSinglePlaneMedium(t *testing.T) {
	d := newTestDevice(t, TLC, ONFi3SDR(), fastLink{})
	loc0 := d.Geo.MapLogical(0, 1)
	loc1 := loc0
	loc1.Plane = 1 // forced; TLC mod-folds this back to plane 0
	d.Submit(0, []PageOp{{Op: OpRead, Loc: loc0}, {Op: OpRead, Loc: loc1}})
	st := d.Stats()
	if st.Breakdown.CellActivation != 2*d.Cell.ReadLatency {
		t.Fatalf("TLC sensed %v, want two full tR", st.Breakdown.CellActivation)
	}
}

func TestPALClassification(t *testing.T) {
	cases := []struct {
		name string
		ops  func(d *Device) []PageOp
		want PAL
	}{
		{"single page", func(d *Device) []PageOp {
			return []PageOp{readOp(0, d)}
		}, PAL1},
		{"two dies one channel", func(d *Device) []PageOp {
			a := Location{Channel: 0, Die: 0, Plane: 0}
			b := Location{Channel: 0, Die: 1, Plane: 0}
			return []PageOp{{Op: OpRead, Loc: a}, {Op: OpRead, Loc: b}}
		}, PAL2},
		{"both planes one die", func(d *Device) []PageOp {
			a := Location{Channel: 0, Die: 0, Plane: 0}
			b := Location{Channel: 0, Die: 0, Plane: 1}
			return []PageOp{{Op: OpRead, Loc: a}, {Op: OpRead, Loc: b}}
		}, PAL3},
		{"planes and dies", func(d *Device) []PageOp {
			return []PageOp{
				{Op: OpRead, Loc: Location{Channel: 0, Die: 0, Plane: 0}},
				{Op: OpRead, Loc: Location{Channel: 0, Die: 0, Plane: 1}},
				{Op: OpRead, Loc: Location{Channel: 0, Die: 1, Plane: 0}},
			}
		}, PAL4},
	}
	for _, c := range cases {
		d := newTestDevice(t, SLC, ONFi3SDR(), fastLink{})
		d.Submit(0, c.ops(d))
		h := d.Stats().PAL
		if h[c.want-1] != 1 || h.Total() != 1 {
			t.Errorf("%s: histogram %v, want one request at %v", c.name, h, c.want)
		}
	}
}

func TestProgramPath(t *testing.T) {
	d := newTestDevice(t, SLC, ONFi3SDR(), fastLink{})
	end := d.Submit(0, []PageOp{{Op: OpProgram, Loc: Location{}}})
	if end < d.Cell.ProgramLatencyMin {
		t.Fatalf("program completed in %v, below tPROG %v", end, d.Cell.ProgramLatencyMin)
	}
	st := d.Stats()
	if st.Programs != 1 || st.BytesWritten != d.Cell.PageSize {
		t.Fatalf("stats: %d programs, %d bytes", st.Programs, st.BytesWritten)
	}
	if st.Breakdown.CellActivation < d.Cell.ProgramLatencyMin {
		t.Fatal("program time not accounted as cell activation")
	}
}

func TestErasePath(t *testing.T) {
	d := newTestDevice(t, SLC, ONFi3SDR(), fastLink{})
	loc := Location{Channel: 3, Die: 5, Plane: 1}
	end := d.Submit(0, []PageOp{{Op: OpErase, Loc: loc}})
	if end < d.Cell.EraseLatency {
		t.Fatalf("erase completed in %v, below tBERS %v", end, d.Cell.EraseLatency)
	}
	if d.Stats().Erases != 1 {
		t.Fatal("erase not counted")
	}
	if d.EraseCount(loc) != 1 {
		t.Fatal("wear accounting missed the erase")
	}
	if d.EraseCount(Location{Channel: 0, Die: 0}) != 0 {
		t.Fatal("wear accounting leaked to other locations")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (sim.Time, Stats) {
		d := newTestDevice(t, MLC, ONFi3SDR(), fastLink{})
		var end sim.Time
		for i := 0; i < 10; i++ {
			ops := seqReadOps(d, 64)
			ops = append(ops, PageOp{Op: OpProgram, Loc: d.Geo.MapLogical(int64(i), d.Cell.Planes)})
			end = d.Submit(sim.Time(i)*sim.Microsecond, ops)
		}
		return end, d.Stats()
	}
	e1, s1 := run()
	e2, s2 := run()
	if e1 != e2 || s1 != s2 {
		t.Fatal("identical runs diverged")
	}
}

func TestSequentialReadHitsBusLimit(t *testing.T) {
	// A large page-striped sequential read with an infinite host link should
	// saturate the aggregate channel bus: 8 x 400 MB/s = 3.2 GB/s for SLC.
	d := newTestDevice(t, SLC, ONFi3SDR(), fastLink{})
	const total = 64 << 20
	pages := int(total / d.Cell.PageSize)
	var end sim.Time
	const chunk = 4096
	for i := 0; i < pages; i += chunk {
		ops := make([]PageOp, 0, chunk)
		for j := i; j < i+chunk && j < pages; j++ {
			ops = append(ops, readOp(int64(j), d))
		}
		end = d.Submit(0, ops)
	}
	bw := sim.Rate(total, end)
	if bw < 2.8e9 || bw > 3.3e9 {
		t.Fatalf("sequential SLC bandwidth %.2f GB/s, want ~3.2 (bus limit)", bw/1e9)
	}
}

func TestSlowLinkDominatesBreakdown(t *testing.T) {
	link := &slowLink{bps: 100e6} // 100 MB/s: far below the media
	d := newTestDevice(t, SLC, ONFi3SDR(), link)
	for i := 0; i < 4; i++ {
		d.Submit(0, seqReadOps(d, 1024))
	}
	p := d.Stats().Breakdown.Percentages()
	if p[0] < 0.5 {
		t.Fatalf("non-overlapped DMA share %.2f, want dominant behind a slow link", p[0])
	}
}

func TestUtilizationBounds(t *testing.T) {
	d := newTestDevice(t, TLC, ONFi3SDR(), fastLink{})
	d.Submit(0, seqReadOps(d, 2048))
	st := d.Stats()
	for name, u := range map[string]float64{
		"channel": st.ChannelUtilization,
		"package": st.PackageUtilization,
		"bus":     st.BusOccupancy,
	} {
		if u < 0 || u > 1 {
			t.Errorf("%s utilization %v outside [0,1]", name, u)
		}
	}
	if st.ChannelUtilization < st.PackageUtilization {
		t.Error("channel 'kept busy' union cannot be below package union")
	}
}

func TestIdleDeviceStats(t *testing.T) {
	d := newTestDevice(t, SLC, ONFi3SDR(), fastLink{})
	st := d.Stats()
	if st.Span != 0 || st.ChannelUtilization != 0 || st.PackageUtilization != 0 {
		t.Fatalf("idle device reports activity: %+v", st)
	}
	if d.Bandwidth() != 0 {
		t.Fatal("idle device reports bandwidth")
	}
}

func TestIdealReadBandwidth(t *testing.T) {
	d := newTestDevice(t, SLC, ONFi3SDR(), fastLink{})
	// SLC at SDR is bus-limited: ideal = 8 channels x 400 MB/s.
	if got := d.IdealReadBandwidth(); got != 3.2e9 {
		t.Fatalf("SLC ideal = %v, want 3.2e9", got)
	}
	// TLC at the DDR bus is cell-limited: below the 25.6 GB/s bus aggregate.
	dt := newTestDevice(t, TLC, FutureDDR(), fastLink{})
	got := dt.IdealReadBandwidth()
	if got >= 25.6e9 || got < 5e9 {
		t.Fatalf("TLC ideal on DDR = %.2f GB/s, want cell-limited in (5, 25.6)", got/1e9)
	}
}

func TestRequestOverheadCharged(t *testing.T) {
	overhead := 8 * sim.Microsecond
	link := overheadLink{oh: overhead}
	d, err := NewDevice(PaperGeometry(), Params(SLC), ONFi3SDR(), link, 1)
	if err != nil {
		t.Fatal(err)
	}
	d.Submit(0, []PageOp{readOp(0, d)})
	if d.Stats().Breakdown.NonOverlappedDMA < overhead {
		t.Fatal("per-request link overhead not charged to DMA")
	}
}

type overheadLink struct{ oh sim.Time }

func (l overheadLink) Transfer(at sim.Time, n int64) sim.Time { return at }
func (l overheadLink) RequestOverhead() sim.Time              { return l.oh }
func (l overheadLink) BytesPerSec() float64                   { return 1e18 }

func TestOpString(t *testing.T) {
	if OpRead.String() != "read" || OpProgram.String() != "program" || OpErase.String() != "erase" {
		t.Fatal("op names wrong")
	}
	if Op(9).String() != "Op(9)" {
		t.Fatal("unknown op should render its number")
	}
}

package nvm

import "oocnvm/internal/sim"

// Breakdown accumulates time spent in the six operation states the paper
// decomposes device activity into (§4.5). Values are summed over all page
// operations; Percentages normalizes them for the Figure 10a/10c charts.
type Breakdown struct {
	NonOverlappedDMA  sim.Time // SSD<->host movement not hidden behind media work
	FlashBus          sim.Time // register/SRAM <-> channel staging inside a package
	ChannelBus        sim.Time // data movement on the shared channel data bus
	CellContention    sim.Time // waiting on a die already serving another request
	ChannelContention sim.Time // waiting on a channel bus already occupied
	CellActivation    sim.Time // the read/program/erase on the cell array itself
}

// Add accumulates o into b.
func (b *Breakdown) Add(o Breakdown) {
	b.NonOverlappedDMA += o.NonOverlappedDMA
	b.FlashBus += o.FlashBus
	b.ChannelBus += o.ChannelBus
	b.CellContention += o.CellContention
	b.ChannelContention += o.ChannelContention
	b.CellActivation += o.CellActivation
}

// Total returns the sum over all six states.
func (b Breakdown) Total() sim.Time {
	return b.NonOverlappedDMA + b.FlashBus + b.ChannelBus +
		b.CellContention + b.ChannelContention + b.CellActivation
}

// BreakdownLabels names the six states in the paper's legend order.
var BreakdownLabels = []string{
	"Non-overlapped DMA",
	"Flash bus activation",
	"Channel activation",
	"Cell contention",
	"Channel contention",
	"Cell activation",
}

// Percentages returns the six states as fractions of the total, in
// BreakdownLabels order. A zero total yields all zeros.
func (b Breakdown) Percentages() [6]float64 {
	total := float64(b.Total())
	if total == 0 {
		return [6]float64{}
	}
	return [6]float64{
		float64(b.NonOverlappedDMA) / total,
		float64(b.FlashBus) / total,
		float64(b.ChannelBus) / total,
		float64(b.CellContention) / total,
		float64(b.ChannelContention) / total,
		float64(b.CellActivation) / total,
	}
}

// PAL is the parallelism level a request achieved (paper §4.5):
//
//	PAL1: channel striping/pipelining only
//	PAL2: die (bank) interleaving on top of PAL1
//	PAL3: multi-plane operation on top of PAL1
//	PAL4: all of the above
type PAL int

// Parallelism levels.
const (
	PAL1 PAL = iota + 1
	PAL2
	PAL3
	PAL4
)

// String returns "PAL1".."PAL4".
func (p PAL) String() string {
	names := [...]string{"PAL?", "PAL1", "PAL2", "PAL3", "PAL4"}
	if p < PAL1 || p > PAL4 {
		return names[0]
	}
	return names[p]
}

// PALHistogram counts requests by achieved parallelism level.
type PALHistogram [4]int64

// Record tallies one request at level p.
func (h *PALHistogram) Record(p PAL) {
	if p >= PAL1 && p <= PAL4 {
		h[p-1]++
	}
}

// Total returns the number of recorded requests.
func (h PALHistogram) Total() int64 {
	var t int64
	for _, v := range h {
		t += v
	}
	return t
}

// Fractions returns the PAL1..PAL4 shares; all zeros when nothing recorded.
func (h PALHistogram) Fractions() [4]float64 {
	t := float64(h.Total())
	if t == 0 {
		return [4]float64{}
	}
	var f [4]float64
	for i, v := range h {
		f[i] = float64(v) / t
	}
	return f
}

package nvm

import "fmt"

// This file covers the paper's §2.3 background machinery that the main
// experiments only imply: the NVM interface-generation ladder behind the
// §3.3 bus exploration, and endurance/lifetime accounting for the
// wear-limited media ("PCM offers 10^3 to 10^5 times better endurance than
// NAND flash").

// BusLadder returns the interface generations from early ONFi to the
// paper's proposed DDR3-1600-like future bus, in chronological order.
func BusLadder() []BusParams {
	return []BusParams{
		{Name: "ONFi1-SDR-50", ClockMHz: 50, DDR: false, WidthBits: 8},
		{Name: "ONFi2-DDR-133", ClockMHz: 133, DDR: true, WidthBits: 8},
		ONFi3SDR(),
		{Name: "ONFi3-DDR-400", ClockMHz: 400, DDR: true, WidthBits: 8},
		FutureDDR(),
	}
}

// Lifetime estimates how long a device of the given capacity survives a
// sustained host write rate, accounting for the FTL's write amplification:
//
//	years = capacity × endurance / (dailyWrites × writeAmp × 365)
//
// A writeAmp of 1 means UFS-style host-managed writes with no relocation.
func Lifetime(cell CellParams, capacityBytes, dailyWriteBytes int64, writeAmp float64) (years float64, err error) {
	if capacityBytes <= 0 || dailyWriteBytes <= 0 {
		return 0, fmt.Errorf("nvm: lifetime needs positive capacity and write volume")
	}
	if writeAmp < 1 {
		return 0, fmt.Errorf("nvm: write amplification %v below 1", writeAmp)
	}
	totalWritable := float64(capacityBytes) * float64(cell.Endurance)
	perYear := float64(dailyWriteBytes) * writeAmp * 365
	return totalWritable / perYear, nil
}

// DrivesPerYearForWorkload inverts Lifetime: how many devices per year a
// write workload burns through.
func DrivesPerYearForWorkload(cell CellParams, capacityBytes, dailyWriteBytes int64, writeAmp float64) (float64, error) {
	years, err := Lifetime(cell, capacityBytes, dailyWriteBytes, writeAmp)
	if err != nil {
		return 0, err
	}
	if years <= 0 {
		return 0, fmt.Errorf("nvm: degenerate lifetime")
	}
	return 1 / years, nil
}

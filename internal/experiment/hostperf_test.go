package experiment

import (
	"fmt"
	"testing"

	"oocnvm/internal/nvm"
	"oocnvm/internal/obs/hostperf"
)

// runAttributed evaluates one TestOptions cell under a fresh host collector
// and returns its summary.
func runAttributed(t *testing.T) *hostperf.Summary {
	t.Helper()
	host := hostperf.NewCollector()
	t.Cleanup(hostperf.DisableAttrib)
	opt := TestOptions()
	opt.MeasureRemaining = false
	opt.Host = host
	cfg, err := FindConfig("CNL-EXT4")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(cfg, nvm.TLC, opt); err != nil {
		t.Fatal(err)
	}
	return host.Summary()
}

// TestHostPerfAttributionCoverage checks the books balance: the per-site
// counts plus the unattributed remainder must sum exactly to the run total,
// and the unattributed remainder must stay within an absolute floor. (The
// old >=95%-of-total fraction criterion stopped being meaningful once the
// free-listed lifecycle removed ~95% of the run's allocations: the
// remainder is now runtime/testing background noise against a tiny total,
// so the guard pins it absolutely instead.)
func TestHostPerfAttributionCoverage(t *testing.T) {
	s := runAttributed(t)
	if s.Total.AllocObjs == 0 {
		t.Fatal("run allocated nothing — collector broken")
	}
	var sum, unattributed int64
	for _, sc := range s.Sites {
		sum += sc.Objs
		if sc.Name == "unattributed" {
			unattributed = sc.Objs
		}
	}
	if uint64(sum) != s.Total.AllocObjs {
		t.Errorf("site sum %d != total %d (attribution must be exact)", sum, s.Total.AllocObjs)
	}
	// Measured ~0.7k unattributed objects per cell (runtime internals plus
	// test-harness work outside the instrumented brackets); the ceiling has
	// ~3x headroom. If this fails, a new allocation site appeared outside
	// the hostperf brackets — instrument it or pool it.
	const unattributedBudget = 2500
	if unattributed > unattributedBudget {
		t.Errorf("unattributed allocations %d exceed budget %d — a hot site is missing its hostperf bracket\n%s",
			unattributed, unattributedBudget, s.FormatTable())
	}
	// The run records exactly one phase, named after its matrix cell.
	if len(s.Phases) != 1 || s.Phases[0].Name != "cell CNL-EXT4/TLC" {
		t.Errorf("phases = %+v, want one 'cell CNL-EXT4/TLC'", s.Phases)
	}
	if s.Phases[0].AllocObjs == 0 || s.Phases[0].Wall <= 0 {
		t.Errorf("phase cost empty: %+v", s.Phases[0])
	}
}

// siteBudgets is the per-site allocation budget table for one TestOptions
// evaluation cell with the pooled lifecycle engine. Each ceiling carries
// roughly 2x headroom over the measured steady number; the zeros-by-design
// sites (their storage is recycled) get small slack for cold-path rarities.
// A failure names the offending subsystem so the regression is immediately
// localized — don't raise a ceiling without explaining in the PR where the
// new allocations come from.
var siteBudgets = []struct {
	site   hostperf.Site
	budget int64
}{
	{hostperf.SiteNVMSched, 1500},  // scratch warm-up: die buckets, plane queues, group arena
	{hostperf.SiteSSDRequest, 128}, // translation slices come from the free list after warm-up
	{hostperf.SiteObsSpan, 128},    // span storage is recycled via Tracer.Reset
	{hostperf.SiteAttrib, 128},     // recorder segments are recycled via Recorder.Reset
	{hostperf.SiteSimWindow, 64},   // heap preallocated to queue depth in NewWindow
}

// TestPerSiteAllocBudget pins the allocation budget of every instrumented
// subsystem over a full evaluation cell, plus the cell's overall ceiling.
// This is the table the zero-alloc engine is graded against: before the
// free-listed lifecycle the same cell allocated ~101k objects with nvm-sched
// alone charging ~93k; the pooled engine holds the whole run under a few
// thousand.
func TestPerSiteAllocBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation budget table runs a full evaluation cell")
	}
	s := runAttributed(t)
	const totalBudget = 20_000 // measured ~5.3k objects for the 96 MiB TestOptions cell
	if s.Total.AllocObjs > totalBudget {
		t.Errorf("evaluation cell allocated %d objects, budget %d\n%s",
			s.Total.AllocObjs, totalBudget, s.FormatTable())
	}
	byName := map[string]int64{}
	for _, sc := range s.Sites {
		byName[sc.Name] = sc.Objs
	}
	for _, row := range siteBudgets {
		name := row.site.String()
		got, ok := byName[name]
		if !ok {
			t.Errorf("site %q missing from summary", name)
			continue
		}
		if got > row.budget {
			t.Errorf("site %s allocated %d objects, budget %d — this subsystem regressed\n%s",
				name, got, row.budget, s.FormatTable())
		}
	}
}

// TestMatrixSerializesUnderAttribution proves measurement mode keeps matrix
// results identical to the concurrent default: same seed, same cells, same
// measurements, with every cell phase recorded.
func TestMatrixSerializesUnderAttribution(t *testing.T) {
	opt := TestOptions()
	opt.MeasureRemaining = false
	configs := FileSystemConfigs()[:2]
	cells := []nvm.CellType{nvm.TLC}

	plain, err := Matrix(configs, cells, opt)
	if err != nil {
		t.Fatal(err)
	}

	host := hostperf.NewCollector()
	t.Cleanup(hostperf.DisableAttrib)
	opt.Host = host
	serial, err := Matrix(configs, cells, opt)
	if err != nil {
		t.Fatal(err)
	}

	if len(plain) != len(serial) {
		t.Fatalf("matrix sizes differ: %d vs %d", len(plain), len(serial))
	}
	for i := range plain {
		if plain[i].AchievedMBps() != serial[i].AchievedMBps() {
			t.Errorf("cell %d: achieved %v (concurrent) != %v (attributed)",
				i, plain[i].AchievedMBps(), serial[i].AchievedMBps())
		}
	}
	s := host.Summary()
	if len(s.Phases) != len(configs)*len(cells) {
		t.Errorf("recorded %d phases, want %d", len(s.Phases), len(configs)*len(cells))
	}
	want := map[string]bool{}
	for _, cfg := range configs {
		for _, cell := range cells {
			want[fmt.Sprintf("cell %s/%s", cfg.Name, cell)] = true
		}
	}
	for _, p := range s.Phases {
		if !want[p.Name] {
			t.Errorf("unexpected phase %q", p.Name)
		}
	}
}

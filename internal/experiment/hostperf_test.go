package experiment

import (
	"fmt"
	"testing"

	"oocnvm/internal/nvm"
	"oocnvm/internal/obs/hostperf"
)

// runAttributed evaluates one TestOptions cell under a fresh host collector
// and returns its summary.
func runAttributed(t *testing.T) *hostperf.Summary {
	t.Helper()
	host := hostperf.NewCollector()
	t.Cleanup(hostperf.DisableAttrib)
	opt := TestOptions()
	opt.MeasureRemaining = false
	opt.Host = host
	cfg, err := FindConfig("CNL-EXT4")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(cfg, nvm.TLC, opt); err != nil {
		t.Fatal(err)
	}
	return host.Summary()
}

// TestHostPerfAttributionCoverage is the acceptance check behind the 5%
// criterion: the instrumented sites plus the experiment-harness region must
// explain at least 95% of everything a full evaluation cell allocates, and
// the per-site counts must sum exactly to the run total (the unattributed
// remainder closes the books).
func TestHostPerfAttributionCoverage(t *testing.T) {
	s := runAttributed(t)
	if s.Total.AllocObjs == 0 {
		t.Fatal("run allocated nothing — collector broken")
	}
	if f := s.AttributedFraction(); f < 0.95 {
		t.Errorf("instrumented sites explain only %.1f%% of %d allocations, want >= 95%%\n%s",
			f*100, s.Total.AllocObjs, s.FormatTable())
	}
	var sum int64
	for _, sc := range s.Sites {
		sum += sc.Objs
	}
	if uint64(sum) != s.Total.AllocObjs {
		t.Errorf("site sum %d != total %d (attribution must be exact)", sum, s.Total.AllocObjs)
	}
	// The run records exactly one phase, named after its matrix cell.
	if len(s.Phases) != 1 || s.Phases[0].Name != "cell CNL-EXT4/TLC" {
		t.Errorf("phases = %+v, want one 'cell CNL-EXT4/TLC'", s.Phases)
	}
	if s.Phases[0].AllocObjs == 0 || s.Phases[0].Wall <= 0 {
		t.Errorf("phase cost empty: %+v", s.Phases[0])
	}
}

// TestAllocsPerRunGuard pins today's allocation budget of one TestOptions
// evaluation cell. The ceiling has ~40% headroom over the measured number;
// if this fails, a change added per-request allocations to the replay hot
// path — either remove them or consciously raise the budget here and in the
// PR description.
func TestAllocsPerRunGuard(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation guard runs a full evaluation cell")
	}
	s := runAttributed(t)
	const budget = 150_000 // measured ~101k objects for the 96 MiB TestOptions cell
	if s.Total.AllocObjs > budget {
		t.Errorf("evaluation cell allocated %d objects, budget %d\n%s",
			s.Total.AllocObjs, budget, s.FormatTable())
	}
	// The scheduler's plane-merge/die-bucket churn must stay the dominant
	// attributed site (ROADMAP item 1 targets exactly this); if dominance
	// moves, the attribution map is stale.
	if s.Sites[0].Name != "nvm-sched" {
		t.Errorf("dominant site %q (%.1f%%), want nvm-sched\n%s",
			s.Sites[0].Name, s.Sites[0].Share*100, s.FormatTable())
	}
}

// TestMatrixSerializesUnderAttribution proves measurement mode keeps matrix
// results identical to the concurrent default: same seed, same cells, same
// measurements, with every cell phase recorded.
func TestMatrixSerializesUnderAttribution(t *testing.T) {
	opt := TestOptions()
	opt.MeasureRemaining = false
	configs := FileSystemConfigs()[:2]
	cells := []nvm.CellType{nvm.TLC}

	plain, err := Matrix(configs, cells, opt)
	if err != nil {
		t.Fatal(err)
	}

	host := hostperf.NewCollector()
	t.Cleanup(hostperf.DisableAttrib)
	opt.Host = host
	serial, err := Matrix(configs, cells, opt)
	if err != nil {
		t.Fatal(err)
	}

	if len(plain) != len(serial) {
		t.Fatalf("matrix sizes differ: %d vs %d", len(plain), len(serial))
	}
	for i := range plain {
		if plain[i].AchievedMBps() != serial[i].AchievedMBps() {
			t.Errorf("cell %d: achieved %v (concurrent) != %v (attributed)",
				i, plain[i].AchievedMBps(), serial[i].AchievedMBps())
		}
	}
	s := host.Summary()
	if len(s.Phases) != len(configs)*len(cells) {
		t.Errorf("recorded %d phases, want %d", len(s.Phases), len(configs)*len(cells))
	}
	want := map[string]bool{}
	for _, cfg := range configs {
		for _, cell := range cells {
			want[fmt.Sprintf("cell %s/%s", cfg.Name, cell)] = true
		}
	}
	for _, p := range s.Phases {
		if !want[p.Name] {
			t.Errorf("unexpected phase %q", p.Name)
		}
	}
}

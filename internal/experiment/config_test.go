package experiment

import (
	"strings"
	"testing"

	"oocnvm/internal/nvm"
)

func TestTable2HasThirteenRows(t *testing.T) {
	rows := Table2()
	if len(rows) != 13 {
		t.Fatalf("Table 2 has %d rows, want 13", len(rows))
	}
	names := map[string]bool{}
	for _, c := range rows {
		if names[c.Name] {
			t.Errorf("duplicate config %q", c.Name)
		}
		names[c.Name] = true
	}
	for _, want := range []string{
		"ION-GPFS", "CNL-JFS", "CNL-BTRFS", "CNL-XFS", "CNL-REISERFS",
		"CNL-EXT2", "CNL-EXT3", "CNL-EXT4", "CNL-EXT4-L", "CNL-UFS",
		"CNL-BRIDGE-16", "CNL-NATIVE-8", "CNL-NATIVE-16",
	} {
		if !names[want] {
			t.Errorf("missing configuration %q", want)
		}
	}
}

func TestTable2HardwareColumns(t *testing.T) {
	// The hardware parameters of Table 2: baseline rows are bridged PCIe 2.0
	// x8 with the SDR bus; only the named rows diverge.
	for _, c := range Table2() {
		switch c.Name {
		case "CNL-BRIDGE-16":
			if !c.PCIe.Bridged || c.PCIe.Lanes != 16 || c.Bus.DDR {
				t.Errorf("%s hardware wrong: %+v %+v", c.Name, c.PCIe, c.Bus)
			}
		case "CNL-NATIVE-8":
			if c.PCIe.Bridged || c.PCIe.Lanes != 8 || !c.Bus.DDR {
				t.Errorf("%s hardware wrong: %+v %+v", c.Name, c.PCIe, c.Bus)
			}
		case "CNL-NATIVE-16":
			if c.PCIe.Bridged || c.PCIe.Lanes != 16 || !c.Bus.DDR {
				t.Errorf("%s hardware wrong: %+v %+v", c.Name, c.PCIe, c.Bus)
			}
		default:
			if !c.PCIe.Bridged || c.PCIe.Lanes != 8 || c.Bus.DDR {
				t.Errorf("%s must be bridged gen2 x8 SDR: %+v %+v", c.Name, c.PCIe, c.Bus)
			}
		}
		if c.Remote != (c.Name == "ION-GPFS") {
			t.Errorf("%s remote flag wrong", c.Name)
		}
	}
}

func TestFindConfig(t *testing.T) {
	c, err := FindConfig("CNL-UFS")
	if err != nil || c.Name != "CNL-UFS" {
		t.Fatalf("FindConfig: %v %v", c, err)
	}
	if _, err := FindConfig("NOPE"); err == nil {
		t.Fatal("unknown name accepted")
	}
}

func TestBuildFSKinds(t *testing.T) {
	for _, c := range Table2() {
		fsys, err := c.buildFS(1<<30, 1)
		if err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
		if fsys.ReadAhead() <= 0 {
			t.Fatalf("%s: no readahead window", c.Name)
		}
	}
}

func TestBuildLinkKinds(t *testing.T) {
	ion := IONGPFS().buildLink()
	local := CNLUFS().buildLink()
	if ion.BytesPerSec() >= local.BytesPerSec() {
		t.Fatal("remote link not slower than local")
	}
}

func TestRenderedTables(t *testing.T) {
	opt := TestOptions()
	opt.MeasureRemaining = true
	opt.Workload.MatrixBytes = 32 << 20
	cfgs := []Config{IONGPFS(), CNLUFS()}
	cells := []nvm.CellType{nvm.TLC, nvm.PCM}
	ms, err := Matrix(cfgs, cells, opt)
	if err != nil {
		t.Fatal(err)
	}
	for name, s := range map[string]string{
		"bandwidth": FormatBandwidthTable("X", ms, cfgs, cells),
		"remaining": FormatRemainingTable("X", ms, cfgs, cells),
		"chanutil":  FormatChannelUtilTable(ms, cfgs, cells),
		"pkgutil":   FormatPackageUtilTable(ms, cfgs, cells),
		"breakdown": FormatBreakdownTable(nvm.TLC, ms, cfgs),
		"pal":       FormatPALTable(nvm.PCM, ms, cfgs),
	} {
		if !strings.Contains(s, "ION-GPFS") || !strings.Contains(s, "CNL-UFS") {
			t.Errorf("%s table missing config rows:\n%s", name, s)
		}
	}
	if !strings.Contains(FormatTable1(), "PCM") {
		t.Error("Table 1 render broken")
	}
	if !strings.Contains(FormatTable2(), "CNL-NATIVE-16") {
		t.Error("Table 2 render broken")
	}
	if !strings.Contains(FormatFig1(), "ioDrive") {
		t.Error("Figure 1 render broken")
	}
	fig6, err := FormatFig6(opt, 8)
	if err != nil || !strings.Contains(fig6, "posix-offset") {
		t.Errorf("Figure 6 render broken: %v", err)
	}
}

func TestSummaryFormat(t *testing.T) {
	s := Summary{
		CNLOverION: 1.08, UFSOverCNL: 0.52, HWOverUFS: 2.5,
		TotalOverION:     map[nvm.CellType]float64{nvm.TLC: 8, nvm.PCM: 16},
		MeanTotalOverION: 10.3,
	}
	out := s.Format([]nvm.CellType{nvm.TLC, nvm.PCM})
	for _, want := range []string{"+108%", "+52%", "+250%", "8.0x", "16.0x", "10.3x"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}

func TestMeasurementRemainingClamps(t *testing.T) {
	m := Measurement{MediaCapableMBps: 10}
	m.Achieved.Bandwidth = 100e6 // 100 MB/s achieved > 10 capable (rounding)
	if m.RemainingMBps() != 0 {
		t.Fatal("remaining must clamp at zero")
	}
}

func TestWorkloadForScaleHelper(t *testing.T) {
	w := workloadForScale(64, 8, 2)
	if w.MatrixBytes != 64<<20 || w.PanelBytes != 8<<20 || w.Applications != 2 {
		t.Fatalf("workloadForScale = %+v", w)
	}
}

package experiment

import (
	"fmt"
	"runtime"
	"sync"

	"oocnvm/internal/fault"
	"oocnvm/internal/ftl"
	"oocnvm/internal/interconnect"
	"oocnvm/internal/nvm"
	"oocnvm/internal/obs"
	"oocnvm/internal/obs/attrib"
	"oocnvm/internal/obs/hostperf"
	"oocnvm/internal/obs/timeseries"
	"oocnvm/internal/ooc"
	"oocnvm/internal/ssd"
	"oocnvm/internal/trace"
)

// Options parameterize an evaluation run.
type Options struct {
	Workload   ooc.Workload
	Geometry   nvm.Geometry
	QueueDepth int
	Seed       uint64
	// MeasureRemaining additionally runs each configuration with an
	// infinitely fast host path to measure what the media could have
	// delivered under the same access pattern (Figures 7b and 8b).
	MeasureRemaining bool
	// Obs, when non-nil, collects metrics and trace spans from the achieved
	// run (the infinite-host-path remeasurement is never probed, so its
	// synthetic traffic cannot pollute the numbers). Safe to share across
	// Matrix's concurrent runs.
	Obs *obs.Collector
	// Fault is the reliability profile injected into the achieved run (the
	// media-capable remeasurement stays fault-free so "bandwidth remaining"
	// keeps its meaning). The zero profile disables injection entirely.
	Fault fault.Profile
	// RetentionDays ages the cells beyond the profile's own retention term.
	RetentionDays float64
	// PrecyclePE adds this many program/erase cycles of wear to every block
	// before the run, on top of the profile's PrecycleFrac.
	PrecyclePE int64
	// Sampler, when non-nil, records time-resolved telemetry from the
	// achieved run. Unlike Obs it is NOT safe to share across concurrent
	// runs (the sampler belongs to one drive's clock), so Matrix drops it;
	// attach it only to a dedicated single Run.
	Sampler *timeseries.Sampler
	// Attrib, when non-nil, records per-request latency attribution from
	// the achieved run (never the infinite-host remeasurement, whose
	// synthetic host path has no anatomy worth decomposing). Like Sampler
	// it is single-clock state, so Matrix drops it.
	Attrib *attrib.Recorder
	// NetProfile names the netfault degradation profile the commands that
	// model cluster-network staging (preload, checkpoint drain) apply to
	// it; "" or "none" is the clean fabric.
	NetProfile string
	// DurableCheckpointPages, when > 0, enables the FTL's durable-metadata
	// model (journal + checkpoints + OOB tags) with a mapping-table
	// checkpoint every N host-written pages. Zero leaves the model off, so
	// existing runs and their reports are byte-identical.
	DurableCheckpointPages int64
	// Host, when non-nil, records each evaluation cell as one host-perf
	// phase (wall time, CPU, allocations, GC) and turns on allocation-site
	// attribution. This is a measurement mode: Matrix serializes its
	// workers while attribution is active, because the attribution region
	// stack is process-global serial state.
	Host *hostperf.Collector
	// Workers caps Matrix's worker-pool size; zero or negative selects
	// runtime.NumCPU. Results are independent of the setting (every cell is
	// deterministic and isolated) — the knob exists so identity tests can
	// prove exactly that at several concurrency levels.
	Workers int

	// posix caches the workload's application-level trace across Matrix
	// cells. The trace depends only on the workload and is consumed
	// read-only by every file-system transform, so the matrix generates it
	// once instead of once per cell.
	posix []trace.PosixOp
}

// DefaultOptions returns the evaluation defaults: the standard OoC workload
// on the paper's 8-channel/64-package/128-die geometry.
func DefaultOptions() Options {
	return Options{
		Workload:         ooc.DefaultWorkload(),
		Geometry:         nvm.PaperGeometry(),
		QueueDepth:       ssd.DefaultQueueDepth,
		Seed:             42,
		MeasureRemaining: true,
	}
}

// TestOptions returns a reduced workload for fast unit/shape tests.
func TestOptions() Options {
	o := DefaultOptions()
	o.Workload = ooc.Workload{MatrixBytes: 96 << 20, PanelBytes: 8 << 20, Applications: 2}
	return o
}

// Measurement is the result of one (configuration, NVM type) cell of the
// evaluation matrix.
type Measurement struct {
	Config Config
	Cell   nvm.CellType
	// Achieved is the real run.
	Achieved ssd.Result
	// MediaCapableMBps is the bandwidth of the infinite-host-path run; zero
	// when not measured.
	MediaCapableMBps float64
}

// AchievedMBps is the achieved application bandwidth in MB/s.
func (m Measurement) AchievedMBps() float64 { return m.Achieved.MBps() }

// RemainingMBps is the paper's "bandwidth remaining" metric: what the media
// could still have delivered under this access pattern, beyond what the
// full stack achieved.
func (m Measurement) RemainingMBps() float64 {
	r := m.MediaCapableMBps - m.AchievedMBps()
	if r < 0 {
		return 0
	}
	return r
}

// Run evaluates one configuration with one NVM type.
func Run(cfg Config, cell nvm.CellType, opt Options) (Measurement, error) {
	if opt.Host != nil {
		defer opt.Host.Phase(fmt.Sprintf("cell %s/%s", cfg.Name, cell))()
	}
	// Everything in the harness that is not an inner subsystem region
	// (trace generation, fs transform, stack assembly, result churn) is
	// charged to the experiment site.
	hostperf.Enter(hostperf.SiteExperiment)
	defer hostperf.Exit()
	blockOps, window, err := blockTrace(cfg, cell, opt)
	if err != nil {
		return Measurement{}, err
	}
	achieved, err := replay(cfg, cell, opt, blockOps, window, cfg.buildLink(), opt.Obs, true)
	if err != nil {
		return Measurement{}, err
	}
	m := Measurement{Config: cfg, Cell: cell, Achieved: achieved}
	if opt.MeasureRemaining {
		capable, err := replay(cfg, cell, opt, blockOps, window, interconnect.Infinite{}, nil, false)
		if err != nil {
			return Measurement{}, err
		}
		m.MediaCapableMBps = capable.MBps()
	}
	return m, nil
}

// BlockTrace exposes the device-level trace a configuration's software
// stack emits for the workload (with its in-flight window), so external
// studies — like the crash-point MTTR sweep — can drive the exact Figure 7a
// request stream through their own stacks.
func BlockTrace(cfg Config, cell nvm.CellType, opt Options) ([]trace.BlockOp, int64, error) {
	return blockTrace(cfg, cell, opt)
}

// blockTrace produces the device-level trace a configuration's software
// stack emits for the workload, along with the stack's in-flight window.
func blockTrace(cfg Config, cell nvm.CellType, opt Options) ([]trace.BlockOp, int64, error) {
	posix := opt.posix
	if posix == nil {
		var err error
		posix, err = opt.Workload.PosixTrace()
		if err != nil {
			return nil, 0, err
		}
	}
	cp := nvm.Params(cell)
	capacity := opt.Geometry.Capacity(cp)
	fsys, err := cfg.buildFS(capacity, opt.Seed)
	if err != nil {
		return nil, 0, err
	}
	if opt.Obs != nil {
		obs.Instrument(fsys, opt.Obs)
	}
	return fsys.Transform(posix), fsys.ReadAhead(), nil
}

// replay drives the block trace through a freshly assembled SSD. When col is
// non-nil it receives the run's spans, and the device's private metrics
// registry is absorbed into it after the replay. Fault injection applies
// only when withFaults is set (the achieved run), never to the
// media-capable remeasurement.
func replay(cfg Config, cell nvm.CellType, opt Options, ops []trace.BlockOp, window int64, link nvm.Link, col *obs.Collector, withFaults bool) (ssd.Result, error) {
	cp := nvm.Params(cell)
	var translator ssd.Translator
	if cfg.Kind == FSUFS {
		translator = ssd.NewDirect(opt.Geometry, cp)
	} else {
		var dc ftl.DurableConfig
		if opt.DurableCheckpointPages > 0 {
			dc = ftl.DurableConfig{Enabled: true, CheckpointEveryPages: opt.DurableCheckpointPages}
		}
		f, err := ftl.New(opt.Geometry, cp, ftl.Config{Durable: dc})
		if err != nil {
			return ssd.Result{}, err
		}
		if err := f.Preload(opt.Workload.MatrixBytes); err != nil {
			return ssd.Result{}, fmt.Errorf("experiment: %s/%s: %w", cfg.Name, cell, err)
		}
		translator = f
	}
	sc := ssd.Config{
		Geometry:    opt.Geometry,
		Cell:        cp,
		Bus:         cfg.Bus,
		Link:        link,
		Translator:  translator,
		QueueDepth:  opt.QueueDepth,
		WindowBytes: window,
		Seed:        opt.Seed,
	}
	if col != nil {
		sc.Probe = col
	}
	if withFaults && opt.Sampler != nil {
		sc.Sampler = opt.Sampler
	}
	if withFaults && opt.Attrib != nil {
		sc.Attrib = opt.Attrib
	}
	if withFaults && opt.Fault.Enabled() {
		fc := nvm.FaultConfig(opt.Geometry, cp, opt.Fault, opt.Seed)
		fc.RetentionDays = opt.RetentionDays
		fc.PrecyclePE = opt.PrecyclePE
		inj, err := fault.New(fc)
		if err != nil {
			return ssd.Result{}, err
		}
		sc.Fault = inj
	}
	drive, err := ssd.New(sc)
	if err != nil {
		return ssd.Result{}, err
	}
	res := drive.Replay(ops)
	if col != nil {
		col.Reg.Absorb(drive.Dev.Registry())
	}
	return res, nil
}

// Matrix evaluates every (configuration, cell) pair concurrently and returns
// measurements in (config-major, cell-minor) order.
func Matrix(configs []Config, cells []nvm.CellType, opt Options) ([]Measurement, error) {
	// A sampler or attribution recorder is single-clock state; concurrent
	// cells would race on it and interleave unrelated runs into one
	// timeline. Matrix measurements are aggregate-only.
	opt.Sampler = nil
	opt.Attrib = nil
	if opt.posix == nil {
		posix, err := opt.Workload.PosixTrace()
		if err != nil {
			return nil, err
		}
		opt.posix = posix
	}
	type job struct{ ci, ni int }
	out := make([]Measurement, len(configs)*len(cells))
	errs := make([]error, len(out))
	jobs := make(chan job)
	var wg sync.WaitGroup
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > len(out) {
		workers = len(out)
	}
	// Host-perf attribution brackets regions on a process-global serial
	// stack; running cells one at a time keeps every phase's resource delta
	// and every site's allocation delta attributable to exactly one cell.
	// Results are unchanged (each cell is deterministic and independent).
	if hostperf.AttribActive() {
		workers = 1
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				idx := j.ci*len(cells) + j.ni
				out[idx], errs[idx] = Run(configs[j.ci], cells[j.ni], opt)
			}
		}()
	}
	for ci := range configs {
		for ni := range cells {
			jobs <- job{ci, ni}
		}
	}
	close(jobs)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Lookup finds the measurement for a configuration name and cell type.
func Lookup(ms []Measurement, name string, cell nvm.CellType) (Measurement, error) {
	for _, m := range ms {
		if m.Config.Name == name && m.Cell == cell {
			return m, nil
		}
	}
	return Measurement{}, fmt.Errorf("experiment: no measurement for %s/%s", name, cell)
}

package experiment

import (
	"strings"
	"testing"

	"oocnvm/internal/nvm"
)

func TestBarChartScaling(t *testing.T) {
	out := BarChart("T", "MB/s", []BarRow{
		{Label: "half", Value: 50},
		{Label: "full", Value: 100},
		{Label: "zero", Value: 0},
	}, 10)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d", len(lines))
	}
	if strings.Count(lines[2], "#") != 10 {
		t.Fatalf("full bar has %d marks, want 10: %q", strings.Count(lines[2], "#"), lines[2])
	}
	if strings.Count(lines[1], "#") != 5 {
		t.Fatalf("half bar has %d marks, want 5", strings.Count(lines[1], "#"))
	}
	if strings.Count(lines[3], "#") != 0 {
		t.Fatal("zero bar has marks")
	}
}

func TestBarChartAllZero(t *testing.T) {
	out := BarChart("T", "u", []BarRow{{Label: "a", Value: 0}}, 0)
	if strings.Count(out, "#") != 0 {
		t.Fatal("zero-valued chart drew bars")
	}
}

func TestBandwidthChartRendersConfigs(t *testing.T) {
	opt := TestOptions()
	opt.MeasureRemaining = false
	opt.Workload.MatrixBytes = 32 << 20
	cfgs := DeviceConfigs()
	ms, err := Matrix(cfgs, []nvm.CellType{nvm.PCM}, opt)
	if err != nil {
		t.Fatal(err)
	}
	out := BandwidthChart("Figure 8a", ms, cfgs, nvm.PCM)
	for _, c := range cfgs {
		if !strings.Contains(out, c.Name) {
			t.Errorf("chart missing %s:\n%s", c.Name, out)
		}
	}
	// The ladder must render monotonically more marks.
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")[1:]
	prev := -1
	for _, l := range lines {
		n := strings.Count(l, "#")
		if n < prev {
			t.Fatalf("bars not monotone:\n%s", out)
		}
		prev = n
	}
}

package experiment

import (
	"sync"
	"testing"

	"oocnvm/internal/nvm"
)

// The shape tests assert the paper's qualitative and quantitative claims
// against the simulated evaluation at test scale. Tolerance bands are
// deliberately wide where the paper gives only chart bars, tight where it
// gives numbers; EXPERIMENTS.md records the exact measured values.

var (
	shapeOnce sync.Once
	shapeMs   []Measurement
	shapeErr  error
)

// shapeMatrix runs the full Table 2 matrix once per test binary.
func shapeMatrix(t *testing.T) []Measurement {
	t.Helper()
	shapeOnce.Do(func() {
		shapeMs, shapeErr = Matrix(Table2(), nvm.CellTypes, TestOptions())
	})
	if shapeErr != nil {
		t.Fatal(shapeErr)
	}
	return shapeMs
}

func get(t *testing.T, ms []Measurement, name string, cell nvm.CellType) Measurement {
	t.Helper()
	m, err := Lookup(ms, name, cell)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestFig7aIONIsNetworkBound: ION-GPFS sits near the calibrated network
// envelope (~1 GB/s) for every NVM type — the media barely matters behind
// the wire.
func TestFig7aIONIsNetworkBound(t *testing.T) {
	ms := shapeMatrix(t)
	for _, cell := range nvm.CellTypes {
		bw := get(t, ms, "ION-GPFS", cell).AchievedMBps()
		if bw < 800 || bw > 1300 {
			t.Errorf("ION-GPFS %s = %.0f MB/s, want ~1 GB/s network envelope", cell, bw)
		}
	}
	spread := get(t, ms, "ION-GPFS", nvm.PCM).AchievedMBps() /
		get(t, ms, "ION-GPFS", nvm.TLC).AchievedMBps()
	if spread > 1.25 {
		t.Errorf("ION-GPFS spread across media %.2fx; network should flatten it", spread)
	}
}

// TestFig7aEveryCNLBeatsION: moving the SSD to the compute node never loses.
func TestFig7aEveryCNLBeatsION(t *testing.T) {
	ms := shapeMatrix(t)
	for _, cfg := range FileSystemConfigs()[1:] {
		for _, cell := range nvm.CellTypes {
			cnl := get(t, ms, cfg.Name, cell).AchievedMBps()
			ion := get(t, ms, "ION-GPFS", cell).AchievedMBps()
			if cnl < ion*0.98 {
				t.Errorf("%s %s = %.0f below ION-GPFS %.0f", cfg.Name, cell, cnl, ion)
			}
		}
	}
}

// TestFig7aWorstCNLDeltas: the paper's §4.3 numbers — the worst CNL file
// system improves on ION-GPFS by ~7% (TLC), ~78% (MLC), ~108% (SLC).
func TestFig7aWorstCNLDeltas(t *testing.T) {
	ms := shapeMatrix(t)
	worst := func(cell nvm.CellType) float64 {
		min := 1e18
		for _, cfg := range FileSystemConfigs()[1:9] { // conventional locals
			if bw := get(t, ms, cfg.Name, cell).AchievedMBps(); bw < min {
				min = bw
			}
		}
		return min
	}
	bands := []struct {
		cell     nvm.CellType
		lo, hi   float64
		paperRef string
	}{
		{nvm.TLC, 0.95, 1.45, "+7%"},
		{nvm.MLC, 1.40, 2.20, "+78%"},
		{nvm.SLC, 1.70, 2.60, "+108%"},
	}
	for _, b := range bands {
		ratio := worst(b.cell) / get(t, ms, "ION-GPFS", b.cell).AchievedMBps()
		if ratio < b.lo || ratio > b.hi {
			t.Errorf("worst CNL / ION for %s = %.2f, want [%.2f, %.2f] (paper %s)",
				b.cell, ratio, b.lo, b.hi, b.paperRef)
		}
	}
}

// TestFig7aBTRFSDoublesExt2OnTLC: "an increase in bandwidth by a factor of 2
// when considering TLC" between the lowest (ext2) and best non-tuned (BTRFS).
func TestFig7aBTRFSDoublesExt2OnTLC(t *testing.T) {
	ms := shapeMatrix(t)
	ratio := get(t, ms, "CNL-BTRFS", nvm.TLC).AchievedMBps() /
		get(t, ms, "CNL-EXT2", nvm.TLC).AchievedMBps()
	if ratio < 1.5 || ratio > 2.6 {
		t.Errorf("BTRFS/ext2 on TLC = %.2f, want ~2x", ratio)
	}
	// ext2 is the floor among conventional locals on TLC.
	ext2 := get(t, ms, "CNL-EXT2", nvm.TLC).AchievedMBps()
	for _, cfg := range FileSystemConfigs()[1:9] {
		if cfg.Name == "CNL-EXT2" {
			continue
		}
		if bw := get(t, ms, cfg.Name, nvm.TLC).AchievedMBps(); bw < ext2*0.98 {
			t.Errorf("%s TLC %.0f below ext2's %.0f; ext2 should be the floor", cfg.Name, bw, ext2)
		}
	}
}

// TestFig7aExt4LGainsOverExt4: "an improvement of about 1GB/s" from the
// kernel knobs, most visible on the slower NAND types.
func TestFig7aExt4LGainsOverExt4(t *testing.T) {
	ms := shapeMatrix(t)
	gainTLC := get(t, ms, "CNL-EXT4-L", nvm.TLC).AchievedMBps() -
		get(t, ms, "CNL-EXT4", nvm.TLC).AchievedMBps()
	if gainTLC < 500 {
		t.Errorf("ext4-L gain on TLC = %.0f MB/s, want on the order of 1 GB/s", gainTLC)
	}
	for _, cell := range nvm.CellTypes {
		l := get(t, ms, "CNL-EXT4-L", cell).AchievedMBps()
		e := get(t, ms, "CNL-EXT4", cell).AchievedMBps()
		if l < e {
			t.Errorf("ext4-L slower than ext4 on %s", cell)
		}
	}
}

// TestFig7aUFSPinnedAtPCIeEnvelope: UFS reaches the maximal throughput
// available under bridged PCIe 2.0 x8 and is insensitive to the medium.
func TestFig7aUFSPinnedAtPCIeEnvelope(t *testing.T) {
	ms := shapeMatrix(t)
	envelope := CNLUFS().PCIe.EffectiveBytesPerSec() / 1e6
	for _, cell := range nvm.CellTypes {
		bw := get(t, ms, "CNL-UFS", cell).AchievedMBps()
		if bw < 0.9*envelope || bw > envelope*1.01 {
			t.Errorf("UFS %s = %.0f MB/s, want ~%.0f (PCIe 2.0 x8 envelope)", cell, bw, envelope)
		}
	}
	// UFS beats every conventional FS on every medium.
	for _, cfg := range FileSystemConfigs()[1:9] {
		for _, cell := range nvm.CellTypes {
			if get(t, ms, cfg.Name, cell).AchievedMBps() > get(t, ms, "CNL-UFS", cell).AchievedMBps() {
				t.Errorf("%s beats UFS on %s", cfg.Name, cell)
			}
		}
	}
}

// TestFig7aPCMObscuresFS: "due to the much higher read speeds of PCM, it is
// able to obscure the differences between file systems".
func TestFig7aPCMObscuresFS(t *testing.T) {
	ms := shapeMatrix(t)
	min, max := 1e18, 0.0
	for _, cfg := range FileSystemConfigs()[1:] { // all CNL incl. UFS
		bw := get(t, ms, cfg.Name, nvm.PCM).AchievedMBps()
		if bw < min {
			min = bw
		}
		if bw > max {
			max = bw
		}
	}
	if max/min > 1.25 {
		t.Errorf("PCM FS spread %.2fx; PCM should compress the field", max/min)
	}
	// Contrast: TLC spreads far wider.
	minT, maxT := 1e18, 0.0
	for _, cfg := range FileSystemConfigs()[1:] {
		bw := get(t, ms, cfg.Name, nvm.TLC).AchievedMBps()
		if bw < minT {
			minT = bw
		}
		if bw > maxT {
			maxT = bw
		}
	}
	if maxT/minT < 1.8 {
		t.Errorf("TLC FS spread only %.2fx; NAND should separate the file systems", maxT/minT)
	}
}

// TestFig7bRemainingStory: ION leaves the most media capability unused
// (network bottleneck); the bridged-16 configuration leaves almost nothing
// (media-bound).
func TestFig7bRemainingStory(t *testing.T) {
	ms := shapeMatrix(t)
	for _, cell := range nvm.CellTypes {
		ion := get(t, ms, "ION-GPFS", cell).RemainingMBps()
		for _, cfg := range FileSystemConfigs()[1:] {
			if cnl := get(t, ms, cfg.Name, cell).RemainingMBps(); cnl > ion {
				t.Errorf("%s %s leaves %.0f MB/s, more than ION's %.0f", cfg.Name, cell, cnl, ion)
			}
		}
	}
}

// TestFig8aDeviceLadder: the §4.4 progression. BRIDGE-16 is only a marginal
// gain (media-bound); NATIVE-8 roughly doubles BRIDGE-16 despite half the
// lanes; NATIVE-16 unlocks the rest.
func TestFig8aDeviceLadder(t *testing.T) {
	ms := shapeMatrix(t)
	for _, cell := range nvm.CellTypes {
		ufs := get(t, ms, "CNL-UFS", cell).AchievedMBps()
		b16 := get(t, ms, "CNL-BRIDGE-16", cell).AchievedMBps()
		n8 := get(t, ms, "CNL-NATIVE-8", cell).AchievedMBps()
		n16 := get(t, ms, "CNL-NATIVE-16", cell).AchievedMBps()
		if b16 < ufs || b16 > ufs*1.25 {
			t.Errorf("%s: BRIDGE-16 %.0f vs UFS %.0f; want marginal gain", cell, b16, ufs)
		}
		if n8 < 1.7*b16 || n8 > 2.6*b16 {
			t.Errorf("%s: NATIVE-8 %.0f vs BRIDGE-16 %.0f; want ~2x", cell, n8, b16)
		}
		if n16 < n8 {
			t.Errorf("%s: NATIVE-16 %.0f below NATIVE-8 %.0f", cell, n16, n8)
		}
	}
	// TLC is cell-limited at NATIVE-16; the fast media double again.
	n16tlc := get(t, ms, "CNL-NATIVE-16", nvm.TLC).AchievedMBps()
	n16pcm := get(t, ms, "CNL-NATIVE-16", nvm.PCM).AchievedMBps()
	if n16pcm < 1.5*n16tlc {
		t.Errorf("NATIVE-16: PCM %.0f vs TLC %.0f; TLC should be cell-bound", n16pcm, n16tlc)
	}
}

// TestFig8bMotivatesSixteenLanes: "we observed bandwidth being left over
// even with this vastly improved architecture [NATIVE-8]": NATIVE-8 leaves
// far more media capability than BRIDGE-16 does.
func TestFig8bMotivatesSixteenLanes(t *testing.T) {
	ms := shapeMatrix(t)
	for _, cell := range []nvm.CellType{nvm.MLC, nvm.SLC, nvm.PCM} {
		b16 := get(t, ms, "CNL-BRIDGE-16", cell).RemainingMBps()
		n8 := get(t, ms, "CNL-NATIVE-8", cell).RemainingMBps()
		if n8 < 10*b16+100 {
			t.Errorf("%s: NATIVE-8 remaining %.0f vs BRIDGE-16 %.0f; the gap motivates x16",
				cell, n8, b16)
		}
	}
}

// TestFig9UtilizationStory: ION's packages idle behind the network (lowest
// package utilization), while the hardware ladder drives them hardest.
func TestFig9UtilizationStory(t *testing.T) {
	ms := shapeMatrix(t)
	// On the slow medium (TLC) the network-starved ION leaves its packages
	// idlest; multi-plane merging makes the comparison noisier on SLC/MLC.
	ion := get(t, ms, "ION-GPFS", nvm.TLC).Achieved.Stats.PackageUtilization
	for _, name := range []string{"CNL-EXT2", "CNL-UFS", "CNL-NATIVE-16"} {
		if u := get(t, ms, name, nvm.TLC).Achieved.Stats.PackageUtilization; u < ion {
			t.Errorf("%s TLC package util %.2f below ION's %.2f", name, u, ion)
		}
	}
	for _, cell := range []nvm.CellType{nvm.TLC, nvm.MLC, nvm.SLC} {
		n16 := get(t, ms, "CNL-NATIVE-16", cell).Achieved.Stats.PackageUtilization
		ufs := get(t, ms, "CNL-UFS", cell).Achieved.Stats.PackageUtilization
		if n16 < ufs {
			t.Errorf("%s: NATIVE-16 package util %.2f below UFS %.2f", cell, n16, ufs)
		}
	}
	// Channel utilization everywhere in a sane band.
	for _, m := range ms {
		u := m.Achieved.Stats.ChannelUtilization
		if u < 0 || u > 1 {
			t.Errorf("%s %s channel util %v", m.Config.Name, m.Cell, u)
		}
	}
}

// TestFig10aBreakdownStories: ION is dominated by non-overlapped DMA; the
// conventional file systems spend proportionally far more device time on
// internal bus activity than UFS; at NATIVE-16, TLC waits mostly on the
// cells themselves.
func TestFig10aBreakdownStories(t *testing.T) {
	ms := shapeMatrix(t)
	ion := get(t, ms, "ION-GPFS", nvm.TLC).Achieved.Stats.Breakdown.Percentages()
	if ion[0] < 0.5 {
		t.Errorf("ION-GPFS TLC non-overlapped DMA share %.2f, want dominant", ion[0])
	}
	ext2 := get(t, ms, "CNL-EXT2", nvm.TLC).Achieved.Stats.Breakdown.Percentages()
	ufs := get(t, ms, "CNL-UFS", nvm.TLC).Achieved.Stats.Breakdown.Percentages()
	ext2Bus := ext2[1] + ext2[2]
	ufsBus := ufs[1] + ufs[2]
	if ufsBus > ext2Bus/2 {
		t.Errorf("UFS bus share %.3f vs ext2 %.3f; UFS should drastically reduce bus time",
			ufsBus, ext2Bus)
	}
	n16 := get(t, ms, "CNL-NATIVE-16", nvm.TLC).Achieved.Stats.Breakdown.Percentages()
	cellTime := n16[3] + n16[5] // waiting on cells + sensing
	if cellTime < 0.5 {
		t.Errorf("NATIVE-16 TLC cell-related share %.2f, want dominant (nearly ideal case)", cellTime)
	}
}

// TestFig10cPCMBreakdownIsDMABound: with PCM's sub-microsecond sensing, the
// device's time goes to data movement, not cells, in every configuration.
func TestFig10cPCMBreakdownIsDMABound(t *testing.T) {
	ms := shapeMatrix(t)
	for _, cfg := range Table2() {
		p := get(t, ms, cfg.Name, nvm.PCM).Achieved.Stats.Breakdown.Percentages()
		if p[5] > 0.05 {
			t.Errorf("%s PCM cell activation share %.3f; PCM sensing should be negligible",
				cfg.Name, p[5])
		}
	}
}

// TestFig10dPCMReachesPAL4: "The PCM-based graph is almost entirely in state
// PAL4, a direct result of the much smaller page sizes".
func TestFig10dPCMReachesPAL4(t *testing.T) {
	ms := shapeMatrix(t)
	for _, cfg := range Table2() {
		fr := get(t, ms, cfg.Name, nvm.PCM).Achieved.Stats.PAL.Fractions()
		if fr[3] < 0.85 {
			t.Errorf("%s PCM PAL4 share %.2f, want nearly all requests", cfg.Name, fr[3])
		}
	}
}

// TestFig10bGPFSLimitedParallelism: striping decomposes sequential accesses
// into fragments too small for full parallelism: ION-GPFS requests never
// reach the die-interleaved levels the local configurations reach on TLC.
func TestFig10bGPFSLimitedParallelism(t *testing.T) {
	ms := shapeMatrix(t)
	gpfs := get(t, ms, "ION-GPFS", nvm.TLC).Achieved.Stats.PAL.Fractions()
	if gpfs[3] > 0.05 {
		t.Errorf("ION-GPFS TLC PAL4 share %.2f; fragments should almost never parallelize fully", gpfs[3])
	}
	ufs := get(t, ms, "CNL-UFS", nvm.TLC).Achieved.Stats.PAL.Fractions()
	if ufs[0]+ufs[1]+ufs[2]+ufs[3] == 0 {
		t.Fatal("no PAL data for UFS")
	}
	// UFS requests reach at least die interleaving on TLC (PAL2 in this
	// model: TLC has no multi-plane — see EXPERIMENTS.md deviation note).
	if ufs[1]+ufs[3] < 0.9 {
		t.Errorf("UFS TLC die-interleaved share %.2f, want ~all requests", ufs[1]+ufs[3])
	}
}

// TestSummaryHeadlines: the paper's §7 numbers, within bands.
func TestSummaryHeadlines(t *testing.T) {
	ms := shapeMatrix(t)
	s, err := Summarize(ms, nvm.CellTypes)
	if err != nil {
		t.Fatal(err)
	}
	if s.CNLOverION < 0.9 || s.CNLOverION > 1.7 {
		t.Errorf("CNL over ION = %+.0f%%, paper +108%%", 100*s.CNLOverION)
	}
	if s.UFSOverCNL < 0.15 || s.UFSOverCNL > 0.8 {
		t.Errorf("UFS over CNL = %+.0f%%, paper +52%%", 100*s.UFSOverCNL)
	}
	if s.HWOverUFS < 1.8 || s.HWOverUFS > 3.5 {
		t.Errorf("HW over UFS = %+.0f%%, paper +250%%", 100*s.HWOverUFS)
	}
	if s.TotalOverION[nvm.TLC] < 5.5 || s.TotalOverION[nvm.TLC] > 9.5 {
		t.Errorf("TLC total = %.1fx, paper ~8x", s.TotalOverION[nvm.TLC])
	}
	if s.TotalOverION[nvm.PCM] < 10 || s.TotalOverION[nvm.PCM] > 17 {
		t.Errorf("PCM total = %.1fx, paper ~16x", s.TotalOverION[nvm.PCM])
	}
	if s.MeanTotalOverION < 8 || s.MeanTotalOverION > 14 {
		t.Errorf("mean total = %.1fx, paper 10.3x", s.MeanTotalOverION)
	}
}

// TestFig6PatternMutation: the POSIX trace is almost fully sequential; the
// sub-GPFS block trace is not.
func TestFig6PatternMutation(t *testing.T) {
	posixSeq, gpfsSeq, err := Fig6Pattern(TestOptions())
	if err != nil {
		t.Fatal(err)
	}
	if posixSeq < 0.8 {
		t.Errorf("POSIX trace %.2f sequential, want nearly 1 (per-application panel sweeps)", posixSeq)
	}
	if gpfsSeq > 0.3 {
		t.Errorf("sub-GPFS trace %.2f sequential, want scattered", gpfsSeq)
	}
}

// TestDeterministicMatrix: the entire evaluation is reproducible.
func TestDeterministicMatrix(t *testing.T) {
	opt := TestOptions()
	opt.MeasureRemaining = false
	opt.Workload.MatrixBytes = 32 << 20
	cfgs := []Config{IONGPFS(), CNLUFS()}
	a, err := Matrix(cfgs, []nvm.CellType{nvm.SLC}, opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Matrix(cfgs, []nvm.CellType{nvm.SLC}, opt)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].Achieved.Bandwidth != b[i].Achieved.Bandwidth {
			t.Fatalf("run %d diverged: %v vs %v", i, a[i].Achieved.Bandwidth, b[i].Achieved.Bandwidth)
		}
	}
}

package experiment

import (
	"fmt"
	"strings"

	"oocnvm/internal/nvm"
)

// BarRow is one bar of an ASCII chart.
type BarRow struct {
	Label string
	Value float64
}

// BarChart renders horizontal ASCII bars scaled to the maximum value, for
// terminal-friendly figure output (`oocbench -chart`).
func BarChart(title, unit string, rows []BarRow, width int) string {
	if width <= 0 {
		width = 50
	}
	var max float64
	for _, r := range rows {
		if r.Value > max {
			max = r.Value
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	for _, r := range rows {
		n := 0
		if max > 0 {
			n = int(r.Value / max * float64(width))
		}
		if n > width {
			n = width
		}
		fmt.Fprintf(&b, "%-16s %-*s %10.1f %s\n", r.Label, width, strings.Repeat("#", n), r.Value, unit)
	}
	return b.String()
}

// BandwidthChart renders one NVM type's Figure 7a/8a column as a bar chart.
func BandwidthChart(title string, ms []Measurement, configs []Config, cell nvm.CellType) string {
	rows := make([]BarRow, 0, len(configs))
	for _, cfg := range configs {
		m, err := Lookup(ms, cfg.Name, cell)
		if err != nil {
			continue
		}
		rows = append(rows, BarRow{Label: cfg.Name, Value: m.AchievedMBps()})
	}
	return BarChart(fmt.Sprintf("%s (%s, MB/s)", title, cell), "MB/s", rows, 48)
}

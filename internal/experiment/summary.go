package experiment

import (
	"fmt"
	"strings"

	"oocnvm/internal/nvm"
)

// Summary carries the paper's headline ratios (§7) computed from a full
// measurement matrix.
type Summary struct {
	// CNLOverION is the mean improvement of the baseline compute-local
	// approach (conventional file systems on CNL hardware) over ION-GPFS:
	// the paper reports ~108% on average.
	CNLOverION float64
	// UFSOverCNL is UFS's additional improvement over the mean conventional
	// CNL file system: the paper reports ~52%.
	UFSOverCNL float64
	// HWOverUFS is the hardware ladder's additional improvement
	// (CNL-NATIVE-16 over CNL-UFS): the paper reports ~250%.
	HWOverUFS float64
	// TotalOverION maps each NVM type to the end-to-end CNL-NATIVE-16 /
	// ION-GPFS speedup: the paper reports 16x for PCM and 8x for TLC,
	// 10.3x relative improvement overall.
	TotalOverION map[nvm.CellType]float64
	// MeanTotalOverION averages TotalOverION over the NVM types.
	MeanTotalOverION float64
}

// conventionalCNLNames lists the non-UFS compute-local file systems.
func conventionalCNLNames() []string {
	return []string{"CNL-JFS", "CNL-BTRFS", "CNL-XFS", "CNL-REISERFS",
		"CNL-EXT2", "CNL-EXT3", "CNL-EXT4", "CNL-EXT4-L"}
}

// Summarize computes the headline ratios from a full Table 2 matrix.
func Summarize(ms []Measurement, cells []nvm.CellType) (Summary, error) {
	s := Summary{TotalOverION: make(map[nvm.CellType]float64)}
	var cnlGain, ufsGain, hwGain, totalGain float64
	for _, cell := range cells {
		ion, err := Lookup(ms, "ION-GPFS", cell)
		if err != nil {
			return s, err
		}
		var cnlSum float64
		for _, name := range conventionalCNLNames() {
			m, err := Lookup(ms, name, cell)
			if err != nil {
				return s, err
			}
			cnlSum += m.AchievedMBps()
		}
		cnlMean := cnlSum / float64(len(conventionalCNLNames()))
		ufsM, err := Lookup(ms, "CNL-UFS", cell)
		if err != nil {
			return s, err
		}
		n16, err := Lookup(ms, "CNL-NATIVE-16", cell)
		if err != nil {
			return s, err
		}
		cnlGain += cnlMean/ion.AchievedMBps() - 1
		ufsGain += ufsM.AchievedMBps()/cnlMean - 1
		hwGain += n16.AchievedMBps()/ufsM.AchievedMBps() - 1
		ratio := n16.AchievedMBps() / ion.AchievedMBps()
		s.TotalOverION[cell] = ratio
		totalGain += ratio
	}
	n := float64(len(cells))
	s.CNLOverION = cnlGain / n
	s.UFSOverCNL = ufsGain / n
	s.HWOverUFS = hwGain / n
	s.MeanTotalOverION = totalGain / n
	return s, nil
}

// Format renders the summary with the paper's reference values alongside.
func (s Summary) Format(cells []nvm.CellType) string {
	var b strings.Builder
	b.WriteString("Headline results (paper §7 reference in parentheses)\n")
	fmt.Fprintf(&b, "  compute-local over ION-GPFS:        +%.0f%%  (paper: +108%%)\n", 100*s.CNLOverION)
	fmt.Fprintf(&b, "  UFS over conventional CNL FS:       +%.0f%%  (paper: +52%%)\n", 100*s.UFSOverCNL)
	fmt.Fprintf(&b, "  HW ladder (NATIVE-16) over UFS:     +%.0f%%  (paper: +250%%)\n", 100*s.HWOverUFS)
	for _, c := range cells {
		ref := ""
		switch c {
		case nvm.PCM:
			ref = "  (paper: ~16x)"
		case nvm.TLC:
			ref = "  (paper: ~8x)"
		}
		fmt.Fprintf(&b, "  total %s NATIVE-16 / ION-GPFS:     %.1fx%s\n", c, s.TotalOverION[c], ref)
	}
	fmt.Fprintf(&b, "  mean total speedup:                 %.1fx  (paper: 10.3x)\n", s.MeanTotalOverION)
	return b.String()
}

package experiment

import (
	"testing"

	"oocnvm/internal/fs"
	"oocnvm/internal/nvm"
)

// TestCalibrationProbe is a diagnostic: it prints bandwidth across the main
// calibration levers (readahead window, request cap, metadata barriers,
// journal traffic) for all NVM types. Run with -v to see the table.
func TestCalibrationProbe(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration probe")
	}
	opt := TestOptions()
	opt.MeasureRemaining = false
	probe := func(label string, p fs.Profile) {
		t.Helper()
		line := label + " "
		for _, cell := range []nvm.CellType{nvm.TLC, nvm.MLC, nvm.SLC, nvm.PCM} {
			m, err := Run(CNL(p), cell, opt)
			if err != nil {
				t.Fatal(err)
			}
			line += cell.String() + "=" + formatMBps(m.AchievedMBps()) + " "
		}
		t.Log(line)
	}
	for _, mr := range []int64{64 << 10, 128 << 10, 256 << 10, 512 << 10, 1 << 20, 2 << 20} {
		for _, mult := range []int64{2, 3, 4, 6, 8} {
			probe("mr="+fmtKiB(mr)+" ra="+fmtKiB(mr*mult), fs.Profile{
				Name: "PROBE", BlockSize: 4096, MaxRequest: mr, ReadAheadBytes: mr * mult,
			})
		}
	}
	for _, meta := range []int64{0, 1 << 20, 4 << 20} {
		probe("meta="+fmtKiB(meta), fs.Profile{
			Name: "PROBE", BlockSize: 4096, MaxRequest: 256 << 10,
			ReadAheadBytes: 512 << 10, MetaBytes: meta,
		})
	}
	for _, jr := range []int64{0, 16 << 20, 48 << 20} {
		probe("jrnl="+fmtKiB(jr), fs.Profile{
			Name: "PROBE", BlockSize: 4096, MaxRequest: 256 << 10,
			ReadAheadBytes: 512 << 10, JournalBytes: jr, JournalWriteSize: 16 << 10,
		})
	}
}

func fmtKiB(n int64) string {
	return formatMBps(float64(n) / 1024) // reuse: prints KiB with same formatting
}

func formatMBps(v float64) string {
	switch {
	case v >= 1000:
		return itoa(int(v + 0.5))
	default:
		return itoa(int(v*10+0.5)/10*1) + "." + itoa(int(v*10+0.5)%10)
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [24]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

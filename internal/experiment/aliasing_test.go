package experiment

import (
	"fmt"
	"reflect"
	"runtime"
	"testing"

	"oocnvm/internal/ftl"
	"oocnvm/internal/interconnect"
	"oocnvm/internal/nvm"
	"oocnvm/internal/pool"
	"oocnvm/internal/ssd"
	blocktrace "oocnvm/internal/trace"
)

// TestResultDetachedFromPools is the aliasing audit for the pooled request
// lifecycle: a Result returned to the caller must not share backing storage
// with any free-listed object, because the drive recycles those slices on
// the very next request. The test captures a result, then keeps hammering
// the same drive with a different workload so every pooled translation
// slice and scheduler scratch arena is reused and overwritten, and finally
// re-checks the captured result bit for bit.
func TestResultDetachedFromPools(t *testing.T) {
	geo := nvm.PaperGeometry()
	cp := nvm.Params(nvm.TLC)
	f, err := ftl.New(geo, cp, ftl.Config{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := ssd.New(ssd.Config{
		Geometry: geo, Cell: cp, Bus: nvm.ONFi3SDR(),
		Link: interconnect.Infinite{}, Translator: f, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}

	opsA := mixedOps(0)
	r := s.Replay(opsA)
	before := fmt.Sprintf("%#v", r)

	// Poison pass: different offsets, sizes and verbs recycle every pooled
	// slice the first replay borrowed. If r aliased pooled storage, its
	// formatted image changes here.
	for pass := int64(1); pass <= 4; pass++ {
		s.Replay(mixedOps(pass * (64 << 20)))
	}
	if after := fmt.Sprintf("%#v", r); after != before {
		t.Fatalf("captured Result changed after pool recycling:\nbefore: %s\nafter:  %s", before, after)
	}
	if gets, reuses := s.OpPoolStats(); reuses == 0 {
		t.Fatalf("poison pass never recycled the op pool (%d gets, %d reuses) — audit did not exercise reuse", gets, reuses)
	}
}

// mixedOps builds a read/write/trim workload starting at base, sized to
// recycle the drive's pooled translation slices across several requests.
func mixedOps(base int64) []blocktrace.BlockOp {
	var ops []blocktrace.BlockOp
	for i := int64(0); i < 12; i++ {
		ops = append(ops, blocktrace.BlockOp{Kind: blocktrace.Read, Offset: base + i*(512<<10), Size: 512 << 10})
		if i%3 == 0 {
			ops = append(ops, blocktrace.BlockOp{Kind: blocktrace.Write, Offset: base + i*(128<<10), Size: 128 << 10})
		}
	}
	ops = append(ops, blocktrace.BlockOp{Kind: blocktrace.Erase, Offset: base, Size: 256 << 10})
	return ops
}

// TestResultTypesCarryNoReferences is the structural half of the aliasing
// audit: ssd.Result and experiment.Measurement must stay pure value types
// (no slices, maps or pointers), so copying a result detaches it from the
// drive — and from every pooled object — by construction. A reference field
// added to either type must either be deep-copied at the return boundary or
// consciously exempted here.
func TestResultTypesCarryNoReferences(t *testing.T) {
	for _, typ := range []reflect.Type{
		reflect.TypeOf(ssd.Result{}),
		reflect.TypeOf(Measurement{}),
	} {
		checkValueType(t, typ, typ.String())
	}
}

func checkValueType(t *testing.T, typ reflect.Type, path string) {
	t.Helper()
	switch typ.Kind() {
	case reflect.Slice, reflect.Map, reflect.Ptr, reflect.Chan,
		reflect.Func, reflect.Interface, reflect.UnsafePointer:
		t.Errorf("%s is a %s — result types must not carry references into pooled storage", path, typ.Kind())
	case reflect.Struct:
		for i := 0; i < typ.NumField(); i++ {
			f := typ.Field(i)
			checkValueType(t, f.Type, path+"."+f.Name)
		}
	case reflect.Array:
		checkValueType(t, typ.Elem(), path+"[]")
	}
}

// TestMatrixConcurrentPooling drives the full matrix with maximum worker
// parallelism and per-drive pools. Under `go test -race` the pool package
// arms its generation checks (pool.Debugging() reports true), so any
// cross-worker slice reuse or use-after-release surfaces as a panic or a
// race report right here.
func TestMatrixConcurrentPooling(t *testing.T) {
	opt := TestOptions()
	opt.MeasureRemaining = false
	opt.Workers = runtime.NumCPU()
	configs := FileSystemConfigs()[:3]
	cells := []nvm.CellType{nvm.TLC, nvm.MLC}
	ms, err := Matrix(configs, cells, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != len(configs)*len(cells) {
		t.Fatalf("matrix returned %d cells, want %d", len(ms), len(configs)*len(cells))
	}
	for i, m := range ms {
		if m.AchievedMBps() <= 0 {
			t.Errorf("cell %d (%s/%s): degenerate bandwidth", i, m.Config.Name, m.Cell)
		}
	}
	t.Logf("pool generation checks armed: %v", pool.Debugging())
}

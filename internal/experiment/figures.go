package experiment

import (
	"fmt"
	"strings"

	"oocnvm/internal/nvm"
	"oocnvm/internal/ooc"
	"oocnvm/internal/trace"
	"oocnvm/internal/trend"
)

// FormatBandwidthTable renders Figure 7a/8a-style tables: configurations as
// rows, NVM types as columns, achieved MB/s as values.
func FormatBandwidthTable(title string, ms []Measurement, configs []Config, cells []nvm.CellType) string {
	return formatTable(title+" (MB/s achieved)", ms, configs, cells, func(m Measurement) float64 {
		return m.AchievedMBps()
	})
}

// FormatRemainingTable renders Figure 7b/8b: bandwidth the media had left
// over under the same pattern.
func FormatRemainingTable(title string, ms []Measurement, configs []Config, cells []nvm.CellType) string {
	return formatTable(title+" (MB/s remaining)", ms, configs, cells, func(m Measurement) float64 {
		return m.RemainingMBps()
	})
}

// FormatChannelUtilTable renders Figure 9a.
func FormatChannelUtilTable(ms []Measurement, configs []Config, cells []nvm.CellType) string {
	return formatTable("Figure 9a: channel-level utilization (%)", ms, configs, cells, func(m Measurement) float64 {
		return 100 * m.Achieved.Stats.ChannelUtilization
	})
}

// FormatPackageUtilTable renders Figure 9b.
func FormatPackageUtilTable(ms []Measurement, configs []Config, cells []nvm.CellType) string {
	return formatTable("Figure 9b: package-level utilization (%)", ms, configs, cells, func(m Measurement) float64 {
		return 100 * m.Achieved.Stats.PackageUtilization
	})
}

func formatTable(title string, ms []Measurement, configs []Config, cells []nvm.CellType, val func(Measurement) float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-16s", "config")
	for _, c := range cells {
		fmt.Fprintf(&b, "%10s", c)
	}
	b.WriteByte('\n')
	for _, cfg := range configs {
		fmt.Fprintf(&b, "%-16s", cfg.Name)
		for _, c := range cells {
			m, err := Lookup(ms, cfg.Name, c)
			if err != nil {
				fmt.Fprintf(&b, "%10s", "-")
				continue
			}
			fmt.Fprintf(&b, "%10.1f", val(m))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// FormatBreakdownTable renders Figure 10a/10c: per-configuration execution
// time shares over the six device states, for one NVM type.
func FormatBreakdownTable(cell nvm.CellType, ms []Measurement, configs []Config) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 10 (%s): execution breakdown (%% of device state time)\n", cell)
	fmt.Fprintf(&b, "%-16s", "config")
	short := []string{"DMA", "FlashBus", "ChanBus", "CellCont", "ChanCont", "CellAct"}
	for _, s := range short {
		fmt.Fprintf(&b, "%10s", s)
	}
	b.WriteByte('\n')
	for _, cfg := range configs {
		m, err := Lookup(ms, cfg.Name, cell)
		if err != nil {
			continue
		}
		fmt.Fprintf(&b, "%-16s", cfg.Name)
		for _, p := range m.Achieved.Stats.Breakdown.Percentages() {
			fmt.Fprintf(&b, "%10.1f", 100*p)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// FormatPALTable renders Figure 10b/10d: the parallelism decomposition for
// one NVM type.
func FormatPALTable(cell nvm.CellType, ms []Measurement, configs []Config) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 10 (%s): parallelism decomposition (%% of requests)\n", cell)
	fmt.Fprintf(&b, "%-16s%10s%10s%10s%10s\n", "config", "PAL1", "PAL2", "PAL3", "PAL4")
	for _, cfg := range configs {
		m, err := Lookup(ms, cfg.Name, cell)
		if err != nil {
			continue
		}
		fr := m.Achieved.Stats.PAL.Fractions()
		fmt.Fprintf(&b, "%-16s%10.1f%10.1f%10.1f%10.1f\n", cfg.Name,
			100*fr[0], 100*fr[1], 100*fr[2], 100*fr[3])
	}
	return b.String()
}

// FormatTable1 renders the paper's Table 1 from the cell parameter models.
func FormatTable1() string {
	var b strings.Builder
	b.WriteString("Table 1: NVM latency model\n")
	fmt.Fprintf(&b, "%-12s%10s%10s%10s%10s\n", "", "SLC", "MLC", "TLC", "PCM")
	cells := []nvm.CellType{nvm.SLC, nvm.MLC, nvm.TLC, nvm.PCM}
	row := func(label string, f func(nvm.CellParams) string) {
		fmt.Fprintf(&b, "%-12s", label)
		for _, c := range cells {
			fmt.Fprintf(&b, "%10s", f(nvm.Params(c)))
		}
		b.WriteByte('\n')
	}
	row("PageSize", func(p nvm.CellParams) string { return fmt.Sprintf("%dB", p.PageSize) })
	row("Read(us)", func(p nvm.CellParams) string { return fmt.Sprintf("%.2f", p.ReadLatency.Micros()) })
	row("Write(us)", func(p nvm.CellParams) string {
		if p.ProgramLatencyMin == p.ProgramLatencyMax {
			return fmt.Sprintf("%.0f", p.ProgramLatencyMin.Micros())
		}
		return fmt.Sprintf("%.0f-%.0f", p.ProgramLatencyMin.Micros(), p.ProgramLatencyMax.Micros())
	})
	row("Erase(us)", func(p nvm.CellParams) string { return fmt.Sprintf("%.0f", p.EraseLatency.Micros()) })
	row("Planes", func(p nvm.CellParams) string { return fmt.Sprintf("%d", p.Planes) })
	return b.String()
}

// FormatTable2 renders the configuration list.
func FormatTable2() string {
	var b strings.Builder
	b.WriteString("Table 2: evaluated configurations\n")
	fmt.Fprintf(&b, "%-16s%-12s%-22s%-18s%8s\n", "config", "controller", "pcie/bus", "interface", "lanes")
	for _, c := range Table2() {
		ctrl := "Native"
		if c.PCIe.Bridged {
			ctrl = "Bridged"
		}
		busKind := "SDR"
		if c.Bus.DDR {
			busKind = "DDR"
		}
		fmt.Fprintf(&b, "%-16s%-12s%-22s%-18s%8d\n",
			c.Name, ctrl, c.PCIe.Gen.Name+"/"+busKind,
			fmt.Sprintf("%s %.0fMHz", busKind, c.Bus.ClockMHz), c.PCIe.Lanes)
	}
	return b.String()
}

// Fig6 returns the two access-pattern sequences of Figure 6: the POSIX-level
// offsets the application issues (bottom panel) and the sub-GPFS
// device-level offsets after striping (top panel), truncated to n entries.
func Fig6(opt Options, n int) (posix, gpfs []int64, err error) {
	posixOps, err := opt.Workload.PosixTrace()
	if err != nil {
		return nil, nil, err
	}
	cfg := IONGPFS()
	capacity := opt.Geometry.Capacity(nvm.Params(nvm.SLC))
	fsys, err := cfg.buildFS(capacity, opt.Seed)
	if err != nil {
		return nil, nil, err
	}
	blockOps := fsys.Transform(posixOps)
	for i := 0; i < len(posixOps) && i < n; i++ {
		posix = append(posix, posixOps[i].Offset)
	}
	for i := 0; i < len(blockOps) && i < n; i++ {
		gpfs = append(gpfs, blockOps[i].Offset)
	}
	return posix, gpfs, nil
}

// FormatFig6 renders the access-pattern comparison as two columns.
func FormatFig6(opt Options, n int) (string, error) {
	posix, gpfs, err := Fig6(opt, n)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("Figure 6: access sequence vs address (POSIX at CN, sub-GPFS at ION)\n")
	fmt.Fprintf(&b, "%-8s%16s%16s\n", "seq", "posix-offset", "gpfs-offset")
	for i := 0; i < n; i++ {
		p, g := "-", "-"
		if i < len(posix) {
			p = fmt.Sprintf("%d", posix[i])
		}
		if i < len(gpfs) {
			g = fmt.Sprintf("%d", gpfs[i])
		}
		fmt.Fprintf(&b, "%-8d%16s%16s\n", i, p, g)
	}
	return b.String(), nil
}

// FormatFig1 renders the bandwidth-trend data and fits of Figure 1.
func FormatFig1() string {
	var b strings.Builder
	b.WriteString("Figure 1: bandwidth per channel (GB/s) over time\n")
	pts := trend.Points()
	for _, cat := range []trend.Category{trend.InfiniBand, trend.FibreChannel, trend.FlashSSD, trend.OtherNVM} {
		fmt.Fprintf(&b, "%s:\n", cat)
		for _, p := range trend.SortedByYear(pts, cat) {
			fmt.Fprintf(&b, "  %6.0f  %8.3f  %s\n", p.Year, p.GBps, p.Label)
		}
		if fit, err := trend.FitCategory(pts, cat); err == nil {
			fmt.Fprintf(&b, "  fit: doubling every %.1f years\n", fit.DoublingYrs)
		}
	}
	ib, err1 := trend.FitCategory(pts, trend.InfiniBand)
	fl, err2 := trend.FitCategory(pts, trend.FlashSSD)
	if err1 == nil && err2 == nil {
		if y, err := trend.Crossover(ib, fl); err == nil {
			fmt.Fprintf(&b, "flash-SSD bandwidth overtakes point-to-point network around %.0f\n", y)
		}
	}
	return b.String()
}

// Fig6Pattern gives programmatic access to the trace characterizations used
// in tests: sequentiality before and after GPFS.
func Fig6Pattern(opt Options) (posixSeq, gpfsSeq float64, err error) {
	posixOps, err := opt.Workload.PosixTrace()
	if err != nil {
		return 0, 0, err
	}
	var asBlocks []trace.BlockOp
	for _, op := range posixOps {
		asBlocks = append(asBlocks, trace.BlockOp{Kind: op.Kind, Offset: op.Offset, Size: op.Size})
	}
	cfg := IONGPFS()
	capacity := opt.Geometry.Capacity(nvm.Params(nvm.SLC))
	fsys, err := cfg.buildFS(capacity, opt.Seed)
	if err != nil {
		return 0, 0, err
	}
	blockOps := fsys.Transform(posixOps)
	return trace.Characterize(asBlocks).SequentialPct, trace.Characterize(blockOps).SequentialPct, nil
}

// workloadForScale is a helper for examples that want a differently sized
// run without building Options by hand.
func workloadForScale(matrixMiB, panelMiB, applications int) ooc.Workload {
	return ooc.Workload{
		MatrixBytes:  int64(matrixMiB) << 20,
		PanelBytes:   int64(panelMiB) << 20,
		Applications: applications,
	}
}

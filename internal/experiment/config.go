// Package experiment is the evaluation harness: it assembles each of the
// paper's Table 2 software/hardware configurations into a full simulated
// stack (workload → file system → translation layer → SSD → interconnect),
// runs them over all four NVM types, and renders every table and figure of
// the paper's evaluation section (§4).
package experiment

import (
	"fmt"

	"oocnvm/internal/fs"
	"oocnvm/internal/interconnect"
	"oocnvm/internal/nvm"
	"oocnvm/internal/ufs"
)

// FSKind selects the software layer of a configuration.
type FSKind int

// The three software layers.
const (
	FSProfile FSKind = iota // a conventional local file system (+ device FTL)
	FSGPFS                  // the parallel file system, ION-local placement
	FSUFS                   // the paper's Unified File System (no FTL)
)

// Config is one row of Table 2.
type Config struct {
	Name    string
	Kind    FSKind
	Profile fs.Profile              // for FSProfile
	GPFS    fs.GPFSConfig           // for FSGPFS
	PCIe    interconnect.PCIeConfig // the SSD's attachment
	Bus     nvm.BusParams           // NVM interface bus
	Remote  bool                    // behind the cluster network (ION-local)
	Network interconnect.NetworkParams
}

// baselinePCIe is the bridged PCIe 2.0 x8 attachment every Table 2 row up to
// CNL-UFS uses.
func baselinePCIe() interconnect.PCIeConfig {
	return interconnect.PCIeConfig{Gen: interconnect.PCIeGen2, Lanes: 8, Bridged: true}
}

// IONGPFS is Table 2 row 1: the prior work's architecture.
func IONGPFS() Config {
	return Config{
		Name: "ION-GPFS", Kind: FSGPFS, GPFS: fs.DefaultGPFS(),
		PCIe: baselinePCIe(), Bus: nvm.ONFi3SDR(),
		Remote: true, Network: interconnect.QDR4XInfiniBand(),
	}
}

// CNL wraps a local file-system profile in the baseline CNL hardware.
func CNL(p fs.Profile) Config {
	return Config{
		Name: "CNL-" + p.Name, Kind: FSProfile, Profile: p,
		PCIe: baselinePCIe(), Bus: nvm.ONFi3SDR(),
	}
}

// CNLUFS is the software-optimized configuration: UFS on baseline hardware.
func CNLUFS() Config {
	return Config{Name: "CNL-UFS", Kind: FSUFS, PCIe: baselinePCIe(), Bus: nvm.ONFi3SDR()}
}

// CNLBridge16 widens the bridged PCIe 2.0 attachment to 16 lanes.
func CNLBridge16() Config {
	return Config{
		Name: "CNL-BRIDGE-16", Kind: FSUFS,
		PCIe: interconnect.PCIeConfig{Gen: interconnect.PCIeGen2, Lanes: 16, Bridged: true},
		Bus:  nvm.ONFi3SDR(),
	}
}

// CNLNative8 is the native PCIe 3.0 x8 controller with the DDR NVM bus.
func CNLNative8() Config {
	return Config{
		Name: "CNL-NATIVE-8", Kind: FSUFS,
		PCIe: interconnect.PCIeConfig{Gen: interconnect.PCIeGen3, Lanes: 8, Bridged: false},
		Bus:  nvm.FutureDDR(),
	}
}

// CNLNative16 uses all 16 PCIe 3.0 lanes.
func CNLNative16() Config {
	return Config{
		Name: "CNL-NATIVE-16", Kind: FSUFS,
		PCIe: interconnect.PCIeConfig{Gen: interconnect.PCIeGen3, Lanes: 16, Bridged: false},
		Bus:  nvm.FutureDDR(),
	}
}

// FileSystemConfigs returns the ten configurations of Figure 7 (ION-GPFS,
// eight local file systems, UFS) in the paper's chart order.
func FileSystemConfigs() []Config {
	out := []Config{IONGPFS()}
	for _, p := range []fs.Profile{
		fs.JFS(), fs.BTRFS(), fs.XFS(), fs.ReiserFS(),
		fs.Ext2(), fs.Ext3(), fs.Ext4(), fs.Ext4Large(),
	} {
		out = append(out, CNL(p))
	}
	return append(out, CNLUFS())
}

// DeviceConfigs returns the four configurations of Figure 8.
func DeviceConfigs() []Config {
	return []Config{CNLUFS(), CNLBridge16(), CNLNative8(), CNLNative16()}
}

// Table2 returns all thirteen evaluated configurations in paper order.
func Table2() []Config {
	out := FileSystemConfigs()
	return append(out, CNLBridge16(), CNLNative8(), CNLNative16())
}

// FindConfig returns the named configuration.
func FindConfig(name string) (Config, error) {
	for _, c := range Table2() {
		if c.Name == name {
			return c, nil
		}
	}
	return Config{}, fmt.Errorf("experiment: no configuration named %q", name)
}

// buildFS instantiates the configuration's software layer for a device of
// the given capacity.
func (c Config) buildFS(capacity int64, seed uint64) (fs.FileSystem, error) {
	switch c.Kind {
	case FSProfile:
		return fs.New(c.Profile, capacity, seed)
	case FSGPFS:
		return fs.NewGPFS(c.GPFS, capacity, seed)
	case FSUFS:
		return &ufs.AsFileSystem{}, nil
	default:
		return nil, fmt.Errorf("experiment: unknown FS kind %d", c.Kind)
	}
}

// BuildLink instantiates the configuration's host data path (exported for
// external replay tooling).
func (c Config) BuildLink() nvm.Link { return c.buildLink() }

// buildLink instantiates the host data path.
func (c Config) buildLink() nvm.Link {
	if c.Remote {
		return interconnect.IONPath(c.PCIe, c.Network)
	}
	return interconnect.NewPCIeLine(c.PCIe)
}

// Package energy quantifies the paper's economic motivation (§1): the
// traditional fix for out-of-core problems — enough distributed DRAM to hold
// the dataset plus a high-performance network — carries "very tangible costs
// ... in terms of initial capital investment for the memory and network and
// high energy use of both over time", while NVM acceleration keeps only
// fractions of the dataset in memory. The models here turn a simulated run
// into Joules and a provisioning choice into capital cost, using public
// figures of the paper's era.
package energy

import (
	"fmt"

	"oocnvm/internal/nvm"
	"oocnvm/internal/sim"
)

// DevicePower is a two-state power model.
type DevicePower struct {
	ActiveWatts float64
	IdleWatts   float64
}

// Era-appropriate component figures (2013-era data sheets and HPC
// provisioning rules of thumb).
var (
	// PCIeSSD covers the paper's device class (ioDrive2/Z-Drive style).
	PCIeSSD = DevicePower{ActiveWatts: 25, IdleWatts: 8}
	// DRAMPerGiB is registered DDR3 at ~0.4 W/GiB active, refresh-dominated
	// idle.
	DRAMPerGiB = DevicePower{ActiveWatts: 0.45, IdleWatts: 0.25}
	// IBPort is a QDR HCA plus its switch-port share.
	IBPort = DevicePower{ActiveWatts: 12, IdleWatts: 8}
	// SpindleDisk is a 15k enterprise drive.
	SpindleDisk = DevicePower{ActiveWatts: 11, IdleWatts: 7}
)

// Capital cost figures, USD, 2013-era street prices.
const (
	DRAMDollarsPerGiB = 10.0
	SSDDollarsPerGiB  = 1.0
	IBPortDollars     = 900.0 // HCA + cable + switch-port share
)

// Energy integrates a two-state model over a span with the given busy
// fraction, returning Joules.
func (p DevicePower) Energy(span sim.Time, busyFraction float64) float64 {
	if busyFraction < 0 {
		busyFraction = 0
	}
	if busyFraction > 1 {
		busyFraction = 1
	}
	w := p.IdleWatts + (p.ActiveWatts-p.IdleWatts)*busyFraction
	return w * span.Seconds()
}

// SSDRunEnergy converts a simulated device run into Joules: the SSD is
// active while its channels serve work and idles otherwise.
func SSDRunEnergy(st nvm.Stats) float64 {
	return PCIeSSD.Energy(st.Span, st.ChannelUtilization)
}

// Approach is one way to provision the OoC dataset.
type Approach struct {
	Name string
	// DRAMBytes held resident per node.
	DRAMBytes int64
	// SSDBytes of compute-local NVM per node (0 for the in-memory approach).
	SSDBytes int64
	// NetworkPorts per node dedicated to dataset traffic (remote-memory or
	// ION traffic; 0 when data is node-local).
	NetworkPorts int
}

// InMemory provisions the whole per-node dataset share in DRAM and leans on
// the network for remote accesses.
func InMemory(perNodeDataset int64) Approach {
	return Approach{Name: "distributed-DRAM", DRAMBytes: perNodeDataset, NetworkPorts: 1}
}

// ComputeLocalNVM provisions the paper's alternative: a small DRAM working
// set (one panel in flight plus solver blocks) and the dataset on local NVM.
func ComputeLocalNVM(perNodeDataset, workingSet int64) Approach {
	return Approach{Name: "compute-local-NVM", DRAMBytes: workingSet, SSDBytes: perNodeDataset}
}

// RunEnergy estimates one node's Joules over a run span with the given
// activity level (0..1).
func (a Approach) RunEnergy(span sim.Time, activity float64) float64 {
	e := DRAMPerGiB.Energy(span, activity) * gib(a.DRAMBytes)
	if a.SSDBytes > 0 {
		e += PCIeSSD.Energy(span, activity)
	}
	e += IBPort.Energy(span, activity) * float64(a.NetworkPorts)
	return e
}

// CapitalCost estimates one node's provisioning cost in USD.
func (a Approach) CapitalCost() float64 {
	c := DRAMDollarsPerGiB * gib(a.DRAMBytes)
	c += SSDDollarsPerGiB * gib(a.SSDBytes)
	c += IBPortDollars * float64(a.NetworkPorts)
	return c
}

// Comparison reports the two approaches side by side for a per-node dataset
// share and run length.
type Comparison struct {
	InMemory     Approach
	NVM          Approach
	EnergyRatio  float64 // in-memory Joules / NVM Joules
	CapitalRatio float64 // in-memory USD / NVM USD
}

// Compare builds the paper's economic argument for a given per-node dataset
// share: the NVM approach keeps only workingSet bytes in DRAM.
func Compare(perNodeDataset, workingSet int64, span sim.Time, activity float64) (Comparison, error) {
	if perNodeDataset <= 0 || workingSet <= 0 {
		return Comparison{}, fmt.Errorf("energy: dataset and working set must be positive")
	}
	if workingSet > perNodeDataset {
		return Comparison{}, fmt.Errorf("energy: working set larger than the dataset defeats the point")
	}
	mem := InMemory(perNodeDataset)
	nvmA := ComputeLocalNVM(perNodeDataset, workingSet)
	c := Comparison{InMemory: mem, NVM: nvmA}
	me := mem.RunEnergy(span, activity)
	ne := nvmA.RunEnergy(span, activity)
	if ne > 0 {
		c.EnergyRatio = me / ne
	}
	mc := mem.CapitalCost()
	nc := nvmA.CapitalCost()
	if nc > 0 {
		c.CapitalRatio = mc / nc
	}
	return c, nil
}

func gib(b int64) float64 { return float64(b) / (1 << 30) }

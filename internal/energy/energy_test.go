package energy

import (
	"testing"

	"oocnvm/internal/nvm"
	"oocnvm/internal/sim"
)

func TestEnergyTwoState(t *testing.T) {
	p := DevicePower{ActiveWatts: 20, IdleWatts: 10}
	// One hour fully idle: 10 W x 3600 s.
	if got := p.Energy(3600*sim.Second, 0); got != 36000 {
		t.Fatalf("idle energy = %v, want 36000 J", got)
	}
	// Fully active.
	if got := p.Energy(3600*sim.Second, 1); got != 72000 {
		t.Fatalf("active energy = %v, want 72000 J", got)
	}
	// Halfway.
	if got := p.Energy(3600*sim.Second, 0.5); got != 54000 {
		t.Fatalf("mixed energy = %v", got)
	}
}

func TestEnergyClampsFraction(t *testing.T) {
	p := DevicePower{ActiveWatts: 20, IdleWatts: 10}
	if p.Energy(sim.Second, -1) != 10 {
		t.Fatal("negative fraction not clamped")
	}
	if p.Energy(sim.Second, 2) != 20 {
		t.Fatal("fraction above one not clamped")
	}
}

func TestSSDRunEnergy(t *testing.T) {
	st := nvm.Stats{Span: 10 * sim.Second, ChannelUtilization: 0.5}
	got := SSDRunEnergy(st)
	want := PCIeSSD.Energy(10*sim.Second, 0.5)
	if got != want {
		t.Fatalf("SSDRunEnergy = %v, want %v", got, want)
	}
	if got <= PCIeSSD.IdleWatts*10 || got >= PCIeSSD.ActiveWatts*10 {
		t.Fatalf("energy %v outside the idle/active envelope", got)
	}
}

func TestCompareFavorsNVMForLargeDatasets(t *testing.T) {
	// A 256 GiB per-node share with a 4 GiB working set: the paper's regime.
	c, err := Compare(256<<30, 4<<30, 3600*sim.Second, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	if c.EnergyRatio <= 1 {
		t.Fatalf("energy ratio %v; huge DRAM should burn more than SSD+small DRAM", c.EnergyRatio)
	}
	if c.CapitalRatio <= 1 {
		t.Fatalf("capital ratio %v; DRAM+network should cost more", c.CapitalRatio)
	}
}

func TestCompareSmallDatasetLessCompelling(t *testing.T) {
	// With a tiny dataset the fixed SSD power dominates: the advantage
	// shrinks (and may invert) — the paper's argument is about *large* data.
	big, err := Compare(256<<30, 4<<30, 3600*sim.Second, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	small, err := Compare(8<<30, 4<<30, 3600*sim.Second, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	if small.EnergyRatio >= big.EnergyRatio {
		t.Fatalf("energy advantage should grow with dataset size: %v vs %v",
			small.EnergyRatio, big.EnergyRatio)
	}
}

func TestCompareValidation(t *testing.T) {
	if _, err := Compare(0, 1, sim.Second, 0.5); err == nil {
		t.Fatal("zero dataset accepted")
	}
	if _, err := Compare(10, 20, sim.Second, 0.5); err == nil {
		t.Fatal("working set above dataset accepted")
	}
}

func TestCapitalCostComposition(t *testing.T) {
	a := InMemory(64 << 30)
	want := DRAMDollarsPerGiB*64 + IBPortDollars
	if got := a.CapitalCost(); got != want {
		t.Fatalf("in-memory capital = %v, want %v", got, want)
	}
	b := ComputeLocalNVM(64<<30, 2<<30)
	want = DRAMDollarsPerGiB*2 + SSDDollarsPerGiB*64
	if got := b.CapitalCost(); got != want {
		t.Fatalf("NVM capital = %v, want %v", got, want)
	}
}

func TestRunEnergyComposition(t *testing.T) {
	a := ComputeLocalNVM(64<<30, 2<<30)
	span := 100 * sim.Second
	got := a.RunEnergy(span, 1)
	want := DRAMPerGiB.Energy(span, 1)*2 + PCIeSSD.Energy(span, 1)
	if got != want {
		t.Fatalf("run energy = %v, want %v", got, want)
	}
}

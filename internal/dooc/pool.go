package dooc

import (
	"container/list"
	"fmt"
	"sync"

	"oocnvm/internal/obs"
)

// Loader fetches a named array's bytes from backing storage. It is how the
// pool reaches the node's NVM (or, in ION configurations, the network).
type Loader func(name string) ([]byte, error)

// DataPool is DOoC's distributed data storage layer for one node: named,
// immutable-once-written arrays kept resident under a memory budget with
// LRU replacement and asynchronous prefetch. "Large disk-located arrays are
// immutable once written, removing any need for complicated coherency
// mechanisms" (§2.1) — Put on an existing name is therefore an error.
type DataPool struct {
	mu       sync.Mutex
	budget   int64
	used     int64
	loader   Loader
	entries  map[string]*list.Element
	lru      *list.List // front = most recently used
	inflight map[string]chan struct{}

	hits, misses, evictions int64

	probe obs.Probe
}

// SetProbe attaches an observability probe: hit/miss/eviction counters and a
// resident-bytes gauge. Probe implementations must be safe for concurrent
// use (Gets race); obs.Collector is.
func (p *DataPool) SetProbe(pr obs.Probe) {
	p.mu.Lock()
	p.probe = obs.OrNop(pr)
	p.mu.Unlock()
}

type poolEntry struct {
	name   string
	data   []byte
	pinned bool
}

// NewDataPool creates a pool with the given byte budget and loader.
func NewDataPool(budget int64, loader Loader) (*DataPool, error) {
	if budget <= 0 {
		return nil, fmt.Errorf("dooc: pool budget must be positive, got %d", budget)
	}
	if loader == nil {
		return nil, fmt.Errorf("dooc: pool requires a loader")
	}
	return &DataPool{
		budget:   budget,
		loader:   loader,
		entries:  make(map[string]*list.Element),
		lru:      list.New(),
		inflight: make(map[string]chan struct{}),
		probe:    obs.Nop{},
	}, nil
}

// Used reports resident bytes.
func (p *DataPool) Used() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.used
}

// Stats reports hit/miss/eviction counters.
func (p *DataPool) Stats() (hits, misses, evictions int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.hits, p.misses, p.evictions
}

// Put inserts an array produced by computation. Names are write-once.
func (p *DataPool) Put(name string, data []byte) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, exists := p.entries[name]; exists {
		return fmt.Errorf("dooc: array %q is immutable and already present", name)
	}
	return p.insertLocked(name, data)
}

func (p *DataPool) insertLocked(name string, data []byte) error {
	need := int64(len(data))
	if need > p.budget {
		return fmt.Errorf("dooc: array %q (%d bytes) exceeds pool budget %d", name, need, p.budget)
	}
	for p.used+need > p.budget {
		if !p.evictOneLocked() {
			return fmt.Errorf("dooc: pool full of pinned arrays; cannot fit %q", name)
		}
	}
	el := p.lru.PushFront(&poolEntry{name: name, data: data})
	p.entries[name] = el
	p.used += need
	p.probe.SetGauge("dooc.pool.used_bytes", float64(p.used))
	return nil
}

func (p *DataPool) evictOneLocked() bool {
	for el := p.lru.Back(); el != nil; el = el.Prev() {
		e := el.Value.(*poolEntry)
		if e.pinned {
			continue
		}
		p.lru.Remove(el)
		delete(p.entries, e.name)
		p.used -= int64(len(e.data))
		p.evictions++
		p.probe.Count("dooc.pool.evictions", 1)
		return true
	}
	return false
}

// Get returns the named array, loading it through the Loader on a miss.
// Concurrent Gets of the same missing name share one load.
func (p *DataPool) Get(name string) ([]byte, error) {
	for {
		p.mu.Lock()
		if el, ok := p.entries[name]; ok {
			p.lru.MoveToFront(el)
			p.hits++
			p.probe.Count("dooc.pool.hits", 1)
			data := el.Value.(*poolEntry).data
			p.mu.Unlock()
			return data, nil
		}
		if ch, loading := p.inflight[name]; loading {
			p.mu.Unlock()
			<-ch
			continue // re-check: the load may have failed or been evicted
		}
		ch := make(chan struct{})
		p.inflight[name] = ch
		p.misses++
		p.probe.Count("dooc.pool.misses", 1)
		p.mu.Unlock()

		data, err := p.loader(name)
		p.mu.Lock()
		delete(p.inflight, name)
		close(ch)
		if err != nil {
			p.mu.Unlock()
			return nil, fmt.Errorf("dooc: loading %q: %w", name, err)
		}
		if _, exists := p.entries[name]; !exists {
			if ierr := p.insertLocked(name, data); ierr != nil {
				p.mu.Unlock()
				return nil, ierr
			}
		}
		p.mu.Unlock()
		return data, nil
	}
}

// Pin prevents eviction of a resident array (e.g. the panel a task is
// multiplying right now).
func (p *DataPool) Pin(name string) error { return p.setPin(name, true) }

// Unpin re-enables eviction.
func (p *DataPool) Unpin(name string) error { return p.setPin(name, false) }

func (p *DataPool) setPin(name string, v bool) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	el, ok := p.entries[name]
	if !ok {
		return fmt.Errorf("dooc: pin %q: not resident", name)
	}
	el.Value.(*poolEntry).pinned = v
	return nil
}

// Resident reports whether a name is in the pool.
func (p *DataPool) Resident(name string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	_, ok := p.entries[name]
	return ok
}

// Prefetch starts asynchronous loads for the given names (DOoC's "basic
// prefetching"): the returned function waits for all of them.
func (p *DataPool) Prefetch(names ...string) (wait func()) {
	var wg sync.WaitGroup
	for _, n := range names {
		wg.Add(1)
		go func(n string) {
			defer wg.Done()
			_, _ = p.Get(n) // errors resurface on the demand Get
		}(n)
	}
	return wg.Wait
}

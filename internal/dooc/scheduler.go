package dooc

import (
	"fmt"
	"sort"
	"sync"

	"oocnvm/internal/obs"
)

// Task is one schedulable unit with data dependencies: it consumes named
// arrays and produces named arrays. Fn runs when every input's producer has
// completed.
type Task struct {
	ID       string
	Inputs   []string // array names consumed
	Outputs  []string // array names produced
	Priority int      // tie-breaker; higher runs earlier
	Fn       func() error
}

// Scheduler is DOoC's hierarchical data-aware scheduler: it tracks the
// dependency DAG implied by array names and reorders ready tasks so that
// tasks whose inputs are already resident in the data pool run first,
// maximizing locality, while a worker pool provides the parallelism.
type Scheduler struct {
	workers  int
	resident func(name string) bool
	probe    obs.Probe
}

// SetProbe attaches an observability probe counting scheduling decisions and
// how often the data-aware policy found a ready task with resident inputs.
// Probe implementations must be safe for concurrent use (workers run in
// parallel); obs.Collector is.
func (s *Scheduler) SetProbe(p obs.Probe) { s.probe = obs.OrNop(p) }

// NewScheduler creates a scheduler with the given worker count. resident,
// when non-nil, reports whether an array is already local (usually
// DataPool.Resident); it drives the data-aware reordering.
func NewScheduler(workers int, resident func(string) bool) (*Scheduler, error) {
	if workers <= 0 {
		return nil, fmt.Errorf("dooc: scheduler needs at least one worker, got %d", workers)
	}
	return &Scheduler{workers: workers, resident: resident, probe: obs.Nop{}}, nil
}

// Run executes the task set respecting dependencies and returns the
// completion order. It fails fast on cycles, duplicate producers, duplicate
// IDs, and propagates the first task error after the running wave drains.
func (s *Scheduler) Run(tasks []Task) ([]string, error) {
	producer := make(map[string]string) // array -> task ID
	byID := make(map[string]*Task, len(tasks))
	for i := range tasks {
		t := &tasks[i]
		if t.ID == "" {
			return nil, fmt.Errorf("dooc: task %d has empty ID", i)
		}
		if _, dup := byID[t.ID]; dup {
			return nil, fmt.Errorf("dooc: duplicate task ID %q", t.ID)
		}
		byID[t.ID] = t
		for _, out := range t.Outputs {
			if prev, dup := producer[out]; dup {
				return nil, fmt.Errorf("dooc: array %q produced by both %q and %q (arrays are immutable)", out, prev, t.ID)
			}
			producer[out] = t.ID
		}
	}

	// Build dependency edges: task -> tasks waiting on its outputs.
	waiting := make(map[string]int, len(tasks)) // task -> unmet producer count
	dependents := make(map[string][]string)     // producer task -> dependent tasks
	for _, t := range tasks {
		deps := make(map[string]bool)
		for _, in := range t.Inputs {
			if p, ok := producer[in]; ok && p != t.ID {
				deps[p] = true
			}
			// Inputs with no producer are external (already on storage).
		}
		waiting[t.ID] = len(deps)
		for p := range deps {
			dependents[p] = append(dependents[p], t.ID)
		}
	}

	var (
		mu        sync.Mutex
		cond      = sync.NewCond(&mu)
		ready     []string
		running   int
		done      int
		order     []string
		firstErr  error
		completed = make(map[string]bool)
	)
	for id, w := range waiting {
		if w == 0 {
			ready = append(ready, id)
		}
	}
	sort.Strings(ready)

	// pick selects the best ready task: resident inputs first (data-aware),
	// then priority, then ID for determinism.
	pick := func() string {
		best := -1
		bestKey := [2]int{-1, 0}
		for i, id := range ready {
			t := byID[id]
			res := 0
			if s.resident != nil {
				for _, in := range t.Inputs {
					if s.resident(in) {
						res++
					}
				}
			}
			key := [2]int{res, t.Priority}
			if best == -1 || key[0] > bestKey[0] ||
				(key[0] == bestKey[0] && key[1] > bestKey[1]) ||
				(key == bestKey && id < ready[best]) {
				best, bestKey = i, key
			}
		}
		id := ready[best]
		ready = append(ready[:best], ready[best+1:]...)
		s.probe.Count("dooc.sched.decisions", 1)
		if bestKey[0] > 0 {
			s.probe.Count("dooc.sched.resident_picks", 1)
		}
		return id
	}

	var wg sync.WaitGroup
	for w := 0; w < s.workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				for len(ready) == 0 && done < len(tasks) && firstErr == nil {
					if running == 0 && len(ready) == 0 && done < len(tasks) {
						firstErr = fmt.Errorf("dooc: dependency cycle among remaining %d tasks", len(tasks)-done)
						cond.Broadcast()
						mu.Unlock()
						return
					}
					cond.Wait()
				}
				if firstErr != nil || done >= len(tasks) {
					cond.Broadcast()
					mu.Unlock()
					return
				}
				id := pick()
				running++
				mu.Unlock()

				t := byID[id]
				var err error
				if t.Fn != nil {
					err = t.Fn()
				}

				mu.Lock()
				running--
				done++
				completed[id] = true
				order = append(order, id)
				if err != nil && firstErr == nil {
					firstErr = fmt.Errorf("dooc: task %q: %w", id, err)
				}
				s.probe.Count("dooc.sched.tasks_completed", 1)
				for _, dep := range dependents[id] {
					waiting[dep]--
					if waiting[dep] == 0 {
						ready = append(ready, dep)
					}
				}
				cond.Broadcast()
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return order, firstErr
	}
	if len(order) != len(tasks) {
		return order, fmt.Errorf("dooc: scheduler finished %d of %d tasks", len(order), len(tasks))
	}
	return order, nil
}

package dooc

import "fmt"

// This file implements the data-migration extension the paper adds to
// DOoC+LAF (§3.1): "we extend the functionality of DOoC+LAF in our
// simulation to enable migration of data between data pools as well as
// between a monolithic data pool and an individual node's memory."

// Drop removes a resident array from the pool, freeing its budget. Dropping
// a pinned array is an error (it is in use); dropping an absent name is a
// no-op so migrations are idempotent.
func (p *DataPool) Drop(name string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	el, ok := p.entries[name]
	if !ok {
		return nil
	}
	e := el.Value.(*poolEntry)
	if e.pinned {
		return fmt.Errorf("dooc: drop %q: array is pinned", name)
	}
	p.lru.Remove(el)
	delete(p.entries, name)
	p.used -= int64(len(e.data))
	return nil
}

// MigrateTo moves a named array from this pool into dst: the bytes become
// resident in dst (loading them through this pool first if necessary) and
// leave this pool. Against the same pool it is a no-op.
func (p *DataPool) MigrateTo(dst *DataPool, name string) error {
	if dst == nil {
		return fmt.Errorf("dooc: migrate %q: nil destination", name)
	}
	if dst == p {
		return nil
	}
	data, err := p.Get(name)
	if err != nil {
		return fmt.Errorf("dooc: migrate %q: %w", name, err)
	}
	if !dst.Resident(name) {
		if err := dst.Put(name, data); err != nil {
			return fmt.Errorf("dooc: migrate %q: %w", name, err)
		}
	}
	p.mu.Lock()
	p.probe.Count("dooc.migrations", 1)
	p.probe.Count("dooc.migrated_bytes", int64(len(data)))
	p.mu.Unlock()
	return p.Drop(name)
}

// Federation ties a set of node-local pools to one monolithic view: Fetch
// finds an array wherever it lives and migrates it to the requesting node's
// pool, the way DOoC's distributed storage layer "enables filters to reach
// data stored on any node in the cluster".
type Federation struct {
	pools map[string]*DataPool
}

// NewFederation registers the named node pools.
func NewFederation(pools map[string]*DataPool) (*Federation, error) {
	if len(pools) == 0 {
		return nil, fmt.Errorf("dooc: federation needs at least one pool")
	}
	for node, p := range pools {
		if p == nil {
			return nil, fmt.Errorf("dooc: federation pool %q is nil", node)
		}
	}
	cp := make(map[string]*DataPool, len(pools))
	for k, v := range pools {
		cp[k] = v
	}
	return &Federation{pools: cp}, nil
}

// Pool returns the named node's pool.
func (f *Federation) Pool(node string) (*DataPool, error) {
	p, ok := f.pools[node]
	if !ok {
		return nil, fmt.Errorf("dooc: federation has no node %q", node)
	}
	return p, nil
}

// Locate reports which node currently holds the array, if any.
func (f *Federation) Locate(name string) (string, bool) {
	for node, p := range f.pools {
		if p.Resident(name) {
			return node, true
		}
	}
	return "", false
}

// Fetch makes the array resident at the requesting node: a local hit is
// returned directly; a remote hit migrates the array over; a global miss
// loads through the local pool's own loader.
func (f *Federation) Fetch(node, name string) ([]byte, error) {
	local, err := f.Pool(node)
	if err != nil {
		return nil, err
	}
	if local.Resident(name) {
		return local.Get(name)
	}
	if holder, ok := f.Locate(name); ok && holder != node {
		src := f.pools[holder]
		if err := src.MigrateTo(local, name); err != nil {
			return nil, err
		}
	}
	return local.Get(name)
}

package dooc

import (
	"errors"
	"testing"
)

func loaderFor(data map[string][]byte) Loader {
	return func(name string) ([]byte, error) {
		b, ok := data[name]
		if !ok {
			return nil, errors.New("no such array")
		}
		return b, nil
	}
}

func TestDrop(t *testing.T) {
	p, _ := NewDataPool(1000, loaderFor(map[string][]byte{"a": make([]byte, 100)}))
	p.Get("a")
	if err := p.Drop("a"); err != nil {
		t.Fatal(err)
	}
	if p.Resident("a") || p.Used() != 0 {
		t.Fatal("drop did not free the array")
	}
	// Dropping an absent name is a no-op.
	if err := p.Drop("a"); err != nil {
		t.Fatal(err)
	}
}

func TestDropPinnedFails(t *testing.T) {
	p, _ := NewDataPool(1000, loaderFor(map[string][]byte{"a": make([]byte, 10)}))
	p.Get("a")
	p.Pin("a")
	if err := p.Drop("a"); err == nil {
		t.Fatal("dropped a pinned array")
	}
}

func TestMigrateMovesBytes(t *testing.T) {
	backing := map[string][]byte{"H[0]": []byte("panel-zero")}
	src, _ := NewDataPool(1000, loaderFor(backing))
	dst, _ := NewDataPool(1000, loaderFor(nil))
	src.Get("H[0]")
	if err := src.MigrateTo(dst, "H[0]"); err != nil {
		t.Fatal(err)
	}
	if src.Resident("H[0]") {
		t.Fatal("source still holds the array")
	}
	got, err := dst.Get("H[0]")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "panel-zero" {
		t.Fatalf("bytes corrupted: %q", got)
	}
}

func TestMigrateLoadsOnDemand(t *testing.T) {
	// Migrating a non-resident array loads it through the source first.
	backing := map[string][]byte{"x": make([]byte, 64)}
	src, _ := NewDataPool(1000, loaderFor(backing))
	dst, _ := NewDataPool(1000, loaderFor(nil))
	if err := src.MigrateTo(dst, "x"); err != nil {
		t.Fatal(err)
	}
	if !dst.Resident("x") {
		t.Fatal("array not at destination")
	}
}

func TestMigrateErrors(t *testing.T) {
	src, _ := NewDataPool(1000, loaderFor(nil))
	if err := src.MigrateTo(nil, "x"); err == nil {
		t.Fatal("nil destination accepted")
	}
	if err := src.MigrateTo(src, "x"); err != nil {
		t.Fatal("self-migration should be a no-op")
	}
	dst, _ := NewDataPool(1000, loaderFor(nil))
	if err := src.MigrateTo(dst, "ghost"); err == nil {
		t.Fatal("migrating an unloadable array succeeded")
	}
	// Destination too small.
	backing := map[string][]byte{"big": make([]byte, 500)}
	src2, _ := NewDataPool(1000, loaderFor(backing))
	tiny, _ := NewDataPool(100, loaderFor(nil))
	if err := src2.MigrateTo(tiny, "big"); err == nil {
		t.Fatal("migration into an undersized pool succeeded")
	}
	// The failed migration must not have dropped the source copy.
	if !src2.Resident("big") {
		t.Fatal("failed migration lost the array")
	}
}

func TestFederationValidation(t *testing.T) {
	if _, err := NewFederation(nil); err == nil {
		t.Fatal("empty federation accepted")
	}
	if _, err := NewFederation(map[string]*DataPool{"n": nil}); err == nil {
		t.Fatal("nil pool accepted")
	}
}

func TestFederationFetchLocalHit(t *testing.T) {
	a, _ := NewDataPool(1000, loaderFor(map[string][]byte{"x": make([]byte, 8)}))
	b, _ := NewDataPool(1000, loaderFor(nil))
	fed, err := NewFederation(map[string]*DataPool{"nodeA": a, "nodeB": b})
	if err != nil {
		t.Fatal(err)
	}
	a.Get("x")
	if _, err := fed.Fetch("nodeA", "x"); err != nil {
		t.Fatal(err)
	}
	if node, ok := fed.Locate("x"); !ok || node != "nodeA" {
		t.Fatalf("Locate = %q, %v", node, ok)
	}
}

func TestFederationFetchMigratesRemote(t *testing.T) {
	a, _ := NewDataPool(1000, loaderFor(map[string][]byte{"x": []byte("hello")}))
	b, _ := NewDataPool(1000, loaderFor(nil))
	fed, _ := NewFederation(map[string]*DataPool{"nodeA": a, "nodeB": b})
	a.Get("x") // resident at A
	got, err := fed.Fetch("nodeB", "x")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "hello" {
		t.Fatalf("bytes = %q", got)
	}
	if a.Resident("x") {
		t.Fatal("array still at the old node (migration, not replication)")
	}
	if !b.Resident("x") {
		t.Fatal("array not at the requesting node")
	}
}

func TestFederationGlobalMissLoadsLocally(t *testing.T) {
	a, _ := NewDataPool(1000, loaderFor(nil))
	b, _ := NewDataPool(1000, loaderFor(map[string][]byte{"y": make([]byte, 4)}))
	fed, _ := NewFederation(map[string]*DataPool{"nodeA": a, "nodeB": b})
	if _, err := fed.Fetch("nodeB", "y"); err != nil {
		t.Fatal(err)
	}
	if !b.Resident("y") {
		t.Fatal("global miss did not load through the local pool")
	}
}

func TestFederationUnknownNode(t *testing.T) {
	a, _ := NewDataPool(1000, loaderFor(nil))
	fed, _ := NewFederation(map[string]*DataPool{"nodeA": a})
	if _, err := fed.Fetch("ghost", "x"); err == nil {
		t.Fatal("unknown node accepted")
	}
	if _, err := fed.Pool("ghost"); err == nil {
		t.Fatal("unknown pool accepted")
	}
}

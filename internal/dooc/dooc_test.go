package dooc

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// --- DataCutter ------------------------------------------------------------

func TestStreamDelivery(t *testing.T) {
	s := NewStream("s", 4)
	go func() {
		for i := 0; i < 10; i++ {
			s.Send(Buffer{Name: "b", Size: int64(i)})
		}
		s.Close()
	}()
	var total int64
	if err := s.Range(func(b Buffer) error {
		total += b.Size
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if total != 45 {
		t.Fatalf("received %d, want 45", total)
	}
}

func TestStreamRecvAfterClose(t *testing.T) {
	s := NewStream("s", 1)
	s.Send(Buffer{Size: 1})
	s.Close()
	if _, ok := s.Recv(); !ok {
		t.Fatal("buffered item lost")
	}
	if _, ok := s.Recv(); ok {
		t.Fatal("phantom item after close")
	}
	if s.Name() != "s" {
		t.Fatal("name wrong")
	}
}

func TestStreamRangeStopsOnError(t *testing.T) {
	s := NewStream("s", 10)
	for i := 0; i < 5; i++ {
		s.Send(Buffer{Size: int64(i)})
	}
	s.Close()
	wantErr := errors.New("stop")
	n := 0
	err := s.Range(func(Buffer) error {
		n++
		if n == 2 {
			return wantErr
		}
		return nil
	})
	if !errors.Is(err, wantErr) || n != 2 {
		t.Fatalf("err=%v after %d items", err, n)
	}
}

func TestPipelineRunsFiltersConcurrently(t *testing.T) {
	// Producer and consumer connected by an unbuffered stream deadlock
	// unless the pipeline really runs them concurrently.
	s := NewStream("link", 0)
	var sum int64
	p := NewPipeline(
		FilterFunc{Label: "produce", Fn: func() error {
			for i := 1; i <= 100; i++ {
				s.Send(Buffer{Size: int64(i)})
			}
			s.Close()
			return nil
		}},
		FilterFunc{Label: "consume", Fn: func() error {
			return s.Range(func(b Buffer) error {
				sum += b.Size
				return nil
			})
		}},
	)
	if err := p.Run(); err != nil {
		t.Fatal(err)
	}
	if sum != 5050 {
		t.Fatalf("sum = %d", sum)
	}
}

func TestPipelinePropagatesFilterError(t *testing.T) {
	p := NewPipeline(
		FilterFunc{Label: "ok", Fn: func() error { return nil }},
		FilterFunc{Label: "boom", Fn: func() error { return errors.New("kaput") }},
	)
	err := p.Run()
	if err == nil || !contains(err.Error(), "boom") {
		t.Fatalf("err = %v", err)
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 ||
		func() bool {
			for i := 0; i+len(sub) <= len(s); i++ {
				if s[i:i+len(sub)] == sub {
					return true
				}
			}
			return false
		}())
}

// --- DataPool ----------------------------------------------------------------

func newPool(t *testing.T, budget int64, loads *int64) *DataPool {
	t.Helper()
	p, err := NewDataPool(budget, func(name string) ([]byte, error) {
		if loads != nil {
			atomic.AddInt64(loads, 1)
		}
		if name == "missing" {
			return nil, errors.New("no such array")
		}
		return make([]byte, 100), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestPoolValidation(t *testing.T) {
	if _, err := NewDataPool(0, func(string) ([]byte, error) { return nil, nil }); err == nil {
		t.Fatal("zero budget accepted")
	}
	if _, err := NewDataPool(10, nil); err == nil {
		t.Fatal("nil loader accepted")
	}
}

func TestPoolLoadsOnMissCachesOnHit(t *testing.T) {
	var loads int64
	p := newPool(t, 1000, &loads)
	if _, err := p.Get("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Get("a"); err != nil {
		t.Fatal(err)
	}
	if loads != 1 {
		t.Fatalf("loads = %d, want 1", loads)
	}
	hits, misses, _ := p.Stats()
	if hits != 1 || misses != 1 {
		t.Fatalf("hits=%d misses=%d", hits, misses)
	}
}

func TestPoolEvictsLRU(t *testing.T) {
	var loads int64
	p := newPool(t, 250, &loads) // room for two 100-byte arrays
	p.Get("a")
	p.Get("b")
	p.Get("a") // a is now most recent
	p.Get("c") // evicts b
	if !p.Resident("a") || p.Resident("b") || !p.Resident("c") {
		t.Fatalf("LRU order wrong: a=%v b=%v c=%v", p.Resident("a"), p.Resident("b"), p.Resident("c"))
	}
	_, _, evictions := p.Stats()
	if evictions != 1 {
		t.Fatalf("evictions = %d", evictions)
	}
}

func TestPoolImmutability(t *testing.T) {
	p := newPool(t, 1000, nil)
	if err := p.Put("x", make([]byte, 10)); err != nil {
		t.Fatal(err)
	}
	if err := p.Put("x", make([]byte, 10)); err == nil {
		t.Fatal("overwrite of immutable array accepted")
	}
}

func TestPoolRejectsOversizedArray(t *testing.T) {
	p := newPool(t, 50, nil)
	if err := p.Put("big", make([]byte, 100)); err == nil {
		t.Fatal("array above budget accepted")
	}
}

func TestPoolPinPreventsEviction(t *testing.T) {
	p := newPool(t, 250, nil)
	p.Get("a")
	if err := p.Pin("a"); err != nil {
		t.Fatal(err)
	}
	p.Get("b")
	p.Get("c") // must evict b, not pinned a
	if !p.Resident("a") {
		t.Fatal("pinned array evicted")
	}
	if err := p.Unpin("a"); err != nil {
		t.Fatal(err)
	}
	if err := p.Pin("ghost"); err == nil {
		t.Fatal("pinning a non-resident array accepted")
	}
}

func TestPoolAllPinnedFull(t *testing.T) {
	p := newPool(t, 200, nil)
	p.Get("a")
	p.Get("b")
	p.Pin("a")
	p.Pin("b")
	if _, err := p.Get("c"); err == nil {
		t.Fatal("pool full of pinned arrays still admitted a load")
	}
}

func TestPoolLoaderErrorSurfaces(t *testing.T) {
	p := newPool(t, 1000, nil)
	if _, err := p.Get("missing"); err == nil {
		t.Fatal("loader error swallowed")
	}
}

func TestPoolConcurrentGetSharesLoad(t *testing.T) {
	var loads int64
	p := newPool(t, 10000, &loads)
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := p.Get("shared"); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if loads != 1 {
		t.Fatalf("concurrent gets caused %d loads, want 1", loads)
	}
}

func TestPoolPrefetch(t *testing.T) {
	var loads int64
	p := newPool(t, 10000, &loads)
	wait := p.Prefetch("a", "b", "c")
	wait()
	if loads != 3 {
		t.Fatalf("prefetch loaded %d, want 3", loads)
	}
	if !p.Resident("a") || !p.Resident("b") || !p.Resident("c") {
		t.Fatal("prefetched arrays not resident")
	}
	if p.Used() != 300 {
		t.Fatalf("used = %d", p.Used())
	}
}

// --- Scheduler ---------------------------------------------------------------

func TestSchedulerValidation(t *testing.T) {
	if _, err := NewScheduler(0, nil); err == nil {
		t.Fatal("zero workers accepted")
	}
}

func TestSchedulerRespectsDependencies(t *testing.T) {
	s, _ := NewScheduler(4, nil)
	var mu sync.Mutex
	done := map[string]bool{}
	mark := func(id string, deps ...string) func() error {
		return func() error {
			mu.Lock()
			defer mu.Unlock()
			for _, d := range deps {
				if !done[d] {
					return fmt.Errorf("%s ran before %s", id, d)
				}
			}
			done[id] = true
			return nil
		}
	}
	tasks := []Task{
		{ID: "load", Outputs: []string{"H"}, Fn: mark("load")},
		{ID: "mul", Inputs: []string{"H"}, Outputs: []string{"Y"}, Fn: mark("mul", "load")},
		{ID: "norm", Inputs: []string{"Y"}, Fn: mark("norm", "mul")},
		{ID: "independent", Fn: mark("independent")},
	}
	order, err := s.Run(tasks)
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 4 {
		t.Fatalf("completed %d tasks", len(order))
	}
}

func TestSchedulerDetectsCycle(t *testing.T) {
	s, _ := NewScheduler(2, nil)
	tasks := []Task{
		{ID: "a", Inputs: []string{"y"}, Outputs: []string{"x"}},
		{ID: "b", Inputs: []string{"x"}, Outputs: []string{"y"}},
	}
	if _, err := s.Run(tasks); err == nil {
		t.Fatal("cycle not detected")
	}
}

func TestSchedulerRejectsDuplicateProducers(t *testing.T) {
	s, _ := NewScheduler(1, nil)
	tasks := []Task{
		{ID: "a", Outputs: []string{"x"}},
		{ID: "b", Outputs: []string{"x"}},
	}
	if _, err := s.Run(tasks); err == nil {
		t.Fatal("two producers for one immutable array accepted")
	}
}

func TestSchedulerRejectsDuplicateIDs(t *testing.T) {
	s, _ := NewScheduler(1, nil)
	if _, err := s.Run([]Task{{ID: "a"}, {ID: "a"}}); err == nil {
		t.Fatal("duplicate IDs accepted")
	}
	if _, err := s.Run([]Task{{ID: ""}}); err == nil {
		t.Fatal("empty ID accepted")
	}
}

func TestSchedulerPropagatesTaskError(t *testing.T) {
	s, _ := NewScheduler(2, nil)
	tasks := []Task{
		{ID: "bad", Fn: func() error { return errors.New("exploded") }},
		{ID: "good", Fn: func() error { return nil }},
	}
	if _, err := s.Run(tasks); err == nil || !contains(err.Error(), "exploded") {
		t.Fatalf("err = %v", err)
	}
}

func TestSchedulerDataAwareOrdering(t *testing.T) {
	// Single worker; arrays "hot" and "cold": the data-aware policy must run
	// the task with the resident input first even though it sorts later.
	resident := func(name string) bool { return name == "zzz-hot" }
	s, _ := NewScheduler(1, resident)
	var order []string
	var mu sync.Mutex
	rec := func(id string) func() error {
		return func() error {
			mu.Lock()
			order = append(order, id)
			mu.Unlock()
			return nil
		}
	}
	tasks := []Task{
		{ID: "a-cold", Inputs: []string{"aaa-cold"}, Fn: rec("a-cold")},
		{ID: "z-hot", Inputs: []string{"zzz-hot"}, Fn: rec("z-hot")},
	}
	if _, err := s.Run(tasks); err != nil {
		t.Fatal(err)
	}
	if order[0] != "z-hot" {
		t.Fatalf("order = %v; resident input should run first", order)
	}
}

func TestSchedulerPriorityTieBreak(t *testing.T) {
	s, _ := NewScheduler(1, nil)
	var order []string
	var mu sync.Mutex
	rec := func(id string) func() error {
		return func() error {
			mu.Lock()
			order = append(order, id)
			mu.Unlock()
			return nil
		}
	}
	tasks := []Task{
		{ID: "low", Priority: 1, Fn: rec("low")},
		{ID: "high", Priority: 9, Fn: rec("high")},
	}
	if _, err := s.Run(tasks); err != nil {
		t.Fatal(err)
	}
	if order[0] != "high" {
		t.Fatalf("order = %v", order)
	}
}

func TestSchedulerManyTasksManyWorkers(t *testing.T) {
	s, _ := NewScheduler(8, nil)
	var counter int64
	var tasks []Task
	// A layered DAG: layer k depends on layer k-1.
	for layer := 0; layer < 5; layer++ {
		for i := 0; i < 20; i++ {
			task := Task{
				ID:      fmt.Sprintf("t%d_%d", layer, i),
				Outputs: []string{fmt.Sprintf("out%d_%d", layer, i)},
				Fn: func() error {
					atomic.AddInt64(&counter, 1)
					return nil
				},
			}
			if layer > 0 {
				task.Inputs = []string{fmt.Sprintf("out%d_%d", layer-1, i)}
			}
			tasks = append(tasks, task)
		}
	}
	order, err := s.Run(tasks)
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 100 || counter != 100 {
		t.Fatalf("ran %d tasks, counter %d", len(order), counter)
	}
}

// Package dooc implements the middleware stack the paper's application runs
// on (§2.1): DataCutter, which "abstracts dataflows via the concept of
// filters and streams", and DOoC, the distributed out-of-core layer on top —
// a data storage layer of immutable named arrays with prefetching and
// automatic memory management, plus a hierarchical data-aware scheduler that
// is "cognizant of data-dependencies and performs task reordering to
// maximize parallelism and performance".
package dooc

import (
	"fmt"
	"sync"
)

// Buffer is one unit of data flowing through a stream: a named, sized chunk.
// Payload carries the actual data when the pipeline computes for real; pure
// scheduling studies leave it nil.
type Buffer struct {
	Name    string
	Size    int64
	Payload interface{}
}

// Stream connects a producing filter to a consuming filter with bounded
// buffering (DataCutter streams are finite pipes between filter instances).
type Stream struct {
	name string
	ch   chan Buffer
}

// NewStream creates a stream with the given buffering depth.
func NewStream(name string, depth int) *Stream {
	if depth < 0 {
		depth = 0
	}
	return &Stream{name: name, ch: make(chan Buffer, depth)}
}

// Name identifies the stream.
func (s *Stream) Name() string { return s.name }

// Send places a buffer on the stream, blocking when full.
func (s *Stream) Send(b Buffer) { s.ch <- b }

// Close marks the end of the producer's data.
func (s *Stream) Close() { close(s.ch) }

// Recv takes the next buffer; ok is false after Close drains.
func (s *Stream) Recv() (Buffer, bool) {
	b, ok := <-s.ch
	return b, ok
}

// Range iterates the stream until the producer closes it.
func (s *Stream) Range(fn func(Buffer) error) error {
	for b := range s.ch {
		if err := fn(b); err != nil {
			return err
		}
	}
	return nil
}

// Filter performs computation on flows of data between streams.
type Filter interface {
	Name() string
	Run() error
}

// FilterFunc adapts a function to the Filter interface.
type FilterFunc struct {
	Label string
	Fn    func() error
}

// Name returns the label.
func (f FilterFunc) Name() string { return f.Label }

// Run invokes the function.
func (f FilterFunc) Run() error { return f.Fn() }

// Pipeline runs a set of connected filters concurrently and collects the
// first error of each filter.
type Pipeline struct {
	filters []Filter
}

// NewPipeline assembles filters; streams are wired by the caller when
// constructing the filters.
func NewPipeline(filters ...Filter) *Pipeline {
	return &Pipeline{filters: filters}
}

// Run executes every filter in its own goroutine and waits for all of them,
// returning an error describing every filter that failed.
func (p *Pipeline) Run() error {
	var wg sync.WaitGroup
	errs := make([]error, len(p.filters))
	for i, f := range p.filters {
		wg.Add(1)
		go func(i int, f Filter) {
			defer wg.Done()
			if err := f.Run(); err != nil {
				errs[i] = fmt.Errorf("dooc: filter %s: %w", f.Name(), err)
			}
		}(i, f)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

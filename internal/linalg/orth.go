package linalg

import "math"

// Orthonormalize replaces the columns of m with an orthonormal basis of
// their span, using modified Gram-Schmidt with one reorthogonalization pass
// (sufficient for the conditioning LOBPCG produces). Columns that become
// numerically zero (linearly dependent on earlier ones) are dropped; the
// returned matrix may therefore have fewer columns.
func Orthonormalize(m *Matrix) *Matrix {
	const drop = 1e-12
	cols := make([][]float64, 0, m.Cols)
	for j := 0; j < m.Cols; j++ {
		v := m.Col(j)
		orig := norm(v)
		if orig == 0 {
			continue
		}
		for pass := 0; pass < 2; pass++ {
			for _, q := range cols {
				r := dot(q, v)
				axpy(-r, q, v)
			}
		}
		n := norm(v)
		if n <= drop*orig || n == 0 {
			continue
		}
		scale(1/n, v)
		cols = append(cols, v)
	}
	out := NewMatrix(m.Rows, len(cols))
	for j, c := range cols {
		out.SetCol(j, c)
	}
	return out
}

func dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

func norm(a []float64) float64 { return math.Sqrt(dot(a, a)) }

func axpy(alpha float64, x, y []float64) {
	for i := range y {
		y[i] += alpha * x[i]
	}
}

func scale(alpha float64, x []float64) {
	for i := range x {
		x[i] *= alpha
	}
}

package linalg

import (
	"math"
	"testing"
	"testing/quick"

	"oocnvm/internal/sim"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func randomMatrix(rng *sim.RNG, rows, cols int) *Matrix {
	m := NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.Float64()*2 - 1
	}
	return m
}

func TestNewMatrixZeroed(t *testing.T) {
	m := NewMatrix(3, 4)
	if m.Rows != 3 || m.Cols != 4 || len(m.Data) != 12 {
		t.Fatal("shape wrong")
	}
	for _, v := range m.Data {
		if v != 0 {
			t.Fatal("not zeroed")
		}
	}
}

func TestNewMatrixPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewMatrix(-1, 2)
}

func TestAtSet(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(1, 2, 7)
	if m.At(1, 2) != 7 || m.Data[5] != 7 {
		t.Fatal("At/Set wrong")
	}
}

func TestCloneIndependent(t *testing.T) {
	m := NewMatrix(2, 2)
	m.Set(0, 0, 1)
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) != 1 {
		t.Fatal("clone shares storage")
	}
}

func TestColRoundTrip(t *testing.T) {
	m := NewMatrix(3, 2)
	m.SetCol(1, []float64{1, 2, 3})
	got := m.Col(1)
	if got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("col = %v", got)
	}
}

func TestMulKnown(t *testing.T) {
	a := NewMatrix(2, 2)
	a.Set(0, 0, 1)
	a.Set(0, 1, 2)
	a.Set(1, 0, 3)
	a.Set(1, 1, 4)
	b := NewMatrix(2, 1)
	b.Set(0, 0, 5)
	b.Set(1, 0, 6)
	c := a.Mul(b)
	if c.At(0, 0) != 17 || c.At(1, 0) != 39 {
		t.Fatalf("mul = %v", c.Data)
	}
}

func TestMulIdentity(t *testing.T) {
	rng := sim.NewRNG(1)
	a := randomMatrix(rng, 5, 5)
	c := a.Mul(Identity(5))
	for i := range a.Data {
		if !almostEqual(a.Data[i], c.Data[i], 1e-14) {
			t.Fatal("A*I != A")
		}
	}
}

func TestMulShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on shape mismatch")
		}
	}()
	NewMatrix(2, 3).Mul(NewMatrix(2, 2))
}

func TestTransMulMatchesExplicit(t *testing.T) {
	rng := sim.NewRNG(2)
	a := randomMatrix(rng, 6, 3)
	b := randomMatrix(rng, 6, 4)
	got := a.TransMul(b)
	// Explicit Aᵀ.
	at := NewMatrix(3, 6)
	for i := 0; i < 6; i++ {
		for j := 0; j < 3; j++ {
			at.Set(j, i, a.At(i, j))
		}
	}
	want := at.Mul(b)
	for i := range want.Data {
		if !almostEqual(got.Data[i], want.Data[i], 1e-12) {
			t.Fatalf("TransMul diverges at %d: %v vs %v", i, got.Data[i], want.Data[i])
		}
	}
}

func TestAddScaledAndScale(t *testing.T) {
	a := NewMatrix(1, 3)
	b := NewMatrix(1, 3)
	for i := 0; i < 3; i++ {
		a.Set(0, i, float64(i))
		b.Set(0, i, 1)
	}
	a.AddScaled(2, b) // a = [2,3,4]
	if a.At(0, 0) != 2 || a.At(0, 2) != 4 {
		t.Fatalf("AddScaled = %v", a.Data)
	}
	a.Scale(0.5)
	if a.At(0, 0) != 1 || a.At(0, 2) != 2 {
		t.Fatalf("Scale = %v", a.Data)
	}
}

func TestHCatAndSlice(t *testing.T) {
	a := NewMatrix(2, 1)
	a.Set(0, 0, 1)
	a.Set(1, 0, 2)
	b := NewMatrix(2, 2)
	b.Set(0, 0, 3)
	b.Set(1, 1, 4)
	joined := HCat(a, nil, b)
	if joined.Cols != 3 || joined.At(0, 0) != 1 || joined.At(0, 1) != 3 || joined.At(1, 2) != 4 {
		t.Fatalf("HCat = %+v", joined)
	}
	back := joined.Slice(0, 1)
	if back.Cols != 1 || back.At(1, 0) != 2 {
		t.Fatalf("Slice = %+v", back)
	}
}

func TestNorms(t *testing.T) {
	m := NewMatrix(2, 2)
	m.Set(0, 0, 3)
	m.Set(1, 0, 4)
	if m.ColNorm(0) != 5 {
		t.Fatalf("ColNorm = %v", m.ColNorm(0))
	}
	if m.FrobeniusNorm() != 5 {
		t.Fatalf("Frobenius = %v", m.FrobeniusNorm())
	}
	m.Set(1, 1, -7)
	if m.MaxAbs() != 7 {
		t.Fatalf("MaxAbs = %v", m.MaxAbs())
	}
}

// Property: (A·B)·C == A·(B·C) within round-off.
func TestMulAssociativityProperty(t *testing.T) {
	rng := sim.NewRNG(3)
	f := func(seed uint16) bool {
		r := sim.NewRNG(uint64(seed))
		a := randomMatrix(r, 4, 3)
		b := randomMatrix(r, 3, 5)
		c := randomMatrix(r, 5, 2)
		left := a.Mul(b).Mul(c)
		right := a.Mul(b.Mul(c))
		for i := range left.Data {
			if !almostEqual(left.Data[i], right.Data[i], 1e-10) {
				return false
			}
		}
		return true
	}
	_ = rng
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestOrthonormalizeProducesOrthonormalBasis(t *testing.T) {
	rng := sim.NewRNG(4)
	m := randomMatrix(rng, 20, 6)
	q := Orthonormalize(m)
	if q.Cols != 6 {
		t.Fatalf("rank lost: %d cols", q.Cols)
	}
	g := q.TransMul(q)
	for i := 0; i < 6; i++ {
		for j := 0; j < 6; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if !almostEqual(g.At(i, j), want, 1e-10) {
				t.Fatalf("QᵀQ[%d,%d] = %v", i, j, g.At(i, j))
			}
		}
	}
}

func TestOrthonormalizeDropsDependentColumns(t *testing.T) {
	m := NewMatrix(5, 3)
	for i := 0; i < 5; i++ {
		m.Set(i, 0, float64(i+1))
		m.Set(i, 1, 2*float64(i+1)) // dependent on col 0
		m.Set(i, 2, float64(i*i))
	}
	q := Orthonormalize(m)
	if q.Cols != 2 {
		t.Fatalf("kept %d cols, want 2", q.Cols)
	}
}

func TestOrthonormalizeSpanPreserved(t *testing.T) {
	rng := sim.NewRNG(5)
	m := randomMatrix(rng, 10, 3)
	q := Orthonormalize(m)
	// Each original column must be representable in the Q basis:
	// ‖(I - QQᵀ)·m_j‖ ≈ 0.
	proj := q.Mul(q.TransMul(m))
	for i := range m.Data {
		if !almostEqual(m.Data[i], proj.Data[i], 1e-9) {
			t.Fatal("span not preserved")
		}
	}
}

package linalg

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
)

// CSR is a square sparse matrix in compressed-sparse-row form.
type CSR struct {
	N      int
	RowPtr []int64   // len N+1
	Col    []int32   // len nnz
	Val    []float64 // len nnz
}

// Triplet is one (row, col, value) entry for CSR assembly.
type Triplet struct {
	Row, Col int
	Val      float64
}

// NewCSR assembles a CSR matrix from triplets; duplicate coordinates are
// summed.
func NewCSR(n int, entries []Triplet) (*CSR, error) {
	for _, t := range entries {
		if t.Row < 0 || t.Row >= n || t.Col < 0 || t.Col >= n {
			return nil, fmt.Errorf("linalg: triplet (%d,%d) outside %dx%d", t.Row, t.Col, n, n)
		}
	}
	sorted := make([]Triplet, len(entries))
	copy(sorted, entries)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Row != sorted[j].Row {
			return sorted[i].Row < sorted[j].Row
		}
		return sorted[i].Col < sorted[j].Col
	})
	m := &CSR{N: n, RowPtr: make([]int64, n+1)}
	for i := 0; i < len(sorted); {
		j := i
		v := 0.0
		for j < len(sorted) && sorted[j].Row == sorted[i].Row && sorted[j].Col == sorted[i].Col {
			v += sorted[j].Val
			j++
		}
		m.Col = append(m.Col, int32(sorted[i].Col))
		m.Val = append(m.Val, v)
		m.RowPtr[sorted[i].Row+1]++
		i = j
	}
	for r := 0; r < n; r++ {
		m.RowPtr[r+1] += m.RowPtr[r]
	}
	return m, nil
}

// NNZ returns the stored entry count.
func (m *CSR) NNZ() int64 { return int64(len(m.Val)) }

// IsSymmetric verifies structural and numerical symmetry within tol.
func (m *CSR) IsSymmetric(tol float64) bool {
	type key struct{ r, c int32 }
	seen := make(map[key]float64, len(m.Val))
	for r := 0; r < m.N; r++ {
		for p := m.RowPtr[r]; p < m.RowPtr[r+1]; p++ {
			seen[key{int32(r), m.Col[p]}] = m.Val[p]
		}
	}
	for k, v := range seen {
		w, ok := seen[key{k.c, k.r}]
		if !ok || abs(v-w) > tol {
			return false
		}
	}
	return true
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// MulBlockRows computes Y[rows lo..hi) = M[lo..hi, :] × X for a dense block
// X, writing into the corresponding rows of y. This is the panel kernel of
// the out-of-core SpMM: each stored row panel multiplies the full block of
// vectors while later panels are still in flight from storage.
func (m *CSR) MulBlockRows(x *Matrix, y *Matrix, lo, hi int) {
	if x.Rows != m.N || y.Rows != m.N || x.Cols != y.Cols {
		panic(fmt.Sprintf("linalg: MulBlockRows shapes A=%d X=%dx%d Y=%dx%d",
			m.N, x.Rows, x.Cols, y.Rows, y.Cols))
	}
	if lo < 0 || hi > m.N || lo > hi {
		panic(fmt.Sprintf("linalg: MulBlockRows rows [%d,%d) of %d", lo, hi, m.N))
	}
	k := x.Cols
	for r := lo; r < hi; r++ {
		yrow := y.Data[r*k : (r+1)*k]
		for i := range yrow {
			yrow[i] = 0
		}
		for p := m.RowPtr[r]; p < m.RowPtr[r+1]; p++ {
			v := m.Val[p]
			xrow := x.Data[int(m.Col[p])*k : int(m.Col[p])*k+k]
			for i := range yrow {
				yrow[i] += v * xrow[i]
			}
		}
	}
}

// Mul computes M × X over all rows, parallelized across row bands with one
// goroutine per CPU. Each row is written by exactly one worker, so the
// result is deterministic.
func (m *CSR) Mul(x *Matrix) *Matrix {
	y := NewMatrix(m.N, x.Cols)
	workers := runtime.NumCPU()
	if workers > m.N {
		workers = m.N
	}
	if workers <= 1 {
		m.MulBlockRows(x, y, 0, m.N)
		return y
	}
	var wg sync.WaitGroup
	band := (m.N + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * band
		hi := lo + band
		if hi > m.N {
			hi = m.N
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			m.MulBlockRows(x, y, lo, hi)
		}(lo, hi)
	}
	wg.Wait()
	return y
}

// Dense expands the matrix for small-scale reference computations.
func (m *CSR) Dense() *Matrix {
	d := NewMatrix(m.N, m.N)
	for r := 0; r < m.N; r++ {
		for p := m.RowPtr[r]; p < m.RowPtr[r+1]; p++ {
			d.Set(r, int(m.Col[p]), m.Val[p])
		}
	}
	return d
}

// RowPanel extracts rows [lo, hi) as a standalone CSR panel whose row
// indices are rebased to zero. Column indices still refer to the full
// matrix. BytesOnDisk estimates its serialized size.
type RowPanel struct {
	Lo, Hi int
	RowPtr []int64
	Col    []int32
	Val    []float64
}

// Panel extracts rows [lo, hi).
func (m *CSR) Panel(lo, hi int) RowPanel {
	base := m.RowPtr[lo]
	p := RowPanel{Lo: lo, Hi: hi, RowPtr: make([]int64, hi-lo+1)}
	for r := lo; r <= hi; r++ {
		p.RowPtr[r-lo] = m.RowPtr[r] - base
	}
	p.Col = m.Col[base:m.RowPtr[hi]]
	p.Val = m.Val[base:m.RowPtr[hi]]
	return p
}

// BytesOnDisk is the serialized footprint of the panel: 12 bytes per stored
// entry (int32 column + float64 value) plus 8 per row pointer.
func (p RowPanel) BytesOnDisk() int64 {
	return int64(len(p.Val))*12 + int64(len(p.RowPtr))*8
}

// MulInto computes Y[lo..hi) = panel × X.
func (p RowPanel) MulInto(x *Matrix, y *Matrix) {
	k := x.Cols
	for r := p.Lo; r < p.Hi; r++ {
		yrow := y.Data[r*k : (r+1)*k]
		for i := range yrow {
			yrow[i] = 0
		}
		for q := p.RowPtr[r-p.Lo]; q < p.RowPtr[r-p.Lo+1]; q++ {
			v := p.Val[q]
			xrow := x.Data[int(p.Col[q])*k : int(p.Col[q])*k+k]
			for i := range yrow {
				yrow[i] += v * xrow[i]
			}
		}
	}
}

package linalg

import (
	"fmt"
	"math"

	"oocnvm/internal/sim"
)

// Operator is a symmetric linear operator applied to blocks of vectors.
// Out-of-core implementations stream the matrix from storage inside Apply.
type Operator interface {
	Dim() int
	// Apply returns A·X for a dense block X (Dim rows).
	Apply(x *Matrix) *Matrix
}

// DenseOperator adapts a CSR matrix as an Operator.
type DenseOperator struct{ A *CSR }

// Dim returns the matrix order.
func (d DenseOperator) Dim() int { return d.A.N }

// Apply multiplies through the in-memory CSR.
func (d DenseOperator) Apply(x *Matrix) *Matrix { return d.A.Mul(x) }

// LOBPCGOptions configures the solver.
type LOBPCGOptions struct {
	K       int     // number of smallest eigenpairs wanted (the paper's Ψ has 10-20 columns)
	MaxIter int     // iteration cap
	Tol     float64 // residual tolerance: ‖A·x − λ·x‖ ≤ Tol·max(1,|λ|)
	Seed    uint64  // initial-block randomization

	// X0, when non-nil, seeds the iterate block instead of a random start
	// (restarting from a checkpoint). P0 optionally restores the conjugate
	// directions alongside it.
	X0 *Matrix
	P0 *Matrix
	// OnIteration, when non-nil, observes the solver state after each
	// iteration's Rayleigh quotients are computed — the checkpointing hook.
	// The matrices are live views; copy before storing.
	OnIteration func(iter int, values []float64, x, p *Matrix)
}

// LOBPCGResult reports the converged eigenpairs.
type LOBPCGResult struct {
	Values     []float64 // ascending
	Vectors    *Matrix   // Dim × K, column j pairs with Values[j]
	Iterations int
	Converged  bool
	Residuals  []float64 // final residual norms per pair
}

// LOBPCG finds the K algebraically smallest eigenpairs of the symmetric
// operator a using the locally optimal block preconditioned conjugate
// gradient method (Knyazev 2001, the algorithm the paper's eigensolver
// uses). No preconditioner is applied (T = I), matching the I/O-dominated
// regime the paper studies.
func LOBPCG(a Operator, opt LOBPCGOptions) (LOBPCGResult, error) {
	n := a.Dim()
	if opt.K <= 0 || opt.K > n {
		return LOBPCGResult{}, fmt.Errorf("linalg: LOBPCG K=%d out of range for dim %d", opt.K, n)
	}
	if 3*opt.K > n {
		return LOBPCGResult{}, fmt.Errorf("linalg: LOBPCG needs 3K <= dim, got K=%d dim=%d", opt.K, n)
	}
	if opt.MaxIter <= 0 {
		opt.MaxIter = 200
	}
	if opt.Tol <= 0 {
		opt.Tol = 1e-8
	}

	var x *Matrix
	if opt.X0 != nil {
		if opt.X0.Rows != n || opt.X0.Cols != opt.K {
			return LOBPCGResult{}, fmt.Errorf("linalg: LOBPCG X0 is %dx%d, want %dx%d",
				opt.X0.Rows, opt.X0.Cols, n, opt.K)
		}
		x = Orthonormalize(opt.X0)
	} else {
		rng := sim.NewRNG(opt.Seed)
		x = NewMatrix(n, opt.K)
		for i := range x.Data {
			x.Data[i] = rng.Float64() - 0.5
		}
		x = Orthonormalize(x)
	}
	if x.Cols < opt.K {
		return LOBPCGResult{}, fmt.Errorf("linalg: LOBPCG initial block degenerate")
	}

	var p *Matrix // previous search directions
	if opt.P0 != nil {
		if opt.P0.Rows != n {
			return LOBPCGResult{}, fmt.Errorf("linalg: LOBPCG P0 has %d rows, want %d", opt.P0.Rows, n)
		}
		p = Orthonormalize(opt.P0)
		if p.Cols == 0 {
			p = nil
		}
	}
	res := LOBPCGResult{}
	for it := 0; it < opt.MaxIter; it++ {
		res.Iterations = it + 1
		ax := a.Apply(x)
		// Rayleigh quotients and residuals R = AX − X·diag(λ).
		lambda := make([]float64, opt.K)
		r := ax.Clone()
		for j := 0; j < opt.K; j++ {
			var num, den float64
			for i := 0; i < n; i++ {
				num += x.At(i, j) * ax.At(i, j)
				den += x.At(i, j) * x.At(i, j)
			}
			lambda[j] = num / den
			for i := 0; i < n; i++ {
				r.Set(i, j, ax.At(i, j)-lambda[j]*x.At(i, j))
			}
		}
		res.Values = lambda
		if opt.OnIteration != nil {
			opt.OnIteration(it, lambda, x, p)
		}
		res.Residuals = make([]float64, opt.K)
		allConverged := true
		for j := 0; j < opt.K; j++ {
			res.Residuals[j] = r.ColNorm(j)
			if res.Residuals[j] > opt.Tol*math.Max(1, math.Abs(lambda[j])) {
				allConverged = false
			}
		}
		if allConverged {
			res.Converged = true
			res.Vectors = x
			return res, nil
		}

		// Build the trial subspace S = [X R P] and orthonormalize it.
		s := Orthonormalize(HCat(x, r, p))
		if s.Cols < opt.K {
			return res, fmt.Errorf("linalg: LOBPCG subspace collapsed to %d columns", s.Cols)
		}
		as := a.Apply(s)
		g := s.TransMul(as) // Rayleigh-Ritz projection, s.Cols × s.Cols
		// Symmetrize to scrub round-off before Jacobi.
		for i := 0; i < g.Rows; i++ {
			for j := i + 1; j < g.Cols; j++ {
				v := 0.5 * (g.At(i, j) + g.At(j, i))
				g.Set(i, j, v)
				g.Set(j, i, v)
			}
		}
		_, vec, err := SymEig(g)
		if err != nil {
			return res, fmt.Errorf("linalg: LOBPCG Rayleigh-Ritz: %w", err)
		}
		c := vec.Slice(0, opt.K) // coefficients of the K smallest Ritz pairs

		// New iterates and new conjugate directions: P spans the portion of
		// the update orthogonal to the previous X (the [0 R P] part).
		cTail := c.Clone()
		// Zero the rows of C multiplying X's columns within S. S's first
		// x.Cols columns came from X because Orthonormalize processes
		// left-to-right and X was already orthonormal.
		for i := 0; i < x.Cols && i < cTail.Rows; i++ {
			for j := 0; j < cTail.Cols; j++ {
				cTail.Set(i, j, 0)
			}
		}
		newX := s.Mul(c)
		p = Orthonormalize(s.Mul(cTail))
		if p.Cols == 0 {
			p = nil
		}
		x = Orthonormalize(newX)
		if x.Cols < opt.K {
			return res, fmt.Errorf("linalg: LOBPCG iterate block collapsed to %d columns", x.Cols)
		}
	}
	res.Vectors = x
	return res, nil
}

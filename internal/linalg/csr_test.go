package linalg

import (
	"testing"
	"testing/quick"

	"oocnvm/internal/sim"
)

func tridiag(n int) *CSR {
	var tri []Triplet
	for i := 0; i < n; i++ {
		tri = append(tri, Triplet{i, i, 2})
		if i+1 < n {
			tri = append(tri, Triplet{i, i + 1, -1})
			tri = append(tri, Triplet{i + 1, i, -1})
		}
	}
	m, err := NewCSR(n, tri)
	if err != nil {
		panic(err)
	}
	return m
}

func TestNewCSRRejectsOutOfRange(t *testing.T) {
	if _, err := NewCSR(2, []Triplet{{2, 0, 1}}); err == nil {
		t.Fatal("row out of range accepted")
	}
	if _, err := NewCSR(2, []Triplet{{0, -1, 1}}); err == nil {
		t.Fatal("negative col accepted")
	}
}

func TestNewCSRSumsDuplicates(t *testing.T) {
	m, err := NewCSR(2, []Triplet{{0, 1, 2}, {0, 1, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if m.NNZ() != 1 {
		t.Fatalf("nnz = %d, want 1", m.NNZ())
	}
	if m.Val[0] != 5 {
		t.Fatalf("summed value = %v, want 5", m.Val[0])
	}
}

func TestCSRDenseRoundTrip(t *testing.T) {
	m := tridiag(5)
	d := m.Dense()
	if d.At(0, 0) != 2 || d.At(0, 1) != -1 || d.At(0, 2) != 0 {
		t.Fatalf("dense expansion wrong: %v", d.Data)
	}
}

func TestCSRIsSymmetric(t *testing.T) {
	if !tridiag(6).IsSymmetric(1e-12) {
		t.Fatal("tridiagonal not detected as symmetric")
	}
	asym, _ := NewCSR(2, []Triplet{{0, 1, 1}})
	if asym.IsSymmetric(1e-12) {
		t.Fatal("asymmetric matrix detected as symmetric")
	}
}

func TestCSRMulMatchesDense(t *testing.T) {
	rng := sim.NewRNG(8)
	m := tridiag(20)
	x := randomMatrix(rng, 20, 3)
	sparse := m.Mul(x)
	dense := m.Dense().Mul(x)
	for i := range sparse.Data {
		if !almostEqual(sparse.Data[i], dense.Data[i], 1e-12) {
			t.Fatalf("sparse/dense mismatch at %d", i)
		}
	}
}

func TestCSRMulBlockRowsPartial(t *testing.T) {
	rng := sim.NewRNG(9)
	m := tridiag(10)
	x := randomMatrix(rng, 10, 2)
	whole := m.Mul(x)
	part := NewMatrix(10, 2)
	m.MulBlockRows(x, part, 0, 5)
	m.MulBlockRows(x, part, 5, 10)
	for i := range whole.Data {
		if !almostEqual(whole.Data[i], part.Data[i], 1e-14) {
			t.Fatal("panel-wise multiply diverges from whole multiply")
		}
	}
}

func TestCSRMulBlockRowsPanics(t *testing.T) {
	m := tridiag(4)
	x := NewMatrix(4, 1)
	y := NewMatrix(4, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("bad row range accepted")
		}
	}()
	m.MulBlockRows(x, y, 2, 9)
}

func TestPanelExtractionAndMul(t *testing.T) {
	rng := sim.NewRNG(10)
	m := tridiag(12)
	x := randomMatrix(rng, 12, 2)
	want := m.Mul(x)
	got := NewMatrix(12, 2)
	for lo := 0; lo < 12; lo += 4 {
		p := m.Panel(lo, lo+4)
		if p.Lo != lo || p.Hi != lo+4 {
			t.Fatal("panel bounds wrong")
		}
		if p.BytesOnDisk() <= 0 {
			t.Fatal("panel has no serialized footprint")
		}
		p.MulInto(x, got)
	}
	for i := range want.Data {
		if !almostEqual(want.Data[i], got.Data[i], 1e-14) {
			t.Fatal("panel multiply diverges")
		}
	}
}

func TestPanelBytesSumConsistent(t *testing.T) {
	m := tridiag(32)
	var sum int64
	for lo := 0; lo < 32; lo += 8 {
		sum += m.Panel(lo, lo+8).BytesOnDisk()
	}
	// Row pointers overlap by one entry per panel; totals must be close to
	// the whole-matrix footprint.
	whole := m.Panel(0, 32).BytesOnDisk()
	if sum < whole || sum > whole+4*8 {
		t.Fatalf("panel bytes %d vs whole %d", sum, whole)
	}
}

// Property: SpMM is linear: M(aX + bY) == a·MX + b·MY.
func TestCSRLinearityProperty(t *testing.T) {
	m := tridiag(16)
	f := func(seed uint16, a8, b8 int8) bool {
		rng := sim.NewRNG(uint64(seed))
		a, b := float64(a8)/16, float64(b8)/16
		x := randomMatrix(rng, 16, 2)
		y := randomMatrix(rng, 16, 2)
		// aX + bY
		mix := x.Clone()
		mix.Scale(a)
		mix.AddScaled(b, y)
		left := m.Mul(mix)
		mx := m.Mul(x)
		my := m.Mul(y)
		mx.Scale(a)
		mx.AddScaled(b, my)
		for i := range left.Data {
			if !almostEqual(left.Data[i], mx.Data[i], 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: parallel Mul is deterministic (row-disjoint writes).
func TestCSRMulDeterministicProperty(t *testing.T) {
	m := tridiag(64)
	rng := sim.NewRNG(11)
	x := randomMatrix(rng, 64, 4)
	first := m.Mul(x)
	for i := 0; i < 10; i++ {
		again := m.Mul(x)
		for j := range first.Data {
			if first.Data[j] != again.Data[j] {
				t.Fatal("parallel SpMM nondeterministic")
			}
		}
	}
}

package linalg

import (
	"math"
	"testing"
)

// laplacian1D has known eigenvalues 2 - 2cos(k*pi/(n+1)).
func laplacian1DEigen(n, k int) float64 {
	return 2 - 2*math.Cos(float64(k)*math.Pi/float64(n+1))
}

func TestLOBPCGOnLaplacian(t *testing.T) {
	n := 120
	m := tridiag(n)
	res, err := LOBPCG(DenseOperator{A: m}, LOBPCGOptions{K: 4, MaxIter: 400, Tol: 1e-9, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("did not converge in %d iterations (residuals %v)", res.Iterations, res.Residuals)
	}
	for k := 0; k < 4; k++ {
		want := laplacian1DEigen(n, k+1)
		if !almostEqual(res.Values[k], want, 1e-7) {
			t.Errorf("lambda_%d = %.10f, want %.10f", k, res.Values[k], want)
		}
	}
}

func TestLOBPCGEigenvectorsSatisfyEquation(t *testing.T) {
	n := 80
	m := tridiag(n)
	res, err := LOBPCG(DenseOperator{A: m}, LOBPCGOptions{K: 3, MaxIter: 400, Tol: 1e-9, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	ax := m.Mul(res.Vectors)
	for j := 0; j < 3; j++ {
		var resid float64
		for i := 0; i < n; i++ {
			d := ax.At(i, j) - res.Values[j]*res.Vectors.At(i, j)
			resid += d * d
		}
		if math.Sqrt(resid) > 1e-7 {
			t.Errorf("‖A·x - λx‖ = %v for pair %d", math.Sqrt(resid), j)
		}
	}
}

func TestLOBPCGMatchesJacobiOnRandomSymmetric(t *testing.T) {
	// Cross-validate the two eigensolvers on a general symmetric matrix.
	n := 60
	var tri []Triplet
	for i := 0; i < n; i++ {
		tri = append(tri, Triplet{i, i, 5 + float64(i%7)})
		if i+1 < n {
			v := math.Sin(float64(i))
			tri = append(tri, Triplet{i, i + 1, v}, Triplet{i + 1, i, v})
		}
		if i+9 < n {
			v := 0.3 * math.Cos(float64(3*i))
			tri = append(tri, Triplet{i, i + 9, v}, Triplet{i + 9, i, v})
		}
	}
	m, err := NewCSR(n, tri)
	if err != nil {
		t.Fatal(err)
	}
	res, err := LOBPCG(DenseOperator{A: m}, LOBPCGOptions{K: 5, MaxIter: 500, Tol: 1e-9, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("no convergence")
	}
	ref, _, err := SymEig(m.Dense())
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 5; k++ {
		if !almostEqual(res.Values[k], ref[k], 1e-7) {
			t.Errorf("lambda_%d: LOBPCG %.10f vs Jacobi %.10f", k, res.Values[k], ref[k])
		}
	}
}

func TestLOBPCGValidation(t *testing.T) {
	m := tridiag(10)
	op := DenseOperator{A: m}
	if _, err := LOBPCG(op, LOBPCGOptions{K: 0}); err == nil {
		t.Error("K=0 accepted")
	}
	if _, err := LOBPCG(op, LOBPCGOptions{K: 11}); err == nil {
		t.Error("K > dim accepted")
	}
	if _, err := LOBPCG(op, LOBPCGOptions{K: 4}); err == nil {
		t.Error("3K > dim accepted")
	}
}

func TestLOBPCGDeterministic(t *testing.T) {
	m := tridiag(50)
	run := func() []float64 {
		res, err := LOBPCG(DenseOperator{A: m}, LOBPCGOptions{K: 3, MaxIter: 200, Tol: 1e-8, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		return res.Values
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed diverged")
		}
	}
}

func TestLOBPCGIterationCountReasonable(t *testing.T) {
	// LOBPCG on a well-separated spectrum should converge far faster than
	// the iteration cap — the sanity check that the P directions help.
	m := tridiag(90)
	res, err := LOBPCG(DenseOperator{A: m}, LOBPCGOptions{K: 2, MaxIter: 400, Tol: 1e-8, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.Iterations > 250 {
		t.Fatalf("converged=%v in %d iterations", res.Converged, res.Iterations)
	}
}

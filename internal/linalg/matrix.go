// Package linalg is the dense/sparse linear-algebra substrate behind the
// paper's out-of-core workload: column-block dense operations, modified
// Gram-Schmidt orthonormalization, a cyclic Jacobi symmetric eigensolver
// (used for Rayleigh-Ritz and as the dense reference), CSR sparse matrices
// with parallel block SpMM, and the LOBPCG iteration itself (§2.1: "for
// computing the eigenpairs, the locally optimal block preconditioned
// conjugate gradient (LOBPCG) algorithm is used").
package linalg

import (
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len Rows*Cols, row-major
}

// NewMatrix allocates a zero matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("linalg: negative dimensions %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Col extracts column j as a fresh slice.
func (m *Matrix) Col(j int) []float64 {
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		out[i] = m.At(i, j)
	}
	return out
}

// SetCol assigns column j from v.
func (m *Matrix) SetCol(j int, v []float64) {
	if len(v) != m.Rows {
		panic("linalg: SetCol length mismatch")
	}
	for i := 0; i < m.Rows; i++ {
		m.Set(i, j, v[i])
	}
}

// Mul returns m × b.
func (m *Matrix) Mul(b *Matrix) *Matrix {
	if m.Cols != b.Rows {
		panic(fmt.Sprintf("linalg: Mul dims %dx%d × %dx%d", m.Rows, m.Cols, b.Rows, b.Cols))
	}
	c := NewMatrix(m.Rows, b.Cols)
	for i := 0; i < m.Rows; i++ {
		arow := m.Data[i*m.Cols : (i+1)*m.Cols]
		crow := c.Data[i*b.Cols : (i+1)*b.Cols]
		for k, aik := range arow {
			if aik == 0 {
				continue
			}
			brow := b.Data[k*b.Cols : (k+1)*b.Cols]
			for j := range crow {
				crow[j] += aik * brow[j]
			}
		}
	}
	return c
}

// TransMul returns mᵀ × b (the k×k Gram-style products of block methods).
func (m *Matrix) TransMul(b *Matrix) *Matrix {
	if m.Rows != b.Rows {
		panic(fmt.Sprintf("linalg: TransMul dims %dx%d ᵀ× %dx%d", m.Rows, m.Cols, b.Rows, b.Cols))
	}
	c := NewMatrix(m.Cols, b.Cols)
	for i := 0; i < m.Rows; i++ {
		arow := m.Data[i*m.Cols : (i+1)*m.Cols]
		brow := b.Data[i*b.Cols : (i+1)*b.Cols]
		for p, ap := range arow {
			if ap == 0 {
				continue
			}
			crow := c.Data[p*b.Cols : (p+1)*b.Cols]
			for q := range crow {
				crow[q] += ap * brow[q]
			}
		}
	}
	return c
}

// AddScaled computes m += s·b in place.
func (m *Matrix) AddScaled(s float64, b *Matrix) {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		panic("linalg: AddScaled shape mismatch")
	}
	for i := range m.Data {
		m.Data[i] += s * b.Data[i]
	}
}

// Scale multiplies every element by s in place.
func (m *Matrix) Scale(s float64) {
	for i := range m.Data {
		m.Data[i] *= s
	}
}

// HCat returns [blocks...] joined left to right. Nil blocks are skipped.
func HCat(blocks ...*Matrix) *Matrix {
	rows, cols := 0, 0
	for _, b := range blocks {
		if b == nil {
			continue
		}
		if rows == 0 {
			rows = b.Rows
		} else if b.Rows != rows {
			panic("linalg: HCat row mismatch")
		}
		cols += b.Cols
	}
	out := NewMatrix(rows, cols)
	at := 0
	for _, b := range blocks {
		if b == nil {
			continue
		}
		for i := 0; i < rows; i++ {
			copy(out.Data[i*cols+at:i*cols+at+b.Cols], b.Data[i*b.Cols:(i+1)*b.Cols])
		}
		at += b.Cols
	}
	return out
}

// Slice returns the column block [from, to).
func (m *Matrix) Slice(from, to int) *Matrix {
	if from < 0 || to > m.Cols || from > to {
		panic(fmt.Sprintf("linalg: Slice [%d,%d) of %d cols", from, to, m.Cols))
	}
	out := NewMatrix(m.Rows, to-from)
	for i := 0; i < m.Rows; i++ {
		copy(out.Data[i*out.Cols:(i+1)*out.Cols], m.Data[i*m.Cols+from:i*m.Cols+to])
	}
	return out
}

// ColNorm returns the Euclidean norm of column j.
func (m *Matrix) ColNorm(j int) float64 {
	var s float64
	for i := 0; i < m.Rows; i++ {
		v := m.At(i, j)
		s += v * v
	}
	return math.Sqrt(s)
}

// FrobeniusNorm returns sqrt(sum of squares).
func (m *Matrix) FrobeniusNorm() float64 {
	var s float64
	for _, v := range m.Data {
		s += v * v
	}
	return math.Sqrt(s)
}

// MaxAbs returns the largest absolute element, zero for empty matrices.
func (m *Matrix) MaxAbs() float64 {
	var s float64
	for _, v := range m.Data {
		if a := math.Abs(v); a > s {
			s = a
		}
	}
	return s
}

// Identity returns the n×n identity.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

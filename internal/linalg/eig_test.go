package linalg

import (
	"math"
	"testing"

	"oocnvm/internal/sim"
)

func TestSymEigDiagonal(t *testing.T) {
	a := NewMatrix(3, 3)
	a.Set(0, 0, 3)
	a.Set(1, 1, 1)
	a.Set(2, 2, 2)
	vals, vecs, err := SymEig(a)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 2, 3}
	for i := range want {
		if !almostEqual(vals[i], want[i], 1e-12) {
			t.Fatalf("vals = %v", vals)
		}
	}
	// Eigenvector for value 1 is e1 (up to sign).
	if !almostEqual(math.Abs(vecs.At(1, 0)), 1, 1e-12) {
		t.Fatalf("vecs = %v", vecs.Data)
	}
}

func TestSymEigKnown2x2(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 1 and 3.
	a := NewMatrix(2, 2)
	a.Set(0, 0, 2)
	a.Set(0, 1, 1)
	a.Set(1, 0, 1)
	a.Set(1, 1, 2)
	vals, _, err := SymEig(a)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(vals[0], 1, 1e-12) || !almostEqual(vals[1], 3, 1e-12) {
		t.Fatalf("vals = %v", vals)
	}
}

func TestSymEigReconstruction(t *testing.T) {
	// A = V diag(w) Vᵀ must reconstruct the input.
	rng := sim.NewRNG(6)
	n := 12
	a := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := rng.Float64() - 0.5
			a.Set(i, j, v)
			a.Set(j, i, v)
		}
	}
	vals, vecs, err := SymEig(a)
	if err != nil {
		t.Fatal(err)
	}
	// Ascending order.
	for i := 1; i < n; i++ {
		if vals[i] < vals[i-1] {
			t.Fatal("eigenvalues not ascending")
		}
	}
	// Reconstruct.
	d := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		d.Set(i, i, vals[i])
	}
	recon := vecs.Mul(d).Mul(transpose(vecs))
	for i := range a.Data {
		if !almostEqual(a.Data[i], recon.Data[i], 1e-9) {
			t.Fatalf("reconstruction error at %d: %v vs %v", i, a.Data[i], recon.Data[i])
		}
	}
	// Eigenvectors orthonormal.
	g := vecs.TransMul(vecs)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if !almostEqual(g.At(i, j), want, 1e-10) {
				t.Fatal("eigenvectors not orthonormal")
			}
		}
	}
}

func transpose(m *Matrix) *Matrix {
	out := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Set(j, i, m.At(i, j))
		}
	}
	return out
}

func TestSymEigTraceInvariant(t *testing.T) {
	rng := sim.NewRNG(7)
	n := 10
	a := NewMatrix(n, n)
	var tr float64
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := rng.Float64()
			a.Set(i, j, v)
			a.Set(j, i, v)
		}
		tr += a.At(i, i)
	}
	vals, _, err := SymEig(a)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, v := range vals {
		sum += v
	}
	if !almostEqual(sum, tr, 1e-9) {
		t.Fatalf("trace %v != eigenvalue sum %v", tr, sum)
	}
}

func TestSymEigRejectsNonSquare(t *testing.T) {
	if _, _, err := SymEig(NewMatrix(2, 3)); err == nil {
		t.Fatal("non-square accepted")
	}
}

func TestSymEigRejectsAsymmetric(t *testing.T) {
	a := NewMatrix(2, 2)
	a.Set(0, 1, 5)
	a.Set(1, 0, -5)
	if _, _, err := SymEig(a); err == nil {
		t.Fatal("asymmetric matrix accepted")
	}
}

func TestSymEigDoesNotModifyInput(t *testing.T) {
	a := NewMatrix(2, 2)
	a.Set(0, 0, 2)
	a.Set(0, 1, 1)
	a.Set(1, 0, 1)
	a.Set(1, 1, 2)
	before := a.Clone()
	if _, _, err := SymEig(a); err != nil {
		t.Fatal(err)
	}
	for i := range a.Data {
		if a.Data[i] != before.Data[i] {
			t.Fatal("input modified")
		}
	}
}

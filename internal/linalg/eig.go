package linalg

import (
	"fmt"
	"math"
	"sort"
)

// SymEig computes all eigenvalues and eigenvectors of the symmetric matrix a
// by the cyclic Jacobi method. Eigenvalues are returned ascending; column j
// of the returned matrix is the eigenvector for values[j]. The input is not
// modified. Jacobi is exactly what block methods need here: the matrices are
// small (the Rayleigh-Ritz projections of LOBPCG are at most 3k × 3k) and
// Jacobi's eigenvectors are orthogonal to machine precision.
func SymEig(a *Matrix) (values []float64, vectors *Matrix, err error) {
	n := a.Rows
	if a.Cols != n {
		return nil, nil, fmt.Errorf("linalg: SymEig of non-square %dx%d", a.Rows, a.Cols)
	}
	// Verify symmetry within a tolerance scaled by magnitude.
	scale := a.MaxAbs()
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if math.Abs(a.At(i, j)-a.At(j, i)) > 1e-8*math.Max(scale, 1) {
				return nil, nil, fmt.Errorf("linalg: SymEig input not symmetric at (%d,%d): %g vs %g",
					i, j, a.At(i, j), a.At(j, i))
			}
		}
	}
	w := a.Clone()
	v := Identity(n)
	const maxSweeps = 100
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := offDiagNorm(w)
		if off <= 1e-14*math.Max(scale, 1) {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := w.At(p, q)
				if math.Abs(apq) <= 1e-300 {
					continue
				}
				app, aqq := w.At(p, p), w.At(q, q)
				theta := (aqq - app) / (2 * apq)
				var t float64
				if theta >= 0 {
					t = 1 / (theta + math.Sqrt(1+theta*theta))
				} else {
					t = -1 / (-theta + math.Sqrt(1+theta*theta))
				}
				c := 1 / math.Sqrt(1+t*t)
				s := t * c
				rotate(w, v, p, q, c, s)
			}
		}
	}
	values = make([]float64, n)
	for i := range values {
		values[i] = w.At(i, i)
	}
	// Sort ascending, permuting the eigenvector columns alongside.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return values[idx[i]] < values[idx[j]] })
	sorted := make([]float64, n)
	vec := NewMatrix(n, n)
	for j, k := range idx {
		sorted[j] = values[k]
		for i := 0; i < n; i++ {
			vec.Set(i, j, v.At(i, k))
		}
	}
	return sorted, vec, nil
}

func offDiagNorm(a *Matrix) float64 {
	var s float64
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < a.Cols; j++ {
			if i != j {
				v := a.At(i, j)
				s += v * v
			}
		}
	}
	return math.Sqrt(s)
}

// rotate applies the Jacobi rotation J(p,q,c,s) as a similarity transform to
// w and accumulates it into v.
func rotate(w, v *Matrix, p, q int, c, s float64) {
	n := w.Rows
	for i := 0; i < n; i++ {
		wip, wiq := w.At(i, p), w.At(i, q)
		w.Set(i, p, c*wip-s*wiq)
		w.Set(i, q, s*wip+c*wiq)
	}
	for j := 0; j < n; j++ {
		wpj, wqj := w.At(p, j), w.At(q, j)
		w.Set(p, j, c*wpj-s*wqj)
		w.Set(q, j, s*wpj+c*wqj)
	}
	for i := 0; i < n; i++ {
		vip, viq := v.At(i, p), v.At(i, q)
		v.Set(i, p, c*vip-s*viq)
		v.Set(i, q, s*vip+c*viq)
	}
}

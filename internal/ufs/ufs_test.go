package ufs

import (
	"testing"
	"testing/quick"

	"oocnvm/internal/trace"
)

const (
	testBlock    = 128 << 10
	testCapacity = 1024 * testBlock
)

func newUFS(t *testing.T) *UFS {
	t.Helper()
	u, err := New(testCapacity, testBlock)
	if err != nil {
		t.Fatal(err)
	}
	return u
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, testBlock); err == nil {
		t.Fatal("zero capacity accepted")
	}
	if _, err := New(testCapacity, 0); err == nil {
		t.Fatal("zero block accepted")
	}
	if _, err := New(testBlock+1, testBlock); err == nil {
		t.Fatal("misaligned capacity accepted")
	}
}

func TestAllocAlignsToEraseblocks(t *testing.T) {
	u := newUFS(t)
	e, err := u.Alloc("a", 1000)
	if err != nil {
		t.Fatal(err)
	}
	if e.Size != testBlock {
		t.Fatalf("extent size %d, want one eraseblock %d", e.Size, testBlock)
	}
	if e.Offset%testBlock != 0 {
		t.Fatalf("extent offset %d not block aligned", e.Offset)
	}
	e2, err := u.Alloc("b", testBlock+1)
	if err != nil {
		t.Fatal(err)
	}
	if e2.Size != 2*testBlock {
		t.Fatalf("second extent size %d, want 2 blocks", e2.Size)
	}
	if e2.Offset != e.End() {
		t.Fatalf("extents not adjacent: %d after %d", e2.Offset, e.End())
	}
}

func TestAllocErrors(t *testing.T) {
	u := newUFS(t)
	if _, err := u.Alloc("a", 0); err == nil {
		t.Fatal("zero-size alloc accepted")
	}
	if _, err := u.Alloc("a", 100); err != nil {
		t.Fatal(err)
	}
	if _, err := u.Alloc("a", 100); err == nil {
		t.Fatal("duplicate name accepted")
	}
	if _, err := u.Alloc("too-big", testCapacity); err == nil {
		t.Fatal("over-capacity alloc accepted")
	}
}

func TestLookupAndExtents(t *testing.T) {
	u := newUFS(t)
	u.Alloc("x", 100)
	u.Alloc("y", 100)
	if _, ok := u.Lookup("x"); !ok {
		t.Fatal("lookup failed")
	}
	if _, ok := u.Lookup("z"); ok {
		t.Fatal("phantom extent")
	}
	ex := u.Extents()
	if len(ex) != 2 || ex[0].Name != "x" || ex[1].Name != "y" {
		t.Fatalf("extents = %v", ex)
	}
}

func TestReadPassesThroughFullSize(t *testing.T) {
	u := newUFS(t)
	u.Alloc("h", 8<<20)
	ops, err := u.Read("h", 0, 8<<20)
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) != 1 {
		t.Fatalf("8 MiB read split into %d ops; UFS must preserve request size", len(ops))
	}
	if ops[0].Size != 8<<20 || ops[0].Kind != trace.Read {
		t.Fatalf("op = %+v", ops[0])
	}
}

func TestReadChunksAtMaxRequest(t *testing.T) {
	u, err := New(64*MaxRequest, testBlock)
	if err != nil {
		t.Fatal(err)
	}
	u.Alloc("big", 2*MaxRequest+5)
	ops, err := u.Read("big", 0, 2*MaxRequest+5)
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) != 3 {
		t.Fatalf("got %d chunks, want 3", len(ops))
	}
}

func TestReadBoundsChecked(t *testing.T) {
	u := newUFS(t)
	u.Alloc("h", testBlock)
	if _, err := u.Read("h", 0, testBlock+1); err == nil {
		t.Fatal("read past extent accepted")
	}
	if _, err := u.Read("h", -1, 10); err == nil {
		t.Fatal("negative offset accepted")
	}
	if _, err := u.Read("nope", 0, 1); err == nil {
		t.Fatal("read of unknown extent accepted")
	}
}

func TestEraseBeforeWriteEnforced(t *testing.T) {
	u := newUFS(t)
	u.Alloc("h", testBlock)
	if _, err := u.Write("h", 0, testBlock); err != nil {
		t.Fatalf("first write to clean blocks failed: %v", err)
	}
	if _, err := u.Write("h", 0, testBlock); err == nil {
		t.Fatal("overwrite without erase accepted (erase-before-write violated)")
	}
	ops, err := u.Erase("h")
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) != 1 || ops[0].Kind != trace.Erase {
		t.Fatalf("erase ops = %v", ops)
	}
	if _, err := u.Write("h", 0, testBlock); err != nil {
		t.Fatalf("write after erase failed: %v", err)
	}
}

func TestSealedExtentRejectsWrites(t *testing.T) {
	u := newUFS(t)
	u.Alloc("h", testBlock)
	u.Write("h", 0, testBlock)
	if err := u.Seal("h"); err != nil {
		t.Fatal(err)
	}
	// DOoC semantics: immutable once written.
	u2, _ := u.Lookup("h")
	if !u2.Sealed {
		t.Fatal("seal not recorded")
	}
	if err := u.Seal("nope"); err == nil {
		t.Fatal("sealing unknown extent accepted")
	}
	// Erase unseals (space reclamation is the one allowed mutation).
	if _, err := u.Erase("h"); err != nil {
		t.Fatal(err)
	}
	if e, _ := u.Lookup("h"); e.Sealed {
		t.Fatal("erase did not unseal")
	}
}

func TestWriteToSealedFails(t *testing.T) {
	u := newUFS(t)
	u.Alloc("h", testBlock)
	u.Seal("h")
	if _, err := u.Write("h", 0, 10); err == nil {
		t.Fatal("write to sealed extent accepted")
	}
}

func TestWearTracking(t *testing.T) {
	u := newUFS(t)
	e, _ := u.Alloc("h", 2*testBlock)
	for i := 0; i < 3; i++ {
		u.Erase("h")
	}
	if got := u.Wear(e.Offset); got != 3 {
		t.Fatalf("wear = %d, want 3", got)
	}
	if got := u.MaxWear(); got != 3 {
		t.Fatalf("max wear = %d, want 3", got)
	}
	// Unallocated blocks have no wear.
	if got := u.Wear(e.End()); got != 0 {
		t.Fatalf("untouched block wear = %d", got)
	}
}

func TestFreeAccounting(t *testing.T) {
	u := newUFS(t)
	if u.Free() != testCapacity {
		t.Fatal("fresh UFS not fully free")
	}
	u.Alloc("a", testBlock)
	if u.Free() != testCapacity-testBlock {
		t.Fatalf("free = %d", u.Free())
	}
	if u.Capacity() != testCapacity {
		t.Fatal("capacity wrong")
	}
}

func TestAsFileSystemPreservesStream(t *testing.T) {
	var f AsFileSystem
	var in []trace.PosixOp
	for i := int64(0); i < 8; i++ {
		in = append(in, trace.PosixOp{Kind: trace.Read, Offset: i * (8 << 20), Size: 8 << 20})
	}
	out := f.Transform(in)
	if len(out) != 8 {
		t.Fatalf("stream mutated: %d ops", len(out))
	}
	st := trace.Characterize(out)
	// 7 of 8 ops continue exactly where the previous ended (the first op has
	// no predecessor); no metadata, no barriers.
	if st.SequentialPct < 7.0/8 || st.MetaOps != 0 || st.SyncOps != 0 {
		t.Fatalf("UFS injected overhead: %+v", st)
	}
	if f.Name() != "UFS" || f.ReadAhead() <= 0 {
		t.Fatal("identity accessors wrong")
	}
}

// Property: allocations never overlap and always stay inside capacity.
func TestAllocDisjointProperty(t *testing.T) {
	fn := func(sizes []uint16) bool {
		u, err := New(testCapacity, testBlock)
		if err != nil {
			return false
		}
		var extents []Extent
		for i, s := range sizes {
			e, err := u.Alloc(string(rune('a'+i%26))+string(rune('0'+i/26)), int64(s)+1)
			if err != nil {
				break // capacity exhausted is fine
			}
			extents = append(extents, e)
		}
		for i, a := range extents {
			if a.Offset < 0 || a.End() > testCapacity {
				return false
			}
			for _, b := range extents[i+1:] {
				if a.Offset < b.End() && b.Offset < a.End() {
					return false // overlap
				}
			}
		}
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

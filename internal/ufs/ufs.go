// Package ufs implements the paper's Unified File System (§3.2): a
// host-level layer that replaces both the conventional file system and the
// SSD's flash translation layer. UFS exposes the NVM as raw device addresses
// under application management — no blocks, no journal, no metadata in the
// data path — so the size and sequentiality of application requests survive
// all the way to the NVM transaction level, letting the SSD parallelize
// large requests over all channels, packages and dies.
//
// Because UFS subsumes the FTL, host-side responsibilities include space
// allocation, erase-before-write bookkeeping and wear tracking; this package
// provides all three.
package ufs

import (
	"fmt"
	"sort"

	"oocnvm/internal/obs"
	"oocnvm/internal/sim"
	"oocnvm/internal/trace"
)

// MaxRequest caps a single NVM-bound request; it exists only to bound memory
// per transaction, far above any block-layer coalescing limit.
const MaxRequest = 16 * 1024 * 1024

// Extent is a named, contiguous region of raw device address space. The
// DOoC-style semantics of the paper apply: large arrays are immutable once
// written, so extents carry a sealed flag instead of coherency machinery.
type Extent struct {
	Name   string
	Offset int64
	Size   int64
	Sealed bool
}

// End returns the first byte past the extent.
func (e Extent) End() int64 { return e.Offset + e.Size }

// UFS manages one device's raw address space.
type UFS struct {
	capacity  int64
	blockSize int64 // eraseblock size, for erase accounting
	next      int64
	extents   map[string]*Extent
	erased    map[int64]bool  // eraseblock index -> clean
	wear      map[int64]int64 // eraseblock index -> erase count

	probe obs.Probe
}

// SetProbe attaches an observability probe counting extent operations.
func (u *UFS) SetProbe(p obs.Probe) { u.probe = obs.OrNop(p) }

// New creates a UFS over a device of the given capacity and eraseblock size.
// All blocks start clean (factory state).
func New(capacity, blockSize int64) (*UFS, error) {
	if capacity <= 0 || blockSize <= 0 {
		return nil, fmt.Errorf("ufs: capacity and blockSize must be positive")
	}
	if capacity%blockSize != 0 {
		return nil, fmt.Errorf("ufs: capacity %d not a multiple of eraseblock %d", capacity, blockSize)
	}
	u := &UFS{
		capacity:  capacity,
		blockSize: blockSize,
		extents:   make(map[string]*Extent),
		erased:    make(map[int64]bool),
		wear:      make(map[int64]int64),
		probe:     obs.Nop{},
	}
	for b := int64(0); b < capacity/blockSize; b++ {
		u.erased[b] = true
	}
	return u, nil
}

// Capacity reports the managed space in bytes.
func (u *UFS) Capacity() int64 { return u.capacity }

// Free reports unallocated bytes.
func (u *UFS) Free() int64 { return u.capacity - u.next }

// Alloc reserves a contiguous extent, aligned up to the eraseblock size so
// the application can erase/rewrite it independently of its neighbours.
func (u *UFS) Alloc(name string, size int64) (Extent, error) {
	if size <= 0 {
		return Extent{}, fmt.Errorf("ufs: alloc %q: size must be positive", name)
	}
	if _, dup := u.extents[name]; dup {
		return Extent{}, fmt.Errorf("ufs: alloc %q: name already allocated", name)
	}
	aligned := size
	if rem := aligned % u.blockSize; rem != 0 {
		aligned += u.blockSize - rem
	}
	if u.next+aligned > u.capacity {
		return Extent{}, fmt.Errorf("ufs: alloc %q: need %d bytes, only %d free", name, aligned, u.Free())
	}
	e := &Extent{Name: name, Offset: u.next, Size: aligned}
	u.next += aligned
	u.extents[name] = e
	return *e, nil
}

// Lookup returns the named extent.
func (u *UFS) Lookup(name string) (Extent, bool) {
	e, ok := u.extents[name]
	if !ok {
		return Extent{}, false
	}
	return *e, true
}

// Extents lists all allocations ordered by offset.
func (u *UFS) Extents() []Extent {
	out := make([]Extent, 0, len(u.extents))
	for _, e := range u.extents {
		out = append(out, *e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Offset < out[j].Offset })
	return out
}

// Seal marks an extent immutable (the DOoC "large disk-located arrays are
// immutable once written" semantics).
func (u *UFS) Seal(name string) error {
	e, ok := u.extents[name]
	if !ok {
		return fmt.Errorf("ufs: seal %q: no such extent", name)
	}
	e.Sealed = true
	return nil
}

// Read emits the block operations for reading [off, off+size) of an extent.
// The request is passed through at full size (chunked only at MaxRequest),
// preserving the application's sequentiality.
func (u *UFS) Read(name string, off, size int64) ([]trace.BlockOp, error) {
	e, ok := u.extents[name]
	if !ok {
		return nil, fmt.Errorf("ufs: read %q: no such extent", name)
	}
	if off < 0 || size < 0 || off+size > e.Size {
		return nil, fmt.Errorf("ufs: read %q: range [%d,%d) outside extent of %d bytes", name, off, off+size, e.Size)
	}
	u.probe.Count("ufs.reads", 1)
	u.probe.Count("ufs.read_bytes", size)
	return chunk(trace.Read, e.Offset+off, size), nil
}

// Write emits the block operations for writing [off, off+size) of an extent,
// enforcing erase-before-write: every touched eraseblock must be clean, and
// the write dirties it. Writing a sealed extent is an error.
func (u *UFS) Write(name string, off, size int64) ([]trace.BlockOp, error) {
	e, ok := u.extents[name]
	if !ok {
		return nil, fmt.Errorf("ufs: write %q: no such extent", name)
	}
	if e.Sealed {
		return nil, fmt.Errorf("ufs: write %q: extent is sealed", name)
	}
	if off < 0 || size < 0 || off+size > e.Size {
		return nil, fmt.Errorf("ufs: write %q: range [%d,%d) outside extent of %d bytes", name, off, off+size, e.Size)
	}
	first := (e.Offset + off) / u.blockSize
	last := (e.Offset + off + size - 1) / u.blockSize
	for b := first; b <= last; b++ {
		if !u.erased[b] {
			return nil, fmt.Errorf("ufs: write %q: eraseblock %d not erased (erase-before-write)", name, b)
		}
	}
	for b := first; b <= last; b++ {
		u.erased[b] = false
	}
	u.probe.Count("ufs.writes", 1)
	u.probe.Count("ufs.write_bytes", size)
	return chunk(trace.Write, e.Offset+off, size), nil
}

// Erase emits the erase for an extent's whole range and marks its blocks
// clean again, bumping wear counters. Sealed extents must be unsealed by
// the owner first (erasing is the only mutation of a sealed array's space).
func (u *UFS) Erase(name string) ([]trace.BlockOp, error) {
	e, ok := u.extents[name]
	if !ok {
		return nil, fmt.Errorf("ufs: erase %q: no such extent", name)
	}
	e.Sealed = false
	first := e.Offset / u.blockSize
	last := (e.End() - 1) / u.blockSize
	var ops []trace.BlockOp
	for b := first; b <= last; b++ {
		u.erased[b] = true
		u.wear[b]++
		ops = append(ops, trace.BlockOp{Kind: trace.Erase, Offset: b * u.blockSize, Size: u.blockSize, Meta: true})
	}
	u.probe.Count("ufs.erases", last-first+1)
	return ops, nil
}

// Wear returns the erase count of the eraseblock containing the byte offset.
func (u *UFS) Wear(offset int64) int64 { return u.wear[offset/u.blockSize] }

// MaxWear returns the highest erase count across all blocks.
func (u *UFS) MaxWear() int64 {
	var m int64
	for _, w := range u.wear {
		if w > m {
			m = w
		}
	}
	return m
}

func chunk(kind trace.Kind, off, size int64) []trace.BlockOp {
	var ops []trace.BlockOp
	for cur := off; cur < off+size; {
		n := int64(MaxRequest)
		if cur+n > off+size {
			n = off + size - cur
		}
		ops = append(ops, trace.BlockOp{Kind: kind, Offset: cur, Size: n})
		cur += n
	}
	return ops
}

// AsFileSystem adapts UFS to the fs.FileSystem contract for the comparison
// harness: POSIX offsets are treated as raw device addresses and passed
// through unchanged except for MaxRequest chunking. Use a pointer so an
// attached probe survives across Transform calls.
type AsFileSystem struct {
	probe obs.Probe
	seq   int64 // synthetic translate-span timeline position
}

// SetProbe attaches an observability probe. Like the fs package's
// translators, translate spans land on a synthetic one-request-per-
// microsecond timeline showing fan-out, not timing.
func (a *AsFileSystem) SetProbe(p obs.Probe) { a.probe = obs.OrNop(p) }

// Name returns "UFS".
func (*AsFileSystem) Name() string { return "UFS" }

// ReadAhead reports the application-managed in-flight window: UFS clients
// issue asynchronous raw-address requests, so the pipeline is bounded by
// queue entries, not by a kernel readahead heuristic.
func (*AsFileSystem) ReadAhead() int64 { return 256 * 1024 * 1024 }

// Transform passes the stream through, preserving size and sequentiality.
func (a *AsFileSystem) Transform(ops []trace.PosixOp) []trace.BlockOp {
	probe := obs.OrNop(a.probe)
	var out []trace.BlockOp
	for _, op := range ops {
		outBefore := len(out)
		out = append(out, chunk(op.Kind, op.Offset, op.Size)...)
		probe.Count("ufs.posix_ops", 1)
		probe.Count("ufs.block_ops", int64(len(out)-outBefore))
		if probe.Enabled() {
			t := sim.Time(a.seq) * sim.Microsecond
			probe.Span(obs.LayerUFS, "passthrough", "translate", t, t+sim.Microsecond,
				obs.Attr{Key: "in_bytes", Value: op.Size},
				obs.Attr{Key: "out_ops", Value: int64(len(out) - outBefore)})
		}
		a.seq++
	}
	return out
}

// Package disk models the magnetic storage substrate of the HPC
// architecture (Figures 2 and 3): individual spinning disks with seek and
// rotational mechanics, and the Fibre-Channel-attached RAID sets the IONs
// expose. It is the source medium for preloading the OoC dataset onto
// compute-local NVM and the capacity tier H is preprocessed into (§2.1).
package disk

import (
	"fmt"

	"oocnvm/internal/sim"
)

// Params describes one spindle.
type Params struct {
	Name         string
	SeekAvg      sim.Time // average seek for a discontiguous access
	SeekTrack    sim.Time // track-to-track seek for a near access
	RotationalMs float64  // full-revolution time in milliseconds
	TransferBPS  float64  // sustained media rate
}

// Enterprise15K returns a 15k-RPM enterprise drive of the paper's era.
func Enterprise15K() Params {
	return Params{
		Name:         "15kRPM-SAS",
		SeekAvg:      3500 * sim.Microsecond,
		SeekTrack:    400 * sim.Microsecond,
		RotationalMs: 2.0, // 60/15000*2 ms per half revolution on average
		TransferBPS:  160e6,
	}
}

// Disk is one spindle with head-position state.
type Disk struct {
	p    Params
	tl   sim.Timeline
	head int64 // byte position after the last access
}

// New creates a disk.
func New(p Params) *Disk { return &Disk{p: p, head: -1} }

// Serve books an access of size bytes at offset, starting no earlier than
// at, and returns the completion time. Sequential continuations skip the
// seek and rotational delay.
func (d *Disk) Serve(at sim.Time, offset, size int64) sim.Time {
	var mech sim.Time
	switch {
	case d.head == offset:
		mech = 0
	case d.head >= 0 && abs64(offset-d.head) < 2<<20:
		mech = d.p.SeekTrack
	default:
		mech = d.p.SeekAvg + sim.Time(d.p.RotationalMs/2*float64(sim.Millisecond))
	}
	dur := mech + sim.DurationForBytes(size, d.p.TransferBPS)
	_, end := d.tl.Acquire(at, dur)
	d.head = offset + size
	return end
}

// Busy reports accumulated service time.
func (d *Disk) Busy() sim.Time { return d.tl.Busy() }

func abs64(x int64) int64 {
	if x < 0 {
		return -x
	}
	return x
}

// RAID0 stripes over multiple spindles, the external RAID enclosures of the
// ION storage tier.
type RAID0 struct {
	disks  []*Disk
	stripe int64
}

// NewRAID0 builds an array of n identical disks with the given stripe unit.
func NewRAID0(n int, p Params, stripe int64) (*RAID0, error) {
	if n <= 0 {
		return nil, fmt.Errorf("disk: RAID0 needs at least one disk")
	}
	if stripe <= 0 {
		return nil, fmt.Errorf("disk: RAID0 stripe must be positive, got %d", stripe)
	}
	r := &RAID0{stripe: stripe}
	for i := 0; i < n; i++ {
		r.disks = append(r.disks, New(p))
	}
	return r, nil
}

// Width returns the spindle count.
func (r *RAID0) Width() int { return len(r.disks) }

// Serve splits the access into stripe units across the spindles and returns
// the time the last unit completes.
func (r *RAID0) Serve(at sim.Time, offset, size int64) sim.Time {
	end := at
	for cur := offset; cur < offset+size; {
		n := r.stripe - cur%r.stripe
		if cur+n > offset+size {
			n = offset + size - cur
		}
		unit := cur / r.stripe
		d := r.disks[unit%int64(len(r.disks))]
		diskOff := (unit/int64(len(r.disks)))*r.stripe + cur%r.stripe
		if e := d.Serve(at, diskOff, n); e > end {
			end = e
		}
		cur += n
	}
	return end
}

// StreamBandwidth estimates the array's sequential streaming rate by serving
// a large read on a throwaway copy and measuring.
func (r *RAID0) StreamBandwidth() float64 {
	probe, err := NewRAID0(len(r.disks), r.disks[0].p, r.stripe)
	if err != nil {
		return 0
	}
	const total = 1 << 30
	end := probe.Serve(0, 0, total)
	return sim.Rate(total, end)
}

package disk

import (
	"testing"

	"oocnvm/internal/sim"
)

func TestSequentialSkipsSeek(t *testing.T) {
	d := New(Enterprise15K())
	e1 := d.Serve(0, 0, 1<<20)
	e2 := d.Serve(e1, 1<<20, 1<<20) // continues at the head
	first := e1
	second := e2 - e1
	if second >= first {
		t.Fatalf("sequential continuation (%v) not faster than cold access (%v)", second, first)
	}
}

func TestRandomPaysSeek(t *testing.T) {
	p := Enterprise15K()
	d := New(p)
	e1 := d.Serve(0, 0, 4096)
	e2 := d.Serve(e1, 10<<30, 4096)
	if e2-e1 < p.SeekAvg {
		t.Fatalf("far access served in %v, below average seek %v", e2-e1, p.SeekAvg)
	}
}

func TestNearSeekCheaper(t *testing.T) {
	p := Enterprise15K()
	near := New(p)
	e1 := near.Serve(0, 0, 4096)
	nearEnd := near.Serve(e1, 1<<20, 4096) // within 2 MiB: track-to-track

	far := New(p)
	f1 := far.Serve(0, 0, 4096)
	farEnd := far.Serve(f1, 10<<30, 4096)
	if nearEnd-e1 >= farEnd-f1 {
		t.Fatal("track-to-track seek not cheaper than average seek")
	}
}

func TestDiskSerializes(t *testing.T) {
	d := New(Enterprise15K())
	e1 := d.Serve(0, 0, 1<<20)
	// A request arriving at t=0 for later data still waits for the first.
	e2 := d.Serve(0, 1<<20, 1<<20)
	if e2 <= e1 {
		t.Fatal("disk served two requests concurrently")
	}
	if d.Busy() <= 0 {
		t.Fatal("busy accounting missing")
	}
}

func TestStreamingRateApproachesMediaRate(t *testing.T) {
	p := Enterprise15K()
	d := New(p)
	const total = 256 << 20
	end := d.Serve(0, 0, total)
	rate := sim.Rate(total, end)
	if rate < 0.9*p.TransferBPS || rate > p.TransferBPS {
		t.Fatalf("streaming rate %.0f MB/s vs media %.0f MB/s", rate/1e6, p.TransferBPS/1e6)
	}
}

func TestRAID0Validation(t *testing.T) {
	if _, err := NewRAID0(0, Enterprise15K(), 1<<20); err == nil {
		t.Fatal("zero disks accepted")
	}
	if _, err := NewRAID0(4, Enterprise15K(), 0); err == nil {
		t.Fatal("zero stripe accepted")
	}
}

func TestRAID0ScalesBandwidth(t *testing.T) {
	one, err := NewRAID0(1, Enterprise15K(), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	eight, err := NewRAID0(8, Enterprise15K(), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if eight.Width() != 8 {
		t.Fatal("width wrong")
	}
	bw1 := one.StreamBandwidth()
	bw8 := eight.StreamBandwidth()
	if bw8 < 5*bw1 {
		t.Fatalf("8-wide RAID0 = %.0f MB/s, single = %.0f MB/s; want ~8x", bw8/1e6, bw1/1e6)
	}
}

func TestRAID0ServesWholeRange(t *testing.T) {
	r, err := NewRAID0(4, Enterprise15K(), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	// Unaligned range spanning several stripes completes.
	end := r.Serve(0, 123456, 10<<20)
	if end <= 0 {
		t.Fatal("no completion time")
	}
	// A second pass over the same range is sequential per spindle and faster.
	end2 := r.Serve(end, 123456+10<<20, 10<<20)
	if end2-end > end {
		t.Fatalf("second stripe pass slower: %v vs %v", end2-end, end)
	}
}

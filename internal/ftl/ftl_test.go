package ftl

import (
	"testing"

	"oocnvm/internal/nvm"
)

// smallGeo keeps superblocks tiny so GC paths are cheap to exercise:
// 2 channels x 1 package x 2 dies, 8 superblocks.
func smallGeo() nvm.Geometry {
	return nvm.Geometry{Channels: 2, PackagesPerChannel: 1, DiesPerPackage: 2, BlocksPerPlane: 8}
}

func newSmall(t *testing.T, cell nvm.CellType) *FTL {
	t.Helper()
	f, err := New(smallGeo(), nvm.Params(cell), Config{ReserveSuperblocks: 2})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestNewRejectsBadGeometry(t *testing.T) {
	if _, err := New(nvm.Geometry{}, nvm.Params(nvm.SLC), Config{}); err == nil {
		t.Fatal("bad geometry accepted")
	}
}

func TestCapacityAccounting(t *testing.T) {
	f := newSmall(t, nvm.SLC)
	cell := nvm.Params(nvm.SLC)
	wantPages := int64(smallGeo().Dies()*cell.Planes*smallGeo().BlocksPerPlane) * int64(cell.PagesPerBlock)
	if f.Pages() != wantPages {
		t.Fatalf("pages = %d, want %d", f.Pages(), wantPages)
	}
	if f.CapacityBytes() != wantPages*cell.PageSize {
		t.Fatal("capacity wrong")
	}
	if f.PageSize() != cell.PageSize {
		t.Fatal("page size wrong")
	}
}

func TestReadIdentityStriping(t *testing.T) {
	f := newSmall(t, nvm.SLC)
	ops := f.Read(0, 4*f.PageSize())
	if len(ops) != 4 {
		t.Fatalf("4 pages -> %d ops", len(ops))
	}
	// Identity mapping stripes channel-first.
	if ops[0].Loc.Channel == ops[1].Loc.Channel {
		t.Fatal("consecutive pages on one channel; striping broken")
	}
	for _, op := range ops {
		if op.Op != nvm.OpRead {
			t.Fatal("wrong verb")
		}
	}
}

func TestReadPartialPages(t *testing.T) {
	f := newSmall(t, nvm.SLC)
	// A sub-page read still senses the whole page.
	if got := len(f.Read(100, 10)); got != 1 {
		t.Fatalf("sub-page read -> %d ops, want 1", got)
	}
	// A 2-byte read straddling a page boundary needs both pages.
	if got := len(f.Read(f.PageSize()-1, 2)); got != 2 {
		t.Fatalf("straddling read -> %d ops, want 2", got)
	}
	if f.Read(0, 0) != nil {
		t.Fatal("zero-size read should be empty")
	}
}

func TestWriteAllocatesLog(t *testing.T) {
	f := newSmall(t, nvm.SLC)
	ops := f.Write(0, 3*f.PageSize())
	programs := 0
	for _, op := range ops {
		if op.Op == nvm.OpProgram {
			programs++
		}
	}
	if programs != 3 {
		t.Fatalf("programs = %d, want 3", programs)
	}
	st := f.Stats()
	if st.HostWrites != 3 || st.NANDWrites != 3 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestWriteThenReadRemapped(t *testing.T) {
	f := newSmall(t, nvm.SLC)
	f.Write(0, f.PageSize())
	// After the write, reading lpn 0 must hit the log location, not the
	// identity location.
	ops := f.Read(0, f.PageSize())
	if len(ops) != 1 {
		t.Fatal("read op count")
	}
	// The log fills superblock s in layout order; identity lpn 0 also maps
	// to channel 0. We can't distinguish by channel alone, so overwrite a
	// page whose identity channel differs.
	f2 := newSmall(t, nvm.SLC)
	lpn := int64(1) // identity: channel 1
	f2.Write(lpn*f2.PageSize(), f2.PageSize())
	got := f2.Read(lpn*f2.PageSize(), f2.PageSize())[0].Loc
	idWant := f2.Locate(lpn)
	if got == idWant {
		t.Fatalf("overwritten page still reads identity location %+v", got)
	}
}

func TestPreload(t *testing.T) {
	f := newSmall(t, nvm.SLC)
	if err := f.Preload(f.CapacityBytes() / 2); err != nil {
		t.Fatal(err)
	}
	// Preloading beyond capacity minus reserve must fail.
	f2 := newSmall(t, nvm.SLC)
	if err := f2.Preload(f2.CapacityBytes()); err == nil {
		t.Fatal("over-preload accepted")
	}
}

func TestGCReclaimsInvalidatedSpace(t *testing.T) {
	f := newSmall(t, nvm.SLC)
	// Repeatedly overwrite one small region. Each overwrite invalidates the
	// previous copy, so GC victims are nearly empty; the FTL must be able to
	// write far more than the free pool's raw size.
	region := 4 * f.PageSize()
	total := 4 * f.CapacityBytes()
	var erases int
	for written := int64(0); written < total; written += region {
		for _, op := range f.Write(0, region) {
			if op.Op == nvm.OpErase {
				erases++
			}
		}
	}
	st := f.Stats()
	if st.GCRuns == 0 || erases == 0 {
		t.Fatalf("GC never ran: %+v", st)
	}
	if st.FreeSuper < 1 {
		t.Fatal("free pool exhausted")
	}
}

func TestGCRelocatesLiveData(t *testing.T) {
	f := newSmall(t, nvm.SLC)
	// Fill most of the device with live data (distinct lpns), then keep
	// writing: GC victims now hold live pages that must be relocated.
	pageSz := f.PageSize()
	livePages := f.Pages() * 3 / 4
	f.Write(0, livePages*pageSz)
	// Overwrite scattered pages (stride co-prime to the superblock size) so
	// invalidation spreads across superblocks and GC victims stay partially
	// live, forcing relocation.
	for i := int64(0); i < f.Pages()/2; i++ {
		f.Write(((i*7)%livePages)*pageSz, pageSz)
	}
	st := f.Stats()
	if st.GCRuns == 0 {
		t.Fatal("GC never triggered")
	}
	if st.RelocatedPages == 0 {
		t.Fatal("GC triggered but never relocated live pages")
	}
	if wa := f.WriteAmplification(); wa <= 1 {
		t.Fatalf("write amplification %v, want > 1 with live relocation", wa)
	}
}

func TestWearLevelingPrefersLeastWorn(t *testing.T) {
	f := newSmall(t, nvm.SLC)
	// Hammer a small region for several device lifetimes of the free pool.
	region := 2 * f.PageSize()
	for i := 0; i < int(f.Pages()); i++ {
		f.Write(0, region)
	}
	// With wear-aware allocation the spread between the most and least worn
	// superblocks stays small.
	max := f.MaxWear()
	if max == 0 {
		t.Fatal("no wear recorded")
	}
	var min int64 = 1 << 62
	for i := range f.sb {
		if int64(i) < f.preloaded {
			continue
		}
		if f.sb[i].wear < min {
			min = f.sb[i].wear
		}
	}
	if max-min > max/2+2 {
		t.Fatalf("wear spread too large: min %d max %d", min, max)
	}
}

func TestTrimInvalidates(t *testing.T) {
	f := newSmall(t, nvm.SLC)
	f.Write(0, 8*f.PageSize())
	before := f.Stats()
	if ops := f.Erase(0, 8*f.PageSize()); ops != nil {
		t.Fatal("trim must not issue device ops under an FTL")
	}
	// Trimmed pages are unmapped: a subsequent read falls back to identity.
	got := f.Read(0, f.PageSize())[0].Loc
	if got != f.Locate(0) {
		t.Fatal("trim did not unmap")
	}
	_ = before
}

func TestLocateMatchesGeometryStriping(t *testing.T) {
	f := newSmall(t, nvm.MLC)
	geo := smallGeo()
	cell := nvm.Params(nvm.MLC)
	for lpn := int64(0); lpn < 64; lpn++ {
		if f.Locate(lpn) != geo.MapLogical(lpn, cell.Planes) {
			t.Fatalf("Locate(%d) diverges from geometry striping", lpn)
		}
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() Stats {
		f := newSmall(t, nvm.SLC)
		f.Preload(f.CapacityBytes() / 4)
		for i := 0; i < 200; i++ {
			f.Write(int64(i%32)*f.PageSize(), f.PageSize())
		}
		return f.Stats()
	}
	if run() != run() {
		t.Fatal("FTL behaviour not deterministic")
	}
}

func TestTrimOfOverwrittenPreloadedPageRegression(t *testing.T) {
	// Regression: overwrite a preloaded identity page (invalidating its
	// identity slot), then trim the new copy, then trim the region again.
	// Before the dead-set fix the second trim decremented the preloaded
	// superblock's valid count a second time, driving it negative.
	f := newSmall(t, nvm.SLC)
	if err := f.Preload(f.CapacityBytes() / 4); err != nil {
		t.Fatal(err)
	}
	ps := f.PageSize()
	f.Write(0, ps) // invalidates identity slot 0
	f.Erase(0, ps) // trims the log copy; identity slot already dead
	f.Erase(0, ps) // must be a no-op for superblock 0's count
	if v := f.sb[0].valid; v < 0 {
		t.Fatalf("preloaded superblock valid count went negative: %d", v)
	}
	checkInvariants(t, f)
}

func TestRetireBlockRelocatesMappedPages(t *testing.T) {
	f := newSmall(t, nvm.SLC)
	ps := f.PageSize()
	// Write a few pages so the active superblock holds live mapped data.
	f.Write(0, 4*ps)
	victim := f.active
	ppn := victim * f.spb // first page of the active superblock
	r := f.RetireBlock(ppn)
	if !r.OK || !r.Retired {
		t.Fatalf("retire failed: %+v", r)
	}
	if !f.sb[victim].bad {
		t.Fatal("superblock not marked bad")
	}
	// The four pages must have been relocated: reads from the bad block plus
	// re-programs elsewhere.
	reads, progs := 0, 0
	for _, op := range r.Ops {
		switch op.Op {
		case nvm.OpRead:
			reads++
			if f.superOf(op.PPN) != victim {
				t.Fatal("relocation read outside the retired superblock")
			}
		case nvm.OpProgram:
			progs++
			if f.superOf(op.PPN) == victim {
				t.Fatal("relocation programmed back onto the retired superblock")
			}
		}
	}
	if reads != 4 || progs != 4 {
		t.Fatalf("relocation traffic: %d reads, %d programs, want 4/4", reads, progs)
	}
	// Reads of the data now resolve outside the retired superblock.
	for lpn := int64(0); lpn < 4; lpn++ {
		got := f.Read(lpn*ps, ps)[0].PPN
		if f.superOf(got) == victim {
			t.Fatalf("lpn %d still reads from retired superblock", lpn)
		}
	}
	checkInvariants(t, f)
}

func TestRetireBlockRelocatesPreloadedIdentityPages(t *testing.T) {
	f := newSmall(t, nvm.SLC)
	if err := f.Preload(f.CapacityBytes() / 4); err != nil {
		t.Fatal(err)
	}
	// Retire the first preloaded superblock: every identity page is valid and
	// must be relocated into the log.
	r := f.RetireBlock(0)
	if !r.OK || !r.Retired {
		t.Fatalf("retire failed: %+v", r)
	}
	progs := 0
	for _, op := range r.Ops {
		if op.Op == nvm.OpProgram {
			progs++
		}
	}
	if int64(progs) != f.spb {
		t.Fatalf("relocated %d pages, want the full superblock %d", progs, f.spb)
	}
	// The preloaded data is now remapped, not identity.
	if got := f.Read(0, f.PageSize())[0].PPN; f.superOf(got) == 0 {
		t.Fatal("preloaded page still reads from retired superblock")
	}
	checkInvariants(t, f)
}

func TestRetireBlockIdempotentAndExhaustion(t *testing.T) {
	f := newSmall(t, nvm.SLC)
	r1 := f.RetireBlock(0)
	if !r1.OK || !r1.Retired {
		t.Fatalf("first retire: %+v", r1)
	}
	// Same block again: already bad, nothing to do, still OK.
	r2 := f.RetireBlock(0)
	if !r2.OK || r2.Retired || r2.Ops != nil {
		t.Fatalf("second retire of same block: %+v", r2)
	}
	// Retire superblocks until the FTL refuses (no usable free space left).
	refused := false
	for sbi := int64(1); sbi < f.super; sbi++ {
		r := f.RetireBlock(sbi * f.spb)
		if !r.OK {
			refused = true
			break
		}
	}
	if !refused {
		t.Fatal("FTL never refused retirement; free pool accounting broken")
	}
	checkInvariants(t, f)
}

func TestStatsReportGrownBad(t *testing.T) {
	f := newSmall(t, nvm.SLC)
	before := f.Stats()
	f.RetireBlock(0)
	after := f.Stats()
	if after.GrownBadSuper != before.GrownBadSuper+1 {
		t.Fatalf("GrownBadSuper %d -> %d", before.GrownBadSuper, after.GrownBadSuper)
	}
	if after.FreeSuper != before.FreeSuper-1 {
		t.Fatalf("FreeSuper %d -> %d, want one fewer", before.FreeSuper, after.FreeSuper)
	}
}

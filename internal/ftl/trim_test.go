package ftl

import (
	"testing"

	"oocnvm/internal/nvm"
)

// TestTrimOpenSuperblockPages trims pages that live in the currently open
// (unsealed) superblock — the regression the durable-journal work guards:
// the open superblock's valid count must drop, the mappings must vanish,
// and the freed room must be reclaimable by a later seal + GC without the
// write pointer or valid accounting going out of range.
func TestTrimOpenSuperblockPages(t *testing.T) {
	f := newSmall(t, nvm.SLC)
	ps := f.PageSize()
	// Land a run of writes in the open superblock.
	for lpn := int64(0); lpn < 8; lpn++ {
		checkOps(t, f, f.Write(lpn*ps, ps))
	}
	if f.active < 0 {
		t.Fatal("no open superblock after writes")
	}
	open := f.active
	before := f.sb[open].valid
	if before < 8 {
		t.Fatalf("open superblock holds %d valid pages, want >= 8", before)
	}
	// Trim half of them while the superblock is still open.
	checkOps(t, f, f.Erase(0, 4*ps))
	if got := f.sb[open].valid; got != before-4 {
		t.Fatalf("open superblock valid = %d after trim, want %d", got, before-4)
	}
	for lpn := int64(0); lpn < 4; lpn++ {
		if _, ok := f.l2p[lpn]; ok {
			t.Fatalf("lpn %d still mapped after trim", lpn)
		}
	}
	checkInvariants(t, f)
	// The superblock must still accept programs and later seal cleanly.
	for lpn := int64(20); lpn < 28; lpn++ {
		checkOps(t, f, f.Write(lpn*ps, ps))
	}
	checkInvariants(t, f)
}

// TestTrimDeadMapRelocationInterplay exercises the dead set against GC
// relocation: trimmed preloaded identity slots must stay dead through a GC
// pass over their superblock (no resurrection, no double-decrement), and
// re-trimming them must be a no-op.
func TestTrimDeadMapRelocationInterplay(t *testing.T) {
	f := newSmall(t, nvm.SLC)
	ps := f.PageSize()
	// Preload two superblocks of identity-mapped data.
	if err := f.Preload(2 * f.spb * ps); err != nil {
		t.Fatal(err)
	}
	// Trim a band inside preloaded superblock 0: identity slots die.
	checkOps(t, f, f.Erase(0, 4*ps))
	for lpn := int64(0); lpn < 4; lpn++ {
		if !f.dead[lpn] {
			t.Fatalf("identity slot %d not dead after trim", lpn)
		}
	}
	valid0 := f.sb[0].valid
	// Re-trim the same band: at-most-once invalidation.
	checkOps(t, f, f.Erase(0, 4*ps))
	if f.sb[0].valid != valid0 {
		t.Fatalf("double trim moved valid count %d -> %d", valid0, f.sb[0].valid)
	}
	checkInvariants(t, f)
	// Overwrite the rest of preloaded superblock 0, making it all garbage,
	// then churn writes until GC erases it. Overwrites of live identity
	// slots must mark them dead exactly once alongside the trim-dead band.
	for lpn := int64(4); lpn < f.spb; lpn++ {
		checkOps(t, f, f.Write(lpn*ps, ps))
	}
	checkInvariants(t, f)
	if f.sb[0].valid != 0 {
		t.Fatalf("preloaded superblock still has %d valid after full invalidation", f.sb[0].valid)
	}
	// Churn overwrites to force GC; superblock 0 is an all-garbage victim.
	for i := int64(0); i < 6*f.spb; i++ {
		lpn := 4 + i%(f.spb-4)
		checkOps(t, f, f.Write(lpn*ps, ps))
		checkInvariants(t, f)
	}
	// The dead band must never have been resurrected by relocation.
	for lpn := int64(0); lpn < 4; lpn++ {
		if _, ok := f.l2p[lpn]; ok {
			t.Fatalf("trimmed identity slot %d resurrected by GC", lpn)
		}
		if !f.dead[lpn] {
			t.Fatalf("identity slot %d lost its dead mark", lpn)
		}
	}
	// Writing a dead slot again revives it as a normal mapped page.
	checkOps(t, f, f.Write(0, ps))
	if _, ok := f.l2p[0]; !ok {
		t.Fatal("write after trim did not remap lpn 0")
	}
	checkInvariants(t, f)
}

// TestTrimJournalsInDurableMode pins that durable-mode trims append
// versioned trim records (visible as journal flushes once a record page
// fills) and that trimming never emits data-page programs.
func TestTrimJournalsInDurableMode(t *testing.T) {
	f, err := New(smallGeo(), nvm.Params(nvm.SLC), Config{
		ReserveSuperblocks: 2,
		// One record per flushed page would be pathological; keep the page
		// small so this test sees journal traffic without thousands of ops.
		Durable: DurableConfig{Enabled: true, CheckpointEveryPages: 1 << 20, JournalEntriesPerPage: 16},
	})
	if err != nil {
		t.Fatal(err)
	}
	ps := f.PageSize()
	count := 0
	for lpn := int64(0); lpn < 64; lpn++ {
		var torn bool
		count, torn = applyOps(f.Media(), f.Write(lpn*ps, ps), count, 0)
		if torn {
			t.Fatal("unexpected tear")
		}
	}
	base := f.Stats()
	var trimOps []nvm.PageOp
	for lpn := int64(0); lpn < 64; lpn += 2 {
		ops := f.Erase(lpn*ps, ps)
		for _, op := range ops {
			if op.Op == nvm.OpProgram && !op.Meta {
				t.Fatalf("trim emitted a data program: %+v", op)
			}
		}
		trimOps = append(trimOps, ops...)
		count, _ = applyOps(f.Media(), ops, count, 0)
	}
	if len(trimOps) == 0 {
		t.Fatal("64 page trims with 16-record journal pages flushed nothing")
	}
	if got := f.Stats().JournalPages - base.JournalPages; got == 0 {
		t.Fatal("trim journal traffic not counted in stats")
	}
}

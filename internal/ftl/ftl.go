// Package ftl implements the flash translation layer that conventional
// file-system configurations run on top of (paper Figure 4a). It provides
// page-granular logical-to-physical mapping, log-structured writes striped
// over all channels/planes/dies in superblock units, greedy garbage
// collection with valid-page relocation, and wear-aware free-block selection.
//
// UFS configurations bypass this layer entirely (Figure 4b): "UFS can be
// seen to both replace existing file systems but also, and more importantly,
// the underlying FTL of the SSD."
package ftl

import (
	"container/heap"
	"fmt"

	"oocnvm/internal/nvm"
	"oocnvm/internal/obs"
	"oocnvm/internal/obs/timeseries"
	"oocnvm/internal/pool"
	"oocnvm/internal/sim"
)

// FTL is a page-mapped translation layer over one device's geometry.
type FTL struct {
	geo   nvm.Geometry
	cell  nvm.CellParams
	rowsz int64 // pages per "row": Channels * Planes * DiesPerChannel
	ppb   int64 // pages per eraseblock
	spb   int64 // pages per superblock: rowsz * ppb
	super int64 // number of superblocks

	l2p map[int64]int64 // overrides; absent means identity (preloaded layout)
	p2l map[int64]int64 // reverse map for relocation
	// dead marks preloaded-region identity slots that are no longer valid
	// (overwritten or trimmed). Without it a trim of an overwritten
	// preloaded page would double-decrement the superblock's valid count,
	// and retirement could relocate stale identity data.
	dead map[int64]bool

	sb        []superblock
	freeHeap  wearHeap // free superblocks ordered by wear (wear leveling)
	active    int64    // currently filling superblock, -1 if none
	writePtr  int64    // next page slot within the active superblock
	inGC      bool     // guards against reentrant garbage collection
	preloaded int64    // superblocks occupied by preloaded, identity-mapped data
	reserve   int      // GC trigger: minimum free superblocks to maintain

	// Statistics.
	gcRuns     int64
	relocated  int64
	hostWrites int64
	nandWrites int64
	grownBad   int64

	// Durable-metadata model (nil when Config.Durable is off): journal
	// and checkpoint bookkeeping, the simulated media state, and the
	// degraded read-only latch mount-time recovery sets when metadata is
	// unrecoverable.
	dur      *durState
	media    *Media
	readOnly bool

	probe obs.Probe
	tap   nvm.MappingTap

	// opPool, when the drive attaches one, recycles the page-op slices the
	// host-facing translations (Read/Write/Erase) return. opRef is the live
	// borrow: the drive is a single goroutine with one outstanding
	// translation at a time, borrowed here and released by ReleaseOps once
	// the request's scheduling is complete. Cold paths (RetireBlock) keep
	// allocating their own slices.
	opPool *pool.Buffers[nvm.PageOp]
	opRef  pool.Ref[nvm.PageOp]
}

// SetOpPool attaches the drive's per-instance page-op free list. Nil leaves
// translations allocating fresh slices (the behavior outside a drive).
func (f *FTL) SetOpPool(p *pool.Buffers[nvm.PageOp]) { f.opPool = p }

// takeOps returns the slice a host-facing translation builds into: a pooled
// borrow when the drive attached a free list, a fresh allocation otherwise.
func (f *FTL) takeOps(hint int) []nvm.PageOp {
	if f.opPool == nil {
		return make([]nvm.PageOp, 0, hint)
	}
	f.opRef = f.opPool.Get(hint)
	return f.opRef.Slice()
}

// ReleaseOps returns a translation's page-op slice to the drive's pool; the
// slice (and any aliases) must not be touched afterwards. Slices that were
// never borrowed — nil translations, cold-path allocations — are ignored.
func (f *FTL) ReleaseOps(ops []nvm.PageOp) {
	if f.opPool == nil || !f.opRef.Valid() {
		return
	}
	f.opPool.Put(f.opRef, ops)
	f.opRef = pool.Ref[nvm.PageOp]{}
}

// SetProbe attaches an observability probe: map-lookup and GC counters, and
// the erase-amplification inputs (host vs NAND writes, relocations).
func (f *FTL) SetProbe(p obs.Probe) { f.probe = obs.OrNop(p) }

// SetMappingTap attaches a conformance tap observing every placement,
// lookup and trim this FTL performs. Nil detaches.
func (f *FTL) SetMappingTap(t nvm.MappingTap) { f.tap = t }

type superblock struct {
	valid  int64
	wear   int64
	sealed bool
	free   bool
	// bad marks a grown-bad superblock: retired from circulation after a
	// program or erase failure, never allocated or collected again.
	bad bool
}

// Config tunes the FTL.
type Config struct {
	// ReserveSuperblocks is the free-pool low-water mark that triggers GC.
	ReserveSuperblocks int
	// Durable enables the crash-consistent metadata model: per-page OOB
	// tags, an L2P delta journal and periodic mapping-table checkpoints.
	Durable DurableConfig
}

// New creates an FTL over the given geometry and medium.
func New(geo nvm.Geometry, cell nvm.CellParams, cfg Config) (*FTL, error) {
	if err := geo.Validate(); err != nil {
		return nil, err
	}
	if cfg.ReserveSuperblocks <= 0 {
		cfg.ReserveSuperblocks = 2
	}
	f := &FTL{
		geo:     geo,
		cell:    cell,
		rowsz:   int64(geo.Channels * cell.Planes * geo.DiesPerChannel()),
		ppb:     int64(cell.PagesPerBlock),
		super:   int64(geo.BlocksPerPlane),
		l2p:     make(map[int64]int64),
		p2l:     make(map[int64]int64),
		dead:    make(map[int64]bool),
		active:  -1,
		reserve: cfg.ReserveSuperblocks,
		probe:   obs.Nop{},
	}
	f.spb = f.rowsz * f.ppb
	f.sb = make([]superblock, f.super)
	for i := range f.sb {
		f.sb[i].free = true
		heap.Push(&f.freeHeap, wearEntry{id: int64(i), wear: 0})
	}
	if cfg.Durable.Enabled {
		d := cfg.Durable
		if d.CheckpointEveryPages <= 0 {
			d.CheckpointEveryPages = 4 * f.spb
		}
		if d.JournalEntriesPerPage <= 0 {
			d.JournalEntriesPerPage = int(cell.PageSize / 16)
		}
		if d.JournalEntriesPerPage <= 0 {
			d.JournalEntriesPerPage = 16
		}
		f.dur = &durState{
			cfg:       d,
			ver:       make(map[int64]uint64),
			perPage:   d.JournalEntriesPerPage,
			ckptEvery: d.CheckpointEveryPages,
		}
		f.media = newMedia(f.Pages(), f.spb, f.rowsz, f.ppb)
	}
	return f, nil
}

// Pages reports the device's total page population.
func (f *FTL) Pages() int64 { return f.super * f.spb }

// CapacityBytes reports the device's raw capacity.
func (f *FTL) CapacityBytes() int64 { return f.Pages() * f.cell.PageSize }

// PageSize reports the translation granularity.
func (f *FTL) PageSize() int64 { return f.cell.PageSize }

// Locate maps a physical page number to its resources. Pages stripe
// channel-first, plane-second, die-third within a "row"; ppb consecutive
// rows of one die-plane form an eraseblock, and the eraseblocks of one row
// group across all die-planes form a superblock.
func (f *FTL) Locate(ppn int64) nvm.Location {
	return f.geo.MapLogical(ppn, f.cell.Planes)
}

func (f *FTL) superOf(ppn int64) int64 { return ppn / f.spb }

// Preload marks the first `bytes` of the logical space as resident,
// identity-mapped, fully valid data (the OoC dataset staged onto the SSD
// before computation). It returns an error if the data exceeds capacity
// minus the GC reserve.
func (f *FTL) Preload(bytes int64) error {
	pages := (bytes + f.cell.PageSize - 1) / f.cell.PageSize
	supers := (pages + f.spb - 1) / f.spb
	if supers > f.super-int64(f.reserve) {
		return fmt.Errorf("ftl: preload of %d bytes needs %d superblocks, only %d available",
			bytes, supers, f.super-int64(f.reserve))
	}
	// Rebuild the free heap without the preloaded superblocks.
	f.freeHeap = f.freeHeap[:0]
	for i := int64(0); i < f.super; i++ {
		if i < supers {
			f.sb[i] = superblock{valid: f.spb, sealed: true}
			continue
		}
		if f.sb[i].free {
			heap.Push(&f.freeHeap, wearEntry{id: i, wear: f.sb[i].wear})
		}
	}
	f.preloaded = supers
	if f.dur != nil {
		// The identity-mapped dataset is durable content: version 0 pages
		// at their identity locations, plus a genesis journal record so a
		// crash before the first checkpoint still recovers the preload
		// extent. Preload runs before the device exists, so the genesis
		// page commits directly rather than riding a request.
		for p := int64(0); p < supers*f.spb; p++ {
			f.media.data[p] = OOB{LPN: p, Ver: 0}
		}
		f.media.commitDirect(metaPage{Kind: metaJournal,
			Recs: []rec{{Kind: recPreload, A: supers}}})
		f.dur.journalPages++
	}
	return nil
}

// lookup returns the physical page currently holding lpn.
func (f *FTL) lookup(lpn int64) int64 {
	f.probe.Count("ftl.map.lookups", 1)
	if ppn, ok := f.l2p[lpn]; ok {
		f.probe.Count("ftl.map.remapped", 1)
		return ppn
	}
	return lpn // identity: preloaded layout
}

// Read translates a byte-addressed read into page operations.
func (f *FTL) Read(offset, size int64) []nvm.PageOp {
	first := offset / f.cell.PageSize
	last := (offset + size - 1) / f.cell.PageSize
	if size <= 0 {
		return nil
	}
	ops := f.takeOps(int(last - first + 1))
	for lpn := first; lpn <= last; lpn++ {
		ppn := f.lookup(lpn) % f.Pages()
		if f.tap != nil {
			f.tap.MapRead(lpn, ppn)
		}
		ops = append(ops, nvm.PageOp{Op: nvm.OpRead, Loc: f.Locate(ppn), PPN: ppn})
	}
	return ops
}

// Write translates a byte-addressed write into page programs, appending to
// the active superblock. The returned slice may also contain relocation
// reads/programs and erases when garbage collection was required.
func (f *FTL) Write(offset, size int64) []nvm.PageOp {
	if size <= 0 {
		return nil
	}
	first := offset / f.cell.PageSize
	last := (offset + size - 1) / f.cell.PageSize
	// A due checkpoint rides ahead of the write that triggered it, so the
	// journal the snapshot supersedes is already flushed and bounded.
	ops := f.maybeCheckpoint(f.takeOps(int(last - first + 1)))
	for lpn := first; lpn <= last; lpn++ {
		f.hostWrites++
		ops = f.program(ops, lpn, true)
	}
	f.probe.Count("ftl.host_writes", last-first+1)
	return ops
}

// program appends one logical page to the log, running GC first if the free
// pool is exhausted, appending the emitted device operations to ops. host
// marks a host write (bumping the page's durable version), as opposed to a
// GC or retirement relocation (which moves the existing version).
func (f *FTL) program(ops []nvm.PageOp, lpn int64, host bool) []nvm.PageOp {
	if f.active < 0 || f.writePtr >= f.spb {
		if f.active >= 0 {
			f.sb[f.active].sealed = true
			ops = f.appendRec(ops, rec{Kind: recSeal, A: f.active})
		}
		ops = f.maybeGC(ops)
		// GC relocation re-enters program and may already have opened (and
		// partially filled) a fresh superblock; allocating unconditionally
		// here would abandon it mid-fill and strand its valid pages.
		if f.active < 0 || f.writePtr >= f.spb {
			f.active = f.allocSuperblock()
			f.writePtr = 0
			// Every allocation flushes the journal with its alloc record
			// aboard: the newest replayable alloc then always designates
			// the true open superblock, confining unflushed placements to
			// the one superblock recovery scans by OOB tag.
			if f.dur != nil {
				f.dur.buf = append(f.dur.buf, rec{Kind: recAlloc, A: f.active})
				ops = f.flushJournal(ops)
			}
		}
	}
	// Invalidate the previous version.
	old, had := f.l2p[lpn]
	if had {
		f.sb[f.superOf(old)].valid--
		delete(f.p2l, old)
	} else if lpn < f.preloaded*f.spb && !f.dead[lpn] {
		// Overwriting identity-mapped preloaded data; the identity slot is
		// dead from here on.
		f.sb[f.superOf(lpn)].valid--
		f.dead[lpn] = true
	}
	ppn := f.active*f.spb + f.writePtr
	f.writePtr++
	f.l2p[lpn] = ppn
	f.p2l[ppn] = lpn
	if f.tap != nil {
		f.tap.MapWrite(lpn, ppn)
	}
	f.sb[f.active].valid++
	f.nandWrites++
	f.probe.Count("ftl.nand_writes", 1)
	var ver uint64
	if f.dur != nil {
		if host {
			f.dur.ver[lpn]++
			f.dur.sinceCkpt++
		}
		ver = f.dur.ver[lpn]
		ops = f.appendRec(ops, rec{Kind: recPlace, A: lpn, B: ppn, V: ver})
	}
	ops = append(ops, nvm.PageOp{Op: nvm.OpProgram, Loc: f.Locate(ppn), PPN: ppn, LPN: lpn, Ver: ver})
	return ops
}

// allocSuperblock takes the least-worn free superblock, skipping stale heap
// entries for superblocks that have since grown bad.
func (f *FTL) allocSuperblock() int64 {
	for f.freeHeap.Len() > 0 {
		e := heap.Pop(&f.freeHeap).(wearEntry)
		if f.sb[e.id].bad {
			continue
		}
		f.sb[e.id].free = false
		f.sb[e.id].sealed = false
		f.sb[e.id].valid = 0
		return e.id
	}
	panic("ftl: free pool exhausted despite GC reserve")
}

// maybeGC reclaims sealed superblocks until the free pool meets the reserve.
// It refuses to run reentrantly: collect's relocation programs call back
// into program, and a nested GC round could pick a victim an outer round is
// still collecting — the victim would be pushed onto the free heap twice and
// later be the active log twice, overwriting live pages.
func (f *FTL) maybeGC(ops []nvm.PageOp) []nvm.PageOp {
	if f.inGC {
		return ops
	}
	f.inGC = true
	defer func() { f.inGC = false }()
	for f.freeHeap.Len() < f.reserve {
		victim := f.pickVictim()
		if victim < 0 {
			break // nothing reclaimable
		}
		ops = f.collect(ops, victim)
	}
	return ops
}

// pickVictim chooses the sealed, non-preloaded superblock with the fewest
// valid pages (greedy GC).
func (f *FTL) pickVictim() int64 {
	best := int64(-1)
	bestValid := f.spb + 1
	for i := f.preloaded; i < f.super; i++ {
		s := &f.sb[i]
		if s.free || s.bad || !s.sealed || i == f.active {
			continue
		}
		if s.valid < bestValid && s.valid < f.spb {
			// A fully-valid victim reclaims nothing: collecting it only
			// copies the superblock elsewhere, and GC would loop on such
			// victims forever once grown-bad blocks eat the slack.
			bestValid = s.valid
			best = i
		}
	}
	return best
}

// collect relocates a victim's valid pages into the log and erases it,
// appending the traffic to ops.
func (f *FTL) collect(ops []nvm.PageOp, victim int64) []nvm.PageOp {
	f.gcRuns++
	f.probe.Count("ftl.gc.runs", 1)
	relocatedBefore := f.relocated
	start := len(ops)
	base := victim * f.spb
	for p := base; p < base+f.spb; p++ {
		lpn, ok := f.p2l[p]
		if !ok {
			continue
		}
		// Read the stale location, then program into the active log.
		ops = append(ops, nvm.PageOp{Op: nvm.OpRead, Loc: f.Locate(p), PPN: p})
		f.relocated++
		delete(f.p2l, p)
		f.sb[victim].valid--
		delete(f.l2p, lpn)
		// Re-program through the normal path (may not recurse into GC since
		// the active superblock has room or a free one exists).
		ops = f.program(ops, lpn, false)
	}
	// Erase every eraseblock of the superblock: one per die-plane.
	for r := int64(0); r < f.rowsz; r++ {
		ops = append(ops, nvm.PageOp{Op: nvm.OpErase, Loc: f.Locate(base + r), PPN: base + r})
	}
	f.sb[victim].wear++
	f.sb[victim].free = true
	f.sb[victim].sealed = false
	heap.Push(&f.freeHeap, wearEntry{id: victim, wear: f.sb[victim].wear})
	ops = f.appendRec(ops, rec{Kind: recErase, A: victim, V: uint64(f.sb[victim].wear)})
	f.probe.Count("ftl.gc.relocated_pages", f.relocated-relocatedBefore)
	f.probe.Count("ftl.gc.erases", f.rowsz)
	// Everything this collection emitted — relocation reads, the programs
	// they re-entered through the normal log path (program cannot recurse
	// into GC here), and the victim erases — is garbage-collection traffic;
	// latency attribution charges an all-GC activation to the GC component.
	for i := start; i < len(ops); i++ {
		ops[i].GC = true
	}
	return ops
}

// Stats reports FTL activity counters.
type Stats struct {
	GCRuns         int64
	RelocatedPages int64
	HostWrites     int64
	NANDWrites     int64
	FreeSuper      int
	GrownBadSuper  int64
	// Durable-metadata traffic (zero when the model is off): journal
	// delta pages, checkpoint pages, and checkpoint runs.
	JournalPages int64
	CkptPages    int64
	CkptRuns     int64
}

// Stats snapshots the counters. Write amplification is
// NANDWrites/HostWrites when HostWrites > 0.
func (f *FTL) Stats() Stats {
	s := Stats{
		GCRuns:         f.gcRuns,
		RelocatedPages: f.relocated,
		HostWrites:     f.hostWrites,
		NANDWrites:     f.nandWrites,
		FreeSuper:      f.usableFree(),
		GrownBadSuper:  f.grownBad,
	}
	if f.dur != nil {
		s.JournalPages = f.dur.journalPages
		s.CkptPages = f.dur.ckptPages
		s.CkptRuns = f.dur.ckptRuns
	}
	return s
}

// RegisterSeries registers the FTL's time-resolved telemetry: GC runs and
// relocated pages per interval, plus the running write amplification and the
// free-pool depth as instantaneous gauges.
func (f *FTL) RegisterSeries(ts *timeseries.Sampler) {
	ts.AddDelta("ftl.gc_runs", func(sim.Time) float64 { return float64(f.gcRuns) })
	ts.AddDelta("ftl.gc_relocated_pages", func(sim.Time) float64 { return float64(f.relocated) })
	ts.AddGauge("ftl.write_amplification", func(sim.Time) float64 { return f.WriteAmplification() })
	ts.AddGauge("ftl.free_superblocks", func(sim.Time) float64 { return float64(f.usableFree()) })
	// Durable-metadata series register only when the model is on, keeping
	// reports byte-identical for volatile configurations.
	if f.dur != nil {
		ts.AddDelta("ftl.journal_pages", func(sim.Time) float64 { return float64(f.dur.journalPages) })
		ts.AddDelta("ftl.ckpt_pages", func(sim.Time) float64 { return float64(f.dur.ckptPages) })
	}
}

// usableFree counts free superblocks still fit for allocation (the heap may
// hold stale entries for superblocks that grew bad while free).
func (f *FTL) usableFree() int {
	n := 0
	for _, e := range f.freeHeap {
		if !f.sb[e.id].bad {
			n++
		}
	}
	return n
}

// RetireBlock implements grown-bad-block handling for the ssd controller:
// the superblock containing the failed physical page is retired from
// circulation (the superblock is this FTL's allocation and erase unit), its
// still-valid pages — mapped or preloaded-identity — are relocated into the
// log, and the mapping is updated so subsequent reads find the moved data.
// OK is false when no usable free superblock remains to relocate into, which
// the controller must treat as the end of the device's writable life.
func (f *FTL) RetireBlock(ppn int64) nvm.Retirement {
	v := f.superOf(ppn % f.Pages())
	s := &f.sb[v]
	if s.bad {
		return nvm.Retirement{OK: true}
	}
	// The relocation target space is the free pool (excluding the victim
	// itself, which may still be sitting in it) plus the unwritten tail of
	// the active superblock (unless that is the one being retired). Refusing
	// when the victim's valid pages exceed it — or when nothing writable
	// would remain at all — keeps allocSuperblock from ever hitting an empty
	// pool mid-relocation and stops the device retiring its last blocks.
	room := int64(0)
	for _, e := range f.freeHeap {
		if !f.sb[e.id].bad && e.id != v {
			room += f.spb
		}
	}
	if f.active >= 0 && v != f.active {
		room += f.spb - f.writePtr
	}
	// Demand a full superblock of slack beyond the relocated pages: retiring
	// into exactly-fitting space leaves the log nowhere to cycle its active
	// superblock, and GC would spin over fully-valid victims forever.
	if room == 0 || s.valid+f.spb > room {
		return nvm.Retirement{}
	}
	f.grownBad++
	f.probe.Count("ftl.grown_bad_superblocks", 1)
	if v == f.active {
		f.active = -1
		f.writePtr = 0
	}
	s.bad = true
	s.free = false
	s.sealed = true
	// Retirement is a cold path: it builds its own slice rather than
	// borrowing the translation pool, which may already be lent out to the
	// request whose failure triggered this retirement.
	var ops []nvm.PageOp
	// The grown-bad verdict flushes immediately: recovery must never
	// allocate from (or scan garbage in) a superblock that failed.
	if f.dur != nil {
		f.dur.buf = append(f.dur.buf, rec{Kind: recRetire, A: v})
		ops = f.flushJournal(ops)
	}
	base := v * f.spb
	pre := f.preloaded * f.spb
	for p := base; p < base+f.spb; p++ {
		lpn, mapped := f.p2l[p]
		if !mapped {
			if p >= pre || f.dead[p] {
				continue
			}
			lpn = p // still-valid identity-mapped preloaded page
		}
		ops = append(ops, nvm.PageOp{Op: nvm.OpRead, Loc: f.Locate(p), PPN: p})
		f.relocated++
		f.probe.Count("ftl.retire.relocated_pages", 1)
		if mapped {
			delete(f.p2l, p)
			delete(f.l2p, lpn)
			s.valid--
		}
		// program() handles the identity-slot invalidation for preloaded
		// pages and appends the new copy to the log.
		ops = f.program(ops, lpn, false)
	}
	return nvm.Retirement{Ops: ops, Retired: true, OK: true}
}

// WriteAmplification returns NAND writes per host write (1.0 = none).
func (f *FTL) WriteAmplification() float64 {
	if f.hostWrites == 0 {
		return 0
	}
	return float64(f.nandWrites+f.relocated) / float64(f.hostWrites)
}

// MaxWear returns the highest superblock erase count.
func (f *FTL) MaxWear() int64 {
	var m int64
	for i := range f.sb {
		if f.sb[i].wear > m {
			m = f.sb[i].wear
		}
	}
	return m
}

// --- wear-ordered free heap --------------------------------------------

type wearEntry struct {
	id   int64
	wear int64
}

type wearHeap []wearEntry

func (h wearHeap) Len() int { return len(h) }
func (h wearHeap) Less(i, j int) bool {
	if h[i].wear != h[j].wear {
		return h[i].wear < h[j].wear
	}
	return h[i].id < h[j].id
}
func (h wearHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *wearHeap) Push(x interface{}) { *h = append(*h, x.(wearEntry)) }
func (h *wearHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

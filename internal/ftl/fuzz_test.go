package ftl

import (
	"testing"

	"oocnvm/internal/nvm"
)

// checkInvariants asserts the FTL's structural invariants: the forward and
// reverse maps are mutually inverse, per-superblock valid counts match the
// population they summarize and never leave [0, spb], no mapped or
// allocatable state points at a grown-bad superblock, and the active
// superblock is sane.
func checkInvariants(t *testing.T, f *FTL) {
	t.Helper()
	if len(f.l2p) != len(f.p2l) {
		t.Fatalf("map sizes diverge: l2p %d, p2l %d", len(f.l2p), len(f.p2l))
	}
	for lpn, ppn := range f.l2p {
		if back, ok := f.p2l[ppn]; !ok || back != lpn {
			t.Fatalf("l2p[%d]=%d but p2l[%d]=%d (present %v)", lpn, ppn, ppn, back, ok)
		}
		if f.sb[f.superOf(ppn)].bad {
			t.Fatalf("lpn %d mapped onto grown-bad superblock %d", lpn, f.superOf(ppn))
		}
	}
	pre := f.preloaded * f.spb
	for v := int64(0); v < f.super; v++ {
		s := &f.sb[v]
		if s.valid < 0 || s.valid > f.spb {
			t.Fatalf("superblock %d valid count %d outside [0, %d]", v, s.valid, f.spb)
		}
		if s.bad {
			continue // retired: its population was relocated, count is frozen
		}
		want := int64(0)
		for p := v * f.spb; p < (v+1)*f.spb; p++ {
			if _, ok := f.p2l[p]; ok {
				want++
			} else if p < pre && !f.dead[p] {
				want++ // surviving identity-mapped preloaded page
			}
		}
		if s.valid != want {
			t.Fatalf("superblock %d valid=%d but population=%d", v, s.valid, want)
		}
	}
	if f.active >= 0 {
		if f.sb[f.active].bad {
			t.Fatalf("active superblock %d is grown-bad", f.active)
		}
		if f.writePtr < 0 || f.writePtr > f.spb {
			t.Fatalf("write pointer %d outside superblock", f.writePtr)
		}
	}
	for _, e := range f.freeHeap {
		if f.sb[e.id].bad && f.sb[e.id].free {
			t.Fatalf("grown-bad superblock %d still marked free", e.id)
		}
	}
}

// checkOps asserts emitted device operations never touch a grown-bad
// superblock with a program (GC and retirement must relocate elsewhere).
func checkOps(t *testing.T, f *FTL, ops []nvm.PageOp) {
	t.Helper()
	for _, op := range ops {
		if op.PPN < 0 || op.PPN >= f.Pages() {
			t.Fatalf("op %v PPN %d outside device", op.Op, op.PPN)
		}
		if op.Op == nvm.OpProgram && f.sb[f.superOf(op.PPN)].bad {
			t.Fatalf("program onto grown-bad superblock %d", f.superOf(op.PPN))
		}
	}
}

// FuzzFTLMapping drives a random interleaving of writes, trims, reads and
// grown-bad block retirements and asserts the mapping invariants after every
// step. The corpus bytes decode to (verb, page, length) triples.
func FuzzFTLMapping(f *testing.F) {
	f.Add([]byte{0, 0, 1, 0, 5, 2, 1, 0, 4, 3, 9, 0})
	f.Add([]byte{1, 200, 3, 0, 0, 7, 3, 0, 0, 3, 64, 0, 0, 128, 2})
	f.Add([]byte{3, 0, 0, 3, 1, 0, 3, 2, 0, 3, 3, 0, 3, 4, 0, 0, 0, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		ftl, err := New(
			nvm.Geometry{Channels: 2, PackagesPerChannel: 1, DiesPerPackage: 2, BlocksPerPlane: 8},
			nvm.Params(nvm.SLC), Config{ReserveSuperblocks: 2})
		if err != nil {
			t.Fatal(err)
		}
		if len(data) > 0 && data[0]&1 == 1 {
			if err := ftl.Preload(ftl.CapacityBytes() / 4); err != nil {
				t.Fatal(err)
			}
			data = data[1:]
		}
		ps := ftl.PageSize()
		pages := ftl.Pages()
		// The logical footprint stays under a quarter of capacity and at most
		// two superblocks may be retired — mirroring the controller contract
		// (a small spare budget, then read-only). Without those bounds live
		// data can legitimately exceed the shrunken writable capacity, which
		// no FTL can recover from.
		span := pages / 4
		retireBudget := 2
		for len(data) >= 3 {
			verb, a, b := data[0]%4, int64(data[1]), int64(data[2])
			data = data[3:]
			lpn := (a*251 + b) % span
			n := 1 + b%4
			switch verb {
			case 0:
				checkOps(t, ftl, ftl.Write(lpn*ps, n*ps))
			case 1:
				if got := ftl.Erase(lpn*ps, n*ps); got != nil {
					t.Fatal("trim emitted device ops")
				}
			case 2:
				for _, op := range ftl.Read(lpn*ps, n*ps) {
					if op.Op != nvm.OpRead {
						t.Fatalf("read translated to %v", op.Op)
					}
					if op.PPN < 0 || op.PPN >= pages {
						t.Fatalf("read PPN %d outside device", op.PPN)
					}
				}
			case 3:
				if retireBudget == 0 {
					continue
				}
				ppn := (a*251 + b) % pages
				r := ftl.RetireBlock(ppn)
				if r.Retired {
					retireBudget--
					checkOps(t, ftl, r.Ops)
					if !ftl.sb[ftl.superOf(ppn)].bad {
						t.Fatal("retired superblock not marked bad")
					}
				}
			}
			checkInvariants(t, ftl)
		}
	})
}

package ftl

import "oocnvm/internal/nvm"

// Erase implements the host-facing erase/discard verb of the ssd.Translator
// contract. Under an FTL the host cannot erase physical blocks; the request
// is honored as a TRIM: affected logical pages are unmapped and their
// physical copies invalidated, making the space reclaimable by GC. No device
// operations are issued.
func (f *FTL) Erase(offset, size int64) []nvm.PageOp {
	if size <= 0 {
		return nil
	}
	first := offset / f.cell.PageSize
	last := (offset + size - 1) / f.cell.PageSize
	for lpn := first; lpn <= last; lpn++ {
		if f.tap != nil {
			f.tap.MapTrim(lpn)
		}
		if ppn, ok := f.l2p[lpn]; ok {
			f.sb[f.superOf(ppn)].valid--
			delete(f.p2l, ppn)
			delete(f.l2p, lpn)
		} else if lpn < f.preloaded*f.spb && !f.dead[lpn] {
			// An identity slot is invalidated at most once; without the
			// dead set, re-trimming a page whose identity slot was already
			// invalidated (by an overwrite or earlier trim) would drive the
			// preloaded superblock's valid count negative.
			f.sb[f.superOf(lpn)].valid--
			f.dead[lpn] = true
		}
	}
	return nil
}

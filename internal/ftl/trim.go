package ftl

import "oocnvm/internal/nvm"

// Erase implements the host-facing erase/discard verb of the ssd.Translator
// contract. Under an FTL the host cannot erase physical blocks; the request
// is honored as a TRIM: affected logical pages are unmapped and their
// physical copies invalidated, making the space reclaimable by GC. No device
// operations are issued for the data itself, but in durable mode each
// actually-invalidated page appends a trim record to the journal (carrying
// the page's version so recovery cannot resurrect stale copies), and a full
// record page — or a due checkpoint — flushes as metadata programs.
func (f *FTL) Erase(offset, size int64) []nvm.PageOp {
	if size <= 0 {
		return nil
	}
	// A volatile FTL emits no device ops for a trim at all — the contract
	// (and its tests) pin a nil return, so only durable mode borrows a
	// translation slice for its journal/checkpoint metadata programs.
	var ops []nvm.PageOp
	if f.dur != nil {
		ops = f.maybeCheckpoint(f.takeOps(0))
	}
	first := offset / f.cell.PageSize
	last := (offset + size - 1) / f.cell.PageSize
	for lpn := first; lpn <= last; lpn++ {
		if f.tap != nil {
			f.tap.MapTrim(lpn)
		}
		if ppn, ok := f.l2p[lpn]; ok {
			f.sb[f.superOf(ppn)].valid--
			delete(f.p2l, ppn)
			delete(f.l2p, lpn)
			ops = f.appendRec(ops, rec{Kind: recTrim, A: lpn, V: f.version(lpn)})
		} else if lpn < f.preloaded*f.spb && !f.dead[lpn] {
			// An identity slot is invalidated at most once; without the
			// dead set, re-trimming a page whose identity slot was already
			// invalidated (by an overwrite or earlier trim) would drive the
			// preloaded superblock's valid count negative.
			f.sb[f.superOf(lpn)].valid--
			f.dead[lpn] = true
			ops = f.appendRec(ops, rec{Kind: recTrim, A: lpn, V: f.version(lpn)})
		}
	}
	return ops
}

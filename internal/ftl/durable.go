package ftl

import (
	"sort"

	"oocnvm/internal/nvm"
)

// OOB is the out-of-band tag committed atomically with every data-page
// program: the logical page the payload belongs to and the monotonically
// increasing write version the FTL assigned it. These are the tags the
// conformance oracle (check.Oracle) tracks in shadow; durable mode makes
// them part of the media model so mount-time recovery can rebuild the
// mapping from the device alone.
type OOB struct {
	LPN int64
	Ver uint64
}

// DurableConfig tunes the durable-metadata model: periodic full
// mapping-table checkpoints plus an L2P delta journal, both written as
// metadata pages through the normal device path. The zero value leaves
// the FTL volatile (bit-identical to builds before the feature existed).
type DurableConfig struct {
	// Enabled turns the durable-metadata model on.
	Enabled bool
	// CheckpointEveryPages is the number of host page writes between full
	// mapping-table checkpoints (<= 0 selects four superblocks' worth).
	CheckpointEveryPages int64
	// JournalEntriesPerPage is how many delta records one metadata page
	// holds (<= 0 selects PageSize/16 — 16 bytes per packed record).
	JournalEntriesPerPage int
}

// recKind discriminates journal/checkpoint delta records.
type recKind uint8

const (
	// recPlace: lpn A now lives at ppn B with version V.
	recPlace recKind = iota
	// recTrim: lpn A was unmapped; V preserves its version so a later
	// open-superblock scan cannot resurrect stale higher-versioned copies.
	recTrim
	// recSeal: superblock A sealed (informational; recovery seals all).
	recSeal
	// recAlloc: superblock A became the active log head. Every alloc
	// flushes the journal, so the newest replayable alloc always names
	// the true open superblock.
	recAlloc
	// recErase: superblock A erased; V is its absolute post-erase wear.
	recErase
	// recRetire: superblock A grew bad and was retired.
	recRetire
	// recPreload: the first A superblocks hold identity-mapped preloaded
	// data.
	recPreload
	// recState (checkpoint only): superblock A has wear V; B bit0 = bad.
	recState
	// recDead (checkpoint only): preloaded identity slot A is dead.
	recDead
	// recActive (checkpoint only): superblock A is the open log head with
	// write pointer B (-1 when no superblock is open).
	recActive
	// recVer (checkpoint only): unmapped lpn A once reached version V
	// (trimmed history; keeps the version monotonic across recovery).
	recVer
)

// rec is one packed journal/checkpoint record (model: 16 bytes on media).
type rec struct {
	Kind recKind
	A, B int64
	V    uint64
}

// metaKind discriminates metadata pages.
type metaKind uint8

const (
	metaJournal metaKind = iota
	metaCkpt
)

// metaPage is one durable metadata page. Pages carry a strictly
// increasing sequence number; checkpoint pages additionally carry the
// first sequence of their group and a Last marker so recovery can tell a
// complete checkpoint from one a power cut interrupted.
type metaPage struct {
	Seq  int64
	Kind metaKind
	Ckpt int64 // first seq of the checkpoint group (metaCkpt only)
	Last bool  // final page of the checkpoint group
	Recs []rec
	// Corrupt marks a committed page whose content is unreadable (test
	// hook for the unrecoverable-metadata path).
	Corrupt bool
}

// Media is the simulated durable NAND state behind one FTL: per-page
// payload OOB tags, torn pages, and the committed metadata-page chain. It
// implements nvm.MediaTap, so state changes happen exactly when the
// device executes the program/erase — which is what makes a mid-request
// power cut leave a physically honest image: committed pages of acked
// requests, a partial subset of the crashing request's, one torn page,
// and nothing from ops the cut voided.
//
// Metadata pages live past the data page space (PPN = Pages()+Seq) and
// are modeled as an append-only chain that is never erased; the journal
// write-amplification counters price its cost, and checkpointing bounds
// how much of it recovery must read.
type Media struct {
	pages int64 // data page population
	spb   int64
	rowsz int64
	ppb   int64

	data     map[int64]OOB      // committed data pages -> OOB tags
	torn     map[int64]bool     // torn data pages (payload garbage)
	staged   map[int64]metaPage // seq -> staged content awaiting program
	meta     map[int64]metaPage // seq -> committed metadata page
	tornMeta map[int64]bool     // seq -> torn metadata page
	nextSeq  int64
}

func newMedia(pages, spb, rowsz, ppb int64) *Media {
	return &Media{
		pages: pages, spb: spb, rowsz: rowsz, ppb: ppb,
		data:     make(map[int64]OOB),
		torn:     make(map[int64]bool),
		staged:   make(map[int64]metaPage),
		meta:     make(map[int64]metaPage),
		tornMeta: make(map[int64]bool),
	}
}

// stage assigns the next metadata sequence number to pg and parks its
// content until the device commits the program; it returns the PPN the
// page op must carry.
func (m *Media) stage(pg metaPage) int64 {
	pg.Seq = m.nextSeq
	m.nextSeq++
	m.staged[pg.Seq] = pg
	return m.pages + pg.Seq
}

// commitDirect persists a metadata page outside the device path (pre-run
// setup like Preload, which runs before any request exists to ride).
func (m *Media) commitDirect(pg metaPage) {
	ppn := m.stage(pg)
	m.MediaProgram(nvm.PageOp{Op: nvm.OpProgram, PPN: ppn, Meta: true, LPN: -1}, false)
}

// MediaProgram implements nvm.MediaTap: commit one page program. A torn
// program leaves the page unreadable — payload garbage, OOB unlanded.
func (m *Media) MediaProgram(op nvm.PageOp, torn bool) {
	if op.PPN >= m.pages {
		seq := op.PPN - m.pages
		if torn {
			m.tornMeta[seq] = true
			delete(m.staged, seq)
			return
		}
		if pg, ok := m.staged[seq]; ok {
			m.meta[seq] = pg
			delete(m.staged, seq)
		}
		return
	}
	if torn {
		m.torn[op.PPN] = true
		delete(m.data, op.PPN)
		return
	}
	delete(m.torn, op.PPN)
	m.data[op.PPN] = OOB{LPN: op.LPN, Ver: op.Ver}
}

// MediaErase implements nvm.MediaTap: clear the eraseblock holding
// op.PPN. A torn erase clears too — the erase pulse destroys the block's
// contents before completing, which is exactly why durable mode orders
// erases behind the metadata that makes them safe.
func (m *Media) MediaErase(op nvm.PageOp, torn bool) {
	base := (op.PPN / m.spb) * m.spb
	slot := op.PPN % m.rowsz
	for k := int64(0); k < m.ppb; k++ {
		p := base + k*m.rowsz + slot
		delete(m.data, p)
		delete(m.torn, p)
	}
}

// PageState reports the durable state of one data page: its OOB tags if
// programmed, and whether a power cut tore it.
func (m *Media) PageState(ppn int64) (oob OOB, programmed, torn bool) {
	if m.torn[ppn] {
		return OOB{}, false, true
	}
	oob, programmed = m.data[ppn]
	return oob, programmed, false
}

// MetaPages reports how many metadata pages have committed.
func (m *Media) MetaPages() int64 { return int64(len(m.meta)) }

// CorruptMeta marks the committed metadata page with the given sequence
// number unreadable (test hook for the unrecoverable path); it reports
// whether such a page existed.
func (m *Media) CorruptMeta(seq int64) bool {
	pg, ok := m.meta[seq]
	if !ok {
		return false
	}
	pg.Corrupt = true
	m.meta[seq] = pg
	return true
}

// maxSeq returns the highest committed-or-torn metadata sequence, -1 when
// none.
func (m *Media) maxSeq() int64 {
	max := int64(-1)
	for s := range m.meta {
		if s > max {
			max = s
		}
	}
	for s := range m.tornMeta {
		if s > max {
			max = s
		}
	}
	return max
}

// durState is the FTL's durable-metadata bookkeeping.
type durState struct {
	cfg       DurableConfig
	ver       map[int64]uint64 // per-lpn write version, monotonic forever
	buf       []rec            // journal records awaiting a page flush
	perPage   int
	ckptEvery int64
	sinceCkpt int64

	journalPages int64
	ckptPages    int64
	ckptRuns     int64
}

// Media exposes the durable media model (nil when durable mode is off).
// Hand it to Recover after a power cut to remount the surviving state.
func (f *FTL) Media() *Media { return f.media }

// MediaTap exposes the media model under the nvm duck-typing hook the ssd
// controller wires into the device; nil when durable mode is off.
func (f *FTL) MediaTap() nvm.MediaTap {
	if f.media == nil {
		return nil
	}
	return f.media
}

// ReadOnly reports whether the FTL mounted degraded after unrecoverable
// metadata loss; the controller must reject writes and trims.
func (f *FTL) ReadOnly() bool { return f.readOnly }

// version returns lpn's current write version (0 for never-written
// preloaded identity data).
func (f *FTL) version(lpn int64) uint64 {
	if f.dur == nil {
		return 0
	}
	return f.dur.ver[lpn]
}

// metaOp stages one metadata page on the media and returns the device
// program that will commit it. Metadata pages round-robin over the data
// geometry for timing purposes (their PPN encodes the sequence number).
func (f *FTL) metaOp(pg metaPage) nvm.PageOp {
	ppn := f.media.stage(pg)
	if pg.Kind == metaCkpt {
		f.dur.ckptPages++
		f.probe.Count("ftl.ckpt.pages", 1)
	} else {
		f.dur.journalPages++
		f.probe.Count("ftl.journal.pages", 1)
	}
	f.nandWrites++
	return nvm.PageOp{Op: nvm.OpProgram, Loc: f.Locate(ppn % f.Pages()), PPN: ppn, Meta: true, LPN: -1}
}

// appendRec buffers one journal record, flushing a full page's worth of
// metadata programs onto ops when the buffer reaches capacity (a no-op
// append when durable mode is off).
func (f *FTL) appendRec(ops []nvm.PageOp, r rec) []nvm.PageOp {
	if f.dur == nil {
		return ops
	}
	f.dur.buf = append(f.dur.buf, r)
	if len(f.dur.buf) >= f.dur.perPage {
		return f.flushJournal(ops)
	}
	return ops
}

// flushJournal writes every buffered journal record out as metadata
// pages, appended to ops. Allocation and retirement force a flush so the
// journal's newest replayable records always designate the true open
// superblock and every grown-bad verdict is durable before relocation
// begins.
func (f *FTL) flushJournal(ops []nvm.PageOp) []nvm.PageOp {
	if f.dur == nil || len(f.dur.buf) == 0 {
		return ops
	}
	buf := f.dur.buf
	for len(buf) > 0 {
		n := f.dur.perPage
		if n > len(buf) {
			n = len(buf)
		}
		recs := make([]rec, n)
		copy(recs, buf[:n])
		buf = buf[n:]
		ops = append(ops, f.metaOp(metaPage{Kind: metaJournal, Recs: recs}))
	}
	f.dur.buf = f.dur.buf[:0]
	return ops
}

// maybeCheckpoint emits a full-state checkpoint onto ops once enough host
// page writes have accumulated since the last one.
func (f *FTL) maybeCheckpoint(ops []nvm.PageOp) []nvm.PageOp {
	if f.dur == nil || f.dur.sinceCkpt < f.dur.ckptEvery {
		return ops
	}
	return f.checkpoint(ops)
}

// checkpoint snapshots the entire mapping state — preload extent, open
// superblock, per-superblock wear/bad, dead identity slots, every l2p
// entry with its version, and the versions of unmapped (trimmed) lpns —
// as a group of checkpoint pages. The group is atomic for recovery: only
// a group whose pages all committed and whose final page carries the Last
// marker is used, so a power cut mid-checkpoint falls back to the
// previous one plus the journal (which was flushed first, making the
// snapshot equal to a full replay).
func (f *FTL) checkpoint(ops []nvm.PageOp) []nvm.PageOp {
	ops = f.flushJournal(ops)
	recs := make([]rec, 0, 2+len(f.l2p)+len(f.dead))
	recs = append(recs, rec{Kind: recPreload, A: f.preloaded})
	recs = append(recs, rec{Kind: recActive, A: f.active, B: f.writePtr})
	for i := int64(0); i < f.super; i++ {
		s := &f.sb[i]
		if s.wear == 0 && !s.bad {
			continue
		}
		flags := int64(0)
		if s.bad {
			flags = 1
		}
		recs = append(recs, rec{Kind: recState, A: i, B: flags, V: uint64(s.wear)})
	}
	deads := make([]int64, 0, len(f.dead))
	for lpn := range f.dead {
		deads = append(deads, lpn)
	}
	sort.Slice(deads, func(i, j int) bool { return deads[i] < deads[j] })
	for _, lpn := range deads {
		recs = append(recs, rec{Kind: recDead, A: lpn})
	}
	lpns := make([]int64, 0, len(f.l2p))
	for lpn := range f.l2p {
		lpns = append(lpns, lpn)
	}
	sort.Slice(lpns, func(i, j int) bool { return lpns[i] < lpns[j] })
	for _, lpn := range lpns {
		recs = append(recs, rec{Kind: recPlace, A: lpn, B: f.l2p[lpn], V: f.version(lpn)})
	}
	if f.dur != nil {
		extra := make([]int64, 0)
		for lpn, v := range f.dur.ver {
			if v == 0 {
				continue
			}
			if _, mapped := f.l2p[lpn]; !mapped {
				extra = append(extra, lpn)
			}
		}
		sort.Slice(extra, func(i, j int) bool { return extra[i] < extra[j] })
		for _, lpn := range extra {
			recs = append(recs, rec{Kind: recVer, A: lpn, V: f.dur.ver[lpn]})
		}
	}
	first := f.media.nextSeq
	for len(recs) > 0 {
		n := f.dur.perPage
		if n > len(recs) {
			n = len(recs)
		}
		chunk := make([]rec, n)
		copy(chunk, recs[:n])
		recs = recs[n:]
		ops = append(ops, f.metaOp(metaPage{
			Kind: metaCkpt, Ckpt: first, Last: len(recs) == 0, Recs: chunk}))
	}
	f.dur.sinceCkpt = 0
	f.dur.ckptRuns++
	f.probe.Count("ftl.ckpt.runs", 1)
	return ops
}

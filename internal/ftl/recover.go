package ftl

import (
	"container/heap"
	"errors"
	"fmt"
	"sort"
	"strings"

	"oocnvm/internal/fault"
	"oocnvm/internal/nvm"
	"oocnvm/internal/sim"
)

// ErrUnrecoverableMeta is returned (wrapped) by Recover when the metadata
// chain cannot be trusted — a committed journal page is unreadable — and
// the FTL degrades to a best-effort read-only mount instead of guessing.
var ErrUnrecoverableMeta = errors.New("ftl: metadata unrecoverable")

// RecoveryReport describes one mount-time recovery.
type RecoveryReport struct {
	// CheckpointFound reports whether a complete checkpoint group was
	// usable; CheckpointSeq is its first metadata sequence number.
	CheckpointFound bool
	CheckpointSeq   int64
	// JournalPagesRead counts metadata pages read (checkpoint + journal).
	JournalPagesRead int64
	// RecordsReplayed counts delta records applied.
	RecordsReplayed int64
	// OpenSuperblock is the journal-designated log head whose OOB tags
	// were scanned (-1 when none was open).
	OpenSuperblock int64
	// ScannedPages counts data pages whose OOB tags were read.
	ScannedPages int64
	// TornPages counts pages the power cut left mid-program; TornClass is
	// the ECC ladder's verdict on them (uncorrectable by construction —
	// their OOB tags never landed).
	TornPages int64
	TornClass fault.ReadClass
	// RecoveredMaps counts mappings reconstructed from the scan beyond
	// what the journal held; RolledBackMaps counts mappings whose newest
	// placement pointed at a torn or vanished page and that fell back to
	// the superseded durable copy; DroppedMaps counts mappings dropped
	// outright because no durable copy survived (only ever data that was
	// never acknowledged).
	RecoveredMaps  int64
	RolledBackMaps int64
	DroppedMaps    int64
	// ReadOnly reports the degraded mount after unrecoverable metadata.
	ReadOnly bool
	// Duration is the simulated mount-time cost: one page read per
	// metadata page and per scanned OOB tag, plus the full retry ladder
	// for every torn page.
	Duration sim.Time
}

// Recover remounts an FTL from the durable media state a power cut left
// behind: it locates the newest complete checkpoint group, replays the
// journal chain after it (stopping at the first missing or torn page —
// a safe prefix, since records past a tear belong to the never-acked
// crashing request or are re-derivable from the scan), scans the open
// superblock's per-page OOB (LPN, version) tags to reconstruct mappings
// the journal had not yet flushed, classifies torn pages via the ECC
// ladder, validates every mapping against the media, and rebuilds
// p2l/valid counts/the wear heap from scratch.
//
// A committed-but-unreadable journal page breaks the chain's trust: the
// FTL then salvages what a full-media OOB scan can prove (highest version
// wins) and mounts read-only, returning the salvaged FTL alongside a
// wrapped ErrUnrecoverableMeta.
func Recover(geo nvm.Geometry, cell nvm.CellParams, cfg Config, m *Media) (*FTL, RecoveryReport, error) {
	cfg.Durable.Enabled = true
	f, err := New(geo, cell, cfg)
	if err != nil {
		return nil, RecoveryReport{}, err
	}
	// Adopt the surviving media; the fresh model New built is discarded,
	// and anything staged in controller RAM at the cut is gone.
	f.media = m
	for s := range m.staged {
		delete(m.staged, s)
	}
	m.nextSeq = m.maxSeq() + 1

	rep := RecoveryReport{OpenSuperblock: -1}

	// prev remembers, per logical page, the mapping the newest placement
	// superseded. If that newest placement turns out to point at a torn
	// page (the cut interrupted the overwrite after its journal record was
	// flushed), the durable contract still owes the host the previous
	// acknowledged version — which is exactly the superseded copy, still
	// untorn on media because an overwritten page can only be erased by a
	// GC pass that never committed past the tear.
	prev := make(map[int64]superseded)

	// Locate the newest complete checkpoint group: contiguous committed
	// pages from the group's first sequence, none torn or corrupt, ending
	// in a Last marker.
	var starts []int64
	seen := make(map[int64]bool)
	for _, pg := range m.meta {
		if pg.Kind == metaCkpt && !seen[pg.Ckpt] {
			seen[pg.Ckpt] = true
			starts = append(starts, pg.Ckpt)
		}
	}
	sort.Slice(starts, func(i, j int) bool { return starts[i] > starts[j] })
	ckptFirst, ckptLast := int64(-1), int64(-1)
	for _, first := range starts {
		last := int64(-1)
		for s := first; ; s++ {
			pg, ok := m.meta[s]
			if !ok || pg.Kind != metaCkpt || pg.Ckpt != first || pg.Corrupt {
				break
			}
			if pg.Last {
				last = s
				break
			}
		}
		if last >= 0 {
			ckptFirst, ckptLast = first, last
			break
		}
	}

	horizon := int64(0)
	if ckptFirst >= 0 {
		rep.CheckpointFound = true
		rep.CheckpointSeq = ckptFirst
		horizon = ckptLast + 1
		for s := ckptFirst; s <= ckptLast; s++ {
			rep.JournalPagesRead++
			for _, r := range m.meta[s].Recs {
				f.replayRec(r, &rep, prev)
			}
		}
	}

	// Replay the journal chain from the horizon, stopping at the first
	// missing or torn page. Checkpoint pages of newer (necessarily
	// incomplete) groups are skipped: a checkpoint is a snapshot inserted
	// into the delta stream, so deltas replay cleanly across it.
	corruptSeq := int64(-1)
	for s := horizon; ; s++ {
		pg, ok := m.meta[s]
		if !ok {
			break
		}
		if pg.Kind == metaCkpt {
			rep.JournalPagesRead++
			continue
		}
		if pg.Corrupt {
			corruptSeq = s
			break
		}
		rep.JournalPagesRead++
		if r := pg.Recs; len(r) > 0 {
			for _, rc := range r {
				f.replayRec(rc, &rep, prev)
			}
		}
	}
	if corruptSeq >= 0 {
		return f.salvage(m, rep, corruptSeq)
	}
	rep.OpenSuperblock = f.active

	// Scan the open superblock's OOB tags: placements the journal had not
	// flushed can only live here (every allocation flushes the journal
	// with its alloc record aboard). A tag wins when its version exceeds
	// the replayed one, or matches it while the replayed mapping's media
	// page is gone — the unflushed tail of a GC relocation whose victim
	// erase did land.
	if f.active >= 0 {
		base := f.active * f.spb
		prePages := f.preloaded * f.spb
		for slot := int64(0); slot < f.spb; slot++ {
			ppn := base + slot
			rep.ScannedPages++
			oob, programmed, torn := m.PageState(ppn)
			if torn {
				rep.TornPages++
				continue
			}
			if !programmed || oob.LPN < 0 {
				continue
			}
			lpn := oob.LPN
			cur, mapped := f.l2p[lpn]
			apply := oob.Ver > f.dur.ver[lpn]
			if !apply && oob.Ver == f.dur.ver[lpn] && mapped && cur != ppn {
				if got, ok := m.data[cur]; !ok || got.LPN != lpn {
					apply = true
				}
			}
			if apply {
				if mapped && cur != ppn {
					prev[lpn] = superseded{ppn: cur, ver: f.dur.ver[lpn]}
				}
				if lpn < prePages && !mapped && !f.dead[lpn] {
					f.dead[lpn] = true
				}
				f.l2p[lpn] = ppn
				f.dur.ver[lpn] = oob.Ver
				rep.RecoveredMaps++
			}
		}
	}

	// Validate, roll back, or drop: every surviving mapping must point at
	// a media page whose OOB names it. A mapping that fails — its newest
	// placement record was flushed but the program itself tore, or the
	// page vanished under a journal tail the cut ate — first falls back to
	// the superseded copy it displaced: that is the last acknowledged
	// version, and it is still untorn on media (erasing it would have
	// required GC work past the tear). Only when no durable copy exists —
	// data that was never acknowledged — is the mapping dropped.
	lpns := make([]int64, 0, len(f.l2p))
	for lpn := range f.l2p {
		lpns = append(lpns, lpn)
	}
	sort.Slice(lpns, func(i, j int) bool { return lpns[i] < lpns[j] })
	for _, lpn := range lpns {
		if got, ok := m.data[f.l2p[lpn]]; ok && got.LPN == lpn {
			continue
		}
		if pc, had := prev[lpn]; had {
			if pg, ok := m.data[pc.ppn]; ok && pg.LPN == lpn && pg.Ver == pc.ver {
				f.l2p[lpn] = pc.ppn
				f.dur.ver[lpn] = pc.ver
				rep.RolledBackMaps++
				continue
			}
		}
		delete(f.l2p, lpn)
		rep.DroppedMaps++
	}

	f.rebuild(m)
	f.finishReport(&rep, cell)
	return f, rep, nil
}

// superseded is the (physical page, version) pair a newer placement
// displaced — recovery's one-deep undo history for torn overwrites.
type superseded struct {
	ppn int64
	ver uint64
}

// replayRec applies one checkpoint/journal record to the recovering FTL,
// remembering displaced placements in prev (nil to disable tracking).
func (f *FTL) replayRec(r rec, rep *RecoveryReport, prev map[int64]superseded) {
	rep.RecordsReplayed++
	switch r.Kind {
	case recPreload:
		f.preloaded = r.A
	case recActive, recAlloc:
		f.active = r.A
	case recPlace:
		if old, had := f.l2p[r.A]; had && prev != nil && old != r.B {
			prev[r.A] = superseded{ppn: old, ver: f.dur.ver[r.A]}
		}
		if r.A < f.preloaded*f.spb {
			if _, had := f.l2p[r.A]; !had && !f.dead[r.A] {
				f.dead[r.A] = true
			}
		}
		f.l2p[r.A] = r.B
		if r.V > f.dur.ver[r.A] {
			f.dur.ver[r.A] = r.V
		}
	case recTrim:
		delete(f.l2p, r.A)
		if r.V > f.dur.ver[r.A] {
			f.dur.ver[r.A] = r.V
		}
		if r.A < f.preloaded*f.spb {
			f.dead[r.A] = true
		}
	case recSeal:
		// Informational: recovery seals every superblock anyway.
	case recErase:
		f.sb[r.A].wear = int64(r.V)
	case recState:
		f.sb[r.A].wear = int64(r.V)
		if r.B&1 != 0 {
			f.sb[r.A].bad = true
		}
	case recRetire:
		f.sb[r.A].bad = true
	case recDead:
		f.dead[r.A] = true
	case recVer:
		if r.V > f.dur.ver[r.A] {
			f.dur.ver[r.A] = r.V
		}
	}
}

// rebuild reconstructs everything derivable — p2l, valid counts, free
// flags, the wear heap — from the validated mapping and the media
// residue, then seals the log (the next write allocates a fresh
// superblock and, with sinceCkpt saturated, checkpoints immediately,
// fencing off any sequence gap the cut left in the journal).
func (f *FTL) rebuild(m *Media) {
	for ppn := range f.p2l {
		delete(f.p2l, ppn)
	}
	lpns := make([]int64, 0, len(f.l2p))
	for lpn := range f.l2p {
		lpns = append(lpns, lpn)
	}
	sort.Slice(lpns, func(i, j int) bool { return lpns[i] < lpns[j] })
	valid := make([]int64, f.super)
	for _, lpn := range lpns {
		ppn := f.l2p[lpn]
		f.p2l[ppn] = lpn
		valid[ppn/f.spb]++
	}
	for p := int64(0); p < f.preloaded*f.spb; p++ {
		if _, mapped := f.l2p[p]; !mapped && !f.dead[p] {
			valid[p/f.spb]++
		}
	}
	residue := make([]int64, f.super)
	for ppn := range m.data {
		if ppn < f.Pages() {
			residue[ppn/f.spb]++
		}
	}
	for ppn := range m.torn {
		if ppn < f.Pages() {
			residue[ppn/f.spb]++
		}
	}
	f.grownBad = 0
	f.freeHeap = f.freeHeap[:0]
	for i := int64(0); i < f.super; i++ {
		s := &f.sb[i]
		s.valid = valid[i]
		s.sealed = true
		if s.bad {
			f.grownBad++
			s.free = false
			continue
		}
		s.free = residue[i] == 0 && valid[i] == 0 && i >= f.preloaded
		if s.free {
			s.sealed = false
			heap.Push(&f.freeHeap, wearEntry{id: i, wear: s.wear})
		}
	}
	f.active = -1
	f.writePtr = 0
	f.dur.sinceCkpt = f.dur.ckptEvery
}

// finishReport prices the mount: one media read per metadata page and per
// scanned OOB tag, plus the full read-retry ladder for each torn page
// before the ECC declares it uncorrectable.
func (f *FTL) finishReport(rep *RecoveryReport, cell nvm.CellParams) {
	rep.Duration = sim.Time(rep.JournalPagesRead+rep.ScannedPages) * cell.ReadLatency
	if rep.TornPages > 0 {
		ecc := nvm.ECCFor(cell.Type)
		res := ecc.Classify(int(ecc.CodewordBytes*8/2), 0)
		rep.TornClass = res.Class
		rep.Duration += sim.Time(rep.TornPages) * sim.Time(res.Retries) * cell.ReadLatency
	}
}

// salvage is the unrecoverable-metadata path: the journal chain contains
// a committed page that cannot be read, so replayed state past it cannot
// be trusted. The FTL rebuilds a best-effort mapping from a full-media
// OOB scan (highest version wins, ties to the highest physical page) and
// mounts read-only.
func (f *FTL) salvage(m *Media, rep RecoveryReport, corruptSeq int64) (*FTL, RecoveryReport, error) {
	rep.ReadOnly = true
	f.readOnly = true
	// Partial replay state is discarded wholesale — except the preload
	// extent, whose genesis record precedes any corruption by
	// construction and which the identity fallback depends on.
	f.l2p = make(map[int64]int64)
	f.p2l = make(map[int64]int64)
	f.dead = make(map[int64]bool)
	f.dur.ver = make(map[int64]uint64)
	ppns := make([]int64, 0, len(m.data))
	for ppn := range m.data {
		if ppn < f.Pages() {
			ppns = append(ppns, ppn)
		}
	}
	sort.Slice(ppns, func(i, j int) bool { return ppns[i] < ppns[j] })
	for _, ppn := range ppns {
		rep.ScannedPages++
		oob := m.data[ppn]
		if oob.LPN < 0 {
			continue
		}
		if _, mapped := f.l2p[oob.LPN]; !mapped || oob.Ver >= f.dur.ver[oob.LPN] {
			f.l2p[oob.LPN] = ppn
			f.dur.ver[oob.LPN] = oob.Ver
		}
	}
	for ppn := range m.torn {
		if ppn < f.Pages() {
			rep.TornPages++
		}
	}
	for p := int64(0); p < f.preloaded*f.spb; p++ {
		if ppn, mapped := f.l2p[p]; !mapped || ppn != p {
			f.dead[p] = true
		}
	}
	f.rebuild(m)
	f.finishReport(&rep, f.cell)
	return f, rep, fmt.Errorf("ftl: recover: journal page seq %d unreadable: %w", corruptSeq, ErrUnrecoverableMeta)
}

// Mapping reports the translation for one logical page: its physical page,
// its durable write version, and whether any mapping — explicit or
// preloaded-identity — exists. Crash checks use it to compare recovered
// state against the shadow oracle's acked history.
func (f *FTL) Mapping(lpn int64) (ppn int64, ver uint64, ok bool) {
	if p, mapped := f.l2p[lpn]; mapped {
		return p, f.version(lpn), true
	}
	if lpn < f.preloaded*f.spb && !f.dead[lpn] {
		return lpn, f.version(lpn), true
	}
	return 0, f.version(lpn), false
}

// DumpState renders the FTL's complete logical state deterministically —
// mappings with versions, dead slots, per-superblock state, the free heap
// — so tests can assert that same seed + same crash point recover to
// byte-identical state.
func (f *FTL) DumpState() string {
	var b strings.Builder
	fmt.Fprintf(&b, "active=%d writePtr=%d preloaded=%d readOnly=%v grownBad=%d\n",
		f.active, f.writePtr, f.preloaded, f.readOnly, f.grownBad)
	for i := int64(0); i < f.super; i++ {
		s := f.sb[i]
		fmt.Fprintf(&b, "sb %d: valid=%d wear=%d sealed=%v free=%v bad=%v\n",
			i, s.valid, s.wear, s.sealed, s.free, s.bad)
	}
	lpns := make([]int64, 0, len(f.l2p))
	for lpn := range f.l2p {
		lpns = append(lpns, lpn)
	}
	sort.Slice(lpns, func(i, j int) bool { return lpns[i] < lpns[j] })
	for _, lpn := range lpns {
		fmt.Fprintf(&b, "map %d -> %d v%d\n", lpn, f.l2p[lpn], f.version(lpn))
	}
	deads := make([]int64, 0, len(f.dead))
	for lpn := range f.dead {
		deads = append(deads, lpn)
	}
	sort.Slice(deads, func(i, j int) bool { return deads[i] < deads[j] })
	for _, lpn := range deads {
		fmt.Fprintf(&b, "dead %d\n", lpn)
	}
	free := append(wearHeap(nil), f.freeHeap...)
	sort.Slice(free, func(i, j int) bool { return free[i].id < free[j].id })
	for _, e := range free {
		fmt.Fprintf(&b, "free %d wear=%d\n", e.id, e.wear)
	}
	return b.String()
}

package ftl

import (
	"errors"
	"testing"

	"oocnvm/internal/nvm"
)

func newDurable(t *testing.T, cell nvm.CellType, every int64) *FTL {
	t.Helper()
	f, err := New(smallGeo(), nvm.Params(cell), Config{
		ReserveSuperblocks: 2,
		Durable:            DurableConfig{Enabled: true, CheckpointEveryPages: every},
	})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// applyOps mirrors the device's media effects for one request's op stream,
// optionally tearing it at the tearAt-th program/erase (1-based; 0 = never):
// boundaries before the tear commit cleanly, the tearing op commits torn,
// everything after it is dropped — the device's power-cut semantics.
// It returns the updated boundary count and whether the tear fired.
func applyOps(m *Media, ops []nvm.PageOp, count, tearAt int) (int, bool) {
	for _, op := range ops {
		switch op.Op {
		case nvm.OpProgram:
			count++
			if tearAt > 0 && count >= tearAt {
				m.MediaProgram(op, true)
				return count, true
			}
			m.MediaProgram(op, false)
		case nvm.OpErase:
			count++
			if tearAt > 0 && count >= tearAt {
				m.MediaErase(op, true)
				return count, true
			}
			m.MediaErase(op, false)
		}
	}
	return count, false
}

// durableWorkload drives a deterministic write/trim mix that overwrites the
// small device enough to trigger GC and several checkpoints, applying every
// emitted op to the media with an optional tear point. It returns the FTL,
// the boundary count, and whether the tear fired.
func durableWorkload(t *testing.T, tearAt int) (*FTL, int, bool) {
	t.Helper()
	f := newDurable(t, nvm.SLC, 24)
	ps := f.PageSize()
	pages := f.Pages()
	count := 0
	for i := 0; i < 900; i++ {
		lpn := int64(i*7) % (pages / 2)
		var ops []nvm.PageOp
		if i%11 == 3 {
			ops = f.Erase(lpn*ps, 2*ps)
		} else {
			ops = f.Write(lpn*ps, ps)
		}
		var torn bool
		count, torn = applyOps(f.Media(), ops, count, tearAt)
		if torn {
			return f, count, true
		}
	}
	return f, count, false
}

// TestRecoverCleanEquivalence recovers from an un-torn media image and
// requires every logical page's translation (physical page and version) to
// match the live FTL exactly, with all structural invariants intact.
func TestRecoverCleanEquivalence(t *testing.T) {
	f, _, torn := durableWorkload(t, 0)
	if torn {
		t.Fatal("untorn workload reported a tear")
	}
	rf, rep, err := Recover(smallGeo(), nvm.Params(nvm.SLC), Config{ReserveSuperblocks: 2}, f.Media())
	if err != nil {
		t.Fatalf("recover: %v (report %+v)", err, rep)
	}
	if rep.TornPages != 0 {
		t.Fatalf("clean media reported %d torn pages", rep.TornPages)
	}
	if rep.Duration <= 0 {
		t.Fatal("recovery has no simulated cost")
	}
	checkInvariants(t, rf)
	for lpn := int64(0); lpn < f.Pages(); lpn++ {
		wp, wv, wok := f.Mapping(lpn)
		gp, gv, gok := rf.Mapping(lpn)
		if wok != gok || (wok && (wp != gp || wv != gv)) {
			t.Fatalf("lpn %d: live (%d v%d %v) != recovered (%d v%d %v)",
				lpn, wp, wv, wok, gp, gv, gok)
		}
	}
}

// TestRecoverTwiceIdentical requires recovery to be a pure function of the
// media image: two mounts of the same image dump byte-identical state.
func TestRecoverTwiceIdentical(t *testing.T) {
	_, count, _ := durableWorkload(t, 0)
	// Tear the image mid-stream for a harder case than the clean mount.
	f2, _, torn := durableWorkload(t, count/2)
	if !torn {
		t.Fatal("tear point never reached")
	}
	geo, cell := smallGeo(), nvm.Params(nvm.SLC)
	a, repA, errA := Recover(geo, cell, Config{ReserveSuperblocks: 2}, f2.Media())
	b, repB, errB := Recover(geo, cell, Config{ReserveSuperblocks: 2}, f2.Media())
	if errA != nil || errB != nil {
		t.Fatalf("recover: %v / %v", errA, errB)
	}
	if repA != repB {
		t.Fatalf("reports diverge:\n%+v\n%+v", repA, repB)
	}
	if a.DumpState() != b.DumpState() {
		t.Fatal("recovered state dumps diverge")
	}
	checkInvariants(t, a)
}

// TestRecoverTornPointsInvariants tears the workload at a spread of
// boundaries and requires every mount to hold the structural invariants,
// classify the torn page, and never map a logical page onto it.
func TestRecoverTornPointsInvariants(t *testing.T) {
	_, total, _ := durableWorkload(t, 0)
	if total < 10 {
		t.Fatalf("workload produced only %d boundaries", total)
	}
	for _, frac := range []int{10, 4, 2, 4 * total / 5, total - 1} {
		tearAt := frac
		if frac <= 10 {
			tearAt = total / frac
		}
		if tearAt < 1 {
			tearAt = 1
		}
		f, _, torn := durableWorkload(t, tearAt)
		if !torn {
			t.Fatalf("tear at %d never fired", tearAt)
		}
		rf, rep, err := Recover(smallGeo(), nvm.Params(nvm.SLC), Config{ReserveSuperblocks: 2}, f.Media())
		if err != nil {
			t.Fatalf("tear %d: recover: %v", tearAt, err)
		}
		checkInvariants(t, rf)
		m := f.Media()
		for lpn := int64(0); lpn < rf.Pages(); lpn++ {
			ppn, ver, ok := rf.Mapping(lpn)
			if !ok {
				continue
			}
			oob, programmed, pageTorn := m.PageState(ppn)
			if pageTorn {
				t.Fatalf("tear %d: lpn %d mapped onto torn page %d", tearAt, lpn, ppn)
			}
			if programmed && (oob.LPN != lpn || oob.Ver != ver) {
				t.Fatalf("tear %d: lpn %d v%d maps to page %d tagged lpn=%d v%d",
					tearAt, lpn, ver, ppn, oob.LPN, oob.Ver)
			}
			if !programmed && ver > 0 {
				t.Fatalf("tear %d: lpn %d v%d maps to blank page %d", tearAt, lpn, ver, ppn)
			}
		}
		if rep.Duration <= 0 {
			t.Fatalf("tear %d: free recovery", tearAt)
		}
	}
}

// TestRecoverUnrecoverableJournal corrupts a committed journal page and
// requires the typed error plus a functioning read-only salvage mount.
func TestRecoverUnrecoverableJournal(t *testing.T) {
	f2, _, _ := durableWorkload(t, 0)
	m := f2.Media()
	if m.MetaPages() < 2 {
		t.Fatalf("only %d metadata pages", m.MetaPages())
	}
	// Corrupt the entire committed chain: every checkpoint group becomes
	// unusable and the very first journal page replay reads is unreadable,
	// which is the unrecoverable case (a committed page that acked data may
	// depend on cannot be trusted away).
	corrupted := 0
	for seq := int64(0); seq < 4*m.MetaPages(); seq++ {
		if m.CorruptMeta(seq) {
			corrupted++
		}
	}
	if corrupted == 0 {
		t.Fatal("nothing corrupted")
	}
	rf, rep, err := Recover(smallGeo(), nvm.Params(nvm.SLC), Config{ReserveSuperblocks: 2}, m)
	if !errors.Is(err, ErrUnrecoverableMeta) {
		t.Fatalf("got %v, want ErrUnrecoverableMeta", err)
	}
	if !rep.ReadOnly || !rf.ReadOnly() {
		t.Fatal("salvage mount not read-only")
	}
	checkInvariants(t, rf)
	for lpn := int64(0); lpn < rf.Pages(); lpn++ {
		if ppn, _, ok := rf.Mapping(lpn); ok {
			if _, _, pageTorn := m.PageState(ppn); pageTorn {
				t.Fatalf("salvage mapped lpn %d onto torn page %d", lpn, ppn)
			}
		}
	}
}

// TestDurableStatsAndOverhead pins that durable mode actually prices its
// metadata: journal pages flow, checkpoints fire on the configured
// interval, and the off-mode stays at zero.
func TestDurableStatsAndOverhead(t *testing.T) {
	f, _, _ := durableWorkload(t, 0)
	st := f.Stats()
	if st.JournalPages == 0 {
		t.Fatal("no journal pages written")
	}
	if st.CkptRuns == 0 || st.CkptPages == 0 {
		t.Fatal("no checkpoints taken")
	}
	plain := newSmall(t, nvm.SLC)
	plain.Write(0, plain.PageSize())
	if s := plain.Stats(); s.JournalPages != 0 || s.CkptPages != 0 || s.CkptRuns != 0 {
		t.Fatalf("non-durable FTL reports metadata traffic: %+v", s)
	}
}

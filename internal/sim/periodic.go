package sim

// Periodic fires a callback at every multiple of a fixed simulated-time
// interval. It is the clock hook behind time-resolved telemetry: a component
// that owns a simulated clock calls Advance as the clock moves, and the
// callback runs once per crossed boundary, in order, with the boundary
// instant. Nothing here reads the wall clock, so two identical runs fire the
// callback at identical instants.
//
// Periodic is not safe for concurrent use; it belongs to whichever component
// owns the clock that drives it.
type Periodic struct {
	interval Time
	next     Time
	last     Time // most recently fired boundary
	fn       func(Time)
}

// NewPeriodic returns a hook firing fn at t = interval, 2*interval, ...
// Intervals below one picosecond are clamped to one.
func NewPeriodic(interval Time, fn func(Time)) *Periodic {
	if interval < 1 {
		interval = 1
	}
	return &Periodic{interval: interval, next: interval, fn: fn}
}

// Interval reports the current firing interval.
func (p *Periodic) Interval() Time { return p.interval }

// Last reports the most recently fired boundary (zero before the first).
func (p *Periodic) Last() Time { return p.last }

// SetInterval rebases the hook onto a new interval: the next firing is the
// smallest multiple of the new interval past the last fired boundary, so a
// consumer that coarsens its resolution (telemetry downsampling) never sees
// a boundary out of order or twice.
func (p *Periodic) SetInterval(interval Time) {
	if interval < 1 {
		interval = 1
	}
	p.interval = interval
	p.next = (p.last/interval + 1) * interval
}

// Advance fires the callback for every boundary at or before now. A now
// before the next boundary is a no-op, so callers may invoke it on every
// clock movement for free in the common case.
func (p *Periodic) Advance(now Time) {
	for p.next <= now {
		p.last = p.next
		p.next += p.interval
		p.fn(p.last)
	}
}

package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTimeUnits(t *testing.T) {
	if Second != 1000*Millisecond || Millisecond != 1000*Microsecond ||
		Microsecond != 1000*Nanosecond || Nanosecond != 1000*Picosecond {
		t.Fatal("time unit ladder broken")
	}
}

func TestTimeSeconds(t *testing.T) {
	if got := (2 * Second).Seconds(); got != 2.0 {
		t.Fatalf("Seconds() = %v, want 2", got)
	}
	if got := (500 * Millisecond).Seconds(); got != 0.5 {
		t.Fatalf("Seconds() = %v, want 0.5", got)
	}
}

func TestTimeMicros(t *testing.T) {
	if got := (25 * Microsecond).Micros(); got != 25 {
		t.Fatalf("Micros() = %v, want 25", got)
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{500 * Picosecond, "500ps"},
		{2 * Nanosecond, "2.00ns"},
		{25 * Microsecond, "25.00us"},
		{3 * Millisecond, "3.00ms"},
		{2 * Second, "2.000s"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("%d.String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestDurationForBytes(t *testing.T) {
	// 1000 bytes at 1000 B/s is one second.
	if got := DurationForBytes(1000, 1000); got != Second {
		t.Fatalf("DurationForBytes = %v, want 1s", got)
	}
	// 400 MB/s moving one 2 KiB page: 5.12 us.
	got := DurationForBytes(2048, 400e6)
	want := Time(5.12 * float64(Microsecond))
	if got < want-Nanosecond || got > want+Nanosecond {
		t.Fatalf("DurationForBytes(2048, 400e6) = %v, want ~%v", got, want)
	}
}

func TestDurationForBytesDegenerate(t *testing.T) {
	if DurationForBytes(100, 0) != 0 {
		t.Error("zero rate should be instantaneous (infinitely fast link)")
	}
	if DurationForBytes(0, 100) != 0 {
		t.Error("zero bytes should take zero time")
	}
	if DurationForBytes(-5, 100) != 0 {
		t.Error("negative bytes should take zero time")
	}
}

func TestRateRoundTrip(t *testing.T) {
	f := func(kb uint16, mbps uint16) bool {
		bytes := int64(kb)*1024 + 1
		rate := float64(mbps)*1e6 + 1e5
		d := DurationForBytes(bytes, rate)
		back := Rate(bytes, d)
		return math.Abs(back-rate)/rate < 1e-3
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRateZeroElapsed(t *testing.T) {
	if Rate(100, 0) != 0 {
		t.Fatal("rate over zero time must be 0, not +Inf")
	}
}

func TestMaxMinTime(t *testing.T) {
	if MaxTime(1, 2) != 2 || MaxTime(2, 1) != 2 {
		t.Error("MaxTime wrong")
	}
	if MinTime(1, 2) != 1 || MinTime(2, 1) != 1 {
		t.Error("MinTime wrong")
	}
}

package sim

// IntervalSet accumulates possibly-overlapping busy intervals and reports
// the total covered time — the "kept busy" union the paper's channel- and
// package-level utilization probes measure. Appends that touch the most
// recent interval are coalesced immediately; the rest are merged lazily.
type IntervalSet struct {
	spans  []span
	sorted bool
	// nextCompact is the span count that triggers the next in-place merge;
	// it doubles relative to what survives a merge so genuinely disjoint
	// workloads stay amortized O(1) per Add instead of re-merging every
	// append.
	nextCompact int
}

type span struct{ start, end Time }

// compactThreshold bounds the lazily-accumulated tail: once the set holds
// this many spans it merges in place, so a long replay's per-event appends
// reuse a bounded, recycled backing array instead of growing one span per
// booking for the whole run.
const compactThreshold = 256

// Add records a busy interval. Zero- or negative-length intervals are
// ignored.
func (s *IntervalSet) Add(start, end Time) {
	if end <= start {
		return
	}
	if n := len(s.spans); n > 0 {
		last := &s.spans[n-1]
		if start <= last.end && end >= last.start {
			if start < last.start {
				last.start = start
				s.sorted = false
			}
			if end > last.end {
				last.end = end
			}
			return
		}
		if start < last.end {
			s.sorted = false
		}
	}
	s.spans = append(s.spans, span{start, end})
	if s.nextCompact == 0 {
		s.nextCompact = compactThreshold
	}
	if len(s.spans) >= s.nextCompact {
		s.compact()
		s.nextCompact = 2 * len(s.spans)
		if s.nextCompact < compactThreshold {
			s.nextCompact = compactThreshold
		}
	}
}

// compact sorts and merges the spans in place (the union is unchanged),
// shrinking the set back to its disjoint intervals while keeping the backing
// storage for subsequent appends.
func (s *IntervalSet) compact() {
	if len(s.spans) == 0 {
		s.sorted = true
		return
	}
	if !s.sorted {
		sortSpans(s.spans)
	}
	merged := s.spans[:1]
	for _, sp := range s.spans[1:] {
		last := &merged[len(merged)-1]
		if sp.start <= last.end {
			if sp.end > last.end {
				last.end = sp.end
			}
			continue
		}
		merged = append(merged, sp)
	}
	s.spans = merged
	s.sorted = true
}

// sortSpans orders spans by start time with an in-place heapsort.
// sort.Slice would allocate (its reflect-based swapper escapes) on every
// compaction, which Stats-time Covered calls turn into a per-run cost
// multiplied by the channel and package cover-set count; a hand-rolled sort
// keeps the compaction allocation-free. Ties in start order are merged away
// by compact, so the unstable order cannot change the union.
func sortSpans(spans []span) {
	n := len(spans)
	for i := n/2 - 1; i >= 0; i-- {
		siftSpan(spans, i, n)
	}
	for i := n - 1; i > 0; i-- {
		spans[0], spans[i] = spans[i], spans[0]
		siftSpan(spans, 0, i)
	}
}

// siftSpan restores the max-heap property for the subtree rooted at i,
// considering only the first n elements.
func siftSpan(spans []span, i, n int) {
	for {
		big := i
		if l := 2*i + 1; l < n && spans[l].start > spans[big].start {
			big = l
		}
		if r := 2*i + 2; r < n && spans[r].start > spans[big].start {
			big = r
		}
		if big == i {
			return
		}
		spans[i], spans[big] = spans[big], spans[i]
		i = big
	}
}

// Covered returns the total length of the union of all intervals.
func (s *IntervalSet) Covered() Time {
	if len(s.spans) == 0 {
		return 0
	}
	if !s.sorted {
		s.compact()
	}
	var total Time
	for _, sp := range s.spans {
		total += sp.end - sp.start
	}
	return total
}

// Utilization returns covered time over the span, clamped to [0, 1].
func (s *IntervalSet) Utilization(spanLen Time) float64 {
	if spanLen <= 0 {
		return 0
	}
	u := float64(s.Covered()) / float64(spanLen)
	if u > 1 {
		u = 1
	}
	return u
}

// Reset empties the set, keeping its storage for reuse.
func (s *IntervalSet) Reset() { s.spans = s.spans[:0]; s.sorted = false; s.nextCompact = 0 }

// Len reports the current (possibly unmerged) interval count, for tests.
func (s *IntervalSet) Len() int { return len(s.spans) }

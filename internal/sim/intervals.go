package sim

import "sort"

// IntervalSet accumulates possibly-overlapping busy intervals and reports
// the total covered time — the "kept busy" union the paper's channel- and
// package-level utilization probes measure. Appends that touch the most
// recent interval are coalesced immediately; the rest are merged lazily.
type IntervalSet struct {
	spans  []span
	sorted bool
}

type span struct{ start, end Time }

// Add records a busy interval. Zero- or negative-length intervals are
// ignored.
func (s *IntervalSet) Add(start, end Time) {
	if end <= start {
		return
	}
	if n := len(s.spans); n > 0 {
		last := &s.spans[n-1]
		if start <= last.end && end >= last.start {
			if start < last.start {
				last.start = start
				s.sorted = false
			}
			if end > last.end {
				last.end = end
			}
			return
		}
		if start < last.end {
			s.sorted = false
		}
	}
	s.spans = append(s.spans, span{start, end})
}

// Covered returns the total length of the union of all intervals.
func (s *IntervalSet) Covered() Time {
	if len(s.spans) == 0 {
		return 0
	}
	if !s.sorted {
		sort.Slice(s.spans, func(i, j int) bool { return s.spans[i].start < s.spans[j].start })
		merged := s.spans[:1]
		for _, sp := range s.spans[1:] {
			last := &merged[len(merged)-1]
			if sp.start <= last.end {
				if sp.end > last.end {
					last.end = sp.end
				}
				continue
			}
			merged = append(merged, sp)
		}
		s.spans = merged
		s.sorted = true
	}
	var total Time
	for _, sp := range s.spans {
		total += sp.end - sp.start
	}
	return total
}

// Utilization returns covered time over the span, clamped to [0, 1].
func (s *IntervalSet) Utilization(spanLen Time) float64 {
	if spanLen <= 0 {
		return 0
	}
	u := float64(s.Covered()) / float64(spanLen)
	if u > 1 {
		u = 1
	}
	return u
}

// Reset empties the set.
func (s *IntervalSet) Reset() { s.spans = s.spans[:0]; s.sorted = false }

// Len reports the current (possibly unmerged) interval count, for tests.
func (s *IntervalSet) Len() int { return len(s.spans) }

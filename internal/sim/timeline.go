package sim

// Timeline models an exclusive resource (a channel bus, a die, a host link)
// as a single availability horizon. Acquire serializes work on the resource
// in call order, which matches the in-order micro-operation dispatch of the
// controllers modeled here, and accumulates total busy time so utilization
// can be computed as busy/span after a run.
type Timeline struct {
	free Time // the instant the resource next becomes idle
	busy Time // total time the resource has spent occupied
	used bool // whether the resource was ever acquired
}

// Acquire books the resource for dur starting no earlier than at. It returns
// the actual start time (= max(at, current horizon)) and the completion time.
func (tl *Timeline) Acquire(at, dur Time) (start, end Time) {
	start = MaxTime(at, tl.free)
	end = start + dur
	tl.free = end
	tl.busy += dur
	tl.used = true
	return start, end
}

// FreeAt reports when the resource next becomes idle.
func (tl *Timeline) FreeAt() Time { return tl.free }

// Busy reports the accumulated occupied time.
func (tl *Timeline) Busy() Time { return tl.busy }

// Used reports whether the resource served any work at all.
func (tl *Timeline) Used() bool { return tl.used }

// Reset returns the timeline to its initial idle state.
func (tl *Timeline) Reset() { *tl = Timeline{} }

// Utilization returns busy time as a fraction of the given span, clamped to
// [0, 1]. A zero span yields zero.
func (tl *Timeline) Utilization(span Time) float64 {
	if span <= 0 {
		return 0
	}
	u := float64(tl.busy) / float64(span)
	if u > 1 {
		u = 1
	}
	return u
}

package sim

import (
	"testing"
	"testing/quick"
)

func TestWindowDepthOne(t *testing.T) {
	w := NewWindow(1, 0)
	if got := w.Admit(0, 10); got != 0 {
		t.Fatalf("first admit = %v, want 0", got)
	}
	w.Complete(100, 10)
	// Second op must wait for the first's completion.
	if got := w.Admit(5, 10); got != 100 {
		t.Fatalf("second admit = %v, want 100", got)
	}
	w.Complete(200, 10)
}

func TestWindowDepthN(t *testing.T) {
	w := NewWindow(3, 0)
	for i := 0; i < 3; i++ {
		if got := w.Admit(0, 1); got != 0 {
			t.Fatalf("admit %d delayed to %v", i, got)
		}
		w.Complete(Time(10*(i+1)), 1)
	}
	// Fourth waits for the earliest completion (10).
	if got := w.Admit(0, 1); got != 10 {
		t.Fatalf("fourth admit = %v, want 10", got)
	}
	w.Complete(40, 1)
}

func TestWindowByteBound(t *testing.T) {
	w := NewWindow(100, 1000)
	if got := w.Admit(0, 600); got != 0 {
		t.Fatalf("first admit = %v, want 0", got)
	}
	w.Complete(50, 600)
	// 600 + 600 > 1000: must wait for the first to retire.
	if got := w.Admit(0, 600); got != 50 {
		t.Fatalf("second admit = %v, want 50", got)
	}
	w.Complete(80, 600)
}

func TestWindowOversizeOpIssuesAlone(t *testing.T) {
	w := NewWindow(10, 100)
	if got := w.Admit(7, 5000); got != 7 {
		t.Fatalf("oversize op on empty window delayed to %v", got)
	}
	w.Complete(99, 5000)
	// The next op must wait for the oversize one.
	if got := w.Admit(0, 10); got != 99 {
		t.Fatalf("op after oversize = %v, want 99", got)
	}
	w.Complete(120, 10)
}

func TestWindowDrain(t *testing.T) {
	w := NewWindow(4, 0)
	for i := 1; i <= 4; i++ {
		w.Admit(0, 1)
		w.Complete(Time(i*10), 1)
	}
	if got := w.Drain(); got != 40 {
		t.Fatalf("Drain = %v, want 40 (latest completion)", got)
	}
	if w.InFlight() != 0 {
		t.Fatal("window not empty after drain")
	}
}

func TestWindowDegenerateDepth(t *testing.T) {
	w := NewWindow(0, 0)
	if w.Depth() != 1 {
		t.Fatalf("depth 0 must normalize to 1, got %d", w.Depth())
	}
	w = NewWindow(-3, 0)
	if w.Depth() != 1 {
		t.Fatalf("negative depth must normalize to 1, got %d", w.Depth())
	}
}

func TestWindowReset(t *testing.T) {
	w := NewWindow(2, 100)
	w.Admit(0, 50)
	w.Complete(10, 50)
	w.Reset()
	if w.InFlight() != 0 {
		t.Fatal("Reset left in-flight ops")
	}
	if got := w.Admit(0, 100); got != 0 {
		t.Fatalf("admit after reset = %v, want 0", got)
	}
	w.Complete(1, 100)
}

// Property: with depth d and ops completing in submission order, the i-th op
// never issues before the (i-d)-th completion.
func TestWindowDepthInvariantProperty(t *testing.T) {
	f := func(depth8 uint8, n8 uint8) bool {
		depth := int(depth8%7) + 1
		n := int(n8%40) + depth
		w := NewWindow(depth, 0)
		completions := make([]Time, n)
		for i := 0; i < n; i++ {
			issue := w.Admit(0, 1)
			end := issue + 10
			completions[i] = end
			w.Complete(end, 1)
			if i >= depth && issue < completions[i-depth] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: at every admission, the bytes of still-incomplete earlier ops
// plus the new op never exceed the byte bound — unless the new op had the
// whole window to itself.
func TestWindowByteInvariantProperty(t *testing.T) {
	type op struct {
		end  Time
		size int64
	}
	f := func(sizes []uint8) bool {
		const bound = 100
		w := NewWindow(1000, bound)
		var live []op
		clock := Time(0)
		for i, s8 := range sizes {
			size := int64(s8%60) + 1
			issue := w.Admit(clock, size)
			if issue < clock {
				return false
			}
			// Retire everything completed by the issue instant.
			var kept []op
			var total int64
			for _, o := range live {
				if o.end > issue {
					kept = append(kept, o)
					total += o.size
				}
			}
			live = kept
			if total+size > bound && total > 0 {
				return false
			}
			end := issue + Time(5+i%7)
			w.Complete(end, size)
			live = append(live, op{end, size})
			clock = issue
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWindowInFlightAt(t *testing.T) {
	w := NewWindow(8, 0)
	// Three ops issued at 0 completing at 10, 20, 30.
	for _, end := range []Time{10, 20, 30} {
		w.Admit(0, 1)
		w.Complete(end, 1)
	}
	for _, tc := range []struct {
		at   Time
		want int
	}{{0, 3}, {9, 3}, {10, 2}, {19, 2}, {25, 1}, {30, 0}, {100, 0}} {
		if got := w.InFlightAt(tc.at); got != tc.want {
			t.Errorf("InFlightAt(%d) = %d, want %d", tc.at, got, tc.want)
		}
	}
	// Lazy retirement: a deep Admit keeps finished ops in the heap; they
	// still must not count at instants past their completion.
	w2 := NewWindow(2, 0)
	w2.Admit(0, 1)
	w2.Complete(5, 1)
	w2.Admit(0, 1)
	w2.Complete(6, 1)
	if got := w2.InFlightAt(7); got != 0 {
		t.Errorf("InFlightAt(7) = %d with lazily-retained ops, want 0", got)
	}
}

package sim

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestIntervalSetDisjoint(t *testing.T) {
	var s IntervalSet
	s.Add(0, 10)
	s.Add(20, 30)
	if got := s.Covered(); got != 20 {
		t.Fatalf("Covered = %v, want 20", got)
	}
}

func TestIntervalSetOverlapMerges(t *testing.T) {
	var s IntervalSet
	s.Add(0, 10)
	s.Add(5, 15)
	if got := s.Covered(); got != 15 {
		t.Fatalf("Covered = %v, want 15", got)
	}
}

func TestIntervalSetContainment(t *testing.T) {
	var s IntervalSet
	s.Add(0, 100)
	s.Add(10, 20)
	if got := s.Covered(); got != 100 {
		t.Fatalf("Covered = %v, want 100", got)
	}
}

func TestIntervalSetOutOfOrder(t *testing.T) {
	var s IntervalSet
	s.Add(50, 60)
	s.Add(0, 10)
	s.Add(55, 70)
	s.Add(5, 52)
	if got := s.Covered(); got != 70 {
		t.Fatalf("Covered = %v, want 70", got)
	}
}

func TestIntervalSetIgnoresEmpty(t *testing.T) {
	var s IntervalSet
	s.Add(10, 10)
	s.Add(10, 5)
	if s.Covered() != 0 || s.Len() != 0 {
		t.Fatal("empty/negative intervals must be ignored")
	}
}

func TestIntervalSetAddAfterCovered(t *testing.T) {
	var s IntervalSet
	s.Add(0, 10)
	if s.Covered() != 10 {
		t.Fatal("setup")
	}
	// Adding after a lazy merge must still work, both appending and
	// overlapping.
	s.Add(20, 30)
	s.Add(25, 40)
	s.Add(5, 6)
	if got := s.Covered(); got != 30 {
		t.Fatalf("Covered = %v, want 30", got)
	}
}

func TestIntervalSetUtilization(t *testing.T) {
	var s IntervalSet
	s.Add(0, 25)
	if got := s.Utilization(100); got != 0.25 {
		t.Fatalf("Utilization = %v, want 0.25", got)
	}
	if got := s.Utilization(0); got != 0 {
		t.Fatalf("Utilization(0) = %v, want 0", got)
	}
	if got := s.Utilization(10); got != 1 {
		t.Fatalf("Utilization must clamp at 1, got %v", got)
	}
}

func TestIntervalSetReset(t *testing.T) {
	var s IntervalSet
	s.Add(0, 10)
	s.Reset()
	if s.Covered() != 0 {
		t.Fatal("Reset did not clear")
	}
}

// Property: Covered matches a brute-force union over arbitrary interval
// sequences.
func TestIntervalSetMatchesBruteForceProperty(t *testing.T) {
	type iv struct{ s, e Time }
	f := func(raw []uint16) bool {
		var set IntervalSet
		var ivs []iv
		for _, r := range raw {
			start := Time(r % 199)
			end := start + Time(r%31)
			set.Add(start, end)
			if end > start {
				ivs = append(ivs, iv{start, end})
			}
		}
		// Brute force: merge sorted intervals.
		sort.Slice(ivs, func(i, j int) bool { return ivs[i].s < ivs[j].s })
		var want Time
		var cur iv
		for i, v := range ivs {
			if i == 0 {
				cur = v
				continue
			}
			if v.s <= cur.e {
				if v.e > cur.e {
					cur.e = v.e
				}
				continue
			}
			want += cur.e - cur.s
			cur = v
		}
		if len(ivs) > 0 {
			want += cur.e - cur.s
		}
		return set.Covered() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: interleaving Covered() calls with Adds never changes the result.
func TestIntervalSetLazyMergeStableProperty(t *testing.T) {
	f := func(raw []uint16, probe uint8) bool {
		var a, b IntervalSet
		for i, r := range raw {
			start := Time(r % 97)
			end := start + Time(r%17) + 1
			a.Add(start, end)
			b.Add(start, end)
			if i%int(probe%5+1) == 0 {
				_ = b.Covered() // force intermediate merges
			}
		}
		return a.Covered() == b.Covered()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

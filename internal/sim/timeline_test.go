package sim

import (
	"testing"
	"testing/quick"
)

func TestTimelineSerializes(t *testing.T) {
	var tl Timeline
	s1, e1 := tl.Acquire(0, 10)
	if s1 != 0 || e1 != 10 {
		t.Fatalf("first acquire = [%v,%v), want [0,10)", s1, e1)
	}
	// A second acquisition wanting t=5 must wait until 10.
	s2, e2 := tl.Acquire(5, 10)
	if s2 != 10 || e2 != 20 {
		t.Fatalf("second acquire = [%v,%v), want [10,20)", s2, e2)
	}
	// An acquisition after the horizon starts on time.
	s3, e3 := tl.Acquire(100, 5)
	if s3 != 100 || e3 != 105 {
		t.Fatalf("third acquire = [%v,%v), want [100,105)", s3, e3)
	}
}

func TestTimelineBusyAccounting(t *testing.T) {
	var tl Timeline
	tl.Acquire(0, 10)
	tl.Acquire(50, 20)
	if tl.Busy() != 30 {
		t.Fatalf("Busy = %v, want 30", tl.Busy())
	}
	if !tl.Used() {
		t.Fatal("Used must be true after acquires")
	}
	if got := tl.Utilization(100); got != 0.3 {
		t.Fatalf("Utilization(100) = %v, want 0.3", got)
	}
}

func TestTimelineUtilizationClamps(t *testing.T) {
	var tl Timeline
	tl.Acquire(0, 100)
	if got := tl.Utilization(50); got != 1 {
		t.Fatalf("Utilization must clamp to 1, got %v", got)
	}
	if got := tl.Utilization(0); got != 0 {
		t.Fatalf("Utilization of zero span must be 0, got %v", got)
	}
}

func TestTimelineReset(t *testing.T) {
	var tl Timeline
	tl.Acquire(0, 10)
	tl.Reset()
	if tl.Busy() != 0 || tl.FreeAt() != 0 || tl.Used() {
		t.Fatal("Reset did not clear state")
	}
}

// Property: acquisitions never overlap and starts never precede requests.
func TestTimelineNoOverlapProperty(t *testing.T) {
	f := func(reqs []uint16) bool {
		var tl Timeline
		var lastEnd Time
		for i, r := range reqs {
			at := Time(r % 997)
			dur := Time(r%13 + 1)
			s, e := tl.Acquire(at, dur)
			if s < at || e != s+dur {
				return false
			}
			if i > 0 && s < lastEnd {
				return false // overlap with previous booking
			}
			lastEnd = e
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: total busy time equals the sum of requested durations.
func TestTimelineBusySumProperty(t *testing.T) {
	f := func(durs []uint8) bool {
		var tl Timeline
		var want Time
		for _, d := range durs {
			dur := Time(d) + 1
			tl.Acquire(0, dur)
			want += dur
		}
		return tl.Busy() == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

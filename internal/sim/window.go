package sim

import "oocnvm/internal/obs/hostperf"

// Window models the host's bounded set of in-flight operations. Two limits
// apply simultaneously:
//
//   - Depth, the queue-entry limit (NCQ slots, driver tags); and
//   - MaxBytes, the in-flight byte limit — for a synchronous POSIX reader
//     this is the kernel's readahead window, the knob the paper's "ext4-L"
//     configuration turns up.
//
// A new operation may only issue once both limits hold. Completion times are
// tracked in a min-heap so admission order is by earliest completion,
// independent of issue order. The heap is hand-rolled over the concrete
// element type: container/heap would box every element into an interface,
// allocating once per admitted operation on the replay hot path.
type Window struct {
	depth    int
	maxBytes int64
	bytes    int64
	heap     []inflightOp
}

// NewWindow returns a window admitting up to depth concurrent operations and
// (when maxBytes > 0) at most maxBytes of outstanding data. A depth <= 0 is
// treated as depth 1 (fully synchronous).
func NewWindow(depth int, maxBytes int64) *Window {
	if depth <= 0 {
		depth = 1
	}
	// The heap never exceeds the queue depth (Admit pops below depth before
	// every Complete push), so sizing the backing array up front removes the
	// growth reallocations from the replay hot path. Absurd depths are
	// clamped; push still grows on demand past the clamp.
	pre := depth
	if pre > 4096 {
		pre = 4096
	}
	return &Window{depth: depth, maxBytes: maxBytes, heap: make([]inflightOp, 0, pre)}
}

// Depth reports the configured queue depth.
func (w *Window) Depth() int { return w.depth }

// MaxBytes reports the configured in-flight byte limit (0 = unlimited).
func (w *Window) MaxBytes() int64 { return w.maxBytes }

// InFlight reports how many admitted operations have not yet been retired.
// (Operations are retired lazily, as Admit waits for room.)
func (w *Window) InFlight() int { return len(w.heap) }

// InFlightAt reports how many tracked operations are still executing at
// instant t — admitted with a completion time strictly after t. Because
// retirement is lazy, the heap can hold operations that finished before t;
// those are excluded, so telemetry sampling at a past boundary sees the queue
// depth that actually held then. Operations already retired by an Admit are
// gone and cannot be reconstructed; sampling therefore reads a lower bound,
// exact whenever it runs before the admissions that retire them.
func (w *Window) InFlightAt(t Time) int {
	n := 0
	for _, op := range w.heap {
		if op.end > t {
			n++
		}
	}
	return n
}

// Admit returns the earliest time an operation of `size` bytes arriving at
// 'at' may issue. Call Complete exactly once per Admit. An operation larger
// than MaxBytes issues alone (when the window is otherwise empty).
func (w *Window) Admit(at Time, size int64) Time {
	t := at
	for len(w.heap) > 0 &&
		(len(w.heap) >= w.depth ||
			(w.maxBytes > 0 && w.bytes+size > w.maxBytes)) {
		op := w.pop()
		w.bytes -= op.size
		t = MaxTime(t, op.end)
	}
	w.bytes += size
	return t
}

// Complete records the completion time of the most recently admitted
// operation. The size must match the Admit call.
func (w *Window) Complete(end Time, size int64) {
	w.push(inflightOp{end: end, size: size})
}

// Drain returns the completion time of the last operation to finish and
// empties the window.
func (w *Window) Drain() Time {
	var last Time
	for len(w.heap) > 0 {
		last = MaxTime(last, w.pop().end)
	}
	w.bytes = 0
	return last
}

// Reset empties the window without reporting a drain time.
func (w *Window) Reset() { w.heap = w.heap[:0]; w.bytes = 0 }

type inflightOp struct {
	end  Time
	size int64
}

// push inserts op, maintaining the min-heap ordering on end time.
func (w *Window) push(op inflightOp) {
	if len(w.heap) == cap(w.heap) {
		// Backing-array growth is the window's only allocation; attribute
		// it so the allocs-by-subsystem map can show it is already amortized
		// out (growth stops once the heap reaches the queue depth).
		hostperf.Enter(hostperf.SiteSimWindow)
		w.heap = append(w.heap, op)
		hostperf.Exit()
	} else {
		w.heap = append(w.heap, op)
	}
	h := w.heap
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h[parent].end <= h[i].end {
			break
		}
		h[parent], h[i] = h[i], h[parent]
		i = parent
	}
}

// pop removes and returns the earliest-completing operation.
func (w *Window) pop() inflightOp {
	h := w.heap
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	w.heap = h[:n]
	for i := 0; ; {
		small := i
		if l := 2*i + 1; l < n && h[l].end < h[small].end {
			small = l
		}
		if r := 2*i + 2; r < n && h[r].end < h[small].end {
			small = r
		}
		if small == i {
			break
		}
		h[i], h[small] = h[small], h[i]
		i = small
	}
	return top
}

package sim

import "testing"

func TestPeriodicFiresEveryBoundaryInOrder(t *testing.T) {
	var fired []Time
	p := NewPeriodic(10, func(at Time) { fired = append(fired, at) })
	p.Advance(5) // before the first boundary: nothing
	if len(fired) != 0 {
		t.Fatalf("fired early: %v", fired)
	}
	p.Advance(35) // crosses 10, 20, 30 at once
	want := []Time{10, 20, 30}
	if len(fired) != len(want) {
		t.Fatalf("fired %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired %v, want %v", fired, want)
		}
	}
	p.Advance(35) // same instant again: nothing new
	if len(fired) != 3 {
		t.Fatalf("refired at same instant: %v", fired)
	}
	if p.Last() != 30 {
		t.Fatalf("Last = %v, want 30", p.Last())
	}
}

func TestPeriodicSetIntervalNeverRefiresOldBoundaries(t *testing.T) {
	var fired []Time
	p := NewPeriodic(10, func(at Time) { fired = append(fired, at) })
	p.Advance(40) // 10, 20, 30, 40
	p.SetInterval(25)
	p.Advance(100) // multiples of 25 past 40: 50, 75, 100
	want := []Time{10, 20, 30, 40, 50, 75, 100}
	if len(fired) != len(want) {
		t.Fatalf("fired %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired %v, want %v", fired, want)
		}
	}
}

func TestPeriodicClampsInterval(t *testing.T) {
	n := 0
	p := NewPeriodic(0, func(Time) { n++ })
	if p.Interval() != 1 {
		t.Fatalf("interval = %v, want clamp to 1", p.Interval())
	}
	p.Advance(3)
	if n != 3 {
		t.Fatalf("fired %d times, want 3", n)
	}
}

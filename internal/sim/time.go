// Package sim provides the deterministic discrete-event timing core used by
// every simulated subsystem in this repository: a picosecond-resolution time
// base, resource timelines with busy-time accounting, a bounded in-flight
// window for modeling host queue depths, and a reproducible PRNG.
//
// Nothing in this package reads the wall clock; two runs with the same inputs
// produce bit-identical results.
package sim

import "fmt"

// Time is a simulated instant or duration in picoseconds. Picosecond
// resolution keeps sub-nanosecond rounding error out of small bus transfers
// (a 64 B PCM transaction on a 3.2 GB/s channel lasts only 20 ns) while an
// int64 still spans over one hundred simulated days.
type Time int64

// Common durations.
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000 * Picosecond
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Seconds converts t to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Micros converts t to floating-point microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// String renders the duration with an adaptive unit, for logs and test
// failure messages.
func (t Time) String() string {
	switch {
	case t < Nanosecond:
		return fmt.Sprintf("%dps", int64(t))
	case t < Microsecond:
		return fmt.Sprintf("%.2fns", float64(t)/float64(Nanosecond))
	case t < Millisecond:
		return fmt.Sprintf("%.2fus", float64(t)/float64(Microsecond))
	case t < Second:
		return fmt.Sprintf("%.2fms", float64(t)/float64(Millisecond))
	default:
		return fmt.Sprintf("%.3fs", t.Seconds())
	}
}

// DurationForBytes returns how long a transfer of n bytes takes at the given
// rate in bytes per second. Rates at or below zero yield zero duration, which
// callers use for "infinitely fast" links.
func DurationForBytes(n int64, bytesPerSec float64) Time {
	if bytesPerSec <= 0 || n <= 0 {
		return 0
	}
	return Time(float64(n) / bytesPerSec * float64(Second))
}

// Rate converts bytes moved over a duration into bytes per second.
func Rate(bytes int64, elapsed Time) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(bytes) / elapsed.Seconds()
}

// MaxTime returns the later of a and b.
func MaxTime(a, b Time) Time {
	if a > b {
		return a
	}
	return b
}

// MinTime returns the earlier of a and b.
func MinTime(a, b Time) Time {
	if a < b {
		return a
	}
	return b
}

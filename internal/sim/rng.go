package sim

// RNG is a small, fast, reproducible pseudo-random generator (SplitMix64).
// Every stochastic choice in the simulators draws from an RNG seeded from the
// experiment configuration, so results are stable across runs and platforms.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed. Distinct seeds give
// independent-looking streams; seed 0 is as good as any other.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed + 0x9e3779b97f4a7c15}
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("sim: Int63n with non-positive n")
	}
	return int64(r.Uint64() % uint64(n))
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Fork derives an independent generator from the current stream, for handing
// separate random streams to subcomponents without coupling their draws.
func (r *RNG) Fork() *RNG {
	return NewRNG(r.Uint64())
}

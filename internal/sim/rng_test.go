package sim

import (
	"testing"
	"testing/quick"
)

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(7), NewRNG(7)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d identical draws from different seeds", same)
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestRNGFloat64Uniformish(t *testing.T) {
	r := NewRNG(5)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if mean < 0.49 || mean > 0.51 {
		t.Fatalf("mean of %d uniform draws = %v, want ~0.5", n, mean)
	}
}

func TestRNGIntnRange(t *testing.T) {
	r := NewRNG(9)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Fatalf("Intn(7) produced only %d distinct values in 1000 draws", len(seen))
	}
}

func TestRNGIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestRNGInt63nPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Int63n(-1) did not panic")
		}
	}()
	NewRNG(1).Int63n(-1)
}

func TestRNGBoolEdges(t *testing.T) {
	r := NewRNG(11)
	for i := 0; i < 100; i++ {
		if r.Bool(0) {
			t.Fatal("Bool(0) returned true")
		}
		if !r.Bool(1) {
			t.Fatal("Bool(1) returned false")
		}
	}
}

func TestRNGBoolProbability(t *testing.T) {
	r := NewRNG(13)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bool(0.25) {
			hits++
		}
	}
	frac := float64(hits) / n
	if frac < 0.23 || frac > 0.27 {
		t.Fatalf("Bool(0.25) hit rate %v", frac)
	}
}

func TestRNGForkIndependence(t *testing.T) {
	parent := NewRNG(21)
	child := parent.Fork()
	// The fork must not replay the parent's stream.
	a := parent.Uint64()
	b := child.Uint64()
	if a == b {
		t.Fatal("fork replays the parent stream")
	}
}

// Property: Int63n stays in range for arbitrary positive bounds.
func TestRNGInt63nRangeProperty(t *testing.T) {
	r := NewRNG(99)
	f := func(bound uint32) bool {
		n := int64(bound%1_000_000) + 1
		v := r.Int63n(n)
		return v >= 0 && v < n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRNGIntnPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(-3) did not panic")
		}
	}()
	NewRNG(1).Intn(-3)
}

func TestRNGInt63nPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Int63n(0) did not panic")
		}
	}()
	NewRNG(1).Int63n(0)
}

// Streams from nearby seeds must not be shifted copies of each other: the
// draws of seed s must not reappear anywhere in a window of seed s+1's
// stream. SplitMix64's output mixing is what guarantees this; a plain LCG
// would fail.
func TestRNGStreamIndependenceAcrossSeeds(t *testing.T) {
	const window = 256
	for seed := uint64(0); seed < 8; seed++ {
		a := NewRNG(seed)
		ref := make(map[uint64]bool, window)
		for i := 0; i < window; i++ {
			ref[a.Uint64()] = true
		}
		b := NewRNG(seed + 1)
		hits := 0
		for i := 0; i < window; i++ {
			if ref[b.Uint64()] {
				hits++
			}
		}
		if hits > 0 {
			t.Fatalf("seed %d and %d share %d values in a %d-draw window", seed, seed+1, hits, window)
		}
	}
}

// A fork must diverge from the parent's continued stream, not race ahead of
// it: no overlap between the two streams' next draws.
func TestRNGForkStreamDisjointFromParent(t *testing.T) {
	parent := NewRNG(77)
	child := parent.Fork()
	seen := make(map[uint64]bool)
	for i := 0; i < 256; i++ {
		seen[parent.Uint64()] = true
	}
	for i := 0; i < 256; i++ {
		if seen[child.Uint64()] {
			t.Fatalf("forked stream replays a parent draw at offset %d", i)
		}
	}
}

// Bool(p) with p <= 0 must not consume stream state, so gating a feature on
// probability zero cannot perturb downstream draws (the zero-fault-profile
// bit-reproducibility guarantee leans on this).
func TestRNGBoolZeroDrawsNothing(t *testing.T) {
	a, b := NewRNG(5), NewRNG(5)
	for i := 0; i < 100; i++ {
		a.Bool(0)
		a.Bool(-1)
	}
	if a.Uint64() != b.Uint64() {
		t.Fatal("Bool(<=0) consumed RNG state")
	}
}

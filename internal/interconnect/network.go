package interconnect

import "oocnvm/internal/sim"

// NetworkParams describes a cluster fabric port.
type NetworkParams struct {
	Name        string
	SignalGbps  float64 // raw signalling rate of the port
	EncodingNum int
	EncodingDen int
	ProtocolEff float64  // transport/middleware efficiency on top of encoding
	RoundTrip   sim.Time // per-request round-trip setup cost
	ShareFactor float64  // fraction of the port available to one consumer
}

// QDR4XInfiniBand is Carver's fabric (Figure 3): 4 lanes x 10 Gb/s with
// 8b/10b encoding = 4 GB/s of data per port. The paper's ION-local results
// additionally pay GPFS client/NSD protocol overhead and share each ION's
// port between its two PCIe SSDs, which is captured by ProtocolEff and
// ShareFactor.
func QDR4XInfiniBand() NetworkParams {
	return NetworkParams{
		Name:       "QDR-4X-InfiniBand",
		SignalGbps: 40, EncodingNum: 8, EncodingDen: 10,
		ProtocolEff: 0.55,
		RoundTrip:   25 * sim.Microsecond,
		ShareFactor: 0.5,
	}
}

// FibreChannel8G models the ION-to-RAID attachment of Figures 2 and 3.
func FibreChannel8G() NetworkParams {
	return NetworkParams{
		Name:       "FibreChannel-8G",
		SignalGbps: 8, EncodingNum: 8, EncodingDen: 10,
		ProtocolEff: 0.90,
		RoundTrip:   20 * sim.Microsecond,
		ShareFactor: 1,
	}
}

// FortyGigE models the 40 Gigabit Ethernet alternative §4.3 mentions.
func FortyGigE() NetworkParams {
	return NetworkParams{
		Name:       "40GigE",
		SignalGbps: 40, EncodingNum: 64, EncodingDen: 66,
		ProtocolEff: 0.60,
		RoundTrip:   40 * sim.Microsecond,
		ShareFactor: 0.5,
	}
}

// EffectiveBytesPerSec returns the data bandwidth one consumer sees.
func (n NetworkParams) EffectiveBytesPerSec() float64 {
	bw := n.SignalGbps * 1e9 / 8 * float64(n.EncodingNum) / float64(n.EncodingDen)
	bw *= n.ProtocolEff
	if n.ShareFactor > 0 {
		bw *= n.ShareFactor
	}
	return bw
}

// NewNetworkLine builds the Timeline-backed link for the fabric.
func NewNetworkLine(n NetworkParams) *Line {
	return NewLine(n.Name, n.EffectiveBytesPerSec(), n.RoundTrip)
}

// IONPath assembles the full ION-local data path of Figure 2a: the remote
// SSD's own (bridged) PCIe attachment in series with the cluster network.
func IONPath(pcie PCIeConfig, net NetworkParams) *Chain {
	return NewChain(NewPCIeLine(pcie), NewNetworkLine(net))
}

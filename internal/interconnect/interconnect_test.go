package interconnect

import (
	"math"
	"strings"
	"testing"

	"oocnvm/internal/sim"
)

func TestPCIeLaneRates(t *testing.T) {
	// Gen2: 5 GT/s with 8b/10b -> 500 MB/s payload per lane.
	if got := PCIeGen2.LaneBytesPerSec(); got != 500e6 {
		t.Fatalf("gen2 lane = %v, want 500e6", got)
	}
	// Gen3: 8 GT/s with 128b/130b -> ~984.6 MB/s per lane.
	got := PCIeGen3.LaneBytesPerSec()
	if math.Abs(got-984.615e6) > 1e5 {
		t.Fatalf("gen3 lane = %v, want ~984.6e6", got)
	}
}

func TestEncodingOverheads(t *testing.T) {
	// The paper's §3.3: 8b/10b wastes 25% extra (payload = 80% of raw);
	// 128b/130b overhead is just ~1.5%.
	g2 := float64(PCIeGen2.EncodingNum) / float64(PCIeGen2.EncodingDen)
	g3 := float64(PCIeGen3.EncodingNum) / float64(PCIeGen3.EncodingDen)
	if g2 != 0.8 {
		t.Fatalf("gen2 encoding efficiency = %v, want 0.8", g2)
	}
	if g3 < 0.984 || g3 > 0.985 {
		t.Fatalf("gen3 encoding efficiency = %v, want ~0.9846", g3)
	}
}

func TestBridgePenalty(t *testing.T) {
	bridged := PCIeConfig{Gen: PCIeGen2, Lanes: 8, Bridged: true}
	native := PCIeConfig{Gen: PCIeGen2, Lanes: 8, Bridged: false}
	if bridged.EffectiveBytesPerSec() >= native.EffectiveBytesPerSec() {
		t.Fatal("bridged attachment must lose bandwidth to re-encoding")
	}
	if bridged.RequestOverhead() <= native.RequestOverhead() {
		t.Fatal("bridged attachment must add per-request latency")
	}
}

func TestLaneScaling(t *testing.T) {
	x8 := PCIeConfig{Gen: PCIeGen3, Lanes: 8}
	x16 := PCIeConfig{Gen: PCIeGen3, Lanes: 16}
	if r := x16.EffectiveBytesPerSec() / x8.EffectiveBytesPerSec(); r != 2 {
		t.Fatalf("16/8 lane ratio = %v, want 2", r)
	}
}

func TestPCIeConfigString(t *testing.T) {
	s := PCIeConfig{Gen: PCIeGen2, Lanes: 8, Bridged: true}.String()
	if !strings.Contains(s, "PCIe2.0") || !strings.Contains(s, "x8") || !strings.Contains(s, "bridged") {
		t.Fatalf("String() = %q", s)
	}
}

func TestLineSerializesTransfers(t *testing.T) {
	l := NewLine("test", 1e6, 0) // 1 MB/s
	e1 := l.Transfer(0, 1e6)     // one second
	if e1 != sim.Second {
		t.Fatalf("first transfer ends at %v, want 1s", e1)
	}
	e2 := l.Transfer(0, 1e6)
	if e2 != 2*sim.Second {
		t.Fatalf("second transfer must queue: ends at %v, want 2s", e2)
	}
	if l.Busy() != 2*sim.Second {
		t.Fatalf("busy = %v", l.Busy())
	}
}

func TestLineReset(t *testing.T) {
	l := NewLine("test", 1e6, 5)
	l.Transfer(0, 1e6)
	l.Reset()
	if l.Busy() != 0 {
		t.Fatal("reset did not clear")
	}
	if l.Name() != "test" || l.RequestOverhead() != 5 || l.BytesPerSec() != 1e6 {
		t.Fatal("accessors wrong")
	}
}

func TestInfiniteLink(t *testing.T) {
	var inf Infinite
	if inf.Transfer(42, 1<<40) != 42 {
		t.Fatal("infinite link must be instantaneous")
	}
	if inf.RequestOverhead() != 0 {
		t.Fatal("infinite link has overhead")
	}
}

func TestChainSeriesBandwidth(t *testing.T) {
	fast := NewLine("fast", 10e6, 1*sim.Microsecond)
	slow := NewLine("slow", 1e6, 2*sim.Microsecond)
	c := NewChain(fast, slow)
	if got := c.BytesPerSec(); got != 1e6 {
		t.Fatalf("chain bandwidth = %v, want bottleneck 1e6", got)
	}
	if got := c.RequestOverhead(); got != 3*sim.Microsecond {
		t.Fatalf("chain overhead = %v, want 3us", got)
	}
	// A transfer passes through both stages in series.
	end := c.Transfer(0, 1e6)
	if end < sim.Second {
		t.Fatalf("chained transfer ended at %v, before the slow stage could finish", end)
	}
}

func TestQDRInfiniBandEnvelope(t *testing.T) {
	n := QDR4XInfiniBand()
	raw := n.SignalGbps * 1e9 / 8 * float64(n.EncodingNum) / float64(n.EncodingDen)
	if raw != 4e9 {
		t.Fatalf("QDR 4X data rate = %v, want 4 GB/s (Figure 3)", raw)
	}
	eff := n.EffectiveBytesPerSec()
	if eff >= raw {
		t.Fatal("effective rate must be below the port rate (protocol + sharing)")
	}
	if eff < 0.5e9 || eff > 2e9 {
		t.Fatalf("effective per-SSD rate %v outside the calibrated band", eff)
	}
}

func TestIONPathSlowerThanLocal(t *testing.T) {
	pcie := PCIeConfig{Gen: PCIeGen2, Lanes: 8, Bridged: true}
	local := NewPCIeLine(pcie)
	remote := IONPath(pcie, QDR4XInfiniBand())
	if remote.BytesPerSec() >= local.BytesPerSec() {
		t.Fatal("the ION path cannot be faster than the local attachment")
	}
	if remote.RequestOverhead() <= local.RequestOverhead() {
		t.Fatal("the ION path must add network round-trip overhead")
	}
}

func TestNetworkGenerations(t *testing.T) {
	for _, n := range []NetworkParams{QDR4XInfiniBand(), FibreChannel8G(), FortyGigE()} {
		if n.EffectiveBytesPerSec() <= 0 {
			t.Errorf("%s effective rate not positive", n.Name)
		}
		line := NewNetworkLine(n)
		if line.Name() != n.Name {
			t.Errorf("line name %q != %q", line.Name(), n.Name)
		}
	}
}

// Package interconnect models the data paths between an SSD's NVM complex
// and the application: PCIe links of both generations the paper compares
// (2.0 with 8b/10b encoding, 3.0 with 128b/130b), the SATA-bridged
// controller architecture of Figure 5a versus the native architecture of
// Figure 5b, and the cluster fabrics (QDR 4X InfiniBand, Fibre Channel)
// that sit in front of ION-local storage.
package interconnect

import (
	"fmt"

	"oocnvm/internal/obs"
	"oocnvm/internal/sim"
)

// PCIeGen captures a PCIe generation's signalling rate and line encoding.
type PCIeGen struct {
	Name        string
	GTPerSec    float64 // giga-transfers per second per lane
	EncodingNum int     // payload bits ...
	EncodingDen int     // ... per encoded bits on the wire
}

// The two generations the paper evaluates (§3.3: "SATA ... utilizes an 8/10
// bit encoding ... 25% overhead; PCIe 3.0 protocols only use a 128/130 bit
// encoding scheme for an overhead of just 1.5%").
var (
	PCIeGen2 = PCIeGen{Name: "PCIe2.0", GTPerSec: 5.0, EncodingNum: 8, EncodingDen: 10}
	PCIeGen3 = PCIeGen{Name: "PCIe3.0", GTPerSec: 8.0, EncodingNum: 128, EncodingDen: 130}
)

// LaneBytesPerSec returns the post-encoding payload bandwidth of one lane.
func (g PCIeGen) LaneBytesPerSec() float64 {
	return g.GTPerSec * 1e9 / 8 * float64(g.EncodingNum) / float64(g.EncodingDen)
}

// PCIeConfig describes the SSD's host attachment.
type PCIeConfig struct {
	Gen     PCIeGen
	Lanes   int
	Bridged bool // Figure 5a: flash controllers behind a SATA host/device pair
}

// pcieProtocolEfficiency accounts for TLP/DLLP framing, flow-control credits
// and completion overhead on top of line encoding.
const pcieProtocolEfficiency = 0.85

// sataBridgeEfficiency is the additional throughput loss of re-encoding
// through the SATA host/device bridge of ad-hoc PCIe SSD designs (§3.3).
const sataBridgeEfficiency = 0.90

// sataBridgeLatency is the per-request protocol re-encoding delay through
// the bridge.
const sataBridgeLatency = 8 * sim.Microsecond

// nativeSetupLatency is the per-request DMA descriptor setup of a native
// PCIe endpoint design.
const nativeSetupLatency = 1 * sim.Microsecond

// EffectiveBytesPerSec returns the data bandwidth the attachment can sustain.
func (c PCIeConfig) EffectiveBytesPerSec() float64 {
	bw := c.Gen.LaneBytesPerSec() * float64(c.Lanes) * pcieProtocolEfficiency
	if c.Bridged {
		bw *= sataBridgeEfficiency
	}
	return bw
}

// RequestOverhead returns the fixed per-request cost of the attachment.
func (c PCIeConfig) RequestOverhead() sim.Time {
	if c.Bridged {
		return sataBridgeLatency
	}
	return nativeSetupLatency
}

// String renders e.g. "PCIe2.0 x8 (bridged)".
func (c PCIeConfig) String() string {
	kind := "native"
	if c.Bridged {
		kind = "bridged"
	}
	return fmt.Sprintf("%s x%d (%s)", c.Gen.Name, c.Lanes, kind)
}

// Line is a Timeline-backed exclusive data path implementing nvm.Link.
type Line struct {
	name     string
	tl       sim.Timeline
	bps      float64
	overhead sim.Time

	probe obs.Probe
	// Metric names are prebuilt at SetProbe time so the transfer hot path
	// never concatenates strings.
	busyGauge, bytesCounter, xfersCounter string
}

// NewLine builds a raw link with the given bandwidth and per-request cost.
func NewLine(name string, bytesPerSec float64, overhead sim.Time) *Line {
	return &Line{name: name, bps: bytesPerSec, overhead: overhead, probe: obs.Nop{}}
}

// SetProbe attaches an observability probe: per-transfer spans on the link's
// track plus byte/transfer counters and a cumulative busy-time gauge (the
// link-occupancy sample).
func (l *Line) SetProbe(p obs.Probe) {
	l.probe = obs.OrNop(p)
	l.busyGauge = "interconnect." + l.name + ".busy_ps"
	l.bytesCounter = "interconnect." + l.name + ".bytes"
	l.xfersCounter = "interconnect." + l.name + ".transfers"
}

// NewPCIeLine builds the link for a PCIe attachment.
func NewPCIeLine(c PCIeConfig) *Line {
	return NewLine(c.String(), c.EffectiveBytesPerSec(), c.RequestOverhead())
}

// Name identifies the link in reports.
func (l *Line) Name() string { return l.name }

// Transfer books n bytes no earlier than at and returns the completion time.
func (l *Line) Transfer(at sim.Time, n int64) sim.Time {
	start, end := l.tl.Acquire(at, sim.DurationForBytes(n, l.bps))
	if l.probe.Enabled() {
		l.probe.Span(obs.LayerInterconnect, l.name, "xfer", start, end)
		l.probe.Count(l.bytesCounter, n)
		l.probe.Count(l.xfersCounter, 1)
		l.probe.SetGauge(l.busyGauge, float64(l.tl.Busy()))
	}
	return end
}

// RequestOverhead reports the fixed per-request cost.
func (l *Line) RequestOverhead() sim.Time { return l.overhead }

// BytesPerSec reports the link's effective bandwidth.
func (l *Line) BytesPerSec() float64 { return l.bps }

// Busy reports accumulated transfer time, for utilization probes.
func (l *Line) Busy() sim.Time { return l.tl.Busy() }

// Reset clears the link's schedule.
func (l *Line) Reset() { l.tl.Reset() }

// Infinite is a link with no cost at all, used to measure what the media
// could deliver if the host path were removed ("bandwidth remaining",
// Figures 7b/8b).
type Infinite struct{}

// Transfer completes instantly.
func (Infinite) Transfer(at sim.Time, n int64) sim.Time { return at }

// RequestOverhead is zero.
func (Infinite) RequestOverhead() sim.Time { return 0 }

// BytesPerSec reports an effectively unlimited rate.
func (Infinite) BytesPerSec() float64 { return 1e18 }

// Chain composes links in series (e.g. remote PCIe then the cluster
// network): a transfer occupies each stage in order, and the per-request
// overheads add up.
type Chain struct {
	Stages []*Line
}

// NewChain composes the given stages.
func NewChain(stages ...*Line) *Chain { return &Chain{Stages: stages} }

// SetProbe attaches an observability probe to every stage.
func (c *Chain) SetProbe(p obs.Probe) {
	for _, s := range c.Stages {
		s.SetProbe(p)
	}
}

// Transfer books the bytes through every stage in series.
func (c *Chain) Transfer(at sim.Time, n int64) sim.Time {
	end := at
	for _, s := range c.Stages {
		end = s.Transfer(end, n)
	}
	return end
}

// RequestOverhead sums the stages' fixed costs.
func (c *Chain) RequestOverhead() sim.Time {
	var t sim.Time
	for _, s := range c.Stages {
		t += s.RequestOverhead()
	}
	return t
}

// Busy reports the accumulated transfer time of the bottleneck (busiest)
// stage, so chain occupancy never exceeds one link's worth of time and the
// telemetry fraction stays in [0,1].
func (c *Chain) Busy() sim.Time {
	var max sim.Time
	for _, s := range c.Stages {
		if b := s.Busy(); b > max {
			max = b
		}
	}
	return max
}

// BytesPerSec reports the bottleneck stage's bandwidth.
func (c *Chain) BytesPerSec() float64 {
	min := 1e18
	for _, s := range c.Stages {
		if s.BytesPerSec() < min {
			min = s.BytesPerSec()
		}
	}
	return min
}

package trend

import (
	"testing"
)

func TestPointsCoverAllCategories(t *testing.T) {
	pts := Points()
	counts := map[Category]int{}
	for _, p := range pts {
		counts[p.Category]++
		if p.GBps <= 0 || p.Year < 1990 || p.Year > 2020 {
			t.Errorf("implausible point %+v", p)
		}
	}
	for _, c := range []Category{InfiniBand, FibreChannel, FlashSSD, OtherNVM} {
		if counts[c] < 2 {
			t.Errorf("category %v has %d points; need >= 2 for a fit", c, counts[c])
		}
	}
}

func TestNamedDevicesPresent(t *testing.T) {
	// Figure 1 names these products; the dataset must carry them.
	want := []string{"ioDrive Octal", "Z-Drive R4", "Intel-X25", "Onyx PCM Prototype",
		"Silicon Disk II (RAM-SSD)", "Future Multi-channel PCM-SSD (expectation)"}
	have := map[string]bool{}
	for _, p := range Points() {
		have[p.Label] = true
	}
	for _, w := range want {
		if !have[w] {
			t.Errorf("missing Figure 1 device %q", w)
		}
	}
}

func TestFlashGrowsFasterThanNetworks(t *testing.T) {
	// The paper's core trend claim: NVM bandwidth growth outpaces
	// point-to-point networks.
	pts := Points()
	flash, err := FitCategory(pts, FlashSSD)
	if err != nil {
		t.Fatal(err)
	}
	ib, err := FitCategory(pts, InfiniBand)
	if err != nil {
		t.Fatal(err)
	}
	if flash.DoublingYrs <= 0 || ib.DoublingYrs <= 0 {
		t.Fatalf("non-positive doubling times: flash %v, IB %v", flash.DoublingYrs, ib.DoublingYrs)
	}
	if flash.DoublingYrs >= ib.DoublingYrs {
		t.Fatalf("flash doubles every %.1f yrs, IB every %.1f: trend inverted",
			flash.DoublingYrs, ib.DoublingYrs)
	}
}

func TestCrossoverInPaperEra(t *testing.T) {
	pts := Points()
	flash, _ := FitCategory(pts, FlashSSD)
	ib, _ := FitCategory(pts, InfiniBand)
	year, err := Crossover(ib, flash)
	if err != nil {
		t.Fatal(err)
	}
	// Figure 1 shows SSDs overtaking network links around 2011-2013.
	if year < 2008 || year > 2015 {
		t.Fatalf("crossover at %.1f, want within the paper's era", year)
	}
}

func TestFitEvaluatesThroughItsPoints(t *testing.T) {
	pts := Points()
	fit, err := FitCategory(pts, FibreChannel)
	if err != nil {
		t.Fatal(err)
	}
	// The least-squares fit should pass within a factor of ~2 of each point
	// (FC generations are very regular).
	for _, p := range SortedByYear(pts, FibreChannel) {
		est := fit.At(p.Year)
		if est < p.GBps/2 || est > p.GBps*2 {
			t.Errorf("fit at %.0f = %.3f, point %.3f", p.Year, est, p.GBps)
		}
	}
}

func TestFitCategoryRequiresPoints(t *testing.T) {
	if _, err := FitCategory(nil, FlashSSD); err == nil {
		t.Fatal("fit over no points accepted")
	}
}

func TestCrossoverDegenerateCase(t *testing.T) {
	a := Fit{Year0: 2000, GBpsAtYear0: 1, DoublingYrs: 2}
	b := Fit{Year0: 2000, GBpsAtYear0: 2, DoublingYrs: 2}
	if _, err := Crossover(a, b); err == nil {
		t.Fatal("parallel growth lines crossed")
	}
}

func TestSortedByYear(t *testing.T) {
	pts := SortedByYear(Points(), FlashSSD)
	for i := 1; i < len(pts); i++ {
		if pts[i].Year < pts[i-1].Year {
			t.Fatal("not sorted")
		}
		if pts[i].Category != FlashSSD {
			t.Fatal("category filter leaked")
		}
	}
}

func TestCategoryString(t *testing.T) {
	if InfiniBand.String() != "InfiniBand" || Category(99).String() != "Category(99)" {
		t.Fatal("category names wrong")
	}
}

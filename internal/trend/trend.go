// Package trend reproduces Figure 1: the per-channel bandwidth of
// high-performance networks versus NVM storage solutions over time, showing
// network bandwidth growing at a stagnant rate compared to emerging NVM.
// It carries the historical data points of the figure and fits exponential
// growth models to project the crossover.
package trend

import (
	"fmt"
	"math"
	"sort"
)

// Category separates the figure's series.
type Category int

// Series of Figure 1.
const (
	InfiniBand Category = iota
	FibreChannel
	FlashSSD
	OtherNVM // RAM-SSD, PCM prototypes, projections
)

// String names the category.
func (c Category) String() string {
	switch c {
	case InfiniBand:
		return "InfiniBand"
	case FibreChannel:
		return "FibreChannel"
	case FlashSSD:
		return "Flash-SSD"
	case OtherNVM:
		return "NonFlash-NVM"
	default:
		return fmt.Sprintf("Category(%d)", int(c))
	}
}

// Point is one device or link generation.
type Point struct {
	Year     float64
	GBps     float64 // bandwidth per channel, GB/s
	Label    string
	Category Category
}

// Points returns the Figure 1 dataset: named products where the figure
// names them, generational link speeds for the networks.
func Points() []Point {
	return []Point{
		// High-performance networks (per-link data rate, GB/s).
		{1999, 0.25, "SDR 1X", InfiniBand},
		{2003, 0.5, "SDR 4X eff", InfiniBand},
		{2005, 1.0, "DDR 4X", InfiniBand},
		{2008, 2.0, "QDR 4X", InfiniBand},
		{2011, 3.25, "FDR 4X", InfiniBand},
		{2014, 4.0, "QDR->EDR path", InfiniBand},
		{1998, 0.1, "FC 1G", FibreChannel},
		{2001, 0.2, "FC 2G", FibreChannel},
		{2004, 0.4, "FC 4G", FibreChannel},
		{2008, 0.8, "FC 8G", FibreChannel},
		{2011, 1.6, "FC 16G", FibreChannel},
		// Flash SSDs (per-device bandwidth).
		{1998, 0.016, "Winchester", FlashSSD},
		{2001, 0.03, "A25FB", FlashSSD},
		{2004, 0.06, "ST-Zeus", FlashSSD},
		{2007, 0.25, "Intel-X25", FlashSSD},
		{2008, 0.5, "SF-1000", FlashSSD},
		{2009, 0.75, "ioDrive", FlashSSD},
		{2011, 1.5, "Z-Drive R4", FlashSSD},
		{2012, 3.0, "ioDrive2", FlashSSD},
		{2012, 6.0, "ioDrive Octal", FlashSSD},
		{2014, 8.0, "Future PCIe SSD (expectation)", FlashSSD},
		// Non-flash NVM.
		{2006, 1.0, "Silicon Disk II (RAM-SSD)", OtherNVM},
		{2011, 1.2, "Onyx PCM Prototype", OtherNVM},
		{2013, 4.0, "NonFlash-NVM SSD", OtherNVM},
		{2016, 16.0, "Future Multi-channel PCM-SSD (expectation)", OtherNVM},
	}
}

// Fit is an exponential growth model bw = a·2^((year-year0)/doubling).
type Fit struct {
	Category    Category
	Year0       float64
	GBpsAtYear0 float64
	DoublingYrs float64
	Points      int
}

// FitCategory least-squares fits log2(bandwidth) against year for one
// category's points.
func FitCategory(points []Point, c Category) (Fit, error) {
	var xs, ys []float64
	for _, p := range points {
		if p.Category == c {
			xs = append(xs, p.Year)
			ys = append(ys, math.Log2(p.GBps))
		}
	}
	if len(xs) < 2 {
		return Fit{}, fmt.Errorf("trend: category %v has %d points; need at least 2", c, len(xs))
	}
	// Linear regression on (year, log2 bw).
	var sx, sy, sxx, sxy float64
	n := float64(len(xs))
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	slope := (n*sxy - sx*sy) / (n*sxx - sx*sx)
	intercept := (sy - slope*sx) / n
	year0 := xs[0]
	return Fit{
		Category:    c,
		Year0:       year0,
		GBpsAtYear0: math.Exp2(intercept + slope*year0),
		DoublingYrs: 1 / slope,
		Points:      len(xs),
	}, nil
}

// At evaluates the model at a year.
func (f Fit) At(year float64) float64 {
	return f.GBpsAtYear0 * math.Exp2((year-f.Year0)/f.DoublingYrs)
}

// Crossover returns the year two growth models intersect, or an error when
// they diverge.
func Crossover(a, b Fit) (float64, error) {
	// Solve a.At(y) == b.At(y) in log2 space.
	sa := 1 / a.DoublingYrs
	sb := 1 / b.DoublingYrs
	if sa == sb {
		return 0, fmt.Errorf("trend: equal growth rates never cross")
	}
	ia := math.Log2(a.GBpsAtYear0) - sa*a.Year0
	ib := math.Log2(b.GBpsAtYear0) - sb*b.Year0
	return (ib - ia) / (sa - sb), nil
}

// SortedByYear returns the points of one category in time order.
func SortedByYear(points []Point, c Category) []Point {
	var out []Point
	for _, p := range points {
		if p.Category == c {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Year < out[j].Year })
	return out
}

package netfault

import (
	"errors"
	"fmt"
	"hash/fnv"

	"oocnvm/internal/obs/attrib"
	"oocnvm/internal/obs/timeseries"
	"oocnvm/internal/sim"
)

// Transfer failure modes.
var (
	// ErrChunkLost marks an attempt that vanished in the fabric (timeout).
	ErrChunkLost = errors.New("netfault: chunk lost (ack timeout)")
	// ErrChunkCorrupt marks an attempt that arrived but failed its
	// per-chunk FNV checksum.
	ErrChunkCorrupt = errors.New("netfault: chunk failed checksum verification")
	// ErrNoAvailability marks a transfer stalled inside an outage window
	// that never lifts: no schedule can complete it.
	ErrNoAvailability = errors.New("netfault: outage windows leave no availability")
	// ErrRetriesExhausted marks a chunk that failed every bounded attempt.
	ErrRetriesExhausted = errors.New("netfault: retry budget exhausted")
	// ErrInterrupted marks a transfer stopped by the spec's StopAfter test
	// hook; the journal holds the chunks verified so far.
	ErrInterrupted = errors.New("netfault: transfer interrupted")
)

// Spec shapes one resumable chunked transfer.
type Spec struct {
	// Name identifies the transfer in journals, metrics and reports.
	Name string
	// Kind is the trace.Kind byte attribution records carry (read=0 for a
	// preload pull, write=1 for a checkpoint drain).
	Kind uint8
	// TotalBytes is the payload; ChunkBytes the retransmission unit
	// (default 16 MiB).
	TotalBytes int64
	ChunkBytes int64
	// Parallel is the logical stream count carrying chunks round-robin
	// (default 1). Fault draws are keyed by (seed, chunk, attempt), so the
	// loss/corruption pattern and the final bitmap are identical at any
	// parallelism; only timings shift.
	Parallel int
	// MaxAttempts bounds per-chunk delivery attempts (default 8).
	MaxAttempts int
	// BaseBackoff seeds the exponential backoff between attempts (default
	// 1 ms), doubling per retry up to MaxBackoff (default 128 ms), plus a
	// deterministic jitter of up to half the computed delay.
	BaseBackoff sim.Time
	MaxBackoff  sim.Time
	// Timeout is the per-attempt ack timeout a lost chunk burns. Zero
	// derives 2× the clean chunk time plus overhead and jitter headroom.
	Timeout sim.Time
	// JournalEvery checkpoints the chunk bitmap after this many newly
	// verified chunks (default 16).
	JournalEvery int
	// Seed drives every fault and jitter draw via per-(chunk, attempt)
	// derived streams.
	Seed uint64
	// Source, when set, stages the chunk's data to the link entrance (RAID
	// and storage-attachment time in a preload); its duration lands in the
	// queue component. Called once per attempt: retransmissions re-read.
	Source func(at sim.Time, index int, off, n int64) sim.Time
	// Sink, when set, stores the chunk at the far end (RAID write-back in
	// a checkpoint drain); its duration lands in the die-service
	// component.
	Sink func(at sim.Time, index int, off, n int64) sim.Time
	// StopAfter interrupts the run after this many newly verified chunks
	// (0 = run to completion) — the test hook for resume scenarios.
	StopAfter int
}

// withDefaults fills the zero fields.
func (s Spec) withDefaults() Spec {
	if s.ChunkBytes <= 0 {
		s.ChunkBytes = 16 << 20
	}
	if s.Parallel <= 0 {
		s.Parallel = 1
	}
	if s.MaxAttempts <= 0 {
		s.MaxAttempts = 8
	}
	if s.BaseBackoff <= 0 {
		s.BaseBackoff = sim.Millisecond
	}
	if s.MaxBackoff <= 0 {
		s.MaxBackoff = 128 * sim.Millisecond
	}
	if s.JournalEvery <= 0 {
		s.JournalEvery = 16
	}
	return s
}

// Result is one transfer run's outcome. It is comparable (no slices,
// maps or errors), so same-seed determinism checks are a single ==.
type Result struct {
	Name       string
	TotalBytes int64
	ChunkBytes int64
	Chunks     int
	// Skipped chunks were already verified in the adopted journal;
	// Delivered were verified by this run.
	Skipped   int
	Delivered int
	Completed bool
	// Err names the failure mode of an incomplete run ("" when complete).
	Err string
	// Start and End bound the run in simulated time.
	Start, End sim.Time
	// PayloadBytes is this run's verified payload; WireBytes counts every
	// byte that crossed the wire, including corrupt attempts.
	PayloadBytes int64
	WireBytes    int64
	// Attempts, Retries and the loss/corruption split.
	Attempts    int64
	Retries     int64
	Losses      int64
	Corruptions int64
	// StallTime is outage hold time, BackoffTime inter-attempt backoff,
	// RetryTime the total duration of failed attempts.
	StallTime   sim.Time
	BackoffTime sim.Time
	RetryTime   sim.Time
	// Goodput is this run's verified payload over its wall time.
	Goodput float64
	// BitmapFNV fingerprints the final verified-chunk bitmap; PayloadFNV
	// folds every chunk verified by this run's per-chunk checksums.
	BitmapFNV  uint64
	PayloadFNV uint64
	// JournalWrites counts bitmap checkpoints persisted during the run.
	JournalWrites int64
}

// String summarizes the run for CLI output.
func (r Result) String() string {
	status := "complete"
	if !r.Completed {
		status = "INCOMPLETE (" + r.Err + ")"
	}
	return fmt.Sprintf(
		"transfer %s: %s, %d/%d chunks (%d resumed), %v, goodput %.1f MB/s, "+
			"%d retries (%d lost, %d corrupt), stall %v, backoff %v",
		r.Name, status, r.Skipped+r.Delivered, r.Chunks, r.Skipped,
		r.End-r.Start, r.Goodput/1e6, r.Retries, r.Losses, r.Corruptions,
		r.StallTime, r.BackoffTime)
}

// Transfer is one resumable chunked transfer over a degraded path.
type Transfer struct {
	spec Spec
	link *Degraded
	j    *Journal
	rec  *attrib.Recorder
	samp *timeseries.Sampler

	// live counters the sampler's series read
	payloadBytes int64
	wireBytes    int64
	retries      int64
}

// NewTransfer builds a transfer of spec over the degraded link.
func NewTransfer(spec Spec, link *Degraded) (*Transfer, error) {
	spec = spec.withDefaults()
	if spec.TotalBytes <= 0 {
		return nil, fmt.Errorf("netfault: transfer needs positive TotalBytes, got %d", spec.TotalBytes)
	}
	if link == nil {
		return nil, fmt.Errorf("netfault: transfer needs a link")
	}
	return &Transfer{spec: spec, link: link}, nil
}

// SetJournal attaches a persisted chunk-bitmap journal; Run restores it
// and skips already-verified chunks. The journal's geometry must match.
func (t *Transfer) SetJournal(j *Journal) error {
	if j != nil && (j.chunks != t.Chunks() || j.chunkBytes != t.spec.ChunkBytes ||
		j.nameSum != nameFNV(t.spec.Name)) {
		return fmt.Errorf("netfault: journal does not match transfer %q", t.spec.Name)
	}
	t.j = j
	return nil
}

// Journal returns the attached journal, creating a fresh one on demand so
// every run can be interrupted and resumed.
func (t *Transfer) Journal() *Journal {
	if t.j == nil {
		t.j, _ = NewJournal(t.spec.Name, t.Chunks(), t.spec.ChunkBytes)
	}
	return t.j
}

// SetRecorder routes per-chunk latency anatomy (queue staging, overhead,
// link wait/transfer, retry, recovery) into rec; segments telescope to
// exactly each chunk's arrival-to-verified latency.
func (t *Transfer) SetRecorder(rec *attrib.Recorder) { t.rec = rec }

// SetSampler registers the transfer's goodput, retry-rate and wire-byte
// series on samp and advances it as the transfer's clock moves.
func (t *Transfer) SetSampler(s *timeseries.Sampler) {
	t.samp = s
	if s == nil {
		return
	}
	prefix := "netfault." + t.spec.Name + "."
	s.AddRate(prefix+"goodput_Bps", func(sim.Time) float64 { return float64(t.payloadBytes) })
	s.AddRate(prefix+"wire_Bps", func(sim.Time) float64 { return float64(t.wireBytes) })
	s.AddDelta(prefix+"retries", func(sim.Time) float64 { return float64(t.retries) })
}

// Chunks reports the transfer's chunk population.
func (t *Transfer) Chunks() int {
	return int((t.spec.TotalBytes + t.spec.ChunkBytes - 1) / t.spec.ChunkBytes)
}

// chunkSum is the deterministic per-chunk payload checksum (the simulator
// times transfers without storing payloads; the checksum models end-to-end
// verification and keys the bitmap fingerprint).
func chunkSum(name string, index int) uint64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(uint(index) >> (8 * i))
	}
	h.Write(b[:])
	return h.Sum64()
}

// attemptRNG derives the independent fault stream of one (chunk, attempt)
// pair, so the fault pattern is invariant under parallelism and resume.
func attemptRNG(seed uint64, chunk, attempt int) *sim.RNG {
	x := seed
	x ^= (uint64(chunk) + 1) * 0x9e3779b97f4a7c15
	x ^= (uint64(attempt) + 1) * 0xbf58476d1ce4e5b9
	return sim.NewRNG(x)
}

// timeout resolves the per-attempt ack timeout.
func (t *Transfer) timeout() sim.Time {
	if t.spec.Timeout > 0 {
		return t.spec.Timeout
	}
	clean := sim.DurationForBytes(t.spec.ChunkBytes, t.link.EffectiveBps())
	return 2 * (clean + t.link.Overhead() + t.link.Profile().Jitter)
}

// Run executes the transfer starting at from. An attached journal is
// restored first (verified chunks are skipped) and checkpointed as chunks
// verify, so a failed or interrupted run resumes from the last checkpoint
// rather than byte zero.
func (t *Transfer) Run(from sim.Time) (Result, error) {
	spec := t.spec
	j := t.Journal()
	res := Result{
		Name:       spec.Name,
		TotalBytes: spec.TotalBytes,
		ChunkBytes: spec.ChunkBytes,
		Chunks:     t.Chunks(),
		Start:      from,
	}
	t.payloadBytes, t.wireBytes, t.retries = 0, 0, 0
	res.Skipped = j.Restore()

	avail := make([]sim.Time, spec.Parallel)
	for i := range avail {
		avail[i] = from
	}
	end := from
	var runErr error
	sinceCkpt := 0

chunks:
	for i := 0; i < res.Chunks; i++ {
		if j.Done(i) {
			continue
		}
		off := int64(i) * spec.ChunkBytes
		n := spec.ChunkBytes
		if off+n > spec.TotalBytes {
			n = spec.TotalBytes - off
		}
		s := i % spec.Parallel
		done, err := t.chunk(i, off, n, avail[s], &res)
		if err != nil {
			runErr = fmt.Errorf("netfault: chunk %d/%d: %w", i, res.Chunks, err)
			break chunks
		}
		avail[s] = done
		if done > end {
			end = done
		}
		if t.samp != nil {
			t.samp.Advance(end)
		}
		res.PayloadFNV ^= chunkSum(spec.Name, i) // verified end to end
		j.Mark(i)
		res.Delivered++
		sinceCkpt++
		if sinceCkpt >= spec.JournalEvery {
			j.Checkpoint()
			sinceCkpt = 0
		}
		if spec.StopAfter > 0 && res.Delivered >= spec.StopAfter && j.DoneCount() < res.Chunks {
			runErr = ErrInterrupted
			break chunks
		}
	}
	if sinceCkpt > 0 || j.Writes() == 0 {
		j.Checkpoint()
	}
	res.End = end
	res.Completed = j.DoneCount() == res.Chunks
	if runErr != nil {
		res.Err = runErr.Error()
	}
	res.PayloadBytes = t.payloadBytes
	res.WireBytes = t.wireBytes
	res.Goodput = sim.Rate(res.PayloadBytes, res.End-res.Start)
	res.BitmapFNV = j.BitmapFNV()
	res.JournalWrites = j.Writes()
	if t.samp != nil && end > from {
		t.samp.Advance(end)
	}
	return res, runErr
}

// chunk delivers one chunk through bounded retry with exponential backoff,
// returning its verified-delivery instant. Attribution telescopes exactly:
// every failed attempt's full duration lands in the retry component, every
// backoff and outage stall in recovery, and the successful attempt splits
// into queue (source staging), host-overhead (fixed costs + jitter),
// link-wait (serialization behind other streams), link-xfer (wire time)
// and die-service (far-end store).
func (t *Transfer) chunk(i int, off, n int64, at sim.Time, res *Result) (sim.Time, error) {
	spec := t.spec
	d := t.link
	prof := d.Profile()
	rec := t.rec
	timeout := t.timeout()

	rec.Begin(spec.Kind, off, n, at)
	now := at
	for attempt := 0; attempt < spec.MaxAttempts; attempt++ {
		rng := attemptRNG(spec.Seed, i, attempt)
		aStart := now

		// Fabric availability: hold through scheduled outages.
		up, ok := d.Available(now)
		if !ok {
			rec.Abort()
			return 0, ErrNoAvailability
		}
		stall := up - now
		now = up
		res.StallTime += stall

		// Source staging: the chunk's data reaches the link entrance.
		var srcDur sim.Time
		if spec.Source != nil {
			e := spec.Source(now, i, off, n)
			srcDur = e - now
			now = e
		}

		// Fixed costs: link overhead, profile added latency, jitter.
		ovh := d.Overhead()
		if prof.Jitter > 0 {
			ovh += sim.Time(rng.Int63n(int64(prof.Jitter) + 1))
		}
		now += ovh

		if rng.Bool(prof.LossProb) {
			// Vanished in the fabric: burn the ack timeout, retransmit.
			now += timeout
			res.Attempts++
			res.Losses++
			res.Retries++
			t.retries++
			res.RetryTime += now - aStart
			rec.Note(attrib.Retry, now-aStart)
			if d.probe.Enabled() {
				d.probe.Count(d.lossCounter, 1)
				d.probe.Count(d.retryCounter, 1)
			}
			var err error
			now, err = t.backoff(attempt, rng, now, res)
			if err != nil {
				rec.Abort()
				return 0, err
			}
			continue
		}

		// The chunk crosses the wire (and the cap pacer).
		sent := d.Send(now, n)
		wire := sim.DurationForBytes(n, d.EffectiveBps())
		wait := sent - now - wire
		if wait < 0 {
			wire, wait = sent-now, 0
		}
		res.Attempts++
		res.WireBytes += n
		t.wireBytes += n
		if d.probe.Enabled() {
			d.probe.Count(d.wireCounter, n)
		}

		if rng.Bool(prof.CorruptProb) {
			// Arrived damaged: the FNV verification rejects it.
			res.Corruptions++
			res.Retries++
			t.retries++
			res.RetryTime += sent - aStart
			rec.Note(attrib.Retry, sent-aStart)
			if d.probe.Enabled() {
				d.probe.Count(d.corruptCounter, 1)
				d.probe.Count(d.retryCounter, 1)
			}
			now = sent
			var err error
			now, err = t.backoff(attempt, rng, now, res)
			if err != nil {
				rec.Abort()
				return 0, err
			}
			continue
		}

		// Verified delivery: far-end store, then commit the anatomy.
		done := sent
		var sinkDur sim.Time
		if spec.Sink != nil {
			e := spec.Sink(done, i, off, n)
			sinkDur = e - done
			done = e
		}
		rec.Note(attrib.Recovery, stall)
		rec.Note(attrib.Queue, srcDur)
		rec.Note(attrib.HostOverhead, ovh)
		rec.Note(attrib.LinkWait, wait)
		rec.Note(attrib.LinkXfer, wire)
		rec.Note(attrib.DieService, sinkDur)
		rec.Commit(done)
		res.PayloadBytes += n
		t.payloadBytes += n
		if d.probe.Enabled() {
			d.probe.Count(d.goodCounter, n)
			d.probe.Count(d.chunksC, 1)
			d.probe.Span("netfault", spec.Name, "chunk", aStart, done)
			d.probe.SetGauge(d.stallGauge, float64(res.StallTime))
		}
		return done, nil
	}
	rec.Abort()
	return 0, ErrRetriesExhausted
}

// backoff books the exponential inter-attempt delay (with deterministic
// jitter from the attempt's stream) and attributes it to recovery.
func (t *Transfer) backoff(attempt int, rng *sim.RNG, now sim.Time, res *Result) (sim.Time, error) {
	if attempt == t.spec.MaxAttempts-1 {
		return now, ErrRetriesExhausted
	}
	b := t.spec.BaseBackoff << uint(attempt)
	if b > t.spec.MaxBackoff || b <= 0 {
		b = t.spec.MaxBackoff
	}
	b += sim.Time(rng.Int63n(int64(b/2) + 1))
	now += b
	res.BackoffTime += b
	t.rec.Note(attrib.Recovery, b)
	return now, nil
}

package netfault

import (
	"errors"
	"strings"
	"testing"

	"oocnvm/internal/interconnect"
	"oocnvm/internal/obs"
	"oocnvm/internal/obs/attrib"
	"oocnvm/internal/sim"
)

// testLink is a 1 GB/s line with a 10 us per-request cost.
func testLink() *interconnect.Line {
	return interconnect.NewLine("testnet", 1e9, 10*sim.Microsecond)
}

func mustTransfer(t *testing.T, spec Spec, prof Profile) *Transfer {
	t.Helper()
	tr, err := NewTransfer(spec, Wrap(testLink(), prof))
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestForName(t *testing.T) {
	for _, name := range []string{"none", "wan", "lossy", "congested", "flaky", "outage", "blackout"} {
		p, err := ForName(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !strings.EqualFold(p.Name, name) {
			t.Fatalf("ForName(%q) = %q", name, p.Name)
		}
	}
	if p, err := ForName(""); err != nil || p.Enabled() {
		t.Fatalf("empty name should be the clean profile: %+v, %v", p, err)
	}
	if _, err := ForName("bogus"); err == nil {
		t.Fatal("bogus profile accepted")
	}
}

func TestProfileAvailability(t *testing.T) {
	p := Profile{Outages: []Window{
		{Start: 100, End: 200},
		{Start: 200, End: 300}, // adjacent: the hold must chain through
	}}
	if at, ok := p.Available(150); !ok || at != 300 {
		t.Fatalf("Available(150) = %v, %v; want 300, true", at, ok)
	}
	if at, ok := p.Available(50); !ok || at != 50 {
		t.Fatalf("Available(50) = %v, %v; want 50, true", at, ok)
	}
	if !p.PositiveAvailability() {
		t.Fatal("finite windows must leave availability")
	}
	b := Profile{Outages: []Window{{Start: 0, End: NeverEnds}}}
	if _, ok := b.Available(10); ok {
		t.Fatal("permanent partition reported available")
	}
	if b.PositiveAvailability() {
		t.Fatal("permanent partition reported positive availability")
	}
}

func TestCleanTransferMatchesLink(t *testing.T) {
	spec := Spec{Name: "clean", TotalBytes: 256 << 20, ChunkBytes: 16 << 20, Seed: 7}
	tr := mustTransfer(t, spec, Profile{Name: "none"})
	res, err := tr.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed || res.Retries != 0 || res.WireBytes != res.PayloadBytes {
		t.Fatalf("clean run degraded: %+v", res)
	}
	if res.PayloadBytes != spec.TotalBytes {
		t.Fatalf("payload %d != total %d", res.PayloadBytes, spec.TotalBytes)
	}
	// Goodput approaches but cannot beat the 1 GB/s line.
	if res.Goodput > 1e9*1.01 || res.Goodput < 0.9e9 {
		t.Fatalf("clean goodput %.0f B/s outside the link envelope", res.Goodput)
	}
}

func TestSameSeedDeterminism(t *testing.T) {
	spec := Spec{Name: "det", TotalBytes: 128 << 20, ChunkBytes: 8 << 20, Seed: 11}
	prof, _ := ForName("flaky")
	a, errA := mustTransfer(t, spec, prof).Run(0)
	b, errB := mustTransfer(t, spec, prof).Run(0)
	if errA != nil || errB != nil {
		t.Fatalf("runs failed: %v, %v", errA, errB)
	}
	if a != b {
		t.Fatalf("same-seed results differ:\n%+v\n%+v", a, b)
	}
}

func TestParallelismInvariantOutcomes(t *testing.T) {
	prof, _ := ForName("lossy")
	base := Spec{Name: "par", TotalBytes: 256 << 20, ChunkBytes: 8 << 20, Seed: 3}
	p1 := base
	p1.Parallel = 1
	p4 := base
	p4.Parallel = 4
	a, errA := mustTransfer(t, p1, prof).Run(0)
	b, errB := mustTransfer(t, p4, prof).Run(0)
	if errA != nil || errB != nil {
		t.Fatalf("runs failed: %v, %v", errA, errB)
	}
	if a.Losses != b.Losses || a.Corruptions != b.Corruptions ||
		a.Retries != b.Retries || a.WireBytes != b.WireBytes ||
		a.BitmapFNV != b.BitmapFNV || a.PayloadFNV != b.PayloadFNV {
		t.Fatalf("fault pattern depends on parallelism:\n%+v\n%+v", a, b)
	}
	if b.End >= a.End {
		t.Fatalf("four streams (%v) not faster than one (%v)", b.End, a.End)
	}
}

func TestLossyTransferRetriesAndConserves(t *testing.T) {
	rec := attrib.NewRecorder(8)
	spec := Spec{Name: "lossy", TotalBytes: 512 << 20, ChunkBytes: 4 << 20, Seed: 5}
	prof, _ := ForName("flaky")
	tr := mustTransfer(t, spec, prof)
	tr.SetRecorder(rec)
	res, err := tr.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Retries == 0 || res.Losses == 0 || res.Corruptions == 0 {
		t.Fatalf("flaky profile injected nothing: %+v", res)
	}
	if res.WireBytes <= res.PayloadBytes {
		t.Fatalf("corrupt retransmissions must inflate wire bytes: wire %d, payload %d",
			res.WireBytes, res.PayloadBytes)
	}
	if res.RetryTime <= 0 || res.BackoffTime <= 0 {
		t.Fatalf("retry/backoff time not accounted: %+v", res)
	}
	if got := rec.Requests(); got != int64(res.Delivered) {
		t.Fatalf("recorder committed %d, delivered %d", got, res.Delivered)
	}
	if rec.Violations() != 0 {
		t.Fatalf("attribution conservation violated %d times", rec.Violations())
	}
	sum := rec.Summary()
	if sum.Totals[attrib.Retry] <= 0 || sum.Totals[attrib.Recovery] <= 0 {
		t.Fatalf("retry/recovery components empty: %+v", sum.Totals)
	}
	for _, ex := range sum.Exemplars {
		if ex.Residual() != 0 {
			t.Fatalf("exemplar %d residual %v", ex.ID, ex.Residual())
		}
	}
}

func TestOutageStallsButCompletes(t *testing.T) {
	prof, _ := ForName("outage")
	spec := Spec{Name: "out", TotalBytes: 512 << 20, ChunkBytes: 16 << 20, Seed: 9}
	res, err := mustTransfer(t, spec, prof).Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("finite outages must not kill the transfer: %+v", res)
	}
	if res.StallTime <= 0 {
		t.Fatalf("transfer crossed the outage windows without stalling: %+v", res)
	}
	clean, _ := mustTransfer(t, spec, Profile{Name: "none"}).Run(0)
	if res.End <= clean.End {
		t.Fatal("degraded run finished no later than the clean run")
	}
}

func TestBlackoutNeverCompletes(t *testing.T) {
	prof, _ := ForName("blackout")
	spec := Spec{Name: "dark", TotalBytes: 64 << 20, Seed: 1}
	res, err := mustTransfer(t, spec, prof).Run(0)
	if !errors.Is(err, ErrNoAvailability) {
		t.Fatalf("err = %v, want ErrNoAvailability", err)
	}
	if res.Completed || res.PayloadBytes != 0 {
		t.Fatalf("blackout delivered data: %+v", res)
	}
}

func TestBandwidthCapBoundsGoodput(t *testing.T) {
	prof := Profile{Name: "capped", BandwidthCapBps: 200e6}
	spec := Spec{Name: "cap", TotalBytes: 256 << 20, ChunkBytes: 16 << 20, Seed: 2}
	res, err := mustTransfer(t, spec, prof).Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Goodput > 200e6*1.01 {
		t.Fatalf("goodput %.0f beats the 200 MB/s cap", res.Goodput)
	}
	if res.Goodput < 150e6 {
		t.Fatalf("goodput %.0f far below the cap", res.Goodput)
	}
}

func TestRetryBudgetExhaustion(t *testing.T) {
	prof := Profile{Name: "dead", LossProb: 1}
	spec := Spec{Name: "dead", TotalBytes: 8 << 20, ChunkBytes: 4 << 20, MaxAttempts: 3, Seed: 4}
	res, err := mustTransfer(t, spec, prof).Run(0)
	if !errors.Is(err, ErrRetriesExhausted) {
		t.Fatalf("err = %v, want ErrRetriesExhausted", err)
	}
	if res.Completed || res.Losses != 3 {
		t.Fatalf("want 3 losses on the first chunk then failure: %+v", res)
	}
}

func TestResumeMovesFewerBytes(t *testing.T) {
	prof, _ := ForName("lossy")
	full := Spec{Name: "res", TotalBytes: 256 << 20, ChunkBytes: 8 << 20, Seed: 21, JournalEvery: 4}

	// Reference: one uninterrupted run.
	ref, err := mustTransfer(t, full, prof).Run(0)
	if err != nil {
		t.Fatal(err)
	}

	// Interrupted run: stop after 12 verified chunks, then resume from the
	// persisted journal as a fresh process would.
	stopped := full
	stopped.StopAfter = 12
	trA := mustTransfer(t, stopped, prof)
	resA, err := trA.Run(0)
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("err = %v, want ErrInterrupted", err)
	}
	if resA.Completed {
		t.Fatal("interrupted run claims completion")
	}
	persisted := trA.Journal().Persisted()

	trB := mustTransfer(t, full, prof)
	j := trB.Journal()
	j.Adopt(persisted)
	resB, err := trB.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if !resB.Completed {
		t.Fatalf("resumed run incomplete: %+v", resB)
	}
	// The journal checkpoints every 4 chunks, so at least 8 of the 12
	// verified chunks must be skipped on resume.
	if resB.Skipped < 8 {
		t.Fatalf("resume skipped only %d chunks", resB.Skipped)
	}
	if resB.WireBytes >= ref.WireBytes {
		t.Fatalf("resumed run moved %d wire bytes, from-scratch %d — resume must move strictly fewer",
			resB.WireBytes, ref.WireBytes)
	}
	if resB.BitmapFNV != ref.BitmapFNV {
		t.Fatalf("final bitmap differs: resumed %x, reference %x", resB.BitmapFNV, ref.BitmapFNV)
	}
}

func TestJournalTornWriteRecovery(t *testing.T) {
	j, err := NewJournal("torn", 100, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		j.Mark(i)
	}
	j.Checkpoint()
	for i := 40; i < 70; i++ {
		j.Mark(i)
	}
	j.Checkpoint()

	// Corrupt the newest slot at every byte offset: Restore must always
	// recover the older (40-chunk) image, never garbage.
	for off := 0; off < j.SlotLen(0); off++ {
		jj, _ := NewJournal("torn", 100, 1<<20)
		jj.Adopt(j.Persisted())
		jj.CorruptSlot(0, off, 0xA5)
		if got := jj.Restore(); got != 40 {
			t.Fatalf("corrupt@%d: restored %d chunks, want the older 40", off, got)
		}
	}
	// Truncate the newest slot at every length.
	for n := 0; n < j.SlotLen(0); n++ {
		jj, _ := NewJournal("torn", 100, 1<<20)
		jj.Adopt(j.Persisted())
		jj.TruncateSlot(0, n)
		if got := jj.Restore(); got != 40 {
			t.Fatalf("truncate@%d: restored %d chunks, want the older 40", n, got)
		}
	}
	// Both slots torn: restart from zero, never garbage.
	jj, _ := NewJournal("torn", 100, 1<<20)
	jj.Adopt(j.Persisted())
	jj.CorruptSlot(0, 9, 0xFF)
	jj.CorruptSlot(1, 9, 0xFF)
	if got := jj.Restore(); got != 0 {
		t.Fatalf("both slots torn but restored %d chunks", got)
	}
	// A foreign journal must be refused.
	other, _ := NewJournal("other", 100, 1<<20)
	other.Adopt(j.Persisted())
	if got := other.Restore(); got != 0 {
		t.Fatalf("foreign journal adopted %d chunks", got)
	}
}

func TestJournalGeometryMismatch(t *testing.T) {
	spec := Spec{Name: "geo", TotalBytes: 64 << 20, ChunkBytes: 8 << 20}
	tr := mustTransfer(t, spec, Profile{})
	j, _ := NewJournal("geo", 3, 8<<20) // wrong chunk count
	if err := tr.SetJournal(j); err == nil {
		t.Fatal("mismatched journal accepted")
	}
	ok, _ := NewJournal("geo", 8, 8<<20)
	if err := tr.SetJournal(ok); err != nil {
		t.Fatal(err)
	}
}

func TestProbeCounters(t *testing.T) {
	col := obs.NewCollector()
	prof, _ := ForName("flaky")
	link := Wrap(testLink(), prof)
	link.SetProbe(col)
	spec := Spec{Name: "obs", TotalBytes: 128 << 20, ChunkBytes: 4 << 20, Seed: 6}
	tr, err := NewTransfer(spec, link)
	if err != nil {
		t.Fatal(err)
	}
	res, err := tr.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	snap := col.Reg.Snapshot()
	got := map[string]int64{}
	for _, c := range snap.Counters {
		got[c.Name] = c.Value
	}
	if got["netfault.flaky.retries"] != res.Retries {
		t.Fatalf("retries counter %d != result %d", got["netfault.flaky.retries"], res.Retries)
	}
	if got["netfault.flaky.goodput_bytes"] != res.PayloadBytes {
		t.Fatalf("goodput counter %d != payload %d", got["netfault.flaky.goodput_bytes"], res.PayloadBytes)
	}
	if got["netfault.flaky.wire_bytes"] != res.WireBytes {
		t.Fatalf("wire counter %d != wire bytes %d", got["netfault.flaky.wire_bytes"], res.WireBytes)
	}
}

func TestResultString(t *testing.T) {
	spec := Spec{Name: "str", TotalBytes: 32 << 20, Seed: 1}
	res, err := mustTransfer(t, spec, Profile{}).Run(0)
	if err != nil {
		t.Fatal(err)
	}
	s := res.String()
	for _, want := range []string{"transfer str", "complete", "goodput"} {
		if !strings.Contains(s, want) {
			t.Fatalf("Result.String() missing %q: %s", want, s)
		}
	}
}

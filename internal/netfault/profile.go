// Package netfault degrades the cluster fabric deterministically. The
// preload pipeline of §3.1 and the checkpoint write-back path both cross
// the ION↔CNL network, which the rest of the simulator models as perfectly
// clean; this package wraps any interconnect line or chain in a
// toxiproxy-style degradation profile — added latency with jitter,
// per-chunk loss and corruption probabilities, a bandwidth cap, and
// scheduled outage windows — and provides a resumable chunked-transfer
// engine on top (Transfer) with per-chunk FNV checksums, timeouts, bounded
// retry with exponential backoff, and a double-buffered chunk-bitmap
// journal (the internal/ckpt slot pattern) so an interrupted staging run
// restarts from the last verified chunk instead of byte zero.
//
// Every stochastic choice draws from a sim.RNG stream derived from
// (seed, chunk, attempt), never from a shared cursor, so the fault pattern
// a transfer sees is bit-identical across runs and independent of how many
// logical streams carry the chunks.
package netfault

import (
	"fmt"
	"math"
	"strings"

	"oocnvm/internal/sim"
)

// Window is one scheduled outage: the fabric accepts no new transfer
// attempts in [Start, End). An End of NeverEnds models a permanent
// partition from Start on.
type Window struct {
	Start, End sim.Time
}

// NeverEnds marks an outage window that never lifts.
const NeverEnds = sim.Time(math.MaxInt64)

// Profile parameterizes the degradation. The zero value degrades nothing:
// a transfer over a zero profile is bit-identical to one over the bare
// link.
type Profile struct {
	Name string
	// AddedLatency is extra fixed per-attempt latency (routing detours,
	// middlebox traversal) on top of the link's own request overhead.
	AddedLatency sim.Time
	// Jitter is the half-open range of extra uniform per-attempt latency
	// drawn from the attempt's RNG stream: [0, Jitter].
	Jitter sim.Time
	// LossProb is the per-attempt probability the chunk vanishes in the
	// fabric: the sender burns the full ack timeout, no wire time is
	// booked, and the chunk is retransmitted.
	LossProb float64
	// CorruptProb is the per-attempt probability the chunk arrives but
	// fails its FNV checksum: the wire time is spent, then retransmitted.
	CorruptProb float64
	// BandwidthCapBps throttles the path below the link's native rate
	// (congestion, QoS shaping). Zero means uncapped.
	BandwidthCapBps float64
	// Outages are scheduled windows in which no new attempt may start.
	// Attempts arriving inside a window stall until it lifts (the stall is
	// attributed to the recovery component); in-flight transfers complete.
	Outages []Window
}

// Enabled reports whether the profile can perturb anything at all.
func (p Profile) Enabled() bool {
	return p.AddedLatency > 0 || p.Jitter > 0 || p.LossProb > 0 ||
		p.CorruptProb > 0 || p.BandwidthCapBps > 0 || len(p.Outages) > 0
}

// Available returns the earliest instant at or after t the fabric accepts
// a new attempt. ok is false when t falls inside a window that never ends:
// no availability remains and the transfer cannot complete.
func (p Profile) Available(t sim.Time) (at sim.Time, ok bool) {
	// Windows may be unsorted and overlap; iterate to a fixed point.
	for moved := true; moved; {
		moved = false
		for _, w := range p.Outages {
			if t >= w.Start && t < w.End {
				if w.End == NeverEnds {
					return t, false
				}
				t = w.End
				moved = true
			}
		}
	}
	return t, true
}

// PositiveAvailability reports whether the outage schedule leaves any
// usable time after every window: false only when some window never ends.
func (p Profile) PositiveAvailability() bool {
	for _, w := range p.Outages {
		if w.End == NeverEnds && w.Start >= 0 {
			return false
		}
	}
	return true
}

// Profiles returns the named degradation profiles, mildest first. The
// latency/loss/bandwidth triples follow the toxiproxy toxic families:
// latency+jitter, loss (timeout), corruption (limit_data-style damage),
// bandwidth, and timed down windows.
func Profiles() []Profile {
	return []Profile{
		{Name: "none"},
		{
			// Long-haul detour: latency only, nothing dropped.
			Name:         "wan",
			AddedLatency: 2 * sim.Millisecond,
			Jitter:       500 * sim.Microsecond,
		},
		{
			// A few percent of chunks vanish or arrive damaged.
			Name:         "lossy",
			AddedLatency: 500 * sim.Microsecond,
			Jitter:       250 * sim.Microsecond,
			LossProb:     0.02,
			CorruptProb:  0.005,
		},
		{
			// QoS shaping well below the fabric's native rate.
			Name:            "congested",
			AddedLatency:    1 * sim.Millisecond,
			Jitter:          1 * sim.Millisecond,
			BandwidthCapBps: 256e6,
		},
		{
			// Everything at once: the chaos profile.
			Name:            "flaky",
			AddedLatency:    2 * sim.Millisecond,
			Jitter:          2 * sim.Millisecond,
			LossProb:        0.08,
			CorruptProb:     0.04,
			BandwidthCapBps: 512e6,
		},
		{
			// Two scheduled fabric outages with mild background loss.
			Name:     "outage",
			LossProb: 0.01,
			Jitter:   250 * sim.Microsecond,
			Outages: []Window{
				{Start: 100 * sim.Millisecond, End: 350 * sim.Millisecond},
				{Start: 600 * sim.Millisecond, End: 700 * sim.Millisecond},
			},
		},
		{
			// Permanent partition: no availability, transfers cannot finish.
			Name:    "blackout",
			Outages: []Window{{Start: 0, End: NeverEnds}},
		},
	}
}

// ForName finds a named profile, case-insensitively. The empty name is the
// clean "none" profile.
func ForName(name string) (Profile, error) {
	if name == "" {
		return Profile{Name: "none"}, nil
	}
	for _, p := range Profiles() {
		if strings.EqualFold(p.Name, name) {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("netfault: unknown profile %q (have none, wan, lossy, congested, flaky, outage, blackout)", name)
}

package netfault

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
)

// journalMagic guards against restoring garbage or a foreign artifact.
var journalMagic = [8]byte{'O', 'O', 'C', 'N', 'E', 'T', 'J', '1'}

// Journal persists a transfer's verified-chunk bitmap in two alternating
// slots — the internal/ckpt double-buffer pattern: every checkpoint
// serializes the bitmap (magic, transfer identity, geometry, a write
// sequence number, the bitmap words, a trailing FNV-64a checksum) into the
// slot NOT holding the newest valid image, then flips. A torn or corrupt
// checkpoint therefore costs at most the chunks verified since the
// previous checkpoint, never the whole transfer.
type Journal struct {
	nameSum    uint64
	chunks     int
	chunkBytes int64
	bits       []uint64
	done       int

	slots   [2][]byte
	current int // slot holding the newest valid image
	valid   bool
	seq     uint64
	writes  int64
}

// nameFNV hashes the transfer identity so a journal can refuse to resume a
// different transfer.
func nameFNV(name string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	return h.Sum64()
}

// NewJournal creates an empty journal for a transfer of the given shape.
func NewJournal(name string, chunks int, chunkBytes int64) (*Journal, error) {
	if chunks <= 0 || chunkBytes <= 0 {
		return nil, fmt.Errorf("netfault: journal needs positive chunk geometry (chunks=%d chunkBytes=%d)", chunks, chunkBytes)
	}
	return &Journal{
		nameSum:    nameFNV(name),
		chunks:     chunks,
		chunkBytes: chunkBytes,
		bits:       make([]uint64, (chunks+63)/64),
		current:    1,
	}, nil
}

// Chunks reports the transfer's chunk population.
func (j *Journal) Chunks() int { return j.chunks }

// Done reports whether chunk i is verified.
func (j *Journal) Done(i int) bool {
	if i < 0 || i >= j.chunks {
		return false
	}
	return j.bits[i/64]&(1<<uint(i%64)) != 0
}

// Mark records chunk i as verified.
func (j *Journal) Mark(i int) {
	if i < 0 || i >= j.chunks || j.Done(i) {
		return
	}
	j.bits[i/64] |= 1 << uint(i%64)
	j.done++
}

// DoneCount reports how many chunks are verified.
func (j *Journal) DoneCount() int { return j.done }

// Writes reports how many checkpoints were persisted.
func (j *Journal) Writes() int64 { return j.writes }

// BitmapFNV fingerprints the bitmap; two transfers that verified the same
// chunk set agree on it bit for bit.
func (j *Journal) BitmapFNV() uint64 {
	h := fnv.New64a()
	var b [8]byte
	for _, w := range j.bits {
		binary.LittleEndian.PutUint64(b[:], w)
		h.Write(b[:])
	}
	return h.Sum64()
}

// encode serializes the journal image with its trailing checksum.
func (j *Journal) encode() []byte {
	buf := make([]byte, 0, 8+8+4+8+8+8*len(j.bits)+8)
	buf = append(buf, journalMagic[:]...)
	buf = binary.LittleEndian.AppendUint64(buf, j.nameSum)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(j.chunks))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(j.chunkBytes))
	buf = binary.LittleEndian.AppendUint64(buf, j.seq)
	for _, w := range j.bits {
		buf = binary.LittleEndian.AppendUint64(buf, w)
	}
	h := fnv.New64a()
	h.Write(buf)
	return binary.LittleEndian.AppendUint64(buf, h.Sum64())
}

// decode parses one slot image, returning the bitmap words and sequence
// number, or an error for anything torn, truncated or foreign.
func (j *Journal) decode(raw []byte) (bits []uint64, seq uint64, err error) {
	want := 8 + 8 + 4 + 8 + 8 + 8*len(j.bits) + 8
	if len(raw) != want {
		return nil, 0, fmt.Errorf("netfault: journal image is %d bytes, want %d", len(raw), want)
	}
	body, sum := raw[:len(raw)-8], binary.LittleEndian.Uint64(raw[len(raw)-8:])
	h := fnv.New64a()
	h.Write(body)
	if h.Sum64() != sum {
		return nil, 0, fmt.Errorf("netfault: journal checksum mismatch")
	}
	if string(body[:8]) != string(journalMagic[:]) {
		return nil, 0, fmt.Errorf("netfault: bad journal magic")
	}
	at := 8
	if got := binary.LittleEndian.Uint64(body[at:]); got != j.nameSum {
		return nil, 0, fmt.Errorf("netfault: journal belongs to a different transfer")
	}
	at += 8
	if got := int(binary.LittleEndian.Uint32(body[at:])); got != j.chunks {
		return nil, 0, fmt.Errorf("netfault: journal has %d chunks, transfer has %d", got, j.chunks)
	}
	at += 4
	if got := int64(binary.LittleEndian.Uint64(body[at:])); got != j.chunkBytes {
		return nil, 0, fmt.Errorf("netfault: journal chunk size %d, transfer %d", got, j.chunkBytes)
	}
	at += 8
	seq = binary.LittleEndian.Uint64(body[at:])
	at += 8
	bits = make([]uint64, len(j.bits))
	for i := range bits {
		bits[i] = binary.LittleEndian.Uint64(body[at:])
		at += 8
	}
	return bits, seq, nil
}

// Checkpoint persists the live bitmap into the non-current slot and flips
// — the double-buffer alternation that keeps the previous image intact
// through a torn write.
func (j *Journal) Checkpoint() {
	j.seq++
	slot := 1 - j.current
	j.slots[slot] = j.encode()
	j.current = slot
	j.valid = true
	j.writes++
}

// Restore loads the newest valid persisted image into the live bitmap,
// falling back to the older slot when the newest is torn. It reports how
// many verified chunks were recovered; with no valid image the bitmap is
// left empty (restart from byte zero).
func (j *Journal) Restore() int {
	if !j.valid {
		return 0
	}
	type cand struct {
		bits []uint64
		seq  uint64
	}
	var best *cand
	for _, slot := range []int{j.current, 1 - j.current} {
		raw := j.slots[slot]
		if len(raw) == 0 {
			continue
		}
		bits, seq, err := j.decode(raw)
		if err != nil {
			continue
		}
		if best == nil || seq > best.seq {
			best = &cand{bits: bits, seq: seq}
		}
	}
	if best == nil {
		j.bits = make([]uint64, len(j.bits))
		j.done = 0
		return 0
	}
	j.bits = best.bits
	j.done = 0
	for i := 0; i < j.chunks; i++ {
		if j.Done(i) {
			j.done++
		}
	}
	return j.done
}

// Persisted returns deep copies of the two slot images (newest first), so
// tests can simulate a crash: rebuild a journal and hand the images back
// through Adopt.
func (j *Journal) Persisted() [2][]byte {
	var out [2][]byte
	out[0] = append([]byte(nil), j.slots[j.current]...)
	out[1] = append([]byte(nil), j.slots[1-j.current]...)
	return out
}

// Adopt installs persisted slot images (newest first) into a fresh
// journal, as after a process restart; Restore then recovers the bitmap.
func (j *Journal) Adopt(slots [2][]byte) {
	j.slots[0] = append([]byte(nil), slots[0]...)
	j.slots[1] = append([]byte(nil), slots[1]...)
	j.current = 0
	j.valid = len(slots[0]) > 0 || len(slots[1]) > 0
}

// CorruptSlot XORs mask into byte off of the chosen persisted slot
// (0 = newest, 1 = previous), for torn-write tests.
func (j *Journal) CorruptSlot(slotFromNewest int, off int, mask byte) {
	slot := j.current
	if slotFromNewest == 1 {
		slot = 1 - j.current
	}
	if off >= 0 && off < len(j.slots[slot]) && mask != 0 {
		j.slots[slot][off] ^= mask
	}
}

// TruncateSlot cuts the chosen persisted slot to n bytes, for torn-write
// tests.
func (j *Journal) TruncateSlot(slotFromNewest int, n int) {
	slot := j.current
	if slotFromNewest == 1 {
		slot = 1 - j.current
	}
	if n >= 0 && n < len(j.slots[slot]) {
		j.slots[slot] = j.slots[slot][:n]
	}
}

// SlotLen reports the byte length of the chosen persisted slot.
func (j *Journal) SlotLen(slotFromNewest int) int {
	slot := j.current
	if slotFromNewest == 1 {
		slot = 1 - j.current
	}
	return len(j.slots[slot])
}

package netfault

import (
	"oocnvm/internal/obs"
	"oocnvm/internal/sim"
)

// Link is the data path a transfer crosses: both *interconnect.Line and
// *interconnect.Chain satisfy it, so a profile can wrap a single fabric
// port or a whole staged path (remote PCIe then the cluster network).
type Link interface {
	// Transfer books n bytes no earlier than at and returns completion.
	Transfer(at sim.Time, n int64) sim.Time
	// RequestOverhead reports the fixed per-request cost of the path.
	RequestOverhead() sim.Time
	// BytesPerSec reports the path's (bottleneck) bandwidth.
	BytesPerSec() float64
}

// Degraded wraps a Link in a degradation Profile. The wrapper owns the
// bandwidth-cap pacing timeline, so a capped path serializes chunks at the
// capped rate no matter how fast the underlying link is, and prebuilds its
// counter names so the transfer hot path never concatenates strings.
type Degraded struct {
	link Link
	prof Profile

	cap   sim.Timeline // bandwidth-cap pacing; unused when uncapped
	probe obs.Probe

	lossCounter, corruptCounter, retryCounter     string
	wireCounter, goodCounter, stallGauge, chunksC string
}

// Wrap degrades the link with the profile.
func Wrap(l Link, p Profile) *Degraded {
	return &Degraded{link: l, prof: p, probe: obs.Nop{}}
}

// SetProbe attaches an observability probe: loss/corruption/retry/chunk
// counters, wire and goodput byte counters, and a cumulative stall gauge,
// all under "netfault.<profile>.".
func (d *Degraded) SetProbe(p obs.Probe) {
	d.probe = obs.OrNop(p)
	prefix := "netfault." + d.prof.Name + "."
	d.lossCounter = prefix + "losses"
	d.corruptCounter = prefix + "corruptions"
	d.retryCounter = prefix + "retries"
	d.wireCounter = prefix + "wire_bytes"
	d.goodCounter = prefix + "goodput_bytes"
	d.stallGauge = prefix + "stall_ps"
	d.chunksC = prefix + "chunks"
}

// Profile reports the wrapped degradation profile.
func (d *Degraded) Profile() Profile { return d.prof }

// EffectiveBps reports the degraded path's data rate: the link's own
// bottleneck rate, further capped by the profile's bandwidth cap.
func (d *Degraded) EffectiveBps() float64 {
	bps := d.link.BytesPerSec()
	if d.prof.BandwidthCapBps > 0 && d.prof.BandwidthCapBps < bps {
		bps = d.prof.BandwidthCapBps
	}
	return bps
}

// Overhead reports the fixed per-attempt cost: the link's request overhead
// plus the profile's added latency (jitter is drawn per attempt by the
// transfer engine, not here).
func (d *Degraded) Overhead() sim.Time {
	return d.link.RequestOverhead() + d.prof.AddedLatency
}

// Available returns when the fabric next accepts an attempt at or after t;
// ok is false under a permanent partition.
func (d *Degraded) Available(t sim.Time) (sim.Time, bool) {
	return d.prof.Available(t)
}

// Send books n bytes through the degraded path no earlier than at: the
// underlying link in series with the cap pacer, completing when both have
// moved the chunk. Fault draws (loss, corruption) belong to the transfer
// engine; Send only accounts time.
func (d *Degraded) Send(at sim.Time, n int64) sim.Time {
	end := d.link.Transfer(at, n)
	if d.prof.BandwidthCapBps > 0 {
		_, capEnd := d.cap.Acquire(at, sim.DurationForBytes(n, d.prof.BandwidthCapBps))
		if capEnd > end {
			end = capEnd
		}
	}
	return end
}

// Package pool provides the generation-counted free-lists the simulator's
// hot request/event lifecycle recycles its slice storage through.
//
// The simulator is a single goroutine per drive, and every pooled object has
// a strictly bracketed lifetime: a translator borrows a page-op buffer at
// translation time and the drive releases it when the request's scheduling
// is complete. A pool therefore needs no locking — one pool belongs to one
// drive — but it does need a way to catch the one bug class pooling
// introduces: code that holds a borrowed slice past its release and reads
// recycled storage. Every borrow carries a generation number; releasing
// bumps the entry's generation, so a stale Ref detects its own invalidity.
// The checks run only in debug mode (enabled under `-race` builds, or
// explicitly via SetDebug) and cost nothing in release builds beyond one
// atomic load per checked operation.
package pool

import (
	"fmt"
	"sync/atomic"
)

// debugging gates the generation checks. Race builds switch it on at init
// (pool_race.go); tests may toggle it with SetDebug.
var debugging atomic.Bool

// SetDebug turns use-after-release checking on or off process-wide.
// Returns the previous setting so tests can restore it.
func SetDebug(on bool) bool { return debugging.Swap(on) }

// Debugging reports whether generation checks are active.
func Debugging() bool { return debugging.Load() }

// entry is one pooled slice with its lifecycle bookkeeping.
type entry[T any] struct {
	buf []T
	gen uint32
	out bool
}

// Ref is a borrowed reference to a pooled slice: the entry plus the
// generation the borrow happened under. The zero Ref is "no borrow" and
// reports Valid() == false.
type Ref[T any] struct {
	e   *entry[T]
	gen uint32
}

// Valid reports whether r still refers to a live borrow (non-zero, not yet
// released, and not recycled behind the holder's back).
func (r Ref[T]) Valid() bool {
	return r.e != nil && r.e.out && r.gen == r.e.gen
}

// check panics when the reference is stale — the debug-mode use-after-release
// trap.
func (r Ref[T]) check() {
	if r.e == nil {
		panic("pool: use of zero Ref")
	}
	if !r.e.out || r.gen != r.e.gen {
		panic(fmt.Sprintf(
			"pool: use-after-release: ref generation %d, entry generation %d (out=%v)",
			r.gen, r.e.gen, r.e.out))
	}
}

// Slice returns the borrowed storage, length zero, ready to append into.
// In debug mode a released Ref panics here.
func (r Ref[T]) Slice() []T {
	if debugging.Load() {
		r.check()
	}
	return r.e.buf[:0]
}

// Buffers is a free-list of reusable slices of T. Not safe for concurrent
// use: a pool belongs to exactly one drive (ssd.New creates one per
// instance), which is what lets Matrix workers keep their parallelism
// without any cross-run sharing.
type Buffers[T any] struct {
	free []*entry[T]

	// Lifetime accounting, for tests and the alloc-budget table.
	gets   int64
	reuses int64
}

// Get borrows a zero-length slice with capacity at least capHint. The first
// borrows allocate; steady state pops recycled storage off the free list.
func (p *Buffers[T]) Get(capHint int) Ref[T] {
	p.gets++
	var e *entry[T]
	if n := len(p.free); n > 0 {
		e = p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		p.reuses++
	} else {
		e = &entry[T]{}
	}
	if cap(e.buf) < capHint {
		e.buf = make([]T, 0, capHint)
	}
	e.out = true
	return Ref[T]{e: e, gen: e.gen}
}

// Put releases a borrow back to the free list. final is the slice the
// borrower ended up with — appends may have regrown it past the borrowed
// backing array, and the pool keeps whichever storage the borrow grew into,
// so capacity ratchets up to the workload's high-water mark and growth
// allocations amortize to zero. Releasing bumps the generation: any Ref
// still held for this entry is now stale, and debug mode panics on its next
// use (or on a double Put).
func (p *Buffers[T]) Put(r Ref[T], final []T) {
	if debugging.Load() {
		r.check()
	}
	e := r.e
	e.gen++
	e.out = false
	e.buf = final[:0]
	p.free = append(p.free, e)
}

// Gets reports how many borrows the pool has served.
func (p *Buffers[T]) Gets() int64 { return p.gets }

// Reuses reports how many borrows were served from recycled storage.
func (p *Buffers[T]) Reuses() int64 { return p.reuses }

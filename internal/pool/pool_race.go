//go:build race

package pool

// Race builds run the full test suite with use-after-release checking on:
// the race detector catches cross-goroutine sharing, the generation counters
// catch same-goroutine lifetime violations — together they cover both bug
// classes pooling can introduce.
func init() { debugging.Store(true) }

package pool

import (
	"testing"
)

func withDebug(t *testing.T, on bool) {
	t.Helper()
	prev := SetDebug(on)
	t.Cleanup(func() { SetDebug(prev) })
}

func TestGetPutRecycles(t *testing.T) {
	var p Buffers[int]
	ref := p.Get(4)
	s := ref.Slice()
	if len(s) != 0 || cap(s) < 4 {
		t.Fatalf("borrowed slice len=%d cap=%d, want len 0 cap >= 4", len(s), cap(s))
	}
	s = append(s, 1, 2, 3)
	p.Put(ref, s)

	ref2 := p.Get(1)
	s2 := ref2.Slice()
	if cap(s2) < 4 {
		t.Errorf("recycled borrow lost its capacity: cap=%d, want >= 4", cap(s2))
	}
	if p.Gets() != 2 || p.Reuses() != 1 {
		t.Errorf("gets=%d reuses=%d, want 2/1", p.Gets(), p.Reuses())
	}
}

func TestPutKeepsRegrownStorage(t *testing.T) {
	var p Buffers[int]
	ref := p.Get(1)
	s := ref.Slice()
	for i := 0; i < 100; i++ {
		s = append(s, i) // forces regrowth past the borrowed backing
	}
	p.Put(ref, s)
	if got := p.Get(1).Slice(); cap(got) < 100 {
		t.Errorf("pool kept the small backing: cap=%d, want >= 100", cap(got))
	}
}

func TestZeroRefInvalid(t *testing.T) {
	var r Ref[int]
	if r.Valid() {
		t.Error("zero Ref reports Valid")
	}
}

// TestUseAfterReleasePanics is the generation-counter violation test: a
// holder that keeps a released Ref and touches it again must panic in debug
// mode. This is the contract that makes pooled request buffers safe — the
// production lifecycle (borrow at translation, release after scheduling)
// never trips it, and `-race` CI builds run every test with it armed.
func TestUseAfterReleasePanics(t *testing.T) {
	withDebug(t, true)
	var p Buffers[int]
	ref := p.Get(4)
	p.Put(ref, ref.Slice())
	defer func() {
		if recover() == nil {
			t.Error("Slice() on a released Ref did not panic in debug mode")
		}
	}()
	_ = ref.Slice()
}

func TestDoubleReleasePanics(t *testing.T) {
	withDebug(t, true)
	var p Buffers[int]
	ref := p.Get(4)
	s := ref.Slice()
	p.Put(ref, s)
	defer func() {
		if recover() == nil {
			t.Error("second Put of the same Ref did not panic in debug mode")
		}
	}()
	p.Put(ref, s)
}

func TestStaleRefAfterRecycleDetected(t *testing.T) {
	withDebug(t, true)
	var p Buffers[int]
	ref := p.Get(4)
	p.Put(ref, ref.Slice())
	fresh := p.Get(4) // recycles the same entry under a new generation
	if ref.Valid() {
		t.Error("stale Ref reports Valid after its entry was recycled")
	}
	if !fresh.Valid() {
		t.Error("fresh Ref reports invalid")
	}
}

func TestReleaseChecksFreeInReleaseMode(t *testing.T) {
	withDebug(t, false)
	var p Buffers[int]
	ref := p.Get(4)
	p.Put(ref, ref.Slice())
	// Without debug mode a stale Slice() must not panic (release builds
	// pay no checking cost); it simply returns the recycled storage.
	_ = ref.Slice()
}

func TestAllocsSteadyState(t *testing.T) {
	var p Buffers[byte]
	// Warm up to the high-water capacity.
	for i := 0; i < 4; i++ {
		ref := p.Get(256)
		p.Put(ref, ref.Slice()[:256])
	}
	allocs := testing.AllocsPerRun(100, func() {
		ref := p.Get(256)
		p.Put(ref, ref.Slice())
	})
	if allocs > 0 {
		t.Errorf("steady-state Get/Put allocates %.1f objects per cycle, want 0", allocs)
	}
}

package cluster

import (
	"testing"

	"oocnvm/internal/sim"
)

func TestCarverTopology(t *testing.T) {
	c := Carver()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	// Figure 3's numbers.
	if c.ComputeNodes != 1202 {
		t.Errorf("compute nodes = %d, want 1202", c.ComputeNodes)
	}
	if c.ComputeNodes*c.CoresPerCN != 9616 && c.ComputeNodes*c.CoresPerCN != 9984 {
		// 1202 x 8 = 9616; the paper quotes 9984 cores (mixed node types).
		t.Logf("core count %d (paper: 9984 over mixed node types)", c.ComputeNodes*c.CoresPerCN)
	}
	if c.OoCComputeNodes != 40 {
		t.Errorf("OoC nodes = %d, want 40", c.OoCComputeNodes)
	}
	if c.IONs != 10 || c.SSDs() != 20 {
		t.Errorf("IONs = %d, SSDs = %d, want 10 and 20", c.IONs, c.SSDs())
	}
	if c.Placement != IONLocal {
		t.Error("Carver is ION-local")
	}
}

func TestComputeLocalMigration(t *testing.T) {
	c := ComputeLocal()
	if c.Placement != CNLocal {
		t.Fatal("migration did not move the SSDs")
	}
	if c.SSDs() != Carver().SSDs() {
		t.Fatal("migration changed the SSD population")
	}
}

func TestPlacementString(t *testing.T) {
	if IONLocal.String() != "ION-local" || CNLocal.String() != "CN-local" {
		t.Fatal("placement names wrong")
	}
}

func TestValidateRejectsBadTopology(t *testing.T) {
	c := Carver()
	c.ComputeNodes = 0
	if c.Validate() == nil {
		t.Fatal("zero compute nodes accepted")
	}
	c = Carver()
	c.OoCComputeNodes = c.ComputeNodes + 1
	if c.Validate() == nil {
		t.Fatal("more OoC nodes than compute nodes accepted")
	}
}

func TestPreloadValidation(t *testing.T) {
	if _, err := Preload(ComputeLocal(), PreloadPlan{DatasetBytes: 0}); err == nil {
		t.Fatal("zero dataset accepted")
	}
	bad := ComputeLocal()
	bad.IONs = 0
	if _, err := Preload(bad, PreloadPlan{DatasetBytes: 1}); err == nil {
		t.Fatal("invalid topology accepted")
	}
}

func TestPreloadDuration(t *testing.T) {
	res, err := Preload(ComputeLocal(), PreloadPlan{DatasetBytes: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	if res.Duration <= 0 {
		t.Fatal("no duration")
	}
	// The staging rate is bounded by the slowest stage; with 12 spindles the
	// RAID streams over 1 GB/s, FC 8G ~0.72 GB/s, IB share ~1.1 GB/s: the
	// pipeline should land roughly at the FC envelope.
	rate := sim.Rate(1<<30, res.Duration)
	if rate < 0.3e9 || rate > 1.3e9 {
		t.Fatalf("preload rate %.2f GB/s outside plausible envelope", rate/1e9)
	}
}

func TestPreloadOverlapHidesCost(t *testing.T) {
	plan := PreloadPlan{DatasetBytes: 1 << 30, OverlapWindow: 60 * sim.Second}
	res, err := Preload(ComputeLocal(), plan)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Hidden || res.CriticalNs != 0 {
		t.Fatalf("one GiB against a minute of prior work should hide: %+v", res)
	}
	plan.OverlapWindow = res.Duration / 2
	res2, _ := Preload(ComputeLocal(), plan)
	if res2.Hidden || res2.CriticalNs == 0 {
		t.Fatal("half-window overlap cannot hide the preload")
	}
}

func TestPreloadScalesWithDataset(t *testing.T) {
	small, _ := Preload(ComputeLocal(), PreloadPlan{DatasetBytes: 256 << 20})
	large, _ := Preload(ComputeLocal(), PreloadPlan{DatasetBytes: 1 << 30})
	if large.Duration <= small.Duration {
		t.Fatal("larger dataset did not take longer")
	}
}

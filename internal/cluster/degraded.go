package cluster

import (
	"errors"
	"fmt"

	"oocnvm/internal/disk"
	"oocnvm/internal/interconnect"
	"oocnvm/internal/netfault"
	"oocnvm/internal/obs"
	"oocnvm/internal/obs/attrib"
	"oocnvm/internal/obs/timeseries"
	"oocnvm/internal/sim"
	"oocnvm/internal/trace"
)

// PlacementOutcome reports where the staged data actually landed after the
// graceful-degradation state machine ran.
type PlacementOutcome int

// The fallback ladder, best first.
const (
	// PlacePrimary is the intended destination: the OoC compute node's own
	// SSD (CN-local) at full fabric bandwidth.
	PlacePrimary PlacementOutcome = iota
	// PlacePeer lands the data on a peer OoC compute node's SSD; every
	// chunk takes an extra CN-to-CN forwarding hop over shared ports, so
	// the path runs at a degraded fraction of the fabric rate.
	PlacePeer
	// PlaceION retreats to an I/O-node SSD (the Figure 2a layout): the
	// preload completes, but through the ION's shared, protocol-burdened
	// port, and the runtime will pay network crossings for every access.
	PlaceION
	// PlaceFailed means no permitted destination accepted the data.
	PlaceFailed
)

// String names the outcome.
func (o PlacementOutcome) String() string {
	switch o {
	case PlacePrimary:
		return "primary"
	case PlacePeer:
		return "peer-CN"
	case PlaceION:
		return "ION"
	}
	return "failed"
}

// FallbackPolicy bounds the graceful-degradation ladder a preload may
// descend when its primary destination SSD refuses writes (typically
// fault.ErrReadOnly: spare blocks exhausted).
type FallbackPolicy struct {
	// AllowPeer permits falling back to a peer OoC compute node's SSD.
	AllowPeer bool
	// AllowION permits retreating to an I/O-node SSD.
	AllowION bool
	// PeerBandwidthFactor scales the fabric rate for the peer hop
	// (default 0.5: the chunk crosses two shared CN ports).
	PeerBandwidthFactor float64
	// IONBandwidthFactor scales the fabric rate for the ION retreat
	// (default 0.6: the ION port is shared between its SSDs and carries
	// parallel-filesystem protocol overhead).
	IONBandwidthFactor float64
}

// resolve runs the fallback state machine: primary when the target SSD is
// healthy, else peer (if allowed and healthy), else ION (if allowed), else
// failure carrying the original target error.
func (p FallbackPolicy) resolve(targetErr, peerErr error) (PlacementOutcome, float64, error) {
	if targetErr == nil {
		return PlacePrimary, 1, nil
	}
	if p.AllowPeer && peerErr == nil {
		f := p.PeerBandwidthFactor
		if f <= 0 || f > 1 {
			f = 0.5
		}
		return PlacePeer, f, nil
	}
	if p.AllowION {
		f := p.IONBandwidthFactor
		if f <= 0 || f > 1 {
			f = 0.6
		}
		return PlaceION, f, nil
	}
	return PlaceFailed, 0, fmt.Errorf("cluster: no permitted placement for preload: %w", targetErr)
}

// DegradedOptions parameterizes a preload or checkpoint drain under
// network degradation. The zero value is a clean, fault-free run.
type DegradedOptions struct {
	// Profile is the netfault degradation applied to the cluster-network
	// hop. The zero profile degrades nothing.
	Profile netfault.Profile
	// Seed drives every loss/corruption/jitter draw deterministically.
	Seed uint64
	// Parallel overrides the logical stream count (default: one stream
	// per RAID set, so every set pipeline stays busy).
	Parallel int
	// Journal, when set, resumes from a persisted chunk bitmap and is
	// checkpointed as the run progresses. Build one with PreloadJournal
	// or CheckpointJournal so the geometry matches.
	Journal *netfault.Journal
	// StopAfter interrupts the run after this many newly verified chunks
	// (0 = run to completion) — the crash-injection hook for resume tests.
	StopAfter int
	// Probe receives netfault counters and spans; Attrib the per-chunk
	// latency anatomy; Sampler the goodput/retry time series.
	Probe   obs.Probe
	Attrib  *attrib.Recorder
	Sampler *timeseries.Sampler
	// Fallback bounds the placement ladder; TargetErr is the primary
	// destination SSD's write error (fault.ErrReadOnly after spare-block
	// exhaustion) and PeerErr the peer candidate's, both nil when healthy.
	Fallback  FallbackPolicy
	TargetErr error
	PeerErr   error
}

// DegradedResult is a degraded run's full outcome: the classic preload
// summary, the transfer engine's detailed result, and where the data
// actually landed.
type DegradedResult struct {
	PreloadResult
	Transfer netfault.Result
	Outcome  PlacementOutcome
	// ProfileName names the degradation profile the run crossed.
	ProfileName string
	// EffectiveBps is the degraded path's data rate ceiling after the
	// profile cap and any fallback bandwidth factor.
	EffectiveBps float64
}

// stagingPipeline is the magnetic tier fan-out: one RAID0 array per RAID
// set, each behind its owning ION's Fibre-Channel line. Chunks map to sets
// round-robin; each set stores its stripe contiguously, so per-set access
// stays sequential.
type stagingPipeline struct {
	sets  int
	raids []*disk.RAID0
	fcs   []*interconnect.Line
	chunk int64
}

func newStagingPipeline(t Topology, chunkBytes int64) (*stagingPipeline, error) {
	p := &stagingPipeline{sets: t.RAIDSets, chunk: chunkBytes}
	for i := 0; i < t.RAIDSets; i++ {
		r, err := disk.NewRAID0(t.RAIDWidth, disk.Enterprise15K(), 1<<20)
		if err != nil {
			return nil, err
		}
		p.raids = append(p.raids, r)
	}
	for i := 0; i < t.IONs; i++ {
		p.fcs = append(p.fcs, interconnect.NewNetworkLine(t.Storage))
	}
	return p, nil
}

// lanes returns chunk i's RAID set and its ION's FC line.
func (p *stagingPipeline) lanes(i int) (*disk.RAID0, *interconnect.Line) {
	set := i % p.sets
	return p.raids[set], p.fcs[set%len(p.fcs)]
}

// setOffset is chunk i's byte offset within its set's contiguous stripe.
func (p *stagingPipeline) setOffset(i int) int64 {
	return int64(i/p.sets) * p.chunk
}

// read stages chunk i out of the magnetic tier: RAID read, then the FC hop
// to the ION — the transfer engine's Source for a preload.
func (p *stagingPipeline) read(at sim.Time, i int, _, n int64) sim.Time {
	raid, fc := p.lanes(i)
	e := raid.Serve(at, p.setOffset(i), n)
	return fc.Transfer(e, n)
}

// write stores chunk i back into the magnetic tier: the FC hop, then the
// RAID write — the transfer engine's Sink for a checkpoint drain.
func (p *stagingPipeline) write(at sim.Time, i int, _, n int64) sim.Time {
	raid, fc := p.lanes(i)
	e := fc.Transfer(at, n)
	return raid.Serve(e, p.setOffset(i), n)
}

// degradedProfile folds a fallback bandwidth factor into the run's
// profile: the factor caps the path below the fabric's native rate and the
// forwarding hop adds one fabric round trip per attempt.
func degradedProfile(prof netfault.Profile, t Topology, factor float64) netfault.Profile {
	if prof.Name == "" {
		prof.Name = "none"
	}
	if factor < 1 {
		cap := t.Network.EffectiveBytesPerSec() * factor
		if prof.BandwidthCapBps == 0 || cap < prof.BandwidthCapBps {
			prof.BandwidthCapBps = cap
		}
		prof.AddedLatency += t.Network.RoundTrip
	}
	return prof
}

// PreloadJournal builds an empty resume journal matching PreloadDegraded's
// transfer geometry for the topology and plan.
func PreloadJournal(t Topology, plan PreloadPlan) (*netfault.Journal, error) {
	if plan.ChunkBytes <= 0 {
		plan.ChunkBytes = 16 << 20
	}
	chunks := int((plan.DatasetBytes + plan.ChunkBytes - 1) / plan.ChunkBytes)
	return netfault.NewJournal("preload-"+t.Name, chunks, plan.ChunkBytes)
}

// PreloadDegraded stages the dataset like Preload, but across a degraded
// cluster fabric with resumable chunked delivery: per-chunk checksums,
// bounded retry with exponential backoff, a persisted chunk-bitmap journal
// for crash resume, and the placement-fallback ladder when the primary
// destination SSD refuses writes.
func PreloadDegraded(t Topology, plan PreloadPlan, opt DegradedOptions) (DegradedResult, error) {
	if err := t.Validate(); err != nil {
		return DegradedResult{Outcome: PlaceFailed}, err
	}
	if plan.DatasetBytes <= 0 {
		return DegradedResult{Outcome: PlaceFailed}, errors.New("cluster: preload dataset must be positive")
	}
	if plan.ChunkBytes <= 0 {
		plan.ChunkBytes = 16 << 20
	}
	outcome, factor, err := opt.Fallback.resolve(opt.TargetErr, opt.PeerErr)
	if err != nil {
		return DegradedResult{Outcome: outcome, ProfileName: opt.Profile.Name}, err
	}
	pipe, err := newStagingPipeline(t, plan.ChunkBytes)
	if err != nil {
		return DegradedResult{Outcome: outcome}, err
	}
	link := netfault.Wrap(interconnect.NewNetworkLine(t.Network), degradedProfile(opt.Profile, t, factor))
	spec := netfault.Spec{
		Name:       "preload-" + t.Name,
		Kind:       uint8(trace.Read),
		TotalBytes: plan.DatasetBytes,
		ChunkBytes: plan.ChunkBytes,
		Parallel:   t.RAIDSets,
		Seed:       opt.Seed,
		Source:     pipe.read,
		StopAfter:  opt.StopAfter,
	}
	return runDegraded(spec, link, opt, outcome, plan.OverlapWindow)
}

// CheckpointPlan describes draining an application snapshot off the
// compute-local SSDs back to the magnetic tier.
type CheckpointPlan struct {
	SnapshotBytes int64
	ChunkBytes    int64 // default 16 MiB
}

// CheckpointJournal builds an empty resume journal matching
// DrainCheckpoint's transfer geometry.
func CheckpointJournal(t Topology, plan CheckpointPlan) (*netfault.Journal, error) {
	if plan.ChunkBytes <= 0 {
		plan.ChunkBytes = 16 << 20
	}
	chunks := int((plan.SnapshotBytes + plan.ChunkBytes - 1) / plan.ChunkBytes)
	return netfault.NewJournal("ckpt-"+t.Name, chunks, plan.ChunkBytes)
}

// DrainCheckpoint writes a checkpoint snapshot back from an OoC compute
// node to the magnetic tier: the node's native-PCIe SSD read feeds the
// (possibly degraded) cluster network, then the ION's Fibre-Channel
// attachment and RAID set absorb the chunk. The same journal/retry/
// fallback machinery as PreloadDegraded applies; the fallback ladder here
// chooses which node's copy of the snapshot drains (a peer replica or an
// ION-buffered copy) when the local SSD has gone read-only and thus
// unreadable-after-write.
func DrainCheckpoint(t Topology, plan CheckpointPlan, opt DegradedOptions) (DegradedResult, error) {
	if err := t.Validate(); err != nil {
		return DegradedResult{Outcome: PlaceFailed}, err
	}
	if plan.SnapshotBytes <= 0 {
		return DegradedResult{Outcome: PlaceFailed}, errors.New("cluster: checkpoint snapshot must be positive")
	}
	if plan.ChunkBytes <= 0 {
		plan.ChunkBytes = 16 << 20
	}
	outcome, factor, err := opt.Fallback.resolve(opt.TargetErr, opt.PeerErr)
	if err != nil {
		return DegradedResult{Outcome: outcome, ProfileName: opt.Profile.Name}, err
	}
	pipe, err := newStagingPipeline(t, plan.ChunkBytes)
	if err != nil {
		return DegradedResult{Outcome: outcome}, err
	}
	ssd := interconnect.NewPCIeLine(interconnect.PCIeConfig{Gen: interconnect.PCIeGen2, Lanes: 8})
	link := netfault.Wrap(interconnect.NewNetworkLine(t.Network), degradedProfile(opt.Profile, t, factor))
	spec := netfault.Spec{
		Name:       "ckpt-" + t.Name,
		Kind:       uint8(trace.Write),
		TotalBytes: plan.SnapshotBytes,
		ChunkBytes: plan.ChunkBytes,
		Parallel:   t.RAIDSets,
		Seed:       opt.Seed,
		Source: func(at sim.Time, _ int, _, n int64) sim.Time {
			return ssd.Transfer(at, n)
		},
		Sink:      pipe.write,
		StopAfter: opt.StopAfter,
	}
	return runDegraded(spec, link, opt, outcome, 0)
}

// runDegraded wires the options into the transfer engine, runs it, and
// folds the engine's result into the classic preload summary.
func runDegraded(spec netfault.Spec, link *netfault.Degraded, opt DegradedOptions, outcome PlacementOutcome, overlap sim.Time) (DegradedResult, error) {
	if opt.Parallel > 0 {
		spec.Parallel = opt.Parallel
	}
	if opt.Probe != nil {
		link.SetProbe(opt.Probe)
	}
	tr, err := netfault.NewTransfer(spec, link)
	if err != nil {
		return DegradedResult{Outcome: PlaceFailed}, err
	}
	if opt.Journal != nil {
		if err := tr.SetJournal(opt.Journal); err != nil {
			return DegradedResult{Outcome: PlaceFailed}, err
		}
	}
	tr.SetRecorder(opt.Attrib)
	if opt.Sampler != nil {
		tr.SetSampler(opt.Sampler)
	}
	res, runErr := tr.Run(0)
	out := DegradedResult{
		Transfer:     res,
		Outcome:      outcome,
		ProfileName:  link.Profile().Name,
		EffectiveBps: link.EffectiveBps(),
	}
	out.Duration = res.End - res.Start
	out.DiskBW = res.Goodput
	if out.Duration <= overlap {
		out.Hidden = true
	} else {
		out.CriticalNs = out.Duration - overlap
	}
	return out, runErr
}

package cluster

import (
	"fmt"

	"oocnvm/internal/sim"
)

// DistributedJob models the out-of-core eigensolver at cluster scale
// (Figures 2a/2b): the OoC compute nodes each own an equal share of H's row
// panels, read that share once per operator application, and exchange their
// slice of the iterate block with everyone else (the communication the
// paper wants the network freed up for).
type DistributedJob struct {
	// Nodes is the OoC compute-node count (Carver dedicates 40).
	Nodes int
	// MatrixBytes is H's total footprint across the cluster.
	MatrixBytes int64
	// BlockBytes is the iterate block Ψ's footprint (tall-skinny: rows × 10-20
	// columns × 8 bytes); each application ends with an allgather of it.
	BlockBytes int64
	// Applications is the operator-application count.
	Applications int
	// LocalSSDBandwidth is a compute-local SSD's sustained rate (take it from
	// a single-SSD simulation, e.g. the CNL-UFS Figure 7a value).
	LocalSSDBandwidth float64
	// IONSSDBandwidth is one ION-resident SSD's deliverable rate behind the
	// network (the ION-GPFS Figure 7a value).
	IONSSDBandwidth float64
}

// DefaultDistributedJob sizes the job like the paper's evaluation: 40 nodes
// sharing a large H with a 16-column iterate block, with the single-SSD
// rates calibrated in EXPERIMENTS.md.
func DefaultDistributedJob() DistributedJob {
	const dim = 4 << 20 // rows; BlockBytes = dim * 16 cols * 8 B
	return DistributedJob{
		Nodes:             40,
		MatrixBytes:       2 << 40, // 2 TiB Hamiltonian
		BlockBytes:        dim * 16 * 8,
		Applications:      4,
		LocalSSDBandwidth: 3.06e9, // CNL-UFS envelope
		IONSSDBandwidth:   1.05e9, // ION-GPFS measured
	}
}

// Validate reports impossible jobs.
func (j DistributedJob) Validate() error {
	if j.Nodes <= 0 || j.MatrixBytes <= 0 || j.BlockBytes < 0 || j.Applications <= 0 {
		return fmt.Errorf("cluster: distributed job fields must be positive: %+v", j)
	}
	if j.LocalSSDBandwidth <= 0 || j.IONSSDBandwidth <= 0 {
		return fmt.Errorf("cluster: distributed job needs SSD bandwidths")
	}
	return nil
}

// DistributedResult reports one placement's per-application and total times.
type DistributedResult struct {
	Placement  Placement
	IOTime     sim.Time // reading the node's panel share, per application
	CommTime   sim.Time // allgathering the iterate block, per application
	PerApp     sim.Time // max of overlap-free serial phases
	Total      sim.Time
	NodeReadBW float64 // what one node's reads actually sustained
}

// SimulateDistributed evaluates the job under both placements on the given
// topology and returns (ION-local, CN-local) results. The model captures the
// paper's two effects:
//
//   - ION-local: every node's panel reads cross the shared network, each
//     node sustaining only its share of the ION SSD pool, and the allgather
//     contends with that I/O traffic on the same ports.
//   - CN-local: reads are node-local at SSD speed and the network carries
//     only the communication.
func SimulateDistributed(t Topology, j DistributedJob) (ion, cnl DistributedResult, err error) {
	if err := t.Validate(); err != nil {
		return ion, cnl, err
	}
	if err := j.Validate(); err != nil {
		return ion, cnl, err
	}
	perNodeBytes := j.MatrixBytes / int64(j.Nodes)
	// Allgather: each node receives the (Nodes-1)/Nodes of the block it does
	// not own (ring/recursive-doubling both move ~BlockBytes per node).
	commBytes := j.BlockBytes * int64(j.Nodes-1) / int64(j.Nodes)
	// Per-node port bandwidth for MPI traffic: encoding-level data rate with
	// point-to-point transport efficiency (no GPFS/NSD overhead).
	raw := t.Network.SignalGbps * 1e9 / 8 *
		float64(t.Network.EncodingNum) / float64(t.Network.EncodingDen)
	mpiBW := raw * 0.8

	// --- ION-local -----------------------------------------------------------
	{
		// The SSD pool serves all OoC nodes: one node sustains its share.
		nodeBW := j.IONSSDBandwidth * float64(t.SSDs()) / float64(j.Nodes)
		if nodeBW > j.IONSSDBandwidth {
			nodeBW = j.IONSSDBandwidth // cannot exceed one stream's ceiling
		}
		ioTime := sim.DurationForBytes(perNodeBytes, nodeBW)
		// The allgather and the panel traffic share the fabric: communication
		// sees the port minus the I/O stream occupying it.
		commBW := mpiBW - nodeBW
		if commBW < mpiBW*0.1 {
			commBW = mpiBW * 0.1
		}
		commTime := sim.DurationForBytes(commBytes, commBW)
		ion = DistributedResult{
			Placement:  IONLocal,
			IOTime:     ioTime,
			CommTime:   commTime,
			PerApp:     ioTime + commTime,
			NodeReadBW: nodeBW,
		}
		ion.Total = ion.PerApp * sim.Time(j.Applications)
	}

	// --- CN-local --------------------------------------------------------------
	{
		ioTime := sim.DurationForBytes(perNodeBytes, j.LocalSSDBandwidth)
		commTime := sim.DurationForBytes(commBytes, mpiBW)
		cnl = DistributedResult{
			Placement:  CNLocal,
			IOTime:     ioTime,
			CommTime:   commTime,
			PerApp:     ioTime + commTime,
			NodeReadBW: j.LocalSSDBandwidth,
		}
		cnl.Total = cnl.PerApp * sim.Time(j.Applications)
	}
	return ion, cnl, nil
}

// Speedup returns CNL total time over ION total time as a factor > 1 when
// the migration wins.
func Speedup(ion, cnl DistributedResult) float64 {
	if cnl.Total <= 0 {
		return 0
	}
	return float64(ion.Total) / float64(cnl.Total)
}

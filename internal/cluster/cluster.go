// Package cluster models the HPC architectures the paper compares: the
// Carver-like baseline with storage sequestered behind I/O nodes (Figures
// 2a, 3) and the proposed compute-local layout (Figure 2b), plus the
// preload pipeline that stages the OoC dataset from network-attached
// magnetic storage onto compute-local SSDs "prior to beginning the
// computation, moving that I/O out of the critical path" (§3.1).
package cluster

import (
	"fmt"

	"oocnvm/internal/interconnect"
	"oocnvm/internal/sim"
)

// Placement says where the NVM lives relative to compute.
type Placement int

// The two architectures.
const (
	IONLocal Placement = iota // Figure 2a: SSDs on the I/O nodes
	CNLocal                   // Figure 2b: SSDs on the compute nodes
)

// String names the placement.
func (p Placement) String() string {
	if p == IONLocal {
		return "ION-local"
	}
	return "CN-local"
}

// Topology describes the cluster.
type Topology struct {
	Name            string
	ComputeNodes    int
	CoresPerCN      int
	OoCComputeNodes int // subset dedicated to out-of-core computation
	IONs            int
	SSDsPerION      int
	Placement       Placement
	Network         interconnect.NetworkParams
	Storage         interconnect.NetworkParams // ION <-> RAID attachment
	RAIDWidth       int                        // spindles per RAID set
	RAIDSets        int
}

// Carver returns the paper's evaluation platform (Figure 3): 1202 compute
// nodes / 9984 cores with 40 CNs (320 cores) dedicated to OoC computing,
// QDR 4X InfiniBand, 10 IONs with 48 cores and 20 PCIe SSDs, and
// Fibre-Channel-attached RAID enclosures.
func Carver() Topology {
	return Topology{
		Name:            "Carver",
		ComputeNodes:    1202,
		CoresPerCN:      8,
		OoCComputeNodes: 40,
		IONs:            10,
		SSDsPerION:      2,
		Placement:       IONLocal,
		Network:         interconnect.QDR4XInfiniBand(),
		Storage:         interconnect.FibreChannel8G(),
		RAIDWidth:       12,
		RAIDSets:        10,
	}
}

// ComputeLocal returns the paper's proposed migration of Carver: the 20
// PCIe SSDs move from the IONs onto the OoC compute nodes.
func ComputeLocal() Topology {
	t := Carver()
	t.Name = "Carver-CNL"
	t.Placement = CNLocal
	return t
}

// Validate reports impossible topologies.
func (t Topology) Validate() error {
	if t.ComputeNodes <= 0 || t.IONs <= 0 || t.SSDsPerION <= 0 {
		return fmt.Errorf("cluster: node counts must be positive: %+v", t)
	}
	if t.CoresPerCN <= 0 {
		return fmt.Errorf("cluster: cores per CN must be positive, got %d", t.CoresPerCN)
	}
	if t.RAIDWidth <= 0 || t.RAIDSets <= 0 {
		return fmt.Errorf("cluster: RAID geometry must be positive (width=%d sets=%d)", t.RAIDWidth, t.RAIDSets)
	}
	if t.OoCComputeNodes > t.ComputeNodes {
		return fmt.Errorf("cluster: OoC nodes %d exceed compute nodes %d", t.OoCComputeNodes, t.ComputeNodes)
	}
	return nil
}

// SSDs returns the cluster's SSD population.
func (t Topology) SSDs() int { return t.IONs * t.SSDsPerION }

// PreloadPlan describes staging the dataset from the magnetic tier to the
// compute-local SSDs.
type PreloadPlan struct {
	DatasetBytes int64
	ChunkBytes   int64
	// OverlapWindow is prior application execution time available to hide
	// the preload behind ("such data migration can of course be overlapped
	// with previous application execution times", §3.1).
	OverlapWindow sim.Time
}

// PreloadResult reports the staging outcome.
type PreloadResult struct {
	Duration   sim.Time
	Hidden     bool     // fully overlapped with the prior job
	CriticalNs sim.Time // time left on the critical path after overlap
	DiskBW     float64  // achieved RAID streaming rate
}

// Preload simulates staging DatasetBytes from the magnetic tier over the
// storage attachment and cluster network to one OoC compute node's SSD.
//
// Fan-out assumption: the dataset is striped chunk-round-robin across all
// RAIDSets RAID sets, each set reached through its owning ION's
// Fibre-Channel attachment (sets are distributed round-robin over the
// IONs, so sets sharing an ION share its FC link). All set pipelines feed
// the single network port of the destination compute node, which is
// therefore the steady-state bottleneck of a healthy preload. The
// per-chunk staging runs on the resumable transfer engine of
// internal/netfault with the clean profile; PreloadDegraded exposes the
// same path under fault injection.
func Preload(t Topology, plan PreloadPlan) (PreloadResult, error) {
	res, err := PreloadDegraded(t, plan, DegradedOptions{})
	if err != nil {
		return PreloadResult{}, err
	}
	return res.PreloadResult, nil
}

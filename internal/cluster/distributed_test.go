package cluster

import "testing"

func TestDistributedValidation(t *testing.T) {
	if _, _, err := SimulateDistributed(Carver(), DistributedJob{}); err == nil {
		t.Fatal("zero job accepted")
	}
	bad := Carver()
	bad.IONs = 0
	if _, _, err := SimulateDistributed(bad, DefaultDistributedJob()); err == nil {
		t.Fatal("invalid topology accepted")
	}
}

func TestDistributedCNLWins(t *testing.T) {
	ion, cnl, err := SimulateDistributed(Carver(), DefaultDistributedJob())
	if err != nil {
		t.Fatal(err)
	}
	if ion.Total <= 0 || cnl.Total <= 0 {
		t.Fatal("degenerate totals")
	}
	s := Speedup(ion, cnl)
	// The default job is I/O-bound: the win should roughly track the
	// single-SSD gap (3.06 vs ~0.5 GB/s per-node share), i.e. several-fold.
	if s < 2 || s > 12 {
		t.Fatalf("CNL speedup = %.2fx, outside the plausible band", s)
	}
}

func TestDistributedIOAndCommDecomposition(t *testing.T) {
	ion, cnl, err := SimulateDistributed(Carver(), DefaultDistributedJob())
	if err != nil {
		t.Fatal(err)
	}
	// CN-local reads are local: far faster per node.
	if cnl.IOTime >= ion.IOTime {
		t.Fatalf("CNL I/O %v not faster than ION %v", cnl.IOTime, ion.IOTime)
	}
	// The paper's secondary claim: moving data off the network improves the
	// communication itself.
	if cnl.CommTime > ion.CommTime {
		t.Fatalf("CNL comm %v slower than ION %v; the freed network should help", cnl.CommTime, ion.CommTime)
	}
	if cnl.NodeReadBW <= ion.NodeReadBW {
		t.Fatal("per-node read bandwidth ordering wrong")
	}
}

func TestDistributedScalesWithNodes(t *testing.T) {
	job := DefaultDistributedJob()
	_, cnl40, err := SimulateDistributed(Carver(), job)
	if err != nil {
		t.Fatal(err)
	}
	job.Nodes = 80
	_, cnl80, err := SimulateDistributed(Carver(), job)
	if err != nil {
		t.Fatal(err)
	}
	// Twice the nodes halve the per-node panel share: CNL I/O time halves.
	ratio := float64(cnl40.IOTime) / float64(cnl80.IOTime)
	if ratio < 1.9 || ratio > 2.1 {
		t.Fatalf("I/O scaling 40->80 nodes = %.2f, want ~2", ratio)
	}
}

func TestDistributedIONSaturatesPool(t *testing.T) {
	// With more nodes than SSD streams, each ION-fed node gets only a pool
	// share; with very few nodes a single stream's ceiling binds.
	job := DefaultDistributedJob()
	job.Nodes = 4 // fewer nodes than the 20 SSDs
	ion, _, err := SimulateDistributed(Carver(), job)
	if err != nil {
		t.Fatal(err)
	}
	if ion.NodeReadBW != job.IONSSDBandwidth {
		t.Fatalf("with spare SSDs a node should sustain a full stream: %v", ion.NodeReadBW)
	}
	job.Nodes = 80
	ion80, _, err := SimulateDistributed(Carver(), job)
	if err != nil {
		t.Fatal(err)
	}
	if ion80.NodeReadBW >= ion.NodeReadBW {
		t.Fatal("oversubscribed pool did not reduce per-node bandwidth")
	}
}

func TestSpeedupDegenerate(t *testing.T) {
	if Speedup(DistributedResult{}, DistributedResult{}) != 0 {
		t.Fatal("zero totals must yield zero speedup")
	}
}

package cluster

import (
	"errors"
	"testing"

	"oocnvm/internal/fault"
	"oocnvm/internal/netfault"
	"oocnvm/internal/obs/attrib"
)

func TestValidateRejectsNonPositiveGeometry(t *testing.T) {
	for _, mut := range []func(*Topology){
		func(c *Topology) { c.CoresPerCN = 0 },
		func(c *Topology) { c.CoresPerCN = -8 },
		func(c *Topology) { c.RAIDWidth = 0 },
		func(c *Topology) { c.RAIDSets = 0 },
		func(c *Topology) { c.RAIDSets = -1 },
	} {
		c := Carver()
		mut(&c)
		if c.Validate() == nil {
			t.Fatalf("invalid geometry accepted: %+v", c)
		}
	}
}

func TestPreloadFanOutBeatsSingleSet(t *testing.T) {
	plan := PreloadPlan{DatasetBytes: 1 << 30}
	wide, err := Preload(ComputeLocal(), plan)
	if err != nil {
		t.Fatal(err)
	}
	narrow := ComputeLocal()
	narrow.RAIDSets = 1
	single, err := Preload(narrow, plan)
	if err != nil {
		t.Fatal(err)
	}
	if wide.Duration >= single.Duration {
		t.Fatalf("ten RAID sets (%v) not faster than one (%v)", wide.Duration, single.Duration)
	}
}

func TestPreloadDegradedDeterminism(t *testing.T) {
	prof, _ := netfault.ForName("flaky")
	plan := PreloadPlan{DatasetBytes: 512 << 20}
	opt := DegradedOptions{Profile: prof, Seed: 42}
	a, errA := PreloadDegraded(ComputeLocal(), plan, opt)
	b, errB := PreloadDegraded(ComputeLocal(), plan, opt)
	if errA != nil || errB != nil {
		t.Fatalf("runs failed: %v, %v", errA, errB)
	}
	if a.Transfer != b.Transfer {
		t.Fatalf("same-seed degraded preloads differ:\n%+v\n%+v", a.Transfer, b.Transfer)
	}
}

func TestPreloadDegradedSlowerThanClean(t *testing.T) {
	plan := PreloadPlan{DatasetBytes: 512 << 20}
	clean, err := Preload(ComputeLocal(), plan)
	if err != nil {
		t.Fatal(err)
	}
	prof, _ := netfault.ForName("flaky")
	deg, err := PreloadDegraded(ComputeLocal(), plan, DegradedOptions{Profile: prof, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !deg.Transfer.Completed || deg.Transfer.Retries == 0 {
		t.Fatalf("flaky preload should complete through retries: %+v", deg.Transfer)
	}
	if deg.Duration <= clean.Duration {
		t.Fatalf("degraded preload (%v) not slower than clean (%v)", deg.Duration, clean.Duration)
	}
	// Goodput cannot beat the profile's 512 MB/s cap.
	if deg.Transfer.Goodput > 512e6*1.01 {
		t.Fatalf("goodput %.0f beats the cap", deg.Transfer.Goodput)
	}
}

func TestPreloadAttributionConserves(t *testing.T) {
	rec := attrib.NewRecorder(8)
	prof, _ := netfault.ForName("lossy")
	plan := PreloadPlan{DatasetBytes: 512 << 20}
	res, err := PreloadDegraded(ComputeLocal(), plan, DegradedOptions{
		Profile: prof, Seed: 7, Attrib: rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Requests() != int64(res.Transfer.Delivered) {
		t.Fatalf("recorder saw %d chunks, engine delivered %d", rec.Requests(), res.Transfer.Delivered)
	}
	if rec.Violations() != 0 {
		t.Fatalf("attribution conservation violated %d times", rec.Violations())
	}
	sum := rec.Summary()
	if sum.Totals[attrib.Queue] <= 0 || sum.Totals[attrib.LinkXfer] <= 0 {
		t.Fatalf("staging/wire components empty: %+v", sum.Totals)
	}
	if res.Transfer.Retries > 0 && sum.Totals[attrib.Retry] <= 0 {
		t.Fatal("retries happened but the retry component is empty")
	}
}

func TestPreloadResumeFromJournal(t *testing.T) {
	prof, _ := netfault.ForName("lossy")
	topo := ComputeLocal()
	plan := PreloadPlan{DatasetBytes: 512 << 20}

	ref, err := PreloadDegraded(topo, plan, DegradedOptions{Profile: prof, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}

	j1, err := PreloadJournal(topo, plan)
	if err != nil {
		t.Fatal(err)
	}
	interrupted, err := PreloadDegraded(topo, plan, DegradedOptions{
		Profile: prof, Seed: 3, Journal: j1, StopAfter: 12,
	})
	if !errors.Is(err, netfault.ErrInterrupted) {
		t.Fatalf("err = %v, want ErrInterrupted", err)
	}
	if interrupted.Transfer.Completed {
		t.Fatal("interrupted preload claims completion")
	}

	j2, _ := PreloadJournal(topo, plan)
	j2.Adopt(j1.Persisted())
	resumed, err := PreloadDegraded(topo, plan, DegradedOptions{
		Profile: prof, Seed: 3, Journal: j2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !resumed.Transfer.Completed || resumed.Transfer.Skipped == 0 {
		t.Fatalf("resume did not skip journaled chunks: %+v", resumed.Transfer)
	}
	if resumed.Transfer.WireBytes >= ref.Transfer.WireBytes {
		t.Fatalf("resume moved %d wire bytes, from-scratch %d",
			resumed.Transfer.WireBytes, ref.Transfer.WireBytes)
	}
	if resumed.Transfer.BitmapFNV != ref.Transfer.BitmapFNV {
		t.Fatal("resumed bitmap differs from the from-scratch bitmap")
	}
}

func TestFallbackLadder(t *testing.T) {
	plan := PreloadPlan{DatasetBytes: 256 << 20}
	topo := ComputeLocal()

	primary, err := PreloadDegraded(topo, plan, DegradedOptions{})
	if err != nil || primary.Outcome != PlacePrimary {
		t.Fatalf("healthy target must place primary: %v, %v", primary.Outcome, err)
	}

	// Read-only target SSD, healthy peer: peer placement at degraded rate.
	peer, err := PreloadDegraded(topo, plan, DegradedOptions{
		TargetErr: fault.ErrReadOnly,
		Fallback:  FallbackPolicy{AllowPeer: true, AllowION: true},
	})
	if err != nil || peer.Outcome != PlacePeer {
		t.Fatalf("want peer placement: %v, %v", peer.Outcome, err)
	}
	if peer.EffectiveBps >= primary.EffectiveBps {
		t.Fatalf("peer path (%.0f) not degraded below primary (%.0f)",
			peer.EffectiveBps, primary.EffectiveBps)
	}
	if peer.Duration <= primary.Duration {
		t.Fatal("peer fallback not slower than primary placement")
	}

	// Both CN destinations down: retreat to the ION.
	ion, err := PreloadDegraded(topo, plan, DegradedOptions{
		TargetErr: fault.ErrReadOnly,
		PeerErr:   fault.ErrReadOnly,
		Fallback:  FallbackPolicy{AllowPeer: true, AllowION: true},
	})
	if err != nil || ion.Outcome != PlaceION {
		t.Fatalf("want ION placement: %v, %v", ion.Outcome, err)
	}

	// No fallback permitted: the preload fails, carrying the SSD error.
	failed, err := PreloadDegraded(topo, plan, DegradedOptions{TargetErr: fault.ErrReadOnly})
	if err == nil || failed.Outcome != PlaceFailed {
		t.Fatalf("want placement failure: %v, %v", failed.Outcome, err)
	}
	if !errors.Is(err, fault.ErrReadOnly) {
		t.Fatalf("failure must carry the SSD error, got %v", err)
	}
	for _, o := range []PlacementOutcome{PlacePrimary, PlacePeer, PlaceION, PlaceFailed} {
		if o.String() == "" {
			t.Fatal("unnamed placement outcome")
		}
	}
}

func TestDrainCheckpoint(t *testing.T) {
	topo := ComputeLocal()
	plan := CheckpointPlan{SnapshotBytes: 512 << 20}
	rec := attrib.NewRecorder(8)
	clean, err := DrainCheckpoint(topo, plan, DegradedOptions{Attrib: rec})
	if err != nil {
		t.Fatal(err)
	}
	if !clean.Transfer.Completed {
		t.Fatalf("clean drain incomplete: %+v", clean.Transfer)
	}
	if rec.Violations() != 0 {
		t.Fatalf("drain attribution violated %d times", rec.Violations())
	}
	// The far-end FC+RAID store must show up as die-service time.
	if rec.Summary().Totals[attrib.DieService] <= 0 {
		t.Fatal("checkpoint drain has no far-end store time")
	}
	// The FC attachment (~0.72 GB/s) bottlenecks the drain.
	if clean.Transfer.Goodput > topo.Storage.EffectiveBytesPerSec()*float64(topo.IONs)*1.01 {
		t.Fatalf("drain goodput %.0f beats the aggregate FC envelope", clean.Transfer.Goodput)
	}

	prof, _ := netfault.ForName("wan")
	wan, err := DrainCheckpoint(topo, plan, DegradedOptions{Profile: prof, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if wan.Duration <= clean.Duration {
		t.Fatal("wan-degraded drain not slower than clean")
	}
}

func TestDrainValidation(t *testing.T) {
	if _, err := DrainCheckpoint(ComputeLocal(), CheckpointPlan{}, DegradedOptions{}); err == nil {
		t.Fatal("zero snapshot accepted")
	}
	bad := ComputeLocal()
	bad.RAIDSets = 0
	if _, err := DrainCheckpoint(bad, CheckpointPlan{SnapshotBytes: 1}, DegradedOptions{}); err == nil {
		t.Fatal("invalid topology accepted")
	}
}

func TestCheckpointJournalGeometry(t *testing.T) {
	topo := ComputeLocal()
	j, err := CheckpointJournal(topo, CheckpointPlan{SnapshotBytes: 100 << 20, ChunkBytes: 16 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if j.Chunks() != 7 {
		t.Fatalf("journal has %d chunks, want 7", j.Chunks())
	}
}

package ssd

import (
	"strings"
	"testing"

	"oocnvm/internal/interconnect"
	"oocnvm/internal/nvm"
	"oocnvm/internal/obs"
	"oocnvm/internal/sim"
	"oocnvm/internal/trace"
)

func testConfig(cell nvm.CellType) Config {
	geo := nvm.PaperGeometry()
	cp := nvm.Params(cell)
	return Config{
		Geometry:   geo,
		Cell:       cp,
		Bus:        nvm.ONFi3SDR(),
		Link:       interconnect.Infinite{},
		Translator: Direct{Geo: geo, Cell: cp},
		Seed:       1,
	}
}

func newSSD(t *testing.T, cfg Config) *SSD {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewRequiresTranslator(t *testing.T) {
	cfg := testConfig(nvm.SLC)
	cfg.Translator = nil
	if _, err := New(cfg); err == nil {
		t.Fatal("nil translator accepted")
	}
}

func TestDefaultsApplied(t *testing.T) {
	s := newSSD(t, testConfig(nvm.SLC))
	if s.win.Depth() != DefaultQueueDepth {
		t.Fatalf("queue depth = %d, want default %d", s.win.Depth(), DefaultQueueDepth)
	}
	if s.hostOverhead != DefaultHostOverhead {
		t.Fatal("host overhead default not applied")
	}
}

func TestReplayAccountsDataBytes(t *testing.T) {
	s := newSSD(t, testConfig(nvm.SLC))
	res := s.Replay([]trace.BlockOp{
		{Kind: trace.Read, Offset: 0, Size: 1 << 20},
		{Kind: trace.Read, Offset: 1 << 20, Size: 1 << 20, Meta: true},
	})
	if res.DataBytes != 1<<20 {
		t.Fatalf("data bytes = %d; metadata must not count as application data", res.DataBytes)
	}
	if res.Bandwidth <= 0 || res.Elapsed <= 0 {
		t.Fatalf("degenerate result: %+v", res)
	}
	if res.MBps() != res.Bandwidth/1e6 {
		t.Fatal("MBps conversion wrong")
	}
}

func TestSyncBarrierOrdersRequests(t *testing.T) {
	// With a sync op between two reads, the second read cannot issue until
	// the sync completes; total elapsed must exceed the sum of a read and
	// the barrier's latency.
	async := newSSD(t, testConfig(nvm.TLC))
	r1 := async.Replay([]trace.BlockOp{
		{Kind: trace.Read, Offset: 0, Size: 64 << 10},
		{Kind: trace.Read, Offset: 10 << 20, Size: 4096},
		{Kind: trace.Read, Offset: 64 << 10, Size: 64 << 10},
	})
	barrier := newSSD(t, testConfig(nvm.TLC))
	r2 := barrier.Replay([]trace.BlockOp{
		{Kind: trace.Read, Offset: 0, Size: 64 << 10},
		{Kind: trace.Read, Offset: 10 << 20, Size: 4096, Sync: true},
		{Kind: trace.Read, Offset: 64 << 10, Size: 64 << 10},
	})
	if r2.Elapsed <= r1.Elapsed {
		t.Fatalf("sync barrier did not serialize: %v vs %v", r2.Elapsed, r1.Elapsed)
	}
}

func TestWindowBytesThrottles(t *testing.T) {
	run := func(window int64) sim.Time {
		cfg := testConfig(nvm.TLC)
		cfg.WindowBytes = window
		s := newSSD(t, cfg)
		var ops []trace.BlockOp
		for i := int64(0); i < 64; i++ {
			ops = append(ops, trace.BlockOp{Kind: trace.Read, Offset: i * (128 << 10), Size: 128 << 10})
		}
		return s.Replay(ops).Elapsed
	}
	narrow := run(128 << 10)
	wide := run(4 << 20)
	if narrow <= wide {
		t.Fatalf("narrow window (%v) not slower than wide (%v)", narrow, wide)
	}
}

func TestEraseKindRoutes(t *testing.T) {
	s := newSSD(t, testConfig(nvm.SLC))
	cell := nvm.Params(nvm.SLC)
	res := s.Replay([]trace.BlockOp{{Kind: trace.Erase, Offset: 0, Size: cell.BlockSize()}})
	if res.Stats.Erases == 0 {
		t.Fatal("erase op did not reach the device")
	}
}

func TestDirectReadMapping(t *testing.T) {
	geo := nvm.PaperGeometry()
	cell := nvm.Params(nvm.SLC)
	d := Direct{Geo: geo, Cell: cell}
	ops := d.Read(0, 4*cell.PageSize)
	if len(ops) != 4 {
		t.Fatalf("ops = %d, want 4", len(ops))
	}
	for i, op := range ops {
		want := geo.MapLogical(int64(i), cell.Planes)
		if op.Loc != want || op.Op != nvm.OpRead {
			t.Fatalf("op %d = %+v, want loc %+v", i, op, want)
		}
	}
	if d.Read(0, 0) != nil {
		t.Fatal("zero read not empty")
	}
}

func TestDirectWriteMapping(t *testing.T) {
	geo := nvm.PaperGeometry()
	cell := nvm.Params(nvm.MLC)
	d := Direct{Geo: geo, Cell: cell}
	ops := d.Write(cell.PageSize, cell.PageSize)
	if len(ops) != 1 || ops[0].Op != nvm.OpProgram {
		t.Fatalf("ops = %v", ops)
	}
}

func TestDirectEraseMapping(t *testing.T) {
	geo := nvm.PaperGeometry()
	cell := nvm.Params(nvm.SLC)
	d := Direct{Geo: geo, Cell: cell}
	ops := d.Erase(0, 2*cell.BlockSize())
	if len(ops) != 2 {
		t.Fatalf("erase ops = %d, want 2", len(ops))
	}
	for _, op := range ops {
		if op.Op != nvm.OpErase {
			t.Fatal("wrong verb")
		}
	}
	// Zero size defaults to one block.
	if got := len(d.Erase(0, 0)); got != 1 {
		t.Fatalf("default erase ops = %d, want 1", got)
	}
}

func TestDirectCapacityWraps(t *testing.T) {
	geo := nvm.PaperGeometry()
	cell := nvm.Params(nvm.SLC)
	d := Direct{Geo: geo, Cell: cell}
	// Reads past the end of the device wrap rather than exploding.
	ops := d.Read(d.CapacityBytes()-cell.PageSize, 2*cell.PageSize)
	if len(ops) != 2 {
		t.Fatalf("ops = %d", len(ops))
	}
}

func TestReplayDeterministic(t *testing.T) {
	mk := func() Result {
		s := newSSD(t, testConfig(nvm.MLC))
		var ops []trace.BlockOp
		for i := int64(0); i < 32; i++ {
			ops = append(ops, trace.BlockOp{Kind: trace.Read, Offset: i * (1 << 20), Size: 1 << 20})
			if i%8 == 7 {
				ops = append(ops, trace.BlockOp{Kind: trace.Write, Offset: 1 << 30, Size: 16 << 10, Meta: true})
			}
		}
		return s.Replay(ops)
	}
	a, b := mk(), mk()
	if a.Elapsed != b.Elapsed || a.Bandwidth != b.Bandwidth || a.Stats != b.Stats {
		t.Fatal("replay not deterministic")
	}
}

func TestBandwidthOrderingByMedium(t *testing.T) {
	// Under an identical big sequential workload, faster media are not
	// slower: PCM/SLC >= MLC >= TLC.
	bw := func(cell nvm.CellType) float64 {
		s := newSSD(t, testConfig(cell))
		var ops []trace.BlockOp
		for i := int64(0); i < 16; i++ {
			ops = append(ops, trace.BlockOp{Kind: trace.Read, Offset: i * (4 << 20), Size: 4 << 20})
		}
		return s.Replay(ops).Bandwidth
	}
	tlc, mlc, slc := bw(nvm.TLC), bw(nvm.MLC), bw(nvm.SLC)
	if tlc > mlc*1.01 || mlc > slc*1.01 {
		t.Fatalf("medium ordering violated: TLC %.0f MLC %.0f SLC %.0f", tlc/1e6, mlc/1e6, slc/1e6)
	}
}

// TestSubmitNopProbeZeroAllocs proves the disabled-observability hot path
// adds no allocations to SSD.Submit. Zero-size ops keep the translator and
// window heap out of the picture so the probe calls are the only suspects.
func TestSubmitNopProbeZeroAllocs(t *testing.T) {
	s := newSSD(t, testConfig(nvm.SLC))
	op := trace.BlockOp{Kind: trace.Read, Offset: 0, Size: 0}
	s.Submit(op) // warm the window heap
	allocs := testing.AllocsPerRun(1000, func() {
		s.Submit(op)
	})
	if allocs != 0 {
		t.Fatalf("Submit with no-op probe allocates %.1f per call", allocs)
	}
}

func TestProbeCollectsRequestMetrics(t *testing.T) {
	c := obs.NewCollector()
	cfg := testConfig(nvm.SLC)
	cfg.Probe = c
	s := newSSD(t, cfg)
	res := s.Replay([]trace.BlockOp{
		{Kind: trace.Read, Offset: 0, Size: 1 << 20},
		{Kind: trace.Write, Offset: 1 << 20, Size: 64 << 10, Meta: true},
	})
	if got := c.Reg.Counter("ssd.ops").Value(); got != 2 {
		t.Fatalf("ssd.ops = %d, want 2", got)
	}
	if got := c.Reg.Counter("ssd.data_bytes").Value(); got != 1<<20 {
		t.Fatalf("ssd.data_bytes = %d, want %d (meta excluded)", got, 1<<20)
	}
	if got := c.Reg.Histogram("ssd.request.latency").Count(); got != 2 {
		t.Fatalf("latency observations = %d, want 2", got)
	}
	if c.Tr.Len() == 0 {
		t.Fatal("no SSD request spans traced")
	}
	if got := c.Reg.Gauge("ssd.span_ps").Value(); got != float64(res.Elapsed) {
		t.Fatalf("ssd.span_ps gauge = %v, want %v", got, float64(res.Elapsed))
	}
	if got := c.Reg.Gauge("ssd.bandwidth_bps").Value(); got != res.Bandwidth {
		t.Fatalf("ssd.bandwidth_bps gauge = %v, want %v", got, res.Bandwidth)
	}
	// Device spans flow through the same probe.
	var sawNVM bool
	for _, sp := range c.Tr.Spans() {
		if sp.Layer == obs.LayerNVM {
			sawNVM = true
			break
		}
	}
	if !sawNVM {
		t.Fatal("device did not emit NVM-layer spans through the SSD probe")
	}
}

func TestResultString(t *testing.T) {
	s := newSSD(t, testConfig(nvm.SLC))
	res := s.Replay([]trace.BlockOp{{Kind: trace.Read, Offset: 0, Size: 1 << 20}})
	out := res.String()
	for _, want := range []string{"elapsed", "bandwidth", "media ops", "channel util", "bus occupancy"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Result.String missing %q:\n%s", want, out)
		}
	}
	if !strings.HasSuffix(out, "\n") {
		t.Fatal("Result.String must end with a newline")
	}
}

func TestFinishIdempotentAccumulation(t *testing.T) {
	s := newSSD(t, testConfig(nvm.SLC))
	s.Submit(trace.BlockOp{Kind: trace.Read, Offset: 0, Size: 1 << 20})
	r1 := s.Finish()
	s.Submit(trace.BlockOp{Kind: trace.Read, Offset: 1 << 20, Size: 1 << 20})
	r2 := s.Finish()
	if r2.DataBytes != 2<<20 {
		t.Fatalf("accumulated data bytes = %d", r2.DataBytes)
	}
	if r2.Elapsed <= r1.Elapsed {
		t.Fatal("second batch did not extend the span")
	}
}

package ssd

import (
	"errors"
	"strings"
	"testing"

	"oocnvm/internal/fault"
	"oocnvm/internal/ftl"
	"oocnvm/internal/interconnect"
	"oocnvm/internal/nvm"
	"oocnvm/internal/obs"
	"oocnvm/internal/obs/timeseries"
	"oocnvm/internal/sim"
	"oocnvm/internal/trace"
)

func testConfig(cell nvm.CellType) Config {
	geo := nvm.PaperGeometry()
	cp := nvm.Params(cell)
	return Config{
		Geometry:   geo,
		Cell:       cp,
		Bus:        nvm.ONFi3SDR(),
		Link:       interconnect.Infinite{},
		Translator: NewDirect(geo, cp),
		Seed:       1,
	}
}

func newSSD(t *testing.T, cfg Config) *SSD {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewRequiresTranslator(t *testing.T) {
	cfg := testConfig(nvm.SLC)
	cfg.Translator = nil
	if _, err := New(cfg); err == nil {
		t.Fatal("nil translator accepted")
	}
}

func TestDefaultsApplied(t *testing.T) {
	s := newSSD(t, testConfig(nvm.SLC))
	if s.win.Depth() != DefaultQueueDepth {
		t.Fatalf("queue depth = %d, want default %d", s.win.Depth(), DefaultQueueDepth)
	}
	if s.hostOverhead != DefaultHostOverhead {
		t.Fatal("host overhead default not applied")
	}
}

func TestReplayAccountsDataBytes(t *testing.T) {
	s := newSSD(t, testConfig(nvm.SLC))
	res := s.Replay([]trace.BlockOp{
		{Kind: trace.Read, Offset: 0, Size: 1 << 20},
		{Kind: trace.Read, Offset: 1 << 20, Size: 1 << 20, Meta: true},
	})
	if res.DataBytes != 1<<20 {
		t.Fatalf("data bytes = %d; metadata must not count as application data", res.DataBytes)
	}
	if res.Bandwidth <= 0 || res.Elapsed <= 0 {
		t.Fatalf("degenerate result: %+v", res)
	}
	if res.MBps() != res.Bandwidth/1e6 {
		t.Fatal("MBps conversion wrong")
	}
}

func TestSyncBarrierOrdersRequests(t *testing.T) {
	// With a sync op between two reads, the second read cannot issue until
	// the sync completes; total elapsed must exceed the sum of a read and
	// the barrier's latency.
	async := newSSD(t, testConfig(nvm.TLC))
	r1 := async.Replay([]trace.BlockOp{
		{Kind: trace.Read, Offset: 0, Size: 64 << 10},
		{Kind: trace.Read, Offset: 10 << 20, Size: 4096},
		{Kind: trace.Read, Offset: 64 << 10, Size: 64 << 10},
	})
	barrier := newSSD(t, testConfig(nvm.TLC))
	r2 := barrier.Replay([]trace.BlockOp{
		{Kind: trace.Read, Offset: 0, Size: 64 << 10},
		{Kind: trace.Read, Offset: 10 << 20, Size: 4096, Sync: true},
		{Kind: trace.Read, Offset: 64 << 10, Size: 64 << 10},
	})
	if r2.Elapsed <= r1.Elapsed {
		t.Fatalf("sync barrier did not serialize: %v vs %v", r2.Elapsed, r1.Elapsed)
	}
}

func TestWindowBytesThrottles(t *testing.T) {
	run := func(window int64) sim.Time {
		cfg := testConfig(nvm.TLC)
		cfg.WindowBytes = window
		s := newSSD(t, cfg)
		var ops []trace.BlockOp
		for i := int64(0); i < 64; i++ {
			ops = append(ops, trace.BlockOp{Kind: trace.Read, Offset: i * (128 << 10), Size: 128 << 10})
		}
		return s.Replay(ops).Elapsed
	}
	narrow := run(128 << 10)
	wide := run(4 << 20)
	if narrow <= wide {
		t.Fatalf("narrow window (%v) not slower than wide (%v)", narrow, wide)
	}
}

func TestEraseKindRoutes(t *testing.T) {
	s := newSSD(t, testConfig(nvm.SLC))
	cell := nvm.Params(nvm.SLC)
	res := s.Replay([]trace.BlockOp{{Kind: trace.Erase, Offset: 0, Size: cell.BlockSize()}})
	if res.Stats.Erases == 0 {
		t.Fatal("erase op did not reach the device")
	}
}

func TestDirectReadMapping(t *testing.T) {
	geo := nvm.PaperGeometry()
	cell := nvm.Params(nvm.SLC)
	d := NewDirect(geo, cell)
	ops := d.Read(0, 4*cell.PageSize)
	if len(ops) != 4 {
		t.Fatalf("ops = %d, want 4", len(ops))
	}
	for i, op := range ops {
		want := geo.MapLogical(int64(i), cell.Planes)
		if op.Loc != want || op.Op != nvm.OpRead {
			t.Fatalf("op %d = %+v, want loc %+v", i, op, want)
		}
	}
	if d.Read(0, 0) != nil {
		t.Fatal("zero read not empty")
	}
}

func TestDirectWriteMapping(t *testing.T) {
	geo := nvm.PaperGeometry()
	cell := nvm.Params(nvm.MLC)
	d := NewDirect(geo, cell)
	ops := d.Write(cell.PageSize, cell.PageSize)
	if len(ops) != 1 || ops[0].Op != nvm.OpProgram {
		t.Fatalf("ops = %v", ops)
	}
}

func TestDirectEraseMapping(t *testing.T) {
	geo := nvm.PaperGeometry()
	cell := nvm.Params(nvm.SLC)
	d := NewDirect(geo, cell)
	ops := d.Erase(0, 2*cell.BlockSize())
	if len(ops) != 2 {
		t.Fatalf("erase ops = %d, want 2", len(ops))
	}
	for _, op := range ops {
		if op.Op != nvm.OpErase {
			t.Fatal("wrong verb")
		}
	}
	// Zero size defaults to one block.
	if got := len(d.Erase(0, 0)); got != 1 {
		t.Fatalf("default erase ops = %d, want 1", got)
	}
}

func TestDirectCapacityWraps(t *testing.T) {
	geo := nvm.PaperGeometry()
	cell := nvm.Params(nvm.SLC)
	d := NewDirect(geo, cell)
	// Reads past the end of the device wrap rather than exploding.
	ops := d.Read(d.CapacityBytes()-cell.PageSize, 2*cell.PageSize)
	if len(ops) != 2 {
		t.Fatalf("ops = %d", len(ops))
	}
}

func TestReplayDeterministic(t *testing.T) {
	mk := func() Result {
		s := newSSD(t, testConfig(nvm.MLC))
		var ops []trace.BlockOp
		for i := int64(0); i < 32; i++ {
			ops = append(ops, trace.BlockOp{Kind: trace.Read, Offset: i * (1 << 20), Size: 1 << 20})
			if i%8 == 7 {
				ops = append(ops, trace.BlockOp{Kind: trace.Write, Offset: 1 << 30, Size: 16 << 10, Meta: true})
			}
		}
		return s.Replay(ops)
	}
	a, b := mk(), mk()
	if a.Elapsed != b.Elapsed || a.Bandwidth != b.Bandwidth || a.Stats != b.Stats {
		t.Fatal("replay not deterministic")
	}
}

func TestBandwidthOrderingByMedium(t *testing.T) {
	// Under an identical big sequential workload, faster media are not
	// slower: PCM/SLC >= MLC >= TLC.
	bw := func(cell nvm.CellType) float64 {
		s := newSSD(t, testConfig(cell))
		var ops []trace.BlockOp
		for i := int64(0); i < 16; i++ {
			ops = append(ops, trace.BlockOp{Kind: trace.Read, Offset: i * (4 << 20), Size: 4 << 20})
		}
		return s.Replay(ops).Bandwidth
	}
	tlc, mlc, slc := bw(nvm.TLC), bw(nvm.MLC), bw(nvm.SLC)
	if tlc > mlc*1.01 || mlc > slc*1.01 {
		t.Fatalf("medium ordering violated: TLC %.0f MLC %.0f SLC %.0f", tlc/1e6, mlc/1e6, slc/1e6)
	}
}

// TestSubmitNopProbeZeroAllocs proves the disabled-observability hot path
// adds no allocations to SSD.Submit. Zero-size ops keep the translator and
// window heap out of the picture so the probe calls are the only suspects.
func TestSubmitNopProbeZeroAllocs(t *testing.T) {
	s := newSSD(t, testConfig(nvm.SLC))
	op := trace.BlockOp{Kind: trace.Read, Offset: 0, Size: 0}
	s.Submit(op) // warm the window heap
	allocs := testing.AllocsPerRun(1000, func() {
		s.Submit(op)
	})
	if allocs != 0 {
		t.Fatalf("Submit with no-op probe allocates %.1f per call", allocs)
	}
}

func TestProbeCollectsRequestMetrics(t *testing.T) {
	c := obs.NewCollector()
	cfg := testConfig(nvm.SLC)
	cfg.Probe = c
	s := newSSD(t, cfg)
	res := s.Replay([]trace.BlockOp{
		{Kind: trace.Read, Offset: 0, Size: 1 << 20},
		{Kind: trace.Write, Offset: 1 << 20, Size: 64 << 10, Meta: true},
	})
	if got := c.Reg.Counter("ssd.ops").Value(); got != 2 {
		t.Fatalf("ssd.ops = %d, want 2", got)
	}
	if got := c.Reg.Counter("ssd.data_bytes").Value(); got != 1<<20 {
		t.Fatalf("ssd.data_bytes = %d, want %d (meta excluded)", got, 1<<20)
	}
	if got := c.Reg.Histogram("ssd.request.latency").Count(); got != 2 {
		t.Fatalf("latency observations = %d, want 2", got)
	}
	if c.Tr.Len() == 0 {
		t.Fatal("no SSD request spans traced")
	}
	if got := c.Reg.Gauge("ssd.span_ps").Value(); got != float64(res.Elapsed) {
		t.Fatalf("ssd.span_ps gauge = %v, want %v", got, float64(res.Elapsed))
	}
	if got := c.Reg.Gauge("ssd.bandwidth_bps").Value(); got != res.Bandwidth {
		t.Fatalf("ssd.bandwidth_bps gauge = %v, want %v", got, res.Bandwidth)
	}
	// Device spans flow through the same probe.
	var sawNVM bool
	for _, sp := range c.Tr.Spans() {
		if sp.Layer == obs.LayerNVM {
			sawNVM = true
			break
		}
	}
	if !sawNVM {
		t.Fatal("device did not emit NVM-layer spans through the SSD probe")
	}
}

func TestResultString(t *testing.T) {
	s := newSSD(t, testConfig(nvm.SLC))
	res := s.Replay([]trace.BlockOp{{Kind: trace.Read, Offset: 0, Size: 1 << 20}})
	out := res.String()
	for _, want := range []string{"elapsed", "bandwidth", "media ops", "channel util", "bus occupancy"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Result.String missing %q:\n%s", want, out)
		}
	}
	if !strings.HasSuffix(out, "\n") {
		t.Fatal("Result.String must end with a newline")
	}
}

func TestFinishIdempotentAccumulation(t *testing.T) {
	s := newSSD(t, testConfig(nvm.SLC))
	s.Submit(trace.BlockOp{Kind: trace.Read, Offset: 0, Size: 1 << 20})
	r1 := s.Finish()
	s.Submit(trace.BlockOp{Kind: trace.Read, Offset: 1 << 20, Size: 1 << 20})
	r2 := s.Finish()
	if r2.DataBytes != 2<<20 {
		t.Fatalf("accumulated data bytes = %d", r2.DataBytes)
	}
	if r2.Elapsed <= r1.Elapsed {
		t.Fatal("second batch did not extend the span")
	}
}

func TestSubmitOutOfRangeTypedError(t *testing.T) {
	s := newSSD(t, testConfig(nvm.SLC))
	cap := s.trans.CapacityBytes()
	for _, op := range []trace.BlockOp{
		{Kind: trace.Read, Offset: cap, Size: 4096},
		{Kind: trace.Read, Offset: cap - 4096, Size: 8192},
		{Kind: trace.Write, Offset: -4096, Size: 4096},
		{Kind: trace.Erase, Offset: 0, Size: -1},
	} {
		before := s.Dev.Stats()
		at, err := s.Submit(op)
		if !errors.Is(err, ErrOutOfRange) {
			t.Fatalf("Submit(%+v) error = %v, want ErrOutOfRange", op, err)
		}
		if at != s.clock {
			t.Fatal("rejected op advanced time")
		}
		if after := s.Dev.Stats(); after.Reads != before.Reads || after.Programs != before.Programs {
			t.Fatalf("rejected op touched the media: %+v", op)
		}
	}
	// The error is sticky and retrievable after a batch replay.
	if s.Err() == nil {
		t.Fatal("Err() lost the rejection")
	}
	// In-range ops at the exact boundary still work.
	s2 := newSSD(t, testConfig(nvm.SLC))
	if _, err := s2.Submit(trace.BlockOp{Kind: trace.Read, Offset: cap - 4096, Size: 4096}); err != nil {
		t.Fatalf("boundary op rejected: %v", err)
	}
}

func faultedConfig(t *testing.T, cell nvm.CellType, prof fault.Profile, spares int64) Config {
	t.Helper()
	cfg := testConfig(cell)
	fc := nvm.FaultConfig(cfg.Geometry, cfg.Cell, prof, cfg.Seed)
	fc.SpareBlocks = spares
	inj, err := fault.New(fc)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Fault = inj
	return cfg
}

// TestZeroFaultProfileBitIdentical is the reproducibility acceptance test:
// attaching a zeroed fault profile must leave a replay bit-identical to a
// run with no injector at all — same elapsed picoseconds, same stats, same
// latency percentiles.
func TestZeroFaultProfileBitIdentical(t *testing.T) {
	mkOps := func() []trace.BlockOp {
		var ops []trace.BlockOp
		for i := int64(0); i < 24; i++ {
			ops = append(ops, trace.BlockOp{Kind: trace.Read, Offset: i * (1 << 20), Size: 1 << 20})
			if i%6 == 5 {
				ops = append(ops, trace.BlockOp{Kind: trace.Write, Offset: i << 19, Size: 64 << 10, Sync: i%12 == 11})
			}
		}
		return ops
	}
	bare := newSSD(t, testConfig(nvm.MLC))
	r1 := bare.Replay(mkOps())
	l1 := bare.Dev.Latency()

	zeroed := newSSD(t, faultedConfig(t, nvm.MLC, fault.Profile{Name: "none"}, 0))
	if zeroed.faults != nil {
		t.Fatal("disabled injector was attached to the drive")
	}
	r2 := zeroed.Replay(mkOps())
	l2 := zeroed.Dev.Latency()

	if r1.Elapsed != r2.Elapsed || r1.Stats != r2.Stats || r1.Bandwidth != r2.Bandwidth {
		t.Fatalf("zeroed profile perturbed the replay:\n%+v\nvs\n%+v", r1, r2)
	}
	if l1 != l2 {
		t.Fatalf("zeroed profile perturbed latency percentiles: %+v vs %+v", l1, l2)
	}
	if r2.Faults != (fault.Counts{}) {
		t.Fatalf("zeroed profile counted faults: %+v", r2.Faults)
	}
}

// TestEOLFaultCountersDeterministic is the end-of-life acceptance test: a
// TLC drive on the eol profile must show corrected, retried AND
// uncorrectable reads, charge retry latency into the device's stage
// histograms, surface the typed uncorrectable error — and do all of it
// bit-identically for a fixed seed.
func TestEOLFaultCountersDeterministic(t *testing.T) {
	prof, err := fault.ForName("eol")
	if err != nil {
		t.Fatal(err)
	}
	run := func() (Result, error, int64) {
		c := obs.NewCollector()
		cfg := faultedConfig(t, nvm.TLC, prof, 0)
		cfg.Probe = c
		s := newSSD(t, cfg)
		var ops []trace.BlockOp
		for i := int64(0); i < 48; i++ {
			ops = append(ops, trace.BlockOp{Kind: trace.Read, Offset: i * (1 << 20), Size: 512 << 10})
		}
		res := s.Replay(ops)
		c.Reg.Absorb(s.Dev.Registry())
		return res, s.Err(), c.Reg.Histogram("nvm.read.retry").Count()
	}
	res, firstErr, retryObs := run()
	f := res.Faults
	if f.Corrected == 0 || f.Retried == 0 || f.Uncorrectable == 0 {
		t.Fatalf("EOL run missing a read class: %+v", f)
	}
	if f.Reads != f.Clean+f.Corrected+f.Retried+f.Uncorrectable {
		t.Fatalf("read classes don't sum: %+v", f)
	}
	if retryObs == 0 {
		t.Fatal("retry latency never reached the nvm.read.retry histogram")
	}
	if !errors.Is(firstErr, fault.ErrUncorrectable) {
		t.Fatalf("first error = %v, want ErrUncorrectable", firstErr)
	}
	for _, want := range []string{"fault reads", "corrected", "uncorrectable"} {
		if !strings.Contains(res.String(), want) {
			t.Fatalf("Result.String missing %q:\n%s", want, res)
		}
	}
	res2, _, retryObs2 := run()
	if res.Elapsed != res2.Elapsed || res.Faults != res2.Faults || retryObs != retryObs2 {
		t.Fatalf("EOL replay not deterministic:\n%+v\nvs\n%+v", res.Faults, res2.Faults)
	}
}

// TestSparesExhaustedReadOnly is the graceful-degradation acceptance test:
// with every program failing and a tiny spare budget, writes must grow bad
// blocks, exhaust the spares, flip the drive to read-only, and surface the
// typed error — while reads keep completing.
func TestSparesExhaustedReadOnly(t *testing.T) {
	prof := fault.Profile{Name: "killer", ProgramFailProb: 1}
	cfg := faultedConfig(t, nvm.SLC, prof, 2)
	s := newSSD(t, cfg)
	var roErr error
	for i := int64(0); i < 64 && roErr == nil; i++ {
		_, err := s.Submit(trace.BlockOp{Kind: trace.Write, Offset: i * 4096, Size: 4096})
		if errors.Is(err, fault.ErrReadOnly) {
			roErr = err
		}
	}
	if roErr == nil {
		t.Fatal("drive never degraded to read-only")
	}
	res := s.Finish()
	if !res.Faults.ReadOnly || res.Faults.SparesLeft != 0 {
		t.Fatalf("degradation state: %+v", res.Faults)
	}
	if res.Faults.GrownBadBlocks == 0 || res.Faults.ProgramFailures == 0 {
		t.Fatalf("no grown-bad bookkeeping: %+v", res.Faults)
	}
	// Reads still flow on a read-only drive.
	if _, err := s.Submit(trace.BlockOp{Kind: trace.Read, Offset: 0, Size: 4096}); err != nil {
		t.Fatalf("read rejected on read-only drive: %v", err)
	}
	// Writes keep being refused, and the refusals are counted.
	if _, err := s.Submit(trace.BlockOp{Kind: trace.Write, Offset: 0, Size: 4096}); !errors.Is(err, fault.ErrReadOnly) {
		t.Fatalf("write on read-only drive: %v", err)
	}
	if s.Finish().Faults.RejectedOps == 0 {
		t.Fatal("rejected writes not counted")
	}
	if !errors.Is(s.Err(), fault.ErrReadOnly) && !errors.Is(s.Err(), fault.ErrUncorrectable) {
		t.Fatalf("sticky error = %v", s.Err())
	}
	if !strings.Contains(res.String(), "READ-ONLY") {
		t.Fatalf("Result.String hides the read-only state:\n%s", res)
	}
}

// TestFTLGrownBadEndToEnd drives writes through the full FTL stack with an
// aggressive failure profile and checks superblock retirement happens and
// the replay stays deterministic.
func TestFTLGrownBadEndToEnd(t *testing.T) {
	prof := fault.Profile{Name: "flaky", ProgramFailProb: 0.002}
	run := func() (Result, ftl.Stats) {
		cfg := testConfig(nvm.SLC)
		f, err := ftl.New(cfg.Geometry, cfg.Cell, ftl.Config{})
		if err != nil {
			t.Fatal(err)
		}
		cfg.Translator = f
		fc := nvm.FaultConfig(cfg.Geometry, cfg.Cell, prof, cfg.Seed)
		fc.SpareBlocks = 64
		inj, err := fault.New(fc)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Fault = inj
		s := newSSD(t, cfg)
		var ops []trace.BlockOp
		for i := int64(0); i < 256; i++ {
			ops = append(ops, trace.BlockOp{Kind: trace.Write, Offset: (i % 64) * (256 << 10), Size: 256 << 10})
		}
		return s.Replay(ops), f.Stats()
	}
	res, st := run()
	if res.Faults.ProgramFailures == 0 || res.Faults.GrownBadBlocks == 0 {
		t.Fatalf("no failures injected: %+v", res.Faults)
	}
	if st.GrownBadSuper == 0 {
		t.Fatalf("FTL retired no superblocks: %+v", st)
	}
	res2, st2 := run()
	if res.Elapsed != res2.Elapsed || res.Faults != res2.Faults || st != st2 {
		t.Fatal("faulted FTL replay not deterministic")
	}
}

func TestDirectRetireRemapsBlock(t *testing.T) {
	geo := nvm.PaperGeometry()
	cell := nvm.Params(nvm.SLC)
	d := NewDirect(geo, cell)
	identity := d.Read(0, cell.PageSize)[0].PPN
	r := d.RetireBlock(identity)
	if !r.OK || !r.Retired {
		t.Fatalf("retire failed: %+v", r)
	}
	// The copy-out traffic covers the whole eraseblock, reads then programs.
	if int64(len(r.Ops)) != 2*int64(cell.PagesPerBlock) {
		t.Fatalf("relocation ops = %d, want %d", len(r.Ops), 2*cell.PagesPerBlock)
	}
	// The logical page now resolves into the spare region at the top.
	moved := d.Read(0, cell.PageSize)[0].PPN
	if moved == identity {
		t.Fatal("retired block still addressed")
	}
	if d.blockOf(moved) != d.totalBlocks()-1 {
		t.Fatalf("remap landed on block %d, want top spare %d", d.blockOf(moved), d.totalBlocks()-1)
	}
	// Retiring the same logical block again: already bad, no-op.
	if r2 := d.RetireBlock(identity); !r2.OK || r2.Retired {
		t.Fatalf("re-retire of bad block: %+v", r2)
	}
	// Chained failure: the spare itself dies; the logical block must follow
	// to the next spare, not a remap-of-a-remap.
	r3 := d.RetireBlock(moved)
	if !r3.OK || !r3.Retired {
		t.Fatalf("spare retire failed: %+v", r3)
	}
	again := d.Read(0, cell.PageSize)[0].PPN
	if d.blockOf(again) != d.totalBlocks()-2 {
		t.Fatalf("chained remap landed on block %d, want %d", d.blockOf(again), d.totalBlocks()-2)
	}
	// Writes and erases follow the same indirection.
	if w := d.Write(0, cell.PageSize)[0].PPN; w != again {
		t.Fatalf("write PPN %d diverges from read PPN %d", w, again)
	}
	if e := d.Erase(0, cell.BlockSize())[0].PPN; d.blockOf(e) != d.blockOf(again) {
		t.Fatal("erase not redirected")
	}
}

func TestDirectSpareExhaustion(t *testing.T) {
	geo := nvm.Geometry{Channels: 2, PackagesPerChannel: 1, DiesPerPackage: 2, BlocksPerPlane: 40}
	cell := nvm.Params(nvm.SLC)
	d := NewDirect(geo, cell)
	retired := 0
	for b := int64(0); b < d.totalBlocks(); b++ {
		r := d.RetireBlock(d.pageIn(b, 0))
		if !r.OK {
			break
		}
		if r.Retired {
			retired++
		}
	}
	if retired != DirectSpareBlocks {
		t.Fatalf("retired %d blocks, want the %d-block spare region", retired, DirectSpareBlocks)
	}
}

func TestZeroValueDirectCannotRetire(t *testing.T) {
	d := Direct{Geo: nvm.PaperGeometry(), Cell: nvm.Params(nvm.SLC)}
	if r := d.RetireBlock(0); r.OK || r.Retired {
		t.Fatalf("zero-value Direct retired a block: %+v", r)
	}
}

func TestSamplerRecordsStackSeries(t *testing.T) {
	geo := nvm.PaperGeometry()
	cp := nvm.Params(nvm.TLC)
	f, err := ftl.New(geo, cp, ftl.Config{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(nvm.TLC)
	cfg.Link = interconnect.NewPCIeLine(interconnect.PCIeConfig{Gen: interconnect.PCIeGen3, Lanes: 4})
	cfg.Translator = f
	cfg.Sampler = timeseries.NewSampler(10*sim.Microsecond, 64)
	s := newSSD(t, cfg)

	var ops []trace.BlockOp
	for i := int64(0); i < 64; i++ {
		ops = append(ops, trace.BlockOp{Kind: trace.Write, Offset: i * (256 << 10), Size: 256 << 10})
		ops = append(ops, trace.BlockOp{Kind: trace.Read, Offset: i * (256 << 10), Size: 256 << 10})
	}
	s.Replay(ops)

	if cfg.Sampler.Len() == 0 {
		t.Fatal("sampler took no samples over a multi-op replay")
	}
	got := make(map[string]bool)
	for _, n := range cfg.Sampler.SeriesNames() {
		got[n] = true
	}
	for _, want := range []string{
		"nvm.channel_util", "nvm.die_util", "interconnect.link_occupancy",
		"ssd.queue_depth", "ssd.throughput_bps", "ssd.ops",
		"ftl.gc_runs", "ftl.write_amplification",
	} {
		if !got[want] {
			t.Errorf("missing series %q (have %v)", want, cfg.Sampler.SeriesNames())
		}
	}
	// The device did real work, so utilization and op series cannot be flat
	// zero everywhere.
	for _, sr := range cfg.Sampler.Dump().Series {
		if sr.Name != "ssd.ops" {
			continue
		}
		sum := 0.0
		for _, p := range sr.Points {
			sum += p.Value
		}
		if sum != float64(len(ops)) {
			t.Errorf("ssd.ops series sums to %v, want %d", sum, len(ops))
		}
	}
}

func TestSamplerOffLeavesResultsIdentical(t *testing.T) {
	run := func(sample bool) Result {
		cfg := testConfig(nvm.TLC)
		if sample {
			cfg.Sampler = timeseries.NewSampler(sim.Microsecond, 32)
		}
		s := newSSD(t, cfg)
		var ops []trace.BlockOp
		for i := int64(0); i < 32; i++ {
			ops = append(ops, trace.BlockOp{Kind: trace.Read, Offset: i * (1 << 20), Size: 1 << 20})
		}
		return s.Replay(ops)
	}
	off, on := run(false), run(true)
	if off.Elapsed != on.Elapsed || off.Bandwidth != on.Bandwidth {
		t.Fatalf("sampling changed the simulation: off=%+v on=%+v", off, on)
	}
}

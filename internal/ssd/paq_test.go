package ssd

import (
	"testing"

	"oocnvm/internal/nvm"
	"oocnvm/internal/sim"
	"oocnvm/internal/trace"
)

// conflictTrace builds small random reads that repeatedly collide on a few
// dies — the workload PAQ exists for.
func conflictTrace(cell nvm.CellParams, n int, seed uint64) []trace.BlockOp {
	rng := sim.NewRNG(seed)
	geo := nvm.PaperGeometry()
	// Row stride: consecutive pages that land on the same die repeat every
	// Channels*Planes*DiesPerChannel pages; offsets chosen from only four
	// die rows create heavy conflicts.
	row := int64(geo.Channels*cell.Planes*geo.DiesPerChannel()) * cell.PageSize
	ops := make([]trace.BlockOp, n)
	for i := range ops {
		ops[i] = trace.BlockOp{
			Kind:   trace.Read,
			Offset: rng.Int63n(4) * row * 64,
			Size:   cell.PageSize,
		}
	}
	return ops
}

func TestPAQNeverSlowerThanFIFO(t *testing.T) {
	cell := nvm.Params(nvm.TLC)
	ops := conflictTrace(cell, 512, 3)

	fifo := newSSD(t, testConfig(nvm.TLC))
	fifoRes := fifo.Replay(ops)

	reordered := newSSD(t, testConfig(nvm.TLC))
	paq := NewPAQ(reordered, 32)
	paqRes := paq.Replay(ops)

	if paqRes.Elapsed > fifoRes.Elapsed {
		t.Fatalf("PAQ (%v) slower than FIFO (%v) on a conflict-heavy trace",
			paqRes.Elapsed, fifoRes.Elapsed)
	}
	if paqRes.DataBytes != fifoRes.DataBytes {
		t.Fatal("PAQ lost or duplicated data")
	}
}

func TestPAQImprovesConflictedWorkload(t *testing.T) {
	// Mix conflicted ops with independent ones: reordering should produce a
	// measurable win (independent requests overtake the die-blocked queue).
	cell := nvm.Params(nvm.TLC)
	geo := nvm.PaperGeometry()
	// With channel-first striping the die index advances every
	// Channels*Planes pages: this stride moves to the next die on the same
	// channel.
	dieStride := int64(geo.Channels*cell.Planes) * cell.PageSize
	// Bursty arrival: runs of same-die requests followed by runs on another
	// die. In arrival order a shallow queue serializes each burst while the
	// other die idles; a reordering window interleaves the bursts.
	var ops []trace.BlockOp
	for burst := 0; burst < 16; burst++ {
		die := int64(burst % 2)
		for i := 0; i < 16; i++ {
			ops = append(ops, trace.BlockOp{Kind: trace.Read, Offset: die * dieStride, Size: cell.PageSize})
		}
	}
	// A shallow device queue makes head-of-line blocking real: FIFO stalls
	// independent requests behind the conflicted ones, PAQ lets them pass.
	cfg := testConfig(nvm.TLC)
	cfg.QueueDepth = 2
	fifo := newSSD(t, cfg)
	fifoRes := fifo.Replay(ops)
	reordered := newSSD(t, cfg)
	paqRes := NewPAQ(reordered, 32).Replay(ops)
	if float64(paqRes.Elapsed) > 0.98*float64(fifoRes.Elapsed) {
		t.Fatalf("PAQ %v vs FIFO %v; expected a reordering win", paqRes.Elapsed, fifoRes.Elapsed)
	}
}

func TestPAQPreservesAllOperations(t *testing.T) {
	cell := nvm.Params(nvm.SLC)
	ops := conflictTrace(cell, 100, 7)
	s := newSSD(t, testConfig(nvm.SLC))
	res := NewPAQ(s, 16).Replay(ops)
	if res.Stats.Reads != 100 {
		t.Fatalf("reads = %d, want 100", res.Stats.Reads)
	}
}

func TestPAQSyncActsAsBarrier(t *testing.T) {
	cell := nvm.Params(nvm.SLC)
	s := newSSD(t, testConfig(nvm.SLC))
	q := NewPAQ(s, 8)
	q.Submit(trace.BlockOp{Kind: trace.Read, Offset: 0, Size: cell.PageSize})
	q.Submit(trace.BlockOp{Kind: trace.Read, Offset: 4 << 20, Size: cell.PageSize})
	// A sync op must flush the pending window before dispatching.
	q.Submit(trace.BlockOp{Kind: trace.Read, Offset: 8 << 20, Size: 4096, Sync: true, Meta: true})
	if len(q.pending) != 0 {
		t.Fatal("sync did not flush the window")
	}
	res := q.Finish()
	if res.Stats.Reads < 3 {
		t.Fatalf("reads = %d", res.Stats.Reads)
	}
}

func TestPAQDepthOneIsFIFO(t *testing.T) {
	cell := nvm.Params(nvm.MLC)
	ops := conflictTrace(cell, 64, 9)
	a := newSSD(t, testConfig(nvm.MLC))
	fifoRes := a.Replay(ops)
	b := newSSD(t, testConfig(nvm.MLC))
	paqRes := NewPAQ(b, 1).Replay(ops)
	if fifoRes.Elapsed != paqRes.Elapsed {
		t.Fatalf("depth-1 PAQ (%v) diverged from FIFO (%v)", paqRes.Elapsed, fifoRes.Elapsed)
	}
	// Degenerate depths normalize.
	if NewPAQ(b, -2).depth != 1 {
		t.Fatal("negative depth not normalized")
	}
}

func TestPAQDeterministic(t *testing.T) {
	cell := nvm.Params(nvm.TLC)
	ops := conflictTrace(cell, 200, 11)
	run := func() Result {
		s := newSSD(t, testConfig(nvm.TLC))
		return NewPAQ(s, 24).Replay(ops)
	}
	a, b := run(), run()
	if a.Elapsed != b.Elapsed || a.Stats != b.Stats {
		t.Fatal("PAQ replay not deterministic")
	}
}

func TestPAQWithFTLDoesNotCorruptMapping(t *testing.T) {
	// The cost probe must be side-effect-free: a PAQ over an FTL replays
	// writes identically to the unwrapped FTL path.
	cell := nvm.Params(nvm.SLC)
	ops := []trace.BlockOp{
		{Kind: trace.Write, Offset: 0, Size: 4 * cell.PageSize},
		{Kind: trace.Read, Offset: 0, Size: 4 * cell.PageSize},
		{Kind: trace.Write, Offset: 10 * cell.PageSize, Size: 2 * cell.PageSize},
		{Kind: trace.Read, Offset: 10 * cell.PageSize, Size: 2 * cell.PageSize},
	}
	s := newSSD(t, testConfig(nvm.SLC))
	res := NewPAQ(s, 4).Replay(ops)
	if res.Stats.Programs != 6 || res.Stats.Reads != 6 {
		t.Fatalf("programs=%d reads=%d, want 6 and 6", res.Stats.Programs, res.Stats.Reads)
	}
}

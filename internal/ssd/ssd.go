// Package ssd assembles a complete solid-state drive from the substrate
// packages: an nvm.Device (channels, dies, cell timings), a translation
// layer (the conventional FTL or UFS's direct mapping), a host queue of
// bounded depth, and the host-side link. Its Replay method drives a captured
// block trace through the stack and reports the measurements the paper's
// evaluation charts are built from.
package ssd

import (
	"errors"
	"fmt"
	"strings"
	"text/tabwriter"

	"oocnvm/internal/fault"
	"oocnvm/internal/nvm"
	"oocnvm/internal/obs"
	"oocnvm/internal/obs/attrib"
	"oocnvm/internal/obs/hostperf"
	"oocnvm/internal/obs/timeseries"
	"oocnvm/internal/pool"
	"oocnvm/internal/sim"
	"oocnvm/internal/trace"
)

// ErrOutOfRange is returned (wrapped) by Submit for block operations that
// reach beyond the translator's capacity instead of silently wrapping them
// onto unrelated pages.
var ErrOutOfRange = errors.New("ssd: request outside device capacity")

// Translator maps byte-addressed block operations to NVM page operations.
type Translator interface {
	Read(offset, size int64) []nvm.PageOp
	Write(offset, size int64) []nvm.PageOp
	Erase(offset, size int64) []nvm.PageOp
	PageSize() int64
	CapacityBytes() int64
}

// BlockRetirer is implemented by translators that can retire a grown-bad
// block and relocate its still-valid data (the FTL, and Direct via its
// bad-block remap table). The controller calls it when the fault injector
// reports a program or erase failure.
type BlockRetirer interface {
	RetireBlock(ppn int64) nvm.Retirement
}

// OpPooler is implemented by translators that can borrow the page-op slices
// their host-facing translations return from a per-drive free list. The
// drive attaches its pool at construction and releases each translation's
// slice once the request's scheduling is complete; the requests are strictly
// serial (one goroutine per drive, single outstanding translation), so at
// most one borrow is live at a time.
type OpPooler interface {
	SetOpPool(p *pool.Buffers[nvm.PageOp])
	ReleaseOps(ops []nvm.PageOp)
}

// DirectSpareBlocks is the eraseblock count Direct reserves at the top of
// the address space as grown-bad replacements. The effective degradation
// policy is the fault injector's (usually smaller) spare budget; this bound
// only stops the remap table from growing without limit.
const DirectSpareBlocks = 64

// Direct is UFS's translation: identity page-striped mapping with no
// remapping layer — except for grown-bad blocks, which are remapped onto
// spare eraseblocks reserved at the top of the address space so the UFS
// path gets the same bad-block indirection the FTL path has. The host (UFS)
// is responsible for erase-before-write; the device executes exactly what
// it is told.
type Direct struct {
	Geo  nvm.Geometry
	Cell nvm.CellParams

	remap     map[int64]int64 // logical eraseblock -> replacement block
	bad       map[int64]bool  // physically retired blocks
	nextSpare int64           // next spare block id, counting down

	tap nvm.MappingTap

	// opPool recycles translation slices when the drive attaches its free
	// list; opRef is the (single) live borrow. See OpPooler.
	opPool *pool.Buffers[nvm.PageOp]
	opRef  pool.Ref[nvm.PageOp]
}

// SetOpPool implements OpPooler: subsequent translations borrow their slices
// from the drive's free list.
func (d *Direct) SetOpPool(p *pool.Buffers[nvm.PageOp]) { d.opPool = p }

// takeOps returns the slice a translation builds into: a pooled borrow when
// the drive attached a free list, a fresh allocation otherwise.
func (d *Direct) takeOps(hint int) []nvm.PageOp {
	if d.opPool == nil {
		return make([]nvm.PageOp, 0, hint)
	}
	d.opRef = d.opPool.Get(hint)
	return d.opRef.Slice()
}

// ReleaseOps implements OpPooler: the translation slice (and any aliases)
// must not be touched after release. Never-borrowed slices are ignored.
func (d *Direct) ReleaseOps(ops []nvm.PageOp) {
	if d.opPool == nil || !d.opRef.Valid() {
		return
	}
	d.opPool.Put(d.opRef, ops)
	d.opRef = pool.Ref[nvm.PageOp]{}
}

// SetMappingTap attaches a conformance tap observing every translation this
// Direct mapping serves, including bad-block redirections. Nil detaches.
func (d *Direct) SetMappingTap(t nvm.MappingTap) { d.tap = t }

// NewDirect builds the identity translator with an empty bad-block remap.
func NewDirect(geo nvm.Geometry, cell nvm.CellParams) *Direct {
	d := &Direct{
		Geo:   geo,
		Cell:  cell,
		remap: make(map[int64]int64),
		bad:   make(map[int64]bool),
	}
	d.nextSpare = d.totalBlocks() - 1
	return d
}

// PageSize returns the interface page size.
func (d *Direct) PageSize() int64 { return d.Cell.PageSize }

// CapacityBytes returns the raw capacity.
func (d *Direct) CapacityBytes() int64 { return d.Geo.Capacity(d.Cell) }

func (d *Direct) pages() int64 { return d.Geo.Pages(d.Cell) }

// rowSize is the number of die-planes pages stripe over.
func (d *Direct) rowSize() int64 {
	return int64(d.Geo.Channels * d.Cell.Planes * d.Geo.DiesPerChannel())
}

func (d *Direct) totalBlocks() int64 { return d.rowSize() * int64(d.Geo.BlocksPerPlane) }

// blockOf maps a physical page number to its eraseblock id (matching the
// fault injector's layout: rows stripe over die-planes, ppb rows per block).
func (d *Direct) blockOf(ppn int64) int64 {
	row := d.rowSize()
	ppb := int64(d.Cell.PagesPerBlock)
	return (ppn/(row*ppb))*row + ppn%row
}

// pageIn returns the k-th page of an eraseblock.
func (d *Direct) pageIn(block, k int64) int64 {
	row := d.rowSize()
	ppb := int64(d.Cell.PagesPerBlock)
	return ((block/row)*ppb+k)*row + block%row
}

// redirect applies the bad-block remap to one physical page number.
func (d *Direct) redirect(ppn int64) int64 {
	if len(d.remap) == 0 {
		return ppn
	}
	b := d.blockOf(ppn)
	nb, ok := d.remap[b]
	if !ok {
		return ppn
	}
	row := d.rowSize()
	k := (ppn / row) % int64(d.Cell.PagesPerBlock)
	return d.pageIn(nb, k)
}

func (d *Direct) mapRange(op nvm.Op, offset, size int64) []nvm.PageOp {
	if size <= 0 {
		return nil
	}
	first := offset / d.Cell.PageSize
	last := (offset + size - 1) / d.Cell.PageSize
	total := d.pages()
	ops := d.takeOps(int(last - first + 1))
	for lpn := first; lpn <= last; lpn++ {
		ppn := d.redirect(lpn % total)
		if d.tap != nil {
			if op == nvm.OpProgram {
				d.tap.MapWrite(lpn%total, ppn)
			} else {
				d.tap.MapRead(lpn%total, ppn)
			}
		}
		ops = append(ops, nvm.PageOp{Op: op, Loc: d.Geo.MapLogical(ppn, d.Cell.Planes), PPN: ppn})
	}
	return ops
}

// Read maps a read through identity striping.
func (d *Direct) Read(offset, size int64) []nvm.PageOp {
	return d.mapRange(nvm.OpRead, offset, size)
}

// Write maps a write through identity striping.
func (d *Direct) Write(offset, size int64) []nvm.PageOp {
	return d.mapRange(nvm.OpProgram, offset, size)
}

// Erase issues one block erase per eraseblock overlapping the range.
func (d *Direct) Erase(offset, size int64) []nvm.PageOp {
	if size <= 0 {
		size = d.Cell.BlockSize()
	}
	total := d.pages()
	blockBytes := d.Cell.BlockSize()
	first := offset / blockBytes
	last := (offset + size - 1) / blockBytes
	ops := d.takeOps(int(last - first + 1))
	ppb := int64(d.Cell.PagesPerBlock)
	for b := first; b <= last; b++ {
		// Identify the die-plane owning this block via its first page.
		ppn := d.redirect((b * ppb) % total)
		if d.tap != nil {
			for k := int64(0); k < ppb; k++ {
				d.tap.MapTrim((b*ppb + k) % total)
			}
		}
		ops = append(ops, nvm.PageOp{Op: nvm.OpErase, Loc: d.Geo.MapLogical(ppn, d.Cell.Planes), PPN: ppn})
	}
	return ops
}

// RetireBlock remaps the grown-bad eraseblock containing ppn onto a spare
// from the reserved top-of-device region and returns the copy-out traffic
// (the whole block: with no mapping layer Direct cannot tell valid pages
// from stale ones). OK is false once the spare region is exhausted.
func (d *Direct) RetireBlock(ppn int64) nvm.Retirement {
	if d.remap == nil {
		// Zero-value Direct (no NewDirect): no remap capability.
		return nvm.Retirement{}
	}
	b := d.blockOf(ppn % d.pages())
	if d.bad[b] {
		return nvm.Retirement{OK: true}
	}
	if d.nextSpare < d.totalBlocks()-DirectSpareBlocks || d.nextSpare < 0 {
		return nvm.Retirement{}
	}
	spare := d.nextSpare
	d.nextSpare--
	d.bad[b] = true
	// If b was itself a replacement, point its logical source at the new
	// spare; otherwise b is the logical block.
	src := b
	for logical, phys := range d.remap {
		if phys == b {
			src = logical
			break
		}
	}
	d.remap[src] = spare
	ppb := int64(d.Cell.PagesPerBlock)
	ops := make([]nvm.PageOp, 0, 2*ppb)
	for k := int64(0); k < ppb; k++ {
		from, to := d.pageIn(b, k), d.pageIn(spare, k)
		if d.tap != nil {
			// The block's logical pages are the identity pages of src.
			d.tap.MapWrite(d.pageIn(src, k), to)
		}
		ops = append(ops,
			nvm.PageOp{Op: nvm.OpRead, Loc: d.Geo.MapLogical(from, d.Cell.Planes), PPN: from},
			nvm.PageOp{Op: nvm.OpProgram, Loc: d.Geo.MapLogical(to, d.Cell.Planes), PPN: to})
	}
	return nvm.Retirement{Ops: ops, Retired: true, OK: true}
}

// Config assembles an SSD.
type Config struct {
	Geometry   nvm.Geometry
	Cell       nvm.CellParams
	Bus        nvm.BusParams
	Link       nvm.Link
	Translator Translator
	// QueueDepth bounds concurrently outstanding block requests (NCQ-style).
	QueueDepth int
	// WindowBytes bounds in-flight data (the host readahead window). Zero
	// means unlimited (bounded by QueueDepth only).
	WindowBytes int64
	// HostOverhead is the host CPU cost of issuing one block request
	// (syscall, block-layer, driver).
	HostOverhead sim.Time
	// CacheMode enables the dies' dual-register cache operation.
	CacheMode bool
	Seed      uint64
	// Probe receives per-request spans and latency observations. Nil means
	// observability off (a no-op probe, free on the hot path).
	Probe obs.Probe
	// Fault injects bit errors and program/erase failures at the media layer.
	// Nil (or a disabled injector) leaves the legacy fault-free path exactly
	// as it was, including its RNG draw sequence.
	Fault *fault.Injector
	// Sampler, when non-nil, records time-resolved telemetry: the drive
	// advances it as the simulated clock moves and registers the whole
	// stack's series on it (device utilization, queue depth, FTL GC, link
	// occupancy, fault deltas). Nil means sampling off, with zero overhead.
	Sampler *timeseries.Sampler
	// Attrib, when non-nil, records every request's latency anatomy: the
	// per-component decomposition (queue, link, bus, die, GC, recovery)
	// that provably sums to the end-to-end latency, plus top-K slow-request
	// exemplars. Nil means attribution off, with zero overhead.
	Attrib *attrib.Recorder
}

// DefaultQueueDepth is the native command queue depth used throughout the
// evaluation.
const DefaultQueueDepth = 32

// DefaultHostOverhead is the per-request host software cost.
const DefaultHostOverhead = 3 * sim.Microsecond

// SSD is a drivable solid-state drive model.
type SSD struct {
	Dev   *nvm.Device
	trans Translator

	win          *sim.Window
	hostOverhead sim.Time
	clock        sim.Time
	dataBytes    int64
	opsCount     int64
	capacity     int64
	probe        obs.Probe
	sampler      *timeseries.Sampler
	faults       *fault.Injector
	att          *attrib.Recorder
	mountRO      error
	err          error

	// opPool is this drive's page-op free list; pooled is the translator's
	// release hook when it borrows from the pool (nil for translators that
	// allocate their own slices). Per-instance pooling keeps Matrix workers
	// share-nothing.
	opPool *pool.Buffers[nvm.PageOp]
	pooled OpPooler
}

// releaseOps hands a finished translation's slice back to the translator's
// free list (a no-op for non-pooling translators).
func (s *SSD) releaseOps(ops []nvm.PageOp) {
	if s.pooled != nil {
		s.pooled.ReleaseOps(ops)
	}
}

// OpPoolStats reports the drive's page-op free-list activity: total borrows
// served and how many reused recycled storage. Zero/zero when the translator
// does not pool.
func (s *SSD) OpPoolStats() (gets, reuses int64) {
	return s.opPool.Gets(), s.opPool.Reuses()
}

// SetProbe attaches an observability probe to the drive, its device, the
// fault injector, and (when the translator is probeable, like the FTL) the
// translation layer. A nil probe disables probing.
func (s *SSD) SetProbe(p obs.Probe) {
	s.probe = obs.OrNop(p)
	s.Dev.SetProbe(p)
	if s.faults != nil {
		s.faults.SetProbe(p)
	}
	obs.Instrument(s.trans, p)
}

// New builds an SSD from the configuration.
func New(cfg Config) (*SSD, error) {
	if cfg.Translator == nil {
		return nil, fmt.Errorf("ssd: config requires a Translator")
	}
	if cfg.QueueDepth == 0 {
		cfg.QueueDepth = DefaultQueueDepth
	}
	if cfg.HostOverhead == 0 {
		cfg.HostOverhead = DefaultHostOverhead
	}
	dev, err := nvm.NewDevice(cfg.Geometry, cfg.Cell, cfg.Bus, cfg.Link, cfg.Seed)
	if err != nil {
		return nil, err
	}
	if cfg.CacheMode {
		dev.EnableCacheMode()
	}
	s := &SSD{
		Dev:          dev,
		trans:        cfg.Translator,
		win:          sim.NewWindow(cfg.QueueDepth, cfg.WindowBytes),
		hostOverhead: cfg.HostOverhead,
		capacity:     cfg.Translator.CapacityBytes(),
		probe:        obs.Nop{},
		opPool:       new(pool.Buffers[nvm.PageOp]),
	}
	if op, ok := cfg.Translator.(OpPooler); ok {
		op.SetOpPool(s.opPool)
		s.pooled = op
	}
	if cfg.Fault != nil && cfg.Fault.Enabled() {
		s.faults = cfg.Fault
		dev.SetFaults(cfg.Fault)
	}
	// A durable-metadata translator exposes a media tap; wiring it makes the
	// device mirror every program/erase into the translator's media model so
	// crash recovery has OOB tags to scan.
	if mt, ok := cfg.Translator.(interface{ MediaTap() nvm.MediaTap }); ok {
		if tap := mt.MediaTap(); tap != nil {
			dev.SetMediaTap(tap)
		}
	}
	if cfg.Attrib != nil {
		s.att = cfg.Attrib
		dev.SetAttrib(cfg.Attrib)
	}
	if cfg.Probe != nil {
		s.SetProbe(cfg.Probe)
	}
	if cfg.Sampler != nil {
		s.SetSampler(cfg.Sampler)
	}
	return s, nil
}

// SetSampler attaches a time-series sampler and registers the whole stack's
// series on it: the device's utilization fractions and link occupancy, the
// drive's queue depth / throughput / op rate, the translator's series (FTL
// GC activity, write amplification) and the fault injector's event deltas.
// The drive owns the simulated clock, so it is the one component that
// advances the sampler. A nil sampler disables sampling.
func (s *SSD) SetSampler(ts *timeseries.Sampler) {
	s.sampler = ts
	if ts == nil {
		return
	}
	s.Dev.RegisterSeries(ts)
	ts.AddGauge("ssd.queue_depth", func(at sim.Time) float64 {
		return float64(s.win.InFlightAt(at))
	})
	ts.AddRate("ssd.throughput_bps", func(sim.Time) float64 {
		return float64(s.dataBytes)
	})
	ts.AddDelta("ssd.ops", func(sim.Time) float64 {
		return float64(s.opsCount)
	})
	timeseries.Instrument(s.trans, ts)
	if s.faults != nil {
		s.faults.RegisterSeries(ts)
	}
}

// Err returns the first error any Submit call surfaced during the drive's
// lifetime (an uncorrectable read or a read-only rejection), or nil. Replay
// discards per-op errors; this is where batch drivers find out.
func (s *SSD) Err() error { return s.err }

// Result captures one replay's measurements.
type Result struct {
	Elapsed   sim.Time
	DataBytes int64
	// Bandwidth is the application-visible rate: data bytes (metadata and
	// journal excluded) over elapsed time, in bytes/second.
	Bandwidth float64
	Stats     nvm.Stats
	// Faults snapshots the reliability counters (zero value when fault
	// injection is off).
	Faults fault.Counts
}

// MBps converts the result bandwidth to MB/s (decimal), the unit of the
// paper's charts.
func (r Result) MBps() float64 { return r.Bandwidth / 1e6 }

// String renders the result as an aligned table: the headline numbers, the
// media work counters, the utilization metrics, and the Figure 8 time
// breakdown.
func (r Result) String() string {
	var b strings.Builder
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "elapsed\t%v\n", r.Elapsed)
	fmt.Fprintf(w, "data\t%d MiB\n", r.DataBytes>>20)
	fmt.Fprintf(w, "bandwidth\t%.1f MB/s\n", r.MBps())
	fmt.Fprintf(w, "media ops\t%d reads, %d programs, %d erases\n",
		r.Stats.Reads, r.Stats.Programs, r.Stats.Erases)
	fmt.Fprintf(w, "media bytes\t%d MiB read, %d MiB written\n",
		r.Stats.BytesRead>>20, r.Stats.BytesWritten>>20)
	fmt.Fprintf(w, "channel util\t%.1f%%\n", 100*r.Stats.ChannelUtilization)
	fmt.Fprintf(w, "package util\t%.1f%%\n", 100*r.Stats.PackageUtilization)
	fmt.Fprintf(w, "bus occupancy\t%.1f%%\n", 100*r.Stats.BusOccupancy)
	p := r.Stats.Breakdown.Percentages()
	for i, label := range nvm.BreakdownLabels {
		fmt.Fprintf(w, "  %s\t%5.1f%%\n", label, 100*p[i])
	}
	if r.Faults != (fault.Counts{}) {
		fmt.Fprintf(w, "fault reads\t%d clean, %d corrected, %d retried, %d uncorrectable\n",
			r.Faults.Clean, r.Faults.Corrected, r.Faults.Retried, r.Faults.Uncorrectable)
		fmt.Fprintf(w, "fault blocks\t%d grown bad (%d program, %d erase failures), %d spares left\n",
			r.Faults.GrownBadBlocks, r.Faults.ProgramFailures, r.Faults.EraseFailures, r.Faults.SparesLeft)
		if r.Faults.ReadOnly {
			fmt.Fprintf(w, "fault state\tREAD-ONLY (%d ops rejected)\n", r.Faults.RejectedOps)
		}
	}
	w.Flush()
	return b.String()
}

// Submit drives one block operation through the stack at the SSD's current
// clock and returns its completion time plus any reliability error. Sync
// operations drain the queue before issuing and hold back subsequent
// operations until they complete.
//
// Errors are typed and sticky (see Err): requests beyond the translator's
// capacity return ErrOutOfRange without touching the media; writes and
// erases against a drive that has degraded to read-only return
// fault.ErrReadOnly; reads whose bit errors exceed the ECC retry ladder
// complete (the time is still modeled) but return fault.ErrUncorrectable.
func (s *SSD) Submit(op trace.BlockOp) (sim.Time, error) {
	if s.sampler != nil {
		// Sample boundaries up to the current clock before this request
		// books more work, so gauges (queue depth) reflect the state that
		// held at each boundary.
		s.sampler.Advance(s.clock)
	}
	arrive := s.clock
	s.att.Begin(uint8(op.Kind), op.Offset, op.Size, arrive)
	if op.Sync {
		s.clock = sim.MaxTime(s.clock, s.win.Drain())
	}
	if op.Offset < 0 || op.Offset >= s.capacity || op.Size < 0 || op.Size > s.capacity-op.Offset {
		err := fmt.Errorf("%w: %s offset=%d size=%d capacity=%d",
			ErrOutOfRange, op.Kind, op.Offset, op.Size, s.capacity)
		s.keep(err)
		s.probe.Count("ssd.rejected_ops", 1)
		s.att.Abort()
		return s.clock, err
	}
	if s.faults.Crashed() {
		// Power is gone: nothing — not even reads — completes until the
		// stack is rebuilt around a recovered translator.
		err := fmt.Errorf("ssd: %s offset=%d size=%d: %w", op.Kind, op.Offset, op.Size, fault.ErrPowerLoss)
		s.keep(err)
		s.probe.Count("ssd.rejected_ops", 1)
		s.att.Abort()
		return s.clock, err
	}
	if s.faults != nil && s.faults.ReadOnly() && op.Kind != trace.Read {
		s.faults.RejectOp()
		err := fmt.Errorf("ssd: %s offset=%d size=%d: %w", op.Kind, op.Offset, op.Size, fault.ErrReadOnly)
		s.keep(err)
		s.att.Abort()
		return s.clock, err
	}
	if s.mountRO != nil && op.Kind != trace.Read {
		err := fmt.Errorf("ssd: %s offset=%d size=%d: %w", op.Kind, op.Offset, op.Size, s.mountRO)
		s.keep(err)
		s.probe.Count("ssd.rejected_ops", 1)
		s.att.Abort()
		return s.clock, err
	}
	// Translation (FTL mapping, GC relocation planning, Direct striping)
	// builds the request's page-op slice; the hostperf region charges it to
	// the ssd-request subsystem.
	hostperf.Enter(hostperf.SiteSSDRequest)
	var pageOps []nvm.PageOp
	switch op.Kind {
	case trace.Read:
		pageOps = s.trans.Read(op.Offset, op.Size)
	case trace.Write:
		pageOps = s.trans.Write(op.Offset, op.Size)
	case trace.Erase:
		pageOps = s.trans.Erase(op.Offset, op.Size)
	}
	hostperf.Exit()
	issue := s.win.Admit(s.clock, op.Size)
	// Queue covers both the sync barrier drain and window admission: arrive
	// was stamped before the drain, so issue-arrive is the whole wait.
	s.att.Note(attrib.Queue, issue-arrive)
	if s.att != nil {
		gc := 0
		for _, p := range pageOps {
			if p.GC {
				gc++
			}
		}
		s.att.NotePages(len(pageOps), gc)
	}
	end := s.Dev.Submit(issue, pageOps)
	var err error
	if s.faults.Crashed() {
		// The cut fired inside this request: its in-flight program is torn
		// on the media and the request was never acknowledged.
		err = fmt.Errorf("ssd: %s offset=%d size=%d: %w", op.Kind, op.Offset, op.Size, fault.ErrPowerLoss)
		s.keep(err)
		s.probe.Count("ssd.crashed_ops", 1)
	} else if s.faults != nil {
		// Recovery relocation replays through the device; pausing the
		// recorder keeps those activations from overwriting the request's
		// own critical path — the whole delta is charged to Recovery.
		preRecover := end
		s.att.Pause()
		end = s.recover(end)
		s.att.Resume()
		s.att.Note(attrib.Recovery, end-preRecover)
		if n := s.faults.TakeUncorrectable(); n > 0 {
			err = fmt.Errorf("ssd: %d uncorrectable page read(s) in %s offset=%d: %w",
				n, op.Kind, op.Offset, fault.ErrUncorrectable)
			s.keep(err)
		}
	}
	s.win.Complete(end, op.Size)
	s.att.Commit(end)
	if op.Sync {
		s.clock = end
	} else {
		s.clock = issue + s.hostOverhead
	}
	if !op.Meta && !s.faults.Crashed() {
		s.dataBytes += op.Size
	}
	s.opsCount++
	s.probe.Count("ssd.ops", 1)
	s.probe.Count("ssd.bytes", op.Size)
	if !op.Meta {
		s.probe.Count("ssd.data_bytes", op.Size)
	}
	s.probe.Observe("ssd.queue.wait", issue-arrive)
	s.probe.Observe("ssd.request.latency", end-arrive)
	if s.probe.Enabled() {
		s.probe.Span(obs.LayerSSD, "queue", op.Kind.String(), arrive, end,
			obs.Attr{Key: "offset", Value: op.Offset},
			obs.Attr{Key: "size", Value: op.Size},
			obs.Attr{Key: "pages", Value: int64(len(pageOps))})
	}
	// The request is fully scheduled and every reader of pageOps above is
	// done: recycle the translation's storage for the next request.
	s.releaseOps(pageOps)
	return end, err
}

// keep records the first error a Submit surfaced.
func (s *SSD) keep(err error) {
	if s.err == nil {
		s.err = err
	}
}

// MountInfo describes a completed mount-time crash recovery so the drive
// can book its cost and, when the metadata was unrecoverable, pin the
// stack read-only.
type MountInfo struct {
	// Duration is the simulated recovery time (ftl.RecoveryReport.Duration).
	Duration sim.Time
	// ReadOnly, when non-nil, is the typed unrecoverable-metadata error;
	// every post-mount write or erase is rejected wrapping it.
	ReadOnly error
}

// Mount books a mount-time recovery against the drive's clock and
// telemetry: the whole duration lands on the Recovery attribution
// component under the synthetic "mount" request kind, and counters record
// the recovery and its cost for the HTML report.
func (s *SSD) Mount(info MountInfo) {
	arrive := s.clock
	s.att.Begin(3, 0, 0, arrive)
	s.att.Note(attrib.Recovery, info.Duration)
	end := arrive + info.Duration
	s.att.Commit(end)
	s.clock = end
	s.mountRO = info.ReadOnly
	s.probe.Count("ssd.mount.recoveries", 1)
	s.probe.Observe("ssd.mount.recovery_time", info.Duration)
}

// recover drains the injector's pending program/erase failures, asking the
// translator to retire each grown-bad block and charging the relocation
// traffic to the device clock. Relocation programs can themselves fail, so
// the drain loops until quiescent; termination is guaranteed because the
// injector never fails an already-retired block and every retirement
// consumes one finite spare. When the translator cannot relocate (or is not
// a BlockRetirer) the drive degrades to read-only.
func (s *SSD) recover(at sim.Time) sim.Time {
	for {
		fails := s.faults.TakeFailures()
		if len(fails) == 0 {
			return at
		}
		br, can := s.trans.(BlockRetirer)
		for _, f := range fails {
			if s.faults.ReadOnly() {
				return at
			}
			if !can {
				s.faults.Degrade()
				return at
			}
			hostperf.Enter(hostperf.SiteSSDRequest)
			r := br.RetireBlock(f.PPN)
			hostperf.Exit()
			if !r.OK {
				s.faults.Degrade()
				return at
			}
			if !r.Retired {
				continue
			}
			s.faults.OnRetire(f.PPN)
			if len(r.Ops) > 0 {
				start := at
				at = s.Dev.Submit(at, r.Ops)
				if s.probe.Enabled() {
					s.probe.Span(obs.LayerSSD, "queue", "retire", start, at,
						obs.Attr{Key: "ppn", Value: f.PPN},
						obs.Attr{Key: "pages", Value: int64(len(r.Ops))})
				}
			}
		}
	}
}

// Replay drives a whole block trace and reports the run's measurements.
// Per-op errors are not fatal to the replay (a degraded drive keeps
// serving reads); the first one is retained and available via Err.
// It may be called repeatedly; state (clock, device timelines) accumulates,
// matching a continuously running device.
func (s *SSD) Replay(ops []trace.BlockOp) Result {
	for _, op := range ops {
		s.Submit(op)
	}
	return s.Finish()
}

// Finish drains outstanding requests and snapshots the results so far.
func (s *SSD) Finish() Result {
	s.clock = sim.MaxTime(s.clock, s.win.Drain())
	if s.sampler != nil {
		// Flush the trailing boundaries so the series cover the whole run.
		s.sampler.Advance(s.clock)
	}
	st := s.Dev.Stats()
	r := Result{
		Elapsed:   st.Span,
		DataBytes: s.dataBytes,
		Bandwidth: sim.Rate(s.dataBytes, st.Span),
		Stats:     st,
	}
	if s.faults != nil {
		r.Faults = s.faults.Counts()
		s.probe.SetGauge("ssd.fault.grown_bad_blocks", float64(r.Faults.GrownBadBlocks))
		s.probe.SetGauge("ssd.fault.spares_left", float64(r.Faults.SparesLeft))
	}
	s.probe.SetGauge("ssd.span_ps", float64(r.Elapsed))
	s.probe.SetGauge("ssd.bandwidth_bps", r.Bandwidth)
	return r
}

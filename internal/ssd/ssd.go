// Package ssd assembles a complete solid-state drive from the substrate
// packages: an nvm.Device (channels, dies, cell timings), a translation
// layer (the conventional FTL or UFS's direct mapping), a host queue of
// bounded depth, and the host-side link. Its Replay method drives a captured
// block trace through the stack and reports the measurements the paper's
// evaluation charts are built from.
package ssd

import (
	"fmt"
	"strings"
	"text/tabwriter"

	"oocnvm/internal/nvm"
	"oocnvm/internal/obs"
	"oocnvm/internal/sim"
	"oocnvm/internal/trace"
)

// Translator maps byte-addressed block operations to NVM page operations.
type Translator interface {
	Read(offset, size int64) []nvm.PageOp
	Write(offset, size int64) []nvm.PageOp
	Erase(offset, size int64) []nvm.PageOp
	PageSize() int64
	CapacityBytes() int64
}

// Direct is UFS's translation: identity page-striped mapping with no
// remapping layer at all. The host (UFS) is responsible for erase-before-
// write; the device executes exactly what it is told.
type Direct struct {
	Geo  nvm.Geometry
	Cell nvm.CellParams
}

// PageSize returns the interface page size.
func (d Direct) PageSize() int64 { return d.Cell.PageSize }

// CapacityBytes returns the raw capacity.
func (d Direct) CapacityBytes() int64 { return d.Geo.Capacity(d.Cell) }

func (d Direct) pages() int64 { return d.Geo.Pages(d.Cell) }

func (d Direct) mapRange(op nvm.Op, offset, size int64) []nvm.PageOp {
	if size <= 0 {
		return nil
	}
	first := offset / d.Cell.PageSize
	last := (offset + size - 1) / d.Cell.PageSize
	total := d.pages()
	ops := make([]nvm.PageOp, 0, last-first+1)
	for lpn := first; lpn <= last; lpn++ {
		ops = append(ops, nvm.PageOp{Op: op, Loc: d.Geo.MapLogical(lpn%total, d.Cell.Planes)})
	}
	return ops
}

// Read maps a read through identity striping.
func (d Direct) Read(offset, size int64) []nvm.PageOp {
	return d.mapRange(nvm.OpRead, offset, size)
}

// Write maps a write through identity striping.
func (d Direct) Write(offset, size int64) []nvm.PageOp {
	return d.mapRange(nvm.OpProgram, offset, size)
}

// Erase issues one block erase per eraseblock overlapping the range.
func (d Direct) Erase(offset, size int64) []nvm.PageOp {
	if size <= 0 {
		size = d.Cell.BlockSize()
	}
	total := d.pages()
	blockBytes := d.Cell.BlockSize()
	first := offset / blockBytes
	last := (offset + size - 1) / blockBytes
	ops := make([]nvm.PageOp, 0, last-first+1)
	for b := first; b <= last; b++ {
		// Identify the die-plane owning this block via its first page.
		lpn := (b * int64(d.Cell.PagesPerBlock)) % total
		ops = append(ops, nvm.PageOp{Op: nvm.OpErase, Loc: d.Geo.MapLogical(lpn, d.Cell.Planes)})
	}
	return ops
}

// Config assembles an SSD.
type Config struct {
	Geometry   nvm.Geometry
	Cell       nvm.CellParams
	Bus        nvm.BusParams
	Link       nvm.Link
	Translator Translator
	// QueueDepth bounds concurrently outstanding block requests (NCQ-style).
	QueueDepth int
	// WindowBytes bounds in-flight data (the host readahead window). Zero
	// means unlimited (bounded by QueueDepth only).
	WindowBytes int64
	// HostOverhead is the host CPU cost of issuing one block request
	// (syscall, block-layer, driver).
	HostOverhead sim.Time
	// CacheMode enables the dies' dual-register cache operation.
	CacheMode bool
	Seed      uint64
	// Probe receives per-request spans and latency observations. Nil means
	// observability off (a no-op probe, free on the hot path).
	Probe obs.Probe
}

// DefaultQueueDepth is the native command queue depth used throughout the
// evaluation.
const DefaultQueueDepth = 32

// DefaultHostOverhead is the per-request host software cost.
const DefaultHostOverhead = 3 * sim.Microsecond

// SSD is a drivable solid-state drive model.
type SSD struct {
	Dev   *nvm.Device
	trans Translator

	win          *sim.Window
	hostOverhead sim.Time
	clock        sim.Time
	dataBytes    int64
	probe        obs.Probe
}

// SetProbe attaches an observability probe to the drive, its device, and
// (when the translator is probeable, like the FTL) the translation layer.
// A nil probe disables probing.
func (s *SSD) SetProbe(p obs.Probe) {
	s.probe = obs.OrNop(p)
	s.Dev.SetProbe(p)
	obs.Instrument(s.trans, p)
}

// New builds an SSD from the configuration.
func New(cfg Config) (*SSD, error) {
	if cfg.Translator == nil {
		return nil, fmt.Errorf("ssd: config requires a Translator")
	}
	if cfg.QueueDepth == 0 {
		cfg.QueueDepth = DefaultQueueDepth
	}
	if cfg.HostOverhead == 0 {
		cfg.HostOverhead = DefaultHostOverhead
	}
	dev, err := nvm.NewDevice(cfg.Geometry, cfg.Cell, cfg.Bus, cfg.Link, cfg.Seed)
	if err != nil {
		return nil, err
	}
	if cfg.CacheMode {
		dev.EnableCacheMode()
	}
	s := &SSD{
		Dev:          dev,
		trans:        cfg.Translator,
		win:          sim.NewWindow(cfg.QueueDepth, cfg.WindowBytes),
		hostOverhead: cfg.HostOverhead,
		probe:        obs.Nop{},
	}
	if cfg.Probe != nil {
		s.SetProbe(cfg.Probe)
	}
	return s, nil
}

// Result captures one replay's measurements.
type Result struct {
	Elapsed   sim.Time
	DataBytes int64
	// Bandwidth is the application-visible rate: data bytes (metadata and
	// journal excluded) over elapsed time, in bytes/second.
	Bandwidth float64
	Stats     nvm.Stats
}

// MBps converts the result bandwidth to MB/s (decimal), the unit of the
// paper's charts.
func (r Result) MBps() float64 { return r.Bandwidth / 1e6 }

// String renders the result as an aligned table: the headline numbers, the
// media work counters, the utilization metrics, and the Figure 8 time
// breakdown.
func (r Result) String() string {
	var b strings.Builder
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "elapsed\t%v\n", r.Elapsed)
	fmt.Fprintf(w, "data\t%d MiB\n", r.DataBytes>>20)
	fmt.Fprintf(w, "bandwidth\t%.1f MB/s\n", r.MBps())
	fmt.Fprintf(w, "media ops\t%d reads, %d programs, %d erases\n",
		r.Stats.Reads, r.Stats.Programs, r.Stats.Erases)
	fmt.Fprintf(w, "media bytes\t%d MiB read, %d MiB written\n",
		r.Stats.BytesRead>>20, r.Stats.BytesWritten>>20)
	fmt.Fprintf(w, "channel util\t%.1f%%\n", 100*r.Stats.ChannelUtilization)
	fmt.Fprintf(w, "package util\t%.1f%%\n", 100*r.Stats.PackageUtilization)
	fmt.Fprintf(w, "bus occupancy\t%.1f%%\n", 100*r.Stats.BusOccupancy)
	p := r.Stats.Breakdown.Percentages()
	for i, label := range nvm.BreakdownLabels {
		fmt.Fprintf(w, "  %s\t%5.1f%%\n", label, 100*p[i])
	}
	w.Flush()
	return b.String()
}

// Submit drives one block operation through the stack at the SSD's current
// clock and returns its completion time. Sync operations drain the queue
// before issuing and hold back subsequent operations until they complete.
func (s *SSD) Submit(op trace.BlockOp) sim.Time {
	arrive := s.clock
	if op.Sync {
		s.clock = sim.MaxTime(s.clock, s.win.Drain())
	}
	var pageOps []nvm.PageOp
	switch op.Kind {
	case trace.Read:
		pageOps = s.trans.Read(op.Offset, op.Size)
	case trace.Write:
		pageOps = s.trans.Write(op.Offset, op.Size)
	case trace.Erase:
		pageOps = s.trans.Erase(op.Offset, op.Size)
	}
	issue := s.win.Admit(s.clock, op.Size)
	end := s.Dev.Submit(issue, pageOps)
	s.win.Complete(end, op.Size)
	if op.Sync {
		s.clock = end
	} else {
		s.clock = issue + s.hostOverhead
	}
	if !op.Meta {
		s.dataBytes += op.Size
	}
	s.probe.Count("ssd.ops", 1)
	s.probe.Count("ssd.bytes", op.Size)
	if !op.Meta {
		s.probe.Count("ssd.data_bytes", op.Size)
	}
	s.probe.Observe("ssd.queue.wait", issue-arrive)
	s.probe.Observe("ssd.request.latency", end-arrive)
	if s.probe.Enabled() {
		s.probe.Span(obs.LayerSSD, "queue", op.Kind.String(), arrive, end,
			obs.Attr{Key: "offset", Value: op.Offset},
			obs.Attr{Key: "size", Value: op.Size},
			obs.Attr{Key: "pages", Value: int64(len(pageOps))})
	}
	return end
}

// Replay drives a whole block trace and reports the run's measurements.
// It may be called repeatedly; state (clock, device timelines) accumulates,
// matching a continuously running device.
func (s *SSD) Replay(ops []trace.BlockOp) Result {
	for _, op := range ops {
		s.Submit(op)
	}
	return s.Finish()
}

// Finish drains outstanding requests and snapshots the results so far.
func (s *SSD) Finish() Result {
	s.clock = sim.MaxTime(s.clock, s.win.Drain())
	st := s.Dev.Stats()
	r := Result{
		Elapsed:   st.Span,
		DataBytes: s.dataBytes,
		Bandwidth: sim.Rate(s.dataBytes, st.Span),
		Stats:     st,
	}
	s.probe.SetGauge("ssd.span_ps", float64(r.Elapsed))
	s.probe.SetGauge("ssd.bandwidth_bps", r.Bandwidth)
	return r
}

package ssd

import (
	"oocnvm/internal/sim"
	"oocnvm/internal/trace"
)

// PAQ implements physically addressed queueing, the scheduling optimization
// of the NANDFlashSim line of work the paper applies "to refine our findings
// for future NVM devices" (§4.1, citing ISCA'12): instead of dispatching
// host requests strictly in arrival order, the controller inspects the
// physical resources each pending request needs and issues the one whose
// target dies become free earliest, so independent requests overtake
// conflicted ones.
//
// PAQ wraps an SSD and buffers up to Depth requests; Flush drains the
// buffer. Sync requests act as barriers exactly as in the FIFO path.
type PAQ struct {
	ssd     *SSD
	depth   int
	pending []trace.BlockOp
}

// NewPAQ wraps the SSD with a reordering window of the given depth.
// Depth <= 1 degenerates to FIFO.
func NewPAQ(s *SSD, depth int) *PAQ {
	if depth < 1 {
		depth = 1
	}
	return &PAQ{ssd: s, depth: depth}
}

// Submit buffers one request, dispatching the best-scheduled pending request
// once the window is full. Sync requests flush the window first and
// dispatch immediately (they are barriers).
func (q *PAQ) Submit(op trace.BlockOp) {
	if op.Sync {
		q.Flush()
		q.ssd.Submit(op)
		return
	}
	q.pending = append(q.pending, op)
	if len(q.pending) >= q.depth {
		q.dispatchBest()
	}
}

// Flush dispatches everything still pending, best-first.
func (q *PAQ) Flush() {
	for len(q.pending) > 0 {
		q.dispatchBest()
	}
}

// Replay drives a whole trace through the reordering window.
func (q *PAQ) Replay(ops []trace.BlockOp) Result {
	for _, op := range ops {
		q.Submit(op)
	}
	return q.Finish()
}

// Finish flushes and snapshots results.
func (q *PAQ) Finish() Result {
	q.Flush()
	return q.ssd.Finish()
}

// dispatchBest removes and submits the pending request whose physical
// targets are free earliest.
func (q *PAQ) dispatchBest() {
	best, bestCost := 0, sim.Time(1<<62)
	for i, op := range q.pending {
		c := q.cost(op)
		if c < bestCost {
			best, bestCost = i, c
		}
	}
	op := q.pending[best]
	q.pending = append(q.pending[:best], q.pending[best+1:]...)
	q.ssd.Submit(op)
}

// cost estimates when the request's dies become available: the maximum
// busy-until horizon over the dies its first pages land on. Sampling the
// leading pages is enough — they decide when the request can begin. The
// probe uses the read mapping for every verb because it is side-effect-free
// in both translators (FTL writes allocate log pages; probing them would
// mutate the map); log-appended writes have no positional conflict anyway.
func (q *PAQ) cost(op trace.BlockOp) sim.Time {
	ops := q.ssd.trans.Read(op.Offset, minInt64(maxInt64(op.Size, 1), 8*q.ssd.trans.PageSize()))
	var worst sim.Time
	for _, p := range ops {
		if f := q.ssd.Dev.DieFreeAt(p.Loc.Channel, p.Loc.Die); f > worst {
			worst = f
		}
	}
	// The probe borrowed a translation slice like any host read; hand it
	// back before the real submission needs one.
	q.ssd.releaseOps(ops)
	return worst
}

func minInt64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

package ssd

import (
	"testing"

	"oocnvm/internal/ftl"
	"oocnvm/internal/nvm"
	"oocnvm/internal/trace"
)

// steadyStateBudget is the per-request allocation ceiling once the drive is
// warm. The pooled lifecycle leaves only amortized storage growth on the hot
// path (busy-interval unions, occasional compaction), so the average must
// stay at "a handful" per request — a regression to per-request slice or
// bookkeeping allocation shows up as tens.
const steadyStateBudget = 4.0

// TestSubmitSteadyStateAllocs pins the steady-state allocation cost of
// SSD.Submit with real, sized requests through the pooled Direct translator.
// The first pass warms every free list and scratch arena (translation slices,
// die buckets, plane queues, window heap); after that each Submit must run
// from recycled storage.
func TestSubmitSteadyStateAllocs(t *testing.T) {
	s := newSSD(t, testConfig(nvm.SLC))
	ops := make([]trace.BlockOp, 16)
	for i := range ops {
		ops[i] = trace.BlockOp{Kind: trace.Read, Offset: int64(i) * (128 << 10), Size: 128 << 10}
	}
	s.Replay(ops) // warm-up: grows pools, scratch, and the window heap
	allocs := testing.AllocsPerRun(100, func() {
		for _, op := range ops {
			s.Submit(op)
		}
	})
	perReq := allocs / float64(len(ops))
	if perReq > steadyStateBudget {
		t.Fatalf("steady-state Submit allocates %.2f objects per request, budget %.1f", perReq, steadyStateBudget)
	}
	if gets, reuses := s.OpPoolStats(); reuses == 0 || reuses < gets/2 {
		t.Fatalf("op pool not recycling: %d gets, %d reuses", gets, reuses)
	}
}

// TestReplaySteadyStateAllocs pins the steady-state cost of a full Replay —
// mixed reads and writes through a warm FTL, including its GC and mapping
// churn — at a handful of allocations per request.
func TestReplaySteadyStateAllocs(t *testing.T) {
	cfg := testConfig(nvm.MLC)
	f, err := ftl.New(cfg.Geometry, cfg.Cell, ftl.Config{})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Translator = f
	s := newSSD(t, cfg)
	ops := make([]trace.BlockOp, 0, 24)
	for i := int64(0); i < 16; i++ {
		ops = append(ops, trace.BlockOp{Kind: trace.Read, Offset: i * (256 << 10), Size: 256 << 10})
		if i%2 == 0 {
			ops = append(ops, trace.BlockOp{Kind: trace.Write, Offset: i * (64 << 10), Size: 64 << 10})
		}
	}
	s.Replay(ops) // warm-up
	allocs := testing.AllocsPerRun(100, func() {
		s.Replay(ops)
	})
	perReq := allocs / float64(len(ops))
	if perReq > steadyStateBudget {
		t.Fatalf("steady-state Replay allocates %.2f objects per request, budget %.1f", perReq, steadyStateBudget)
	}
}

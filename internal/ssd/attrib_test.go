package ssd

import (
	"testing"

	"oocnvm/internal/fault"
	"oocnvm/internal/ftl"
	"oocnvm/internal/interconnect"
	"oocnvm/internal/nvm"
	"oocnvm/internal/obs/attrib"
	"oocnvm/internal/sim"
	"oocnvm/internal/trace"
)

// attribConfig builds an FTL-backed stack on a real PCIe link (so link
// wait/transfer components are exercised) with an attribution recorder.
func attribConfig(t *testing.T, cell nvm.CellType, geo nvm.Geometry) (Config, *attrib.Recorder) {
	t.Helper()
	cp := nvm.Params(cell)
	f, err := ftl.New(geo, cp, ftl.Config{})
	if err != nil {
		t.Fatal(err)
	}
	rec := attrib.NewRecorder(8)
	return Config{
		Geometry:   geo,
		Cell:       cp,
		Bus:        nvm.ONFi3SDR(),
		Link:       interconnect.NewPCIeLine(interconnect.PCIeConfig{Gen: interconnect.PCIeGen2, Lanes: 8}),
		Translator: f,
		Seed:       7,
		Attrib:     rec,
	}, rec
}

func mixedOps(capacity int64) []trace.BlockOp {
	var ops []trace.BlockOp
	req := int64(256 << 10)
	for i := int64(0); i < 200; i++ {
		off := (i * 7 % (capacity / req)) * req
		kind := trace.Read
		if i%3 == 1 {
			kind = trace.Write
		}
		ops = append(ops, trace.BlockOp{Kind: kind, Offset: off, Size: req, Sync: i%17 == 16})
	}
	return ops
}

// assertConserved checks the stack-level conservation invariant on a
// finished recorder: zero violations, zero residual on every exemplar.
func assertConserved(t *testing.T, rec *attrib.Recorder, wantRequests int64) attrib.Summary {
	t.Helper()
	sum := rec.Summary()
	if sum.Requests != wantRequests {
		t.Fatalf("attributed %d requests, want %d", sum.Requests, wantRequests)
	}
	if sum.Violations != 0 {
		t.Fatalf("conservation violated on %d requests (max residual %v)",
			sum.Violations, sum.MaxResidual)
	}
	for _, ex := range sum.Exemplars {
		if r := ex.Residual(); r != 0 {
			t.Fatalf("exemplar %d residual = %v: %+v", ex.ID, r, ex.Comp)
		}
		for c, d := range ex.Comp {
			if d < 0 {
				t.Fatalf("exemplar %d component %v negative: %v", ex.ID, attrib.Component(c), d)
			}
		}
	}
	return sum
}

func TestAttribConservationMixedWorkload(t *testing.T) {
	geo := nvm.PaperGeometry()
	cfg, rec := attribConfig(t, nvm.TLC, geo)
	s := newSSD(t, cfg)
	ops := mixedOps(geo.Capacity(cfg.Cell))
	s.Replay(ops)
	sum := assertConserved(t, rec, int64(len(ops)))
	// The whole latency mass must be accounted for somewhere.
	var total sim.Time
	for _, d := range sum.Totals {
		total += d
	}
	if sum.TotalLatency != total {
		t.Fatalf("component mass %v != total latency %v", total, sum.TotalLatency)
	}
	for _, c := range []attrib.Component{attrib.Queue, attrib.DieService, attrib.LinkWait} {
		if sum.Totals[c] == 0 {
			t.Fatalf("component %v never observed on a mixed workload", c)
		}
	}
}

func TestAttribConservationGCHeavy(t *testing.T) {
	// A tiny device overwritten several times over forces superblock GC;
	// relocation chains that win the critical path must fold into the GC
	// component without breaking conservation.
	geo := nvm.Geometry{Channels: 2, PackagesPerChannel: 2, DiesPerPackage: 1, BlocksPerPlane: 6}
	cfg, rec := attribConfig(t, nvm.MLC, geo)
	s := newSSD(t, cfg)
	capacity := geo.Capacity(cfg.Cell)
	req := int64(128 << 10)
	hot := capacity / 2 / req
	var ops []trace.BlockOp
	for i := int64(0); i*req < 4*capacity; i++ {
		ops = append(ops, trace.BlockOp{Kind: trace.Write, Offset: (i % hot) * req, Size: req})
	}
	s.Replay(ops)
	sum := assertConserved(t, rec, int64(len(ops)))
	if sum.Totals[attrib.GC] == 0 {
		t.Fatal("GC stall time never attributed on a GC-heavy overwrite workload")
	}
}

func TestAttribConservationUnderFaults(t *testing.T) {
	// End-of-life media exercises the exceptional components: read-retry
	// ladders and grown-bad-block recovery. Conservation must hold even
	// when the drive splices recovery relocation into request completion.
	prof, err := fault.ForName("eol")
	if err != nil {
		t.Fatal(err)
	}
	cfg := faultedConfig(t, nvm.TLC, prof, 0)
	rec := attrib.NewRecorder(8)
	cfg.Attrib = rec
	s := newSSD(t, cfg)
	var ops []trace.BlockOp
	for i := int64(0); i < 96; i++ {
		ops = append(ops, trace.BlockOp{Kind: trace.Read, Offset: i * (1 << 20), Size: 512 << 10})
	}
	res := s.Replay(ops)
	sum := assertConserved(t, rec, int64(len(ops)))
	if res.Faults.Retried == 0 {
		t.Fatalf("eol run produced no retries: %+v", res.Faults)
	}
	if sum.Totals[attrib.Retry] == 0 {
		t.Fatal("retry latency never attributed under eol faults")
	}
}

func TestAttribOffLeavesResultsIdentical(t *testing.T) {
	run := func(attach bool) Result {
		geo := nvm.PaperGeometry()
		cfg, _ := attribConfig(t, nvm.TLC, geo)
		if !attach {
			cfg.Attrib = nil
		}
		s := newSSD(t, cfg)
		return s.Replay(mixedOps(geo.Capacity(cfg.Cell)))
	}
	off, on := run(false), run(true)
	if off.Elapsed != on.Elapsed || off.Bandwidth != on.Bandwidth || off.Stats != on.Stats {
		t.Fatalf("attribution changed the simulation: off=%+v on=%+v", off, on)
	}
}

// TestSubmitAttribSteadyStateAllocs pins the free-list guarantee at the
// stack level: with a recorder attached and its exemplar heap warm,
// attribution adds zero heap allocations per Submit on top of whatever the
// bare stack already does for the same op.
func TestSubmitAttribSteadyStateAllocs(t *testing.T) {
	measure := func(attach bool) float64 {
		cfg := testConfig(nvm.SLC)
		if attach {
			cfg.Attrib = attrib.NewRecorder(4)
		}
		s := newSSD(t, cfg)
		op := trace.BlockOp{Kind: trace.Read, Offset: 0, Size: 64 << 10}
		for i := 0; i < 8; i++ {
			s.Submit(op) // warm the window heap and fill the exemplar heap
		}
		return testing.AllocsPerRun(1000, func() {
			s.Submit(op)
		})
	}
	off, on := measure(false), measure(true)
	if on != off {
		t.Fatalf("attribution adds allocations: %.1f/call attached vs %.1f/call bare", on, off)
	}
}

// Package ckpt checkpoints out-of-core solver state onto compute-local NVM.
// The paper's related work uses node-local flash as a write-back cache for
// checkpoints; with UFS-managed NVM the application can own the checkpoint
// region directly: this package double-buffers serialized solver state in
// two eraseblock-aligned slots (erase-before-write makes in-place update
// impossible), protects it with a checksum, and restores the newest valid
// snapshot after a failure.
package ckpt

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"

	"oocnvm/internal/core"
	"oocnvm/internal/linalg"
)

// State is a LOBPCG-style solver snapshot: the iterate block, the conjugate
// directions, the Ritz values, and the iteration index.
type State struct {
	Iteration int
	Values    []float64
	X         *linalg.Matrix
	P         *linalg.Matrix // may be nil
}

// magic guards against restoring garbage.
var magic = [8]byte{'O', 'O', 'C', 'C', 'K', 'P', 'T', '1'}

// Encode serializes a state with a trailing FNV-64a checksum.
func Encode(s State) ([]byte, error) {
	if s.X == nil {
		return nil, fmt.Errorf("ckpt: state requires an X block")
	}
	size := 8 + 4 + 4 + 8*len(s.Values) + matBytes(s.X) + matBytes(s.P) + 8
	buf := make([]byte, 0, size)
	buf = append(buf, magic[:]...)
	buf = appendU32(buf, uint32(s.Iteration))
	buf = appendU32(buf, uint32(len(s.Values)))
	for _, v := range s.Values {
		buf = appendF64(buf, v)
	}
	buf = appendMatrix(buf, s.X)
	buf = appendMatrix(buf, s.P)
	h := fnv.New64a()
	h.Write(buf)
	buf = binary.LittleEndian.AppendUint64(buf, h.Sum64())
	return buf, nil
}

// Decode parses and verifies a serialized state.
func Decode(raw []byte) (State, error) {
	if len(raw) < len(magic)+8 {
		return State{}, fmt.Errorf("ckpt: snapshot truncated (%d bytes)", len(raw))
	}
	body, sum := raw[:len(raw)-8], binary.LittleEndian.Uint64(raw[len(raw)-8:])
	h := fnv.New64a()
	h.Write(body)
	if h.Sum64() != sum {
		return State{}, fmt.Errorf("ckpt: checksum mismatch")
	}
	if string(body[:8]) != string(magic[:]) {
		return State{}, fmt.Errorf("ckpt: bad magic")
	}
	at := 8
	var s State
	var u uint32
	u, at = readU32(body, at)
	s.Iteration = int(u)
	u, at = readU32(body, at)
	s.Values = make([]float64, u)
	for i := range s.Values {
		s.Values[i], at = readF64(body, at)
	}
	var err error
	s.X, at, err = readMatrix(body, at)
	if err != nil {
		return State{}, err
	}
	s.P, _, err = readMatrix(body, at)
	if err != nil {
		return State{}, err
	}
	return s, nil
}

// Writer owns a double-buffered checkpoint region on a node's NVM. The two
// slots alternate: a crash during Save leaves the previous slot intact.
type Writer struct {
	node     *core.Node
	name     string
	slotSize int64
	// shadow holds the byte content per slot (the simulator times I/O but
	// does not store payloads).
	shadow  [2][]byte
	current int  // slot holding the newest valid snapshot
	valid   bool // whether any snapshot exists
	saves   int64
}

// NewWriter allocates the checkpoint region (two slots of maxBytes each) on
// the node.
func NewWriter(node *core.Node, name string, maxBytes int64) (*Writer, error) {
	if maxBytes <= 0 {
		return nil, fmt.Errorf("ckpt: maxBytes must be positive")
	}
	if _, err := node.Alloc(name, 2*maxBytes); err != nil {
		return nil, err
	}
	return &Writer{node: node, name: name, slotSize: maxBytes, current: 1}, nil
}

// Save serializes the state into the non-current slot and flips.
func (w *Writer) Save(s State) error {
	raw, err := Encode(s)
	if err != nil {
		return err
	}
	if int64(len(raw)) > w.slotSize {
		return fmt.Errorf("ckpt: snapshot of %d bytes exceeds slot size %d", len(raw), w.slotSize)
	}
	slot := 1 - w.current
	// Erase-before-write: reclaim the whole region, then rewrite the
	// surviving slot and the new snapshot. (UFS erases extents whole; the
	// alternation still bounds the loss window to one snapshot.)
	if err := w.node.Erase(w.name); err != nil {
		return err
	}
	if w.valid {
		if err := w.node.Write(w.name, int64(w.current)*w.slotSize, int64(len(w.shadow[w.current]))); err != nil {
			return err
		}
	}
	if err := w.node.Write(w.name, int64(slot)*w.slotSize, int64(len(raw))); err != nil {
		return err
	}
	w.shadow[slot] = raw
	w.current = slot
	w.valid = true
	w.saves++
	return nil
}

// Load restores the newest valid snapshot, falling back to the older slot
// if the newest is corrupt.
func (w *Writer) Load() (State, error) {
	if !w.valid {
		return State{}, fmt.Errorf("ckpt: no snapshot saved")
	}
	for _, slot := range []int{w.current, 1 - w.current} {
		raw := w.shadow[slot]
		if len(raw) == 0 {
			continue
		}
		if err := w.node.Read(w.name, int64(slot)*w.slotSize, int64(len(raw))); err != nil {
			return State{}, err
		}
		if s, err := Decode(raw); err == nil {
			return s, nil
		}
	}
	return State{}, fmt.Errorf("ckpt: all slots corrupt")
}

// slotIndex resolves a newest-relative slot name (0 = newest, 1 = previous)
// to the physical slot.
func (w *Writer) slotIndex(slotFromNewest int) int {
	if slotFromNewest == 1 {
		return 1 - w.current
	}
	return w.current
}

// Corrupt flips bytes in the named slot's shadow, for failure-injection
// tests (0 = newest, 1 = previous).
func (w *Writer) Corrupt(slotFromNewest int) {
	if len(w.shadow[w.slotIndex(slotFromNewest)]) > 16 {
		w.CorruptAt(slotFromNewest, 12, 0xFF)
	}
}

// CorruptAt XORs mask into byte off of the chosen slot's shadow — the
// torn-write injection hook: one damaged byte anywhere in a snapshot must
// force Load onto the other slot, never onto garbage.
func (w *Writer) CorruptAt(slotFromNewest, off int, mask byte) {
	slot := w.slotIndex(slotFromNewest)
	if off >= 0 && off < len(w.shadow[slot]) && mask != 0 {
		w.shadow[slot][off] ^= mask
	}
}

// TruncateAt cuts the chosen slot's shadow to n bytes, modelling a write
// torn mid-snapshot by power loss.
func (w *Writer) TruncateAt(slotFromNewest, n int) {
	slot := w.slotIndex(slotFromNewest)
	if n >= 0 && n < len(w.shadow[slot]) {
		w.shadow[slot] = w.shadow[slot][:n]
	}
}

// SlotLen reports the byte length of the chosen slot's shadow (0 = newest,
// 1 = previous).
func (w *Writer) SlotLen(slotFromNewest int) int {
	return len(w.shadow[w.slotIndex(slotFromNewest)])
}

// Saves reports how many snapshots were taken.
func (w *Writer) Saves() int64 { return w.saves }

// --- codec helpers ------------------------------------------------------------

func matBytes(m *linalg.Matrix) int {
	if m == nil {
		return 8
	}
	return 8 + 8*len(m.Data)
}

func appendU32(b []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(b, v) }
func appendF64(b []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
}

func appendMatrix(b []byte, m *linalg.Matrix) []byte {
	if m == nil {
		b = appendU32(b, 0)
		return appendU32(b, 0)
	}
	b = appendU32(b, uint32(m.Rows))
	b = appendU32(b, uint32(m.Cols))
	for _, v := range m.Data {
		b = appendF64(b, v)
	}
	return b
}

func readU32(b []byte, at int) (uint32, int) {
	return binary.LittleEndian.Uint32(b[at:]), at + 4
}

func readF64(b []byte, at int) (float64, int) {
	return math.Float64frombits(binary.LittleEndian.Uint64(b[at:])), at + 8
}

func readMatrix(b []byte, at int) (*linalg.Matrix, int, error) {
	if at+8 > len(b) {
		return nil, at, fmt.Errorf("ckpt: matrix header truncated")
	}
	var rows, cols uint32
	rows, at = readU32(b, at)
	cols, at = readU32(b, at)
	if rows == 0 && cols == 0 {
		return nil, at, nil
	}
	n := int(rows) * int(cols)
	if at+8*n > len(b) {
		return nil, at, fmt.Errorf("ckpt: matrix body truncated")
	}
	m := linalg.NewMatrix(int(rows), int(cols))
	for i := 0; i < n; i++ {
		m.Data[i], at = readF64(b, at)
	}
	return m, at, nil
}

package ckpt

import (
	"testing"
)

// tornWriter saves two distinguishable snapshots so the newest slot holds
// iteration 2 and the previous slot iteration 1.
func tornWriter(t *testing.T) *Writer {
	t.Helper()
	w, err := NewWriter(newNode(t), "torn", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	older := sampleState(5, 12, 3, true)
	older.Iteration = 1
	newer := sampleState(6, 12, 3, true)
	newer.Iteration = 2
	if err := w.Save(older); err != nil {
		t.Fatal(err)
	}
	if err := w.Save(newer); err != nil {
		t.Fatal(err)
	}
	return w
}

// TestTornWriteEveryByteOffset corrupts the newest snapshot at every single
// byte offset and asserts Load always falls back to the other valid
// snapshot — never returning garbage, never failing outright. CorruptAt is
// an XOR, so each offset's damage is undone before trying the next; one
// writer serves the whole sweep.
func TestTornWriteEveryByteOffset(t *testing.T) {
	w := tornWriter(t)
	for off := 0; off < w.SlotLen(0); off++ {
		w.CorruptAt(0, off, 0xA5)
		s, err := w.Load()
		if err != nil {
			t.Fatalf("corrupt@%d: load failed: %v", off, err)
		}
		if s.Iteration != 1 {
			t.Fatalf("corrupt@%d: restored iteration %d, want the older snapshot (1)", off, s.Iteration)
		}
		w.CorruptAt(0, off, 0xA5) // undo
	}
}

// TestTornWriteEveryTruncation truncates the newest snapshot to every
// possible length; Load must always yield the older snapshot. The test is
// in-package, so the slot image is restored directly between lengths.
func TestTornWriteEveryTruncation(t *testing.T) {
	w := tornWriter(t)
	intact := append([]byte(nil), w.shadow[w.current]...)
	for n := 0; n < len(intact); n++ {
		w.TruncateAt(0, n)
		s, err := w.Load()
		if err != nil {
			t.Fatalf("truncate@%d: load failed: %v", n, err)
		}
		if s.Iteration != 1 {
			t.Fatalf("truncate@%d: restored iteration %d, want 1", n, s.Iteration)
		}
		w.shadow[w.current] = append([]byte(nil), intact...)
	}
}

// TestTornWriteBothSlots damages both snapshots: Load must refuse with an
// error rather than decode garbage.
func TestTornWriteBothSlots(t *testing.T) {
	w := tornWriter(t)
	w.CorruptAt(0, 20, 0x01)
	w.CorruptAt(1, 20, 0x01)
	if _, err := w.Load(); err == nil {
		t.Fatal("two torn slots decoded anyway")
	}
}

// FuzzCkptTornWrite drives arbitrary (offset, mask, truncation) damage into
// the newest slot and asserts the double-buffer invariant: Load either
// returns the older intact snapshot or (if the damage happened to be a
// no-op) the newest — never garbage, never an error.
func FuzzCkptTornWrite(f *testing.F) {
	f.Add(uint16(0), byte(0xFF), false)
	f.Add(uint16(12), byte(0x01), false)
	f.Add(uint16(100), byte(0xA5), true)
	f.Add(uint16(65535), byte(0x80), true)
	f.Fuzz(func(t *testing.T, off16 uint16, mask byte, truncate bool) {
		w, err := NewWriter(newNode(t), "fuzz", 1<<20)
		if err != nil {
			t.Skip()
		}
		older := sampleState(5, 8, 2, false)
		older.Iteration = 1
		newer := sampleState(6, 8, 2, false)
		newer.Iteration = 2
		if err := w.Save(older); err != nil {
			t.Fatal(err)
		}
		if err := w.Save(newer); err != nil {
			t.Fatal(err)
		}
		slotLen := w.SlotLen(0)
		if truncate {
			w.TruncateAt(0, int(off16)%slotLen)
		} else {
			if mask == 0 {
				mask = 0x01 // normalize: a zero mask is a no-op, not damage
			}
			w.CorruptAt(0, int(off16)%slotLen, mask)
		}
		// The damage always lands inside the newest snapshot, and the
		// checksum covers every byte, so Load must recover exactly the
		// older snapshot — never garbage, never an error.
		s, err := w.Load()
		if err != nil {
			t.Fatalf("load after single-slot damage failed: %v", err)
		}
		if s.Iteration != 1 {
			t.Fatalf("restored iteration %d, want the older snapshot (1)", s.Iteration)
		}
	})
}

package ckpt

import (
	"math"
	"testing"
	"testing/quick"

	"oocnvm/internal/core"
	"oocnvm/internal/linalg"
	"oocnvm/internal/ooc"
	"oocnvm/internal/sim"
)

func sampleState(seed uint64, n, k int, withP bool) State {
	rng := sim.NewRNG(seed)
	s := State{Iteration: int(seed % 1000)}
	s.Values = make([]float64, k)
	for i := range s.Values {
		s.Values[i] = rng.Float64() * 10
	}
	s.X = linalg.NewMatrix(n, k)
	for i := range s.X.Data {
		s.X.Data[i] = rng.Float64() - 0.5
	}
	if withP {
		s.P = linalg.NewMatrix(n, k)
		for i := range s.P.Data {
			s.P.Data[i] = rng.Float64() - 0.5
		}
	}
	return s
}

func statesEqual(a, b State) bool {
	if a.Iteration != b.Iteration || len(a.Values) != len(b.Values) {
		return false
	}
	for i := range a.Values {
		if a.Values[i] != b.Values[i] {
			return false
		}
	}
	eq := func(x, y *linalg.Matrix) bool {
		if (x == nil) != (y == nil) {
			return false
		}
		if x == nil {
			return true
		}
		if x.Rows != y.Rows || x.Cols != y.Cols {
			return false
		}
		for i := range x.Data {
			if x.Data[i] != y.Data[i] {
				return false
			}
		}
		return true
	}
	return eq(a.X, b.X) && eq(a.P, b.P)
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for _, withP := range []bool{true, false} {
		s := sampleState(7, 20, 4, withP)
		raw, err := Encode(s)
		if err != nil {
			t.Fatal(err)
		}
		back, err := Decode(raw)
		if err != nil {
			t.Fatal(err)
		}
		if !statesEqual(s, back) {
			t.Fatalf("round trip diverged (withP=%v)", withP)
		}
	}
}

func TestEncodeRequiresX(t *testing.T) {
	if _, err := Encode(State{}); err == nil {
		t.Fatal("state without X accepted")
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	raw, _ := Encode(sampleState(9, 10, 2, true))
	for _, at := range []int{0, 10, len(raw) / 2, len(raw) - 9} {
		bad := append([]byte(nil), raw...)
		bad[at] ^= 0x55
		if _, err := Decode(bad); err == nil {
			t.Fatalf("corruption at byte %d accepted", at)
		}
	}
	if _, err := Decode(raw[:8]); err == nil {
		t.Fatal("truncated snapshot accepted")
	}
}

// Property: arbitrary states survive the codec.
func TestEncodeDecodeProperty(t *testing.T) {
	f := func(seed uint16, n8, k8 uint8, withP bool) bool {
		n := int(n8%30) + 3
		k := int(k8%5) + 1
		s := sampleState(uint64(seed), n, k, withP)
		raw, err := Encode(s)
		if err != nil {
			return false
		}
		back, err := Decode(raw)
		if err != nil {
			return false
		}
		return statesEqual(s, back)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func newNode(t *testing.T) *core.Node {
	t.Helper()
	n, err := core.NewNode(core.DefaultNodeConfig())
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestWriterSaveLoad(t *testing.T) {
	node := newNode(t)
	w, err := NewWriter(node, "ckpt", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Load(); err == nil {
		t.Fatal("load before any save succeeded")
	}
	s := sampleState(3, 40, 4, true)
	if err := w.Save(s); err != nil {
		t.Fatal(err)
	}
	back, err := w.Load()
	if err != nil {
		t.Fatal(err)
	}
	if !statesEqual(s, back) {
		t.Fatal("restored state differs")
	}
	// The save really went through the simulated device.
	if node.Stats().BytesWritten == 0 {
		t.Fatal("checkpoint never reached the NVM")
	}
}

func TestWriterAlternatesSlots(t *testing.T) {
	node := newNode(t)
	w, _ := NewWriter(node, "ckpt", 1<<20)
	s1 := sampleState(1, 10, 2, false)
	s2 := sampleState(2, 10, 2, false)
	w.Save(s1)
	w.Save(s2)
	back, err := w.Load()
	if err != nil {
		t.Fatal(err)
	}
	if back.Iteration != s2.Iteration {
		t.Fatal("load did not return the newest snapshot")
	}
	if w.Saves() != 2 {
		t.Fatalf("saves = %d", w.Saves())
	}
}

func TestWriterFallsBackOnCorruptNewest(t *testing.T) {
	node := newNode(t)
	w, _ := NewWriter(node, "ckpt", 1<<20)
	s1 := sampleState(11, 12, 2, true)
	s2 := sampleState(12, 12, 2, true)
	w.Save(s1)
	w.Save(s2)
	w.Corrupt(0) // newest slot damaged mid-write
	back, err := w.Load()
	if err != nil {
		t.Fatal(err)
	}
	if back.Iteration != s1.Iteration {
		t.Fatalf("fallback returned iteration %d, want the previous snapshot %d",
			back.Iteration, s1.Iteration)
	}
	// Both slots corrupt: load fails loudly.
	w.Corrupt(1)
	if _, err := w.Load(); err == nil {
		t.Fatal("double corruption went unnoticed")
	}
}

func TestWriterRejectsOversizedSnapshot(t *testing.T) {
	node := newNode(t)
	w, _ := NewWriter(node, "ckpt", 512)
	if err := w.Save(sampleState(5, 100, 4, true)); err == nil {
		t.Fatal("oversized snapshot accepted")
	}
}

// TestCheckpointRestartResumesSolve is the end-to-end story: a solve is
// interrupted, restored from NVM, and finishes in far fewer iterations than
// a cold start — landing on the same eigenvalues.
func TestCheckpointRestartResumesSolve(t *testing.T) {
	h, err := ooc.Hamiltonian(ooc.DefaultHamiltonian(150))
	if err != nil {
		t.Fatal(err)
	}
	op := linalg.DenseOperator{A: h}
	const k = 3

	node := newNode(t)
	w, err := NewWriter(node, "solver", 1<<20)
	if err != nil {
		t.Fatal(err)
	}

	// Phase 1: run 25 iterations, checkpointing every 5, then "crash".
	const crashAt = 25
	_, err = linalg.LOBPCG(op, linalg.LOBPCGOptions{
		K: k, MaxIter: crashAt, Tol: 1e-14, Seed: 4,
		OnIteration: func(it int, values []float64, x, p *linalg.Matrix) {
			if it%5 != 4 {
				return
			}
			st := State{Iteration: it, Values: append([]float64(nil), values...), X: x.Clone()}
			if p != nil {
				st.P = p.Clone()
			}
			if err := w.Save(st); err != nil {
				t.Fatal(err)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	// Phase 2: restore and finish.
	st, err := w.Load()
	if err != nil {
		t.Fatal(err)
	}
	if st.Iteration < 19 {
		t.Fatalf("restored iteration %d, want a late snapshot", st.Iteration)
	}
	resumed, err := linalg.LOBPCG(op, linalg.LOBPCGOptions{
		K: k, MaxIter: 400, Tol: 1e-9, X0: st.X, P0: st.P,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !resumed.Converged {
		t.Fatal("resumed solve did not converge")
	}

	// Cold-start reference for iteration count and values.
	cold, err := linalg.LOBPCG(op, linalg.LOBPCGOptions{K: k, MaxIter: 400, Tol: 1e-9, Seed: 4})
	if err != nil || !cold.Converged {
		t.Fatalf("cold solve: %v", err)
	}
	if resumed.Iterations >= cold.Iterations {
		t.Fatalf("resume took %d iterations vs cold %d; the checkpoint bought nothing",
			resumed.Iterations, cold.Iterations)
	}
	for j := 0; j < k; j++ {
		if math.Abs(resumed.Values[j]-cold.Values[j]) > 1e-7 {
			t.Fatalf("eigenvalue %d differs after restart: %v vs %v",
				j, resumed.Values[j], cold.Values[j])
		}
	}
}

package laf

import (
	"math"
	"testing"

	"oocnvm/internal/linalg"
	"oocnvm/internal/sim"
)

func randomMatrix(seed uint64, rows, cols int) *linalg.Matrix {
	rng := sim.NewRNG(seed)
	m := linalg.NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.Float64()*2 - 1
	}
	return m
}

func newEngine(t *testing.T, budget int64) *Engine {
	t.Helper()
	e, err := New(budget, 4)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestNewValidation(t *testing.T) {
	if _, err := New(1000, 0); err == nil {
		t.Fatal("zero workers accepted")
	}
	if _, err := New(0, 2); err == nil {
		t.Fatal("zero budget accepted")
	}
}

func TestStoreLoadRoundTrip(t *testing.T) {
	e := newEngine(t, 1<<20)
	m := randomMatrix(1, 37, 5) // deliberately not a multiple of panelRows
	if err := e.Store("A", m, 8); err != nil {
		t.Fatal(err)
	}
	back, err := e.Load("A")
	if err != nil {
		t.Fatal(err)
	}
	for i := range m.Data {
		if m.Data[i] != back.Data[i] {
			t.Fatalf("round trip diverged at %d", i)
		}
	}
	meta, err := e.Describe("A")
	if err != nil {
		t.Fatal(err)
	}
	if meta.Panels() != 5 { // ceil(37/8)
		t.Fatalf("panels = %d, want 5", meta.Panels())
	}
}

func TestStoreImmutable(t *testing.T) {
	e := newEngine(t, 1<<20)
	m := randomMatrix(2, 8, 2)
	if err := e.Store("A", m, 4); err != nil {
		t.Fatal(err)
	}
	if err := e.Store("A", m, 4); err == nil {
		t.Fatal("overwrite of immutable array accepted")
	}
	if err := e.Store("B", m, 0); err == nil {
		t.Fatal("zero panelRows accepted")
	}
}

func TestMatMulMatchesDirect(t *testing.T) {
	e := newEngine(t, 1<<20)
	a := randomMatrix(3, 50, 20)
	b := randomMatrix(4, 20, 6)
	if err := e.Store("A", a, 7); err != nil {
		t.Fatal(err)
	}
	if err := e.MatMul("C", "A", b); err != nil {
		t.Fatal(err)
	}
	got, err := e.Load("C")
	if err != nil {
		t.Fatal(err)
	}
	want := a.Mul(b)
	for i := range want.Data {
		if math.Abs(got.Data[i]-want.Data[i]) > 1e-12 {
			t.Fatalf("OoC matmul diverges at %d: %v vs %v", i, got.Data[i], want.Data[i])
		}
	}
}

func TestMatMulUnderTightPoolBudget(t *testing.T) {
	// The pool only holds two panels at a time: the run must stream
	// (load-evict-load) and still be exact.
	a := randomMatrix(5, 64, 16)
	b := randomMatrix(6, 16, 4)
	panelBytes := int64(8 * 8 * 16) // 8 rows x 16 cols x 8 bytes
	e := newEngine(t, 2*panelBytes+64)
	if err := e.Store("A", a, 8); err != nil {
		t.Fatal(err)
	}
	if err := e.MatMul("C", "A", b); err != nil {
		t.Fatal(err)
	}
	_, misses, evictions := e.Pool().Stats()
	if misses == 0 || evictions == 0 {
		t.Fatalf("tight budget did not stream: misses=%d evictions=%d", misses, evictions)
	}
	got, err := e.Load("C")
	if err != nil {
		t.Fatal(err)
	}
	want := a.Mul(b)
	for i := range want.Data {
		if math.Abs(got.Data[i]-want.Data[i]) > 1e-12 {
			t.Fatal("streamed matmul diverged")
		}
	}
}

func TestMatMulShapeErrors(t *testing.T) {
	e := newEngine(t, 1<<20)
	a := randomMatrix(7, 10, 4)
	e.Store("A", a, 5)
	if err := e.MatMul("C", "A", linalg.NewMatrix(5, 2)); err == nil {
		t.Fatal("shape mismatch accepted")
	}
	if err := e.MatMul("C", "ghost", linalg.NewMatrix(4, 2)); err == nil {
		t.Fatal("unknown operand accepted")
	}
	e.MatMul("C", "A", linalg.NewMatrix(4, 2))
	if err := e.MatMul("C", "A", linalg.NewMatrix(4, 2)); err == nil {
		t.Fatal("result overwrite accepted")
	}
}

func TestDotAndNorm(t *testing.T) {
	e := newEngine(t, 1<<20)
	a := randomMatrix(8, 30, 3)
	b := randomMatrix(9, 30, 3)
	e.Store("A", a, 7)
	e.Store("B", b, 7)
	got, err := e.Dot("A", "B")
	if err != nil {
		t.Fatal(err)
	}
	var want float64
	for i := range a.Data {
		want += a.Data[i] * b.Data[i]
	}
	if math.Abs(got-want) > 1e-10 {
		t.Fatalf("dot = %v, want %v", got, want)
	}
	n, err := e.Norm("A")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(n-a.FrobeniusNorm()) > 1e-10 {
		t.Fatalf("norm = %v, want %v", n, a.FrobeniusNorm())
	}
}

func TestDotPartitionMismatch(t *testing.T) {
	e := newEngine(t, 1<<20)
	a := randomMatrix(10, 20, 2)
	e.Store("A", a, 5)
	e.Store("B", a, 4) // same shape, different partitioning
	if _, err := e.Dot("A", "B"); err == nil {
		t.Fatal("partitioning mismatch accepted")
	}
}

func TestScaledAdd(t *testing.T) {
	e := newEngine(t, 1<<20)
	a := randomMatrix(11, 25, 4)
	b := randomMatrix(12, 25, 4)
	e.Store("A", a, 6)
	e.Store("B", b, 6)
	if err := e.ScaledAdd("Y", "A", -0.5, "B"); err != nil {
		t.Fatal(err)
	}
	got, err := e.Load("Y")
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Data {
		want := a.Data[i] - 0.5*b.Data[i]
		if math.Abs(got.Data[i]-want) > 1e-14 {
			t.Fatal("scaled add diverged")
		}
	}
}

func TestFreeReleasesSpace(t *testing.T) {
	e := newEngine(t, 1<<20)
	a := randomMatrix(13, 16, 4)
	e.Store("A", a, 4)
	e.Load("A") // pull panels into the pool
	if err := e.Free("A"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Describe("A"); err == nil {
		t.Fatal("freed array still described")
	}
	if _, err := e.Load("A"); err == nil {
		t.Fatal("freed array still loadable")
	}
}

// TestPowerIterationOutOfCore composes the LAF primitives into a real
// algorithm: power iteration for the dominant eigenvalue of a symmetric
// matrix, fully out-of-core, cross-checked against the Jacobi eigensolver.
func TestPowerIterationOutOfCore(t *testing.T) {
	n := 40
	dense := linalg.NewMatrix(n, n)
	rng := sim.NewRNG(14)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := rng.Float64() - 0.5
			if i == j {
				v += 2
			}
			dense.Set(i, j, v)
			dense.Set(j, i, v)
		}
	}
	e := newEngine(t, 1<<20)
	if err := e.Store("A", dense, 8); err != nil {
		t.Fatal(err)
	}
	x := linalg.NewMatrix(n, 1)
	for i := range x.Data {
		x.Data[i] = 1
	}
	var lambda float64
	for it := 0; it < 200; it++ {
		name := "y" + itoa(it)
		if err := e.MatMul(name, "A", x); err != nil {
			t.Fatal(err)
		}
		y, err := e.Load(name)
		if err != nil {
			t.Fatal(err)
		}
		lambda = y.ColNorm(0)
		y.Scale(1 / lambda)
		x = y
		e.Free(name)
	}
	vals, _, err := linalg.SymEig(dense)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Max(math.Abs(vals[0]), math.Abs(vals[n-1]))
	if math.Abs(lambda-want) > 1e-6 {
		t.Fatalf("power iteration lambda = %v, Jacobi dominant = %v", lambda, want)
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

func TestOperandErrors(t *testing.T) {
	e := newEngine(t, 1<<20)
	if _, err := e.Norm("ghost"); err == nil {
		t.Fatal("norm of unknown array accepted")
	}
	if _, err := e.Dot("ghost", "ghost"); err == nil {
		t.Fatal("dot of unknown arrays accepted")
	}
	if err := e.ScaledAdd("out", "ghost", 1, "ghost"); err == nil {
		t.Fatal("scaled add of unknown arrays accepted")
	}
	if err := e.Free("ghost"); err == nil {
		t.Fatal("free of unknown array accepted")
	}
	a := randomMatrix(20, 10, 2)
	e.Store("A", a, 5)
	e.Store("B", a, 5)
	if err := e.ScaledAdd("A", "A", 1, "B"); err == nil {
		t.Fatal("scaled add over an existing array accepted")
	}
}

// Package laf implements the linear algebra framework of the paper's
// middleware stack (DOoC+LAF, §2.1/§3.1): dense matrices partitioned into
// row panels that live out-of-core as named immutable arrays, with blocked
// operations (multiply, scaled add, dot products, norms) expressed as task
// DAGs over the DOoC scheduler and staged through a DOoC data pool. "By
// using a set of directives and routines exposed by DOoC+LAF, the OoC
// application is able to provide the framework enough knowledge ... to
// transparently handle global and local scheduling of tasks and data
// migration."
package laf

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"

	"oocnvm/internal/dooc"
	"oocnvm/internal/linalg"
)

// Meta describes one out-of-core dense array.
type Meta struct {
	Name      string
	Rows      int
	Cols      int
	PanelRows int
}

// Panels returns the partition count.
func (m Meta) Panels() int { return (m.Rows + m.PanelRows - 1) / m.PanelRows }

// panelName names panel i of an array.
func (m Meta) panelName(i int) string { return fmt.Sprintf("%s[%d]", m.Name, i) }

// panelBounds returns panel i's row range.
func (m Meta) panelBounds(i int) (lo, hi int) {
	lo = i * m.PanelRows
	hi = lo + m.PanelRows
	if hi > m.Rows {
		hi = m.Rows
	}
	return lo, hi
}

// Engine executes blocked operations over a backing store (the "disk") and
// a DOoC data pool (the staging memory).
type Engine struct {
	mu      sync.Mutex
	backing map[string][]byte
	arrays  map[string]Meta

	pool    *dooc.DataPool
	workers int
}

// New creates an engine with the given pool budget (staging memory) and
// worker count.
func New(poolBudget int64, workers int) (*Engine, error) {
	if workers <= 0 {
		return nil, fmt.Errorf("laf: workers must be positive, got %d", workers)
	}
	e := &Engine{
		backing: make(map[string][]byte),
		arrays:  make(map[string]Meta),
		workers: workers,
	}
	pool, err := dooc.NewDataPool(poolBudget, e.loadPanel)
	if err != nil {
		return nil, err
	}
	e.pool = pool
	return e, nil
}

// Pool exposes the staging pool for instrumentation.
func (e *Engine) Pool() *dooc.DataPool { return e.pool }

func (e *Engine) loadPanel(name string) ([]byte, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	b, ok := e.backing[name]
	if !ok {
		return nil, fmt.Errorf("laf: no panel %q on backing storage", name)
	}
	return b, nil
}

// Store writes an in-memory matrix to the backing store as an out-of-core
// array partitioned into panelRows-row panels. Arrays are immutable once
// stored.
func (e *Engine) Store(name string, m *linalg.Matrix, panelRows int) error {
	if panelRows <= 0 {
		return fmt.Errorf("laf: store %q: panelRows must be positive", name)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, dup := e.arrays[name]; dup {
		return fmt.Errorf("laf: store %q: array exists and is immutable", name)
	}
	meta := Meta{Name: name, Rows: m.Rows, Cols: m.Cols, PanelRows: panelRows}
	for i := 0; i < meta.Panels(); i++ {
		lo, hi := meta.panelBounds(i)
		e.backing[meta.panelName(i)] = encodePanel(m.Data[lo*m.Cols : hi*m.Cols])
	}
	e.arrays[name] = meta
	return nil
}

// Describe returns an array's metadata.
func (e *Engine) Describe(name string) (Meta, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	meta, ok := e.arrays[name]
	if !ok {
		return Meta{}, fmt.Errorf("laf: no array %q", name)
	}
	return meta, nil
}

// Load reassembles an out-of-core array into memory (tests, small results).
func (e *Engine) Load(name string) (*linalg.Matrix, error) {
	meta, err := e.Describe(name)
	if err != nil {
		return nil, err
	}
	out := linalg.NewMatrix(meta.Rows, meta.Cols)
	for i := 0; i < meta.Panels(); i++ {
		raw, err := e.pool.Get(meta.panelName(i))
		if err != nil {
			return nil, err
		}
		lo, hi := meta.panelBounds(i)
		vals, err := decodePanel(raw, (hi-lo)*meta.Cols)
		if err != nil {
			return nil, fmt.Errorf("laf: load %q panel %d: %w", name, i, err)
		}
		copy(out.Data[lo*meta.Cols:hi*meta.Cols], vals)
	}
	return out, nil
}

// Free drops an array from backing storage and the pool (space reclamation;
// immutability applies to content, not lifetime).
func (e *Engine) Free(name string) error {
	meta, err := e.Describe(name)
	if err != nil {
		return err
	}
	for i := 0; i < meta.Panels(); i++ {
		if err := e.pool.Drop(meta.panelName(i)); err != nil {
			return err
		}
		e.mu.Lock()
		delete(e.backing, meta.panelName(i))
		e.mu.Unlock()
	}
	e.mu.Lock()
	delete(e.arrays, name)
	e.mu.Unlock()
	return nil
}

// runPanelTasks schedules one task per panel of meta, data-aware.
func (e *Engine) runPanelTasks(meta Meta, op string, fn func(i int, panel []float64) error) error {
	sched, err := dooc.NewScheduler(e.workers, e.pool.Resident)
	if err != nil {
		return err
	}
	tasks := make([]dooc.Task, meta.Panels())
	for i := 0; i < meta.Panels(); i++ {
		i := i
		pname := meta.panelName(i)
		tasks[i] = dooc.Task{
			ID:     fmt.Sprintf("%s:%s", op, pname),
			Inputs: []string{pname},
			Fn: func() error {
				raw, err := e.pool.Get(pname)
				if err != nil {
					return err
				}
				lo, hi := meta.panelBounds(i)
				vals, err := decodePanel(raw, (hi-lo)*meta.Cols)
				if err != nil {
					return err
				}
				return fn(i, vals)
			},
		}
	}
	_, err = sched.Run(tasks)
	return err
}

// MatMul computes C = A × B where A is out-of-core (row panels), B is an
// in-memory block, and the result is stored out-of-core under cname with
// A's partitioning. It is the H×Ψ kernel of the eigensolver expressed in
// LAF terms.
func (e *Engine) MatMul(cname, aname string, b *linalg.Matrix) error {
	meta, err := e.Describe(aname)
	if err != nil {
		return err
	}
	if meta.Cols != b.Rows {
		return fmt.Errorf("laf: matmul %s(%dx%d) x B(%dx%d): shape mismatch",
			aname, meta.Rows, meta.Cols, b.Rows, b.Cols)
	}
	e.mu.Lock()
	if _, dup := e.arrays[cname]; dup {
		e.mu.Unlock()
		return fmt.Errorf("laf: matmul: result %q exists and is immutable", cname)
	}
	e.mu.Unlock()

	out := Meta{Name: cname, Rows: meta.Rows, Cols: b.Cols, PanelRows: meta.PanelRows}
	results := make([][]byte, out.Panels())
	err = e.runPanelTasks(meta, "matmul", func(i int, panel []float64) error {
		lo, hi := meta.panelBounds(i)
		rows := hi - lo
		c := make([]float64, rows*b.Cols)
		for r := 0; r < rows; r++ {
			arow := panel[r*meta.Cols : (r+1)*meta.Cols]
			crow := c[r*b.Cols : (r+1)*b.Cols]
			for k, av := range arow {
				if av == 0 {
					continue
				}
				brow := b.Data[k*b.Cols : (k+1)*b.Cols]
				for j := range crow {
					crow[j] += av * brow[j]
				}
			}
		}
		results[i] = encodePanel(c)
		return nil
	})
	if err != nil {
		return err
	}
	e.mu.Lock()
	for i, raw := range results {
		e.backing[out.panelName(i)] = raw
	}
	e.arrays[cname] = out
	e.mu.Unlock()
	return nil
}

// Dot computes the Frobenius inner product <A, B> of two identically
// partitioned out-of-core arrays.
func (e *Engine) Dot(aname, bname string) (float64, error) {
	a, err := e.Describe(aname)
	if err != nil {
		return 0, err
	}
	bm, err := e.Describe(bname)
	if err != nil {
		return 0, err
	}
	if a.Rows != bm.Rows || a.Cols != bm.Cols || a.PanelRows != bm.PanelRows {
		return 0, fmt.Errorf("laf: dot %s/%s: partitioning mismatch", aname, bname)
	}
	partial := make([]float64, a.Panels())
	err = e.runPanelTasks(a, "dot", func(i int, pa []float64) error {
		raw, err := e.pool.Get(bm.panelName(i))
		if err != nil {
			return err
		}
		lo, hi := bm.panelBounds(i)
		pb, err := decodePanel(raw, (hi-lo)*bm.Cols)
		if err != nil {
			return err
		}
		var s float64
		for k := range pa {
			s += pa[k] * pb[k]
		}
		partial[i] = s
		return nil
	})
	if err != nil {
		return 0, err
	}
	var total float64
	for _, s := range partial {
		total += s
	}
	return total, nil
}

// Norm computes the Frobenius norm of an out-of-core array.
func (e *Engine) Norm(name string) (float64, error) {
	d, err := e.Dot(name, name)
	if err != nil {
		return 0, err
	}
	return math.Sqrt(d), nil
}

// ScaledAdd stores out = A + alpha·B for identically partitioned arrays.
func (e *Engine) ScaledAdd(outName, aname string, alpha float64, bname string) error {
	a, err := e.Describe(aname)
	if err != nil {
		return err
	}
	bm, err := e.Describe(bname)
	if err != nil {
		return err
	}
	if a.Rows != bm.Rows || a.Cols != bm.Cols || a.PanelRows != bm.PanelRows {
		return fmt.Errorf("laf: scaledadd %s/%s: partitioning mismatch", aname, bname)
	}
	e.mu.Lock()
	if _, dup := e.arrays[outName]; dup {
		e.mu.Unlock()
		return fmt.Errorf("laf: scaledadd: result %q exists and is immutable", outName)
	}
	e.mu.Unlock()
	out := Meta{Name: outName, Rows: a.Rows, Cols: a.Cols, PanelRows: a.PanelRows}
	results := make([][]byte, out.Panels())
	err = e.runPanelTasks(a, "scaledadd", func(i int, pa []float64) error {
		raw, err := e.pool.Get(bm.panelName(i))
		if err != nil {
			return err
		}
		lo, hi := bm.panelBounds(i)
		pb, err := decodePanel(raw, (hi-lo)*bm.Cols)
		if err != nil {
			return err
		}
		c := make([]float64, len(pa))
		for k := range pa {
			c[k] = pa[k] + alpha*pb[k]
		}
		results[i] = encodePanel(c)
		return nil
	})
	if err != nil {
		return err
	}
	e.mu.Lock()
	for i, raw := range results {
		e.backing[out.panelName(i)] = raw
	}
	e.arrays[outName] = out
	e.mu.Unlock()
	return nil
}

// --- panel codec --------------------------------------------------------------

func encodePanel(vals []float64) []byte {
	buf := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(buf[i*8:], math.Float64bits(v))
	}
	return buf
}

func decodePanel(raw []byte, want int) ([]float64, error) {
	if len(raw) != 8*want {
		return nil, fmt.Errorf("laf: panel has %d bytes, want %d", len(raw), 8*want)
	}
	vals := make([]float64, want)
	for i := range vals {
		vals[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[i*8:]))
	}
	return vals, nil
}

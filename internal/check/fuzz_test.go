package check

import (
	"bytes"
	"testing"

	"oocnvm/internal/sim"
	"oocnvm/internal/trace"
)

// FuzzWorkloadRoundTrip drives the property-based generator from fuzzed
// parameters and requires the binary trace codec to round-trip the result
// byte-identically: every generated workload must survive
// WriteBlockTrace/ReadBlockTrace unchanged, whatever the mix, skew,
// alignment or op count.
func FuzzWorkloadRoundTrip(f *testing.F) {
	f.Add(uint64(1), uint16(100), 0.45, 0.05, 0.6, 0.05)
	f.Add(uint64(42), uint16(1), 0.0, 1.0, 0.0, 0.0)
	f.Add(uint64(7), uint16(500), 1.0, 0.0, 1.0, 1.0)
	f.Add(uint64(0), uint16(0), 0.3, 0.3, 0.5, 0.5)
	f.Fuzz(func(t *testing.T, seed uint64, n uint16, writeFrac, trimFrac, hotFrac, unaligned float64) {
		clamp := func(x float64) float64 {
			if !(x >= 0) { // also catches NaN
				return 0
			}
			if x > 1 {
				return 1
			}
			return x
		}
		writeFrac = clamp(writeFrac)
		trimFrac = clamp(trimFrac) * (1 - writeFrac)
		p := Params{
			Ops:       int(n),
			WriteFrac: writeFrac,
			TrimFrac:  trimFrac,
			HotFrac:   clamp(hotFrac),
			HotPages:  64,
			Region:    8 << 20,
			MaxPages:  32,
			SyncEvery: 16,
			Unaligned: clamp(unaligned),
			PageSize:  4096,
		}
		ops := Generate(p, sim.NewRNG(seed))
		if len(ops) != p.Ops {
			t.Fatalf("generated %d ops, want %d", len(ops), p.Ops)
		}
		for i, op := range ops {
			if op.Offset < 0 || op.Size <= 0 || op.Offset+op.Size > p.Region {
				t.Fatalf("op %d outside region: %+v", i, op)
			}
		}
		var buf bytes.Buffer
		if err := trace.WriteBlockTrace(&buf, ops); err != nil {
			t.Fatalf("encode: %v", err)
		}
		got, err := trace.ReadBlockTrace(&buf)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if len(got) != len(ops) {
			t.Fatalf("round-trip length %d, want %d", len(got), len(ops))
		}
		for i := range got {
			if got[i] != ops[i] {
				t.Fatalf("op %d mutated: wrote %+v, read %+v", i, ops[i], got[i])
			}
		}
	})
}

// Package check is the cross-layer conformance subsystem: it wraps any
// simulated stack (translator → ssd → nvm over any interconnect) with a
// shadow data-integrity oracle, closed-form analytical envelope checks, and
// a seeded property-based workload generator with trace shrinking. The
// simulator never moves real data, so integrity is checked on the logical
// plane: every placement a translation layer makes is mirrored into a shadow
// map, every translation it serves is verified against that map, and the
// "content" of a physical page is a seeded hash keyed by (LBA, version) that
// must survive GC relocation, superblock retirement, bad-block remap, and
// read-retry unchanged.
package check

import "fmt"

// Violation is one observed departure from a checked invariant.
type Violation struct {
	Kind   string // "integrity", "envelope", "metamorphic" or "error"
	Detail string
}

func (v Violation) String() string { return v.Kind + ": " + v.Detail }

// maxViolations bounds how many violations an oracle or envelope keeps in
// detail; beyond it only the count grows (a broken translator would
// otherwise flood memory with millions of identical reports).
const maxViolations = 64

// Oracle is the shadow data-integrity oracle. It implements nvm.MappingTap
// and maintains the reference logical-to-physical view: mapping (lpn→ppn),
// the per-LBA host write version, and the expected content hash of every
// live physical page. Attach it to a translator with nvm.InstrumentMapping
// (the Checked wrapper does this for you).
type Oracle struct {
	seed    uint64
	mapping map[int64]int64  // lpn -> ppn currently holding its content
	owner   map[int64]int64  // ppn -> lpn it holds (live pages only)
	version map[int64]uint64 // lpn -> host write version (bumped by Checked)
	content map[int64]uint64 // ppn -> expected content hash

	viol  []Violation
	nViol int64

	// Verified counters, for reporting.
	PlacementsSeen int64 // MapWrite events
	ReadsVerified  int64 // host-level page reads checked end-to-end
	TrimsSeen      int64 // MapTrim events
}

// NewOracle returns an empty oracle whose content hashes are derived from
// seed; distinct seeds produce unrelated hash streams.
func NewOracle(seed uint64) *Oracle {
	return &Oracle{
		seed:    seed,
		mapping: make(map[int64]int64),
		owner:   make(map[int64]int64),
		version: make(map[int64]uint64),
		content: make(map[int64]uint64),
	}
}

// hash is the simulated content of logical page lpn at write version ver: a
// SplitMix64-style finalizer over (seed, lpn, ver). Two distinct (lpn, ver)
// pairs colliding is as good as impossible, so a matching hash means the
// page really carries the bytes the host last wrote there.
func (o *Oracle) hash(lpn int64, ver uint64) uint64 {
	x := o.seed ^ uint64(lpn)*0x9e3779b97f4a7c15 ^ ver*0xbf58476d1ce4e5b9
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

func (o *Oracle) report(format string, args ...any) {
	o.nViol++
	if len(o.viol) < maxViolations {
		o.viol = append(o.viol, Violation{Kind: "integrity", Detail: fmt.Sprintf(format, args...)})
	}
}

// BumpVersion records a host write to lpn before the translator places it;
// the next placement of lpn carries the new version's content.
func (o *Oracle) BumpVersion(lpn int64) { o.version[lpn]++ }

// MapWrite implements nvm.MappingTap: lpn's current content now lives at
// ppn. Every placement flows through here — host writes, GC relocation,
// retirement relocation — so the shadow map is always the reference answer.
func (o *Oracle) MapWrite(lpn, ppn int64) {
	o.PlacementsSeen++
	// A live physical page may only be re-purposed for the lpn it already
	// holds (an in-place overwrite under identity mapping); anything else is
	// a double placement: two logical pages claiming one physical page.
	if prev, ok := o.owner[ppn]; ok && prev != lpn {
		if cur, live := o.mapping[prev]; live && cur == ppn {
			o.report("double placement: ppn %d assigned to lpn %d while still holding live lpn %d", ppn, lpn, prev)
		}
	}
	if old, ok := o.mapping[lpn]; ok && old != ppn {
		delete(o.content, old)
		delete(o.owner, old)
	}
	o.mapping[lpn] = ppn
	o.owner[ppn] = lpn
	o.content[ppn] = o.hash(lpn, o.version[lpn])
}

// MapRead implements nvm.MappingTap: the translator served a host read of
// lpn from ppn. Never-placed logical pages (preloaded identity content, fs
// metadata regions) have no shadow entry and are skipped.
func (o *Oracle) MapRead(lpn, ppn int64) {
	o.verify(lpn, ppn, "translator")
}

// verify checks that a read of lpn served from ppn returns the content the
// host last wrote. src labels who claimed the translation ("translator" for
// the tap inside the mapping layer, "host" for the end-to-end check in the
// Checked wrapper).
func (o *Oracle) verify(lpn, ppn int64, src string) {
	want, ok := o.mapping[lpn]
	if !ok {
		return
	}
	o.ReadsVerified++
	if ppn != want {
		o.report("%s read of lpn %d served from ppn %d, content lives at ppn %d", src, lpn, ppn, want)
		return
	}
	if got, live := o.content[ppn]; !live {
		o.report("%s read of lpn %d served from ppn %d whose content was invalidated", src, lpn, ppn)
	} else if got != o.hash(lpn, o.version[lpn]) {
		o.report("%s read of lpn %d from ppn %d returned stale content (version skew)", src, lpn, ppn)
	}
}

// MapTrim implements nvm.MappingTap: lpn was unmapped and its content
// discarded.
func (o *Oracle) MapTrim(lpn int64) {
	o.TrimsSeen++
	if ppn, ok := o.mapping[lpn]; ok {
		delete(o.content, ppn)
		delete(o.owner, ppn)
		delete(o.mapping, lpn)
	}
	delete(o.version, lpn)
}

// Violations returns the recorded integrity violations (capped in detail at
// maxViolations; Count reports the true total).
func (o *Oracle) Violations() []Violation { return o.viol }

// Count reports the total number of integrity violations observed,
// including any beyond the detail cap.
func (o *Oracle) Count() int64 { return o.nViol }

package check

import "oocnvm/internal/trace"

// Predicate reports whether replaying ops still reproduces the failure
// being minimized. Implementations must be deterministic; the shrinker
// calls it many times.
type Predicate func(ops []trace.BlockOp) bool

// maxShrinkAttempts bounds predicate evaluations; ddmin converges long
// before this on any realistic trace, the cap only guards pathological
// predicates.
const maxShrinkAttempts = 4096

// Shrink minimizes a failing trace with delta debugging (ddmin): it
// repeatedly tries dropping chunks of the trace, keeping any reduction that
// still fails, at progressively finer granularity, then finishes with a
// one-op-at-a-time elimination pass. The result still satisfies fails.
func Shrink(ops []trace.BlockOp, fails Predicate) []trace.BlockOp {
	if len(ops) == 0 || !fails(ops) {
		return ops
	}
	attempts := 0
	try := func(candidate []trace.BlockOp) bool {
		if attempts >= maxShrinkAttempts {
			return false
		}
		attempts++
		return fails(candidate)
	}

	cur := append([]trace.BlockOp(nil), ops...)
	n := 2
	for len(cur) >= 2 && n <= len(cur) && attempts < maxShrinkAttempts {
		chunk := (len(cur) + n - 1) / n
		reduced := false
		for start := 0; start < len(cur); start += chunk {
			end := start + chunk
			if end > len(cur) {
				end = len(cur)
			}
			candidate := make([]trace.BlockOp, 0, len(cur)-(end-start))
			candidate = append(candidate, cur[:start]...)
			candidate = append(candidate, cur[end:]...)
			if len(candidate) > 0 && try(candidate) {
				cur = candidate
				n = max(n-1, 2)
				reduced = true
				break
			}
		}
		if !reduced {
			if n >= len(cur) {
				break
			}
			n = min(2*n, len(cur))
		}
	}

	// Final pass: drop single ops until no single op can be removed.
	for again := true; again && attempts < maxShrinkAttempts; {
		again = false
		for i := 0; i < len(cur) && len(cur) > 1; i++ {
			candidate := make([]trace.BlockOp, 0, len(cur)-1)
			candidate = append(candidate, cur[:i]...)
			candidate = append(candidate, cur[i+1:]...)
			if try(candidate) {
				cur = candidate
				again = true
				i--
			}
		}
	}
	return cur
}

// FailsWith builds a shrink predicate that replays a trace through a fresh
// stack built from sc and reports whether any violation (or stack build
// error) occurs.
func FailsWith(sc StackConfig) Predicate {
	return func(ops []trace.BlockOp) bool {
		res, err := Replay(sc, ops)
		return err != nil || len(res.Violations) > 0
	}
}

package check

import (
	"oocnvm/internal/nvm"
	"oocnvm/internal/obs"
	"oocnvm/internal/obs/timeseries"
	"oocnvm/internal/pool"
	"oocnvm/internal/ssd"
)

// Checked wraps an ssd.Translator with the shadow oracle, giving every host
// request end-to-end data-integrity verification. It attaches the oracle as
// the inner translator's mapping tap (so placements made below the host
// interface — GC, retirement, remap — are mirrored), bumps the per-LBA
// version on host writes, and re-verifies the page operations the
// translator returns for a read against the oracle's reference mapping.
// That last step is what makes the check end-to-end: even a translator that
// lies consistently to its own tap cannot serve a host read from the wrong
// physical page without the wrapper noticing.
type Checked struct {
	inner ssd.Translator
	o     *Oracle

	// FlipOffset is a test-only hook that corrupts the offset handed to the
	// inner translator on reads, simulating a translation defect (e.g. a
	// flipped LBA bit). The wrapper still verifies against the original
	// offset, so a non-identity hook must be caught by the oracle. Nil means
	// identity.
	FlipOffset func(offset int64) int64
}

// Wrap builds a Checked translator around inner, creating and attaching a
// fresh oracle seeded with seed.
func Wrap(inner ssd.Translator, seed uint64) *Checked {
	c := &Checked{inner: inner, o: NewOracle(seed)}
	nvm.InstrumentMapping(inner, c.o)
	return c
}

// Oracle exposes the attached shadow oracle (for violation collection).
func (c *Checked) Oracle() *Oracle { return c.o }

// Write implements ssd.Translator: it records the host write in the oracle
// (bumping each covered page's version) and delegates placement.
func (c *Checked) Write(offset, size int64) []nvm.PageOp {
	if size > 0 {
		ps := c.inner.PageSize()
		first, last := offset/ps, (offset+size-1)/ps
		for lpn := first; lpn <= last; lpn++ {
			c.o.BumpVersion(lpn)
		}
	}
	return c.inner.Write(offset, size)
}

// Read implements ssd.Translator: it delegates (through the FlipOffset hook
// when set) and then verifies that each returned page read serves the
// requested logical pages from the physical pages the oracle knows hold
// their current content.
func (c *Checked) Read(offset, size int64) []nvm.PageOp {
	req := offset
	if c.FlipOffset != nil {
		req = c.FlipOffset(offset)
	}
	ops := c.inner.Read(req, size)
	c.verifyRead(offset, size, ops)
	return ops
}

// verifyRead checks the translator's answer to a host read against the
// oracle. Both translators in the tree (FTL and Direct) return exactly one
// OpRead per requested page, in ascending logical order; anything else is a
// shape violation.
func (c *Checked) verifyRead(offset, size int64, ops []nvm.PageOp) {
	if size <= 0 {
		return
	}
	ps := c.inner.PageSize()
	first, last := offset/ps, (offset+size-1)/ps
	want := int(last - first + 1)
	if len(ops) != want {
		c.o.report("host read offset=%d size=%d returned %d page ops, want %d", offset, size, len(ops), want)
		return
	}
	for i, op := range ops {
		if op.Op != nvm.OpRead {
			c.o.report("host read offset=%d size=%d returned %s op at index %d", offset, size, op.Op, i)
			return
		}
		c.o.verify(first+int64(i), op.PPN, "host")
	}
}

// Erase implements ssd.Translator. Invalidation bookkeeping arrives through
// the inner translator's MapTrim tap calls.
func (c *Checked) Erase(offset, size int64) []nvm.PageOp {
	return c.inner.Erase(offset, size)
}

// PageSize implements ssd.Translator.
func (c *Checked) PageSize() int64 { return c.inner.PageSize() }

// CapacityBytes implements ssd.Translator.
func (c *Checked) CapacityBytes() int64 { return c.inner.CapacityBytes() }

// RetireBlock forwards grown-bad-block retirement when the inner translator
// supports it; otherwise it reports OK=false, which is exactly what the
// drive's recovery path does for a translator with no retirement support.
func (c *Checked) RetireBlock(ppn int64) nvm.Retirement {
	if br, ok := c.inner.(ssd.BlockRetirer); ok {
		return br.RetireBlock(ppn)
	}
	return nvm.Retirement{}
}

// MediaTap forwards the inner translator's durable-media tap (nil when the
// inner translator does not model durable metadata), so a checked stack
// mirrors programs and erases into the media model exactly like an
// unchecked one.
func (c *Checked) MediaTap() nvm.MediaTap {
	if mt, ok := c.inner.(interface{ MediaTap() nvm.MediaTap }); ok {
		return mt.MediaTap()
	}
	return nil
}

// SetOpPool forwards the drive's page-op free list to the inner translator
// when it pools; the wrapper itself never retains translation slices, so a
// checked stack recycles exactly like an unchecked one.
func (c *Checked) SetOpPool(p *pool.Buffers[nvm.PageOp]) {
	if op, ok := c.inner.(interface {
		SetOpPool(*pool.Buffers[nvm.PageOp])
	}); ok {
		op.SetOpPool(p)
	}
}

// ReleaseOps forwards the drive's end-of-request release to the inner
// translator.
func (c *Checked) ReleaseOps(ops []nvm.PageOp) {
	if op, ok := c.inner.(interface{ ReleaseOps([]nvm.PageOp) }); ok {
		op.ReleaseOps(ops)
	}
}

// SetProbe forwards observability wiring to the inner translator, so a
// checked stack reports the same obs counters an unchecked one does.
func (c *Checked) SetProbe(p obs.Probe) { obs.Instrument(c.inner, p) }

// RegisterSeries forwards time-series registration to the inner translator.
func (c *Checked) RegisterSeries(s *timeseries.Sampler) { timeseries.Instrument(c.inner, s) }

package check

import (
	"fmt"

	"oocnvm/internal/interconnect"
	"oocnvm/internal/sim"
)

// monoTol is the slack allowed on monotonicity comparisons; the simulator
// is deterministic, so the tolerance only absorbs benign scheduling
// differences, not real regressions.
const monoTol = 0.01

// CheckDeterminism replays the same seeded episode twice through two
// independently built stacks and requires bit-identical results: same seed
// ⇒ same trace ⇒ same timings, counters, breakdowns and fault counts.
func CheckDeterminism(sc StackConfig, p Params) ([]Violation, error) {
	a, err := RunEpisode(sc, p)
	if err != nil {
		return nil, err
	}
	b, err := RunEpisode(sc, p)
	if err != nil {
		return nil, err
	}
	var out []Violation
	out = append(out, a.Violations...)
	if a.Result != b.Result {
		out = append(out, Violation{Kind: "metamorphic", Detail: fmt.Sprintf(
			"same seed %d produced different results:\n--- run 1\n%v\n--- run 2\n%v",
			sc.Seed, a.Result, b.Result)})
	}
	if len(a.Violations) != len(b.Violations) {
		out = append(out, Violation{Kind: "metamorphic", Detail: fmt.Sprintf(
			"same seed %d produced %d violations then %d",
			sc.Seed, len(a.Violations), len(b.Violations))})
	}
	return out, nil
}

// elapsedPair replays the same trace through two stack variants and
// reports (elapsed-first, elapsed-second) plus any per-run violations.
func elapsedPair(first, second StackConfig, p Params) (sim.Time, sim.Time, []Violation, error) {
	ops := Generate(p, sim.NewRNG(first.Seed))
	a, err := Replay(first, ops)
	if err != nil {
		return 0, 0, nil, err
	}
	b, err := Replay(second, ops)
	if err != nil {
		return 0, 0, nil, err
	}
	return a.Result.Elapsed, b.Result.Elapsed, append(a.Violations, b.Violations...), nil
}

func monotone(name string, slow, fast sim.Time) []Violation {
	if float64(fast) > float64(slow)*(1+monoTol) {
		return []Violation{{Kind: "metamorphic", Detail: fmt.Sprintf(
			"%s: better-provisioned stack is slower (%v) than the lesser one (%v)", name, fast, slow)}}
	}
	return nil
}

// CheckLaneMonotonicity verifies that widening the PCIe attachment never
// slows the same workload down (Table 3: more lanes ⇒ more link bandwidth).
func CheckLaneMonotonicity(sc StackConfig, p Params) ([]Violation, error) {
	narrow, wide := sc, sc
	narrow.Config.PCIe.Lanes = 8
	wide.Config.PCIe.Lanes = 16
	e8, e16, viol, err := elapsedPair(narrow, wide, p)
	if err != nil {
		return nil, err
	}
	return append(viol, monotone("pcie x8 -> x16", e8, e16)...), nil
}

// CheckChannelMonotonicity verifies that doubling the channel count never
// slows the same workload down. The workload is sized for the narrower
// geometry so both devices can hold it.
func CheckChannelMonotonicity(sc StackConfig, p Params) ([]Violation, error) {
	few := sc
	few.Geometry = sc.geometry()
	many := few
	many.Geometry.Channels *= 2
	eFew, eMany, viol, err := elapsedPair(few, many, p)
	if err != nil {
		return nil, err
	}
	return append(viol, monotone(fmt.Sprintf("%d -> %d channels", few.Geometry.Channels, many.Geometry.Channels), eFew, eMany)...), nil
}

// CheckPlacementMonotonicity verifies the paper's central claim holds as an
// invariant: moving the device from behind the cluster network (ION-local)
// to compute-local (CNL) never makes the same workload slower.
func CheckPlacementMonotonicity(sc StackConfig, p Params) ([]Violation, error) {
	local, remote := sc, sc
	local.Config.Remote = false
	remote.Config.Remote = true
	if remote.Config.Network == (interconnect.NetworkParams{}) {
		remote.Config.Network = interconnect.QDR4XInfiniBand()
	}
	eLocal, eRemote, viol, err := elapsedPair(remote, local, p)
	if err != nil {
		return nil, err
	}
	// remote is the "slow" leg: local must not exceed it.
	return append(viol, monotone("ION -> CNL placement", eLocal, eRemote)...), nil
}

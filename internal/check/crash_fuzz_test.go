package check

import (
	"testing"

	"oocnvm/internal/experiment"
	"oocnvm/internal/fault"
	"oocnvm/internal/nvm"
	"oocnvm/internal/sim"
)

// FuzzCrashRecovery cuts power at a fuzzed program/erase boundary of a
// fuzzed seeded workload and requires the durability contract to hold after
// the mount-time recovery: every write acked before the cut must read back
// bit-exact against the shadow oracle, no torn page may ever be served as
// clean, and the recovered FTL must pass its structural invariants. A cut
// point past the trace's last boundary degenerates to a clean-shutdown
// mount, which must also satisfy the contract.
func FuzzCrashRecovery(f *testing.F) {
	f.Add(uint64(1), uint32(25), uint16(60))
	f.Add(uint64(7), uint32(1), uint16(40))
	f.Add(uint64(42), uint32(999), uint16(120))
	f.Add(uint64(3), uint32(5000), uint16(80))
	cfg, err := experiment.FindConfig("CNL-EXT4")
	if err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, seed uint64, cut uint32, n uint16) {
		sc := StackConfig{Config: cfg, Cell: nvm.MLC, Seed: seed}
		p := crashParams(sc)
		// Bound the trace so each fuzz iteration stays cheap while leaving
		// enough writes to cross checkpoint and GC activity.
		p.Ops = int(n)%p.Ops + 40
		ops := Generate(p, sim.NewRNG(seed))
		plan := fault.CrashPlan{AfterOps: int64(cut%8192) + 1}
		res, err := CrashReplay(sc, ops, plan)
		if err != nil {
			t.Fatalf("crash replay: %v", err)
		}
		if res.RecoverErr != nil {
			t.Fatalf("crash at %+v: recovery failed: %v", plan, res.RecoverErr)
		}
		for _, v := range res.Violations {
			t.Fatalf("crash at %+v (fired=%v, pe=%d): durability violation: %v",
				plan, res.Crashed, res.PEOps, v)
		}
	})
}

package check

import (
	"fmt"

	"oocnvm/internal/obs/attrib"
)

// CheckAttribution validates one recorder's latency-attribution summary
// against the conservation envelope: every committed request's components
// must sum exactly to its end-to-end simulated latency, every exemplar's
// residual must be zero, and no component may run negative. Attribution is
// derived purely from timestamp differences, so any violation is an
// instrumentation defect, never measurement noise.
func CheckAttribution(sum attrib.Summary) []Violation {
	var out []Violation
	if sum.Violations > 0 {
		out = append(out, Violation{
			Kind: "attribution",
			Detail: fmt.Sprintf("%d of %d requests broke component conservation (max residual %v)",
				sum.Violations, sum.Requests, sum.MaxResidual),
		})
	}
	for c := attrib.Component(0); c < attrib.NumComponents; c++ {
		if sum.Totals[c] < 0 {
			out = append(out, Violation{
				Kind:   "attribution",
				Detail: fmt.Sprintf("component %v total is negative: %v", c, sum.Totals[c]),
			})
		}
	}
	for _, ex := range sum.Exemplars {
		if len(out) >= maxViolations {
			break
		}
		if r := ex.Residual(); r != 0 {
			out = append(out, Violation{
				Kind: "attribution",
				Detail: fmt.Sprintf("request %d (%s offset=%d size=%d): components sum to %v, latency %v (residual %v)",
					ex.ID, attrib.KindName(ex.Kind), ex.Offset, ex.Size, ex.Sum(), ex.Latency(), r),
			})
		}
		for c, d := range ex.Comp {
			if d < 0 {
				out = append(out, Violation{
					Kind: "attribution",
					Detail: fmt.Sprintf("request %d: component %v is negative: %v",
						ex.ID, attrib.Component(c), d),
				})
			}
		}
	}
	return out
}

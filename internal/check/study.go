package check

import (
	"fmt"
	"io"
	"text/tabwriter"

	"oocnvm/internal/experiment"
	"oocnvm/internal/fault"
	"oocnvm/internal/ftl"
	"oocnvm/internal/nvm"
	"oocnvm/internal/sim"
	"oocnvm/internal/ssd"
	"oocnvm/internal/trace"
)

// StudyRow is one checkpoint-interval point of the crash-recovery study:
// the durable-metadata write overhead the interval costs during normal
// operation, against the mean-time-to-recover it buys at the cut.
type StudyRow struct {
	// CheckpointEvery is the mapping-table checkpoint interval in host
	// pages (0 rows use the FTL default).
	CheckpointEvery int64
	// HostPages, JournalPages and CkptPages count page programs up to the
	// cut; MetaOverhead is (journal+checkpoint)/host — the journal's write
	// amplification contribution.
	HostPages    int64
	JournalPages int64
	CkptPages    int64
	MetaOverhead float64
	// MTTR is the simulated mount-time recovery duration; the remaining
	// fields break it down (metadata pages replayed, OOB tags scanned,
	// mappings recovered from the scan).
	MTTR        sim.Time
	PagesRead   int64
	Scanned     int64
	Recovered   int64
	TornPages   int64
	Checkpoints int64
}

// studyReplay drives the trace through a durable FTL stack, cutting power
// at the given program/erase boundary (0 = never, count-only), and
// returns the pre-crash stats, the boundary count, and — when the cut
// fired — the recovery report.
func studyReplay(cfg experiment.Config, cell nvm.CellType, opt experiment.Options,
	ops []trace.BlockOp, window int64, ckptEvery int64, cutAt int64) (ftl.Stats, int64, ftl.RecoveryReport, error) {

	cp := nvm.Params(cell)
	f, err := ftl.New(opt.Geometry, cp, ftl.Config{
		Durable: ftl.DurableConfig{Enabled: true, CheckpointEveryPages: ckptEvery},
	})
	if err != nil {
		return ftl.Stats{}, 0, ftl.RecoveryReport{}, err
	}
	if err := f.Preload(opt.Workload.MatrixBytes); err != nil {
		return ftl.Stats{}, 0, ftl.RecoveryReport{}, err
	}
	inj, err := fault.New(nvm.FaultConfig(opt.Geometry, cp, fault.Profile{}, opt.Seed))
	if err != nil {
		return ftl.Stats{}, 0, ftl.RecoveryReport{}, err
	}
	inj.ArmCrash(fault.CrashPlan{AfterOps: cutAt})
	drive, err := ssd.New(ssd.Config{
		Geometry:    opt.Geometry,
		Cell:        cp,
		Bus:         cfg.Bus,
		Link:        cfg.BuildLink(),
		Translator:  f,
		QueueDepth:  opt.QueueDepth,
		WindowBytes: window,
		Seed:        opt.Seed,
		Fault:       inj,
	})
	if err != nil {
		return ftl.Stats{}, 0, ftl.RecoveryReport{}, err
	}
	for _, op := range ops {
		if inj.Crashed() {
			break
		}
		drive.Submit(op)
	}
	stats := f.Stats()
	if !inj.Crashed() {
		return stats, inj.PEOps(), ftl.RecoveryReport{}, nil
	}
	_, rep, rerr := ftl.Recover(opt.Geometry, cp, ftl.Config{
		Durable: ftl.DurableConfig{Enabled: true, CheckpointEveryPages: ckptEvery},
	}, f.Media())
	if rerr != nil {
		return stats, inj.PEOps(), rep, fmt.Errorf("study recovery at ckpt=%d cut=%d: %w", ckptEvery, cutAt, rerr)
	}
	return stats, inj.PEOps(), rep, nil
}

// CrashStudy measures the checkpoint-interval trade-off on the Figure 7a
// out-of-core workload: for each interval it replays the workload's block
// trace through a durable FTL, cuts power at 75% of the run's
// program/erase boundaries, recovers, and reports journal write
// amplification against mount-time recovery cost.
func CrashStudy(cfg experiment.Config, cell nvm.CellType, opt experiment.Options, intervals []int64) ([]StudyRow, error) {
	ops, window, err := experiment.BlockTrace(cfg, cell, opt)
	if err != nil {
		return nil, err
	}
	rows := make([]StudyRow, 0, len(intervals))
	for _, every := range intervals {
		_, total, _, err := studyReplay(cfg, cell, opt, ops, window, every, 0)
		if err != nil {
			return rows, err
		}
		if total == 0 {
			return rows, fmt.Errorf("study workload produced no program/erase boundaries")
		}
		cut := total * 3 / 4
		if cut == 0 {
			cut = 1
		}
		stats, _, rep, err := studyReplay(cfg, cell, opt, ops, window, every, cut)
		if err != nil {
			return rows, err
		}
		row := StudyRow{
			CheckpointEvery: every,
			HostPages:       stats.HostWrites,
			JournalPages:    stats.JournalPages,
			CkptPages:       stats.CkptPages,
			MTTR:            rep.Duration,
			PagesRead:       rep.JournalPagesRead,
			Scanned:         rep.ScannedPages,
			Recovered:       rep.RecoveredMaps,
			TornPages:       rep.TornPages,
			Checkpoints:     stats.CkptRuns,
		}
		if stats.HostWrites > 0 {
			row.MetaOverhead = float64(stats.JournalPages+stats.CkptPages) / float64(stats.HostWrites)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// WriteStudy renders the study as an aligned table.
func WriteStudy(w io.Writer, rows []StudyRow) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "ckpt-every\thost-pages\tjournal\tckpt\tmeta-WA\tckpts\tMTTR\tmeta-read\tscanned\trecovered\ttorn")
	for _, r := range rows {
		fmt.Fprintf(tw, "%d\t%d\t%d\t%d\t%.4f\t%d\t%v\t%d\t%d\t%d\t%d\n",
			r.CheckpointEvery, r.HostPages, r.JournalPages, r.CkptPages, r.MetaOverhead,
			r.Checkpoints, r.MTTR, r.PagesRead, r.Scanned, r.Recovered, r.TornPages)
	}
	tw.Flush()
}

package check

import (
	"fmt"

	"oocnvm/internal/experiment"
	"oocnvm/internal/fault"
	"oocnvm/internal/ftl"
	"oocnvm/internal/nvm"
	"oocnvm/internal/obs/attrib"
	"oocnvm/internal/sim"
	"oocnvm/internal/ssd"
	"oocnvm/internal/trace"
)

// StackConfig describes one checked stack: a Table 2 experiment row (which
// fixes the translator kind, host interconnect and NVM bus), a cell type, a
// device geometry, and an optional fault profile.
type StackConfig struct {
	Config   experiment.Config
	Cell     nvm.CellType
	Geometry nvm.Geometry // zero value: SmallGeometry()
	Fault    fault.Profile
	Seed     uint64
	// Flip, when set, is installed as the Checked wrapper's FlipOffset
	// test hook (an intentionally injected translation defect).
	Flip func(int64) int64
	// Durable enables the FTL's durable-metadata model (journal +
	// checkpoints + OOB tags). Required for crash episodes.
	Durable ftl.DurableConfig
	// Crash, when set, arms a deterministic power cut on the injector.
	Crash *fault.CrashPlan
}

// SmallGeometry is the episode device: large enough to exercise striping,
// multi-plane merging and superblock GC, small enough that a single episode
// overwrites the whole device in a few hundred requests.
func SmallGeometry() nvm.Geometry {
	return nvm.Geometry{Channels: 2, PackagesPerChannel: 2, DiesPerPackage: 1, BlocksPerPlane: 6}
}

func (sc StackConfig) geometry() nvm.Geometry {
	if sc.Geometry == (nvm.Geometry{}) {
		return SmallGeometry()
	}
	return sc.Geometry
}

// stack bundles one assembled checked drive with everything an episode (or
// a crash replay) needs to interrogate afterwards.
type stack struct {
	drive   *ssd.SSD
	checked *Checked
	env     Envelope
	rec     *attrib.Recorder
	inj     *fault.Injector
}

// buildStack assembles the checked drive for the config. The returned
// Checked wrapper carries the oracle; the envelope is derived from the same
// configuration the stack was built from. Every checked stack also carries
// a latency-attribution recorder so each episode exercises the attribution
// conservation envelope alongside the oracle.
func buildStack(sc StackConfig) (stack, error) {
	geo := sc.geometry()
	cell := nvm.Params(sc.Cell)

	var inner ssd.Translator
	if sc.Config.Kind == experiment.FSUFS {
		inner = ssd.NewDirect(geo, cell)
	} else {
		f, err := ftl.New(geo, cell, ftl.Config{Durable: sc.Durable})
		if err != nil {
			return stack{}, err
		}
		inner = f
	}
	checked := Wrap(inner, sc.Seed)
	checked.FlipOffset = sc.Flip

	var inj *fault.Injector
	if sc.Fault.Enabled() || sc.Crash != nil {
		var err error
		inj, err = fault.New(nvm.FaultConfig(geo, cell, sc.Fault, sc.Seed))
		if err != nil {
			return stack{}, err
		}
		if sc.Crash != nil {
			inj.ArmCrash(*sc.Crash)
		}
	}

	rec := attrib.NewRecorder(0)
	link := sc.Config.BuildLink()
	drive, err := ssd.New(ssd.Config{
		Geometry:   geo,
		Cell:       cell,
		Bus:        sc.Config.Bus,
		Link:       link,
		Translator: checked,
		QueueDepth: ssd.DefaultQueueDepth,
		Seed:       sc.Seed,
		Fault:      inj,
		Attrib:     rec,
	})
	if err != nil {
		return stack{}, err
	}
	return stack{drive: drive, checked: checked, env: NewEnvelope(geo, cell, sc.Config.Bus, link), rec: rec, inj: inj}, nil
}

// Capacity reports the stack's device capacity in bytes (for sizing
// workloads without building the stack twice).
func (sc StackConfig) Capacity() int64 {
	return sc.geometry().Capacity(nvm.Params(sc.Cell))
}

// EpisodeResult is one episode's outcome: the replayed trace, the drive's
// measurements, the latency-attribution aggregate, and every violation the
// oracle, the analytical envelope, and the attribution conservation
// envelope recorded.
type EpisodeResult struct {
	Trace      []trace.BlockOp
	Result     ssd.Result
	Attrib     attrib.Summary
	Violations []Violation
}

// RunEpisode generates a seeded workload, replays it through a freshly
// built checked stack, and returns the trace, result, and violations.
func RunEpisode(sc StackConfig, p Params) (EpisodeResult, error) {
	ops := Generate(p, sim.NewRNG(sc.Seed))
	res, err := Replay(sc, ops)
	res.Trace = ops
	return res, err
}

// Replay runs an explicit trace through a freshly built checked stack. It
// is the primitive both RunEpisode and the shrinker use: building a new
// stack per attempt keeps every replay independent and deterministic.
func Replay(sc StackConfig, ops []trace.BlockOp) (EpisodeResult, error) {
	st, err := buildStack(sc)
	if err != nil {
		return EpisodeResult{}, err
	}
	drive := st.drive
	res := drive.Replay(ops)

	out := EpisodeResult{Trace: ops, Result: res, Attrib: st.rec.Summary()}
	out.Violations = append(out.Violations, st.checked.Oracle().Violations()...)
	out.Violations = append(out.Violations, st.env.Check(res)...)
	out.Violations = append(out.Violations, CheckAttribution(out.Attrib)...)
	// Fault-free stacks must not error: the generator never leaves the
	// device, so any surfaced error is the stack's own defect.
	if err := drive.Err(); err != nil && !sc.Fault.Enabled() {
		out.Violations = append(out.Violations,
			Violation{Kind: "error", Detail: fmt.Sprintf("fault-free replay surfaced %v", err)})
	}
	return out, nil
}

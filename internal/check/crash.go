package check

import (
	"errors"
	"fmt"
	"sort"

	"oocnvm/internal/fault"
	"oocnvm/internal/ftl"
	"oocnvm/internal/nvm"
	"oocnvm/internal/obs/attrib"
	"oocnvm/internal/sim"
	"oocnvm/internal/ssd"
	"oocnvm/internal/trace"
)

// pageShadow is the crash checker's per-logical-page acknowledgment
// history: the last version the host saw acknowledged, whether a trim was
// acknowledged after it, and — for pages touched by the request the power
// cut interrupted — the version or trim that was in flight. Versions here
// count host writes per page exactly like the FTL's durable version tags,
// so matching numbers mean bit-identical content under the oracle's
// content-hash convention (hash = f(seed, lpn, version)).
type pageShadow struct {
	acked        uint64
	trimmed      bool
	inflight     uint64
	inflightTrim bool
}

// CrashResult is one crash episode's outcome.
type CrashResult struct {
	Trace []trace.BlockOp
	// Crashed reports whether the armed cut actually fired; PEOps is the
	// program/erase boundary count at the cut (or the total when it did
	// not fire).
	Crashed bool
	PEOps   int64
	// AckedOps counts host requests acknowledged before the cut.
	AckedOps int
	// Stats snapshots the pre-crash FTL counters (journal overhead).
	Stats ftl.Stats
	// Report and RecoverErr come from the mount-time recovery; State is
	// the recovered FTL's deterministic dump (for replay-identity checks).
	Report     ftl.RecoveryReport
	RecoverErr error
	State      string
	// Elapsed is the drive clock when the last request completed or the
	// cut fired.
	Elapsed    sim.Time
	Violations []Violation
}

// crashConfig normalizes a stack config for crash episodes: durable
// metadata on, and the cut plan installed.
func crashConfig(sc StackConfig, plan fault.CrashPlan) StackConfig {
	sc.Durable.Enabled = true
	sc.Crash = &plan
	return sc
}

// CrashReplay drives a trace through a durable checked stack with a power
// cut armed, recovers the surviving media through the FTL's mount path,
// and asserts the durability contract:
//
//  1. every write acknowledged before the cut reads back bit-exact (its
//     recovered mapping points at a media page whose OOB tag carries the
//     acked version — the shadow oracle's content hash is a pure function
//     of (seed, lpn, version), so version equality is content equality);
//  2. no torn page is ever served as clean data;
//  3. unrecoverable metadata degrades to a read-only mount with the typed
//     ftl.ErrUnrecoverableMeta, and post-mount writes are rejected with it.
//
// The request the cut interrupted is exempt from (1): its pages may
// surface either the old acked version or the in-flight one (a torn write
// is allowed to persist or vanish, never to mangle).
func CrashReplay(sc StackConfig, ops []trace.BlockOp, plan fault.CrashPlan) (CrashResult, error) {
	sc = crashConfig(sc, plan)
	st, err := buildStack(sc)
	if err != nil {
		return CrashResult{}, err
	}
	f, ok := st.checked.inner.(*ftl.FTL)
	if !ok {
		return CrashResult{}, fmt.Errorf("check: crash replay requires an FTL translator (config %v)", sc.Config.Kind)
	}
	ps := st.checked.PageSize()

	out := CrashResult{Trace: ops}
	shadow := make(map[int64]*pageShadow)
	at := func(lpn int64) *pageShadow {
		sh := shadow[lpn]
		if sh == nil {
			sh = &pageShadow{}
			shadow[lpn] = sh
		}
		return sh
	}
	ver := make(map[int64]uint64)
	for _, op := range ops {
		if st.inj.Crashed() {
			break
		}
		first, last := op.Offset/ps, (op.Offset+op.Size-1)/ps
		if op.Kind == trace.Write && op.Size > 0 {
			for lpn := first; lpn <= last; lpn++ {
				ver[lpn]++
			}
		}
		end, err := st.drive.Submit(op)
		out.Elapsed = sim.MaxTime(out.Elapsed, end)
		crashed := st.inj.Crashed()
		if err != nil && !crashed {
			// Fault-free except for the cut: any other error is a stack
			// defect.
			out.Violations = append(out.Violations,
				Violation{Kind: "error", Detail: fmt.Sprintf("crash replay surfaced %v", err)})
			break
		}
		if op.Size <= 0 {
			continue
		}
		switch op.Kind {
		case trace.Write:
			for lpn := first; lpn <= last; lpn++ {
				sh := at(lpn)
				if crashed {
					sh.inflight = ver[lpn]
				} else {
					sh.acked = ver[lpn]
					sh.trimmed = false
				}
			}
		case trace.Erase:
			for lpn := first; lpn <= last; lpn++ {
				sh := at(lpn)
				if crashed {
					sh.inflightTrim = true
				} else {
					sh.trimmed = true
				}
			}
		}
		if !crashed {
			out.AckedOps++
		}
	}
	out.Crashed = st.inj.Crashed()
	out.PEOps = st.inj.PEOps()
	out.Stats = f.Stats()
	if !out.Crashed {
		return out, nil
	}

	// Mount-time recovery from the surviving media.
	geo := sc.geometry()
	cell := nvm.Params(sc.Cell)
	rf, rep, rerr := ftl.Recover(geo, cell, ftl.Config{Durable: sc.Durable}, f.Media())
	out.Report = rep
	out.RecoverErr = rerr
	if rerr != nil {
		if !errors.Is(rerr, ftl.ErrUnrecoverableMeta) {
			out.Violations = append(out.Violations,
				Violation{Kind: "durability", Detail: fmt.Sprintf("recover failed with untyped error: %v", rerr)})
			return out, nil
		}
		if !rep.ReadOnly || !rf.ReadOnly() {
			out.Violations = append(out.Violations,
				Violation{Kind: "durability", Detail: "unrecoverable metadata did not force a read-only mount"})
		}
	}
	out.State = rf.DumpState()
	out.Violations = append(out.Violations, checkDurability(rf, shadow, rerr != nil)...)
	out.Violations = append(out.Violations, exerciseMount(sc, rf, rep, rerr, shadow)...)
	return out, nil
}

// checkDurability compares the recovered FTL against the acked shadow
// history. A read-only salvage mount relaxes clause (1) — acked data may
// be gone, that is what the typed error announces — but clause (2) still
// holds: whatever is mapped must be clean, matching media.
func checkDurability(rf *ftl.FTL, shadow map[int64]*pageShadow, salvaged bool) []Violation {
	var out []Violation
	media := rf.Media()
	lpns := make([]int64, 0, len(shadow))
	for lpn := range shadow {
		lpns = append(lpns, lpn)
	}
	sort.Slice(lpns, func(i, j int) bool { return lpns[i] < lpns[j] })
	for _, lpn := range lpns {
		sh := shadow[lpn]
		ppn, gotVer, mapped := rf.Mapping(lpn)
		if mapped {
			// Clause (2): the mapping must point at a fully programmed,
			// untorn media page tagged with this very (lpn, version).
			oob, programmed, torn := media.PageState(ppn)
			switch {
			case torn:
				out = append(out, Violation{Kind: "durability",
					Detail: fmt.Sprintf("lpn %d maps to torn page %d", lpn, ppn)})
				continue
			case !programmed && gotVer > 0:
				out = append(out, Violation{Kind: "durability",
					Detail: fmt.Sprintf("lpn %d v%d maps to unprogrammed page %d", lpn, gotVer, ppn)})
				continue
			case programmed && (oob.LPN != lpn || oob.Ver != gotVer):
				out = append(out, Violation{Kind: "durability",
					Detail: fmt.Sprintf("lpn %d v%d maps to page %d tagged lpn=%d v%d", lpn, gotVer, ppn, oob.LPN, oob.Ver)})
				continue
			}
		}
		if salvaged {
			continue
		}
		// Clause (1): acked writes survive; the interrupted request's pages
		// may legally surface their in-flight version instead.
		okVer := func(v uint64) bool {
			if v == sh.acked {
				return true
			}
			return sh.inflight > 0 && v == sh.inflight
		}
		switch {
		case sh.trimmed || sh.inflightTrim:
			// Trim records may be lost: resurrection of the last durable
			// copy is allowed, serving anything else is not.
			if mapped && !okVer(gotVer) {
				out = append(out, Violation{Kind: "durability",
					Detail: fmt.Sprintf("lpn %d trimmed but recovered v%d (acked v%d)", lpn, gotVer, sh.acked)})
			}
		case sh.acked > 0:
			if !mapped {
				out = append(out, Violation{Kind: "durability",
					Detail: fmt.Sprintf("lpn %d acked v%d lost: unmapped after recovery", lpn, sh.acked)})
			} else if !okVer(gotVer) {
				out = append(out, Violation{Kind: "durability",
					Detail: fmt.Sprintf("lpn %d acked v%d recovered v%d", lpn, sh.acked, gotVer)})
			}
		default:
			// Never-acked page (only in-flight writes touched it): either
			// the preloaded identity (v0) or the in-flight version may
			// appear.
			if mapped && gotVer != 0 && !okVer(gotVer) {
				out = append(out, Violation{Kind: "durability",
					Detail: fmt.Sprintf("lpn %d never acked but recovered v%d", lpn, gotVer)})
			}
		}
	}
	return out
}

// exerciseMount drives the recovered FTL through a fresh controller: the
// mount books its recovery time on the Recovery attribution component,
// reads of every recovered page must succeed, and — on a read-only mount —
// a write must be rejected with the typed error. The mount recorder's
// conservation envelope is checked like any other episode's.
func exerciseMount(sc StackConfig, rf *ftl.FTL, rep ftl.RecoveryReport, rerr error, shadow map[int64]*pageShadow) []Violation {
	var out []Violation
	rec := attrib.NewRecorder(0)
	var roErr error
	if rerr != nil {
		roErr = rerr
	}
	drive, err := ssd.New(ssd.Config{
		Geometry:   sc.geometry(),
		Cell:       nvm.Params(sc.Cell),
		Bus:        sc.Config.Bus,
		Link:       sc.Config.BuildLink(),
		Translator: rf,
		Seed:       sc.Seed,
		Attrib:     rec,
	})
	if err != nil {
		return []Violation{{Kind: "error", Detail: fmt.Sprintf("post-recovery stack build failed: %v", err)}}
	}
	drive.Mount(ssd.MountInfo{Duration: rep.Duration, ReadOnly: roErr})
	ps := rf.PageSize()
	lpns := make([]int64, 0, len(shadow))
	for lpn := range shadow {
		lpns = append(lpns, lpn)
	}
	sort.Slice(lpns, func(i, j int) bool { return lpns[i] < lpns[j] })
	reads := 0
	for _, lpn := range lpns {
		if _, _, mapped := rf.Mapping(lpn); !mapped {
			continue
		}
		if _, err := drive.Submit(trace.BlockOp{Kind: trace.Read, Offset: lpn * ps, Size: ps}); err != nil {
			out = append(out, Violation{Kind: "durability",
				Detail: fmt.Sprintf("post-recovery read of lpn %d failed: %v", lpn, err)})
		}
		reads++
		if reads >= 64 {
			break
		}
	}
	_, werr := drive.Submit(trace.BlockOp{Kind: trace.Write, Offset: 0, Size: ps})
	if rerr != nil {
		if !errors.Is(werr, ftl.ErrUnrecoverableMeta) {
			out = append(out, Violation{Kind: "durability",
				Detail: fmt.Sprintf("write on read-only mount returned %v, want ErrUnrecoverableMeta", werr)})
		}
	} else if werr != nil {
		out = append(out, Violation{Kind: "durability",
			Detail: fmt.Sprintf("post-recovery write failed: %v", werr)})
	}
	out = append(out, CheckAttribution(rec.Summary())...)
	return out
}

// FailsWithCrash builds a shrink predicate: the trace fails when replaying
// it with the cut armed produces any violation. Shrinking moves the cut
// relative to the workload (fewer preceding operations reach the boundary
// sooner), which is exactly the point — ddmin keeps whatever prefix still
// reproduces the durability violation.
func FailsWithCrash(sc StackConfig, plan fault.CrashPlan) Predicate {
	return func(ops []trace.BlockOp) bool {
		res, err := CrashReplay(sc, ops, plan)
		return err != nil || len(res.Violations) > 0
	}
}

// CrashFailure is one failing crash point with its shrunken reproducer.
type CrashFailure struct {
	Plan       fault.CrashPlan
	Violations []Violation
	Trace      []trace.BlockOp // shrunken reproducer
}

// SweepResult summarizes a crash-point sweep.
type SweepResult struct {
	TotalPEOps int64
	Points     int
	Failures   []CrashFailure
	// DeterminismOK reports the double-run identity check at the sweep's
	// middle crash point: same seed + same cut must recover byte-identical
	// FTL state and an identical recovery report.
	DeterminismOK bool
}

// CrashSweep generates one seeded workload and crashes it at every Nth
// program/erase boundary (plus one wall-clock cut at half the clean run's
// elapsed time), asserting the durability contract at each point. The
// first failing point's trace is shrunk with ddmin. every <= 0 picks a
// stride that yields about twelve points.
func CrashSweep(sc StackConfig, p Params, every int64) (SweepResult, error) {
	ops := Generate(p, sim.NewRNG(sc.Seed))
	// Count-only run: an armed-but-empty plan counts boundaries without
	// ever firing, measuring the sweep's domain.
	probe, err := CrashReplay(sc, ops, fault.CrashPlan{})
	if err != nil {
		return SweepResult{}, err
	}
	res := SweepResult{TotalPEOps: probe.PEOps}
	if probe.PEOps == 0 {
		return res, nil
	}
	if every <= 0 {
		every = probe.PEOps / 12
		if every == 0 {
			every = 1
		}
	}
	plans := make([]fault.CrashPlan, 0, probe.PEOps/every+1)
	for n := every; n <= probe.PEOps; n += every {
		plans = append(plans, fault.CrashPlan{AfterOps: n})
	}
	if probe.Elapsed > 0 {
		plans = append(plans, fault.CrashPlan{AtTime: probe.Elapsed / 2})
	}
	for _, plan := range plans {
		r, err := CrashReplay(sc, ops, plan)
		if err != nil {
			return res, err
		}
		res.Points++
		if len(r.Violations) > 0 {
			fail := CrashFailure{Plan: plan, Violations: r.Violations}
			if len(res.Failures) == 0 {
				fail.Trace = Shrink(ops, FailsWithCrash(sc, plan))
			}
			res.Failures = append(res.Failures, fail)
		}
	}
	// Determinism: replay the middle cut twice; recovered state and report
	// must be byte-identical.
	mid := plans[len(plans)/2]
	a, errA := CrashReplay(sc, ops, mid)
	b, errB := CrashReplay(sc, ops, mid)
	res.DeterminismOK = errA == nil && errB == nil &&
		a.State == b.State && a.Report == b.Report && a.PEOps == b.PEOps
	if !res.DeterminismOK {
		res.Failures = append(res.Failures, CrashFailure{
			Plan: mid,
			Violations: []Violation{{Kind: "durability",
				Detail: fmt.Sprintf("non-deterministic recovery at crash point %+v", mid)}},
		})
	}
	return res, nil
}

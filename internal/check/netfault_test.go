package check

import (
	"strings"
	"testing"

	"oocnvm/internal/netfault"
)

func TestNetfaultScenariosCleanProfiles(t *testing.T) {
	for _, name := range []string{"none", "wan", "lossy", "congested", "flaky", "outage"} {
		sum, err := NetfaultScenarios(name, 11)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(sum.Violations) != 0 {
			t.Fatalf("%s: %d violations, first: %v", name, len(sum.Violations), sum.Violations[0])
		}
		if sum.Runs < 2 || sum.Chunks == 0 {
			t.Fatalf("%s: scenario ran nothing: %+v", name, sum)
		}
	}
}

func TestNetfaultScenariosBlackout(t *testing.T) {
	sum, err := NetfaultScenarios("blackout", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Violations) != 0 {
		t.Fatalf("a correctly-incomplete blackout run is not a violation: %v", sum.Violations)
	}
	if sum.Chunks != 0 {
		t.Fatalf("blackout delivered %d chunks", sum.Chunks)
	}
}

func TestNetfaultScenariosUnknownProfile(t *testing.T) {
	if _, err := NetfaultScenarios("bogus", 1); err == nil {
		t.Fatal("unknown profile accepted")
	}
}

func TestCheckTransferCatchesImpossibleResults(t *testing.T) {
	good := netfault.Result{
		TotalBytes: 100, Chunks: 2, Delivered: 2, Completed: true,
		PayloadBytes: 100, WireBytes: 100, Attempts: 2,
		Start: 0, End: 1e12, Goodput: 100,
	}
	if v := CheckTransfer(good, 1e9, true); len(v) != 0 {
		t.Fatalf("coherent result flagged: %v", v)
	}

	cases := []struct {
		mut  func(*netfault.Result)
		want string
	}{
		{func(r *netfault.Result) { r.Goodput = 2e9 }, "beats"},
		{func(r *netfault.Result) { r.WireBytes = 50 }, "undercut"},
		{func(r *netfault.Result) { r.Retries = 3 }, "retries"},
		{func(r *netfault.Result) { r.Attempts = 7 }, "attempts"},
		{func(r *netfault.Result) { r.Delivered = 1 }, "chunks"},
		{func(r *netfault.Result) { r.Err = "boom" }, "error"},
	}
	for _, c := range cases {
		r := good
		c.mut(&r)
		v := CheckTransfer(r, 1e9, true)
		if len(v) == 0 {
			t.Fatalf("mutation for %q not caught: %+v", c.want, r)
		}
		found := false
		for _, vi := range v {
			if strings.Contains(vi.Detail, c.want) {
				found = true
			}
		}
		if !found {
			t.Fatalf("violations %v lack %q", v, c.want)
		}
	}

	// Completing through a permanent partition is impossible hardware.
	if v := CheckTransfer(good, 1e9, false); len(v) == 0 {
		t.Fatal("completion through a permanent partition not caught")
	}
}

func TestCheckResumeContract(t *testing.T) {
	ref := netfault.Result{WireBytes: 1000, BitmapFNV: 42, Completed: true}
	ok := netfault.Result{WireBytes: 400, BitmapFNV: 42, Skipped: 5, Completed: true}
	if v := CheckResume(ref, ok); len(v) != 0 {
		t.Fatalf("valid resume flagged: %v", v)
	}
	for _, bad := range []netfault.Result{
		{WireBytes: 1000, BitmapFNV: 42, Skipped: 5, Completed: true}, // no savings
		{WireBytes: 400, BitmapFNV: 7, Skipped: 5, Completed: true},   // wrong bitmap
		{WireBytes: 400, BitmapFNV: 42, Completed: true},              // nothing skipped
		{WireBytes: 400, BitmapFNV: 42, Skipped: 5},                   // incomplete
	} {
		if v := CheckResume(ref, bad); len(v) == 0 {
			t.Fatalf("broken resume not caught: %+v", bad)
		}
	}
}

func TestCheckTransferDeterminismFlagsDivergence(t *testing.T) {
	a := netfault.Result{Name: "x", Retries: 1}
	if v := CheckTransferDeterminism(a, a); len(v) != 0 {
		t.Fatal("identical results flagged")
	}
	b := a
	b.Retries = 2
	if v := CheckTransferDeterminism(a, b); len(v) != 1 {
		t.Fatal("diverged results not flagged")
	}
}

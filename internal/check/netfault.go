package check

import (
	"fmt"
	"strings"

	"oocnvm/internal/interconnect"
	"oocnvm/internal/netfault"
	"oocnvm/internal/obs/attrib"
	"oocnvm/internal/sim"
)

// CheckTransfer asserts one degraded-transfer result against its
// analytical envelope: goodput can never beat the degraded path's clean
// rate, wire traffic can never undercut the verified payload, the retry
// counters must cohere, and the run completes exactly when the outage
// schedule leaves positive availability (and the retry budget held).
func CheckTransfer(res netfault.Result, effectiveBps float64, positiveAvail bool) []Violation {
	var out []Violation
	add := func(format string, args ...any) {
		out = append(out, Violation{Kind: "netfault", Detail: fmt.Sprintf(format, args...)})
	}

	if res.End < res.Start {
		add("run ends (%v) before it starts (%v)", res.End, res.Start)
	}
	if res.Goodput > effectiveBps*(1+envTol) {
		add("goodput %.0f B/s beats the degraded path's clean rate %.0f B/s", res.Goodput, effectiveBps)
	}
	if got := sim.Rate(res.PayloadBytes, res.End-res.Start); res.PayloadBytes > 0 &&
		(res.Goodput < got*(1-envTol) || res.Goodput > got*(1+envTol)) {
		add("goodput %.0f B/s inconsistent with %d payload bytes over %v", res.Goodput, res.PayloadBytes, res.End-res.Start)
	}
	if res.WireBytes < res.PayloadBytes {
		add("wire bytes %d undercut verified payload %d", res.WireBytes, res.PayloadBytes)
	}
	if res.PayloadBytes > res.TotalBytes {
		add("payload %d exceeds the transfer total %d", res.PayloadBytes, res.TotalBytes)
	}

	// Counter coherence: every failed attempt is exactly one loss or one
	// corruption, and attempts partition into deliveries and failures.
	if res.Retries != res.Losses+res.Corruptions {
		add("retries %d != losses %d + corruptions %d", res.Retries, res.Losses, res.Corruptions)
	}
	if res.Attempts != int64(res.Delivered)+res.Retries {
		add("attempts %d != delivered %d + retries %d", res.Attempts, res.Delivered, res.Retries)
	}
	if res.StallTime < 0 || res.BackoffTime < 0 || res.RetryTime < 0 {
		add("negative stall/backoff/retry time: %v/%v/%v", res.StallTime, res.BackoffTime, res.RetryTime)
	}

	if res.Completed {
		if res.Skipped+res.Delivered != res.Chunks {
			add("completed with %d skipped + %d delivered != %d chunks", res.Skipped, res.Delivered, res.Chunks)
		}
		if res.Err != "" {
			add("completed run carries error %q", res.Err)
		}
		if !positiveAvail {
			add("transfer completed through a permanent partition")
		}
	} else if positiveAvail && strings.Contains(res.Err, netfault.ErrNoAvailability.Error()) {
		add("run reported no availability but the outage schedule leaves positive availability")
	}
	return out
}

// CheckTransferDeterminism asserts two same-seed runs produced identical
// results — the whole struct, not a summary, since Result is comparable.
func CheckTransferDeterminism(a, b netfault.Result) []Violation {
	if a == b {
		return nil
	}
	return []Violation{{
		Kind:   "netfault",
		Detail: fmt.Sprintf("same-seed runs diverged:\n  a: %v\n  b: %v", a, b),
	}}
}

// CheckResume asserts the resume contract: a run resumed from a journal
// must move strictly fewer wire bytes than the uninterrupted reference
// while converging on the identical verified-chunk bitmap.
func CheckResume(reference, resumed netfault.Result) []Violation {
	var out []Violation
	add := func(format string, args ...any) {
		out = append(out, Violation{Kind: "netfault-resume", Detail: fmt.Sprintf(format, args...)})
	}
	if resumed.Skipped == 0 {
		add("resumed run skipped nothing — the journal was not honored")
	}
	if resumed.WireBytes >= reference.WireBytes {
		add("resumed run moved %d wire bytes, from-scratch moved %d — resume must move strictly fewer",
			resumed.WireBytes, reference.WireBytes)
	}
	if resumed.BitmapFNV != reference.BitmapFNV {
		add("resumed bitmap %x differs from the from-scratch bitmap %x", resumed.BitmapFNV, reference.BitmapFNV)
	}
	if !resumed.Completed {
		add("resumed run did not complete: %s", resumed.Err)
	}
	return out
}

// NetfaultSummary reports one scenario sweep for the CLI.
type NetfaultSummary struct {
	Profile    string
	Runs       int
	Chunks     int
	Retries    int64
	Attributed int64
	Violations []Violation
}

// NetfaultScenarios exercises the degraded-transfer envelope for one named
// profile: two same-seed runs (determinism + per-run envelope +
// attribution conservation), and — when the profile leaves availability —
// an interrupt/resume pair checked against the resume contract.
func NetfaultScenarios(profileName string, seed uint64) (NetfaultSummary, error) {
	prof, err := netfault.ForName(profileName)
	if err != nil {
		return NetfaultSummary{}, err
	}
	sum := NetfaultSummary{Profile: prof.Name}
	newRun := func(stopAfter int, rec *attrib.Recorder) (*netfault.Transfer, error) {
		link := netfault.Wrap(interconnect.NewLine("checknet", 1e9, 10*sim.Microsecond), prof)
		tr, err := netfault.NewTransfer(netfault.Spec{
			Name:       "check-" + prof.Name,
			TotalBytes: 256 << 20,
			ChunkBytes: 8 << 20,
			Seed:       seed,
			StopAfter:  stopAfter,
		}, link)
		if err != nil {
			return nil, err
		}
		tr.SetRecorder(rec)
		return tr, nil
	}
	run := func(stopAfter int, rec *attrib.Recorder) (netfault.Result, error) {
		tr, err := newRun(stopAfter, rec)
		if err != nil {
			return netfault.Result{}, err
		}
		res, runErr := tr.Run(0)
		sum.Runs++
		sum.Chunks += res.Delivered
		sum.Retries += res.Retries
		// An incomplete run is a legitimate outcome under blackout or an
		// exhausted retry budget; the envelope checks judge it.
		_ = runErr
		return res, nil
	}

	rec := attrib.NewRecorder(attrib.DefaultTopK)
	a, err := run(0, rec)
	if err != nil {
		return sum, err
	}
	b, err := run(0, nil)
	if err != nil {
		return sum, err
	}
	avail := prof.PositiveAvailability()
	bps := 1e9
	if prof.BandwidthCapBps > 0 && prof.BandwidthCapBps < bps {
		bps = prof.BandwidthCapBps
	}
	sum.Violations = append(sum.Violations, CheckTransfer(a, bps, avail)...)
	sum.Violations = append(sum.Violations, CheckTransfer(b, bps, avail)...)
	sum.Violations = append(sum.Violations, CheckTransferDeterminism(a, b)...)
	asum := rec.Summary()
	sum.Attributed = asum.Requests
	sum.Violations = append(sum.Violations, CheckAttribution(asum)...)

	if avail && a.Completed {
		// Interrupt after a third of the chunks, then resume from the
		// persisted journal exactly as a restarted process would.
		trStop, err := newRun(a.Chunks/3, nil)
		if err != nil {
			return sum, err
		}
		_, _ = trStop.Run(0) // expected ErrInterrupted; the journal holds the progress
		sum.Runs++
		trRes, err := newRun(0, nil)
		if err != nil {
			return sum, err
		}
		trRes.Journal().Adopt(trStop.Journal().Persisted())
		resumed, _ := trRes.Run(0)
		sum.Runs++
		sum.Chunks += resumed.Delivered
		sum.Retries += resumed.Retries
		sum.Violations = append(sum.Violations, CheckResume(a, resumed)...)
	}
	return sum, nil
}

package check

import (
	"errors"
	"strings"
	"testing"

	"oocnvm/internal/fault"
	"oocnvm/internal/ftl"
	"oocnvm/internal/nvm"
	"oocnvm/internal/sim"
)

// crashParams shrinks the default workload so a sweep (which replays the
// trace once per crash point) stays fast while still overwriting enough of
// the small device to run GC and several checkpoints.
func crashParams(sc StackConfig) Params {
	p := DefaultParams(sc.Capacity(), nvm.Params(sc.Cell).PageSize)
	p.Ops /= 3
	if p.Ops < 40 {
		p.Ops = 40
	}
	return p
}

// TestCrashSweepDurability is the issue's core property: crash a seeded
// workload at every Nth program/erase boundary (and once mid-flight by
// wall clock) and require the durability contract to hold at every point,
// with byte-identical recovery on repeat runs.
func TestCrashSweepDurability(t *testing.T) {
	for _, name := range []string{"CNL-EXT4", "ION-GPFS"} {
		cfg := findConfig(t, name)
		for seed := uint64(1); seed <= 2; seed++ {
			sc := StackConfig{Config: cfg, Cell: nvm.MLC, Seed: seed}
			res, err := CrashSweep(sc, crashParams(sc), 0)
			if err != nil {
				t.Fatalf("%s seed=%d: %v", name, seed, err)
			}
			if res.Points == 0 {
				t.Fatalf("%s seed=%d: sweep had no crash points (total PE ops %d)", name, seed, res.TotalPEOps)
			}
			if !res.DeterminismOK {
				t.Errorf("%s seed=%d: recovery not deterministic", name, seed)
			}
			for _, f := range res.Failures {
				t.Errorf("%s seed=%d crash %+v: %d violations, first: %v",
					name, seed, f.Plan, len(f.Violations), f.Violations[0])
				break
			}
		}
	}
}

// TestCrashReplayRecoversAckedWrites pins the single-point behavior: the
// cut fires, the interrupted request errors with fault.ErrPowerLoss,
// subsequent requests are rejected, and recovery reports a scanned open
// superblock.
func TestCrashReplayRecoversAckedWrites(t *testing.T) {
	sc := StackConfig{Config: findConfig(t, "CNL-EXT4"), Cell: nvm.MLC, Seed: 3}
	p := crashParams(sc)
	res, err := CrashReplay(sc, Generate(p, sim.NewRNG(sc.Seed)), fault.CrashPlan{AfterOps: 25})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Crashed {
		t.Fatal("crash plan never fired")
	}
	if res.PEOps < 25 {
		t.Fatalf("cut at PE op %d, want >= 25", res.PEOps)
	}
	if res.RecoverErr != nil {
		t.Fatalf("recovery failed: %v", res.RecoverErr)
	}
	for _, v := range res.Violations {
		t.Errorf("violation: %v", v)
	}
	if res.State == "" {
		t.Error("empty recovered state dump")
	}
}

// TestCrashUnrecoverableMeta corrupts a committed journal page under the
// recovery horizon and requires the typed error plus a read-only salvage
// mount that still refuses to serve torn pages.
func TestCrashUnrecoverableMeta(t *testing.T) {
	sc := crashConfig(StackConfig{Config: findConfig(t, "CNL-EXT4"), Cell: nvm.MLC, Seed: 5},
		fault.CrashPlan{AfterOps: 60})
	st, err := buildStack(sc)
	if err != nil {
		t.Fatal(err)
	}
	f := st.checked.inner.(*ftl.FTL)
	p := crashParams(sc)
	for _, op := range Generate(p, sim.NewRNG(sc.Seed)) {
		if st.inj.Crashed() {
			break
		}
		st.drive.Submit(op)
	}
	if !st.inj.Crashed() {
		t.Fatal("crash plan never fired")
	}
	m := f.Media()
	if m.MetaPages() == 0 {
		t.Fatal("no committed metadata pages to corrupt")
	}
	if !m.CorruptMeta(m.MetaPages() - 1) {
		t.Fatal("could not corrupt newest metadata page")
	}
	rf, rep, rerr := ftl.Recover(sc.geometry(), nvm.Params(sc.Cell), ftl.Config{Durable: sc.Durable}, m)
	if !errors.Is(rerr, ftl.ErrUnrecoverableMeta) {
		t.Fatalf("recover returned %v, want ErrUnrecoverableMeta", rerr)
	}
	if !rep.ReadOnly || !rf.ReadOnly() {
		t.Fatal("salvage mount is not read-only")
	}
	if !strings.Contains(rf.DumpState(), "readOnly=true") {
		t.Fatal("state dump does not record read-only mount")
	}
}

package check

import (
	"oocnvm/internal/sim"
	"oocnvm/internal/trace"
)

// Params parameterizes the property-based workload generator. The zero
// value is not useful; start from DefaultParams.
type Params struct {
	Ops       int     // number of block requests to generate
	WriteFrac float64 // fraction of ops that are writes
	TrimFrac  float64 // fraction of ops that are erases/TRIMs (rest are reads)
	HotFrac   float64 // fraction of ops aimed at the hot region
	HotPages  int64   // hot region size in pages (from offset 0)
	Region    int64   // addressable bytes (requests stay inside [0, Region))
	MaxPages  int64   // max request size in pages
	SyncEvery int     // every Nth request is a write barrier (0 = never)
	Unaligned float64 // probability a request is deliberately page-unaligned
	PageSize  int64
}

// DefaultParams sizes a mixed hot/cold read-write-trim workload for a
// device of the given capacity: the region covers half the device and the
// op count is chosen so expected write volume is ~1.2x capacity, enough to
// exhaust the free pool and force garbage collection (and, under a fault
// profile, wear and retirement) during the episode.
func DefaultParams(capacity, pageSize int64) Params {
	p := Params{
		WriteFrac: 0.45,
		TrimFrac:  0.05,
		HotFrac:   0.6,
		Region:    capacity / 2,
		MaxPages:  64,
		SyncEvery: 32,
		Unaligned: 0.05,
		PageSize:  pageSize,
	}
	p.HotPages = p.Region / pageSize / 8
	if p.HotPages < 1 {
		p.HotPages = 1
	}
	expPerWrite := float64(p.MaxPages) / 2 * float64(pageSize)
	p.Ops = int(1.2*float64(capacity)/(p.WriteFrac*expPerWrite)) + 1
	return p
}

// Generate produces a deterministic pseudo-random block trace from the
// parameters: same params + same generator state ⇒ byte-identical trace.
func Generate(p Params, rng *sim.RNG) []trace.BlockOp {
	ps := p.PageSize
	regionPages := p.Region / ps
	if regionPages < 1 {
		regionPages = 1
	}
	hot := p.HotPages
	if hot > regionPages {
		hot = regionPages
	}
	ops := make([]trace.BlockOp, 0, p.Ops)
	for i := 0; i < p.Ops; i++ {
		var kind trace.Kind
		switch r := rng.Float64(); {
		case r < p.WriteFrac:
			kind = trace.Write
		case r < p.WriteFrac+p.TrimFrac:
			kind = trace.Erase
		default:
			kind = trace.Read
		}
		var page int64
		if rng.Bool(p.HotFrac) {
			page = rng.Int63n(hot)
		} else {
			page = rng.Int63n(regionPages)
		}
		pages := 1 + rng.Int63n(p.MaxPages)
		if page+pages > regionPages {
			pages = regionPages - page
		}
		offset := page * ps
		size := pages * ps
		if kind != trace.Erase && rng.Bool(p.Unaligned) {
			// Shift into the page and shave the tail so the request stays
			// in-region but crosses page boundaries off-grid.
			shift := rng.Int63n(ps)
			offset += shift
			if size > shift {
				size -= shift
			}
		}
		if size <= 0 {
			size = ps
		}
		op := trace.BlockOp{Kind: kind, Offset: offset, Size: size}
		if p.SyncEvery > 0 && i%p.SyncEvery == p.SyncEvery-1 {
			op.Sync = true
		}
		if kind == trace.Erase {
			op.Meta = true
		}
		ops = append(ops, op)
	}
	return ops
}

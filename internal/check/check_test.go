package check

import (
	"strings"
	"testing"

	"oocnvm/internal/experiment"
	"oocnvm/internal/fault"
	"oocnvm/internal/nvm"
	"oocnvm/internal/sim"
	"oocnvm/internal/ssd"
	"oocnvm/internal/trace"
)

func findConfig(t *testing.T, name string) experiment.Config {
	t.Helper()
	cfg, err := experiment.FindConfig(name)
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}

func profile(t *testing.T, name string) fault.Profile {
	t.Helper()
	p, err := fault.ForName(name)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestEpisodesCleanAcrossConfigs replays seeded random workloads through
// the three architectures of the acceptance matrix (UFS/Direct, local FTL,
// ION-remote FTL), fault-free and under wear, and requires the oracle and
// the envelope to stay silent.
func TestEpisodesCleanAcrossConfigs(t *testing.T) {
	for _, name := range []string{"CNL-UFS", "CNL-EXT4", "ION-GPFS"} {
		for _, prof := range []string{"none", "worn", "eol"} {
			for _, cell := range []nvm.CellType{nvm.MLC, nvm.TLC} {
				cfg := findConfig(t, name)
				for seed := uint64(1); seed <= 3; seed++ {
					sc := StackConfig{Config: cfg, Cell: cell, Seed: seed, Fault: profile(t, prof)}
					p := DefaultParams(sc.Capacity(), nvm.Params(cell).PageSize)
					res, err := RunEpisode(sc, p)
					if err != nil {
						t.Fatalf("%s/%s/%v: %v", name, prof, cell, err)
					}
					if len(res.Violations) > 0 {
						t.Errorf("%s/%s/%v seed=%d: %d violations, first: %v",
							name, prof, cell, seed, len(res.Violations), res.Violations[0])
					}
				}
			}
		}
	}
}

// TestFlippedLBACaughtAndShrunk injects the issue's intentional mapping bug
// — reads are served from a bit-flipped LBA — through the test-only
// FlipOffset hook, and requires (a) the oracle catches it and (b) the
// shrinker minimizes the failing episode to a reproducer of at most 10
// requests.
func TestFlippedLBACaughtAndShrunk(t *testing.T) {
	for _, name := range []string{"CNL-UFS", "CNL-EXT4"} {
		cfg := findConfig(t, name)
		ps := nvm.Params(nvm.MLC).PageSize
		sc := StackConfig{Config: cfg, Cell: nvm.MLC, Seed: 7,
			Flip: func(off int64) int64 { return off ^ ps }}
		p := DefaultParams(sc.Capacity(), ps)
		res, err := RunEpisode(sc, p)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Violations) == 0 {
			t.Fatalf("%s: flipped-LBA bug not caught over %d requests", name, len(res.Trace))
		}
		small := Shrink(res.Trace, FailsWith(sc))
		if len(small) > 10 {
			t.Fatalf("%s: shrunk reproducer has %d requests, want <= 10", name, len(small))
		}
		if rep, _ := Replay(sc, small); len(rep.Violations) == 0 {
			t.Fatalf("%s: shrunk trace no longer reproduces the violation", name)
		}
		t.Logf("%s: %d requests shrunk to %d", name, len(res.Trace), len(small))
	}
}

// TestOracleSemantics drives the oracle directly through the MappingTap
// surface and checks its verdicts case by case.
func TestOracleSemantics(t *testing.T) {
	o := NewOracle(1)
	o.BumpVersion(5)
	o.MapWrite(5, 100)
	o.MapRead(5, 100)
	if n := o.Count(); n != 0 {
		t.Fatalf("clean write/read flagged: %v", o.Violations())
	}
	o.MapRead(5, 101) // wrong physical page
	if n := o.Count(); n != 1 {
		t.Fatalf("misdirected read not flagged, count=%d", n)
	}
	o.MapRead(99, 12345) // never written: unknown, must not flag
	if n := o.Count(); n != 1 {
		t.Fatalf("read of unplaced lpn flagged: %v", o.Violations())
	}
	o.BumpVersion(6)
	o.MapWrite(6, 100) // 100 still holds live lpn 5
	if n := o.Count(); n != 2 {
		t.Fatalf("double placement not flagged, count=%d", n)
	}
	o.MapTrim(5)
	o.MapRead(5, 100) // trimmed: unknown again, must not flag
	if n := o.Count(); n != 2 {
		t.Fatalf("read after trim flagged: %v", o.Violations())
	}
	// Relocation preserves content: same version moved to a new ppn.
	o.MapWrite(6, 200)
	o.MapRead(6, 200)
	if n := o.Count(); n != 2 {
		t.Fatalf("relocated read flagged: %v", o.Violations())
	}
	o.MapRead(6, 100) // stale pre-relocation location
	if n := o.Count(); n != 3 {
		t.Fatalf("stale read not flagged, count=%d", n)
	}
}

// TestEnvelopeFlagsImpossibleResults fabricates results that violate the
// closed-form bounds and checks each bound fires.
func TestEnvelopeFlagsImpossibleResults(t *testing.T) {
	geo := SmallGeometry()
	cell := nvm.Params(nvm.MLC)
	cfg := findConfig(t, "CNL-UFS")
	env := NewEnvelope(geo, cell, cfg.Bus, cfg.BuildLink())

	mk := func(reads, programs int64, span sim.Time) ssd.Result {
		var r ssd.Result
		r.Stats.Reads = reads
		r.Stats.Programs = programs
		r.Stats.BytesRead = reads * cell.PageSize
		r.Stats.BytesWritten = programs * cell.PageSize
		r.Stats.Span = span
		return r
	}

	if v := env.Check(mk(1000, 0, sim.Second)); len(v) != 0 {
		t.Fatalf("plausible result flagged: %v", v)
	}
	// 1000 pages in 1us beats every transfer and activation floor.
	if v := env.Check(mk(1000, 0, sim.Microsecond)); len(v) == 0 {
		t.Fatal("impossibly fast result not flagged")
	}
	bad := mk(1000, 0, sim.Second)
	bad.Stats.BytesRead++ // byte/page counters disagree
	if v := env.Check(bad); len(v) == 0 {
		t.Fatal("conservation violation not flagged")
	}
	bad = mk(0, 0, 0)
	bad.Stats.ChannelUtilization = 1.5
	bad.Stats.Reads = 1
	bad.Stats.BytesRead = cell.PageSize
	bad.Stats.Span = sim.Second
	if v := env.Check(bad); len(v) == 0 {
		t.Fatal("out-of-range utilization not flagged")
	}
}

// TestGenerateDeterministicAndBounded checks the generator is seed-stable
// and keeps every request inside the configured region.
func TestGenerateDeterministicAndBounded(t *testing.T) {
	p := DefaultParams(32<<20, 4096)
	a := Generate(p, sim.NewRNG(9))
	b := Generate(p, sim.NewRNG(9))
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("op %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	var kinds [3]int
	for _, op := range a {
		kinds[op.Kind]++
		if op.Offset < 0 || op.Size <= 0 || op.Offset+op.Size > p.Region {
			t.Fatalf("op outside region: %+v", op)
		}
	}
	for k, n := range kinds {
		if n == 0 {
			t.Fatalf("kind %v never generated in %d ops", trace.Kind(k), len(a))
		}
	}
	if c := Generate(p, sim.NewRNG(10)); len(c) == len(a) {
		same := true
		for i := range c {
			if c[i] != a[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical traces")
		}
	}
}

// TestShrinkMinimizes checks ddmin on a synthetic predicate: the failure
// needs one specific write followed (anywhere later) by one specific read.
func TestShrinkMinimizes(t *testing.T) {
	p := DefaultParams(32<<20, 4096)
	ops := Generate(p, sim.NewRNG(3))
	fails := func(ops []trace.BlockOp) bool {
		wrote := false
		for _, op := range ops {
			if op.Kind == trace.Write && op.Offset < 1<<20 {
				wrote = true
			}
			if wrote && op.Kind == trace.Read && op.Offset < 1<<20 {
				return true
			}
		}
		return false
	}
	if !fails(ops) {
		t.Skip("seed produced no failing pattern")
	}
	small := Shrink(ops, fails)
	if len(small) != 2 {
		t.Fatalf("shrunk to %d ops, want 2: %+v", len(small), small)
	}
	if !fails(small) {
		t.Fatal("shrunk trace no longer fails")
	}
}

// TestMetamorphicInvariantsHold runs the metamorphic relations on
// representative configs: determinism, lane/channel monotonicity, and the
// paper's ION→CNL placement claim.
func TestMetamorphicInvariantsHold(t *testing.T) {
	for _, name := range []string{"CNL-UFS", "CNL-EXT4"} {
		sc := StackConfig{Config: findConfig(t, name), Cell: nvm.MLC, Seed: 11}
		p := DefaultParams(sc.Capacity(), nvm.Params(nvm.MLC).PageSize)
		for _, run := range []struct {
			label string
			fn    func(StackConfig, Params) ([]Violation, error)
		}{
			{"determinism", CheckDeterminism},
			{"lanes", CheckLaneMonotonicity},
			{"channels", CheckChannelMonotonicity},
			{"placement", CheckPlacementMonotonicity},
		} {
			viol, err := run.fn(sc, p)
			if err != nil {
				t.Fatalf("%s/%s: %v", name, run.label, err)
			}
			if len(viol) > 0 {
				t.Errorf("%s/%s: %v", name, run.label, viol[0])
			}
		}
	}
}

// TestCheckedForwardsRetirement ensures the wrapper exposes the inner
// translator's retirement capability (and degrades gracefully without it),
// so fault recovery behaves identically through the checked stack.
func TestCheckedForwardsRetirement(t *testing.T) {
	geo := SmallGeometry()
	cell := nvm.Params(nvm.MLC)
	d := ssd.NewDirect(geo, cell)
	c := Wrap(d, 1)
	if ret := c.RetireBlock(0); !ret.OK || !ret.Retired {
		t.Fatalf("retirement not forwarded: %+v", ret)
	}
	if _, isRetirer := any(c).(ssd.BlockRetirer); !isRetirer {
		t.Fatal("Checked must satisfy ssd.BlockRetirer")
	}
}

// TestViolationDetailCap keeps a pathologically broken stack from flooding
// memory: details are capped while the count keeps the truth.
func TestViolationDetailCap(t *testing.T) {
	o := NewOracle(1)
	o.MapWrite(1, 50)
	for lpn := int64(2); lpn < 200; lpn++ {
		o.MapWrite(lpn, 50) // every placement collides
	}
	if len(o.Violations()) > maxViolations {
		t.Fatalf("detail list grew to %d, cap is %d", len(o.Violations()), maxViolations)
	}
	if o.Count() < int64(len(o.Violations())) || o.Count() < 100 {
		t.Fatalf("count %d inconsistent with cap", o.Count())
	}
	if !strings.Contains(o.Violations()[0].String(), "integrity") {
		t.Fatalf("unexpected violation rendering: %v", o.Violations()[0])
	}
}

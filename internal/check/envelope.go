package check

import (
	"fmt"

	"oocnvm/internal/nvm"
	"oocnvm/internal/ssd"
)

// Envelope holds the closed-form analytical bounds implied by a stack's
// configuration: the host link's line rate (lanes × per-lane rate ×
// encoding efficiency, already folded into Link.BytesPerSec), the aggregate
// channel-bus bandwidth, and the die-level operation timings of Table 1. A
// simulated result outside these bounds is impossible hardware, however
// plausible it looks.
type Envelope struct {
	LinkBps float64
	Geo     nvm.Geometry
	Cell    nvm.CellParams
	Bus     nvm.BusParams
}

// NewEnvelope derives the envelope for a configured stack.
func NewEnvelope(geo nvm.Geometry, cell nvm.CellParams, bus nvm.BusParams, link nvm.Link) Envelope {
	return Envelope{LinkBps: link.BytesPerSec(), Geo: geo, Cell: cell, Bus: bus}
}

// envTol absorbs float rounding in the bound comparisons; real violations
// overshoot by whole factors, not fractions of a percent.
const envTol = 0.01

// infiniteLinkBps marks the Infinite link (1e18 B/s); above this threshold
// the link imposes no meaningful bound.
const infiniteLinkBps = 1e17

// Check asserts a replay result against the envelope and returns every
// bound it breaks.
func (e Envelope) Check(res ssd.Result) []Violation {
	var out []Violation
	add := func(format string, args ...any) {
		out = append(out, Violation{Kind: "envelope", Detail: fmt.Sprintf(format, args...)})
	}
	st := res.Stats

	// Conservation: the byte counters and the page-op counters must agree —
	// all media traffic moves whole pages.
	if st.BytesRead != st.Reads*e.Cell.PageSize {
		add("conservation: %d bytes read != %d page reads x %d B pages", st.BytesRead, st.Reads, e.Cell.PageSize)
	}
	if st.BytesWritten != st.Programs*e.Cell.PageSize {
		add("conservation: %d bytes written != %d programs x %d B pages", st.BytesWritten, st.Programs, e.Cell.PageSize)
	}

	// Utilizations and occupancies are fractions of the span.
	for _, u := range []struct {
		name string
		v    float64
	}{
		{"channel utilization", st.ChannelUtilization},
		{"package utilization", st.PackageUtilization},
		{"bus occupancy", st.BusOccupancy},
	} {
		if u.v < 0 || u.v > 1+envTol {
			add("%s %.4f outside [0,1]", u.name, u.v)
		}
	}

	media := st.BytesRead + st.BytesWritten
	if media == 0 && st.Erases == 0 {
		return out
	}
	if st.Span <= 0 {
		add("media did %d bytes and %d erases in non-positive span %v", media, st.Erases, st.Span)
		return out
	}
	span := st.Span.Seconds()

	// Upper bound: media throughput cannot beat the narrower of the host
	// link and the aggregate channel buses. Every media byte (including GC
	// and relocation traffic) crosses both.
	chBps := float64(e.Geo.Channels) * e.Bus.BytesPerSec()
	capBps := chBps
	if e.LinkBps < infiniteLinkBps && e.LinkBps < capBps {
		capBps = e.LinkBps
	}
	if got := float64(media) / span; got > capBps*(1+envTol) {
		add("media rate %.1f MB/s exceeds configured ceiling %.1f MB/s (link %.1f, channels %.1f)",
			got/1e6, capBps/1e6, e.LinkBps/1e6, chBps/1e6)
	}

	// Lower bounds on the span: each resource alone needs at least this
	// long. Multi-plane merging shares one activation across at most Planes
	// pages, and the device has Dies() independent dies.
	dies := float64(e.Geo.Dies())
	planes := float64(e.Cell.Planes)
	bounds := []struct {
		name string
		need float64 // seconds
	}{
		{"link transfer", float64(media) / e.LinkBps},
		{"channel transfer", float64(media) / chBps},
		{"read activation", float64(st.Reads) * e.Cell.ReadLatency.Seconds() / (planes * dies)},
		{"program activation", float64(st.Programs) * e.Cell.ProgramLatencyMin.Seconds() / (planes * dies)},
		{"erase activation", float64(st.Erases) * e.Cell.EraseLatency.Seconds() / (planes * dies)},
	}
	for _, b := range bounds {
		if span < b.need*(1-envTol) {
			add("span %.3fms beats the %s floor %.3fms — faster than the configured hardware allows",
				span*1e3, b.name, b.need*1e3)
		}
	}
	return out
}

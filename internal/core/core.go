// Package core is the top of the library: it assembles the paper's proposed
// system — a compute node with local NVM managed by the Unified File System
// — into one object an application can adopt: allocate named arrays on raw
// NVM, stage data into them, stream them back at NVM-transaction speed, and
// account simulated time for every byte moved.
//
// It is the programmatic face of Figure 2b: where the evaluation harness
// (internal/experiment) replays traces to regenerate the paper's charts,
// core.Node is the API a new out-of-core application would build against.
package core

import (
	"fmt"

	"oocnvm/internal/interconnect"
	"oocnvm/internal/nvm"
	"oocnvm/internal/sim"
	"oocnvm/internal/ssd"
	"oocnvm/internal/trace"
	"oocnvm/internal/ufs"
)

// NodeConfig selects the compute node's local NVM hardware.
type NodeConfig struct {
	Geometry nvm.Geometry
	Cell     nvm.CellType
	Bus      nvm.BusParams
	PCIe     interconnect.PCIeConfig
	// QueueDepth bounds outstanding requests; zero selects the default.
	QueueDepth int
	// WindowBytes bounds in-flight data; zero means queue-entry bound only
	// (UFS clients issue asynchronously).
	WindowBytes int64
	Seed        uint64
}

// DefaultNodeConfig is the paper's software-optimized baseline: the standard
// 8-channel SSD with SLC NAND behind bridged PCIe 2.0 x8, driven through UFS.
func DefaultNodeConfig() NodeConfig {
	return NodeConfig{
		Geometry: nvm.PaperGeometry(),
		Cell:     nvm.SLC,
		Bus:      nvm.ONFi3SDR(),
		PCIe:     interconnect.PCIeConfig{Gen: interconnect.PCIeGen2, Lanes: 8, Bridged: true},
	}
}

// NativeNodeConfig is the paper's hardware-optimized endpoint (CNL-NATIVE-16):
// native PCIe 3.0 x16 controller and the DDR NVM bus.
func NativeNodeConfig(cell nvm.CellType) NodeConfig {
	c := DefaultNodeConfig()
	c.Cell = cell
	c.Bus = nvm.FutureDDR()
	c.PCIe = interconnect.PCIeConfig{Gen: interconnect.PCIeGen3, Lanes: 16, Bridged: false}
	return c
}

// Node is a compute node with UFS-managed local NVM.
type Node struct {
	cfg   NodeConfig
	cell  nvm.CellParams
	fs    *ufs.UFS
	drive *ssd.SSD

	bytesRead    int64
	bytesWritten int64
}

// NewNode builds the node.
func NewNode(cfg NodeConfig) (*Node, error) {
	cell := nvm.Params(cfg.Cell)
	u, err := ufs.New(cfg.Geometry.Capacity(cell), cell.BlockSize())
	if err != nil {
		return nil, err
	}
	drive, err := ssd.New(ssd.Config{
		Geometry:    cfg.Geometry,
		Cell:        cell,
		Bus:         cfg.Bus,
		Link:        interconnect.NewPCIeLine(cfg.PCIe),
		Translator:  ssd.NewDirect(cfg.Geometry, cell),
		QueueDepth:  cfg.QueueDepth,
		WindowBytes: cfg.WindowBytes,
		Seed:        cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	return &Node{cfg: cfg, cell: cell, fs: u, drive: drive}, nil
}

// Capacity reports the node's raw NVM capacity in bytes.
func (n *Node) Capacity() int64 { return n.fs.Capacity() }

// UFS exposes the node's space manager for advanced callers (wear queries,
// extent enumeration).
func (n *Node) UFS() *ufs.UFS { return n.fs }

// Alloc reserves a named array on the local NVM.
func (n *Node) Alloc(name string, size int64) (ufs.Extent, error) {
	return n.fs.Alloc(name, size)
}

// Write stages [off, off+size) of the named array onto the NVM, enforcing
// erase-before-write, and advances simulated time.
func (n *Node) Write(name string, off, size int64) error {
	ops, err := n.fs.Write(name, off, size)
	if err != nil {
		return err
	}
	n.submit(ops)
	n.bytesWritten += size
	return nil
}

// Read streams [off, off+size) of the named array from the NVM.
func (n *Node) Read(name string, off, size int64) error {
	ops, err := n.fs.Read(name, off, size)
	if err != nil {
		return err
	}
	n.submit(ops)
	n.bytesRead += size
	return nil
}

// Seal marks an array immutable (the DOoC write-once semantics).
func (n *Node) Seal(name string) error { return n.fs.Seal(name) }

// Erase reclaims an array's blocks (host-managed erase-before-write).
func (n *Node) Erase(name string) error {
	ops, err := n.fs.Erase(name)
	if err != nil {
		return err
	}
	n.submit(ops)
	return nil
}

func (n *Node) submit(ops []trace.BlockOp) {
	for _, op := range ops {
		n.drive.Submit(op)
	}
}

// Stats summarizes the node's simulated activity.
type Stats struct {
	Elapsed      sim.Time
	BytesRead    int64
	BytesWritten int64
	ReadMBps     float64
	Device       nvm.Stats
}

// Stats drains outstanding I/O and reports totals.
func (n *Node) Stats() Stats {
	res := n.drive.Finish()
	return Stats{
		Elapsed:      res.Elapsed,
		BytesRead:    n.bytesRead,
		BytesWritten: n.bytesWritten,
		ReadMBps:     res.MBps(),
		Device:       res.Stats,
	}
}

// Storage adapts a node extent to the ooc.Storage contract so the
// out-of-core solvers stream their matrices through the simulated stack.
type Storage struct {
	node *Node
	name string
}

// NewStorage opens the named extent as an application storage client.
func (n *Node) NewStorage(name string) (*Storage, error) {
	if _, ok := n.fs.Lookup(name); !ok {
		return nil, fmt.Errorf("core: no extent %q on this node", name)
	}
	return &Storage{node: n, name: name}, nil
}

// ReadAt streams a byte range of the extent.
func (s *Storage) ReadAt(offset, size int64) {
	// Errors here mean the caller read outside its own extent; the solver
	// interface is fire-and-forget, so surface violations loudly.
	if err := s.node.Read(s.name, offset, size); err != nil {
		panic(err)
	}
}

// WriteAt stages a byte range of the extent.
func (s *Storage) WriteAt(offset, size int64) {
	if err := s.node.Write(s.name, offset, size); err != nil {
		panic(err)
	}
}

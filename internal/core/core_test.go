package core

import (
	"math"
	"testing"

	"oocnvm/internal/linalg"
	"oocnvm/internal/nvm"
	"oocnvm/internal/ooc"
)

func newNode(t *testing.T) *Node {
	t.Helper()
	n, err := NewNode(DefaultNodeConfig())
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestNodeLifecycle(t *testing.T) {
	n := newNode(t)
	if n.Capacity() <= 0 {
		t.Fatal("no capacity")
	}
	if _, err := n.Alloc("data", 16<<20); err != nil {
		t.Fatal(err)
	}
	if err := n.Write("data", 0, 16<<20); err != nil {
		t.Fatal(err)
	}
	if err := n.Seal("data"); err != nil {
		t.Fatal(err)
	}
	if err := n.Read("data", 0, 16<<20); err != nil {
		t.Fatal(err)
	}
	st := n.Stats()
	if st.BytesRead != 16<<20 || st.BytesWritten != 16<<20 {
		t.Fatalf("accounting: %+v", st)
	}
	if st.Elapsed <= 0 || st.ReadMBps <= 0 {
		t.Fatalf("no simulated time: %+v", st)
	}
}

func TestNodeEraseBeforeWrite(t *testing.T) {
	n := newNode(t)
	n.Alloc("x", 1<<20)
	if err := n.Write("x", 0, 1<<20); err != nil {
		t.Fatal(err)
	}
	if err := n.Write("x", 0, 1<<20); err == nil {
		t.Fatal("overwrite without erase accepted")
	}
	if err := n.Erase("x"); err != nil {
		t.Fatal(err)
	}
	if err := n.Write("x", 0, 1<<20); err != nil {
		t.Fatal(err)
	}
	if n.Stats().Device.Erases == 0 {
		t.Fatal("host-managed erase never reached the device")
	}
}

func TestNodeErrorsSurface(t *testing.T) {
	n := newNode(t)
	if err := n.Read("ghost", 0, 1); err == nil {
		t.Fatal("read of unknown extent accepted")
	}
	if err := n.Write("ghost", 0, 1); err == nil {
		t.Fatal("write of unknown extent accepted")
	}
	if err := n.Erase("ghost"); err == nil {
		t.Fatal("erase of unknown extent accepted")
	}
	if _, err := n.NewStorage("ghost"); err == nil {
		t.Fatal("storage for unknown extent accepted")
	}
}

func TestNativeConfigFaster(t *testing.T) {
	run := func(cfg NodeConfig) float64 {
		n, err := NewNode(cfg)
		if err != nil {
			t.Fatal(err)
		}
		n.Alloc("d", 64<<20)
		n.Write("d", 0, 64<<20)
		for i := 0; i < 2; i++ {
			for off := int64(0); off < 64<<20; off += 8 << 20 {
				n.Read("d", off, 8<<20)
			}
		}
		return n.Stats().ReadMBps
	}
	base := run(DefaultNodeConfig())
	native := run(NativeNodeConfig(nvm.SLC))
	// The measured rate includes the one-time staging writes (tPROG-bound on
	// both nodes), which compresses the ratio below the pure-read ladder.
	if native < 1.5*base {
		t.Fatalf("NATIVE-16 node %.0f MB/s vs baseline %.0f; want a large multiple", native, base)
	}
}

// TestEndToEndEigensolver runs the paper's workload through the public API:
// LOBPCG over an out-of-core Hamiltonian stored on the node, verified
// against the dense reference.
func TestEndToEndEigensolver(t *testing.T) {
	const dim, k = 240, 4
	h, err := ooc.Hamiltonian(ooc.DefaultHamiltonian(dim))
	if err != nil {
		t.Fatal(err)
	}
	node, err := NewNode(NativeNodeConfig(nvm.PCM))
	if err != nil {
		t.Fatal(err)
	}
	sizing, err := ooc.NewMatrixStore(h, dim/8, &ooc.Recorder{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := node.Alloc("H", sizing.Bytes()); err != nil {
		t.Fatal(err)
	}
	if err := node.Write("H", 0, sizing.Bytes()); err != nil {
		t.Fatal(err)
	}
	if err := node.Seal("H"); err != nil {
		t.Fatal(err)
	}
	storage, err := node.NewStorage("H")
	if err != nil {
		t.Fatal(err)
	}
	store, err := ooc.NewMatrixStore(h, dim/8, storage)
	if err != nil {
		t.Fatal(err)
	}
	res, err := linalg.LOBPCG(store, linalg.LOBPCGOptions{K: k, MaxIter: 300, Tol: 1e-7, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("no convergence in %d iterations", res.Iterations)
	}
	ref, _, err := linalg.SymEig(h.Dense())
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < k; j++ {
		if math.Abs(res.Values[j]-ref[j]) > 1e-6 {
			t.Errorf("lambda_%d = %v, dense ref %v", j, res.Values[j], ref[j])
		}
	}
	st := node.Stats()
	if st.BytesRead == 0 || st.Elapsed <= 0 {
		t.Fatal("solver I/O never reached the simulated device")
	}
	// The workload is read-intensive: panel reads dominate the one-time
	// staging write.
	if st.BytesRead < 4*st.BytesWritten {
		t.Fatalf("reads %d vs writes %d; expected a read-intensive profile",
			st.BytesRead, st.BytesWritten)
	}
}

func TestStoragePanicsOutsideExtent(t *testing.T) {
	n := newNode(t)
	n.Alloc("small", 1<<20)
	s, err := n.NewStorage("small")
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-extent read did not panic")
		}
	}()
	s.ReadAt(0, 2<<20)
}

func TestUFSAccessorAndStorageWrite(t *testing.T) {
	n := newNode(t)
	if n.UFS() == nil || n.UFS().Capacity() != n.Capacity() {
		t.Fatal("UFS accessor broken")
	}
	n.Alloc("buf", 1<<20)
	s, err := n.NewStorage("buf")
	if err != nil {
		t.Fatal(err)
	}
	s.WriteAt(0, 1<<20)
	if n.Stats().BytesWritten != 1<<20 {
		t.Fatal("storage write did not reach the node")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-extent write did not panic")
		}
	}()
	s.WriteAt(0, 1<<20) // erase-before-write violation surfaces loudly
}

// Command benchdiff compares two benchmark result files produced by
// benchjson and exits non-zero when a benchmark regressed beyond the noise
// thresholds — the gate behind `make bench-gate`.
//
//	benchdiff [-time-threshold 0.20] [-alloc-threshold 0.05] [-guard regex] OLD NEW
//
// Each file is either a benchjson JSON array (BENCH_results.json) or a
// benchjson -history JSONL file, in which case the last recorded run is
// used. Benchmarks present in both files are compared on ns/op and
// allocs/op: a value more than the corresponding threshold fraction above
// the old one is a regression. A negative threshold disables that dimension
// (CI disables the wall-time gate this way — machines differ, but
// allocation counts are deterministic). -guard restricts which benchmarks
// can fail the gate; everything is still reported. Benchmarks appearing in
// only one file are listed but never gate.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strings"
	"text/tabwriter"
)

type result struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op"`
	AllocsPerOp float64            `json:"allocs_per_op"`
	Samples     int                `json:"samples,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// load reads a benchjson artifact: a JSON array, or a JSONL history file
// whose last line is the run to compare.
func load(path string) ([]result, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	trimmed := strings.TrimSpace(string(data))
	if trimmed == "" {
		return nil, fmt.Errorf("benchdiff: %s is empty", path)
	}
	if trimmed[0] == '[' {
		var rs []result
		if err := json.Unmarshal([]byte(trimmed), &rs); err != nil {
			return nil, fmt.Errorf("benchdiff: %s: %w", path, err)
		}
		return rs, nil
	}
	// JSONL history: take the most recent run.
	lines := strings.Split(trimmed, "\n")
	last := strings.TrimSpace(lines[len(lines)-1])
	var entry struct {
		Results []result `json:"results"`
	}
	if err := json.Unmarshal([]byte(last), &entry); err != nil {
		return nil, fmt.Errorf("benchdiff: %s last line: %w", path, err)
	}
	return entry.Results, nil
}

// delta is the fractional change from old to new (+0.2 = 20% slower/more).
func delta(oldV, newV float64) float64 {
	if oldV == 0 {
		if newV == 0 {
			return 0
		}
		return 1 // something from nothing: treat as a full-size increase
	}
	return newV/oldV - 1
}

// regressed reports whether newV exceeds oldV by more than the threshold
// fraction. A negative threshold disables the check.
func regressed(oldV, newV, threshold float64) bool {
	if threshold < 0 {
		return false
	}
	return delta(oldV, newV) > threshold
}

type options struct {
	timeThreshold  float64
	allocThreshold float64
	guard          string
}

func run(o options, oldPath, newPath string, w io.Writer) error {
	oldRes, err := load(oldPath)
	if err != nil {
		return err
	}
	newRes, err := load(newPath)
	if err != nil {
		return err
	}
	var guard *regexp.Regexp
	if o.guard != "" {
		guard, err = regexp.Compile(o.guard)
		if err != nil {
			return fmt.Errorf("benchdiff: bad -guard: %w", err)
		}
	}

	oldBy := make(map[string]result, len(oldRes))
	for _, r := range oldRes {
		oldBy[r.Name] = r
	}
	seen := make(map[string]bool, len(newRes))

	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "benchmark\tns/op old\tns/op new\tΔtime\tallocs old\tallocs new\tΔallocs\tverdict\n")
	regressions := 0
	for _, nr := range newRes {
		seen[nr.Name] = true
		or, ok := oldBy[nr.Name]
		if !ok {
			fmt.Fprintf(tw, "%s\t-\t%.0f\t-\t-\t%.0f\t-\tnew\n", nr.Name, nr.NsPerOp, nr.AllocsPerOp)
			continue
		}
		timeBad := regressed(or.NsPerOp, nr.NsPerOp, o.timeThreshold)
		allocBad := regressed(or.AllocsPerOp, nr.AllocsPerOp, o.allocThreshold)
		gated := guard == nil || guard.MatchString(nr.Name)
		verdict := "ok"
		if timeBad || allocBad {
			if gated {
				verdict = "REGRESSION"
				regressions++
			} else {
				verdict = "regressed (unguarded)"
			}
		}
		fmt.Fprintf(tw, "%s\t%.0f\t%.0f\t%+.1f%%\t%.0f\t%.0f\t%+.1f%%\t%s\n",
			nr.Name, or.NsPerOp, nr.NsPerOp, 100*delta(or.NsPerOp, nr.NsPerOp),
			or.AllocsPerOp, nr.AllocsPerOp, 100*delta(or.AllocsPerOp, nr.AllocsPerOp),
			verdict)
	}
	for _, or := range oldRes {
		if !seen[or.Name] {
			fmt.Fprintf(tw, "%s\t%.0f\t-\t-\t%.0f\t-\t-\tdropped\n", or.Name, or.NsPerOp, or.AllocsPerOp)
		}
	}
	tw.Flush()
	if regressions > 0 {
		return fmt.Errorf("benchdiff: %d regression(s) beyond thresholds (time %+.0f%%, allocs %+.0f%%)",
			regressions, 100*o.timeThreshold, 100*o.allocThreshold)
	}
	fmt.Fprintln(w, "benchdiff: no regressions")
	return nil
}

func main() {
	var o options
	flag.Float64Var(&o.timeThreshold, "time-threshold", 0.20,
		"fractional ns/op increase tolerated before failing (negative disables the time gate)")
	flag.Float64Var(&o.allocThreshold, "alloc-threshold", 0.05,
		"fractional allocs/op increase tolerated before failing (negative disables the alloc gate)")
	flag.StringVar(&o.guard, "guard", "",
		"regexp of benchmark names allowed to fail the gate (empty = all)")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [flags] OLD NEW")
		os.Exit(2)
	}
	if err := run(o, flag.Arg(0), flag.Arg(1), os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

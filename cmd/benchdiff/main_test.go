package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeResults(t *testing.T, name string, rs []result) string {
	t.Helper()
	data, err := json.Marshal(rs)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func baseline() []result {
	return []result{
		{Name: "BenchmarkA", Iterations: 100, NsPerOp: 1000, AllocsPerOp: 50},
		{Name: "BenchmarkB", Iterations: 100, NsPerOp: 2000, AllocsPerOp: 10},
	}
}

func TestBenchdiffDetectsInjectedSlowdown(t *testing.T) {
	// The acceptance case: a synthetic 20% ns/op slowdown on one benchmark
	// must fail the gate at the default 20% threshold (20% over is > 20%?
	// no — inject a little past it to clear the strict inequality).
	slow := baseline()
	slow[0].NsPerOp = 1000 * 1.21
	oldPath := writeResults(t, "old.json", baseline())
	newPath := writeResults(t, "new.json", slow)
	var out bytes.Buffer
	err := run(options{timeThreshold: 0.20, allocThreshold: 0.05}, oldPath, newPath, &out)
	if err == nil {
		t.Fatalf("20%%+ slowdown passed the gate:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "REGRESSION") {
		t.Errorf("report does not flag the regression:\n%s", out.String())
	}
}

func TestBenchdiffPassesWithinNoise(t *testing.T) {
	wobble := baseline()
	wobble[0].NsPerOp = 1000 * 1.10 // inside the 20% band
	oldPath := writeResults(t, "old.json", baseline())
	newPath := writeResults(t, "new.json", wobble)
	var out bytes.Buffer
	if err := run(options{timeThreshold: 0.20, allocThreshold: 0.05}, oldPath, newPath, &out); err != nil {
		t.Fatalf("10%% wobble failed the gate: %v\n%s", err, out.String())
	}
}

func TestBenchdiffAllocGateIndependentOfTime(t *testing.T) {
	// CI mode: the time gate disabled (machines differ) but a deterministic
	// allocation increase still fails.
	leaky := baseline()
	leaky[0].NsPerOp = 1000 * 5 // wildly slower, but the time gate is off
	leaky[1].AllocsPerOp = 12   // +20% allocations
	oldPath := writeResults(t, "old.json", baseline())
	newPath := writeResults(t, "new.json", leaky)
	var out bytes.Buffer
	err := run(options{timeThreshold: -1, allocThreshold: 0.05}, oldPath, newPath, &out)
	if err == nil {
		t.Fatalf("allocation regression passed the gate:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "REGRESSION") {
		t.Errorf("report does not flag the alloc regression:\n%s", out.String())
	}
	// Same files with the alloc gate also disabled: clean.
	out.Reset()
	if err := run(options{timeThreshold: -1, allocThreshold: -1}, oldPath, newPath, &out); err != nil {
		t.Fatalf("all gates disabled still failed: %v", err)
	}
}

func TestBenchdiffGuardScopesTheGate(t *testing.T) {
	slow := baseline()
	slow[0].NsPerOp = 3000 // BenchmarkA regresses badly
	oldPath := writeResults(t, "old.json", baseline())
	newPath := writeResults(t, "new.json", slow)
	var out bytes.Buffer
	// Guard only BenchmarkB: A's regression is reported but does not gate.
	if err := run(options{timeThreshold: 0.20, allocThreshold: 0.05, guard: "^BenchmarkB$"},
		oldPath, newPath, &out); err != nil {
		t.Fatalf("unguarded regression failed the gate: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "regressed (unguarded)") {
		t.Errorf("unguarded regression not reported:\n%s", out.String())
	}
}

func TestBenchdiffNewAndDroppedNeverGate(t *testing.T) {
	oldPath := writeResults(t, "old.json", baseline())
	newPath := writeResults(t, "new.json", []result{
		{Name: "BenchmarkA", NsPerOp: 1000, AllocsPerOp: 50},
		{Name: "BenchmarkC", NsPerOp: 9999, AllocsPerOp: 999},
	})
	var out bytes.Buffer
	if err := run(options{timeThreshold: 0.20, allocThreshold: 0.05}, oldPath, newPath, &out); err != nil {
		t.Fatalf("new/dropped benchmarks failed the gate: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "new") || !strings.Contains(out.String(), "dropped") {
		t.Errorf("new/dropped rows missing:\n%s", out.String())
	}
}

func TestBenchdiffReadsHistoryJSONL(t *testing.T) {
	// NEW side from a history file: only the last line counts.
	older, _ := json.Marshal(map[string]any{"results": baseline()})
	slow := baseline()
	slow[0].NsPerOp = 1500
	newer, _ := json.Marshal(map[string]any{"results": slow})
	histPath := filepath.Join(t.TempDir(), "hist.jsonl")
	if err := os.WriteFile(histPath, []byte(string(older)+"\n"+string(newer)+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	oldPath := writeResults(t, "old.json", baseline())
	var out bytes.Buffer
	err := run(options{timeThreshold: 0.20, allocThreshold: 0.05}, oldPath, histPath, &out)
	if err == nil {
		t.Fatalf("history's last (regressed) run passed the gate:\n%s", out.String())
	}
}

package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestSimcheckSmoke(t *testing.T) {
	var out bytes.Buffer
	opt := options{
		episodes: 2, configs: "CNL-UFS,ION-GPFS", cells: "MLC",
		faultName: "worn", seed: 1, metamorphic: true, shrink: true,
	}
	if err := run(opt, &out); err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	for _, want := range []string{
		"CNL-UFS/MLC",
		"ION-GPFS/MLC",
		"metamorphic checks:",
		"4 relations  0 violations",
		"4 episodes",
		"0 violations",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestSimcheckRejectsUnknownNames(t *testing.T) {
	var out bytes.Buffer
	if err := run(options{episodes: 1, configs: "NOPE", cells: "MLC", faultName: "none"}, &out); err == nil {
		t.Fatal("unknown config accepted")
	}
	if err := run(options{episodes: 1, configs: "CNL-UFS", cells: "QLC", faultName: "none"}, &out); err == nil {
		t.Fatal("unknown cell accepted")
	}
	if err := run(options{episodes: 1, configs: "CNL-UFS", cells: "MLC", faultName: "bogus"}, &out); err == nil {
		t.Fatal("unknown fault profile accepted")
	}
}

func TestCellForName(t *testing.T) {
	if c, err := cellForName("slc"); err != nil || c.String() != "SLC" {
		t.Fatalf("slc -> %v, %v", c, err)
	}
	if _, err := cellForName("xlc"); err == nil {
		t.Fatal("xlc accepted")
	}
}

func TestSimcheckNetProfile(t *testing.T) {
	var out bytes.Buffer
	opt := options{
		episodes: 1, configs: "CNL-UFS", cells: "MLC",
		faultName: "none", netProfile: "flaky", seed: 1,
	}
	if err := run(opt, &out); err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	for _, want := range []string{"network degradation scenarios:", "netfault/flaky", "0 violations"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
	if err := run(options{episodes: 1, configs: "CNL-UFS", cells: "MLC",
		faultName: "none", netProfile: "bogus"}, &out); err == nil {
		t.Fatal("unknown net profile accepted")
	}
}

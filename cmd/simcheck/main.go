// Command simcheck runs the cross-layer conformance suite: N seeded
// property-based episodes per (configuration, cell) pair, each replayed
// through a freshly built stack wrapped in the shadow data-integrity oracle
// and checked against the analytical performance envelope, followed by
// metamorphic invariant checks (seed determinism, lane/channel
// monotonicity, ION→CNL placement). On violation it prints a report and —
// for episode failures — a ddmin-minimized reproducer trace, then exits
// non-zero.
//
// With -net-profile it additionally sweeps the degraded-network transfer
// scenarios (same-seed determinism, goodput/retry envelopes, journal
// resume) for the named netfault profile.
//
//	simcheck -episodes 25 -configs CNL-UFS,CNL-EXT4,ION-GPFS -cells MLC,TLC
//	simcheck -episodes 5 -configs CNL-UFS -cells MLC -fault worn
//	simcheck -episodes 5 -configs CNL-UFS -cells MLC -net-profile flaky
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"oocnvm/internal/check"
	"oocnvm/internal/experiment"
	"oocnvm/internal/fault"
	"oocnvm/internal/nvm"
	"oocnvm/internal/obs/export"
	"oocnvm/internal/trace"
)

type options struct {
	episodes      int
	configs       string
	cells         string
	faultName     string
	netProfile    string
	seed          uint64
	ops           int
	metamorphic   bool
	shrink        bool
	crashSweep    bool
	crashEvery    int64
	crashTraceOut string
	crashStudy    bool
	host          export.HostFlags
}

func cellForName(name string) (nvm.CellType, error) {
	switch strings.ToUpper(name) {
	case "SLC":
		return nvm.SLC, nil
	case "MLC":
		return nvm.MLC, nil
	case "TLC":
		return nvm.TLC, nil
	case "PCM":
		return nvm.PCM, nil
	}
	return 0, fmt.Errorf("simcheck: unknown cell type %q (have SLC, MLC, TLC, PCM)", name)
}

// failure pairs a violation with enough context to reproduce it.
type failure struct {
	where string
	viol  check.Violation
	sc    check.StackConfig
	trace int // failing episode's request count, 0 for metamorphic checks
}

func run(opt options, out io.Writer) error {
	var configs []experiment.Config
	for _, name := range strings.Split(opt.configs, ",") {
		cfg, err := experiment.FindConfig(strings.TrimSpace(name))
		if err != nil {
			return err
		}
		configs = append(configs, cfg)
	}
	var cells []nvm.CellType
	for _, name := range strings.Split(opt.cells, ",") {
		c, err := cellForName(strings.TrimSpace(name))
		if err != nil {
			return err
		}
		cells = append(cells, c)
	}
	prof, err := fault.ForName(opt.faultName)
	if err != nil {
		return err
	}

	// With -hostperf every (config, cell) pair's episode batch is one
	// host-cost phase, so the table shows which pair the suite spends its
	// wall time and allocations on.
	host := opt.host.Host()

	var failures []failure
	episodes, requests := 0, 0
	var attributed int64
	fmt.Fprintf(out, "simcheck: %d episodes per pair, fault profile %q, base seed %d\n\n",
		opt.episodes, opt.faultName, opt.seed)

	for _, cfg := range configs {
		for _, cell := range cells {
			pair := fmt.Sprintf("%s/%v", cfg.Name, cell)
			endPair := host.Phase("episodes " + pair)
			pairReq, pairViol := 0, 0
			var pairAttrib int64
			for i := 0; i < opt.episodes; i++ {
				sc := check.StackConfig{Config: cfg, Cell: cell, Fault: prof,
					Seed: opt.seed + uint64(i)}
				p := check.DefaultParams(sc.Capacity(), nvm.Params(cell).PageSize)
				if opt.ops > 0 {
					p.Ops = opt.ops
				}
				res, err := check.RunEpisode(sc, p)
				if err != nil {
					return fmt.Errorf("%s seed=%d: %w", pair, sc.Seed, err)
				}
				episodes++
				pairReq += len(res.Trace)
				pairViol += len(res.Violations)
				pairAttrib += res.Attrib.Requests
				for _, v := range res.Violations {
					failures = append(failures, failure{
						where: fmt.Sprintf("%s seed=%d", pair, sc.Seed),
						viol:  v, sc: sc, trace: len(res.Trace)})
				}
			}
			endPair()
			requests += pairReq
			attributed += pairAttrib
			fmt.Fprintf(out, "  %-16s %3d episodes  %7d requests  %7d attributed  %d violations\n",
				pair, opt.episodes, pairReq, pairAttrib, pairViol)
		}
	}

	metaChecks := 0
	if opt.metamorphic {
		endMeta := host.Phase("metamorphic")
		fmt.Fprintf(out, "\nmetamorphic checks:\n")
		for _, cfg := range configs {
			for _, cell := range cells {
				pair := fmt.Sprintf("%s/%v", cfg.Name, cell)
				sc := check.StackConfig{Config: cfg, Cell: cell, Fault: prof, Seed: opt.seed}
				p := check.DefaultParams(sc.Capacity(), nvm.Params(cell).PageSize)
				if opt.ops > 0 {
					p.Ops = opt.ops
				}
				pairViol := 0
				for _, m := range []struct {
					label string
					fn    func(check.StackConfig, check.Params) ([]check.Violation, error)
				}{
					{"determinism", check.CheckDeterminism},
					{"lane monotonicity", check.CheckLaneMonotonicity},
					{"channel monotonicity", check.CheckChannelMonotonicity},
					{"ION->CNL placement", check.CheckPlacementMonotonicity},
				} {
					viol, err := m.fn(sc, p)
					if err != nil {
						return fmt.Errorf("%s %s: %w", pair, m.label, err)
					}
					metaChecks++
					pairViol += len(viol)
					for _, v := range viol {
						failures = append(failures, failure{
							where: fmt.Sprintf("%s %s", pair, m.label), viol: v, sc: sc})
					}
				}
				fmt.Fprintf(out, "  %-16s 4 relations  %d violations\n", pair, pairViol)
			}
		}
		endMeta()
	}

	crashPoints := 0
	if opt.crashSweep {
		endCrash := host.Phase("crash sweep")
		fmt.Fprintf(out, "\ncrash-point sweep (durability contract):\n")
		for _, cfg := range configs {
			if cfg.Kind == experiment.FSUFS {
				// UFS runs without an FTL — there is no durable mapping
				// metadata to crash and recover.
				continue
			}
			for _, cell := range cells {
				pair := fmt.Sprintf("%s/%v", cfg.Name, cell)
				sc := check.StackConfig{Config: cfg, Cell: cell, Seed: opt.seed}
				p := check.DefaultParams(sc.Capacity(), nvm.Params(cell).PageSize)
				if opt.ops > 0 {
					p.Ops = opt.ops
				}
				res, err := check.CrashSweep(sc, p, opt.crashEvery)
				if err != nil {
					endCrash()
					return fmt.Errorf("%s crash sweep: %w", pair, err)
				}
				crashPoints += res.Points
				det := "deterministic"
				if !res.DeterminismOK {
					det = "NON-DETERMINISTIC"
				}
				fmt.Fprintf(out, "  %-16s %3d crash points over %5d P/E boundaries  %s  %d failing\n",
					pair, res.Points, res.TotalPEOps, det, len(res.Failures))
				for _, f := range res.Failures {
					failures = append(failures, failure{
						where: fmt.Sprintf("%s crash %+v", pair, f.Plan), viol: f.Violations[0]})
					if len(f.Trace) > 0 {
						fmt.Fprintf(out, "  minimized crash reproducer for %s (%d requests):\n", pair, len(f.Trace))
						for _, op := range f.Trace {
							fmt.Fprintf(out, "    %v offset=%d size=%d sync=%v\n", op.Kind, op.Offset, op.Size, op.Sync)
						}
						if opt.crashTraceOut != "" {
							if err := writeTrace(opt.crashTraceOut, f.Trace); err != nil {
								endCrash()
								return err
							}
							fmt.Fprintf(out, "  reproducer written to %s\n", opt.crashTraceOut)
						}
					}
				}
			}
		}
		endCrash()
	}

	if opt.crashStudy {
		endStudy := host.Phase("crash study")
		fmt.Fprintf(out, "\ncheckpoint-interval study (Fig 7a workload + Ψ checkpoints, cut at 75%% of P/E boundaries):\n")
		cfg := configs[0]
		if cfg.Kind == experiment.FSUFS {
			endStudy()
			return fmt.Errorf("simcheck: -crash-study needs an FTL configuration, %s has none", cfg.Name)
		}
		sopt := experiment.TestOptions()
		// The eigensolver's Fig 7a phase is read-intensive; enable its Ψ
		// checkpoint writes so the journal and mapping churn are actually
		// exercised between the cut and the last metadata checkpoint.
		sopt.Workload.PsiBytes = 2 * sopt.Workload.PanelBytes
		sopt.Workload.Applications = 4
		rows, err := check.CrashStudy(cfg, cells[0], sopt,
			[]int64{128, 512, 2048, 8192})
		endStudy()
		if err != nil {
			return err
		}
		check.WriteStudy(out, rows)
	}

	if opt.netProfile != "" {
		endNet := host.Phase("netfault scenarios")
		fmt.Fprintf(out, "\nnetwork degradation scenarios:\n")
		nsum, err := check.NetfaultScenarios(opt.netProfile, opt.seed)
		endNet()
		if err != nil {
			return err
		}
		for _, v := range nsum.Violations {
			failures = append(failures, failure{where: "netfault/" + nsum.Profile, viol: v})
		}
		fmt.Fprintf(out, "  %-16s %3d transfer runs  %5d chunks  %5d attributed  %4d retries  %d violations\n",
			"netfault/"+nsum.Profile, nsum.Runs, nsum.Chunks, nsum.Attributed, nsum.Retries, len(nsum.Violations))
	}

	fmt.Fprintf(out, "\nsimcheck: %d episodes, %d requests (%d attribution-conserving), %d metamorphic checks, %d crash points, %d violations\n",
		episodes, requests, attributed, metaChecks, crashPoints, len(failures))
	if err := opt.host.Write(out, host); err != nil {
		return err
	}
	if len(failures) == 0 {
		return nil
	}

	fmt.Fprintf(out, "\nviolation report:\n")
	for i, f := range failures {
		if i >= 20 {
			fmt.Fprintf(out, "  ... and %d more\n", len(failures)-20)
			break
		}
		fmt.Fprintf(out, "  [%s] %v\n", f.where, f.viol)
	}
	// Minimize the first failing episode to the smallest reproducer.
	if opt.shrink {
		for _, f := range failures {
			if f.trace == 0 {
				continue
			}
			p := check.DefaultParams(f.sc.Capacity(), nvm.Params(f.sc.Cell).PageSize)
			if opt.ops > 0 {
				p.Ops = opt.ops
			}
			res, err := check.RunEpisode(f.sc, p)
			if err != nil {
				break
			}
			small := check.Shrink(res.Trace, check.FailsWith(f.sc))
			fmt.Fprintf(out, "\nminimized reproducer for [%s] (%d -> %d requests):\n",
				f.where, len(res.Trace), len(small))
			for _, op := range small {
				fmt.Fprintf(out, "  %v offset=%d size=%d sync=%v\n", op.Kind, op.Offset, op.Size, op.Sync)
			}
			break
		}
	}
	return fmt.Errorf("simcheck: %d violations", len(failures))
}

// writeTrace dumps a reproducer trace in the binary block-trace format the
// replay command accepts.
func writeTrace(path string, ops []trace.BlockOp) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := trace.WriteBlockTrace(f, ops); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func main() {
	var opt options
	flag.IntVar(&opt.episodes, "episodes", 10, "seeded episodes per (config, cell) pair")
	flag.StringVar(&opt.configs, "configs", "CNL-UFS,CNL-EXT4,ION-GPFS", "comma-separated Table 2 configuration names")
	flag.StringVar(&opt.cells, "cells", "MLC,TLC", "comma-separated cell types (SLC, MLC, TLC, PCM)")
	flag.StringVar(&opt.faultName, "fault", "none", "fault profile: none, fresh, worn or eol")
	export.RegisterNetProfile(flag.CommandLine, &opt.netProfile)
	flag.Uint64Var(&opt.seed, "seed", 1, "base RNG seed (episode i uses seed+i)")
	flag.IntVar(&opt.ops, "ops", 0, "requests per episode (0 = sized to device capacity)")
	flag.BoolVar(&opt.metamorphic, "metamorphic", true, "run metamorphic invariant checks")
	flag.BoolVar(&opt.shrink, "shrink", true, "minimize the first failing episode on violation")
	flag.BoolVar(&opt.crashSweep, "crash-sweep", false, "crash a seeded workload at every Nth program/erase boundary and assert the durability contract after mount-time recovery")
	flag.Int64Var(&opt.crashEvery, "crash-every", 0, "crash-point stride in P/E boundaries (0 = about 12 points)")
	flag.StringVar(&opt.crashTraceOut, "crash-trace-out", "", "write the first failing crash point's minimized reproducer trace to this file")
	flag.BoolVar(&opt.crashStudy, "crash-study", false, "measure journal write amplification vs mount-time recovery cost across checkpoint intervals on the Fig 7a workload")
	opt.host.Register(flag.CommandLine)
	flag.Parse()
	if err := run(opt, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

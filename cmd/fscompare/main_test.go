package main

import (
	"bytes"
	"strings"
	"testing"

	"oocnvm/internal/nvm"
)

func TestFscompareSmoke(t *testing.T) {
	var out bytes.Buffer
	if err := run(16, 4, 1, 42, []nvm.CellType{nvm.SLC}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, want := range []string{
		"File-system comparison",
		"Media capability left over",
		"ION-GPFS",
		"CNL-UFS",
		"SLC",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestFscompareDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := run(16, 4, 1, 7, []nvm.CellType{nvm.PCM}, &a); err != nil {
		t.Fatal(err)
	}
	if err := run(16, 4, 1, 7, []nvm.CellType{nvm.PCM}, &b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("same seed produced different tables")
	}
}

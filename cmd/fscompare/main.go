// Command fscompare runs the out-of-core workload through every modeled file
// system on identical hardware and prints the comparison — the interactive
// version of the paper's Figure 7 study, with selectable NVM type and
// workload scale.
package main

import (
	"flag"
	"fmt"
	"os"

	"oocnvm/internal/experiment"
	"oocnvm/internal/nvm"
	"oocnvm/internal/ooc"
)

func main() {
	var (
		matrix = flag.Int("matrix", 256, "Hamiltonian footprint in MiB")
		panel  = flag.Int("panel", 8, "row-panel read size in MiB")
		apps   = flag.Int("apps", 2, "operator applications")
		seed   = flag.Uint64("seed", 42, "seed")
	)
	flag.Parse()

	opt := experiment.DefaultOptions()
	opt.Workload = ooc.Workload{
		MatrixBytes:  int64(*matrix) << 20,
		PanelBytes:   int64(*panel) << 20,
		Applications: *apps,
	}
	opt.Seed = *seed

	configs := experiment.FileSystemConfigs()
	ms, err := experiment.Matrix(configs, nvm.CellTypes, opt)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fscompare:", err)
		os.Exit(1)
	}
	fmt.Print(experiment.FormatBandwidthTable("File-system comparison", ms, configs, nvm.CellTypes))
	fmt.Println()
	fmt.Print(experiment.FormatRemainingTable("Media capability left over", ms, configs, nvm.CellTypes))
	fmt.Println()
	fmt.Print(experiment.FormatChannelUtilTable(ms, configs, nvm.CellTypes))
	fmt.Println()
	fmt.Print(experiment.FormatPackageUtilTable(ms, configs, nvm.CellTypes))
}

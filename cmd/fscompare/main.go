// Command fscompare runs the out-of-core workload through every modeled file
// system on identical hardware and prints the comparison — the interactive
// version of the paper's Figure 7 study, with selectable NVM type and
// workload scale.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"oocnvm/internal/experiment"
	"oocnvm/internal/nvm"
	"oocnvm/internal/ooc"
)

func main() {
	var (
		matrix = flag.Int("matrix", 256, "Hamiltonian footprint in MiB")
		panel  = flag.Int("panel", 8, "row-panel read size in MiB")
		apps   = flag.Int("apps", 2, "operator applications")
		seed   = flag.Uint64("seed", 42, "seed")
	)
	flag.Parse()

	if err := run(*matrix, *panel, *apps, *seed, nvm.CellTypes, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "fscompare:", err)
		os.Exit(1)
	}
}

func run(matrix, panel, apps int, seed uint64, cells []nvm.CellType, out io.Writer) error {
	opt := experiment.DefaultOptions()
	opt.Workload = ooc.Workload{
		MatrixBytes:  int64(matrix) << 20,
		PanelBytes:   int64(panel) << 20,
		Applications: apps,
	}
	opt.Seed = seed

	configs := experiment.FileSystemConfigs()
	ms, err := experiment.Matrix(configs, cells, opt)
	if err != nil {
		return err
	}
	fmt.Fprint(out, experiment.FormatBandwidthTable("File-system comparison", ms, configs, cells))
	fmt.Fprintln(out)
	fmt.Fprint(out, experiment.FormatRemainingTable("Media capability left over", ms, configs, cells))
	fmt.Fprintln(out)
	fmt.Fprint(out, experiment.FormatChannelUtilTable(ms, configs, cells))
	fmt.Fprintln(out)
	fmt.Fprint(out, experiment.FormatPackageUtilTable(ms, configs, cells))
	return nil
}

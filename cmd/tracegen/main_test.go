package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"oocnvm/internal/trace"
)

func TestTracegenSmoke(t *testing.T) {
	dir := t.TempDir()
	posixF := filepath.Join(dir, "posix.bin")
	blockF := filepath.Join(dir, "block.bin")
	var out, errw bytes.Buffer
	if err := run(16, 4, 1, "EXT4", posixF, blockF, false, false, 0, 42, &out, &errw); err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, want := range []string{"posix ops:", "EXT4 block ops:", "sequential"} {
		if !strings.Contains(errw.String(), want) {
			t.Errorf("stderr missing %q:\n%s", want, errw.String())
		}
	}
	f, err := os.Open(blockF)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ops, err := trace.ReadBlockTrace(f)
	if err != nil {
		t.Fatalf("block trace unreadable: %v", err)
	}
	if len(ops) == 0 {
		t.Fatal("block trace is empty")
	}
}

func TestTracegenFig6(t *testing.T) {
	var out, errw bytes.Buffer
	if err := run(16, 4, 1, "GPFS", "", "", false, true, 8, 42, &out, &errw); err != nil {
		t.Fatalf("run: %v", err)
	}
	if out.Len() == 0 {
		t.Fatal("-fig6 printed nothing")
	}
}

func TestTracegenRejectsUnknownFS(t *testing.T) {
	var out, errw bytes.Buffer
	if err := run(16, 4, 1, "NTFS", "", "", false, false, 0, 42, &out, &errw); err == nil {
		t.Fatal("unknown file system accepted")
	}
}
